package bugnet

import (
	"io"

	"bugnet/internal/report"
)

// ErrBadArchive reports a structurally invalid packed report archive.
var ErrBadArchive = report.ErrBadArchive

// PackReport encodes a crash report as a single uploadable archive blob:
// CRC-framed sections carrying the report metadata and every FLL and MRL
// in their wire formats. Packing is deterministic, so identical reports
// produce identical bytes (and therefore identical ReportIDs).
func PackReport(rep *CrashReport) ([]byte, error) { return report.Pack(rep) }

// PackReportTo streams the archive into w, copying each log's encoded
// section straight from its view — at most one section in memory, so a
// disk-spilled window uploads without ever being materialized whole.
func PackReportTo(w io.Writer, rep *CrashReport) error { return report.PackTo(w, rep) }

// UnpackReport decodes an archive produced by PackReport, validating all
// framing and checksums before any log is decoded.
func UnpackReport(data []byte) (*CrashReport, error) { return report.Unpack(data) }

// ReportID returns the content address of a packed archive (hex SHA-256),
// the ID under which a triage server stores and deduplicates it.
func ReportID(data []byte) string { return report.ID(data) }
