// Command bugnet-bench regenerates the tables and figures of the paper's
// evaluation (§6).
//
// Usage:
//
//	bugnet-bench [-experiment id] [-scale N]
//
// Experiment ids: table1 fig2 fig3 fig4 fig5 fig6 table2 table3 overhead
// ablation-preservefl ablation-netzer all (default "all").
//
// The scale divides the paper's instruction counts: -scale 1 reproduces
// the paper's absolute checkpoint intervals and replay windows (expect
// minutes of runtime); the default 100 preserves every relative result at
// laptop speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bugnet/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id: "+strings.Join(bench.IDs(), " "))
	scale := flag.Int("scale", bench.DefaultScale, "divide the paper's instruction counts by this factor (1 = paper scale)")
	flag.Parse()

	start := time.Now()
	tables, err := bench.ByID(*experiment, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "available experiments:", strings.Join(bench.IDs(), ", "))
		os.Exit(2)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	fmt.Printf("completed %s at scale 1/%d in %v\n", *experiment, *scale, time.Since(start).Round(time.Millisecond))
}
