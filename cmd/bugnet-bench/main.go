// Command bugnet-bench regenerates the tables and figures of the paper's
// evaluation (§6), and runs the hot-path microbenchmark suite behind the
// CI benchmark gate.
//
// Experiment mode (default):
//
//	bugnet-bench [-experiment id] [-scale N]
//
// Experiment ids: table1 fig2 fig3 fig4 fig5 fig6 table2 table3 overhead
// ablation-preservefl ablation-netzer all (default "all").
//
// The scale divides the paper's instruction counts: -scale 1 reproduces
// the paper's absolute checkpoint intervals and replay windows (expect
// minutes of runtime); the default 100 preserves every relative result at
// laptop speed.
//
// Microbenchmark mode:
//
//	bugnet-bench -json BENCH.json [-bench-iters N] [-bench-rounds N]
//	             [-baseline OLD.json] [-gate-pct 20] [-require-speedup 2]
//
// runs the internal/bench microbenchmarks (hot-path record/replay
// bookkeeping, snapshot/restore, the end-to-end record window), writes
// the results as JSON, and — when -baseline is given — exits nonzero if
// any benchmark regressed more than -gate-pct percent in ns/op or
// allocs/op against the baseline file. ns/op comparisons are normalized
// by the -gate-norm yardstick benchmark (default RecordHotPath/map, the
// frozen map-based reference): both sides divide by their own yardstick
// ns, so a CI runner that is uniformly faster or slower than the machine
// that produced the committed baseline neither masks nor fakes a
// regression. -require-speedup additionally asserts that each */paged
// (or */machine) variant beats its */map reference by at least the given
// factor on this machine — also runner-speed independent.
// -gate-pct-overrides tightens (or loosens) the regression limit for
// individual benchmarks — CI holds RecordPerInstr, the per-instruction
// recording cost the whole paper rests on, to 5% while the rest of the
// suite gets the default 20%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bugnet/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id: "+strings.Join(bench.IDs(), " "))
	scale := flag.Int("scale", bench.DefaultScale, "divide the paper's instruction counts by this factor (1 = paper scale)")
	jsonOut := flag.String("json", "", "run the microbenchmark suite and write results to this file instead of running experiments")
	benchIters := flag.Int("bench-iters", 100, "iterations per microbenchmark round")
	benchRounds := flag.Int("bench-rounds", 3, "rounds per microbenchmark (fastest wins)")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (with -json)")
	gatePct := flag.Float64("gate-pct", 20, "max allowed regression in percent vs the baseline")
	gateNorm := flag.String("gate-norm", "RecordHotPath/map", "yardstick benchmark that normalizes ns/op comparisons for machine speed (empty = raw ns)")
	requireSpeedup := flag.Float64("require-speedup", 0, "minimum live-vs-reference speedup factor to assert for every paired benchmark (0 = off)")
	speedupFloors := flag.String("speedup-floors", "", "per-benchmark overrides of -require-speedup, as name=factor[,name=factor...] (e.g. StepVsRun/blocks=1.5)")
	gateOverrides := flag.String("gate-pct-overrides", "", "per-benchmark overrides of -gate-pct, as name=pct[,name=pct...] (e.g. RecordPerInstr=5)")
	flag.Parse()

	if *jsonOut != "" {
		floors, err := parseFloors(*speedupFloors)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pcts, err := parsePcts(*gateOverrides)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(pcts) > 0 && *baseline == "" {
			fmt.Fprintln(os.Stderr, "gate: -gate-pct-overrides without -baseline gates nothing")
			os.Exit(2)
		}
		os.Exit(runMicros(*jsonOut, *benchIters, *benchRounds, *baseline, *gatePct, *gateNorm, *requireSpeedup, floors, pcts))
	}

	start := time.Now()
	tables, err := bench.ByID(*experiment, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "available experiments:", strings.Join(bench.IDs(), ", "))
		os.Exit(2)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	fmt.Printf("completed %s at scale 1/%d in %v\n", *experiment, *scale, time.Since(start).Round(time.Millisecond))
}

// benchFile is the JSON schema of an exported run: benchmark name →
// measurement. It is the format of the committed BENCH_PR5.json baseline
// (and its BENCH_PR4.json predecessor).
type benchFile struct {
	Benchmarks map[string]bench.MicroResult `json:"benchmarks"`
}

// parseFloors parses the -speedup-floors override list. Parsing is
// strict — trailing garbage in a factor or a malformed entry is an error,
// not a silently weakened gate; unknown benchmark names are caught after
// the run (see runMicros), when the suite's names are at hand.
func parseFloors(s string) (map[string]float64, error) {
	floors := make(map[string]float64)
	if s == "" {
		return floors, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("gate: -speedup-floors entry %q is not name=factor", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("gate: -speedup-floors factor %q: %v", val, err)
		}
		if f <= 0 {
			// A zero/negative floor would override -require-speedup into
			// gating nothing for the pair.
			return nil, fmt.Errorf("gate: -speedup-floors %s=%g: factor must be positive", name, f)
		}
		floors[name] = f
	}
	return floors, nil
}

// parsePcts parses the -gate-pct-overrides list with the same strictness
// as parseFloors. A zero pct is legal — it pins a benchmark to "no
// regression at all beyond normalization noise" — but negatives are not.
func parsePcts(s string) (map[string]float64, error) {
	pcts := make(map[string]float64)
	if s == "" {
		return pcts, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("gate: -gate-pct-overrides entry %q is not name=pct", part)
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("gate: -gate-pct-overrides pct %q: %v", val, err)
		}
		if p < 0 {
			return nil, fmt.Errorf("gate: -gate-pct-overrides %s=%g: pct must be non-negative", name, p)
		}
		pcts[name] = p
	}
	return pcts, nil
}

func runMicros(out string, iters, rounds int, baseline string, gatePct float64, gateNorm string, requireSpeedup float64, floors, pctOverrides map[string]float64) int {
	defer bench.ReleaseResources()
	results, err := bench.RunMicros(iters, rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	file := benchFile{Benchmarks: make(map[string]bench.MicroResult, len(results))}
	for _, r := range results {
		file.Benchmarks[r.Name] = r
		fmt.Printf("%-28s %12.0f ns/op %10.0f B/op %8.1f allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	failed := false
	if requireSpeedup > 0 || len(floors) > 0 {
		// A floor naming no paired benchmark in this run would silently
		// gate nothing — a typo or a stale name after a rename must fail
		// loudly instead of shipping a green gate.
		for name := range floors {
			if _, isPair := pairedReference(name); !isPair {
				fmt.Fprintf(os.Stderr, "gate: -speedup-floors %q is not a paired benchmark\n", name)
				failed = true
				continue
			}
			if _, ok := file.Benchmarks[name]; !ok {
				fmt.Fprintf(os.Stderr, "gate: -speedup-floors %q did not run in this suite\n", name)
				failed = true
			}
		}
		for name, r := range file.Benchmarks {
			ref, isPair := pairedReference(name)
			if !isPair {
				continue
			}
			required := requireSpeedup
			if f, ok := floors[name]; ok {
				required = f // parseFloors guarantees f > 0
			}
			if required <= 0 {
				continue
			}
			refRes, ok := file.Benchmarks[ref]
			if !ok {
				fmt.Fprintf(os.Stderr, "gate: %s has no %s reference in this run\n", name, ref)
				failed = true
				continue
			}
			speedup := refRes.NsPerOp / r.NsPerOp
			fmt.Printf("speedup %s vs %s: %.2fx (required %.2fx)\n", name, ref, speedup, required)
			if speedup < required {
				fmt.Fprintf(os.Stderr, "gate: %s is only %.2fx faster than %s (need %.2fx)\n",
					name, speedup, ref, required)
				failed = true
			}
		}
	}
	if baseline != "" {
		old, err := readBaseline(baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Machine-speed normalization: divide each side's ns by its own
		// run of the yardstick benchmark, so the comparison is a ratio of
		// ratios and absolute runner speed cancels out. The yardstick
		// itself (frozen reference code) is then exempt from the ns gate
		// but still alloc-gated.
		curNorm, prevNorm := 1.0, 1.0
		if gateNorm != "" {
			c, okC := file.Benchmarks[gateNorm]
			p, okP := old.Benchmarks[gateNorm]
			if okC && okP && c.NsPerOp > 0 && p.NsPerOp > 0 {
				curNorm, prevNorm = c.NsPerOp, p.NsPerOp
			} else {
				fmt.Fprintf(os.Stderr, "gate: yardstick %s missing; falling back to raw ns comparison\n", gateNorm)
			}
		}
		// An override naming a benchmark absent from the baseline would
		// silently gate nothing — same loud-failure policy as the floors.
		for name := range pctOverrides {
			if _, ok := old.Benchmarks[name]; !ok {
				fmt.Fprintf(os.Stderr, "gate: -gate-pct-overrides %q is not in the baseline\n", name)
				failed = true
			}
		}
		for name, prev := range old.Benchmarks {
			cur, ok := file.Benchmarks[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "gate: baseline benchmark %s missing from this run\n", name)
				failed = true
				continue
			}
			pct := gatePct
			if p, ok := pctOverrides[name]; ok {
				pct = p
			}
			limit := 1 + pct/100
			curNs, prevNs := cur.NsPerOp/curNorm, prev.NsPerOp/prevNorm
			if prevNs > 0 && curNs > prevNs*limit {
				fmt.Fprintf(os.Stderr, "gate: %s regressed: %.0f ns/op (%.3f normalized) vs baseline %.0f (%.3f), +%.1f%% over the %.0f%% limit\n",
					name, cur.NsPerOp, curNs, prev.NsPerOp, prevNs, 100*(curNs/prevNs-1), pct)
				failed = true
			}
			// Allocation counts are near-deterministic; allow the same
			// relative slack plus one alloc of absolute headroom.
			if cur.AllocsPerOp > prev.AllocsPerOp*limit+1 {
				fmt.Fprintf(os.Stderr, "gate: %s alloc regression: %.1f allocs/op vs baseline %.1f\n",
					name, cur.AllocsPerOp, prev.AllocsPerOp)
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(file.Benchmarks))
	return 0
}

// pairedReference maps a live-design benchmark name to its in-repo
// reference twin (the pre-refactor map structures, the preserved switch
// interpreter, or the sequential replay pass behind the parallel
// interval fan-out).
func pairedReference(name string) (ref string, ok bool) {
	switch {
	case strings.HasSuffix(name, "/paged"):
		return strings.TrimSuffix(name, "/paged") + "/map", true
	case strings.HasSuffix(name, "/machine"):
		return strings.TrimSuffix(name, "/machine") + "/map", true
	case strings.HasSuffix(name, "/blocks"):
		return strings.TrimSuffix(name, "/blocks") + "/switch", true
	case name == "ParallelReplay":
		return "ParallelReplay/seq", true
	}
	return "", false
}

func readBaseline(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gate: reading baseline: %w", err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("gate: parsing baseline %s: %w", path, err)
	}
	return &f, nil
}
