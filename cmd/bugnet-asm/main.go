// Command bugnet-asm assembles a guest program and prints a listing:
// symbols, section sizes, and a disassembly that must round-trip through
// the encoder.
//
// Usage:
//
//	bugnet-asm prog.s
//	bugnet-asm -symbols prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"bugnet"
	"bugnet/internal/isa"
)

func main() {
	symbolsOnly := flag.Bool("symbols", false, "print only the symbol table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bugnet-asm [-symbols] file.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	img, err := bugnet.Assemble(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: text %d bytes at %#x, data %d bytes at %#x, entry %#x\n",
		img.Name, len(img.Text), img.TextBase, len(img.Data), img.DataBase, img.Entry)

	fmt.Println("\nsymbols:")
	for _, name := range img.SymbolsSorted() {
		fmt.Printf("  %08x  %s\n", img.Symbols[name], name)
	}
	if *symbolsOnly {
		return
	}

	// Reverse symbol map for listing annotations.
	at := make(map[uint32][]string)
	for name, addr := range img.Symbols {
		at[addr] = append(at[addr], name)
	}
	fmt.Println("\ndisassembly:")
	for off := 0; off+4 <= len(img.Text); off += 4 {
		pc := img.TextBase + uint32(off)
		for _, name := range at[pc] {
			fmt.Printf("%s:\n", name)
		}
		w := uint32(img.Text[off]) | uint32(img.Text[off+1])<<8 |
			uint32(img.Text[off+2])<<16 | uint32(img.Text[off+3])<<24
		fmt.Printf("  %08x:  %08x  %s", pc, w, isa.DisassembleWord(w, pc))
		if line, ok := img.Lines[pc]; ok {
			fmt.Printf("   # line %d", line)
		}
		fmt.Println()
	}
}
