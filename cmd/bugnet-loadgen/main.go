// Command bugnet-loadgen replays a synthetic crash corpus against a
// bugnet cluster and reports what a fleet rollout would care about:
// ingest latency quantiles (p50/p99) under admission control and
// replica forwarding, and replay-verdict throughput out the back.
//
// Two modes:
//
//	bugnet-loadgen -targets http://a:8080,http://b:8080 -rps 100 -duration 30s
//	bugnet-loadgen -nodes 3 -rps 50 -duration 30s        # self-hosted in-process cluster
//
// -nodes spins up an in-process cluster (real loopback HTTP between the
// nodes) so CI and laptops can load-test the full coordinator path —
// ring placement, quorum forwarding, admission — with zero deployment.
// Against external -targets, the corpus binaries are unknown to the
// servers unless registered there, so verdicts resolve as "failed: no
// registered binary"; ingest-path numbers are unaffected.
//
// Exit status: 0 on success, 1 on setup/run failure, 2 when an -assert-*
// check fails — CI gates on it (.github/workflows/ci.yml cluster-smoke).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bugnet/internal/cluster"
	"bugnet/internal/loadgen"
	"bugnet/internal/triage"
)

func main() {
	targets := flag.String("targets", "", "comma-separated node base URLs to load")
	nodes := flag.Int("nodes", 0, "spawn this many in-process cluster nodes instead of using -targets")
	replication := flag.Int("replication", 3, "replication factor for -nodes clusters")
	quorum := flag.Int("write-quorum", 0, "write quorum for -nodes clusters (0 = majority)")
	rps := flag.Float64("rps", 50, "aggregate upload rate")
	concurrency := flag.Int("concurrency", 8, "sender pool size")
	duration := flag.Duration("duration", 10*time.Second, "send window")
	corpusN := flag.Int("corpus", 32, "distinct crash archives in the corpus")
	drain := flag.Duration("drain", 30*time.Second, "max wait for replay queues to empty before reading throughput (negative = skip)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	assertNo5xx := flag.Bool("assert-no-5xx", false, "exit 2 if any request returned 5xx or a transport error")
	assertP99 := flag.Duration("assert-p99", 0, "exit 2 if ingest p99 exceeds this (0 = no check)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := triage.NewImageRegistry()
	corpus, err := loadgen.Corpus(*corpusN, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opt := loadgen.Options{
		Corpus:       corpus,
		RPS:          *rps,
		Concurrency:  *concurrency,
		Duration:     *duration,
		DrainTimeout: *drain,
	}

	switch {
	case *nodes > 0:
		dir, err := os.MkdirTemp("", "bugnet-loadgen-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		lc, err := cluster.SpawnLocal(*nodes, cluster.SpawnOptions{
			BaseDir:       dir,
			Resolver:      reg.Resolve,
			Replication:   *replication,
			WriteQuorum:   *quorum,
			RetryInterval: 500 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer lc.Close()
		opt.Targets = lc.URLs()
		// In-process nodes share one metrics registry; scraping each node
		// would count the same global totals once per node.
		opt.ScrapeTargets = lc.URLs()[:1]
		fmt.Fprintf(os.Stderr, "spawned %d-node cluster (replication=%d quorum=%d): %s\n",
			*nodes, lc.Nodes[0].Node.ReplicationFactor(), lc.Nodes[0].Node.WriteQuorum(),
			strings.Join(opt.Targets, " "))
	case *targets != "":
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				opt.Targets = append(opt.Targets, t)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "bugnet-loadgen: need -targets or -nodes")
		os.Exit(1)
	}

	res, err := loadgen.Run(ctx, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		fmt.Println(res)
	}

	failed := false
	if *assertNo5xx && (res.Errors5xx > 0 || res.TransportErrors > 0) {
		fmt.Fprintf(os.Stderr, "ASSERT FAILED: %d 5xx, %d transport errors\n",
			res.Errors5xx, res.TransportErrors)
		failed = true
	}
	if *assertP99 > 0 && res.P99 > *assertP99 {
		fmt.Fprintf(os.Stderr, "ASSERT FAILED: p99 %s exceeds %s\n", res.P99, *assertP99)
		failed = true
	}
	if failed {
		os.Exit(2)
	}
}
