// Command bugnet-record runs a guest program under the BugNet recorder
// and saves the crash report (First-Load Logs and Memory Race Logs) to a
// directory, like a production BugNet dumping its logs when the OS
// detects a fault (paper §4.8).
//
// Usage:
//
//	bugnet-record -bug gzip -out report/           # a Table 1 analogue
//	bugnet-record -spec mcf -steps 2000000 -out r/ # a SPEC analogue window
//	bugnet-record -asm prog.s -out report/         # your own program
//	bugnet-record -bug gzip -submit http://triage.example:8080
//
// With -submit the report is additionally packed into a single archive and
// uploaded to a bugnet-serve endpoint, completing the paper's
// customer-site-to-developer pipeline (§4.8).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"bugnet"
	"bugnet/internal/cli"
)

func main() {
	bug := flag.String("bug", "", "record a Table 1 bug analogue (bc, gzip, ncompress, ...)")
	spec := flag.String("spec", "", "record a SPEC analogue (art, bzip2, crafty, gzip, mcf, parser, vpr)")
	asmFile := flag.String("asm", "", "record an assembly source file")
	out := flag.String("out", "bugnet-report", "output directory for the crash report")
	submit := flag.String("submit", "", "bugnet-serve base URL to upload the packed report to")
	interval := flag.Uint64("interval", 100_000, "checkpoint interval length in instructions")
	steps := flag.Uint64("steps", 50_000_000, "machine step budget")
	scale := flag.Int("scale", 100, "bug-window scale for -bug workloads")
	flag.Parse()

	img, mcfg, err := cli.Pick(cli.Selection{Bug: *bug, Spec: *spec, Asm: *asmFile, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mcfg.MaxSteps = *steps

	res, rep, rec := bugnet.Record(img, mcfg, bugnet.Config{IntervalLength: *interval})
	logged, total := rec.LoggedOps()
	fmt.Printf("executed %d instructions in %d steps; logged %d of %d loggable ops (%.1f%%)\n",
		res.Instructions, res.Steps, logged, total, 100*float64(logged)/float64(max64(total, 1)))
	fmt.Printf("FLL bytes retained: %d; MRL bytes retained: %d\n",
		rec.FLLStore().Stats().RetainedBytes, rec.MRLStore().Stats().RetainedBytes)
	if res.Crash != nil {
		fmt.Printf("CRASH: thread %d: %v\n", res.Crash.TID, res.Crash.Fault)
		fmt.Printf("faulting instruction: %s\n", bugnet.Disassemble(img, res.Crash.Fault.PC))
	} else {
		fmt.Printf("clean stop (exit code %d)\n", res.ExitCode)
	}
	if err := bugnet.SaveReport(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "saving report:", err)
		os.Exit(1)
	}
	fmt.Printf("report saved to %s\n", *out)

	if *submit != "" {
		if err := upload(*submit, rep); err != nil {
			fmt.Fprintln(os.Stderr, "submitting report:", err)
			os.Exit(1)
		}
	}
}

// upload packs the report and POSTs it to a bugnet-serve endpoint.
func upload(base string, rep *bugnet.CrashReport) error {
	blob, err := bugnet.PackReport(rep)
	if err != nil {
		return err
	}
	url := strings.TrimRight(base, "/") + "/reports"
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var res struct {
		ID        string `json:"id"`
		BucketKey string `json:"bucket"`
		Duplicate bool   `json:"duplicate"`
		Error     string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return fmt.Errorf("%s: bad response (%s): %w", url, resp.Status, err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, res.Error)
	}
	state := "new"
	if res.Duplicate {
		state = "duplicate"
	}
	fmt.Printf("report submitted (%s): id %s, bucket %s\n", state, res.ID, res.BucketKey)
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
