// Command bugnet-record runs a guest program under the BugNet recorder
// and saves the crash report (First-Load Logs and Memory Race Logs) to a
// directory, like a production BugNet dumping its logs when the OS
// detects a fault (paper §4.8).
//
// Usage:
//
//	bugnet-record -bug gzip -out report/           # a Table 1 analogue
//	bugnet-record -spec mcf -steps 2000000 -out r/ # a SPEC analogue window
//	bugnet-record -asm prog.s -out report/         # your own program
//	bugnet-record -bug gzip -submit http://triage.example:8080
//	bugnet-record -spec mcf -log-dir spill/ -log-budget 1073741824
//
// With -submit the report is additionally packed into a single archive and
// uploaded to a bugnet-serve endpoint, completing the paper's
// customer-site-to-developer pipeline (§4.8).
//
// With -log-dir the log regions spill to append-only segment files under
// the directory instead of living in process memory, so the replay window
// is bounded by -log-budget (the bytes the "OS" dedicates to the region,
// paper §4.7) rather than by RAM — the continuous-recording configuration
// for multi-gigabyte windows.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bugnet"
	"bugnet/internal/cli"
	"bugnet/internal/httpjson"
	"bugnet/internal/logstore"
	"bugnet/internal/obs"
	"bugnet/internal/retry"
)

// logger carries all diagnostics; results stay on stdout.
var logger *slog.Logger

// metricsDump, when set, is where main writes the process metrics
// snapshot after run returns ("-" = stdout).
var metricsDump string

// main wraps run so deferred cleanups (spill store closes) finish before
// the metrics snapshot is written and the process exits — os.Exit inside
// run would skip both.
func main() {
	code := run()
	if metricsDump != "" {
		if err := obs.WriteSnapshotFile(metricsDump); err != nil {
			logger.Error("writing metrics dump", "path", metricsDump, "err", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

func run() int {
	bug := flag.String("bug", "", "record a Table 1 bug analogue (bc, gzip, ncompress, ...)")
	spec := flag.String("spec", "", "record a SPEC analogue (art, bzip2, crafty, gzip, mcf, parser, vpr)")
	asmFile := flag.String("asm", "", "record an assembly source file")
	out := flag.String("out", "bugnet-report", "output directory for the crash report")
	submit := flag.String("submit", "", "bugnet-serve base URL to upload the packed report to")
	interval := flag.Uint64("interval", 100_000, "checkpoint interval length in instructions")
	steps := flag.Uint64("steps", 50_000_000, "machine step budget")
	scale := flag.Int("scale", 100, "bug-window scale for -bug workloads")
	logDir := flag.String("log-dir", "", "spill the FLL/MRL log regions to segment files under this directory")
	logBudget := flag.Int64("log-budget", 0, "byte budget per log region (0 = unlimited); with -log-dir this bounds disk, not RAM")
	submitRetries := flag.Int("submit-retries", 4, "retries after a failed -submit upload (429/5xx/transport errors; 0 = one attempt only)")
	submitTimeout := flag.Duration("submit-timeout", 60*time.Second, "per-attempt timeout for the -submit upload")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text or json")
	dump := flag.String("metrics-dump", "", "write a JSON metrics snapshot to this path at exit (\"-\" = stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address while recording (e.g. localhost:6060; empty = off)")
	flag.Parse()
	var err error
	if logger, err = obs.NewLogger(os.Stderr, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	metricsDump = *dump
	cli.StartPprof(*pprofAddr)

	img, mcfg, err := cli.Pick(cli.Selection{Bug: *bug, Spec: *spec, Asm: *asmFile, Scale: *scale})
	if err != nil {
		logger.Error("selecting workload", "err", err)
		return 2
	}
	mcfg.MaxSteps = *steps

	rcfg := bugnet.Config{IntervalLength: *interval, FLLBudget: *logBudget, MRLBudget: *logBudget}
	if *logDir != "" {
		var err error
		if rcfg.FLLStore, err = openSpill(filepath.Join(*logDir, "fll"), *logBudget); err != nil {
			logger.Error("opening FLL spill", "err", err)
			return 1
		}
		defer rcfg.FLLStore.Close()
		if rcfg.MRLStore, err = openSpill(filepath.Join(*logDir, "mrl"), *logBudget); err != nil {
			logger.Error("opening MRL spill", "err", err)
			return 1
		}
		defer rcfg.MRLStore.Close()
	}

	res, rep, rec := bugnet.Record(img, mcfg, rcfg)
	logged, total := rec.LoggedOps()
	fmt.Printf("executed %d instructions in %d steps; logged %d of %d loggable ops (%.1f%%)\n",
		res.Instructions, res.Steps, logged, total, 100*float64(logged)/float64(max64(total, 1)))
	fst, mst := rec.FLLStore().Stats(), rec.MRLStore().Stats()
	fmt.Printf("FLL region: %d retained bytes in %d logs (%d evicted); MRL region: %d retained bytes in %d logs\n",
		fst.RetainedBytes, fst.RetainedCount, fst.EvictedCount, mst.RetainedBytes, mst.RetainedCount)
	if *logDir != "" {
		fmt.Printf("log regions spilled to %s (%d encoded bytes on disk)\n",
			*logDir, fst.RetainedEncodedBytes+mst.RetainedEncodedBytes)
	}
	if res.Crash != nil {
		fmt.Printf("CRASH: thread %d: %v\n", res.Crash.TID, res.Crash.Fault)
		fmt.Printf("faulting instruction: %s\n", bugnet.Disassemble(img, res.Crash.Fault.PC))
	} else {
		fmt.Printf("clean stop (exit code %d)\n", res.ExitCode)
	}
	if err := rec.Err(); err != nil {
		logger.Error("recording degraded", "err", err)
		return 1
	}
	if err := bugnet.SaveReport(*out, rep); err != nil {
		logger.Error("saving report", "out", *out, "err", err)
		return 1
	}
	fmt.Printf("report saved to %s\n", *out)

	if *submit != "" {
		if err := upload(*submit, rep, *submitRetries, *submitTimeout); err != nil {
			logger.Error("submitting report", "url", *submit, "err", err)
			return 1
		}
	}
	return 0
}

// openSpill opens one disk-backed log region for a fresh recording. A
// spill directory still holding a previous run's window is refused: a new
// process restarts CIDs and timestamps, so mixing runs would corrupt the
// report (duplicate interval ids, broken FLL/MRL pairing). The refusal
// probes the directory *before* any store is built under the new budget —
// logstore.Open re-trims recovered contents to its budget, which would
// delete the old run's segments — so the old window really does stay
// untouched for bugnet-inspect; record into an empty directory.
func openSpill(dir string, budget int64) (*logstore.Store, error) {
	probe, err := logstore.OpenDisk(dir, logstore.DiskOptions{})
	if err != nil {
		return nil, err
	}
	recovered, err := probe.Recover()
	probe.Close()
	if err != nil {
		return nil, err
	}
	if len(recovered) > 0 {
		return nil, fmt.Errorf("%s already holds a recorded window (%d logs); point -log-dir at an empty directory", dir, len(recovered))
	}
	b, err := logstore.OpenDisk(dir, logstore.DiskOptions{})
	if err != nil {
		return nil, err
	}
	return logstore.Open(budget, b)
}

// upload streams the packed report to a bugnet-serve endpoint: sections
// flow from the log stores through the packer into the request body, so a
// disk-spilled multi-gigabyte window uploads in O(section) memory.
//
// Sheds (429) and server-side failures (5xx, transport errors) retry with
// jittered backoff, honoring the server's Retry-After hint; a 4xx means
// the report itself was refused and retrying cannot help. Because the
// body streams from the log stores it cannot be rewound — every attempt
// re-packs through a fresh pipe.
func upload(base string, rep *bugnet.CrashReport, retries int, timeout time.Duration) error {
	url := strings.TrimRight(base, "/") + "/api/v1/reports"
	client := &http.Client{}
	policy := retry.Policy{
		MaxAttempts:    retries + 1,
		BaseDelay:      500 * time.Millisecond,
		MaxDelay:       15 * time.Second,
		AttemptTimeout: timeout,
		Sleep: func(ctx context.Context, d time.Duration) error {
			logger.Warn("upload failed, backing off", "url", url, "wait", d)
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
	var data []byte
	err := policy.Do(context.Background(), func(ctx context.Context) error {
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(bugnet.PackReportTo(pw, rep)) }()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
		if err != nil {
			pr.Close()
			return retry.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return fmt.Errorf("%s: reading response (%s): %w", url, resp.Status, err)
		}
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			// The standard error envelope (or the legacy shape from an
			// older server).
			msg := strings.TrimSpace(string(body))
			if eb, ok := httpjson.DecodeError(body); ok {
				msg = eb.Message
				if eb.Code != "" {
					msg = eb.Code + ": " + msg
				}
			}
			ferr := fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
			switch {
			case resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusServiceUnavailable:
				// Shed by admission control or a degraded node: retryable,
				// waiting at least the server's hinted drain time.
				if d, ok := retry.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
					return retry.After(ferr, d)
				}
				return ferr
			case resp.StatusCode >= 400 && resp.StatusCode < 500:
				return retry.Permanent(ferr)
			}
			return ferr
		}
		data = body
		return nil
	})
	if err != nil {
		return err
	}
	var res struct {
		ID        string `json:"id"`
		BucketKey string `json:"bucket"`
		Duplicate bool   `json:"duplicate"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("%s: bad response: %w", url, err)
	}
	state := "new"
	if res.Duplicate {
		state = "duplicate"
	}
	fmt.Printf("report submitted (%s): id %s, bucket %s\n", state, res.ID, res.BucketKey)
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
