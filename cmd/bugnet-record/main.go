// Command bugnet-record runs a guest program under the BugNet recorder
// and saves the crash report (First-Load Logs and Memory Race Logs) to a
// directory, like a production BugNet dumping its logs when the OS
// detects a fault (paper §4.8).
//
// Usage:
//
//	bugnet-record -bug gzip -out report/           # a Table 1 analogue
//	bugnet-record -spec mcf -steps 2000000 -out r/ # a SPEC analogue window
//	bugnet-record -asm prog.s -out report/         # your own program
package main

import (
	"flag"
	"fmt"
	"os"

	"bugnet"
	"bugnet/internal/cli"
)

func main() {
	bug := flag.String("bug", "", "record a Table 1 bug analogue (bc, gzip, ncompress, ...)")
	spec := flag.String("spec", "", "record a SPEC analogue (art, bzip2, crafty, gzip, mcf, parser, vpr)")
	asmFile := flag.String("asm", "", "record an assembly source file")
	out := flag.String("out", "bugnet-report", "output directory for the crash report")
	interval := flag.Uint64("interval", 100_000, "checkpoint interval length in instructions")
	steps := flag.Uint64("steps", 50_000_000, "machine step budget")
	scale := flag.Int("scale", 100, "bug-window scale for -bug workloads")
	flag.Parse()

	img, mcfg, err := cli.Pick(cli.Selection{Bug: *bug, Spec: *spec, Asm: *asmFile, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mcfg.MaxSteps = *steps

	res, rep, rec := bugnet.Record(img, mcfg, bugnet.Config{IntervalLength: *interval})
	logged, total := rec.LoggedOps()
	fmt.Printf("executed %d instructions in %d steps; logged %d of %d loggable ops (%.1f%%)\n",
		res.Instructions, res.Steps, logged, total, 100*float64(logged)/float64(max64(total, 1)))
	fmt.Printf("FLL bytes retained: %d; MRL bytes retained: %d\n",
		rec.FLLStore().Stats().RetainedBytes, rec.MRLStore().Stats().RetainedBytes)
	if res.Crash != nil {
		fmt.Printf("CRASH: thread %d: %v\n", res.Crash.TID, res.Crash.Fault)
		fmt.Printf("faulting instruction: %s\n", bugnet.Disassemble(img, res.Crash.Fault.PC))
	} else {
		fmt.Printf("clean stop (exit code %d)\n", res.ExitCode)
	}
	if err := bugnet.SaveReport(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "saving report:", err)
		os.Exit(1)
	}
	fmt.Printf("report saved to %s\n", *out)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
