// Command bugnet-serve is the developer-side crash-collection daemon: the
// receiving end of BugNet's ship-the-logs-home story (paper §4.8).
// Recorders at customer sites upload packed report archives; the server
// stores them content-addressed, deduplicates identical field crashes into
// buckets, and automatically replays each new report to verify the crash
// reproduces and to extract races and a backtrace.
//
// Usage:
//
//	bugnet-serve -addr :8080 -dir /var/bugnet/reports
//	bugnet-serve -budget 268435456 -workers 8 -scale 100
//	bugnet-serve -replay-workers 8 -verdict-cache 10000
//	bugnet-serve -image prog.s -image other.s      # register extra builds
//	bugnet-serve -gdb :1234 -gdb-report <id>       # real gdb attaches here
//	bugnet-serve -log-format json                  # machine-readable logs
//
// Replay needs the exact binary a report was recorded from, so the server
// registers the built-in Table 1 and SPEC analogue images (at -scale) plus
// any -image assembly sources; uploads from unknown builds are stored and
// bucketed but their verdict is "failed: no registered binary".
//
// The server also hosts remote time-travel debug sessions over its stored
// reports (internal/timetravel): POST /debug/sessions opens a session on a
// report id, bugnet-debug -remote drives it interactively with reverse
// execution and watchpoints, and the session pins the report blob against
// store eviction while open.
//
// With -gdb the same sessions are reachable over the gdb Remote Serial
// Protocol (internal/gdbstub), so a stock gdb connects with
// "target remote" and debugs the report selected by -gdb-report with
// reverse-continue and watchpoints; scripted RSP clients (and
// bugnet-debug -rsp) pick any stored report per connection via
// vAttach;<report-id>. RSP connections share the JSON API's session cap
// and idle janitor.
//
// With -peers the server joins a static triage fleet: a consistent-hash
// ring places every report on -replication owner nodes, any node accepts
// an upload and forwards it to the owners (succeeding at -write-quorum
// acks, with anti-entropy retrying the rest), reads proxy to a replica
// owner with read-repair, and admission control (-max-inflight,
// -spool-budget) sheds overload with 429 + Retry-After. Without -peers
// the same layer runs as a single-node ring, so admission control always
// applies. See internal/cluster and DESIGN.md §12.
//
//	bugnet-serve -addr :8080 -self http://a:8080 \
//	    -peers http://a:8080,http://b:8080,http://c:8080
//
// Endpoints (all also under /api/v1/...): POST /reports,
// GET /reports[?cursor=&limit=], GET /reports/{id}[?raw=1],
// GET /buckets[?cursor=&limit=], GET /buckets/{key}, GET /api/v1/cluster,
// GET /healthz (liveness), GET /readyz (readiness), GET /metrics
// (Prometheus exposition), and the /debug/sessions API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"bugnet/internal/asm"
	"bugnet/internal/cli"
	"bugnet/internal/cluster"
	"bugnet/internal/gdbstub"
	"bugnet/internal/httpjson"
	"bugnet/internal/obs"
	"bugnet/internal/timetravel"
	"bugnet/internal/triage"
	"bugnet/internal/workload"
)

// imageList collects repeated -image flags.
type imageList []string

func (l *imageList) String() string     { return fmt.Sprint(*l) }
func (l *imageList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "bugnet-reports", "report store root directory")
	budget := flag.Int64("budget", 0, "report store byte budget (0 = unlimited)")
	workers := flag.Int("workers", 4, "replay worker pool size (concurrent reports)")
	replayWorkers := flag.Int("replay-workers", 0, "parallel interval-replay fan-out per report (0 = GOMAXPROCS, 1 = sequential)")
	verdictCache := flag.Int("verdict-cache", 0, "verdict cache bound in entries (0 = default 4096, negative = disabled)")
	scale := flag.Int("scale", 100, "bug-window scale the fleet's recorders use")
	depth := flag.Int("backtrace", 16, "backtrace depth in instructions")
	maxWindow := flag.Uint64("maxwindow", 0, "max replay window per report in instructions (0 = default 100M)")
	logDir := flag.String("log-dir", "", "disk spool for in-flight uploads (default <dir>/spool); uploads stream here while hashed, then rename into the store")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	accessLog := flag.Bool("access-log", false, "log one line per HTTP request")
	sessions := flag.Int("debug-sessions", 8, "max concurrent remote debug sessions")
	idle := flag.Duration("debug-idle", 10*time.Minute, "idle timeout for remote debug sessions")
	ckptEvery := flag.Uint64("debug-ckpt", 10_000, "debug checkpoint interval in instructions")
	ckptBudget := flag.Int64("debug-ckpt-budget", 64<<20, "per-session checkpoint byte budget")
	gdbAddr := flag.String("gdb", "", "listen address for the gdb Remote Serial Protocol (empty = off)")
	gdbReport := flag.String("gdb-report", "", "report id plain \"target remote\" gdb connections debug (RSP clients can pick any report with vAttach)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster node, including this one (empty = single-node)")
	self := flag.String("self", "", "this node's base URL exactly as listed in -peers (default http://localhost<addr>)")
	replication := flag.Int("replication", 3, "replica owners per report (clamped to cluster size)")
	writeQuorum := flag.Int("write-quorum", 0, "owner acks an ingest needs (0 = majority of replication)")
	maxInflight := flag.Int("max-inflight", 0, "admission: max concurrent uploads (0 = default 256, negative = unlimited)")
	spoolBudget := flag.Int64("spool-budget", 0, "admission: max bytes of in-flight spooled uploads (0 = default 1GiB, negative = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
	repairInterval := flag.Duration("repair-interval", time.Second, "anti-entropy retry cadence for under-replicated reports")
	var images imageList
	flag.Var(&images, "image", "assembly source to register as a known binary (repeatable)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cli.StartPprof(*pprofAddr)

	reg := triage.NewImageRegistry()
	for _, b := range workload.Bugs(*scale) {
		reg.Register(b.Image)
	}
	for _, w := range workload.SPEC() {
		reg.Register(w.Image)
	}
	for _, path := range images {
		src, err := os.ReadFile(path)
		if err != nil {
			logger.Error("reading image source", "path", path, "err", err)
			os.Exit(2)
		}
		img, err := asm.Assemble(path, string(src))
		if err != nil {
			logger.Error("assembling image", "path", path, "err", err)
			os.Exit(2)
		}
		reg.Register(img)
	}

	if *replayWorkers <= 0 {
		*replayWorkers = runtime.GOMAXPROCS(0)
	}
	svc, err := triage.New(triage.Config{
		Dir:               *dir,
		Budget:            *budget,
		Workers:           *workers,
		BacktraceDepth:    *depth,
		MaxReplayWindow:   *maxWindow,
		Resolver:          reg.Resolve,
		SpoolDir:          *logDir,
		ReplayParallelism: *replayWorkers,
		VerdictCache:      *verdictCache,
	})
	if err != nil {
		logger.Error("starting triage service", "dir", *dir, "err", err)
		os.Exit(1)
	}

	// Remote time-travel debug sessions over the stored reports.
	sessionWindow := *maxWindow
	if sessionWindow == 0 {
		// Mirror the triage default so interactive sessions accept exactly
		// the reports automatic triage would replay.
		sessionWindow = triage.DefaultMaxReplayWindow
	}
	mgr := timetravel.NewManager(svc, timetravel.ManagerConfig{
		MaxSessions: *sessions,
		IdleTimeout: *idle,
		MaxWindow:   sessionWindow,
		Engine: timetravel.Config{
			CheckpointEvery:  *ckptEvery,
			CheckpointBudget: *ckptBudget,
			MaxPages:         triage.DefaultMaxReplayPages,
			ScanParallelism:  *replayWorkers,
		},
	})
	defer mgr.Close()

	// The RSP listener multiplexes gdb connections over the same manager,
	// so RSP debuggers and JSON-API sessions share one cap and one janitor.
	if *gdbAddr != "" {
		gl, err := net.Listen("tcp", *gdbAddr)
		if err != nil {
			logger.Error("gdb listener", "addr", *gdbAddr, "err", err)
			os.Exit(1)
		}
		gs := gdbstub.New(gdbstub.Config{
			Manager:       mgr,
			DefaultReport: *gdbReport,
			IdleTimeout:   *idle,
		})
		defer gs.Close()
		go func() {
			if err := gs.Serve(gl); err != nil {
				logger.Error("gdb listener stopped", "err", err)
			}
		}()
		logger.Info("gdb remote protocol listening", "addr", gl.Addr().String())
	}

	// The cluster layer wraps the whole API — single-node deployments run
	// it too (a one-member ring), so admission control and the /api/v1
	// surface are identical from laptop to fleet.
	nodeSelf := *self
	if nodeSelf == "" {
		host := *addr
		if strings.HasPrefix(host, ":") {
			host = "localhost" + host
		}
		nodeSelf = "http://" + host
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	node, err := cluster.New(cluster.Config{
		Self:              nodeSelf,
		Peers:             peerList,
		ReplicationFactor: *replication,
		WriteQuorum:       *writeQuorum,
		Service:           svc,
		Inner:             triage.NewHandlerWithDebug(svc, mgr),
		SpoolDir:          filepath.Join(*dir, "cluster"),
		MaxSpoolBytes:     *spoolBudget,
		MaxInflight:       *maxInflight,
		RetryAfter:        *retryAfter,
		RetryInterval:     *repairInterval,
		// Readiness folds in debug-session saturation alongside the
		// store/spool checks; the cluster layer appends breaker reasons.
		ExtraReady: func() []string { return triage.ReadyReasons(svc, mgr) },
	})
	if err != nil {
		logger.Error("starting cluster layer", "self", nodeSelf, "err", err)
		os.Exit(1)
	}
	defer node.Close()

	// Every request passes the observability middleware: request id,
	// request/latency/in-flight metrics, optional access log.
	var requestLogger *slog.Logger
	if *accessLog {
		requestLogger = logger
	}
	handler := httpjson.Instrument(node.Handler(), requestLogger)

	// Shut down cleanly on SIGINT/SIGTERM: stop accepting uploads, then
	// drain the replay queue so no verdict is lost mid-flight.
	srv := &http.Server{Addr: *addr, Handler: handler}
	shutdownDone := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down, draining triage queue")
		srv.Shutdown(context.Background())
		close(shutdownDone)
	}()

	logger.Info("listening",
		"addr", *addr, "binaries", reg.Len(), "store", *dir, "workers", *workers)
	err = srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		// Shutdown closed the listener; wait for it to finish flushing
		// in-flight responses before draining the replay queue.
		<-shutdownDone
	} else if err != nil {
		logger.Error("http server", "err", err)
		os.Exit(1)
	}
	svc.Close()
	logger.Info("drained, exiting")
}
