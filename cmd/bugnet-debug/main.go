// Command bugnet-debug is the replay debugger the paper motivates: it
// opens a saved crash report against the matching binary and lets the
// developer navigate the recorded window deterministically — forward,
// backward (by deterministic re-execution), with breakpoints and
// inspection of every memory location the window touched.
//
// Usage:
//
//	bugnet-debug -dir report/ -bug gzip
//
// Commands (stdin, one per line, so sessions can be scripted):
//
//	s [n]         step n instructions (default 1)
//	c             continue to breakpoint / end of window
//	b <sym|hex>   set a breakpoint
//	d <sym|hex>   delete a breakpoint
//	runto <sym>   run to an address once
//	goto <n>      travel to absolute instruction position n (backwards ok)
//	reset         back to the start of the window
//	regs          print the register file
//	x <sym|hex>   examine a memory word (reports unknown if untouched)
//	where         print position, pc, symbol and disassembly
//	q             quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bugnet"
	"bugnet/internal/cli"
	"bugnet/internal/core"
	"bugnet/internal/isa"
)

func main() {
	dir := flag.String("dir", "bugnet-report", "crash report directory")
	bug := flag.String("bug", "", "bug analogue the report was recorded from")
	spec := flag.String("spec", "", "SPEC analogue the report was recorded from")
	asmFile := flag.String("asm", "", "assembly source the report was recorded from")
	scale := flag.Int("scale", 100, "bug-window scale used when recording")
	tid := flag.Int("tid", -1, "thread to debug (default: the crashing thread)")
	flag.Parse()

	img, _, err := cli.Pick(cli.Selection{Bug: *bug, Spec: *spec, Asm: *asmFile, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep, err := bugnet.LoadReport(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rep.Binary.TextLen != 0 {
		if err := rep.Binary.Matches(img); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	t := *tid
	if t < 0 {
		if rep.Crash != nil {
			t = rep.Crash.TID
		} else {
			t = 0
		}
	}
	logs := rep.FLLs[t]
	if len(logs) == 0 {
		fmt.Fprintf(os.Stderr, "no logs for thread %d\n", t)
		os.Exit(1)
	}
	d, err := core.NewDebugger(img, logs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Replay must match the recording options the report carries.
	if rep.LogCodeLoads || rep.DictOptions != (bugnet.Config{}).DictOptions {
		d.LogCodeLoads = rep.LogCodeLoads
		d.DictOptions = rep.DictOptions
		d.Reset()
	}

	fmt.Printf("replay window: %d instructions of thread %d\n", d.Window(), t)
	if f := d.Fault(); f != nil {
		fmt.Printf("recorded crash at %s: %s\n", d.SymbolAt(f.PC), d.Disasm(f.PC))
	}
	repl(d, img)
}

func repl(d *core.Debugger, img *bugnet.Image) {
	where(d)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("(bugnet) ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("(bugnet) ")
			continue
		}
		switch fields[0] {
		case "q", "quit", "exit":
			return
		case "s", "step":
			n := uint64(1)
			if len(fields) > 1 {
				if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
					n = v
				}
			}
			reason, err := d.Step(n)
			report(d, reason, err)
		case "c", "continue":
			reason, err := d.Continue()
			report(d, reason, err)
		case "b", "break":
			if pc, ok := resolve(img, fields); ok {
				d.AddBreak(pc)
				fmt.Printf("breakpoint at %s\n", d.SymbolAt(pc))
			}
		case "d", "delete":
			if pc, ok := resolve(img, fields); ok {
				d.ClearBreak(pc)
			}
		case "runto":
			if pc, ok := resolve(img, fields); ok {
				reason, err := d.RunTo(pc)
				report(d, reason, err)
			}
		case "goto":
			if len(fields) > 1 {
				if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
					if err := d.Goto(v); err != nil {
						fmt.Println("error:", err)
					}
					where(d)
				}
			}
		case "reset":
			d.Reset()
			where(d)
		case "regs":
			regs(d)
		case "x", "examine":
			if addr, ok := resolve(img, fields); ok {
				v, known := d.ReadWord(addr)
				if known {
					fmt.Printf("%#08x: %#08x (%d)\n", addr, v, int32(v))
				} else {
					fmt.Printf("%#08x: unknown — not touched in the recorded window (no core dump in BugNet)\n", addr)
				}
			}
		case "where", "w":
			where(d)
		default:
			fmt.Println("commands: s [n] | c | b <sym> | d <sym> | runto <sym> | goto <n> | reset | regs | x <sym> | where | q")
		}
		fmt.Print("(bugnet) ")
	}
}

func report(d *core.Debugger, reason core.StopReason, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("stopped: %v\n", reason)
	where(d)
	if reason == core.StopEnd && d.Fault() != nil {
		fmt.Printf("the next instruction is the recorded crash: %s\n", d.Disasm(d.Fault().PC))
	}
}

func where(d *core.Debugger) {
	fmt.Printf("[%d/%d] %s:  %s\n", d.Pos(), d.Window(), d.SymbolAt(d.PC()), d.Disasm(d.PC()))
}

func regs(d *core.Debugger) {
	st := d.Registers()
	fmt.Printf("pc = %#08x\n", st.PC)
	for i := 0; i < isa.NumRegs; i += 4 {
		for j := i; j < i+4; j++ {
			fmt.Printf("%-4s= %#08x  ", isa.RegName(uint8(j)), st.Regs[j])
		}
		fmt.Println()
	}
}

// resolve turns a symbol name or hex/decimal literal into an address.
func resolve(img *bugnet.Image, fields []string) (uint32, bool) {
	if len(fields) < 2 {
		fmt.Println("need an address or symbol")
		return 0, false
	}
	arg := fields[1]
	if addr, ok := img.Symbol(arg); ok {
		return addr, true
	}
	if v, err := strconv.ParseUint(strings.TrimPrefix(arg, "0x"), 16, 32); err == nil {
		return uint32(v), true
	}
	if v, err := strconv.ParseUint(arg, 10, 32); err == nil {
		return uint32(v), true
	}
	fmt.Printf("cannot resolve %q\n", arg)
	return 0, false
}
