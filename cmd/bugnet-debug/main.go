// Command bugnet-debug is the time-travel replay debugger the paper
// motivates: it navigates a recorded crash window deterministically in
// both directions, with breakpoints, data watchpoints and inspection of
// every memory location the window touched (§7.1 semantics: anything else
// is unknown — BugNet ships no core dump).
//
// Reverse execution is O(checkpoint-interval), not O(window): the engine
// (internal/timetravel) checkpoints full replay state periodically and
// implements backward motion as "restore nearest checkpoint + bounded
// forward re-execution".
//
// Local mode opens a saved report directory against the matching binary:
//
//	bugnet-debug -dir report/ -bug gzip
//
// Remote mode debugs a report stored in a bugnet-serve triage service,
// driving a server-side session over the JSON debug API — the developer
// needs no local copy of the report:
//
//	bugnet-debug -remote http://triage:8080 -report <id>
//
// RSP smoke mode exercises a bugnet-serve -gdb listener with the built-in
// scripted gdb-remote client — a quick wire-level health check (handshake,
// attach, registers, one step each way) without a real gdb installed:
//
//	bugnet-debug -rsp triage:1234 [-report <id>]
//
// Commands (stdin, one per line, so sessions can be scripted):
//
//	s [n]         step n instructions (default 1)
//	rs [n]        reverse-step n instructions
//	c             continue to breakpoint / watchpoint / end of window
//	rc            reverse-continue to previous breakpoint / watch change
//	b <sym|hex>   set a breakpoint
//	d <sym|hex>   delete a breakpoint
//	watch <sym|hex>    watch a word; stops when its known value changes
//	unwatch <sym|hex>  remove a watchpoint
//	runto <sym>   run to an address once
//	seek <n>      travel to absolute instruction position n (either way)
//	goto <n>      alias of seek
//	reset         back to the start of the window (seek 0)
//	regs          print the register file
//	x <sym|hex>   examine a memory word (reports unknown if untouched)
//	bt [n]        backtrace: the last n fetched instructions
//	where         print position, pc, symbol and disassembly
//	q             quit (closes the remote session)
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"bugnet"
	"bugnet/internal/cli"
	"bugnet/internal/gdbstub"
	"bugnet/internal/httpjson"
	"bugnet/internal/obs"
	"bugnet/internal/timetravel"
)

// driver abstracts where commands execute: an in-process engine or a
// remote bugnet-serve session.
type driver interface {
	do(c timetravel.Command) timetravel.Outcome
	close()
}

func main() {
	dir := flag.String("dir", "bugnet-report", "crash report directory")
	bug := flag.String("bug", "", "bug analogue the report was recorded from")
	spec := flag.String("spec", "", "SPEC analogue the report was recorded from")
	asmFile := flag.String("asm", "", "assembly source the report was recorded from")
	scale := flag.Int("scale", 100, "bug-window scale used when recording")
	tid := flag.Int("tid", -1, "thread to debug (default: the crashing thread)")
	remote := flag.String("remote", "", "bugnet-serve base URL for a remote debug session")
	reportID := flag.String("report", "", "stored report id to debug (remote mode)")
	ckptEvery := flag.Uint64("ckpt", 10_000, "checkpoint interval in instructions (local mode)")
	rsp := flag.String("rsp", "", "bugnet-serve -gdb address for an RSP smoke check")
	dump := flag.String("metrics-dump", "", "write a JSON metrics snapshot to this path at exit (\"-\" = stdout)")
	flag.Parse()

	if *rsp != "" {
		if err := rspSmoke(*rsp, *reportID); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dumpMetrics(*dump)
		return
	}

	var d driver
	if *remote != "" {
		if *reportID == "" {
			fmt.Fprintln(os.Stderr, "-remote needs -report <id>")
			os.Exit(2)
		}
		rd, err := openRemote(strings.TrimRight(*remote, "/"), *reportID, *tid)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d = rd
	} else {
		ld, err := openLocal(cli.Selection{Bug: *bug, Spec: *spec, Asm: *asmFile, Scale: *scale},
			*dir, *tid, *ckptEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d = ld
	}
	defer d.close()
	repl(d)
	dumpMetrics(*dump)
}

// dumpMetrics writes the process metrics snapshot for scripted sessions
// (local mode surfaces the per-verb command latency histograms).
func dumpMetrics(path string) {
	if path == "" {
		return
	}
	if err := obs.WriteSnapshotFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "writing metrics dump:", err)
	}
}

// --- local mode ---

type localDriver struct{ eng *timetravel.Engine }

func (l *localDriver) do(c timetravel.Command) timetravel.Outcome { return l.eng.Exec(c) }
func (l *localDriver) close()                                     {}

func openLocal(sel cli.Selection, dir string, tid int, ckptEvery uint64) (*localDriver, error) {
	img, _, err := cli.Pick(sel)
	if err != nil {
		return nil, err
	}
	rep, err := bugnet.LoadReport(dir)
	if err != nil {
		return nil, err
	}
	if rep.Binary.TextLen != 0 {
		if err := rep.Binary.Matches(img); err != nil {
			return nil, err
		}
	}
	eng, tid, err := timetravel.NewEngineForThread(img, rep, tid,
		timetravel.Config{CheckpointEvery: ckptEvery})
	if err != nil {
		return nil, err
	}
	fmt.Printf("replay window: %d instructions of thread %d\n", eng.Window(), tid)
	if f := eng.Fault(); f != nil {
		fmt.Printf("recorded crash at %s: %s\n", eng.SymbolAt(f.PC), eng.Disasm(f.PC))
	}
	return &localDriver{eng: eng}, nil
}

// --- remote mode ---

type remoteDriver struct {
	base string
	id   string
}

func openRemote(base, reportID string, tid int) (*remoteDriver, error) {
	req := timetravel.OpenRequest{Report: reportID}
	if tid >= 0 {
		req.TID = &tid
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/debug/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("open session: %s: %s", resp.Status, readErr(resp.Body))
	}
	var info timetravel.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("open session: %v", err)
	}
	fmt.Printf("remote session %s over report %s\n", info.ID, info.Report)
	fmt.Printf("replay window: %d instructions of thread %d\n", info.Window, info.TID)
	if info.Fault != nil {
		fmt.Printf("recorded crash at %s: %s (%s)\n", info.Fault.Symbol, info.Fault.Disasm, info.Fault.Cause)
	}
	return &remoteDriver{base: base, id: info.ID}, nil
}

func (r *remoteDriver) do(c timetravel.Command) timetravel.Outcome {
	body, _ := json.Marshal(c)
	resp, err := http.Post(r.base+"/debug/sessions/"+r.id+"/cmd", "application/json", bytes.NewReader(body))
	if err != nil {
		return timetravel.Outcome{Error: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return timetravel.Outcome{Error: fmt.Sprintf("%s: %s", resp.Status, readErr(resp.Body))}
	}
	var out timetravel.Outcome
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return timetravel.Outcome{Error: err.Error()}
	}
	return out
}

func (r *remoteDriver) close() {
	req, _ := http.NewRequest(http.MethodDelete, r.base+"/debug/sessions/"+r.id, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// --- RSP smoke mode ---

// rspSmoke drives one scripted conversation against a bugnet-serve -gdb
// listener and prints the transcript: the cheapest way to confirm the RSP
// deployment end to end (port open, report attachable, reverse execution
// advertised and working) before pointing a real gdb at it.
func rspSmoke(addr, report string) error {
	cl, err := gdbstub.Dial(addr, 30*time.Second)
	if err != nil {
		return err
	}
	defer cl.Close()

	step := func(what, packet string) (string, error) {
		rep, err := cl.Exchange(packet)
		if err != nil {
			return "", fmt.Errorf("%s (%s): %w", what, packet, err)
		}
		fmt.Printf("%-18s %-14s -> %s\n", what, packet, rep)
		if strings.HasPrefix(rep, "E") {
			return rep, fmt.Errorf("%s: stub replied %s", what, rep)
		}
		return rep, nil
	}

	sup, err := step("handshake", "qSupported")
	if err != nil {
		return err
	}
	if !strings.Contains(sup, "ReverseContinue+") {
		return fmt.Errorf("stub does not advertise reverse execution: %q", sup)
	}
	if err := cl.StartNoAck(); err != nil {
		return err
	}
	fmt.Printf("%-18s %-14s -> OK\n", "no-ack mode", "QStartNoAckMode")
	if report != "" {
		if _, err := step("attach", "vAttach;"+report); err != nil {
			return err
		}
	}
	if _, err := step("status", "?"); err != nil {
		return err
	}
	regs, pc, err := cl.ReadRegisters()
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-14s -> pc=%#08x (%d registers)\n", "registers", "g", pc, len(regs))
	if _, err := step("step", "s"); err != nil {
		return err
	}
	if _, err := step("reverse-step", "bs"); err != nil {
		return err
	}
	if _, err := step("detach", "D"); err != nil {
		return err
	}
	fmt.Println("rsp smoke check passed")
	return nil
}

func readErr(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	// Servers answer with the standard error envelope; DecodeError also
	// understands the legacy {"error": "..."} shape from older servers.
	if body, ok := httpjson.DecodeError(data); ok {
		if body.Code != "" {
			return body.Code + ": " + body.Message
		}
		return body.Message
	}
	return strings.TrimSpace(string(data))
}

// --- REPL ---

func repl(d driver) {
	show(d.do(timetravel.Command{Cmd: "where"}))
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("(bugnet) ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("(bugnet) ")
			continue
		}
		cmd, ok := parse(fields)
		if cmd.Cmd == "quit" {
			return
		}
		if ok {
			show(d.do(cmd))
		}
		fmt.Print("(bugnet) ")
	}
}

// parse turns a REPL line into a protocol command. ok is false when the
// line was malformed (a usage hint was printed).
func parse(fields []string) (timetravel.Command, bool) {
	count := func() uint64 {
		if len(fields) > 1 {
			if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				return v
			}
		}
		return 0
	}
	target := func() (timetravel.Command, bool) {
		if len(fields) < 2 {
			fmt.Println("need an address or symbol")
			return timetravel.Command{}, false
		}
		// The raw token travels as Sym and resolves where the image lives
		// (server side in remote mode): symbol first, then "0x"-prefixed
		// hex, then bare digits as decimal — "100" is one hundred, "0x100"
		// is 256.
		return timetravel.Command{Sym: fields[1]}, true
	}

	switch fields[0] {
	case "q", "quit", "exit":
		return timetravel.Command{Cmd: "quit"}, false
	case "s", "step":
		return timetravel.Command{Cmd: "step", N: count()}, true
	case "rs", "rstep":
		return timetravel.Command{Cmd: "rstep", N: count()}, true
	case "c", "continue", "cont":
		return timetravel.Command{Cmd: "cont"}, true
	case "rc", "rcont":
		return timetravel.Command{Cmd: "rcont"}, true
	case "seek", "goto":
		if len(fields) < 2 {
			fmt.Println("need a position")
			return timetravel.Command{}, false
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Println("bad position:", fields[1])
			return timetravel.Command{}, false
		}
		return timetravel.Command{Cmd: "seek", Pos: v}, true
	case "reset":
		return timetravel.Command{Cmd: "seek", Pos: 0}, true
	case "b", "break":
		c, ok := target()
		c.Cmd = "break"
		return c, ok
	case "d", "delete":
		c, ok := target()
		c.Cmd = "delete"
		return c, ok
	case "watch":
		c, ok := target()
		c.Cmd = "watch"
		return c, ok
	case "unwatch":
		c, ok := target()
		c.Cmd = "unwatch"
		return c, ok
	case "regs":
		return timetravel.Command{Cmd: "regs"}, true
	case "x", "examine":
		c, ok := target()
		c.Cmd = "mem"
		if len(fields) > 2 {
			if v, err := strconv.ParseUint(fields[2], 10, 64); err == nil {
				c.N = v
			}
		}
		return c, ok
	case "bt", "backtrace":
		return timetravel.Command{Cmd: "backtrace", N: count()}, true
	case "where", "w":
		return timetravel.Command{Cmd: "where"}, true
	case "runto":
		// runto = temporary breakpoint + continue, composed client-side.
		c, ok := target()
		if !ok {
			return c, false
		}
		c.Cmd = "runto"
		return c, true
	default:
		fmt.Println("commands: s [n] | rs [n] | c | rc | b <sym> | d <sym> | watch <sym> | unwatch <sym> |" +
			" runto <sym> | seek <n> | reset | regs | x <sym> [n] | bt [n] | where | q")
		return timetravel.Command{}, false
	}
}

// show renders one outcome.
func show(out timetravel.Outcome) {
	if out.Error != "" {
		fmt.Println("error:", out.Error)
		if out.Window == 0 {
			// Transport-level failure: there is no position to report.
			return
		}
	}
	if out.Stop != "" {
		fmt.Printf("stopped: %s\n", out.Stop)
	}
	if out.Watch != nil {
		w := out.Watch
		fmt.Printf("watch %#08x: %s -> %s\n", w.Addr, watchVal(w.OldKnown, w.Old), watchVal(w.NewKnown, w.New))
	}
	for _, m := range out.Mem {
		if m.Known {
			fmt.Printf("%#08x: %#08x (%d)\n", m.Addr, m.Value, int32(m.Value))
		} else {
			fmt.Printf("%#08x: unknown — not touched in the recorded window (no core dump in BugNet)\n", m.Addr)
		}
	}
	if len(out.Regs) > 0 {
		fmt.Printf("pc = %#08x\n", out.PC)
		for i := 0; i < len(out.Regs); i += 4 {
			for j := i; j < i+4 && j < len(out.Regs); j++ {
				fmt.Printf("%-4s= %#08x  ", out.Regs[j].Name, out.Regs[j].Value)
			}
			fmt.Println()
		}
	}
	for _, f := range out.Backtrace {
		fmt.Printf("  %#08x %-24s %s\n", f.PC, f.Symbol, f.Disasm)
	}
	if len(out.Breaks) > 0 {
		fmt.Printf("breakpoints: %d\n", len(out.Breaks))
	}
	if len(out.Watches) > 0 {
		fmt.Printf("watchpoints: %d\n", len(out.Watches))
	}
	fmt.Printf("[%d/%d] %s:  %s\n", out.Pos, out.Window, out.Symbol, out.Disasm)
}

func watchVal(known bool, v uint32) string {
	if !known {
		return "unknown"
	}
	return fmt.Sprintf("%#x", v)
}
