// Command bugnet-replay deterministically replays a saved crash report
// against the same binary, reproducing the exact execution that led to
// the crash (paper §5).
//
// Usage:
//
//	bugnet-replay -dir report/ -bug gzip
//	bugnet-replay -dir report/ -asm prog.s [-races]
package main

import (
	"flag"
	"fmt"
	"os"

	"bugnet"
	"bugnet/internal/cli"
)

func main() {
	dir := flag.String("dir", "bugnet-report", "crash report directory")
	bug := flag.String("bug", "", "the Table 1 analogue the report was recorded from")
	spec := flag.String("spec", "", "the SPEC analogue the report was recorded from")
	asmFile := flag.String("asm", "", "the assembly source the report was recorded from")
	scale := flag.Int("scale", 100, "bug-window scale used when recording")
	races := flag.Bool("races", false, "run multithreaded replay with data-race inference")
	flag.Parse()

	img, _, err := cli.Pick(cli.Selection{Bug: *bug, Spec: *spec, Asm: *asmFile, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep, err := bugnet.LoadReport(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loading report:", err)
		os.Exit(1)
	}

	if *races || len(rep.FLLs) > 1 {
		mr := bugnet.NewMultiReplayer(img, rep)
		mr.DetectRaces = *races
		out, err := mr.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		for tid, tr := range out.Threads {
			describe(img, tid, tr)
		}
		fmt.Printf("applied %d ordering constraints (%d dropped outside the window)\n",
			out.Constraints, out.DroppedConstraints)
		for _, r := range out.Races {
			fmt.Println(r)
		}
		if *races && len(out.Races) == 0 {
			fmt.Println("no data races inferred")
		}
		return
	}

	for tid, logs := range rep.FLLs {
		r := bugnet.NewReplayer(img, logs)
		// Replay must match the recording options the report carries.
		r.LogCodeLoads = rep.LogCodeLoads
		r.DictOptions = rep.DictOptions
		rr, err := r.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		describe(img, tid, rr)
	}
}

func describe(img *bugnet.Image, tid int, rr *bugnet.ReplayResult) {
	fmt.Printf("thread %d: replayed %d instructions over %d checkpoint intervals (%d first-load injections)\n",
		tid, rr.Instructions, rr.Intervals, rr.Injected)
	if rr.Fault != nil {
		fmt.Printf("  crash at pc=%#x: %s\n", rr.Fault.PC, bugnet.Disassemble(img, rr.Fault.PC))
		fmt.Printf("  state before the crash: pc=%#x\n", rr.Final.PC)
	}
}
