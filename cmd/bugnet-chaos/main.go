// Command bugnet-chaos soaks an in-process bugnet cluster under a
// seeded fault storm — kills, restarts, partitions, and disk faults —
// while uploading reports at a fixed rate, then heals everything and
// verifies the durability contract: every acked report is readable and
// replayable from the surviving cluster, replication debt converges to
// zero, the retry/breaker/fault instrumentation all left series behind,
// and no goroutines leak.
//
// The storm is a pure function of -seed, so a failing run reproduces
// exactly:
//
//	bugnet-chaos -seed 42 -nodes 3 -duration 60s -rps 25
//	bugnet-chaos -seed 42 -json storm-report.json   # CI artifact
//
// Exit status is 0 iff the run upholds the contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bugnet/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "storm seed; the schedule and every fault draw derive from it")
	nodes := flag.Int("nodes", 3, "cluster size")
	duration := flag.Duration("duration", 60*time.Second, "storm length")
	rps := flag.Int("rps", 25, "upload rate during the storm")
	corpus := flag.Int("corpus", 32, "distinct reports the sender cycles through")
	tick := flag.Duration("tick", 500*time.Millisecond, "fault schedule granularity")
	jsonPath := flag.String("json", "", "also write the storm report as JSON to this path")
	dir := flag.String("dir", "", "node store directory (default: a fresh temp dir, removed on success)")
	quiet := flag.Bool("quiet", false, "suppress per-event progress lines")
	flag.Parse()

	base := *dir
	if base == "" {
		var err error
		if base, err = os.MkdirTemp("", "bugnet-chaos-*"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	fmt.Printf("chaos storm: seed %d (rerun with -seed %d to reproduce)\n", *seed, *seed)
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if *quiet {
		logf = nil
	}
	rep, err := chaos.Run(chaos.Options{
		Seed:     *seed,
		Nodes:    *nodes,
		Duration: *duration,
		RPS:      *rps,
		Corpus:   *corpus,
		Tick:     *tick,
		BaseDir:  base,
		Logf:     logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos harness failed:", err)
		os.Exit(2)
	}
	if *jsonPath != "" {
		data, merr := json.MarshalIndent(rep, "", "  ")
		if merr == nil {
			merr = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if merr != nil {
			fmt.Fprintln(os.Stderr, "writing storm report:", merr)
			os.Exit(2)
		}
	}

	fmt.Printf("storm: %d events over %d ticks; %d sent, %d acked, %d shed, %d errors\n",
		len(rep.Events), rep.Ticks, rep.Sent, rep.Acked, rep.Shed, rep.Errors)
	fmt.Printf("verify: %d lost, %d failed verdicts, repair debt %d, %d missing metrics, %d leaked goroutines\n",
		len(rep.LostReports), len(rep.FailedVerdicts), rep.RepairDebt,
		len(rep.MissingMetrics), rep.LeakedGoroutines)
	if !rep.OK {
		for _, id := range rep.LostReports {
			fmt.Printf("LOST: %s\n", id)
		}
		for _, id := range rep.FailedVerdicts {
			fmt.Printf("FAILED VERDICT: %s\n", id)
		}
		for _, fam := range rep.MissingMetrics {
			fmt.Printf("MISSING METRIC: %s\n", fam)
		}
		fmt.Printf("FAIL: durability contract violated (reproduce with -seed %d)\n", rep.Seed)
		os.Exit(1)
	}
	if *dir == "" {
		os.RemoveAll(base)
	}
	fmt.Println("OK: every acked report survived the storm")
}
