// Command bugnet-inspect prints the contents of a crash report: per-
// interval First-Load Log headers and encoded sizes, Memory Race Log
// summaries, the recording log-region occupancy and eviction stats, and
// aggregate sizes — the developer's first look at what came back from the
// field.
//
// Usage:
//
//	bugnet-inspect -dir report/            # a SaveReport directory
//	bugnet-inspect -archive report.bnar    # a packed archive (streamed)
//	bugnet-inspect -archive report.bnar -sections
//
// Archive inspection is streaming: sections are CRC-validated and their
// metadata decoded, but no entry stream is materialized unless -entries
// asks for a record dump.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bugnet"
	"bugnet/internal/cpu"
	"bugnet/internal/logstore"
	"bugnet/internal/report"
)

func main() {
	dir := flag.String("dir", "bugnet-report", "crash report directory (SaveReport layout)")
	archive := flag.String("archive", "", "packed report archive file (PackReport blob); takes precedence over -dir")
	entries := flag.Int("entries", 0, "also dump up to N raw first-load records per log")
	sections := flag.Bool("sections", false, "with -archive: list raw sections and encoded sizes")
	flag.Parse()

	var rep *bugnet.CrashReport
	if *archive != "" {
		a, err := report.OpenFile(*archive)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer a.Close()
		if *sections {
			printSections(a)
		}
		rep = a.Report()
	} else {
		var err error
		rep, err = bugnet.LoadReport(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	printReport(rep, *entries)
}

// printSections lists the archive's raw section index.
func printSections(a *report.Archive) {
	fmt.Println("archive sections:")
	fmt.Printf("  %-4s %-6s %-6s %-10s %s\n", "#", "kind", "tid", "cid", "encoded bytes")
	for i, s := range a.Sections() {
		tid := "-"
		if s.TID >= 0 {
			tid = fmt.Sprintf("%d", s.TID)
		}
		fmt.Printf("  %-4d %-6c %-6s %-10d %d\n", i, s.Kind, tid, s.CID, s.Len)
	}
	fmt.Println()
}

// printStats renders one log region's occupancy and eviction counters.
func printStats(name string, st logstore.Stats) {
	if st == (logstore.Stats{}) {
		return
	}
	fmt.Printf("%s region: %d logs / %.1f KB retained (%.1f KB encoded); evicted %d logs / %.1f KB; lifetime %d logs / %.1f KB\n",
		name, st.RetainedCount, kb(st.RetainedBytes), kb(st.RetainedEncodedBytes),
		st.EvictedCount, kb(st.EvictedBytes), st.TotalCount, kb(st.TotalBytes))
}

func kb(b int64) float64 { return float64(b) / 1024 }

func printReport(rep *bugnet.CrashReport, entries int) {
	fmt.Printf("crash report (pid %d)\n", rep.PID)
	if rep.Crash != nil {
		fmt.Printf("crash: thread %d, %s at pc=%#x addr=%#x\n",
			rep.Crash.TID, rep.Crash.Fault.Cause, rep.Crash.Fault.PC, rep.Crash.Fault.Addr)
	} else {
		fmt.Println("no crash recorded (window capture)")
	}
	printStats("FLL", rep.FLLStats)
	printStats("MRL", rep.MRLStats)

	tids := make([]int, 0, len(rep.FLLs))
	for tid := range rep.FLLs {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	var totalBytes, totalEncoded int64
	var totalInstr uint64
	for _, tid := range tids {
		fmt.Printf("\nthread %d: %d first-load logs\n", tid, len(rep.FLLs[tid]))
		fmt.Printf("  %-5s %-12s %-12s %-10s %-10s %-9s %-9s %-16s %s\n",
			"C-ID", "timestamp", "instructions", "mem ops", "logged", "KB", "enc KB", "end", "fault")
		for _, l := range rep.FLLs[tid] {
			faultStr := ""
			if l.Fault != nil {
				faultStr = fmt.Sprintf("%s at %#x (interval ic %d)",
					cpu.FaultCause(l.Fault.Cause), l.Fault.PC, l.Fault.IC)
			}
			// The encoded size is view metadata — no log bytes move.
			encoded := l.EncodedLen()
			fmt.Printf("  %-5d %-12d %-12d %-10d %-10d %-9.1f %-9.1f %-16s %s\n",
				l.CID, l.Timestamp, l.Length, l.Ops, l.NumEntries,
				kb(l.SizeBytes()), kb(encoded), l.End, faultStr)
			totalBytes += l.SizeBytes()
			totalEncoded += encoded
			totalInstr += l.Length
			if entries > 0 {
				log, err := l.Open()
				if err != nil {
					fmt.Printf("      entry dump error: %v\n", err)
					continue
				}
				es, err := log.DumpEntries(entries)
				if err != nil {
					fmt.Printf("      entry dump error: %v\n", err)
				}
				for _, e := range es {
					fmt.Printf("      %s\n", e)
				}
			}
		}
		if mrls := rep.MRLs[tid]; len(mrls) > 0 {
			raceEntries := 0
			var bytes, encBytes int64
			for _, m := range mrls {
				raceEntries += int(m.NumEntries)
				bytes += m.SizeBytes()
				encBytes += m.EncodedLen()
			}
			fmt.Printf("  memory race logs: %d logs, %d entries, %.1f KB (%.1f KB encoded)\n",
				len(mrls), raceEntries, kb(bytes), kb(encBytes))
			totalBytes += bytes
			totalEncoded += encBytes
		}
	}
	fmt.Printf("\nreplay window: %d instructions in %.1f KB of logs (%.1f KB encoded on the wire)\n",
		totalInstr, kb(totalBytes), kb(totalEncoded))
}
