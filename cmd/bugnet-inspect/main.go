// Command bugnet-inspect prints the contents of a saved crash report:
// per-interval First-Load Log headers, Memory Race Log summaries, and
// aggregate sizes — the developer's first look at what came back from the
// field.
//
// Usage:
//
//	bugnet-inspect -dir report/
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bugnet"
	"bugnet/internal/cpu"
	"bugnet/internal/fll"
)

func main() {
	dir := flag.String("dir", "bugnet-report", "crash report directory")
	entries := flag.Int("entries", 0, "also dump up to N raw first-load records per log")
	flag.Parse()

	rep, err := bugnet.LoadReport(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("crash report (pid %d)\n", rep.PID)
	if rep.Crash != nil {
		fmt.Printf("crash: thread %d, %s at pc=%#x addr=%#x\n",
			rep.Crash.TID, rep.Crash.Fault.Cause, rep.Crash.Fault.PC, rep.Crash.Fault.Addr)
	} else {
		fmt.Println("no crash recorded (window capture)")
	}

	tids := make([]int, 0, len(rep.FLLs))
	for tid := range rep.FLLs {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	var totalBytes int64
	var totalInstr uint64
	for _, tid := range tids {
		fmt.Printf("\nthread %d: %d first-load logs\n", tid, len(rep.FLLs[tid]))
		fmt.Printf("  %-5s %-12s %-12s %-10s %-10s %-9s %-16s %s\n",
			"C-ID", "timestamp", "instructions", "mem ops", "logged", "KB", "end", "fault")
		for _, l := range rep.FLLs[tid] {
			faultStr := ""
			if l.Fault != nil {
				faultStr = fmt.Sprintf("%s at %#x (interval ic %d)",
					cpu.FaultCause(l.Fault.Cause), l.Fault.PC, l.Fault.IC)
			}
			fmt.Printf("  %-5d %-12d %-12d %-10d %-10d %-9.1f %-16s %s\n",
				l.CID, l.Timestamp, l.Length, l.Ops, l.NumEntries,
				float64(l.SizeBytes())/1024, l.End, faultStr)
			totalBytes += l.SizeBytes()
			totalInstr += l.Length
			if *entries > 0 {
				es, err := l.DumpEntries(*entries)
				if err != nil {
					fmt.Printf("      entry dump error: %v\n", err)
				}
				for _, e := range es {
					fmt.Printf("      %s\n", e)
				}
			}
		}
		if mrls := rep.MRLs[tid]; len(mrls) > 0 {
			entries := 0
			var bytes int64
			for _, m := range mrls {
				entries += len(m.Entries)
				bytes += m.SizeBytes()
			}
			fmt.Printf("  memory race logs: %d logs, %d entries, %.1f KB\n",
				len(mrls), entries, float64(bytes)/1024)
			totalBytes += bytes
		}
	}
	fmt.Printf("\nreplay window: %d instructions in %.1f KB of logs\n",
		totalInstr, float64(totalBytes)/1024)
	var _ fll.EndKind
}
