// Quickstart: assemble a small guest program, record it with BugNet,
// replay it deterministically, and verify the replay reproduced the run.
package main

import (
	"fmt"
	"log"

	"bugnet"
)

// A program that sums input bytes read through the OS — the values cross
// the user/kernel boundary, so only first-load logging can reproduce them.
const source = `
        .data
buf:    .space 16
        .text
main:   li   a0, 0
        la   a1, buf
        li   a2, 16
        li   a7, 3          # read(stdin, buf, 16)
        syscall
        mv   s1, a0         # bytes read
        la   t0, buf
        li   s0, 0
loop:   lbu  t1, (t0)
        add  s0, s0, t1
        addi t0, t0, 1
        addi s1, s1, -1
        bnez s1, loop
        mv   a0, s0
        li   a7, 1          # exit(sum)
        syscall
`

func main() {
	img, err := bugnet.Assemble("quickstart.s", source)
	if err != nil {
		log.Fatal(err)
	}

	// Record: the machine runs the program while the BugNet recorder
	// captures First-Load Logs continuously.
	res, report, rec := bugnet.Record(img,
		bugnet.MachineConfig{Inputs: map[string][]byte{"stdin": []byte("deterministic!!!")}},
		bugnet.Config{IntervalLength: 1000, TraceDepth: 1 << 16},
	)
	fmt.Printf("recorded run: exit=%d, %d instructions\n", res.ExitCode, res.Instructions)

	logged, total := rec.LoggedOps()
	fmt.Printf("first-load filter: logged %d of %d loggable operations\n", logged, total)
	fmt.Printf("log size: %d bytes across %d checkpoint intervals\n",
		rec.FLLStore().Stats().RetainedBytes, len(report.FLLs[0]))

	// Replay: no program input is provided — every value the program read
	// from the OS comes back out of the logs.
	rr, err := bugnet.NewReplayer(img, report.FLLs[0]).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d instructions; final a0 (the sum) = %d\n",
		rr.Instructions, rr.Final.Regs[10])

	// Verify instruction-exact equivalence between recording and replay.
	if err := bugnet.VerifyReplay(img, rec); err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay verified: identical PCs and register state, instruction for instruction")
}
