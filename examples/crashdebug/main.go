// Crashdebug: the paper's headline use case. A production run of the
// gzip bug analogue (Table 1: a 1024-byte filename overflows a global
// buffer) crashes; BugNet ships the logs back; the developer replays the
// last millions of instructions and inspects the state right before the
// crash — without the crashing input ever leaving the user's machine.
package main

import (
	"fmt"
	"log"

	"bugnet"
	"bugnet/internal/isa"
	"bugnet/internal/workload"
)

func main() {
	// The "user side": run the buggy program under continuous recording.
	bug := workload.BugByName("gzip", 100)
	fmt.Printf("running %s: %s\n", bug.Name, bug.Description)

	kcfg := bug.Kernel
	kcfg.MaxSteps = 50_000_000
	res, report, rec := bugnet.Record(bug.Image, kcfg, bugnet.Config{
		IntervalLength: 10_000, // small intervals for this small analogue
	})
	if res.Crash == nil {
		log.Fatal("expected a crash")
	}
	fmt.Printf("CRASH in thread %d after %d instructions: %v\n",
		res.Crash.TID, res.Instructions, res.Crash.Fault)
	fmt.Printf("logs to ship to the developer: %d bytes (FDR would also need a core dump)\n",
		rec.FLLStore().Stats().RetainedBytes)

	// The "developer side": same binary + the logs = deterministic replay.
	logs := report.FLLs[res.Crash.TID]
	rr, err := bugnet.NewReplayer(bug.Image, logs).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreplayed %d instructions over %d checkpoint intervals\n",
		rr.Instructions, rr.Intervals)
	fmt.Printf("faulting instruction at %#x: %s\n",
		rr.Fault.PC, bugnet.Disassemble(bug.Image, rr.Fault.PC))

	// The state just before the crash: the dereferenced register holds
	// the 'AAAA' pattern the overflowing filename wrote over the pointer.
	ins := rr.Final
	fmt.Printf("state before the crash (pc=%#x):\n", ins.PC)
	for _, r := range []uint8{isa.RegT3, isa.RegA0} {
		fmt.Printf("  %-4s = %#08x\n", isa.RegName(r), ins.Regs[r])
	}
	if ins.Regs[isa.RegT3] == 0x41414141 {
		fmt.Println("=> t3 is 0x41414141 ('AAAA'): the overflowed filename bytes,")
		fmt.Println("   pointing straight at the unbounded copy loop as the root cause")
	}
}
