// Fdrcompare: run the same program under both recorders — BugNet and the
// Flight Data Recorder baseline — replay it with both replayers, and
// compare what each would ship back to the developer (the paper's Tables
// 2 and 3 on a single concrete run).
package main

import (
	"fmt"
	"log"

	"bugnet"
	"bugnet/internal/fdr"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
)

// A program with external input, a DMA transfer and a final crash — every
// recording challenge at once.
const source = `
        .data
buf:    .space 64
table:  .space 256
        .text
main:   li   a0, 0
        la   a1, buf
        li   a2, 64
        li   a7, 10         # dma_read: lands asynchronously
        syscall
        # build a table while the DMA flies
        la   t0, table
        li   t1, 64
fill:   sw   t1, (t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, fill
        # wait, then consume the DMA'd data
        li   t2, 5000
spin:   addi t2, t2, -1
        bnez t2, spin
        la   t0, buf
        lw   t3, (t0)       # first word of the DMA data
        la   t4, table
        add  t4, t4, t3     # index computed from external input...
boom:   lw   a0, (t4)       # ...walks off the table: crash
`

func main() {
	img, err := bugnet.Assemble("compare.s", source)
	if err != nil {
		log.Fatal(err)
	}
	input := map[string][]byte{"stdin": []byte("\x00\x10\x00\x00 payload.....")}

	// --- BugNet ---
	res, report, rec := bugnet.Record(img,
		bugnet.MachineConfig{Inputs: input, DMALatency: 500},
		bugnet.Config{IntervalLength: 2000})
	if res.Crash == nil {
		log.Fatal("expected a crash")
	}
	fmt.Printf("program crashed: %v\n\n", res.Crash.Fault)

	bnBytes := rec.FLLStore().Stats().RetainedBytes
	rr, err := bugnet.NewReplayer(img, report.FLLs[0]).Run()
	if err != nil {
		log.Fatal("bugnet replay: ", err)
	}
	fmt.Println("=== BugNet ===")
	fmt.Printf("ships:   %d bytes of First-Load Logs (no core dump)\n", bnBytes)
	fmt.Printf("replays: %d instructions to the faulting %s\n",
		rr.Instructions, bugnet.Disassemble(img, rr.Fault.PC))
	fmt.Printf("state:   bad index was %d (register t3 from the DMA'd input)\n\n",
		rr.Final.Regs[isa.RegT3])

	// --- FDR ---
	m := kernel.New(img, kernel.Config{Inputs: input, DMALatency: 500}, nil)
	frec := fdr.NewRecorder(m, fdr.Config{IntervalSteps: 2000})
	fres := m.Run()
	if fres.Crash == nil {
		log.Fatal("expected the same crash")
	}
	sizes := frec.Sizes()
	fr, err := fdr.Replay(frec, 0)
	if err != nil {
		log.Fatal("fdr replay: ", err)
	}
	fmt.Println("=== FDR (baseline) ===")
	fmt.Printf("ships:   %d bytes of checkpoint/interrupt/input/DMA logs\n",
		sizes.Total()-sizes.CoreDumpBytes)
	fmt.Printf("  plus:  %d bytes of core dump (the full memory image)\n", sizes.CoreDumpBytes)
	fmt.Printf("replays: %d instructions, fault reproduced at %#x: %v\n",
		fr.Instructions, fr.FaultPC, fr.Faulted)

	fmt.Println("\nBoth replay the crash deterministically; BugNet does it from")
	fmt.Printf("%d bytes, FDR needs %dx more because full-system replay must\n",
		bnBytes, sizes.Total()/max64(bnBytes, 1))
	fmt.Println("rebuild all of memory and re-inject every external input itself.")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
