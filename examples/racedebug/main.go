// Racedebug: record a multithreaded program with a data race, replay all
// threads with the Memory Race Logs reconstructing their interleaving
// (paper §5.2), and let the detector point at the racy instructions.
package main

import (
	"fmt"
	"log"

	"bugnet"
)

// Two threads do read-modify-write on a shared counter: one through an
// atomic (safe), one with a plain load/store pair (the race).
const source = `
        .data
counter: .word 0
done:    .word 0
         .text
main:    la   a0, worker
         li   a7, 8          # spawn
         syscall
         li   s2, 200
mloop:   la   t0, counter
racyld:  lw   t1, (t0)       # RACY read-modify-write
         addi t1, t1, 1
racyst:  sw   t1, (t0)
         addi s2, s2, -1
         bnez s2, mloop
         la   t0, done
mwait:   amoadd t1, zero, (t0)
         beqz t1, mwait
         la   t0, counter
         lw   a0, (t0)
         li   a7, 1
         syscall

worker:  li   s2, 200
wloop:   la   t0, counter
         li   t1, 1
         amoadd t2, t1, (t0) # atomic increment (safe on its own)
         addi s2, s2, -1
         bnez s2, wloop
         la   t0, done
         li   t1, 1
         amoswap t2, t1, (t0)
         li   a0, 0
         li   a7, 1
         syscall
`

func main() {
	img, err := bugnet.Assemble("race.s", source)
	if err != nil {
		log.Fatal(err)
	}
	res, report, _ := bugnet.Record(img,
		bugnet.MachineConfig{Cores: 2},
		bugnet.Config{IntervalLength: 5000},
	)
	fmt.Printf("recorded 2-thread run: exit=%d (lost updates make it < 400)\n", res.ExitCode)

	entries := 0
	for _, logs := range report.MRLs {
		for _, l := range logs {
			entries += int(l.NumEntries)
		}
	}
	fmt.Printf("memory race log: %d coherence-reply entries after Netzer reduction\n", entries)

	mr := bugnet.NewMultiReplayer(img, report)
	mr.DetectRaces = true
	out, err := mr.Run()
	if err != nil {
		log.Fatal(err)
	}
	var totalReplayed uint64
	for _, tr := range out.Threads {
		totalReplayed += tr.Instructions
	}
	fmt.Printf("replayed %d instructions across %d threads under %d ordering constraints\n",
		totalReplayed, len(out.Threads), out.Constraints)

	fmt.Printf("\ninferred data races:\n")
	for _, r := range out.Races {
		fmt.Printf("  %v\n", r)
		fmt.Printf("    %#x: %s\n", r.PC1, bugnet.Disassemble(img, r.PC1))
		fmt.Printf("    %#x: %s\n", r.PC2, bugnet.Disassemble(img, r.PC2))
	}
	if len(out.Races) == 0 {
		fmt.Println("  none (unexpected for this program!)")
	} else {
		fmt.Println("=> the plain lw/sw pair races against the worker's atomic increments")
	}
}
