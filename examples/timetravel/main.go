// Timetravel: drive the replay debugger over a recorded crash — the
// workflow the paper's introduction promises the developer. We break at
// the bug's root cause, count its executions, inspect the corruption as
// it happens, and travel backwards by deterministic re-execution.
package main

import (
	"fmt"
	"log"

	"bugnet"
	"bugnet/internal/workload"
)

func main() {
	// Record the tar analogue: a wrong loop bound overflows a heap array
	// into an adjacent descriptor whose pointer is later dereferenced.
	bug := workload.BugByName("tar", 100)
	kcfg := bug.Kernel
	kcfg.MaxSteps = 10_000_000
	res, report, _ := bugnet.Record(bug.Image, kcfg, bugnet.Config{IntervalLength: 10_000})
	if res.Crash == nil {
		log.Fatal("expected a crash")
	}
	fmt.Printf("crash recorded: %v\n\n", res.Crash.Fault)

	d, err := bugnet.NewDebugger(bug.Image, report.FLLs[res.Crash.TID])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay window: %d instructions\n", d.Window())

	// Break at the root-cause store and count its executions.
	root := bug.Image.MustSymbol("root")
	d.AddBreak(root)
	hits := 0
	for !d.Done() {
		reason, err := d.Continue()
		if err != nil {
			log.Fatal(err)
		}
		if reason != bugnet.StopBreak {
			break
		}
		hits++
	}
	fmt.Printf("root-cause store executed %d times (the loop bound is 40, not 32!)\n", hits)
	fmt.Printf("stopped at end: [%d/%d]\n", d.Pos(), d.Window())
	fmt.Printf("crash pc: %s (%s)\n\n", d.SymbolAt(d.Fault().PC), d.Disasm(d.Fault().PC))

	// Time travel: go back and stop right before the 34th store — the one
	// that turns the descriptor's base pointer into a small integer.
	d.Reset()
	for i := 0; i < 34; i++ {
		if _, err := d.Continue(); err != nil {
			log.Fatal(err)
		}
	}
	target := d.Registers().Regs[6] &^ 3 // t1 holds the store target here
	before, knownB := d.ReadWord(target)
	d.Step(1)
	after, knownA := d.ReadWord(target)
	fmt.Printf("watching the 34th store at %#x (descriptor.base):\n", target)
	fmt.Printf("  before: %#x (known=%v)  <- a real heap pointer\n", before, knownB)
	fmt.Printf("  after:  %#x (known=%v)  <- now the integer 33: the corruption\n", after, knownA)
	fmt.Println("\ngoing back in time is just deterministic re-execution (paper §5);")
	fmt.Println("every visit to a position reproduces the identical state.")
}
