// Logsizes: reproduce the paper's core size claim interactively — how the
// first-load optimization and the checkpoint interval length determine
// how many bytes BugNet must ship to replay a window of execution
// (Figures 3 and 4 in miniature).
package main

import (
	"fmt"

	"bugnet"
	"bugnet/internal/core"
	"bugnet/internal/workload"
)

func main() {
	const window = 200_000 // steady-state instructions to record

	fmt.Printf("FLL bytes to replay a %d-instruction window of each workload:\n\n", window)
	fmt.Printf("%-8s  %12s  %12s  %12s  %10s\n", "workload", "interval=1K", "interval=10K", "interval=100K", "logged/ops")
	for _, w := range workload.SPEC() {
		var cells []string
		var logged, total uint64
		for _, interval := range []uint64{1_000, 10_000, 100_000} {
			m := w.Machine(w.Warmup, nil)
			m.Run() // warm up unrecorded
			rec := bugnet.NewRecorder(m, bugnet.Config{IntervalLength: interval})
			m.SetMaxSteps(w.Warmup + window)
			m.Run()
			flushRecorder(rec)
			cells = append(cells, fmt.Sprintf("%d", rec.FLLStore().Stats().RetainedBytes))
			logged, total = rec.LoggedOps()
		}
		fmt.Printf("%-8s  %12s  %12s  %12s  %6.1f%%\n",
			w.Name, cells[0], cells[1], cells[2], 100*float64(logged)/float64(total))
	}
	fmt.Println("\nLonger checkpoint intervals let the first-load bits filter more loads")
	fmt.Println("(paper Figure 3). The logged/ops column shows the filter's character:")
	fmt.Println("streaming kernels (art, mcf) log almost every load — no reuse inside an")
	fmt.Println("interval — while reuse-heavy kernels (parser, gzip) drop 75-85% of theirs.")
}

// flushRecorder finalizes open intervals (the window ended mid-interval).
func flushRecorder(rec *core.Recorder) { rec.Flush() }
