package bugnet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bugnet/internal/timetravel"
	"bugnet/internal/triage"
)

// TestRemoteTimeTravelSession is the end-to-end time-travel story over
// the wire: a customer-site recorder captures a heap-overflow crash and
// uploads the packed report; the developer opens a remote debug session
// on the triage server, sets a data watchpoint on the corrupted word,
// reverse-continues from the crash straight to the faulting store, and
// inspects registers and memory at that moment — all over the JSON HTTP
// API, with the report blob pinned against store eviction for the
// session's lifetime.
func TestRemoteTimeTravelSession(t *testing.T) {
	// A wrong loop bound (9 over an 8-slot buffer) overflows buf into
	// ptr; the crash dereferences the corrupted pointer.
	const src = `
        .data
buf:    .space 32
ptr:    .word 1024
        .text
main:   li   s0, 0
        la   s1, buf
fill:   slli t0, s0, 2
        add  t0, s1, t0
store:  sw   s0, (t0)
        addi s0, s0, 1
        li   t1, 9
        blt  s0, t1, fill
        la   t2, ptr
        lw   t3, (t2)
boom:   lw   a0, (t3)
`
	img, err := Assemble("overflow.s", src)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, _ := Record(img, MachineConfig{}, Config{IntervalLength: 16})
	if res.Crash == nil {
		t.Fatal("program did not crash")
	}
	blob, err := PackReport(rep)
	if err != nil {
		t.Fatal(err)
	}

	// Developer side: triage service + debug session manager on one mux.
	reg := triage.NewImageRegistry()
	reg.Register(img)
	svc, err := triage.New(triage.Config{Dir: t.TempDir(), Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	mgr := timetravel.NewManager(svc, timetravel.ManagerConfig{
		MaxSessions: 4,
		IdleTimeout: time.Hour,
		Engine:      timetravel.Config{CheckpointEvery: 8},
	})
	defer mgr.Close()
	srv := httptest.NewServer(triage.NewHandlerWithDebug(svc, mgr))
	defer srv.Close()

	// Upload the field report.
	resp, err := http.Post(srv.URL+"/reports", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var ing triage.IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	svc.WaitIdle()

	postJSON := func(path string, body any, out any) {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: %s", path, resp.Status)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Open a session on the stored report.
	var info timetravel.SessionInfo
	postJSON("/debug/sessions", timetravel.OpenRequest{Report: ing.ID}, &info)
	if info.Fault == nil || info.Fault.Cause == "" {
		t.Fatalf("session fault = %+v", info.Fault)
	}
	if !svc.Store().Pinned(ing.ID) {
		t.Fatal("open session must pin the report blob")
	}
	cmdURL := "/debug/sessions/" + info.ID + "/cmd"
	do := func(c timetravel.Command) timetravel.Outcome {
		t.Helper()
		var out timetravel.Outcome
		postJSON(cmdURL, c, &out)
		if out.Error != "" {
			t.Fatalf("cmd %+v: %s", c, out.Error)
		}
		return out
	}

	// Watch the word the crash dereferences, jump to the crash, and
	// reverse-continue to the instruction that corrupted it.
	do(timetravel.Command{Cmd: "watch", Sym: "ptr"})
	out := do(timetravel.Command{Cmd: "seek", Pos: info.Window})
	if !out.Done {
		t.Fatalf("seek to end: %+v", out)
	}
	out = do(timetravel.Command{Cmd: "rcont"})
	if out.Stop != "watchpoint" || out.Symbol != "store" {
		t.Fatalf("rcont = %+v", out)
	}
	if out.Watch == nil || !out.Watch.NewKnown || out.Watch.New != 8 {
		t.Fatalf("watch transition = %+v", out.Watch)
	}

	// At the faulting store: s0 holds the overflowing index 8, and the
	// watched word is still §7.1-unknown (the store has not committed).
	regs := do(timetravel.Command{Cmd: "regs"})
	s0 := ^uint32(0)
	for _, r := range regs.Regs {
		if r.Name == "s0" {
			s0 = r.Value
		}
	}
	if s0 != 8 {
		t.Fatalf("s0 at the faulting store = %d, want 8", s0)
	}
	mem := do(timetravel.Command{Cmd: "mem", Sym: "ptr"})
	if len(mem.Mem) != 1 || mem.Mem[0].Known {
		t.Fatalf("ptr before the store = %+v, want unknown", mem.Mem)
	}
	// One forward step commits the corruption.
	do(timetravel.Command{Cmd: "step"})
	mem = do(timetravel.Command{Cmd: "mem", Sym: "ptr"})
	if len(mem.Mem) != 1 || !mem.Mem[0].Known || mem.Mem[0].Value != 8 {
		t.Fatalf("ptr after the store = %+v, want known 8", mem.Mem)
	}
	bt := do(timetravel.Command{Cmd: "backtrace"})
	if len(bt.Backtrace) == 0 {
		t.Fatal("backtrace empty")
	}

	// Closing the session drops the pin.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/debug/sessions/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if svc.Store().Pinned(ing.ID) {
		t.Fatal("closed session must unpin the report blob")
	}
}
