package bugnet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"bugnet/internal/fll"
	"bugnet/internal/mrl"
	"bugnet/internal/report"
)

// FLL is a First-Load Log: one checkpoint interval of one thread.
type FLL = fll.Log

// MRL is a Memory Race Log paired with an FLL.
type MRL = mrl.Log

// FLLRef is a lazy view of a First-Load Log: metadata decoded, the entry
// stream materialized from its backing store (memory, spill segment,
// report file) only while its interval replays.
type FLLRef = fll.Ref

// MRLRef is a lazy view of a Memory Race Log.
type MRLRef = mrl.Ref

// reportManifest is the on-disk index of a saved crash report. The
// metadata (identity, crash record, recording options) is the same
// report.Meta the packed archive carries, so the two serialized forms
// cannot drift apart; the manifest only adds the per-log file references.
type reportManifest struct {
	report.Meta
	FLLs []logRef `json:"flls"`
	MRLs []logRef `json:"mrls"`
}

type logRef struct {
	TID  int    `json:"tid"`
	CID  uint32 `json:"cid"`
	File string `json:"file"`
}

// SaveReport writes a crash report to a directory, one file per log plus
// a manifest.json — the artifact a production BugNet would ship back to
// the developer (paper §4.8). Each log's encoded bytes stream straight
// from its view to its file; nothing is re-encoded and at most one log is
// in memory at a time.
func SaveReport(dir string, rep *CrashReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man := reportManifest{Meta: report.MetaOf(rep)}
	tids := report.ThreadIDs(rep)
	for _, tid := range tids {
		for _, l := range rep.FLLs[tid] {
			name := fmt.Sprintf("fll-t%d-c%d.bin", tid, l.CID)
			data, err := l.Encoded()
			if err != nil {
				return fmt.Errorf("bugnet: FLL T%d C%d: %w", tid, l.CID, err)
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				return err
			}
			man.FLLs = append(man.FLLs, logRef{TID: tid, CID: l.CID, File: name})
		}
		for _, l := range rep.MRLs[tid] {
			name := fmt.Sprintf("mrl-t%d-c%d.bin", tid, l.CID)
			data, err := l.Encoded()
			if err != nil {
				return fmt.Errorf("bugnet: MRL T%d C%d: %w", tid, l.CID, err)
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				return err
			}
			man.MRLs = append(man.MRLs, logRef{TID: tid, CID: l.CID, File: name})
		}
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// LoadReport reads a crash report saved by SaveReport. Logs come back as
// lazy views over the report files: each file is read (and validated) once
// now for its metadata and re-read on demand when its interval replays.
func LoadReport(dir string) (*CrashReport, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man reportManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("bugnet: bad manifest: %w", err)
	}
	rep := &CrashReport{
		FLLs: make(map[int][]*FLLRef),
		MRLs: make(map[int][]*MRLRef),
	}
	man.Meta.Apply(rep)
	for _, mref := range man.FLLs {
		if err := checkTID(mref.TID); err != nil {
			return nil, err
		}
		file := mref.File
		l, err := fll.OpenLazy(func() ([]byte, error) { return readLogFile(dir, file) })
		if err != nil {
			return nil, fmt.Errorf("bugnet: %s: %w", file, err)
		}
		rep.FLLs[mref.TID] = append(rep.FLLs[mref.TID], l)
	}
	for _, mref := range man.MRLs {
		if err := checkTID(mref.TID); err != nil {
			return nil, err
		}
		file := mref.File
		l, err := mrl.OpenLazy(func() ([]byte, error) { return readLogFile(dir, file) })
		if err != nil {
			return nil, fmt.Errorf("bugnet: %s: %w", file, err)
		}
		rep.MRLs[mref.TID] = append(rep.MRLs[mref.TID], l)
	}
	return rep, nil
}

// checkTID bounds manifest thread ids like report.Unpack does for packed
// archives: replay allocates per-thread state indexed by TID, so a
// hostile manifest claiming TID -1 or 2e9 must die here, not as a panic
// or a 16 GB allocation in the replay tools.
func checkTID(tid int) error {
	if tid < 0 || tid > report.MaxTID {
		return fmt.Errorf("bugnet: manifest references implausible thread id %d", tid)
	}
	return nil
}

// readLogFile reads one manifest-referenced log, confining the reference
// to the report directory. Reports can come from untrusted machines; a
// hostile manifest must not turn LoadReport into an arbitrary file read
// ("../../etc/passwd" or an absolute path).
func readLogFile(dir, name string) ([]byte, error) {
	if name == "" || name != filepath.Base(name) || !filepath.IsLocal(name) {
		return nil, fmt.Errorf("bugnet: manifest references file %q outside the report directory", name)
	}
	return os.ReadFile(filepath.Join(dir, name))
}
