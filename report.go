package bugnet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bugnet/internal/core"
	"bugnet/internal/fll"
	"bugnet/internal/mrl"
)

// FLL is a First-Load Log: one checkpoint interval of one thread.
type FLL = fll.Log

// MRL is a Memory Race Log paired with an FLL.
type MRL = mrl.Log

// reportManifest is the on-disk index of a saved crash report.
type reportManifest struct {
	PID    uint32         `json:"pid"`
	Binary core.BinaryID  `json:"binary"`
	Crash  *manifestCrash `json:"crash,omitempty"`
	FLLs   []logRef       `json:"flls"`
	MRLs   []logRef       `json:"mrls"`
}

type manifestCrash struct {
	TID   int    `json:"tid"`
	Cause uint8  `json:"cause"`
	PC    uint32 `json:"pc"`
	Addr  uint32 `json:"addr"`
	IC    uint64 `json:"ic"`
}

type logRef struct {
	TID  int    `json:"tid"`
	CID  uint32 `json:"cid"`
	File string `json:"file"`
}

// SaveReport writes a crash report to a directory, one file per log plus
// a manifest.json — the artifact a production BugNet would ship back to
// the developer (paper §4.8).
func SaveReport(dir string, rep *CrashReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man := reportManifest{PID: rep.PID, Binary: rep.Binary}
	if rep.Crash != nil {
		man.Crash = &manifestCrash{
			TID:   rep.Crash.TID,
			Cause: uint8(rep.Crash.Fault.Cause),
			PC:    rep.Crash.Fault.PC,
			Addr:  rep.Crash.Fault.Addr,
			IC:    rep.Crash.Fault.IC,
		}
	}
	tids := make([]int, 0, len(rep.FLLs))
	for tid := range rep.FLLs {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		for _, l := range rep.FLLs[tid] {
			name := fmt.Sprintf("fll-t%d-c%d.bin", tid, l.CID)
			if err := os.WriteFile(filepath.Join(dir, name), l.Marshal(), 0o644); err != nil {
				return err
			}
			man.FLLs = append(man.FLLs, logRef{TID: tid, CID: l.CID, File: name})
		}
		for _, l := range rep.MRLs[tid] {
			name := fmt.Sprintf("mrl-t%d-c%d.bin", tid, l.CID)
			if err := os.WriteFile(filepath.Join(dir, name), l.Marshal(), 0o644); err != nil {
				return err
			}
			man.MRLs = append(man.MRLs, logRef{TID: tid, CID: l.CID, File: name})
		}
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// LoadReport reads a crash report saved by SaveReport.
func LoadReport(dir string) (*CrashReport, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man reportManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("bugnet: bad manifest: %w", err)
	}
	rep := &CrashReport{
		PID:    man.PID,
		Binary: man.Binary,
		FLLs:   make(map[int][]*FLL),
		MRLs:   make(map[int][]*MRL),
	}
	if man.Crash != nil {
		rep.Crash = &CrashInfo{
			TID: man.Crash.TID,
			Fault: &FaultInfo{
				Cause: FaultCause(man.Crash.Cause),
				PC:    man.Crash.PC,
				Addr:  man.Crash.Addr,
				IC:    man.Crash.IC,
			},
		}
	}
	for _, ref := range man.FLLs {
		raw, err := os.ReadFile(filepath.Join(dir, ref.File))
		if err != nil {
			return nil, err
		}
		l, err := fll.Unmarshal(raw)
		if err != nil {
			return nil, fmt.Errorf("bugnet: %s: %w", ref.File, err)
		}
		rep.FLLs[ref.TID] = append(rep.FLLs[ref.TID], l)
	}
	for _, ref := range man.MRLs {
		raw, err := os.ReadFile(filepath.Join(dir, ref.File))
		if err != nil {
			return nil, err
		}
		l, err := mrl.Unmarshal(raw)
		if err != nil {
			return nil, fmt.Errorf("bugnet: %s: %w", ref.File, err)
		}
		rep.MRLs[ref.TID] = append(rep.MRLs[ref.TID], l)
	}
	return rep, nil
}
