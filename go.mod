module bugnet

go 1.24
