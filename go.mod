module bugnet

go 1.23
