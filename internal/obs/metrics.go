package obs

import "sync/atomic"

// Counter is a monotonically increasing event count. The zero value is
// usable, but handles should come from a Registry so the series is
// exposed. Inc/Add are single atomic adds: safe from any goroutine and
// allocation-free, cheap enough for the recorder wire path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; deltas are unsigned by design.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a level that can move both ways: queue depths, open sessions,
// retained bytes. All operations are single atomic instructions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }
