// Package obs is the observability core shared by every BugNet layer:
// atomic counters and gauges, fixed-bucket latency histograms with
// p50/p99 summaries, a labeled-series registry with Prometheus
// text-format exposition (mounted at GET /metrics on bugnet-serve), a
// JSON snapshot for the CLIs' -metrics-dump flag, and the slog-based
// structured logger the daemons and CLIs share.
//
// The package is dependency-free (standard library only) so any layer —
// including the recorder wire path under the ns/instr bench gates — can
// import it. Every metric handle is preallocated at registration:
// incrementing a Counter or observing a Histogram is a handful of atomic
// operations and provably allocation-free (see the AllocsPerRun guard in
// metrics_test.go), so instrumentation on the record/replay hot loop
// costs nanoseconds, not allocations.
//
// Naming follows the Prometheus conventions: every series is prefixed
// bugnet_<subsystem>_, counters end in _total, levels are bare gauges,
// and latency histograms end in _seconds (observed as time.Duration,
// exposed in seconds). Label cardinality is bounded by construction —
// label values come from fixed in-code sets (verdict states, command
// verbs, packet kinds, log regions), never from request data.
package obs

// Default is the process-wide registry. Instrumented packages register
// their series against it at package init, so a binary's /metrics (or
// -metrics-dump) surface is exactly the union of the instrumented
// packages it links. Tests that need isolation build their own Registry.
var Default = NewRegistry()
