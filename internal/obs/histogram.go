package obs

import (
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket layout: roughly 4x steps from
// 25µs to 4s. The span covers everything this system times — a logstore
// append lands in the first buckets, a reverse-continue over a large
// window in the last — with 10 bounds, so one histogram costs 12 series
// on the wire (buckets + sum + count) instead of Prometheus' default 14.
var DefBuckets = []time.Duration{
	25 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	1 * time.Millisecond,
	4 * time.Millisecond,
	16 * time.Millisecond,
	64 * time.Millisecond,
	250 * time.Millisecond,
	1 * time.Second,
	4 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Buckets are chosen at
// registration and never change, so Observe is a bounded scan plus three
// atomic adds — no locks, no allocation, safe from any goroutine.
// Exposition renders the Prometheus cumulative-bucket form in seconds;
// Quantile gives the interpolated p50/p99 the -metrics-dump snapshot
// carries.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; implicit +Inf after
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration. Negative durations (a clock step mid
// measurement) clamp to zero rather than corrupting the sum.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Since observes the time elapsed from start — the idiomatic call at the
// end of a timed section: defer h.Since(time.Now()) evaluates time.Now()
// at defer time.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing it, the same estimate Prometheus'
// histogram_quantile computes. Observations in the overflow bucket report
// the largest finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < target {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if n == 0 {
			return hi
		}
		frac := (target - cum) / n
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return h.bounds[len(h.bounds)-1]
}
