package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
)

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label block, durations in seconds. Values are read through the same
// atomics the hot paths write, so a scrape never blocks an increment.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sorted() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.snapshot() {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key, s.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key, s.g.Value())
			case kindGaugeFunc:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.key, formatFloat(s.gaugeFunc()))
			case kindHistogram:
				writeHistogramText(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// snapshot returns the family's series sorted by label block. Series
// are immutable once created (GaugeFunc callbacks swap atomically), so
// the family lock only guards the map walk.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.series[key])
	}
	f.mu.Unlock()
	for i := 1; i < len(out); i++ { // insertion sort; families are small
		for j := i; j > 0 && out[j].key < out[j-1].key; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func writeHistogramText(w io.Writer, name string, s *series) {
	h := s.h
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.key, formatFloat(b.Seconds())), cum)
	}
	count := h.Count()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.key, "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.key, formatFloat(h.Sum().Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, count)
}

// withLE merges the le label into an existing label block.
func withLE(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return key[:len(key)-1] + `,le="` + le + `"}`
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Handler serves the registry as a /metrics scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Handler serves the Default registry — the GET /metrics endpoint.
func Handler() http.Handler { return Default.Handler() }

// Snapshot flattens the registry to series-name → value: counters and
// gauges verbatim, each histogram as its _count, _sum (seconds), _p50
// and _p99. The flat shape is the -metrics-dump contract — one JSON
// object, jq-addressable by exact series name.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sorted() {
		for _, s := range f.snapshot() {
			switch f.kind {
			case kindCounter:
				out[f.name+s.key] = float64(s.c.Value())
			case kindGauge:
				out[f.name+s.key] = float64(s.g.Value())
			case kindGaugeFunc:
				out[f.name+s.key] = s.gaugeFunc()
			case kindHistogram:
				out[f.name+"_count"+s.key] = float64(s.h.Count())
				out[f.name+"_sum"+s.key] = s.h.Sum().Seconds()
				out[f.name+"_p50"+s.key] = s.h.Quantile(0.50).Seconds()
				out[f.name+"_p99"+s.key] = s.h.Quantile(0.99).Seconds()
			}
		}
	}
	return out
}

// WriteSnapshot writes the flat snapshot as indented JSON (keys sorted
// by encoding/json's map ordering, so diffs are stable).
func (r *Registry) WriteSnapshot(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteSnapshotFile dumps the Default registry's snapshot to path
// ("-" = stdout) — the implementation behind the CLIs' -metrics-dump.
func WriteSnapshotFile(path string) error {
	if path == "-" {
		return Default.WriteSnapshot(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Default.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
