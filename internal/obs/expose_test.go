package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact text a scrape sees: stable family
// order, stable series order, HELP/TYPE lines, cumulative buckets in
// seconds. Renames here are wire-format breaks for every dashboard.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bugnet_test_events_total", "Events seen.").Add(3)
	g := r.Gauge("bugnet_test_depth", "Queue depth.")
	g.Set(7)
	r.GaugeFunc("bugnet_test_occupancy", "Budget occupancy.", func() float64 { return 0.25 })
	v := r.CounterVec("bugnet_test_requests_total", "Requests by code.", "code")
	v.With("500").Inc()
	v.With("200").Add(2)
	h := r.HistogramVec("bugnet_test_latency_seconds", "Latency by verb.",
		[]time.Duration{time.Millisecond, time.Second}, "verb")
	h.With("step").Observe(500 * time.Microsecond)
	h.With("step").Observe(2 * time.Second) // overflow bucket
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP bugnet_test_depth Queue depth.
# TYPE bugnet_test_depth gauge
bugnet_test_depth 7
# HELP bugnet_test_events_total Events seen.
# TYPE bugnet_test_events_total counter
bugnet_test_events_total 3
# HELP bugnet_test_latency_seconds Latency by verb.
# TYPE bugnet_test_latency_seconds histogram
bugnet_test_latency_seconds_bucket{verb="step",le="0.001"} 1
bugnet_test_latency_seconds_bucket{verb="step",le="1"} 1
bugnet_test_latency_seconds_bucket{verb="step",le="+Inf"} 2
bugnet_test_latency_seconds_sum{verb="step"} 2.0005
bugnet_test_latency_seconds_count{verb="step"} 2
# HELP bugnet_test_occupancy Budget occupancy.
# TYPE bugnet_test_occupancy gauge
bugnet_test_occupancy 0.25
# HELP bugnet_test_requests_total Requests by code.
# TYPE bugnet_test_requests_total counter
bugnet_test_requests_total{code="200"} 2
bugnet_test_requests_total{code="500"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1\n") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "path").With("a\\b\"c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\\b\"c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(5)
	h := r.Histogram("h_seconds", "", time.Millisecond, time.Second)
	h.Observe(2 * time.Millisecond)
	snap := r.Snapshot()
	if snap["c_total"] != 5 {
		t.Fatalf("c_total = %v", snap["c_total"])
	}
	if snap["h_seconds_count"] != 1 {
		t.Fatalf("h_seconds_count = %v", snap["h_seconds_count"])
	}
	if snap["h_seconds_sum"] != 0.002 {
		t.Fatalf("h_seconds_sum = %v", snap["h_seconds_sum"])
	}
	if _, ok := snap["h_seconds_p99"]; !ok {
		t.Fatal("snapshot missing p99")
	}
}

// TestConcurrentScrape drives writers against scrapers under -race: new
// series appear, counters move, GaugeFunc callbacks are swapped, all
// while WriteText and Snapshot run. The assertion is simply that the
// race detector stays quiet and renders never fail.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("scrape_total", "", "k")
	hv := r.HistogramVec("scrape_seconds", "", nil, "k")
	v.With("a").Inc() // at least one series exists before scrapers start
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			keys := []string{"a", "b", "c", "d"}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(id+n)%len(keys)]
				v.With(k).Inc()
				hv.With(k).Observe(time.Duration(n%1000) * time.Microsecond)
				r.GaugeFunc("scrape_occupancy", "", func() float64 { return float64(n) })
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				if len(r.Snapshot()) == 0 {
					t.Error("empty snapshot during concurrent writes")
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
