package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the metric families a registry can hold.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (family, label-values) combination and its live value.
// fn is atomic because GaugeFunc callbacks are replaceable while scrapes
// read them lock-free.
type series struct {
	key string // rendered label block `{k="v",...}`, "" when unlabeled
	c   *Counter
	g   *Gauge
	fn  atomic.Pointer[func() float64]
	h   *Histogram
}

// gaugeFunc evaluates the callback, or 0 if none has been stored yet (a
// scrape can land between series creation and the first Store).
func (s *series) gaugeFunc() float64 {
	if p := s.fn.Load(); p != nil {
		return (*p)()
	}
	return 0
}

// family is one named metric and all of its labeled series.
type family struct {
	name      string
	help      string
	kind      kind
	labelKeys []string
	bounds    []time.Duration // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string // series keys, registration order (exposition sorts)
}

// with returns (creating if needed) the series for the given label
// values. Registration is idempotent: the same values always return the
// same handle, so package-level vars and repeated lookups agree.
func (f *family) with(vals []string) *series {
	if len(vals) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", f.name, len(f.labelKeys), len(vals)))
	}
	key := labelBlock(f.labelKeys, vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.series[key]; s != nil {
		return s
	}
	s := &series{key: key}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// labelBlock renders `{k="v",...}` with Prometheus escaping; empty for
// unlabeled series.
func labelBlock(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(vals[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry holds metric families by name and renders them for scrapes
// and snapshots. Registration is get-or-create: registering a name twice
// with the same shape returns the existing family (so tests that rebuild
// a service share its process-level series), while re-registering under a
// different kind or label set panics — that is a naming collision bug.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help string, k kind, keys []string, bounds []time.Duration) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		if f.kind != k || !equalKeys(f.labelKeys, keys) {
			panic(fmt.Sprintf("obs: %s re-registered as %s%v, was %s%v",
				name, k, keys, f.kind, f.labelKeys))
		}
		return f
	}
	f := &family{
		name:      name,
		help:      help,
		kind:      k,
		labelKeys: append([]string(nil), keys...),
		bounds:    bounds,
		series:    make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sorted returns the families sorted by name; exposition and snapshots
// iterate it so output order is stable.
func (r *Registry) sorted() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).with(nil).c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).with(nil).g
}

// GaugeFunc registers a gauge whose value is computed at scrape time by
// fn. Re-registering the same name replaces the callback — the newest
// instance of a subsystem (a rebuilt manager in tests) owns the series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGaugeFunc, nil, nil).with(nil).fn.Store(&fn)
}

// Histogram registers (or finds) an unlabeled latency histogram. Empty
// bounds select DefBuckets.
func (r *Registry) Histogram(name, help string, bounds ...time.Duration) *Histogram {
	return r.family(name, help, kindHistogram, nil, bounds).with(nil).h
}

// CounterVec is a family of counters split by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, keys, nil)}
}

// With returns the preallocated counter for the given label values.
// Resolve handles once (at package init for hot paths); With itself
// takes the family lock.
func (v *CounterVec) With(vals ...string) *Counter { return v.f.with(vals).c }

// GaugeVec is a family of gauges split by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, keys, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge { return v.f.with(vals).g }

// HistogramVec is a family of histograms split by label values; all
// share the family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family. nil
// bounds select DefBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []time.Duration, keys ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, keys, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram { return v.f.with(vals).h }
