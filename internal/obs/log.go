package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// NewLogger builds the shared structured logger: "text" for humans on a
// terminal, "json" for log shippers. Every daemon and CLI routes its
// diagnostics through one of these (the -log-format flag) instead of
// bare fmt.Fprintf(os.Stderr, ...), so fleet log pipelines see one
// schema.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// reqSeq breaks ties if the system's entropy source ever fails: the id
// degrades to a process-unique sequence number instead of a panic on the
// request path.
var reqSeq atomic.Uint64

// NewRequestID returns a 16-hex-char id for correlating one request's
// log lines across layers. The HTTP middleware stamps it into the
// request context and the X-Request-ID response header.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}
