package obs

import (
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("c_total", "c"); again != c {
		t.Fatal("re-registration did not return the same counter handle")
	}
	g := r.Gauge("g", "g")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestVecHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "code")
	a, b := v.With("200"), v.With("500")
	if a == b {
		t.Fatal("distinct label values share a counter")
	}
	a.Inc()
	if v.With("200") != a || v.With("200").Value() != 1 {
		t.Fatal("With is not stable per label value")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want within the first bucket", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 10*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want within the third bucket", p99)
	}
	// Overflow observations report the largest finite bound.
	h2 := newHistogram([]time.Duration{time.Millisecond})
	h2.Observe(time.Hour)
	if got := h2.Quantile(0.5); got != time.Millisecond {
		t.Fatalf("overflow quantile = %v, want 1ms", got)
	}
	if h2.Sum() != time.Hour {
		t.Fatalf("sum = %v", h2.Sum())
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := newHistogram(nil)
	h.Observe(-time.Second)
	if h.Sum() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation: sum %v count %d", h.Sum(), h.Count())
	}
}

// TestHotPathIncrementsAreAllocFree is the recorder-wire-path guard the
// bench gates rely on: the metric operations instrumentation puts on hot
// loops — counter increments, gauge moves, histogram observations — must
// allocate zero bytes per call, or the RecordPerInstr allocs/op gate
// would charge instrumentation against the zero-alloc steady-state goal.
func TestHotPathIncrementsAreAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	g := r.Gauge("hot_gauge", "")
	h := r.Histogram("hot_seconds", "")
	v := r.CounterVec("hot_vec_total", "", "k").With("v") // preallocated handle
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		g.Dec()
		v.Inc()
		h.Observe(3 * time.Millisecond)
	}); avg != 0 {
		t.Fatalf("hot-path metric ops allocate %.1f times per run, want 0", avg)
	}
}
