package cpu

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

// run assembles src, loads it, and executes until fault, syscall or the
// step limit. It returns the CPU for state inspection.
func run(t *testing.T, src string, maxSteps int) (*CPU, Event) {
	t.Helper()
	img, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := load(img)
	var ev Event
	for i := 0; i < maxSteps; i++ {
		ev = c.Step()
		if ev != EventStep {
			return c, ev
		}
	}
	return c, EventStep
}

func load(img *asm.Image) *CPU {
	m := mem.New()
	if len(img.Text) > 0 {
		m.Map(img.TextBase, uint32(len(img.Text)))
		m.StoreBytes(img.TextBase, img.Text)
	}
	if len(img.Data) > 0 {
		m.Map(img.DataBase, uint32(len(img.Data)))
		m.StoreBytes(img.DataBase, img.Data)
	}
	m.Map(mem.StackTop-mem.DefaultStackSize, mem.DefaultStackSize)
	c := New(m)
	c.PC = img.Entry
	c.Regs[isa.RegSP] = mem.StackTop
	return c
}

func TestArithmetic(t *testing.T) {
	c, ev := run(t, `
        li   a0, 6
        li   a1, 7
        mul  a2, a0, a1      # 42
        sub  a3, a2, a1      # 35
        div  a4, a2, a0      # 7
        rem  a5, a2, a1      # 0
        syscall
`, 100)
	if ev != EventSyscall {
		t.Fatalf("event = %v; fault=%v", ev, c.Fault)
	}
	want := map[uint8]uint32{isa.RegA2: 42, isa.RegA3: 35, isa.RegA4: 7, isa.RegA5: 0}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%s = %d; want %d", isa.RegName(r), c.Regs[r], v)
		}
	}
}

func TestSignedUnsignedOps(t *testing.T) {
	c, ev := run(t, `
        li   t0, -8
        li   t1, 2
        div  a0, t0, t1      # -4
        srl  a1, t0, t1      # logical: 0x3FFFFFFE
        sra  a2, t0, t1      # arithmetic: -2
        slt  a3, t0, t1      # signed: 1
        sltu a4, t0, t1      # unsigned: 0 (big number)
        mulh a5, t0, t1      # high bits of -16: -1
        syscall
`, 100)
	if ev != EventSyscall {
		t.Fatalf("event = %v; fault=%v", ev, c.Fault)
	}
	if int32(c.Regs[isa.RegA0]) != -4 {
		t.Errorf("div = %d", int32(c.Regs[isa.RegA0]))
	}
	if c.Regs[isa.RegA1] != 0x3FFFFFFE {
		t.Errorf("srl = %#x", c.Regs[isa.RegA1])
	}
	if int32(c.Regs[isa.RegA2]) != -2 {
		t.Errorf("sra = %d", int32(c.Regs[isa.RegA2]))
	}
	if c.Regs[isa.RegA3] != 1 || c.Regs[isa.RegA4] != 0 {
		t.Errorf("slt/sltu = %d/%d", c.Regs[isa.RegA3], c.Regs[isa.RegA4])
	}
	if int32(c.Regs[isa.RegA5]) != -1 {
		t.Errorf("mulh = %d", int32(c.Regs[isa.RegA5]))
	}
}

func TestLoadsStores(t *testing.T) {
	c, ev := run(t, `
        .data
w:      .word 0x11223344
b:      .space 8
        .text
main:   la   t0, w
        lw   a0, (t0)        # 0x11223344
        lb   a1, 1(t0)       # 0x33
        lbu  a2, 3(t0)       # 0x11
        lh   a3, 2(t0)       # 0x1122
        la   t1, b
        li   t2, -2
        sw   t2, (t1)
        lw   a4, (t1)        # -2
        sb   zero, (t1)
        lw   a5, (t1)        # 0xFFFFFF00
        sh   zero, 2(t1)
        lw   a6, (t1)        # 0x0000FF00
        syscall
`, 100)
	if ev != EventSyscall {
		t.Fatalf("event = %v; fault=%v", ev, c.Fault)
	}
	checks := map[uint8]uint32{
		isa.RegA0: 0x11223344,
		isa.RegA1: 0x33,
		isa.RegA2: 0x11,
		isa.RegA3: 0x1122,
		isa.RegA4: 0xFFFFFFFE,
		isa.RegA5: 0xFFFFFF00,
		isa.RegA6: 0x0000FF00,
	}
	for r, v := range checks {
		if c.Regs[r] != v {
			t.Errorf("%s = %#x; want %#x", isa.RegName(r), c.Regs[r], v)
		}
	}
}

func TestSignExtensionLoads(t *testing.T) {
	c, _ := run(t, `
        .data
x:      .word 0xFF80FF80
        .text
main:   la  t0, x
        lb  a0, (t0)     # 0x80 -> -128
        lh  a1, (t0)     # 0xFF80 -> -128
        lbu a2, (t0)     # 128
        lhu a3, (t0)     # 0xFF80
        syscall
`, 100)
	if int32(c.Regs[isa.RegA0]) != -128 || int32(c.Regs[isa.RegA1]) != -128 {
		t.Errorf("signed loads = %d, %d", int32(c.Regs[isa.RegA0]), int32(c.Regs[isa.RegA1]))
	}
	if c.Regs[isa.RegA2] != 128 || c.Regs[isa.RegA3] != 0xFF80 {
		t.Errorf("unsigned loads = %d, %#x", c.Regs[isa.RegA2], c.Regs[isa.RegA3])
	}
}

func TestControlFlow(t *testing.T) {
	c, ev := run(t, `
main:   li   a0, 0
        li   t0, 10
        li   t1, 0
loop:   add  a0, a0, t1
        addi t1, t1, 1
        blt  t1, t0, loop
        call double
        syscall
double: add  a0, a0, a0
        ret
`, 1000)
	if ev != EventSyscall {
		t.Fatalf("event = %v; fault=%v", ev, c.Fault)
	}
	if c.Regs[isa.RegA0] != 90 { // sum 0..9 = 45, doubled
		t.Errorf("a0 = %d; want 90", c.Regs[isa.RegA0])
	}
}

func TestAMO(t *testing.T) {
	c, ev := run(t, `
        .data
lockw:  .word 0
ctr:    .word 100
        .text
main:   la   t0, lockw
        li   t1, 1
        amoswap a0, t1, (t0)   # a0 = 0 (old), lock = 1
        la   t2, ctr
        li   t3, 5
        amoadd a1, t3, (t2)    # a1 = 100, ctr = 105
        lw   a2, (t2)
        syscall
`, 100)
	if ev != EventSyscall {
		t.Fatalf("event = %v; fault=%v", ev, c.Fault)
	}
	if c.Regs[isa.RegA0] != 0 || c.Regs[isa.RegA1] != 100 || c.Regs[isa.RegA2] != 105 {
		t.Errorf("amo results = %d, %d, %d", c.Regs[isa.RegA0], c.Regs[isa.RegA1], c.Regs[isa.RegA2])
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c, _ := run(t, `
        addi zero, zero, 5
        li   a0, 7
        add  zero, a0, a0
        syscall
`, 100)
	if c.Regs[isa.RegZero] != 0 {
		t.Errorf("zero register = %d", c.Regs[isa.RegZero])
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want FaultCause
	}{
		{"null load", "lw a0, (zero)\n", FaultMemRead},
		{"null store", "sw a0, (zero)\n", FaultMemWrite},
		{"wild load", "li t0, 0x7000\nlw a0, (t0)\n", FaultMemRead},
		{"misaligned load", "li t0, 0x10000002\nlw a0, (t0)\n", FaultMisaligned},
		{"div zero", "li a0, 3\ndiv a1, a0, zero\n", FaultDivZero},
		{"rem zero", "li a0, 3\nrem a1, a0, zero\n", FaultDivZero},
		{"divu zero", "li a0, 3\ndivu a1, a0, zero\n", FaultDivZero},
		{"break", "break\n", FaultBreak},
		{"null call", "jalr ra, zero, 0\n", FaultMemFetch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, ev := run(t, tc.src, 100)
			if ev != EventFault {
				t.Fatalf("event = %v; want fault", ev)
			}
			if c.Fault == nil || c.Fault.Cause != tc.want {
				t.Fatalf("fault = %+v; want cause %v", c.Fault, tc.want)
			}
			if !c.Halted {
				t.Error("core not halted after fault")
			}
		})
	}
}

func TestFaultDoesNotCommit(t *testing.T) {
	c, ev := run(t, `
        li  a0, 1
        li  a1, 2
        lw  a2, (zero)
`, 100)
	if ev != EventFault {
		t.Fatalf("event = %v", ev)
	}
	if c.Fault.IC != 2 {
		t.Errorf("fault IC = %d; want 2 committed instructions", c.Fault.IC)
	}
	if c.Fault.Addr != 0 || c.Fault.Cause != FaultMemRead {
		t.Errorf("fault = %+v", c.Fault)
	}
	// PC must still point at the faulting instruction.
	if c.PC != c.Fault.PC {
		t.Errorf("PC advanced past fault: %#x vs %#x", c.PC, c.Fault.PC)
	}
}

func TestLoggableHookFiring(t *testing.T) {
	img := asm.MustAssemble("h.s", `
        .data
x:      .word 7
        .text
main:   la  t0, x
        lw  a0, (t0)     # loggable
        sb  a0, (t0)     # loggable (sub-word RMW)
        sh  a0, (t0)     # loggable
        sw  a0, (t0)     # word store: NOT loggable
        amoadd a1, a0, (t0)  # loggable
        syscall
`)
	c := load(img)
	var loggable, stores []uint32
	var writes int
	c.OnLoggable = func(w uint32, isWrite bool) {
		loggable = append(loggable, w)
		if isWrite {
			writes++
		}
	}
	c.OnWordStore = func(w uint32) { stores = append(stores, w) }
	for {
		if ev := c.Step(); ev != EventStep {
			break
		}
	}
	x := img.MustSymbol("x")
	if len(loggable) != 4 {
		t.Fatalf("loggable hooks = %d; want 4 (lw, sb, sh, amoadd)", len(loggable))
	}
	for _, a := range loggable {
		if a != x {
			t.Errorf("loggable addr = %#x; want %#x", a, x)
		}
	}
	if len(stores) != 1 || stores[0] != x {
		t.Errorf("word-store hooks = %v", stores)
	}
	if writes != 3 { // sb, sh, amoadd
		t.Errorf("write-flagged loggable ops = %d; want 3", writes)
	}
}

func TestHookNotFiredOnFault(t *testing.T) {
	img := asm.MustAssemble("h.s", "lw a0, (zero)\n")
	c := load(img)
	fired := false
	c.OnLoggable = func(uint32, bool) { fired = true }
	c.Step()
	if fired {
		t.Error("loggable hook fired for a faulting load")
	}
}

func TestAutoMap(t *testing.T) {
	img := asm.MustAssemble("h.s", `
        li t0, 0x2000000
        lw a0, (t0)
        syscall
`)
	c := load(img)
	c.AutoMap = true
	var ev Event
	for {
		ev = c.Step()
		if ev != EventStep {
			break
		}
	}
	if ev != EventSyscall {
		t.Fatalf("event = %v; fault=%v (AutoMap should prevent the fault)", ev, c.Fault)
	}
	if c.Regs[isa.RegA0] != 0 {
		t.Errorf("auto-mapped load = %d; want 0", c.Regs[isa.RegA0])
	}
}

func TestWatchPC(t *testing.T) {
	img := asm.MustAssemble("w.s", `
main:   li   t0, 3
loop:   addi t0, t0, -1
target: bnez t0, loop
        syscall
`)
	c := load(img)
	target := img.MustSymbol("target")
	c.Watch(target)
	for {
		if ev := c.Step(); ev != EventStep {
			break
		}
	}
	ic, hits, ok := c.LastExec(target)
	if !ok || hits != 3 {
		t.Fatalf("watch: ic=%d hits=%d ok=%v", ic, hits, ok)
	}
	// target commits at IC 3, 5, 7 (li, then addi/bnez pairs).
	if ic != 7 {
		t.Errorf("last exec IC = %d; want 7", ic)
	}
}

func TestSnapshotRestore(t *testing.T) {
	img := asm.MustAssemble("s.s", "li a0, 1\nli a1, 2\nsyscall\n")
	c := load(img)
	c.Step()
	snap := c.State()
	c.Step()
	c.Step()
	c2 := load(img)
	c2.Restore(snap)
	if c2.PC != snap.PC || c2.Regs[isa.RegA0] != 1 || c2.Regs[isa.RegA1] != 0 {
		t.Error("restore did not reproduce snapshot state")
	}
}

func TestFetchFaultOnUnmappedPC(t *testing.T) {
	m := mem.New()
	c := New(m)
	c.PC = 0x400000
	if ev := c.Step(); ev != EventFault || c.Fault.Cause != FaultMemFetch {
		t.Fatalf("event = %v fault = %+v", ev, c.Fault)
	}
}

func TestHaltedStaysHalted(t *testing.T) {
	m := mem.New()
	c := New(m)
	c.Halted = true
	if ev := c.Step(); ev != EventHalted {
		t.Fatalf("event = %v", ev)
	}
}

func BenchmarkInterpreterLoop(b *testing.B) {
	img := asm.MustAssemble("b.s", `
        .data
arr:    .space 4096
        .text
main:   la   t0, arr
        li   t1, 0
loop:   andi t2, t1, 1023
        slli t2, t2, 2
        add  t3, t0, t2
        lw   t4, (t3)
        addi t4, t4, 1
        sw   t4, (t3)
        addi t1, t1, 1
        j    loop
`)
	c := load(img)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
