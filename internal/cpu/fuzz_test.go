package cpu

// Differential fuzzing of the two execution engines: arbitrary instruction
// streams must behave instruction-identically under the preserved switch
// interpreter (Step) and the predecoded block engine (Run) — registers,
// memory, IC, hook streams, and FaultInfo. Register seeding points base
// registers at both the data page and the text page, so fuzzed stores
// regularly rewrite code under cached blocks and exercise the
// self-modifying-code invalidation paths.

import (
	"encoding/binary"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

const (
	fuzzTextBase = uint32(0x0040_0000)
	fuzzDataBase = uint32(0x1000_0000)
	fuzzMaxInstr = 512
)

// buildFuzzCPU maps one text page filled from words and one data page,
// and seeds registers so memory ops frequently land somewhere mapped —
// including the text page itself.
func buildFuzzCPU(words []uint32) *CPU {
	m := mem.New()
	m.Map(fuzzTextBase, mem.PageSize)
	m.Map(fuzzDataBase, mem.PageSize)
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	if err := m.StoreBytes(fuzzTextBase, buf); err != nil {
		panic(err)
	}
	c := New(m)
	c.PC = fuzzTextBase
	for i := 0; i < isa.NumRegs; i++ {
		c.Regs[i] = uint32(i) * 4
	}
	c.Regs[isa.RegSP] = fuzzDataBase + mem.PageSize - 16
	c.Regs[isa.RegA0] = fuzzDataBase
	c.Regs[isa.RegA1] = fuzzDataBase + 512
	c.Regs[isa.RegT0] = fuzzTextBase // stores through t0 patch code
	c.Regs[isa.RegT1] = fuzzTextBase + 64
	c.Regs[isa.RegZero] = 0
	return c
}

func FuzzBlockVsSwitch(f *testing.F) {
	// Seed with the structured twin programs plus raw tails that decode
	// into interesting shapes.
	for _, src := range twinPrograms {
		if img, err := asm.Assemble("seed.s", src); err == nil {
			f.Add(img.Text)
		}
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := len(data) / 4
		if n > int(mem.PageSize/4) {
			n = int(mem.PageSize / 4)
		}
		words := make([]uint32, n)
		for i := range words {
			words[i] = binary.LittleEndian.Uint32(data[4*i:])
		}
		// Derive a batch size from the input so the fuzzer also explores
		// batch-boundary interactions.
		batch := uint64(data[0]%63) + 1
		if data[0]&0x80 != 0 {
			batch = fuzzMaxInstr
		}

		cs := buildFuzzCPU(words)
		cr := buildFuzzCPU(words)
		for _, pc := range []uint32{fuzzTextBase + 8, fuzzTextBase + 8, fuzzTextBase + 32} {
			cs.Watch(pc)
			cr.Watch(pc)
		}
		var se, re []hookEvent
		instrument(cs, &se)
		instrument(cr, &re)

		evS := driveStep(cs, fuzzMaxInstr)
		evR := driveRun(cr, fuzzMaxInstr, batch)

		if evS != evR {
			t.Fatalf("final event: step %v, run %v (fault step=%v run=%v)", evS, evR, cs.Fault, cr.Fault)
		}
		compareCPUs(t, cs, cr)
		if len(se) != len(re) {
			t.Fatalf("hook streams: step %d events, run %d", len(se), len(re))
		}
		for i := range se {
			if se[i] != re[i] {
				t.Fatalf("hook event %d: step %+v, run %+v", i, se[i], re[i])
			}
		}
		for _, pc := range []uint32{fuzzTextBase + 8, fuzzTextBase + 32} {
			sic, sh, _ := cs.LastExec(pc)
			ric, rh, _ := cr.LastExec(pc)
			if sic != ric || sh != rh {
				t.Fatalf("LastExec(%#x): step (%d,%d), run (%d,%d)", pc, sic, sh, ric, rh)
			}
		}
	})
}
