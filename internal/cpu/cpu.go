// Package cpu implements the interpreting processor core of the simulated
// machine.
//
// The core executes the ISA of internal/isa against a mem.Memory, exposing
// exactly the architecturally visible events BugNet's hardware taps:
//
//   - OnLoggable fires before every committed "loggable" memory operation
//     with the address of the aligned word it touches. Loggable operations
//     are loads (LW/LH/LHU/LB/LBU), atomics, and sub-word stores (SB/SH,
//     which read-modify-write their containing word — see DESIGN.md §5).
//     The recorder uses this hook to test first-load bits and log values;
//     the replayer uses it to inject logged values before the access.
//   - OnWordStore fires before every committed full-word store (SW), which
//     sets the first-load bit without logging (paper §4.3).
//   - OnFetch, when enabled, fires for every instruction fetch; it backs
//     the self-modifying-code extension (paper §5.3).
//
// Faulting instructions do not commit and fire no hooks; the CPU stops with
// a FaultInfo describing the architectural fault, which is what triggers
// BugNet's log dump (paper §4.8).
//
// Two execution engines share this state and these hooks: Step, the
// reference switch interpreter that decodes every instruction word on
// every execution, and Run (block.go), the predecoded basic-block engine
// all record/replay consumers drive by default. The two are held to
// instruction-identical behavior by differential tests and fuzzing.
package cpu

import (
	"encoding/binary"
	"fmt"

	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

// FaultCause classifies an architectural fault.
type FaultCause uint8

// Fault causes.
const (
	FaultNone          FaultCause = iota
	FaultInvalidOpcode            // undefined instruction word
	FaultMemRead                  // load from unmapped memory
	FaultMemWrite                 // store to unmapped memory
	FaultMemFetch                 // instruction fetch from unmapped memory
	FaultMisaligned               // misaligned data access
	FaultDivZero                  // integer division by zero
	FaultBreak                    // explicit BREAK instruction
)

func (c FaultCause) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultInvalidOpcode:
		return "invalid opcode"
	case FaultMemRead:
		return "invalid memory read"
	case FaultMemWrite:
		return "invalid memory write"
	case FaultMemFetch:
		return "invalid instruction fetch"
	case FaultMisaligned:
		return "misaligned access"
	case FaultDivZero:
		return "division by zero"
	case FaultBreak:
		return "breakpoint trap"
	}
	return "unknown fault"
}

// FaultInfo describes a fault that stopped the core.
type FaultInfo struct {
	Cause FaultCause
	PC    uint32 // address of the faulting instruction
	Addr  uint32 // faulting data address, if a memory fault
	IC    uint64 // committed instructions before the fault
}

func (f *FaultInfo) Error() string {
	return fmt.Sprintf("cpu: %s at pc=0x%08x addr=0x%08x after %d instructions",
		f.Cause, f.PC, f.Addr, f.IC)
}

// Event is the outcome of one Step.
type Event uint8

// Step outcomes.
const (
	EventStep    Event = iota // instruction committed, nothing notable
	EventSyscall              // a SYSCALL committed; the kernel must service it
	EventFault                // the instruction faulted; the core is stopped
	EventHalted               // the core was already halted
)

// CPU is one processor core's architectural state plus hooks.
//
// Hooks are plain function fields rather than an interface so the hot
// interpreter loop pays a nil check instead of a dynamic dispatch when a
// hook is unused.
type CPU struct {
	PC   uint32
	Regs [isa.NumRegs]uint32
	Mem  *mem.Memory

	// IC is the number of committed instructions.
	IC uint64

	// Halted stops the core; set by the kernel on thread exit.
	Halted bool

	// Fault holds the fault that stopped the core, if any.
	Fault *FaultInfo

	// AutoMap makes data accesses map missing pages (zero-filled) instead
	// of faulting. The replayer runs with AutoMap: replay memory starts
	// empty and materializes from logged values and replayed stores
	// (paper §5.1 "clear all of the data memory locations").
	AutoMap bool

	// OnLoggable, if set, is called with the aligned word address before
	// every committed loggable memory operation. isWrite distinguishes
	// operations that also modify memory (sub-word stores, atomics), which
	// the recorder must route through the coherence directory as writes.
	OnLoggable func(wordAddr uint32, isWrite bool)

	// OnWordStore, if set, is called with the aligned word address before
	// every committed full-word store.
	OnWordStore func(wordAddr uint32)

	// OnFetch, if set, is called with the instruction address before each
	// fetch. Used by the LogCodeLoads extension.
	OnFetch func(pc uint32)

	// watches are PCs whose most recent execution IC is tracked, used to
	// measure root-cause→crash windows (Table 1).
	watches []watchedPC

	// fetch cache: one page of text, revalidated against the memory's
	// pointer-invalidation generation (a copy-on-write fault or Unmap can
	// replace the backing array) and invalidated explicitly after code
	// injection; the base system does not support self-modifying code
	// (paper §5.3).
	fetchPageNum uint32
	fetchPage    *mem.Page
	fetchGen     uint64
	fetchValid   bool

	// bc is the predecoded basic-block cache behind Run (see block.go),
	// created lazily on the first Run so Step-only cores pay nothing.
	bc *blockCache
	// stop is the pending Stop request consumed by Run.
	stop bool
}

type watchedPC struct {
	pc     uint32
	lastIC uint64
	hits   uint64
}

// New returns a core attached to m with all state zero.
func New(m *mem.Memory) *CPU {
	return &CPU{Mem: m}
}

// Watch registers pc for last-execution tracking. Watched PCs are
// resolved into per-instruction block metadata at predecode time, so
// already-decoded blocks are flushed.
func (c *CPU) Watch(pc uint32) {
	c.watches = append(c.watches, watchedPC{pc: pc})
	if c.bc != nil {
		c.bc.flush()
	}
}

// LastExec returns the IC at which the watched pc most recently committed
// and how many times it committed. ok is false if pc was never watched.
func (c *CPU) LastExec(pc uint32) (ic uint64, hits uint64, ok bool) {
	for i := range c.watches {
		if c.watches[i].pc == pc {
			return c.watches[i].lastIC, c.watches[i].hits, true
		}
	}
	return 0, 0, false
}

// InvalidateFetchCache drops the cached text page and every predecoded
// block. Must be called after modifying text (self-modifying-code
// extension) or unmapping pages.
func (c *CPU) InvalidateFetchCache() {
	c.fetchValid = false
	if c.bc != nil {
		c.bc.flush()
	}
}

// fault stops the core.
func (c *CPU) fault(cause FaultCause, pc, addr uint32) Event {
	c.Fault = &FaultInfo{Cause: cause, PC: pc, Addr: addr, IC: c.IC}
	c.Halted = true
	return EventFault
}

// fetch reads the instruction word at pc through the one-page fetch cache.
func (c *CPU) fetch(pc uint32) (uint32, bool) {
	pageNum := pc >> mem.PageShift
	if !c.fetchValid || pageNum != c.fetchPageNum || c.Mem.Gen() != c.fetchGen {
		p := c.Mem.Page(pageNum)
		if p == nil {
			return 0, false
		}
		c.fetchPage, c.fetchPageNum, c.fetchGen, c.fetchValid = p, pageNum, c.Mem.Gen(), true
	}
	o := pc & (mem.PageSize - 1)
	return binary.LittleEndian.Uint32(c.fetchPage[o : o+4 : o+4]), true
}

// Step executes one instruction and returns what happened.
func (c *CPU) Step() Event {
	if c.Halted {
		return EventHalted
	}
	pc := c.PC
	if pc&3 != 0 {
		return c.fault(FaultMemFetch, pc, pc)
	}
	if c.OnFetch != nil {
		c.OnFetch(pc)
	}
	w, ok := c.fetch(pc)
	if !ok {
		return c.fault(FaultMemFetch, pc, pc)
	}
	ins := isa.Decode(w)
	op := ins.Op

	r := &c.Regs
	nextPC := pc + 4
	ev := EventStep

	switch op {
	case isa.OpInvalid:
		return c.fault(FaultInvalidOpcode, pc, 0)

	// --- R-type ALU ---
	case isa.OpADD:
		r[ins.Rd] = r[ins.Rs1] + r[ins.Rs2]
	case isa.OpSUB:
		r[ins.Rd] = r[ins.Rs1] - r[ins.Rs2]
	case isa.OpMUL:
		r[ins.Rd] = r[ins.Rs1] * r[ins.Rs2]
	case isa.OpMULH:
		p := int64(int32(r[ins.Rs1])) * int64(int32(r[ins.Rs2]))
		r[ins.Rd] = uint32(uint64(p) >> 32)
	case isa.OpMULHU:
		p := uint64(r[ins.Rs1]) * uint64(r[ins.Rs2])
		r[ins.Rd] = uint32(p >> 32)
	case isa.OpDIV:
		d := int32(r[ins.Rs2])
		if d == 0 {
			return c.fault(FaultDivZero, pc, 0)
		}
		n := int32(r[ins.Rs1])
		if n == -1<<31 && d == -1 {
			r[ins.Rd] = uint32(n)
		} else {
			r[ins.Rd] = uint32(n / d)
		}
	case isa.OpDIVU:
		if r[ins.Rs2] == 0 {
			return c.fault(FaultDivZero, pc, 0)
		}
		r[ins.Rd] = r[ins.Rs1] / r[ins.Rs2]
	case isa.OpREM:
		d := int32(r[ins.Rs2])
		if d == 0 {
			return c.fault(FaultDivZero, pc, 0)
		}
		n := int32(r[ins.Rs1])
		if n == -1<<31 && d == -1 {
			r[ins.Rd] = 0
		} else {
			r[ins.Rd] = uint32(n % d)
		}
	case isa.OpREMU:
		if r[ins.Rs2] == 0 {
			return c.fault(FaultDivZero, pc, 0)
		}
		r[ins.Rd] = r[ins.Rs1] % r[ins.Rs2]
	case isa.OpAND:
		r[ins.Rd] = r[ins.Rs1] & r[ins.Rs2]
	case isa.OpOR:
		r[ins.Rd] = r[ins.Rs1] | r[ins.Rs2]
	case isa.OpXOR:
		r[ins.Rd] = r[ins.Rs1] ^ r[ins.Rs2]
	case isa.OpSLL:
		r[ins.Rd] = r[ins.Rs1] << (r[ins.Rs2] & 31)
	case isa.OpSRL:
		r[ins.Rd] = r[ins.Rs1] >> (r[ins.Rs2] & 31)
	case isa.OpSRA:
		r[ins.Rd] = uint32(int32(r[ins.Rs1]) >> (r[ins.Rs2] & 31))
	case isa.OpSLT:
		r[ins.Rd] = b2u(int32(r[ins.Rs1]) < int32(r[ins.Rs2]))
	case isa.OpSLTU:
		r[ins.Rd] = b2u(r[ins.Rs1] < r[ins.Rs2])

	// --- I-type ALU ---
	case isa.OpADDI:
		r[ins.Rd] = r[ins.Rs1] + uint32(ins.Imm)
	case isa.OpANDI:
		r[ins.Rd] = r[ins.Rs1] & uint32(ins.Imm)
	case isa.OpORI:
		r[ins.Rd] = r[ins.Rs1] | uint32(ins.Imm)
	case isa.OpXORI:
		r[ins.Rd] = r[ins.Rs1] ^ uint32(ins.Imm)
	case isa.OpSLTI:
		r[ins.Rd] = b2u(int32(r[ins.Rs1]) < ins.Imm)
	case isa.OpSLTIU:
		r[ins.Rd] = b2u(r[ins.Rs1] < uint32(ins.Imm))
	case isa.OpSLLI:
		r[ins.Rd] = r[ins.Rs1] << (uint32(ins.Imm) & 31)
	case isa.OpSRLI:
		r[ins.Rd] = r[ins.Rs1] >> (uint32(ins.Imm) & 31)
	case isa.OpSRAI:
		r[ins.Rd] = uint32(int32(r[ins.Rs1]) >> (uint32(ins.Imm) & 31))
	case isa.OpLUI:
		r[ins.Rd] = uint32(ins.Imm) << 16

	// --- memory ---
	case isa.OpLW, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU:
		ea := r[ins.Rs1] + uint32(ins.Imm)
		v, evt := c.load(op, pc, ea)
		if evt != EventStep {
			return evt
		}
		r[ins.Rd] = v

	case isa.OpSW, isa.OpSH, isa.OpSB:
		ea := r[ins.Rs1] + uint32(ins.Imm)
		if evt := c.store(op, pc, ea, r[ins.Rd]); evt != EventStep {
			return evt
		}

	case isa.OpAMOSWAP, isa.OpAMOADD:
		ea := r[ins.Rs1]
		old, evt := c.amo(op, pc, ea, r[ins.Rs2])
		if evt != EventStep {
			return evt
		}
		r[ins.Rd] = old

	// --- control transfer ---
	case isa.OpBEQ:
		if r[ins.Rs1] == r[ins.Rs2] {
			nextPC = pc + 4 + uint32(ins.Imm)
		}
	case isa.OpBNE:
		if r[ins.Rs1] != r[ins.Rs2] {
			nextPC = pc + 4 + uint32(ins.Imm)
		}
	case isa.OpBLT:
		if int32(r[ins.Rs1]) < int32(r[ins.Rs2]) {
			nextPC = pc + 4 + uint32(ins.Imm)
		}
	case isa.OpBGE:
		if int32(r[ins.Rs1]) >= int32(r[ins.Rs2]) {
			nextPC = pc + 4 + uint32(ins.Imm)
		}
	case isa.OpBLTU:
		if r[ins.Rs1] < r[ins.Rs2] {
			nextPC = pc + 4 + uint32(ins.Imm)
		}
	case isa.OpBGEU:
		if r[ins.Rs1] >= r[ins.Rs2] {
			nextPC = pc + 4 + uint32(ins.Imm)
		}
	case isa.OpJAL:
		r[isa.RegRA] = pc + 4
		nextPC = pc + 4 + uint32(ins.Imm)
	case isa.OpJ:
		nextPC = pc + 4 + uint32(ins.Imm)
	case isa.OpJALR:
		target := r[ins.Rs1] + uint32(ins.Imm)
		r[ins.Rd] = pc + 4
		nextPC = target

	// --- system ---
	case isa.OpSYSCALL:
		ev = EventSyscall
	case isa.OpBREAK:
		return c.fault(FaultBreak, pc, 0)
	}

	r[isa.RegZero] = 0
	c.PC = nextPC
	c.IC++
	if len(c.watches) != 0 {
		for i := range c.watches {
			if c.watches[i].pc == pc {
				c.watches[i].lastIC = c.IC
				c.watches[i].hits++
			}
		}
	}
	return ev
}

// load performs a load of any width, firing the loggable hook first.
func (c *CPU) load(op isa.Opcode, pc, ea uint32) (uint32, Event) {
	width := op.MemBytes()
	if ea&uint32(width-1) != 0 {
		return 0, c.fault(FaultMisaligned, pc, ea)
	}
	wordAddr := ea &^ 3
	if !c.Mem.Mapped(wordAddr) {
		if !c.AutoMap || !c.Mem.TryMap(wordAddr, 4) {
			return 0, c.fault(FaultMemRead, pc, ea)
		}
	}
	if c.OnLoggable != nil {
		c.OnLoggable(wordAddr, false)
	}
	word, err := c.Mem.LoadWord(wordAddr)
	if err != nil {
		return 0, c.fault(FaultMemRead, pc, ea)
	}
	shift := (ea & 3) * 8
	switch op {
	case isa.OpLW:
		return word, EventStep
	case isa.OpLH:
		return uint32(int32(int16(word >> shift))), EventStep
	case isa.OpLHU:
		return word >> shift & 0xFFFF, EventStep
	case isa.OpLB:
		return uint32(int32(int8(word >> shift))), EventStep
	case isa.OpLBU:
		return word >> shift & 0xFF, EventStep
	}
	return 0, c.fault(FaultInvalidOpcode, pc, 0)
}

// store performs a store of any width. Full-word stores fire OnWordStore;
// sub-word stores are read-modify-writes of their containing word and fire
// OnLoggable (see package comment).
func (c *CPU) store(op isa.Opcode, pc, ea, v uint32) Event {
	width := op.MemBytes()
	if ea&uint32(width-1) != 0 {
		return c.fault(FaultMisaligned, pc, ea)
	}
	wordAddr := ea &^ 3
	if !c.Mem.Mapped(wordAddr) {
		if !c.AutoMap || !c.Mem.TryMap(wordAddr, 4) {
			return c.fault(FaultMemWrite, pc, ea)
		}
	}
	switch op {
	case isa.OpSW:
		if c.OnWordStore != nil {
			c.OnWordStore(wordAddr)
		}
		if err := c.Mem.StoreWord(ea, v); err != nil {
			return c.fault(FaultMemWrite, pc, ea)
		}
	case isa.OpSH:
		if c.OnLoggable != nil {
			c.OnLoggable(wordAddr, true)
		}
		if err := c.Mem.StoreHalf(ea, uint16(v)); err != nil {
			return c.fault(FaultMemWrite, pc, ea)
		}
	case isa.OpSB:
		if c.OnLoggable != nil {
			c.OnLoggable(wordAddr, true)
		}
		if err := c.Mem.StoreByte(ea, byte(v)); err != nil {
			return c.fault(FaultMemWrite, pc, ea)
		}
	}
	c.noteCodeWrite(wordAddr)
	return EventStep
}

// amo performs an atomic read-modify-write on the word at ea.
func (c *CPU) amo(op isa.Opcode, pc, ea, src uint32) (uint32, Event) {
	if ea&3 != 0 {
		return 0, c.fault(FaultMisaligned, pc, ea)
	}
	if !c.Mem.Mapped(ea) {
		if !c.AutoMap || !c.Mem.TryMap(ea, 4) {
			return 0, c.fault(FaultMemRead, pc, ea)
		}
	}
	if c.OnLoggable != nil {
		c.OnLoggable(ea, true)
	}
	old, err := c.Mem.LoadWord(ea)
	if err != nil {
		return 0, c.fault(FaultMemRead, pc, ea)
	}
	var next uint32
	switch op {
	case isa.OpAMOSWAP:
		next = src
	case isa.OpAMOADD:
		next = old + src
	}
	if err := c.Mem.StoreWord(ea, next); err != nil {
		return 0, c.fault(FaultMemWrite, pc, ea)
	}
	c.noteCodeWrite(ea)
	return old, EventStep
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Snapshot captures the architectural state (PC + registers) — exactly what
// a First-Load Log header records at a checkpoint boundary (paper §4.2).
type Snapshot struct {
	PC   uint32
	Regs [isa.NumRegs]uint32
}

// State returns the current architectural snapshot.
func (c *CPU) State() Snapshot {
	return Snapshot{PC: c.PC, Regs: c.Regs}
}

// Restore installs an architectural snapshot, as the replayer does from an
// FLL header.
func (c *CPU) Restore(s Snapshot) {
	c.PC = s.PC
	c.Regs = s.Regs
	c.Regs[isa.RegZero] = 0
}
