package cpu

// block_test.go holds the switch-interpreter ⇄ block-engine differential
// suite: Step is the preserved reference semantics, and Run must be
// instruction-identical to it — same registers, memory, faults, and the
// same hook stream with the same mid-instruction PC/IC observability the
// recorder and replayer depend on. Plus the self-modifying-code
// regression tests: a cached block must never execute stale decodes after
// guest stores, external code injection, or copy-on-write page
// replacement.

import (
	"fmt"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

// hookEvent is one observed CPU hook firing, including the architectural
// state the hook could see (the recorder reads c.PC and c.IC mid-step).
type hookEvent struct {
	kind  byte // 'L' loggable, 'W' word store, 'F' fetch
	addr  uint32
	write bool
	pc    uint32
	ic    uint64
}

// instrument installs recording hooks on c.
func instrument(c *CPU, events *[]hookEvent) {
	c.OnLoggable = func(a uint32, w bool) {
		*events = append(*events, hookEvent{'L', a, w, c.PC, c.IC})
	}
	c.OnWordStore = func(a uint32) {
		*events = append(*events, hookEvent{'W', a, false, c.PC, c.IC})
	}
	c.OnFetch = func(pc uint32) {
		*events = append(*events, hookEvent{'F', pc, false, c.PC, c.IC})
	}
}

// driveStep executes up to total instructions through the reference
// switch interpreter, treating syscalls as NOPs (the replay protocol).
func driveStep(c *CPU, total uint64) Event {
	for n := uint64(0); n < total; n++ {
		switch ev := c.Step(); ev {
		case EventStep, EventSyscall:
		default:
			return ev
		}
	}
	return EventStep
}

// driveRun executes up to total instructions through the block engine in
// batches of at most batch, continuing through syscalls.
func driveRun(c *CPU, total, batch uint64) Event {
	left := total
	for left > 0 {
		req := batch
		if left < req {
			req = left
		}
		n, ev := c.Run(req)
		left -= n
		switch ev {
		case EventStep, EventSyscall:
			if n == 0 && ev == EventStep {
				return ev // no progress possible (defensive)
			}
		default:
			return ev
		}
	}
	return EventStep
}

// compareCPUs fails the test if the two cores' architectural state or
// memory contents differ.
func compareCPUs(t *testing.T, cs, cr *CPU) {
	t.Helper()
	if cs.PC != cr.PC {
		t.Errorf("PC: step %#x, run %#x", cs.PC, cr.PC)
	}
	if cs.IC != cr.IC {
		t.Errorf("IC: step %d, run %d", cs.IC, cr.IC)
	}
	if cs.Regs != cr.Regs {
		t.Errorf("registers diverged:\nstep %v\nrun  %v", cs.Regs, cr.Regs)
	}
	if cs.Halted != cr.Halted {
		t.Errorf("Halted: step %v, run %v", cs.Halted, cr.Halted)
	}
	switch {
	case (cs.Fault == nil) != (cr.Fault == nil):
		t.Errorf("fault: step %v, run %v", cs.Fault, cr.Fault)
	case cs.Fault != nil && *cs.Fault != *cr.Fault:
		t.Errorf("fault: step %+v, run %+v", *cs.Fault, *cr.Fault)
	}
	sp, rp := cs.Mem.PageNumbers(), cr.Mem.PageNumbers()
	if len(sp) != len(rp) {
		t.Fatalf("mapped pages: step %d, run %d", len(sp), len(rp))
	}
	for i, num := range sp {
		if rp[i] != num {
			t.Fatalf("page sets differ: %v vs %v", sp, rp)
		}
		if *cs.Mem.Page(num) != *cr.Mem.Page(num) {
			t.Errorf("page %#x contents differ", num)
		}
	}
}

// twinTest assembles src, runs it through both engines (the block engine
// in the given batch size) and asserts identical state, fault, and hook
// streams.
func twinTest(t *testing.T, src string, total, batch uint64, hooks bool) {
	t.Helper()
	img, err := asm.Assemble("twin.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cs, cr := load(img), load(img)
	var se, re []hookEvent
	if hooks {
		instrument(cs, &se)
		instrument(cr, &re)
	}
	evS := driveStep(cs, total)
	evR := driveRun(cr, total, batch)
	if evS != evR {
		t.Errorf("final event: step %v, run %v", evS, evR)
	}
	compareCPUs(t, cs, cr)
	if hooks {
		if len(se) != len(re) {
			t.Fatalf("hook streams: step %d events, run %d", len(se), len(re))
		}
		for i := range se {
			if se[i] != re[i] {
				t.Fatalf("hook event %d: step %+v, run %+v", i, se[i], re[i])
			}
		}
	}
}

var twinPrograms = map[string]string{
	"arith-loop": `
        li   a0, 0
        li   t0, 0
        li   t1, 100
loop:   add  a0, a0, t0
        mul  a1, a0, t0
        xor  a2, a2, a1
        addi t0, t0, 1
        blt  t0, t1, loop
        syscall
`,
	"mem-mix": `
        .data
buf:    .space 64
        .text
        la   t0, buf
        li   t1, 0x1234
        sw   t1, 0(t0)
        sh   t1, 8(t0)
        sb   t1, 13(t0)
        lw   a0, 0(t0)
        lh   a1, 8(t0)
        lhu  a2, 8(t0)
        lb   a3, 13(t0)
        lbu  a4, 13(t0)
        li   t2, 7
        amoswap a5, t0, t2
        amoadd  a6, t0, t2
        syscall
`,
	"call-ret": `
main:   li   a0, 5
        jal  double
        jal  double
        syscall
double: add  a0, a0, a0
        jalr zero, ra, 0
`,
	"div-zero": `
        li   a0, 9
        li   a1, 0
        div  a2, a0, a1
        syscall
`,
	"misaligned-load": `
        la   t0, word
        lw   a0, 1(t0)
        syscall
        .data
word:   .word 42
`,
	"unmapped-load": `
        lui  t0, 0x7f00
        lw   a0, 0(t0)
        syscall
`,
	"break-trap": `
        li   a0, 1
        break
        li   a0, 2
`,
	"invalid-word": `
        li   a0, 3
        .word 0xffffffff
        li   a0, 4
`,
	"jalr-misaligned": `
        li   t0, 0x1001
        jalr ra, t0, 0
        syscall
`,
	"syscalls-interleaved": `
        li   a0, 1
        syscall
        addi a0, a0, 1
        syscall
        addi a0, a0, 1
        syscall
`,
	"sub-word-rmw": `
        .data
arr:    .space 16
        .text
        la   t0, arr
        li   t1, 0
loop:   sb   t1, 0(t0)
        addi t0, t0, 1
        addi t1, t1, 1
        slti t2, t1, 16
        bne  t2, zero, loop
        syscall
`,
}

func TestRunMatchesStep(t *testing.T) {
	for name, src := range twinPrograms {
		for _, batch := range []uint64{1, 3, 1 << 20} {
			t.Run(fmt.Sprintf("%s/batch=%d", name, batch), func(t *testing.T) {
				twinTest(t, src, 2000, batch, true)
			})
		}
	}
}

func TestRunMatchesStepNoHooks(t *testing.T) {
	for name, src := range twinPrograms {
		t.Run(name, func(t *testing.T) {
			twinTest(t, src, 2000, 1<<20, false)
		})
	}
}

func TestRunBudgetExact(t *testing.T) {
	img := asm.MustAssemble("straight.s", `
        li   a0, 0
loop:   addi a0, a0, 1
        addi a1, a1, 2
        addi a2, a2, 3
        addi a3, a3, 4
        j    loop
`)
	c := load(img)
	for _, want := range []uint64{1, 2, 3, 7, 64} {
		before := c.IC
		n, ev := c.Run(want)
		if n != want || ev != EventStep {
			t.Fatalf("Run(%d) = (%d, %v)", want, n, ev)
		}
		if c.IC-before != want {
			t.Fatalf("IC advanced %d; want %d", c.IC-before, want)
		}
	}
}

func TestRunWatchParity(t *testing.T) {
	src := twinPrograms["arith-loop"]
	img := asm.MustAssemble("w.s", src)
	cs, cr := load(img), load(img)
	watched := []uint32{img.Entry + 12, img.Entry + 24, img.Entry + 12} // incl. a duplicate
	for _, pc := range watched {
		cs.Watch(pc)
		cr.Watch(pc)
	}
	driveStep(cs, 2000)
	driveRun(cr, 2000, 1<<20)
	compareCPUs(t, cs, cr)
	for _, pc := range watched {
		sic, sh, sok := cs.LastExec(pc)
		ric, rh, rok := cr.LastExec(pc)
		if sic != ric || sh != rh || sok != rok {
			t.Errorf("LastExec(%#x): step (%d,%d,%v), run (%d,%d,%v)", pc, sic, sh, sok, ric, rh, rok)
		}
		if sok && sh == 0 {
			t.Errorf("watched pc %#x never hit; test is vacuous", pc)
		}
	}
}

func TestRunWatchAddedAfterDecode(t *testing.T) {
	img := asm.MustAssemble("w2.s", twinPrograms["arith-loop"])
	c := load(img)
	// Warm the block cache over the loop, then add a watch: predecoded
	// blocks must be re-resolved so the watch still counts hits.
	if n, ev := c.Run(50); n != 50 || ev != EventStep {
		t.Fatalf("warmup Run = (%d, %v)", n, ev)
	}
	loopPC := img.Entry + 12
	c.Watch(loopPC)
	c.Run(50)
	if _, hits, ok := c.LastExec(loopPC); !ok || hits == 0 {
		t.Errorf("watch added after decode never hit (hits=%d ok=%v)", hits, ok)
	}
}

// TestRunSelfModifyingStore is the in-engine SMC regression: a guest
// store overwrites the *next* instruction of the currently executing
// block; the stale decode must not run. (The LogCodeLoads record/replay
// variant lives in core's TestReplaySelfModifyingCodeWithExtension.)
func TestRunSelfModifyingStore(t *testing.T) {
	patch := isa.MustEncode(isa.Instruction{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 2})
	src := fmt.Sprintf(`
        la   t0, patch
        lw   t1, (t0)
        la   t2, target
        sw   t1, (t2)
target: addi a0, a0, 1    # becomes addi a0, a0, 2
        syscall
        .data
patch:  .word %#x
`, patch)
	// Parity first: both engines must execute the patched instruction.
	twinTest(t, src, 100, 1<<20, true)
	img := asm.MustAssemble("smc.s", src)
	c := load(img)
	if _, ev := c.Run(100); ev != EventSyscall {
		t.Fatalf("event = %v (fault %v)", ev, c.Fault)
	}
	if c.Regs[isa.RegA0] != 2 {
		t.Errorf("a0 = %d; want 2 (the patched increment)", c.Regs[isa.RegA0])
	}
}

// TestRunExternalInjectionInvalidate covers the documented external-write
// contract: mutate text through the Memory directly, call
// InvalidateFetchCache, and the block cache must re-decode.
func TestRunExternalInjectionInvalidate(t *testing.T) {
	img := asm.MustAssemble("inj.s", `
loop:   addi a0, a0, 1
        j    loop
`)
	c := load(img)
	if n, _ := c.Run(10); n != 10 {
		t.Fatal("warmup failed")
	}
	// Replace the loop body with a BREAK.
	brk := isa.MustEncode(isa.Instruction{Op: isa.OpBREAK})
	if err := c.Mem.StoreWord(img.Entry, brk); err != nil {
		t.Fatal(err)
	}
	c.InvalidateFetchCache()
	// The loop re-enters at img.Entry; the injected BREAK must fault
	// immediately instead of the stale addi executing.
	n, ev := c.Run(10)
	if n != 0 || ev != EventFault || c.Fault == nil || c.Fault.Cause != FaultBreak {
		t.Fatalf("after injection: Run = (%d, %v), fault %v; want an immediate break fault", n, ev, c.Fault)
	}
	// The 10-instruction warmup is 5 (addi, j) iterations.
	if a0 := c.Regs[isa.RegA0]; a0 != 5 {
		t.Errorf("a0 = %d; want 5 (stale instructions executed after injection)", a0)
	}
}

// TestRunGenInvalidation covers the mem.Gen path: a copy-on-write page
// replacement (snapshot + write through the live memory, no explicit
// invalidate call) must be detected by block-entry revalidation.
func TestRunGenInvalidation(t *testing.T) {
	img := asm.MustAssemble("gen.s", `
loop:   addi a0, a0, 1
        j    loop
`)
	c := load(img)
	if n, _ := c.Run(10); n != 10 {
		t.Fatal("warmup failed")
	}
	snap := c.Mem.Snapshot() // marks the text page shared
	gen := c.Mem.Gen()
	brk := isa.MustEncode(isa.Instruction{Op: isa.OpBREAK})
	if err := c.Mem.StoreWord(img.Entry, brk); err != nil { // COW replaces the page
		t.Fatal(err)
	}
	if c.Mem.Gen() == gen {
		t.Fatal("COW write did not bump Gen; test is vacuous")
	}
	_ = snap
	n, ev := c.Run(10)
	if ev != EventFault || c.Fault == nil || c.Fault.Cause != FaultBreak {
		t.Fatalf("after COW rewrite: Run = (%d, %v), fault %v; want a break fault", n, ev, c.Fault)
	}
}

// TestInvalidateFetchRange checks the kernel-facing ranged invalidation:
// external writes outside the decoded code pages keep cached blocks (and
// their stale bytes are never executed, because such writes cannot
// overlap decoded code), while writes into them flush.
func TestInvalidateFetchRange(t *testing.T) {
	img := asm.MustAssemble("rng.s", `
loop:   addi a0, a0, 1
        j    loop
`)
	c := load(img)
	if n, _ := c.Run(10); n != 10 {
		t.Fatal("warmup failed")
	}
	brk := isa.MustEncode(isa.Instruction{Op: isa.OpBREAK})
	if err := c.Mem.StoreWord(img.Entry, brk); err != nil {
		t.Fatal(err)
	}
	// A ranged invalidate that misses the code page must keep the cached
	// (now stale, but unreachable-by-contract) block: the loop keeps
	// running its decoded form.
	c.InvalidateFetchRange(img.DataBase, 64)
	if n, ev := c.Run(10); n != 10 || ev != EventStep {
		t.Fatalf("data-range invalidate flushed code blocks: Run = (%d, %v)", n, ev)
	}
	// One that covers the write must flush and surface the injected BREAK.
	c.InvalidateFetchRange(img.Entry, 4)
	if n, ev := c.Run(10); n != 0 || ev != EventFault || c.Fault.Cause != FaultBreak {
		t.Fatalf("code-range invalidate missed: Run = (%d, %v), fault %v", n, ev, c.Fault)
	}
}

func TestRunStopRequest(t *testing.T) {
	img := asm.MustAssemble("stop.s", `
        .data
buf:    .space 4
        .text
        la   t0, buf
loop:   lw   a1, (t0)
        addi a0, a0, 1
        j    loop
`)
	c := load(img)
	stops := 0
	c.OnLoggable = func(uint32, bool) {
		stops++
		if stops == 3 {
			c.Stop()
		}
	}
	n, ev := c.Run(1000)
	if ev != EventStep {
		t.Fatalf("event = %v", ev)
	}
	// The la expands to 2 instructions, each loop iteration is 3, and the
	// stop lands right after the instruction whose hook requested it (the
	// third lw, the first instruction of iteration 3).
	if want := uint64(2 + 2*3 + 1); n != want {
		t.Errorf("Run stopped after %d instructions; want %d", n, want)
	}
	// The request must not leak into the next Run.
	if n, _ := c.Run(5); n != 5 {
		t.Errorf("stale stop: next Run executed %d; want 5", n)
	}
}

func TestRunHaltedAndResume(t *testing.T) {
	img := asm.MustAssemble("halt.s", `
        li   a0, 1
        break
`)
	c := load(img)
	if n, ev := c.Run(10); ev != EventFault || n != 1 {
		t.Fatalf("Run = (%d, %v)", n, ev)
	}
	if n, ev := c.Run(10); ev != EventHalted || n != 0 {
		t.Fatalf("halted Run = (%d, %v)", n, ev)
	}
}

// TestRunAutoMap checks the replay configuration: AutoMap cores map
// missing data pages instead of faulting, identically in both engines.
func TestRunAutoMap(t *testing.T) {
	src := `
        lui  t0, 0x2000
        li   t1, 5
        sw   t1, 0(t0)
        lw   a0, 0(t0)
        lw   a1, 128(t0)
        syscall
`
	img := asm.MustAssemble("automap.s", src)
	cs, cr := load(img), load(img)
	cs.AutoMap, cr.AutoMap = true, true
	evS := driveStep(cs, 100)
	evR := driveRun(cr, 100, 1<<20)
	if evS != evR {
		t.Fatalf("events: %v vs %v", evS, evR)
	}
	compareCPUs(t, cs, cr)
	if cs.Regs[isa.RegA0] != 5 {
		t.Errorf("a0 = %d; want 5", cs.Regs[isa.RegA0])
	}
}

// quick sanity check on mem constants used by the cache geometry.
func TestBlockCacheGeometry(t *testing.T) {
	if blockCacheSlots&blockCacheMask != 0 || blockCacheSlots < int(mem.PageSize/4) {
		t.Fatalf("block cache geometry: slots=%d mask=%#x page-words=%d",
			blockCacheSlots, blockCacheMask, mem.PageSize/4)
	}
}
