package cpu

// block.go implements the predecoded basic-block execution engine: the
// QEMU-TB-style fast path behind CPU.Run.
//
// Step decodes every instruction word on every execution: a fetch-cache
// probe, an isa.Decode, and a ~60-case opcode dispatch per committed
// instruction, plus a linear scan of the watched-PC list. Run amortizes
// all of that by translating straight-line text into blocks of resolved
// DecodedInst records once and re-executing the predecoded form:
//
//   - operands are extracted and branch/jump targets resolved to absolute
//     addresses at predecode time;
//   - watched PCs are resolved to per-instruction metadata, so watch
//     bookkeeping costs one compare per instruction instead of a scan;
//   - a block ends at unconditional control transfers (J/JAL/JALR),
//     system ops (SYSCALL/BREAK), undecodable words, and page boundaries;
//     conditional branches stay inside the block and fall through when
//     untaken, so a block covers whole loop bodies.
//
// Blocks live in a direct-mapped cache keyed by entry PC. Three
// mechanisms keep cached decodes coherent with memory:
//
//   - InvalidateFetchCache flushes the whole cache (epoch bump) — the
//     documented hook for external code mutation, called by the replayer's
//     LogCodeLoads injection, by snapshot restore, and by the kernel after
//     it or the DMA engine writes user memory;
//   - the store path watches the page range blocks were decoded from and
//     flushes when a guest store lands there (self-modifying code), ending
//     the current block after the mutating instruction;
//   - mem.Gen revalidation: a generation bump means page pointers may
//     have gone stale (copy-on-write replacement or unmap), so block entry
//     re-checks the backing page pointer and re-decodes on mismatch.
//
// Step is preserved unchanged as the reference switch interpreter: Run
// falls back to it for edge cases (misaligned or unmapped PCs, AutoMap
// code injection), and the differential tests in block_test.go and
// fuzz_test.go hold the two engines to instruction-identical behavior.

import (
	"encoding/binary"

	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

// DecodedInst is one predecoded instruction: the fields of isa.Instruction
// with everything resolvable at decode time already resolved.
type DecodedInst struct {
	Op  isa.Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	// watch is the index of the watched-PC entry tracking this
	// instruction's address, watchNone for the common case, or
	// watchScanAll when several entries watch the same PC.
	watch int32
	// Imm is the sign-extended immediate; for branches and J/JAL it holds
	// the absolute target address instead of the PC-relative offset.
	Imm int32
}

const (
	watchNone    = int32(-1)
	watchScanAll = int32(-2)
)

// block is a predecoded run of straight-line text starting at pc.
type block struct {
	pc      uint32
	pageNum uint32
	page    *mem.Page // backing page at decode time, for Gen revalidation
	gen     uint64    // mem.Gen when the page pointer was last validated
	epoch   uint64    // owning cache epoch; a flush orphans the block
	inst    []DecodedInst
}

// Direct-mapped cache geometry: 4096 slots indexed by word address cover
// 16 KB of text alias-free; collisions only cost a re-decode.
const (
	blockCacheSlots = 4096
	blockCacheMask  = blockCacheSlots - 1
)

// blockCache is the per-CPU translation cache.
type blockCache struct {
	// epoch is bumped to invalidate every cached block at once; blocks
	// carry the epoch they were decoded under.
	epoch  uint64
	blocks [blockCacheSlots]*block
	// haveCode/loPage/hiPage bound the pages blocks were decoded from, so
	// the store path can detect self-modifying writes with two compares.
	haveCode       bool
	loPage, hiPage uint32
}

// flush orphans every cached block. The code-page bounds reset too; they
// re-establish as blocks are re-decoded.
func (bc *blockCache) flush() {
	bc.epoch++
	bc.haveCode = false
}

// noteCodeWrite flushes the block cache when a committed guest store lands
// in a page blocks were decoded from (self-modifying code). Called from
// the shared store/amo helpers so both engines keep the cache coherent.
func (c *CPU) noteCodeWrite(wordAddr uint32) {
	if bc := c.bc; bc != nil && bc.haveCode {
		if p := wordAddr >> mem.PageShift; p >= bc.loPage && p <= bc.hiPage {
			bc.flush()
		}
	}
}

// InvalidateFetchRange invalidates cached decodes that may cover the
// externally written range [addr, addr+n): the kernel and the DMA engine
// call it after writing user memory behind the core's back. Unlike
// InvalidateFetchCache it is range-filtered — writes outside the pages
// blocks were decoded from (the overwhelmingly common case: syscall and
// DMA buffers live in data memory) keep every cached block, so I/O-heavy
// recorded workloads do not re-predecode their hot loops after each read.
// The word-level fetch cache reads through the live page pointer and sees
// in-place external writes by construction, so only the block cache needs
// the flush.
func (c *CPU) InvalidateFetchRange(addr, n uint32) {
	bc := c.bc
	if n == 0 || bc == nil || !bc.haveCode {
		return
	}
	lo := addr >> mem.PageShift
	hi := (addr + n - 1) >> mem.PageShift
	if hi < lo { // the range wraps the address space
		hi = ^uint32(0) >> mem.PageShift
		lo = 0
	}
	if hi >= bc.loPage && lo <= bc.hiPage {
		c.fetchValid = false
		bc.flush()
	}
}

// Stop asks an in-progress Run to return after the instruction currently
// executing. Hooks call it to surface mid-batch failures promptly (the
// replayer stops on the exact instruction whose log entry diverged, as the
// single-step path does). The request is consumed by the current Run and
// does not carry into the next one.
func (c *CPU) Stop() { c.stop = true }

// Run executes up to max instructions through the predecoded block engine
// and returns how many committed and why execution stopped:
//
//   - EventStep: the budget ran out (or a hook requested Stop);
//   - EventSyscall: a SYSCALL committed (it is counted) and the kernel
//     must service it;
//   - EventFault: an instruction faulted without committing; c.Fault is
//     set and the core is stopped;
//   - EventHalted: the core was already halted.
//
// Run is hook-for-hook and fault-for-fault equivalent to calling Step max
// times: the same hooks fire in the same order with the same PC/IC state
// observable, which the differential tests enforce.
func (c *CPU) Run(max uint64) (uint64, Event) {
	if c.Halted {
		return 0, EventHalted
	}
	if c.bc == nil {
		c.bc = new(blockCache)
	}
	c.stop = false
	bc := c.bc
	var n uint64
	for n < max {
		blk := c.lookupBlock(bc, c.PC)
		if blk == nil {
			// Edge cases — misaligned PC, unmapped text page (a fetch
			// fault, or AutoMap code injection about to materialize the
			// page) — take the reference interpreter one step at a time.
			switch ev := c.Step(); ev {
			case EventStep:
				n++
				if c.stop {
					c.stop = false
					return n, EventStep
				}
			case EventSyscall:
				return n + 1, EventSyscall
			default:
				return n, ev
			}
			continue
		}
		exec, ev := c.runBlock(bc, blk, max-n)
		n += exec
		if ev != EventStep {
			return n, ev
		}
		if c.stop {
			c.stop = false
			return n, EventStep
		}
	}
	return n, EventStep
}

// lookupBlock returns a valid block starting exactly at pc, decoding one
// if needed, or nil when pc cannot be predecoded (misaligned, unmapped).
func (c *CPU) lookupBlock(bc *blockCache, pc uint32) *block {
	idx := (pc >> 2) & blockCacheMask
	b := bc.blocks[idx]
	if b != nil && b.pc == pc && b.epoch == bc.epoch {
		if gen := c.Mem.Gen(); gen != b.gen {
			// Page pointers may have gone stale (COW replacement, unmap).
			// Same pointer ⇒ same bytes: a COW bump elsewhere leaves this
			// decode valid. A different pointer means replaced content
			// (the copy-on-write fault that bumped Gen came with a write);
			// re-decode from the live page.
			if c.Mem.Page(b.pageNum) != b.page {
				b = nil
			} else {
				b.gen = gen
			}
		}
		if b != nil {
			return b
		}
	}
	if b = c.decodeBlock(bc, pc); b != nil {
		bc.blocks[idx] = b
	}
	return b
}

// decodeBlock translates text starting at pc into a block, stopping at the
// first unconditional control transfer, system op, undecodable word, or
// the end of the page.
func (c *CPU) decodeBlock(bc *blockCache, pc uint32) *block {
	if pc&3 != 0 {
		return nil
	}
	pageNum := pc >> mem.PageShift
	p := c.Mem.Page(pageNum)
	if p == nil {
		return nil
	}
	gen := c.Mem.Gen()
	insts := make([]DecodedInst, 0, 16)
	for o := pc & (mem.PageSize - 1); o < mem.PageSize; o += 4 {
		ipc := pageNum<<mem.PageShift | o
		w := binary.LittleEndian.Uint32(p[o : o+4 : o+4])
		d := c.resolveInst(isa.Decode(w), ipc)
		insts = append(insts, d)
		if op := d.Op; op == isa.OpInvalid || op.IsJump() ||
			op == isa.OpSYSCALL || op == isa.OpBREAK {
			break
		}
	}
	if !bc.haveCode {
		bc.haveCode, bc.loPage, bc.hiPage = true, pageNum, pageNum
	} else if pageNum < bc.loPage {
		bc.loPage = pageNum
	} else if pageNum > bc.hiPage {
		bc.hiPage = pageNum
	}
	return &block{pc: pc, pageNum: pageNum, page: p, gen: gen, epoch: bc.epoch, inst: insts}
}

// resolveInst turns a decoded instruction at address ipc into its
// predecoded form: branch/J/JAL targets become absolute and watched PCs
// become per-instruction metadata.
func (c *CPU) resolveInst(ins isa.Instruction, ipc uint32) DecodedInst {
	d := DecodedInst{
		Op: ins.Op, Rd: ins.Rd, Rs1: ins.Rs1, Rs2: ins.Rs2,
		Imm: ins.Imm, watch: watchNone,
	}
	if ins.Op.IsBranch() || ins.Op == isa.OpJAL || ins.Op == isa.OpJ {
		d.Imm = int32(ipc + 4 + uint32(ins.Imm))
	}
	if len(c.watches) != 0 {
		for wi := range c.watches {
			if c.watches[wi].pc == ipc {
				if d.watch == watchNone {
					d.watch = int32(wi)
				} else {
					d.watch = watchScanAll
				}
			}
		}
	}
	return d
}

// decodeInstAt decodes the single instruction at pc from live memory.
// runBlock uses it when an OnFetch hook rewrote code mid-block: the hook
// for pc has already fired, so the instruction must execute from the
// fresh bytes without re-entering the block machinery.
func (c *CPU) decodeInstAt(pc uint32) (DecodedInst, bool) {
	p := c.Mem.Page(pc >> mem.PageShift)
	if p == nil {
		return DecodedInst{}, false
	}
	o := pc & (mem.PageSize - 1)
	w := binary.LittleEndian.Uint32(p[o : o+4 : o+4])
	return c.resolveInst(isa.Decode(w), pc), true
}

// noteWatch records a commit of a watched instruction. Mirrors Step's
// post-commit scan: c.IC has already been incremented.
func (c *CPU) noteWatch(watch int32, pc uint32) {
	if watch >= 0 {
		w := &c.watches[watch]
		w.lastIC = c.IC
		w.hits++
		return
	}
	for i := range c.watches {
		if c.watches[i].pc == pc {
			c.watches[i].lastIC = c.IC
			c.watches[i].hits++
		}
	}
}

// runBlock executes predecoded instructions from blk until the block ends,
// the budget runs out, a non-step event occurs, a hook requests Stop, or
// the cache is flushed under the block (self-modifying code, LogCodeLoads
// injection). On return c.PC is the next instruction to execute; the
// caller re-enters through the cache.
func (c *CPU) runBlock(bc *blockCache, blk *block, max uint64) (uint64, Event) {
	epoch := bc.epoch
	insts := blk.inst
	r := &c.Regs
	pc := blk.pc
	var n uint64
	for i := 0; ; i++ {
		d := &insts[i]
		if c.OnFetch != nil {
			c.OnFetch(pc)
			if bc.epoch != epoch {
				// The hook rewrote code under us (LogCodeLoads injection):
				// the decode at pc is stale. Its OnFetch has already fired,
				// so execute this one instruction from the live bytes; the
				// commit tail then ends the block and the caller re-decodes.
				fresh, ok := c.decodeInstAt(pc)
				if !ok {
					return n, c.fault(FaultMemFetch, pc, pc)
				}
				d = &fresh
			}
		}
		nextPC := pc + 4

		switch d.Op {
		case isa.OpInvalid:
			return n, c.fault(FaultInvalidOpcode, pc, 0)

		// --- R-type ALU ---
		case isa.OpADD:
			r[d.Rd] = r[d.Rs1] + r[d.Rs2]
		case isa.OpSUB:
			r[d.Rd] = r[d.Rs1] - r[d.Rs2]
		case isa.OpMUL:
			r[d.Rd] = r[d.Rs1] * r[d.Rs2]
		case isa.OpMULH:
			p := int64(int32(r[d.Rs1])) * int64(int32(r[d.Rs2]))
			r[d.Rd] = uint32(uint64(p) >> 32)
		case isa.OpMULHU:
			p := uint64(r[d.Rs1]) * uint64(r[d.Rs2])
			r[d.Rd] = uint32(p >> 32)
		case isa.OpDIV:
			dv := int32(r[d.Rs2])
			if dv == 0 {
				return n, c.fault(FaultDivZero, pc, 0)
			}
			nv := int32(r[d.Rs1])
			if nv == -1<<31 && dv == -1 {
				r[d.Rd] = uint32(nv)
			} else {
				r[d.Rd] = uint32(nv / dv)
			}
		case isa.OpDIVU:
			if r[d.Rs2] == 0 {
				return n, c.fault(FaultDivZero, pc, 0)
			}
			r[d.Rd] = r[d.Rs1] / r[d.Rs2]
		case isa.OpREM:
			dv := int32(r[d.Rs2])
			if dv == 0 {
				return n, c.fault(FaultDivZero, pc, 0)
			}
			nv := int32(r[d.Rs1])
			if nv == -1<<31 && dv == -1 {
				r[d.Rd] = 0
			} else {
				r[d.Rd] = uint32(nv % dv)
			}
		case isa.OpREMU:
			if r[d.Rs2] == 0 {
				return n, c.fault(FaultDivZero, pc, 0)
			}
			r[d.Rd] = r[d.Rs1] % r[d.Rs2]
		case isa.OpAND:
			r[d.Rd] = r[d.Rs1] & r[d.Rs2]
		case isa.OpOR:
			r[d.Rd] = r[d.Rs1] | r[d.Rs2]
		case isa.OpXOR:
			r[d.Rd] = r[d.Rs1] ^ r[d.Rs2]
		case isa.OpSLL:
			r[d.Rd] = r[d.Rs1] << (r[d.Rs2] & 31)
		case isa.OpSRL:
			r[d.Rd] = r[d.Rs1] >> (r[d.Rs2] & 31)
		case isa.OpSRA:
			r[d.Rd] = uint32(int32(r[d.Rs1]) >> (r[d.Rs2] & 31))
		case isa.OpSLT:
			r[d.Rd] = b2u(int32(r[d.Rs1]) < int32(r[d.Rs2]))
		case isa.OpSLTU:
			r[d.Rd] = b2u(r[d.Rs1] < r[d.Rs2])

		// --- I-type ALU ---
		case isa.OpADDI:
			r[d.Rd] = r[d.Rs1] + uint32(d.Imm)
		case isa.OpANDI:
			r[d.Rd] = r[d.Rs1] & uint32(d.Imm)
		case isa.OpORI:
			r[d.Rd] = r[d.Rs1] | uint32(d.Imm)
		case isa.OpXORI:
			r[d.Rd] = r[d.Rs1] ^ uint32(d.Imm)
		case isa.OpSLTI:
			r[d.Rd] = b2u(int32(r[d.Rs1]) < d.Imm)
		case isa.OpSLTIU:
			r[d.Rd] = b2u(r[d.Rs1] < uint32(d.Imm))
		case isa.OpSLLI:
			r[d.Rd] = r[d.Rs1] << (uint32(d.Imm) & 31)
		case isa.OpSRLI:
			r[d.Rd] = r[d.Rs1] >> (uint32(d.Imm) & 31)
		case isa.OpSRAI:
			r[d.Rd] = uint32(int32(r[d.Rs1]) >> (uint32(d.Imm) & 31))
		case isa.OpLUI:
			r[d.Rd] = uint32(d.Imm) << 16

		// --- memory ---
		case isa.OpLW, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU:
			ea := r[d.Rs1] + uint32(d.Imm)
			v, evt := c.load(d.Op, pc, ea)
			if evt != EventStep {
				return n, evt
			}
			r[d.Rd] = v

		case isa.OpSW, isa.OpSH, isa.OpSB:
			ea := r[d.Rs1] + uint32(d.Imm)
			if evt := c.store(d.Op, pc, ea, r[d.Rd]); evt != EventStep {
				return n, evt
			}

		case isa.OpAMOSWAP, isa.OpAMOADD:
			ea := r[d.Rs1]
			old, evt := c.amo(d.Op, pc, ea, r[d.Rs2])
			if evt != EventStep {
				return n, evt
			}
			r[d.Rd] = old

		// --- control transfer (targets absolute, resolved at decode) ---
		case isa.OpBEQ:
			if r[d.Rs1] == r[d.Rs2] {
				nextPC = uint32(d.Imm)
			}
		case isa.OpBNE:
			if r[d.Rs1] != r[d.Rs2] {
				nextPC = uint32(d.Imm)
			}
		case isa.OpBLT:
			if int32(r[d.Rs1]) < int32(r[d.Rs2]) {
				nextPC = uint32(d.Imm)
			}
		case isa.OpBGE:
			if int32(r[d.Rs1]) >= int32(r[d.Rs2]) {
				nextPC = uint32(d.Imm)
			}
		case isa.OpBLTU:
			if r[d.Rs1] < r[d.Rs2] {
				nextPC = uint32(d.Imm)
			}
		case isa.OpBGEU:
			if r[d.Rs1] >= r[d.Rs2] {
				nextPC = uint32(d.Imm)
			}
		case isa.OpJAL:
			r[isa.RegRA] = pc + 4
			nextPC = uint32(d.Imm)
		case isa.OpJ:
			nextPC = uint32(d.Imm)
		case isa.OpJALR:
			target := r[d.Rs1] + uint32(d.Imm)
			r[d.Rd] = pc + 4
			nextPC = target

		// --- system ---
		case isa.OpSYSCALL:
			// Commits below; control returns to the caller's kernel.
		case isa.OpBREAK:
			return n, c.fault(FaultBreak, pc, 0)
		}

		r[isa.RegZero] = 0
		c.PC = nextPC
		c.IC++
		n++
		if d.watch != watchNone {
			c.noteWatch(d.watch, pc)
		}
		if d.Op == isa.OpSYSCALL {
			return n, EventSyscall
		}
		if nextPC != pc+4 || i+1 == len(insts) ||
			n == max || c.stop || bc.epoch != epoch {
			// A taken branch or jump left the block; or the block, budget
			// or a Stop request ended it; or a flush (an executed store
			// rewrote a code page, or an OnFetch hook injected code) made
			// the rest of this decode stale.
			return n, EventStep
		}
		pc = nextPC
	}
}
