package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

// refALU is an independent Go reference for every register-register and
// register-immediate ALU operation. The interpreter must agree with it on
// random operands — this catches sign-extension and shift-masking slips
// that targeted tests miss.
func refALU(op isa.Opcode, a, b uint32, imm int32) (uint32, bool) {
	switch op {
	case isa.OpADD:
		return a + b, true
	case isa.OpSUB:
		return a - b, true
	case isa.OpMUL:
		return a * b, true
	case isa.OpMULH:
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32), true
	case isa.OpMULHU:
		return uint32(uint64(a) * uint64(b) >> 32), true
	case isa.OpDIV:
		if b == 0 {
			return 0, false
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a, true
		}
		return uint32(int32(a) / int32(b)), true
	case isa.OpDIVU:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.OpREM:
		if b == 0 {
			return 0, false
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0, true
		}
		return uint32(int32(a) % int32(b)), true
	case isa.OpREMU:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.OpAND:
		return a & b, true
	case isa.OpOR:
		return a | b, true
	case isa.OpXOR:
		return a ^ b, true
	case isa.OpSLL:
		return a << (b & 31), true
	case isa.OpSRL:
		return a >> (b & 31), true
	case isa.OpSRA:
		return uint32(int32(a) >> (b & 31)), true
	case isa.OpSLT:
		if int32(a) < int32(b) {
			return 1, true
		}
		return 0, true
	case isa.OpSLTU:
		if a < b {
			return 1, true
		}
		return 0, true
	case isa.OpADDI:
		return a + uint32(imm), true
	case isa.OpANDI:
		return a & uint32(imm), true
	case isa.OpORI:
		return a | uint32(imm), true
	case isa.OpXORI:
		return a ^ uint32(imm), true
	case isa.OpSLTI:
		if int32(a) < imm {
			return 1, true
		}
		return 0, true
	case isa.OpSLTIU:
		if a < uint32(imm) {
			return 1, true
		}
		return 0, true
	case isa.OpSLLI:
		return a << (uint32(imm) & 31), true
	case isa.OpSRLI:
		return a >> (uint32(imm) & 31), true
	case isa.OpSRAI:
		return uint32(int32(a) >> (uint32(imm) & 31)), true
	case isa.OpLUI:
		return uint32(imm) << 16, true
	}
	return 0, false
}

var rTypeOps = []isa.Opcode{
	isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpMULH, isa.OpMULHU,
	isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU,
	isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA,
	isa.OpSLT, isa.OpSLTU,
}

var iTypeALUOps = []isa.Opcode{
	isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
	isa.OpSLTI, isa.OpSLTIU, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpLUI,
}

// execOne runs a single pre-encoded instruction on a fresh core with the
// given source register values and returns the destination result.
func execOne(t *testing.T, ins isa.Instruction, a, b uint32) (uint32, Event) {
	t.Helper()
	m := mem.New()
	m.Map(0x1000, 64)
	word := isa.MustEncode(ins)
	if err := m.StoreWord(0x1000, word); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	c.PC = 0x1000
	c.Regs[5] = a // t0
	c.Regs[6] = b // t1
	ev := c.Step()
	return c.Regs[7], ev // t2
}

// interestingValues are the operand corner cases.
var interestingValues = []uint32{
	0, 1, 2, 31, 32, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xFFFFFFFE,
	0x00008000, 0xFFFF8000, 0xDEADBEEF, 0x01000000,
}

func TestALUAgainstReference(t *testing.T) {
	for _, op := range rTypeOps {
		for _, a := range interestingValues {
			for _, b := range interestingValues {
				want, ok := refALU(op, a, b, 0)
				got, ev := execOne(t, isa.Instruction{Op: op, Rd: 7, Rs1: 5, Rs2: 6}, a, b)
				if !ok {
					if ev != EventFault {
						t.Errorf("%v(%#x,%#x): expected div-zero fault, got event %v", op, a, b, ev)
					}
					continue
				}
				if ev != EventStep || got != want {
					t.Errorf("%v(%#x,%#x) = %#x (event %v); want %#x", op, a, b, got, ev, want)
				}
			}
		}
	}
}

func TestImmediateALUAgainstReference(t *testing.T) {
	imms := []int32{0, 1, -1, 31, 32, 0x7FFF, -0x8000, 100, -100}
	for _, op := range iTypeALUOps {
		for _, a := range interestingValues {
			for _, imm := range imms {
				want, _ := refALU(op, a, 0, imm)
				got, ev := execOne(t, isa.Instruction{Op: op, Rd: 7, Rs1: 5, Imm: imm}, a, 0)
				if ev != EventStep || got != want {
					t.Errorf("%v(%#x, imm=%d) = %#x (event %v); want %#x", op, a, imm, got, ev, want)
				}
			}
		}
	}
}

// TestPropertyALURandom cross-checks the interpreter against the reference
// on random operands.
func TestPropertyALURandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			op := rTypeOps[rng.Intn(len(rTypeOps))]
			a, b := rng.Uint32(), rng.Uint32()
			want, ok := refALU(op, a, b, 0)
			got, ev := execOne(t, isa.Instruction{Op: op, Rd: 7, Rs1: 5, Rs2: 6}, a, b)
			if !ok {
				if ev != EventFault {
					return false
				}
				continue
			}
			if ev != EventStep || got != want {
				t.Logf("%v(%#x,%#x) = %#x; want %#x", op, a, b, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBranchSemantics checks taken/not-taken against reference predicates.
func TestBranchSemantics(t *testing.T) {
	preds := map[isa.Opcode]func(a, b uint32) bool{
		isa.OpBEQ:  func(a, b uint32) bool { return a == b },
		isa.OpBNE:  func(a, b uint32) bool { return a != b },
		isa.OpBLT:  func(a, b uint32) bool { return int32(a) < int32(b) },
		isa.OpBGE:  func(a, b uint32) bool { return int32(a) >= int32(b) },
		isa.OpBLTU: func(a, b uint32) bool { return a < b },
		isa.OpBGEU: func(a, b uint32) bool { return a >= b },
	}
	for op, pred := range preds {
		for _, a := range interestingValues {
			for _, b := range interestingValues {
				m := mem.New()
				m.Map(0x1000, 64)
				m.StoreWord(0x1000, isa.MustEncode(isa.Instruction{Op: op, Rs1: 5, Rs2: 6, Imm: 16}))
				c := New(m)
				c.PC = 0x1000
				c.Regs[5], c.Regs[6] = a, b
				c.Step()
				wantPC := uint32(0x1004)
				if pred(a, b) {
					wantPC = 0x1014
				}
				if c.PC != wantPC {
					t.Errorf("%v(%#x,%#x): pc = %#x; want %#x", op, a, b, c.PC, wantPC)
				}
			}
		}
	}
}

// TestJumpSemantics checks link-register and target computation.
func TestJumpSemantics(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, 256)
	m.StoreWord(0x1000, isa.MustEncode(isa.Instruction{Op: isa.OpJAL, Imm: 32}))
	c := New(m)
	c.PC = 0x1000
	c.Step()
	if c.PC != 0x1024 || c.Regs[isa.RegRA] != 0x1004 {
		t.Errorf("jal: pc=%#x ra=%#x", c.PC, c.Regs[isa.RegRA])
	}

	m.StoreWord(0x1024, isa.MustEncode(isa.Instruction{Op: isa.OpJALR, Rd: 7, Rs1: 5, Imm: 8}))
	c.Regs[5] = 0x1080
	c.Step()
	if c.PC != 0x1088 || c.Regs[7] != 0x1028 {
		t.Errorf("jalr: pc=%#x rd=%#x", c.PC, c.Regs[7])
	}

	m.StoreWord(0x1088, isa.MustEncode(isa.Instruction{Op: isa.OpJ, Imm: -8}))
	c.Step()
	if c.PC != 0x1084 {
		t.Errorf("j backward: pc=%#x", c.PC)
	}
}
