package kernel

import (
	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

// errRet is the guest-visible -1.
const errRet = ^uint32(0)

// syscall services the SYSCALL instruction that thread th just committed.
// The recorder sees it as a synchronous interrupt: the current checkpoint
// interval ends before the kernel touches anything, and a new one starts
// when control returns to user code with the kernel's effects (return
// value in a0, data copied into user buffers) already applied — so the new
// FLL header and subsequent first-loads capture them (paper §4.4, §4.5).
func (m *Machine) syscall(th *Thread) {
	if m.hooks != nil {
		m.hooks.OnInterrupt(th.ID, IntSyscall)
	}
	c := th.CPU
	num := c.Regs[isa.RegA7]
	a0, a1, a2 := c.Regs[isa.RegA0], c.Regs[isa.RegA1], c.Regs[isa.RegA2]
	ret := errRet

	switch num {
	case SysExit:
		m.exitThread(th, a0)
		return // no interrupt-return: the thread is gone

	case SysWrite:
		ret = m.sysWrite(int(int32(a0)), a1, a2)

	case SysRead:
		ret = m.sysRead(th, int(int32(a0)), a1, a2)

	case SysOpen:
		ret = m.sysOpen(a0)

	case SysBrk:
		if a0 != 0 && a0 >= m.brk {
			m.Mem.Map(m.brk, a0-m.brk)
			m.brk = (a0 + mem.PageSize - 1) &^ (mem.PageSize - 1)
		}
		ret = m.brk

	case SysSbrk:
		old := m.brk
		if a0 > 0 {
			m.Mem.Map(old, a0)
			m.brk = (old + a0 + mem.PageSize - 1) &^ (mem.PageSize - 1)
		}
		ret = old

	case SysTime:
		ret = uint32(m.steps)

	case SysSpawn:
		ret = m.sysSpawn(a0, a1)

	case SysYield:
		ret = 0
		// The quantum ends on syscall return; nothing else to do.

	case SysDMARead:
		ret = m.sysDMARead(int(int32(a0)), a1, a2)

	case SysThreadID:
		ret = uint32(th.ID)
	}

	c.Regs[isa.RegA0] = ret
	if m.hooks != nil {
		m.hooks.OnInterruptReturn(th.ID)
	}
}

func (m *Machine) sysWrite(fd int, buf, n uint32) uint32 {
	out := m.outputs[fd]
	if out == nil {
		return errRet
	}
	tmp := make([]byte, n)
	if err := m.Mem.LoadBytes(buf, tmp); err != nil {
		return errRet
	}
	out.Write(tmp)
	return n
}

// sysRead copies input bytes into the user buffer. The copy is a kernel
// write into user memory — exactly the external input BugNet does NOT log
// directly, relying on first-load capture instead.
func (m *Machine) sysRead(th *Thread, fd int, buf, n uint32) uint32 {
	s := m.fds[fd]
	if s == nil {
		return errRet
	}
	remain := len(s.data) - s.pos
	if remain <= 0 {
		return 0 // EOF
	}
	if int(n) < remain {
		remain = int(n)
	}
	chunk := s.data[s.pos : s.pos+remain]
	if m.hooks != nil {
		m.hooks.OnKernelPreWrite(th.ID, buf, uint32(remain))
	}
	if err := m.Mem.StoreBytes(buf, chunk); err != nil {
		return errRet
	}
	m.invalidateFetch(buf, uint32(remain))
	s.pos += remain
	if m.hooks != nil {
		m.hooks.OnKernelWrite(th.ID, buf, uint32(remain))
	}
	return uint32(remain)
}

func (m *Machine) sysOpen(pathPtr uint32) uint32 {
	name, err := m.Mem.LoadCString(pathPtr, 256)
	if err != nil {
		return errRet
	}
	data, ok := m.cfg.Inputs[name]
	if !ok {
		return errRet
	}
	fd := m.nextFD
	m.nextFD++
	m.fds[fd] = &stream{data: data}
	return uint32(fd)
}

// sysSpawn starts a new thread at entry with a0 = arg. Each thread gets a
// private stack region below the main stack.
func (m *Machine) sysSpawn(entry, arg uint32) uint32 {
	for tid := 1; tid < len(m.Threads); tid++ {
		if m.Threads[tid].State != ThreadFree {
			continue
		}
		// Stack layout: main stack on top, thread stacks below it with an
		// unmapped guard page between neighbours.
		top := mem.StackTop - mem.DefaultStackSize -
			uint32(tid)*(mem.ThreadStackSize+mem.PageSize)
		m.startThread(tid, entry, arg, top, mem.ThreadStackSize)
		return uint32(tid)
	}
	return errRet
}

// sysDMARead schedules an asynchronous bulk copy from fd into user memory.
// The syscall returns immediately with the transfer size; the data lands
// DMALatency steps later while the program keeps running (paper §4.5).
func (m *Machine) sysDMARead(fd int, buf, n uint32) uint32 {
	s := m.fds[fd]
	if s == nil {
		return errRet
	}
	remain := len(s.data) - s.pos
	if remain <= 0 {
		return 0
	}
	if int(n) < remain {
		remain = int(n)
	}
	chunk := make([]byte, remain)
	copy(chunk, s.data[s.pos:s.pos+remain])
	s.pos += remain
	m.pending = append(m.pending, dmaOp{
		addr:       buf,
		data:       chunk,
		completeAt: m.steps + m.cfg.DMALatency,
	})
	return uint32(remain)
}
