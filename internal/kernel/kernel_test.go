package kernel

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/cpu"
)

// hookLog records Hooks callbacks for assertions.
type hookLog struct {
	NopHooks
	interrupts   []string
	returns      int
	kernelWrites []uint32
	dmaWrites    []uint32
	starts       []int
	exits        []int
	faults       int
}

func (h *hookLog) OnInterrupt(tid int, kind InterruptKind) {
	h.interrupts = append(h.interrupts, kind.String())
}
func (h *hookLog) OnInterruptReturn(tid int) { h.returns++ }
func (h *hookLog) OnKernelWrite(tid int, a uint32, n uint32) {
	h.kernelWrites = append(h.kernelWrites, a)
}
func (h *hookLog) OnDMAWrite(a uint32, n uint32)     { h.dmaWrites = append(h.dmaWrites, a) }
func (h *hookLog) OnThreadStart(tid int)             { h.starts = append(h.starts, tid) }
func (h *hookLog) OnThreadExit(tid int)              { h.exits = append(h.exits, tid) }
func (h *hookLog) OnFault(tid int, f *cpu.FaultInfo) { h.faults++ }

func runSrc(t *testing.T, src string, cfg Config, hooks Hooks) (*Machine, *Result) {
	t.Helper()
	img, err := asm.Assemble("k.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(img, cfg, hooks)
	return m, m.Run()
}

func TestExitCode(t *testing.T) {
	_, res := runSrc(t, `
main:   li a0, 42
        li a7, 1        # SysExit
        syscall
`, Config{}, nil)
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if res.ExitCode != 42 {
		t.Errorf("exit code = %d", res.ExitCode)
	}
}

func TestWriteStdout(t *testing.T) {
	m, res := runSrc(t, `
        .data
msg:    .asciiz "hello\n"
        .text
main:   li a0, 1
        la a1, msg
        li a2, 6
        li a7, 2        # SysWrite
        syscall
        li a7, 1
        li a0, 0
        syscall
`, Config{}, nil)
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if got := string(m.Output(1)); got != "hello\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestReadStdin(t *testing.T) {
	h := &hookLog{}
	m, res := runSrc(t, `
        .data
buf:    .space 16
        .text
main:   li a0, 0
        la a1, buf
        li a2, 16
        li a7, 3        # SysRead
        syscall
        mv s0, a0       # bytes read
        # echo back
        li a0, 1
        la a1, buf
        mv a2, s0
        li a7, 2
        syscall
        li a7, 1
        li a0, 0
        syscall
`, Config{Inputs: map[string][]byte{"stdin": []byte("abc")}}, h)
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if got := string(m.Output(1)); got != "abc" {
		t.Errorf("echo = %q", got)
	}
	if len(h.kernelWrites) != 1 {
		t.Errorf("kernel writes = %v; want one (the read copy-in)", h.kernelWrites)
	}
	// read at EOF returns 0
}

func TestOpenNamedInput(t *testing.T) {
	m, res := runSrc(t, `
        .data
name:   .asciiz "data.txt"
buf:    .space 8
        .text
main:   la a0, name
        li a7, 4        # SysOpen
        syscall
        mv s0, a0       # fd
        mv a0, s0
        la a1, buf
        li a2, 8
        li a7, 3        # SysRead
        syscall
        li a0, 1
        la a1, buf
        li a2, 2
        li a7, 2
        syscall
        li a7, 1
        syscall
`, Config{Inputs: map[string][]byte{"data.txt": []byte("OK")}}, nil)
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if got := string(m.Output(1)); got != "OK" {
		t.Errorf("read from named input = %q", got)
	}
}

func TestOpenMissingReturnsError(t *testing.T) {
	_, res := runSrc(t, `
        .data
name:   .asciiz "nope"
        .text
main:   la a0, name
        li a7, 4
        syscall
        li a7, 1        # exit(fd) -> -1
        syscall
`, Config{}, nil)
	if res.ExitCode != -1 {
		t.Errorf("open missing = %d; want -1", res.ExitCode)
	}
}

func TestSbrk(t *testing.T) {
	_, res := runSrc(t, `
main:   li a0, 4096
        li a7, 6        # SysSbrk
        syscall
        mv s0, a0       # old brk = heap base
        sw s0, (s0)     # store to newly mapped heap
        lw s1, (s0)
        sub a0, s0, s1  # 0 if round-trip worked
        li a7, 1
        syscall
`, Config{}, nil)
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if res.ExitCode != 0 {
		t.Errorf("heap round trip failed: %d", res.ExitCode)
	}
}

func TestTimeIsVirtualAndMonotonic(t *testing.T) {
	_, res := runSrc(t, `
main:   li a7, 7
        syscall
        mv s0, a0
        li a7, 7
        syscall
        bgt a0, s0, ok
        li a0, 1
        li a7, 1
        syscall
ok:     li a0, 0
        li a7, 1
        syscall
`, Config{}, nil)
	if res.ExitCode != 0 {
		t.Error("time went backwards")
	}
}

func TestSpawnAndSharedMemory(t *testing.T) {
	// Main spawns a worker that increments a shared counter 100 times with
	// amoadd; main spins until it observes 100.
	h := &hookLog{}
	_, res := runSrc(t, `
        .data
ctr:    .word 0
        .text
main:   la   a0, worker
        li   a1, 0
        li   a7, 8          # SysSpawn
        syscall
wait:   la   t0, ctr
        lw   t1, (t0)
        li   t2, 100
        blt  t1, t2, wait
        li   a0, 0
        li   a7, 1
        syscall

worker: la   t0, ctr
        li   t1, 0
wloop:  li   t3, 1
        amoadd t2, t3, (t0)
        addi t1, t1, 1
        li   t4, 100
        blt  t1, t4, wloop
        li   a0, 0
        li   a7, 1
        syscall
`, Config{Cores: 2}, h)
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	if len(h.starts) != 2 {
		t.Errorf("thread starts = %v", h.starts)
	}
	if len(h.exits) != 2 {
		t.Errorf("thread exits = %v", h.exits)
	}
}

func TestSpawnExhaustion(t *testing.T) {
	_, res := runSrc(t, `
main:   la a0, main      # entry irrelevant
        li a7, 8
        syscall          # only 1 core: must fail
        li a7, 1
        syscall          # exit(-1)
`, Config{Cores: 1}, nil)
	if res.ExitCode != -1 {
		t.Errorf("spawn with no free core = %d; want -1", res.ExitCode)
	}
}

func TestThreadReturnViaSentinelExitsCleanly(t *testing.T) {
	h := &hookLog{}
	_, res := runSrc(t, `
main:   la   a0, worker
        li   a1, 7
        li   a7, 8
        syscall
        # spin briefly so the worker runs
        li   t0, 200
spin:   addi t0, t0, -1
        bnez t0, spin
        li   a0, 0
        li   a7, 1
        syscall
worker: ret              # returns to ExitSentinel
`, Config{Cores: 2}, h)
	if res.Crash != nil {
		t.Fatalf("sentinel return crashed the machine: %v", res.Crash)
	}
	found := false
	for _, tid := range h.exits {
		if tid == 1 {
			found = true
		}
	}
	if !found {
		t.Error("worker thread did not exit cleanly")
	}
}

func TestTimerInterruptHooks(t *testing.T) {
	h := &hookLog{}
	_, res := runSrc(t, `
main:   li t0, 1000
loop:   addi t0, t0, -1
        bnez t0, loop
        li a7, 1
        li a0, 0
        syscall
`, Config{TimerInterval: 100}, h)
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	timer := 0
	for _, k := range h.interrupts {
		if k == "timer" {
			timer++
		}
	}
	// ~2001 instructions / 100 ≈ 20 timer interrupts.
	if timer < 15 || timer > 25 {
		t.Errorf("timer interrupts = %d; want ≈20", timer)
	}
	if h.returns != len(h.interrupts) {
		// every interrupt (incl. final exit syscall which does not return)
		// except exit should return; exit has no return.
		if h.returns != len(h.interrupts)-1 {
			t.Errorf("returns = %d, interrupts = %d", h.returns, len(h.interrupts))
		}
	}
}

func TestDMACompletesAsynchronously(t *testing.T) {
	h := &hookLog{}
	m, res := runSrc(t, `
        .data
buf:    .space 8
        .text
main:   li a0, 0
        la a1, buf
        li a2, 8
        li a7, 10        # SysDMARead
        syscall
        mv s0, a0        # scheduled bytes
        la t0, buf
        lb s1, (t0)      # immediately after: still zero (DMA in flight)
        li t1, 3000      # spin past DMA latency
dspin:  addi t1, t1, -1
        bnez t1, dspin
        lb s2, (t0)      # now the data must be there: 'X'
        mv a0, s2
        li a7, 1
        syscall
`, Config{Inputs: map[string][]byte{"stdin": []byte("XYZZYXYZ")}, DMALatency: 500}, h)
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if res.ExitCode != 'X' {
		t.Errorf("post-DMA byte = %d; want %d", res.ExitCode, 'X')
	}
	if len(h.dmaWrites) != 1 {
		t.Errorf("dma writes = %v", h.dmaWrites)
	}
	_ = m
}

func TestCrashStopsEverything(t *testing.T) {
	h := &hookLog{}
	_, res := runSrc(t, `
main:   la  a0, worker
        li  a7, 8
        syscall
        lw  t0, (zero)    # crash main
worker: j   worker        # would spin forever
`, Config{Cores: 2}, h)
	if res.Crash == nil {
		t.Fatal("no crash recorded")
	}
	if res.Crash.TID != 0 || res.Crash.Fault.Cause != cpu.FaultMemRead {
		t.Errorf("crash = %+v", res.Crash)
	}
	if h.faults != 1 {
		t.Errorf("fault hooks = %d", h.faults)
	}
}

func TestMaxStepsBudget(t *testing.T) {
	_, res := runSrc(t, "main: j main\n", Config{MaxSteps: 5000}, nil)
	if res.Crash != nil {
		t.Fatal("runaway loop crashed instead of hitting budget")
	}
	if res.Steps < 5000 || res.Steps > 5100 {
		t.Errorf("steps = %d; want ≈5000", res.Steps)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
        .data
ctr:    .word 0
buf:    .space 32
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        li   a0, 0
        la   a1, buf
        li   a2, 32
        li   a7, 3
        syscall
        la   t0, ctr
mwait:  lw   t1, (t0)
        li   t2, 50
        blt  t1, t2, mwait
        li   a7, 7
        syscall
        mv   s0, a0
        li   a0, 0
        li   a7, 1
        syscall
worker: la   t0, ctr
        li   t1, 0
wl:     li   t3, 1
        amoadd t2, t3, (t0)
        addi t1, t1, 1
        li   t4, 50
        blt  t1, t4, wl
        li   a0, 0
        li   a7, 1
        syscall
`
	cfg := Config{Cores: 2, TimerInterval: 64,
		Inputs: map[string][]byte{"stdin": []byte("deterministic-input")}}
	img := asm.MustAssemble("d.s", src)
	run := func() (uint64, uint64) {
		m := New(img, cfg, nil)
		res := m.Run()
		if res.Crash != nil {
			t.Fatalf("crash: %v", res.Crash)
		}
		return res.Steps, res.Instructions
	}
	s1, i1 := run()
	s2, i2 := run()
	if s1 != s2 || i1 != i2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", s1, i1, s2, i2)
	}
}

// orderedHooks records the relative order of pre-write and post-write
// callbacks, which undo-logging recorders depend on: the pre hook must see
// memory *before* the kernel's copy lands.
type orderedHooks struct {
	NopHooks
	m       *Machine
	events  []string
	preVal  byte
	postVal byte
	addr    uint32
}

func (h *orderedHooks) OnKernelPreWrite(tid int, addr uint32, n uint32) {
	h.events = append(h.events, "pre")
	h.preVal, _ = h.m.Mem.LoadByte(addr)
	h.addr = addr
}

func (h *orderedHooks) OnKernelWrite(tid int, addr uint32, n uint32) {
	h.events = append(h.events, "post")
	h.postVal, _ = h.m.Mem.LoadByte(addr)
}

func TestKernelPreWriteHookSeesOldMemory(t *testing.T) {
	img, err := asm.Assemble("k.s", `
        .data
buf:    .space 8
        .text
main:   la  t0, buf
        li  t1, 0x55
        sb  t1, (t0)      # buf[0] = 0x55 before the read
        li  a0, 0
        la  a1, buf
        li  a2, 8
        li  a7, 3         # read overwrites buf with 'Z...'
        syscall
        li  a7, 1
        syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	h := &orderedHooks{}
	m := New(img, Config{Inputs: map[string][]byte{"stdin": []byte("ZZZZZZZZ")}}, h)
	h.m = m
	res := m.Run()
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	if len(h.events) != 2 || h.events[0] != "pre" || h.events[1] != "post" {
		t.Fatalf("hook order = %v", h.events)
	}
	if h.preVal != 0x55 {
		t.Errorf("pre-write hook saw %#x; want the old 0x55", h.preVal)
	}
	if h.postVal != 'Z' {
		t.Errorf("post-write hook saw %#x; want the new 'Z'", h.postVal)
	}
}

func TestDMAPreWriteHookOrdering(t *testing.T) {
	img, err := asm.Assemble("k.s", `
        .data
buf:    .space 8
        .text
main:   li  a0, 0
        la  a1, buf
        li  a2, 8
        li  a7, 10        # dma_read
        syscall
        li  t0, 500
w:      addi t0, t0, -1
        bnez t0, w
        li  a7, 1
        syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	h := &orderedHooks{}
	m := New(img, Config{Inputs: map[string][]byte{"stdin": []byte("YYYYYYYY")}, DMALatency: 50}, h)
	h.m = m
	// Redirect the DMA hooks into the same recorder fields.
	res := m.Run()
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
}
