// Package kernel implements the guest operating system and machine model
// that hosts recorded programs.
//
// BugNet explicitly does not record what happens inside the operating
// system: interrupts, system calls and DMA transfers mutate user memory
// behind the application's back, and the whole point of first-load logging
// is that those mutations are captured for free when the application next
// loads the affected words (paper §4.4, §4.5). To demonstrate that, the
// substrate must actually have an OS that mutates memory behind the
// program's back. This package provides it:
//
//   - a Machine with up to Config.Cores hardware threads over one shared
//     memory, interleaved deterministically (sequential consistency);
//   - system calls (exit/write/read/open/brk/sbrk/time/spawn/yield/
//     dma_read/threadid) whose results are written into user memory by
//     host code, invisible to the recorded instruction stream;
//   - timer interrupts every Config.TimerInterval instructions per thread,
//     modelling the interrupts and context switches of §4.4;
//   - an asynchronous DMA engine that completes transfers many cycles
//     after the initiating syscall returned (§4.5);
//   - fault capture that freezes the machine and reports the crash, the
//     trigger for BugNet's log dump (§4.8).
//
// Recorders observe the machine through the Hooks interface plus the
// per-CPU hooks on each thread's cpu.CPU. Everything is deterministic: the
// same program, inputs and config produce bit-identical executions.
package kernel

import (
	"bytes"
	"fmt"

	"bugnet/internal/asm"
	"bugnet/internal/cpu"
	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

// System call numbers (loaded into a7 before SYSCALL).
const (
	SysExit     = 1  // a0 = exit code; ends the calling thread
	SysWrite    = 2  // a0 = fd, a1 = buf, a2 = len; returns bytes written
	SysRead     = 3  // a0 = fd, a1 = buf, a2 = len; returns bytes read, 0 at EOF
	SysOpen     = 4  // a0 = pathname (NUL-terminated); returns fd or -1
	SysBrk      = 5  // a0 = new break or 0 to query; returns current break
	SysSbrk     = 6  // a0 = increment; returns previous break, maps pages
	SysTime     = 7  // returns the global machine step count (virtual time)
	SysSpawn    = 8  // a0 = entry pc, a1 = argument; returns new thread id or -1
	SysYield    = 9  // relinquish the scheduling quantum
	SysDMARead  = 10 // a0 = fd, a1 = buf, a2 = len; schedules an async DMA copy
	SysThreadID = 11 // returns the calling thread's id
)

// ExitSentinel is the return address installed for spawned threads; a
// fetch fault there is interpreted as clean thread termination rather than
// a crash.
const ExitSentinel uint32 = 0xDEAD0000

// InterruptKind classifies why control entered the kernel.
type InterruptKind uint8

// Interrupt kinds.
const (
	IntSyscall InterruptKind = iota // synchronous trap (paper: "traps")
	IntTimer                        // asynchronous timer/context-switch interrupt
)

func (k InterruptKind) String() string {
	if k == IntSyscall {
		return "syscall"
	}
	return "timer"
}

// Hooks is the observation interface recorders implement. All methods are
// called synchronously from the machine's single-goroutine run loop. A nil
// Hooks disables observation.
type Hooks interface {
	// OnInterrupt fires when thread tid enters the kernel (checkpoint
	// intervals terminate here, paper §4.4).
	OnInterrupt(tid int, kind InterruptKind)
	// OnInterruptReturn fires when control returns to user code in tid (a
	// new checkpoint interval starts here).
	OnInterruptReturn(tid int)
	// OnKernelPreWrite fires immediately before the kernel writes n bytes
	// at addr into user memory. FDR-style undo logging captures pre-images
	// here; BugNet needs only the post-write notification.
	OnKernelPreWrite(tid int, addr uint32, n uint32)
	// OnKernelWrite fires after the kernel wrote n bytes at addr into user
	// memory on behalf of tid (syscall results).
	OnKernelWrite(tid int, addr uint32, n uint32)
	// OnDMAPreWrite fires immediately before a DMA completion writes n
	// bytes at addr.
	OnDMAPreWrite(addr uint32, n uint32)
	// OnDMAWrite fires after the DMA engine wrote n bytes at addr,
	// asynchronously to all threads.
	OnDMAWrite(addr uint32, n uint32)
	// OnThreadStart fires when a thread becomes runnable (including the
	// initial thread).
	OnThreadStart(tid int)
	// OnThreadExit fires when a thread terminates cleanly.
	OnThreadExit(tid int)
	// OnFault fires when a thread faults; the machine halts afterwards.
	OnFault(tid int, f *cpu.FaultInfo)
}

// NopHooks implements Hooks with no-ops; embed it to implement only the
// callbacks a recorder cares about.
type NopHooks struct{}

// OnInterrupt implements Hooks.
func (NopHooks) OnInterrupt(int, InterruptKind) {}

// OnInterruptReturn implements Hooks.
func (NopHooks) OnInterruptReturn(int) {}

// OnKernelPreWrite implements Hooks.
func (NopHooks) OnKernelPreWrite(int, uint32, uint32) {}

// OnKernelWrite implements Hooks.
func (NopHooks) OnKernelWrite(int, uint32, uint32) {}

// OnDMAPreWrite implements Hooks.
func (NopHooks) OnDMAPreWrite(uint32, uint32) {}

// OnDMAWrite implements Hooks.
func (NopHooks) OnDMAWrite(uint32, uint32) {}

// OnThreadStart implements Hooks.
func (NopHooks) OnThreadStart(int) {}

// OnThreadExit implements Hooks.
func (NopHooks) OnThreadExit(int) {}

// OnFault implements Hooks.
func (NopHooks) OnFault(int, *cpu.FaultInfo) {}

// Config parameterizes a Machine.
type Config struct {
	// Cores bounds the number of simultaneously live threads. Default 1.
	Cores int
	// TimerInterval delivers a timer interrupt to each thread every this
	// many committed instructions. 0 disables the timer.
	TimerInterval uint64
	// Quantum is the number of instructions a thread runs before the
	// scheduler rotates. Default 32.
	Quantum int
	// DMALatency is the number of global steps between a dma_read syscall
	// and its completion. Default 2000.
	DMALatency uint64
	// MaxSteps aborts runaway programs. Default 2^40.
	MaxSteps uint64
	// Inputs maps pathnames to file contents for SysOpen. The special
	// name "stdin" is pre-opened as fd 0.
	Inputs map[string][]byte
}

func (c *Config) fillDefaults() {
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = 32
	}
	if c.DMALatency == 0 {
		c.DMALatency = 2000
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 1 << 40
	}
}

// ThreadState describes a thread slot.
type ThreadState uint8

// Thread states.
const (
	ThreadFree ThreadState = iota
	ThreadRunnable
	ThreadExited
)

// Thread is one hardware context.
type Thread struct {
	ID    int
	CPU   *cpu.CPU
	State ThreadState

	// nextTimer is the per-thread IC at which the next timer interrupt
	// fires.
	nextTimer uint64
}

// stream is an open file description.
type stream struct {
	data []byte
	pos  int
}

type dmaOp struct {
	addr       uint32
	data       []byte
	completeAt uint64
}

// CrashInfo describes the fault that stopped the machine.
type CrashInfo struct {
	TID   int
	Fault *cpu.FaultInfo
}

func (c *CrashInfo) Error() string {
	return fmt.Sprintf("thread %d: %v", c.TID, c.Fault)
}

// Result summarizes a completed run.
type Result struct {
	// Crash is non-nil if the program faulted.
	Crash *CrashInfo
	// ExitCode is the a0 of the first SysExit from thread 0.
	ExitCode int32
	// Steps is the total number of global machine steps.
	Steps uint64
	// Instructions is the total committed instruction count over all
	// threads.
	Instructions uint64
}

// Machine is the simulated multiprocessor plus its kernel.
type Machine struct {
	Mem     *mem.Memory
	Img     *asm.Image
	Threads []*Thread

	cfg   Config
	hooks Hooks

	steps    uint64
	brk      uint32
	fds      map[int]*stream
	nextFD   int
	outputs  map[int]*bytes.Buffer
	pending  []dmaOp
	alive    int
	exitCode int32
	crash    *CrashInfo

	// sched is the round-robin cursor.
	sched int
	// started records that Run has begun (thread 0 launched).
	started bool

	// running/runBaseIC identify the thread currently inside a batched
	// cpu.Run call and its instruction count when the batch began, so Now
	// stays per-instruction accurate for hooks that fire mid-batch (steps
	// is only folded forward when the batch returns).
	running   *Thread
	runBaseIC uint64
}

// New creates a machine, loads the image, and prepares thread 0 at the
// image entry point.
func New(img *asm.Image, cfg Config, hooks Hooks) *Machine {
	cfg.fillDefaults()
	m := &Machine{
		Mem:     mem.New(),
		Img:     img,
		cfg:     cfg,
		hooks:   hooks,
		fds:     make(map[int]*stream),
		outputs: map[int]*bytes.Buffer{1: {}, 2: {}},
		nextFD:  3,
	}
	// Load segments.
	if len(img.Text) > 0 {
		m.Mem.Map(img.TextBase, uint32(len(img.Text)))
		if err := m.Mem.StoreBytes(img.TextBase, img.Text); err != nil {
			panic(err)
		}
	}
	if len(img.Data) > 0 {
		m.Mem.Map(img.DataBase, uint32(len(img.Data)))
		if err := m.Mem.StoreBytes(img.DataBase, img.Data); err != nil {
			panic(err)
		}
	}
	// Program break starts page-aligned after the data segment.
	end := img.DataBase + uint32(len(img.Data))
	m.brk = (end + mem.PageSize - 1) &^ (mem.PageSize - 1)

	// Pre-open stdin.
	if in, ok := cfg.Inputs["stdin"]; ok {
		m.fds[0] = &stream{data: in}
	} else {
		m.fds[0] = &stream{}
	}

	// Thread slots. Thread 0 starts lazily on the first Run call so that a
	// recorder can attach via SetHooks and observe OnThreadStart(0).
	m.Threads = make([]*Thread, cfg.Cores)
	for i := range m.Threads {
		m.Threads[i] = &Thread{ID: i, State: ThreadFree}
	}
	return m
}

// SetHooks installs the observation hooks. Attaching to an
// already-running machine is allowed — BugNet records continuously, and
// experiments attach a recorder after a warm-up phase; the caller (see
// core.NewRecorder) is responsible for treating already-live threads as
// newly started.
func (m *Machine) SetHooks(h Hooks) {
	m.hooks = h
}

// Started reports whether Run has launched thread 0.
func (m *Machine) Started() bool { return m.started }

// SetMaxSteps raises (or lowers) the step budget, so a machine stopped by
// the budget can be resumed with another Run call.
func (m *Machine) SetMaxSteps(n uint64) { m.cfg.MaxSteps = n }

// startThread initializes slot tid and makes it runnable.
func (m *Machine) startThread(tid int, entry, arg, stackTop, stackSize uint32) {
	m.Mem.Map(stackTop-stackSize, stackSize)
	c := cpu.New(m.Mem)
	c.PC = entry
	c.Regs[isa.RegSP] = stackTop
	c.Regs[isa.RegA0] = arg
	c.Regs[isa.RegRA] = ExitSentinel
	c.Regs[isa.RegTP] = uint32(tid)
	th := m.Threads[tid]
	th.CPU = c
	th.State = ThreadRunnable
	if m.cfg.TimerInterval > 0 {
		th.nextTimer = m.cfg.TimerInterval
	}
	m.alive++
	if m.hooks != nil {
		m.hooks.OnThreadStart(tid)
	}
}

// Now returns the global step counter — the machine's deterministic clock,
// used for SysTime and FLL/MRL timestamps. Inside a batched cpu.Run the
// committed instructions of the batch are counted live, so recorder hooks
// observe exactly the step they would have under one-Step-per-loop
// execution.
func (m *Machine) Now() uint64 {
	if m.running != nil {
		return m.steps + (m.running.CPU.IC - m.runBaseIC)
	}
	return m.steps
}

// Output returns everything the program wrote to the given fd (1=stdout,
// 2=stderr).
func (m *Machine) Output(fd int) []byte {
	b := m.outputs[fd]
	if b == nil {
		return nil
	}
	return b.Bytes()
}

// Crash returns the crash info if the machine has faulted.
func (m *Machine) Crash() *CrashInfo { return m.crash }

// Run executes until the program exits, crashes, or exceeds MaxSteps.
func (m *Machine) Run() *Result {
	if !m.started {
		m.started = true
		m.startThread(0, m.Img.Entry, 0, mem.StackTop, mem.DefaultStackSize)
	}
	for m.alive > 0 && m.crash == nil && m.steps < m.cfg.MaxSteps {
		th := m.pickThread()
		if th == nil {
			break
		}
		m.runQuantum(th)
	}
	res := &Result{
		Crash:    m.crash,
		ExitCode: m.exitCode,
		Steps:    m.steps,
	}
	for _, th := range m.Threads {
		if th.CPU != nil {
			res.Instructions += th.CPU.IC
		}
	}
	return res
}

// pickThread returns the next runnable thread round-robin, or nil.
func (m *Machine) pickThread() *Thread {
	n := len(m.Threads)
	for i := 0; i < n; i++ {
		th := m.Threads[(m.sched+i)%n]
		if th.State == ThreadRunnable {
			m.sched = (th.ID + 1) % n
			return th
		}
	}
	return nil
}

// runQuantum runs one thread for up to Quantum instructions through the
// predecoded block engine (cpu.Run), servicing timer interrupts, syscalls
// and DMA completions.
//
// Each batch is bounded so that no machine event can fall inside it: the
// quantum remainder, the step budget, the thread's next timer interrupt,
// and the earliest pending DMA completion. Within those bounds the batched
// execution is step-for-step identical to the historical one-Step-per-loop
// interleaving — timers still fire on the exact instruction boundary and
// DMA completions still land on the exact global step they always did, so
// recorded logs are byte-identical across engines.
func (m *Machine) runQuantum(th *Thread) {
	for q := 0; q < m.cfg.Quantum && th.State == ThreadRunnable && m.crash == nil; {
		if m.steps >= m.cfg.MaxSteps {
			return
		}
		batch := uint64(m.cfg.Quantum - q)
		if left := m.cfg.MaxSteps - m.steps; left < batch {
			batch = left
		}
		if th.nextTimer != 0 {
			if th.CPU.IC >= th.nextTimer {
				// Overdue (a syscall ended the previous quantum past the
				// mark): the timer fires after one more committed
				// instruction, as the stepped loop did.
				batch = 1
			} else if dt := th.nextTimer - th.CPU.IC; dt < batch {
				batch = dt
			}
		}
		if next, ok := m.nextDMACompletion(); ok {
			if next <= m.steps {
				batch = 1
			} else if dt := next - m.steps; dt < batch {
				batch = dt
			}
		}
		m.running, m.runBaseIC = th, th.CPU.IC
		executed, ev := th.CPU.Run(batch)
		m.running = nil
		m.steps += executed
		q += int(executed)
		switch ev {
		case cpu.EventStep:
			m.dmaTick()
			if th.nextTimer != 0 && th.CPU.IC >= th.nextTimer {
				m.timerInterrupt(th)
			}
		case cpu.EventSyscall:
			m.dmaTick()
			m.syscall(th)
			return // syscall ends the quantum (the thread trapped)
		case cpu.EventFault:
			// The faulting instruction did not commit but its attempt
			// consumed a machine step, exactly as in the stepped loop.
			m.steps++
			m.dmaTick()
			m.handleFault(th)
			return
		case cpu.EventHalted:
			m.steps++
			m.dmaTick()
			return
		}
	}
}

// nextDMACompletion returns the earliest pending DMA completion step.
func (m *Machine) nextDMACompletion() (uint64, bool) {
	if len(m.pending) == 0 {
		return 0, false
	}
	next := m.pending[0].completeAt
	for _, op := range m.pending[1:] {
		if op.completeAt < next {
			next = op.completeAt
		}
	}
	return next, true
}

// invalidateFetch drops every live core's predecoded blocks covering the
// externally written range. Called after the kernel or the DMA engine
// writes user memory behind the cores' backs: the word-level fetch path
// read through the page pointer and picked such writes up implicitly, but
// predecoded blocks cache decoded content and must be told when it may
// have changed. The range filter keeps writes into plain data buffers —
// nearly all of them — from flushing anything.
func (m *Machine) invalidateFetch(addr, n uint32) {
	for _, th := range m.Threads {
		if th.CPU != nil {
			th.CPU.InvalidateFetchRange(addr, n)
		}
	}
}

// timerInterrupt models an asynchronous interrupt / context switch: the
// kernel borrows the core, possibly dirtying kernel-managed user memory,
// and returns. The recorder sees interval termination and restart.
func (m *Machine) timerInterrupt(th *Thread) {
	if m.hooks != nil {
		m.hooks.OnInterrupt(th.ID, IntTimer)
	}
	th.nextTimer = th.CPU.IC + m.cfg.TimerInterval
	if m.hooks != nil {
		m.hooks.OnInterruptReturn(th.ID)
	}
}

// handleFault processes a CPU fault: either a clean thread exit through
// the exit sentinel, or a genuine crash that halts the whole machine (the
// OS kills the process and BugNet dumps its logs).
func (m *Machine) handleFault(th *Thread) {
	f := th.CPU.Fault
	if f.Cause == cpu.FaultMemFetch && f.PC == ExitSentinel {
		m.exitThread(th, th.CPU.Regs[isa.RegA0])
		return
	}
	m.crash = &CrashInfo{TID: th.ID, Fault: f}
	if m.hooks != nil {
		m.hooks.OnFault(th.ID, f)
	}
	// The OS terminates the whole process.
	for _, t := range m.Threads {
		if t.State == ThreadRunnable {
			t.State = ThreadExited
			t.CPU.Halted = true
		}
	}
	m.alive = 0
}

// exitThread retires a thread cleanly.
func (m *Machine) exitThread(th *Thread, code uint32) {
	if th.ID == 0 {
		m.exitCode = int32(code)
	}
	th.State = ThreadExited
	th.CPU.Halted = true
	m.alive--
	if m.hooks != nil {
		m.hooks.OnThreadExit(th.ID)
	}
}

// dmaTick completes due DMA transfers.
func (m *Machine) dmaTick() {
	if len(m.pending) == 0 {
		return
	}
	rest := m.pending[:0]
	for _, op := range m.pending {
		if op.completeAt > m.steps {
			rest = append(rest, op)
			continue
		}
		// The DMA engine writes straight to memory; a directory-based
		// coherence protocol invalidates cached copies (paper §4.5) —
		// recorders perform that invalidation in OnDMAWrite.
		if m.hooks != nil {
			m.hooks.OnDMAPreWrite(op.addr, uint32(len(op.data)))
		}
		if err := m.Mem.StoreBytes(op.addr, op.data); err == nil {
			m.invalidateFetch(op.addr, uint32(len(op.data)))
			if m.hooks != nil {
				m.hooks.OnDMAWrite(op.addr, uint32(len(op.data)))
			}
		}
	}
	m.pending = rest
}

// DrainDMA force-completes all pending DMA (used when the machine halts
// with transfers in flight, so tests can assert on final memory).
func (m *Machine) DrainDMA() {
	for _, op := range m.pending {
		if m.hooks != nil {
			m.hooks.OnDMAPreWrite(op.addr, uint32(len(op.data)))
		}
		if err := m.Mem.StoreBytes(op.addr, op.data); err == nil {
			m.invalidateFetch(op.addr, uint32(len(op.data)))
			if m.hooks != nil {
				m.hooks.OnDMAWrite(op.addr, uint32(len(op.data)))
			}
		}
	}
	m.pending = nil
}
