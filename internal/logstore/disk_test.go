package logstore

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openDiskStore builds a store over a fresh disk backend in dir.
func openDiskStore(t *testing.T, dir string, budget, segBytes int64) *Store {
	t.Helper()
	b, err := OpenDisk(dir, DiskOptions{SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(budget, b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiskAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openDiskStore(t, dir, 0, 128)
	for i := uint32(0); i < 50; i++ {
		if err := s.Append(Item{TID: int(i % 2), CID: i, Timestamp: uint64(i), Bytes: 20, Instructions: 3}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range s.All() {
		data, err := s.Load(it.Seq)
		if err != nil {
			t.Fatalf("seq %d: %v", it.Seq, err)
		}
		if string(data) != string(payload(it.CID)) {
			t.Errorf("seq %d: data = %q", it.Seq, data)
		}
	}
	statsInvariants(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskReopenRecoversRetained(t *testing.T) {
	dir := t.TempDir()
	s := openDiskStore(t, dir, 0, 128)
	var want []Item
	for i := uint32(0); i < 30; i++ {
		it := Item{TID: int(i % 3), CID: i, Timestamp: uint64(i), Bytes: 11 + int64(i), Instructions: uint64(i)}
		if err := s.Append(it, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	want = s.All()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openDiskStore(t, dir, 0, 128)
	defer s2.Close()
	got := s2.All()
	if len(got) != len(want) {
		t.Fatalf("recovered %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: recovered %+v, want %+v", i, got[i], want[i])
		}
		data, err := s2.Load(got[i].Seq)
		if err != nil {
			t.Fatalf("seq %d: %v", got[i].Seq, err)
		}
		if string(data) != string(payload(got[i].CID)) {
			t.Errorf("seq %d: data = %q", got[i].Seq, data)
		}
	}
	// Appends continue with fresh sequence numbers.
	if err := s2.Append(Item{CID: 999, Bytes: 5}, payload(999)); err != nil {
		t.Fatal(err)
	}
	items := s2.All()
	if last := items[len(items)-1]; last.Seq <= want[len(want)-1].Seq {
		t.Errorf("post-reopen seq %d not after recovered %d", last.Seq, want[len(want)-1].Seq)
	}
}

func TestDiskTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openDiskStore(t, dir, 0, 1<<20) // one segment
	for i := uint32(0); i < 10; i++ {
		if err := s.Append(Item{CID: i, Bytes: 10}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	// Tear the tail: chop half of the last record off.
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-9); err != nil {
		t.Fatal(err)
	}

	s2 := openDiskStore(t, dir, 0, 1<<20)
	defer s2.Close()
	items := s2.All()
	if len(items) != 9 {
		t.Fatalf("recovered %d items after torn tail, want 9", len(items))
	}
	for _, it := range items {
		if _, err := s2.Load(it.Seq); err != nil {
			t.Errorf("seq %d unreadable after truncation: %v", it.Seq, err)
		}
	}
}

// TestDiskZeroExtendedTailTruncated: a crash can persist the inode size
// before the data pages, leaving the newest segment extended with zeros;
// reopen must truncate that tail away like any torn append, not fail the
// whole region as corrupt.
func TestDiskZeroExtendedTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openDiskStore(t, dir, 0, 1<<20)
	for i := uint32(0); i < 10; i++ {
		if err := s.Append(Item{CID: i, Bytes: 10}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 300)); err != nil { // zero-filled tail
		t.Fatal(err)
	}
	f.Close()

	s2 := openDiskStore(t, dir, 0, 1<<20)
	defer s2.Close()
	if got := len(s2.All()); got != 10 {
		t.Fatalf("recovered %d items after zero-extended tail, want 10", got)
	}
}

// TestDiskCorruptMidLastSegmentFailsOpen: a bit flip in the middle of the
// newest segment — with intact records behind it — is corruption, not a
// torn tail; reopening must fail loudly rather than silently truncate the
// valid tail away.
func TestDiskCorruptMidLastSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openDiskStore(t, dir, 0, 1<<20) // one segment
	for i := uint32(0); i < 10; i++ {
		if err := s.Append(Item{CID: i, Bytes: 10}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(segs[0])
	data[len(data)/2] ^= 0xff // mid-file: several intact records follow
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(0, b); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("open error = %v; want ErrCorruptSegment", err)
	}
	// The failed open must not have destroyed evidence.
	after, err := os.Stat(segs[0])
	if err != nil || after.Size() != before.Size() {
		t.Fatalf("failed open mutated the segment: %v bytes, was %v", after.Size(), before.Size())
	}
}

func TestDiskCorruptInteriorSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openDiskStore(t, dir, 0, 64) // small segments: several files
	for i := uint32(0); i < 40; i++ {
		if err := s.Append(Item{CID: i, Bytes: 10}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %v", segs)
	}
	// Flip a payload byte in the first (non-last) segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(0, b); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("open error = %v; want ErrCorruptSegment", err)
	}
}

func TestDiskOldestSegmentReclaimed(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir, DiskOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(400, b)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint32(0); i < 200; i++ {
		if err := s.Append(Item{CID: i, Timestamp: uint64(i), Bytes: 40}, payload(i)); err != nil {
			t.Fatal(err)
		}
		statsInvariants(t, s)
	}
	// Budget 400 at 40 bytes/item retains ~10 items ≈ 2-3 segments of
	// encoded records; the rest of the 200 appends must have been
	// physically reclaimed, not just logically evicted.
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if len(segs) > 6 {
		t.Errorf("%d segment files survive a 10-item budget: %v", len(segs), segs)
	}
	if got := b.SegmentCount(); got != len(segs) {
		t.Errorf("SegmentCount = %d, files on disk = %d", got, len(segs))
	}
	st := s.Stats()
	if st.EvictedCount == 0 || st.RetainedBytes > 400 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDiskBudgetRetrimOnReopen: eviction is logical within the active
// segment, so a crash can resurrect evicted items; reopening re-applies
// the budget immediately.
func TestDiskBudgetRetrimOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := openDiskStore(t, dir, 0, 1<<20) // unlimited: retain everything
	for i := uint32(0); i < 50; i++ {
		if err := s.Append(Item{CID: i, Timestamp: uint64(i), Bytes: 100}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen under a budget of 10 items.
	s2 := openDiskStore(t, dir, 1000, 1<<20)
	defer s2.Close()
	items := s2.All()
	if len(items) != 10 {
		t.Fatalf("retained %d items after re-trim, want 10", len(items))
	}
	if items[0].CID != 40 || items[len(items)-1].CID != 49 {
		t.Errorf("re-trim kept wrong window: C%d..C%d", items[0].CID, items[len(items)-1].CID)
	}
	statsInvariants(t, s2)
}

// TestDiskMatchesMemorySemantics drives both backends with an identical
// random append sequence and checks they retain the same window with the
// same accounting — the property the determinism of cross-backend report
// packing rests on.
func TestDiskMatchesMemorySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mem := New(3000)
	dsk := openDiskStore(t, t.TempDir(), 3000, 512)
	defer dsk.Close()
	for i := uint32(0); i < 300; i++ {
		it := Item{TID: int(i % 2), CID: i, Timestamp: uint64(i), Bytes: int64(1 + rng.Intn(400)), Instructions: uint64(i)}
		if err := mem.Append(it, payload(i)); err != nil {
			t.Fatal(err)
		}
		if err := dsk.Append(it, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	mi, di := mem.All(), dsk.All()
	if len(mi) != len(di) {
		t.Fatalf("retained: memory %d, disk %d", len(mi), len(di))
	}
	for i := range mi {
		if mi[i] != di[i] {
			t.Fatalf("item %d: memory %+v, disk %+v", i, mi[i], di[i])
		}
		md, _ := mem.Load(mi[i].Seq)
		dd, err := dsk.Load(di[i].Seq)
		if err != nil {
			t.Fatal(err)
		}
		if string(md) != string(dd) {
			t.Fatalf("item %d bytes differ", i)
		}
	}
	if mem.Stats() != dsk.Stats() {
		t.Errorf("stats: memory %+v, disk %+v", mem.Stats(), dsk.Stats())
	}
}

// TestDiskConcurrentLoadAppend exercises the store lock under the race
// detector: one goroutine appends while others load and list.
func TestDiskConcurrentLoadAppend(t *testing.T) {
	s := openDiskStore(t, t.TempDir(), 4000, 256)
	defer s.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, it := range s.All() {
					if data, err := s.Load(it.Seq); err == nil && len(data) == 0 {
						t.Error("empty payload")
						return
					}
					// Racing an eviction is fine; ErrEvicted is expected.
				}
				s.Stats()
				s.ReplayWindow(0)
			}
		}()
	}
	for i := uint32(0); i < 500; i++ {
		if err := s.Append(Item{CID: i, Timestamp: uint64(i), Bytes: 50}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskEmptyDirOpens(t *testing.T) {
	s := openDiskStore(t, t.TempDir(), 100, 0)
	if got := len(s.All()); got != 0 {
		t.Fatalf("fresh dir has %d items", got)
	}
	if err := s.Append(Item{CID: 1, Bytes: 10}, payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskLoaderSurvivesStoreUse(t *testing.T) {
	s := openDiskStore(t, t.TempDir(), 0, 64)
	defer s.Close()
	for i := uint32(0); i < 20; i++ {
		if err := s.Append(Item{CID: i, Bytes: 10}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	it := s.All()[3]
	load := s.Loader(it.Seq)
	for i := 0; i < 3; i++ {
		data, err := load()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(payload(it.CID)) {
			t.Fatalf("load %d: %q", i, data)
		}
	}
}
