package logstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"bugnet/internal/faultinject"
)

// Disk is the spill-to-disk Backend: the log region lives in append-only
// segment files, so the replay window is bounded by the byte budget the
// operator grants on disk rather than by process memory — the paper's
// "log region the OS is willing to dedicate" (§4.7) at disk scale.
//
// Layout: numbered segment files, each a fixed header followed by framed
// records. A record is
//
//	u32 recLen | u64 seq | u32 tid | u32 cid | u64 timestamp |
//	i64 bytes | u64 instructions | data | u32 CRC32(recLen‖…‖data)
//
// where recLen counts everything between itself and the CRC. Appends go
// to the active (newest) segment, which rotates once it exceeds
// SegmentBytes. Eviction is logical per item; a segment file is deleted
// once every record in it is evicted — budget-driven oldest-segment
// reclamation, since the Store evicts strictly oldest-first.
//
// Reopen re-indexes every segment, validating frame CRCs as it reads. A
// torn tail (a crash mid-append) can exist only as the final frame of the
// highest-numbered segment and is truncated away; a bad frame anywhere
// else — earlier segments, or followed by intact data — is corruption
// and fails the open. Reclamation can lag a crash
// (items evicted from a still-live segment reappear); Open's budget
// re-trim evicts them again.
type Disk struct {
	dir     string
	segMax  int64
	fsys    *faultinject.FS  // nil outside chaos runs: direct os calls
	active  faultinject.File // nil until the first post-open Append rotates
	actSize int64

	recs map[uint64]diskRec
	segs []*diskSeg // oldest first; last is the active segment
}

// diskRec locates one record's data bytes.
type diskRec struct {
	seg  *diskSeg
	off  int64 // offset of data within the segment file
	size int64
}

// diskSeg tracks one segment file's live-record count.
type diskSeg struct {
	path string
	live int
}

// DiskOptions tunes a disk backend.
type DiskOptions struct {
	// SegmentBytes is the rotation threshold for segment files; smaller
	// segments reclaim space sooner under budget pressure, larger ones
	// make fewer files. Default 1 MiB.
	SegmentBytes int64
	// FS routes segment I/O through a fault-injection plane; nil (the
	// production default) calls the os package directly.
	FS *faultinject.FS
}

const (
	segExt        = ".seg"
	segHdrLen     = 8 // magic + version + padding
	recFixedLen   = 8 + 4 + 4 + 8 + 8 + 8
	defaultSegMax = 1 << 20
)

var segMagic = [4]byte{'B', 'N', 'S', 'G'}

const segVersion = 1

// ErrCorruptSegment reports a damaged segment file (outside the
// truncatable torn tail of the newest segment).
var ErrCorruptSegment = errors.New("logstore: corrupt segment")

// OpenDisk opens (creating if needed) a disk-backed log region rooted at
// dir. Pass the result to Open to recover retained items and re-apply the
// budget.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segMax := opts.SegmentBytes
	if segMax <= 0 {
		segMax = defaultSegMax
	}
	return &Disk{dir: dir, segMax: segMax, fsys: opts.FS, recs: make(map[uint64]diskRec)}, nil
}

// segPath names the segment whose first record has sequence seq.
func (d *Disk) segPath(seq uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("%016x%s", seq, segExt))
}

// Recover implements Backend: re-index every segment, oldest first.
func (d *Disk) Recover() ([]Item, error) {
	names, err := filepath.Glob(filepath.Join(d.dir, "*"+segExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // fixed-width hex first-seq names sort in seq order
	var items []Item
	for i, name := range names {
		segItems, err := d.indexSegment(name, i == len(names)-1)
		if err != nil {
			return nil, err
		}
		items = append(items, segItems...)
	}
	return items, nil
}

// indexSegment reads one segment, validating and indexing each record.
// When last is true a trailing bad frame is treated as a torn append and
// truncated away; otherwise it is corruption.
func (d *Disk) indexSegment(path string, last bool) ([]Item, error) {
	f, err := d.fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || [4]byte(hdr[:4]) != segMagic || hdr[4] != segVersion {
		if last && err != nil {
			// Crash between creating the file and writing its header.
			return nil, d.fsys.Remove(path)
		}
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorruptSegment, path)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	seg := &diskSeg{path: path}
	var items []Item
	pos := int64(segHdrLen)
	var torn bool
	for {
		it, rec, next, err := readRecord(f, pos, fi.Size())
		if err == io.EOF {
			break
		}
		if err != nil {
			// Only a genuinely torn append may be truncated away: the bad
			// frame must be the file's final one (a crash mid-WriteAt can
			// leave only the tail incomplete). A bad frame with intact
			// data after it is disk corruption — destroying the valid
			// records behind it would silently shrink the window, so fail
			// loudly instead.
			if !last || !tornTail(f, pos, fi.Size()) {
				return nil, fmt.Errorf("%w: %s at offset %d: %v", ErrCorruptSegment, path, pos, err)
			}
			torn = true
			break
		}
		rec.seg = seg
		d.recs[it.Seq] = rec
		items = append(items, it)
		seg.live++
		pos = next
	}
	if torn {
		if err := d.fsys.Truncate(path, pos); err != nil {
			return nil, err
		}
	}
	if seg.live == 0 {
		// Every record was reclaimed (or the whole tail was torn): the
		// file carries nothing live.
		return nil, d.fsys.Remove(path)
	}
	d.segs = append(d.segs, seg)
	return items, nil
}

// readRecord decodes one framed record at pos, returning the item, its
// data location, and the offset of the next record. size is the segment
// file's length, bounding allocation against a garbage length field.
func readRecord(f faultinject.File, pos, size int64) (Item, diskRec, int64, error) {
	if pos == size {
		return Item{}, diskRec{}, 0, io.EOF // record stream ends cleanly
	}
	le := binary.LittleEndian
	var lenBuf [4]byte
	if _, err := f.ReadAt(lenBuf[:], pos); err != nil {
		return Item{}, diskRec{}, 0, fmt.Errorf("truncated frame length: %w", err)
	}
	recLen := int64(le.Uint32(lenBuf[:]))
	if recLen < recFixedLen || pos+4+recLen+4 > size {
		return Item{}, diskRec{}, 0, fmt.Errorf("implausible record length %d", recLen)
	}
	frame := make([]byte, 4+recLen+4)
	if _, err := f.ReadAt(frame, pos); err != nil {
		return Item{}, diskRec{}, 0, fmt.Errorf("truncated record: %w", err)
	}
	body, sum := frame[:4+recLen], le.Uint32(frame[4+recLen:])
	if crc32.ChecksumIEEE(body) != sum {
		return Item{}, diskRec{}, 0, errors.New("record checksum mismatch")
	}
	p := body[4:]
	it := Item{
		Seq:          le.Uint64(p[0:]),
		TID:          int(int32(le.Uint32(p[8:]))),
		CID:          le.Uint32(p[12:]),
		Timestamp:    le.Uint64(p[16:]),
		Bytes:        int64(le.Uint64(p[24:])),
		Instructions: le.Uint64(p[32:]),
		EncodedBytes: recLen - recFixedLen,
	}
	rec := diskRec{off: pos + 4 + recFixedLen, size: recLen - recFixedLen}
	return it, rec, pos + 4 + recLen + 4, nil
}

// tornTail reports whether the unreadable frame at pos is consistent with
// a crash mid-append: too few bytes left for any record, a frame whose
// claimed extent runs to (or past) the end of the file, or a length field
// too small to be real (a crash can persist the inode size before the
// data pages, leaving the tail zero-filled or a partially-written length
// prefix — and with no usable length, no later record could be located
// anyway, so truncating loses nothing recoverable). The one case that is
// NOT torn: a complete in-bounds frame that failed its checksum with
// further data behind it — that is in-place corruption, and truncating
// would silently destroy the valid records after it.
func tornTail(f faultinject.File, pos, size int64) bool {
	const minFrame = 4 + recFixedLen + 4
	if size-pos < minFrame {
		return true
	}
	var lenBuf [4]byte
	if _, err := f.ReadAt(lenBuf[:], pos); err != nil {
		return true
	}
	recLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	if recLen < recFixedLen {
		return true
	}
	return pos+4+recLen+4 >= size
}

// Append implements Backend.
func (d *Disk) Append(it Item, data []byte) error {
	if d.active == nil || d.actSize >= d.segMax {
		if err := d.rotate(it.Seq); err != nil {
			return err
		}
	}
	le := binary.LittleEndian
	recLen := recFixedLen + len(data)
	frame := make([]byte, 0, 4+recLen+4)
	var tmp [8]byte
	le.PutUint32(tmp[:4], uint32(recLen))
	frame = append(frame, tmp[:4]...)
	le.PutUint64(tmp[:8], it.Seq)
	frame = append(frame, tmp[:8]...)
	le.PutUint32(tmp[:4], uint32(int32(it.TID)))
	frame = append(frame, tmp[:4]...)
	le.PutUint32(tmp[:4], it.CID)
	frame = append(frame, tmp[:4]...)
	le.PutUint64(tmp[:8], it.Timestamp)
	frame = append(frame, tmp[:8]...)
	le.PutUint64(tmp[:8], uint64(it.Bytes))
	frame = append(frame, tmp[:8]...)
	le.PutUint64(tmp[:8], it.Instructions)
	frame = append(frame, tmp[:8]...)
	frame = append(frame, data...)
	le.PutUint32(tmp[:4], crc32.ChecksumIEEE(frame))
	frame = append(frame, tmp[:4]...)
	if _, err := d.active.WriteAt(frame, d.actSize); err != nil {
		return err
	}
	seg := d.segs[len(d.segs)-1]
	d.recs[it.Seq] = diskRec{seg: seg, off: d.actSize + 4 + recFixedLen, size: int64(len(data))}
	seg.live++
	d.actSize += int64(len(frame))
	return nil
}

// rotate closes the active segment and starts a new one named by seq. A
// previous active segment whose records were all evicted while it was
// still accepting appends is reclaimed here, the one deletion Evict must
// defer.
func (d *Disk) rotate(seq uint64) error {
	if d.active != nil {
		if err := d.active.Close(); err != nil {
			return err
		}
		d.active = nil
		if prev := d.activeSeg(); prev != nil && prev.live == 0 {
			d.segs = d.segs[:len(d.segs)-1]
			if err := d.fsys.Remove(prev.path); err != nil {
				return err
			}
		}
	}
	path := d.segPath(seq)
	f, err := d.fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHdrLen]byte
	copy(hdr[:4], segMagic[:])
	hdr[4] = segVersion
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	d.active = f
	d.actSize = segHdrLen
	d.segs = append(d.segs, &diskSeg{path: path})
	return nil
}

// Load implements Backend.
func (d *Disk) Load(seq uint64) ([]byte, error) {
	rec, ok := d.recs[seq]
	if !ok {
		return nil, fmt.Errorf("%w: seq %d", ErrEvicted, seq)
	}
	buf := make([]byte, rec.size)
	if rec.seg == d.activeSeg() && d.active != nil {
		if _, err := d.active.ReadAt(buf, rec.off); err != nil {
			return nil, fmt.Errorf("logstore: reading %s: %w", rec.seg.path, err)
		}
		return buf, nil
	}
	f, err := d.fsys.Open(rec.seg.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.ReadAt(buf, rec.off); err != nil {
		return nil, fmt.Errorf("logstore: reading %s: %w", rec.seg.path, err)
	}
	return buf, nil
}

// activeSeg returns the newest segment, nil when none exist.
func (d *Disk) activeSeg() *diskSeg {
	if len(d.segs) == 0 {
		return nil
	}
	return d.segs[len(d.segs)-1]
}

// Evict implements Backend: drop the record from the index and delete its
// segment file once no live record remains in it (never the active
// segment, whose file the next append still writes).
func (d *Disk) Evict(it Item) error {
	rec, ok := d.recs[it.Seq]
	if !ok {
		return fmt.Errorf("logstore: evicting unknown seq %d", it.Seq)
	}
	delete(d.recs, it.Seq)
	rec.seg.live--
	if rec.seg.live > 0 || rec.seg == d.activeSeg() {
		return nil
	}
	for i, s := range d.segs {
		if s == rec.seg {
			d.segs = append(d.segs[:i], d.segs[i+1:]...)
			break
		}
	}
	return d.fsys.Remove(rec.seg.path)
}

// SegmentCount returns the number of live segment files (for tests and
// occupancy reporting).
func (d *Disk) SegmentCount() int { return len(d.segs) }

// Close implements Backend.
func (d *Disk) Close() error {
	if d.active != nil {
		err := d.active.Close()
		d.active = nil
		return err
	}
	return nil
}
