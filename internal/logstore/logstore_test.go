package logstore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// payload builds a distinguishable encoded blob for an item.
func payload(cid uint32) []byte {
	return []byte(fmt.Sprintf("encoded-log-%d", cid))
}

func TestUnlimitedRetainsAll(t *testing.T) {
	s := New(0)
	for i := 0; i < 100; i++ {
		if err := s.Append(Item{TID: i % 3, CID: uint32(i), Timestamp: uint64(i), Bytes: 100, Instructions: 10}, payload(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.RetainedCount != 100 || st.EvictedCount != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.RetainedEncodedBytes == 0 {
		t.Errorf("encoded bytes not accounted: %+v", st)
	}
	if s.ReplayWindow(0) != 340 { // 34 items x 10
		t.Errorf("replay window = %d", s.ReplayWindow(0))
	}
}

func TestBudgetEvictsOldestFirst(t *testing.T) {
	s := New(250)
	s.Append(Item{CID: 1, Timestamp: 1, Bytes: 100}, payload(1))
	s.Append(Item{CID: 2, Timestamp: 2, Bytes: 100}, payload(2))
	s.Append(Item{CID: 3, Timestamp: 3, Bytes: 100}, payload(3)) // 300 > 250: evict CID 1
	items := s.All()
	if len(items) != 2 || items[0].CID != 2 || items[1].CID != 3 {
		t.Fatalf("items = %+v", items)
	}
	st := s.Stats()
	if st.EvictedCount != 1 || st.EvictedBytes != 100 || st.RetainedBytes != 200 {
		t.Errorf("stats = %+v", st)
	}
	// The evicted item's bytes are gone; the retained ones load back.
	if _, err := s.Load(items[0].Seq); err != nil {
		t.Errorf("retained item failed to load: %v", err)
	}
	if _, err := s.Load(0); !errors.Is(err, ErrEvicted) {
		t.Errorf("evicted load error = %v; want ErrEvicted", err)
	}
}

func TestOversizeItemAlwaysKept(t *testing.T) {
	s := New(50)
	s.Append(Item{CID: 1, Bytes: 500}, payload(1))
	if len(s.All()) != 1 {
		t.Fatal("single oversize item must be retained (never evict the newest)")
	}
	s.Append(Item{CID: 2, Bytes: 10}, payload(2))
	items := s.All()
	if len(items) != 1 || items[0].CID != 2 {
		t.Errorf("items = %+v", items)
	}
}

func TestThreadFiltering(t *testing.T) {
	s := New(0)
	s.Append(Item{TID: 0, CID: 1, Bytes: 10, Instructions: 5}, payload(1))
	s.Append(Item{TID: 1, CID: 1, Bytes: 10, Instructions: 7}, payload(2))
	s.Append(Item{TID: 0, CID: 2, Bytes: 10, Instructions: 9}, payload(3))
	if got := s.Thread(0); len(got) != 2 || got[0].CID != 1 || got[1].CID != 2 {
		t.Errorf("Thread(0) = %+v", got)
	}
	if s.ReplayWindow(1) != 7 {
		t.Errorf("window(1) = %d", s.ReplayWindow(1))
	}
	if ts := s.Threads(); len(ts) != 2 || ts[0] != 0 || ts[1] != 1 {
		t.Errorf("Threads = %v", ts)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	s := New(0)
	for i := uint32(1); i <= 5; i++ {
		s.Append(Item{CID: i, Bytes: 10}, payload(i))
	}
	for _, it := range s.All() {
		data, err := s.Load(it.Seq)
		if err != nil {
			t.Fatalf("seq %d: %v", it.Seq, err)
		}
		if string(data) != string(payload(it.CID)) {
			t.Errorf("seq %d: data = %q", it.Seq, data)
		}
		if it.EncodedBytes != int64(len(data)) {
			t.Errorf("seq %d: encoded bytes %d != %d", it.Seq, it.EncodedBytes, len(data))
		}
	}
}

// statsInvariants checks the conservation laws the eviction accounting
// must uphold at every point of a store's life.
func statsInvariants(t *testing.T, s *Store) {
	t.Helper()
	st := s.Stats()
	if st.RetainedBytes+st.EvictedBytes != st.TotalBytes {
		t.Fatalf("byte conservation violated: %+v", st)
	}
	if st.RetainedCount+st.EvictedCount != st.TotalCount {
		t.Fatalf("count conservation violated: %+v", st)
	}
	if st.RetainedCount != len(s.All()) {
		t.Fatalf("retained count %d != len(All) %d", st.RetainedCount, len(s.All()))
	}
	if st.RetainedCount < 0 || st.RetainedBytes < 0 || st.RetainedEncodedBytes < 0 {
		t.Fatalf("negative occupancy: %+v", st)
	}
	var enc int64
	for _, it := range s.All() {
		enc += it.EncodedBytes
	}
	if enc != st.RetainedEncodedBytes {
		t.Fatalf("encoded accounting drifted: sum %d, stats %d", enc, st.RetainedEncodedBytes)
	}
}

// TestStatsInvariantsUnderBudgetPressure drives a store hard against its
// budget and checks the accounting conservation laws, the unlimited mode,
// and the newest-item-always-retained rule at every step.
func TestStatsInvariantsUnderBudgetPressure(t *testing.T) {
	for _, budget := range []int64{0, 1, 64, 1000} {
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			s := New(budget)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 500; i++ {
				cid := uint32(i)
				it := Item{CID: cid, Timestamp: uint64(i), Bytes: int64(1 + rng.Intn(200))}
				if err := s.Append(it, payload(cid)); err != nil {
					t.Fatal(err)
				}
				statsInvariants(t, s)
				items := s.All()
				if len(items) == 0 {
					t.Fatal("newest item evicted")
				}
				if newest := items[len(items)-1]; newest.CID != cid {
					t.Fatalf("newest retained is C%d, appended C%d", newest.CID, cid)
				}
				if st := s.Stats(); budget > 0 && st.RetainedBytes > budget && st.RetainedCount > 1 {
					t.Fatalf("over budget with evictable items: %+v", st)
				}
			}
			if st := s.Stats(); budget <= 0 && (st.EvictedCount != 0 || st.RetainedCount != 500) {
				t.Fatalf("unlimited budget evicted: %+v", st)
			}
		})
	}
}

// TestPropertyBudgetInvariant: after any append sequence, retained bytes
// never exceed the budget unless a single newest item alone exceeds it; and
// retained items remain in append order.
func TestPropertyBudgetInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := int64(1 + rng.Intn(5000))
		s := New(budget)
		for i := 0; i < 300; i++ {
			s.Append(Item{
				CID:       uint32(i),
				Timestamp: uint64(i),
				Bytes:     int64(1 + rng.Intn(300)),
			}, payload(uint32(i)))
			st := s.Stats()
			if st.RetainedBytes > budget && st.RetainedCount > 1 {
				return false
			}
			items := s.All()
			for j := 1; j < len(items); j++ {
				if items[j].CID != items[j-1].CID+1 {
					return false // order broken or non-contiguous eviction
				}
			}
		}
		st := s.Stats()
		return st.TotalCount == 300 && st.RetainedCount+st.EvictedCount == 300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
