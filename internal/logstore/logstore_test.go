package logstore

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnlimitedRetainsAll(t *testing.T) {
	s := New(0)
	for i := 0; i < 100; i++ {
		s.Append(Item{TID: i % 3, CID: uint32(i), Timestamp: uint64(i), Bytes: 100, Instructions: 10})
	}
	st := s.Stats()
	if st.RetainedCount != 100 || st.EvictedCount != 0 {
		t.Errorf("stats = %+v", st)
	}
	if s.ReplayWindow(0) != 340 { // 34 items x 10
		t.Errorf("replay window = %d", s.ReplayWindow(0))
	}
}

func TestBudgetEvictsOldestFirst(t *testing.T) {
	s := New(250)
	s.Append(Item{CID: 1, Timestamp: 1, Bytes: 100})
	s.Append(Item{CID: 2, Timestamp: 2, Bytes: 100})
	s.Append(Item{CID: 3, Timestamp: 3, Bytes: 100}) // 300 > 250: evict CID 1
	items := s.All()
	if len(items) != 2 || items[0].CID != 2 || items[1].CID != 3 {
		t.Fatalf("items = %+v", items)
	}
	st := s.Stats()
	if st.EvictedCount != 1 || st.EvictedBytes != 100 || st.RetainedBytes != 200 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOversizeItemAlwaysKept(t *testing.T) {
	s := New(50)
	s.Append(Item{CID: 1, Bytes: 500})
	if len(s.All()) != 1 {
		t.Fatal("single oversize item must be retained (never evict the newest)")
	}
	s.Append(Item{CID: 2, Bytes: 10})
	items := s.All()
	if len(items) != 1 || items[0].CID != 2 {
		t.Errorf("items = %+v", items)
	}
}

func TestThreadFiltering(t *testing.T) {
	s := New(0)
	s.Append(Item{TID: 0, CID: 1, Bytes: 10, Instructions: 5})
	s.Append(Item{TID: 1, CID: 1, Bytes: 10, Instructions: 7})
	s.Append(Item{TID: 0, CID: 2, Bytes: 10, Instructions: 9})
	if got := s.Thread(0); len(got) != 2 || got[0].CID != 1 || got[1].CID != 2 {
		t.Errorf("Thread(0) = %+v", got)
	}
	if s.ReplayWindow(1) != 7 {
		t.Errorf("window(1) = %d", s.ReplayWindow(1))
	}
	if ts := s.Threads(); len(ts) != 2 || ts[0] != 0 || ts[1] != 1 {
		t.Errorf("Threads = %v", ts)
	}
}

// TestPropertyBudgetInvariant: after any append sequence, retained bytes
// never exceed the budget unless a single newest item alone exceeds it; and
// retained items remain in append order.
func TestPropertyBudgetInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := int64(1 + rng.Intn(5000))
		s := New(budget)
		for i := 0; i < 300; i++ {
			s.Append(Item{
				CID:       uint32(i),
				Timestamp: uint64(i),
				Bytes:     int64(1 + rng.Intn(300)),
			})
			st := s.Stats()
			if st.RetainedBytes > budget && st.RetainedCount > 1 {
				return false
			}
			items := s.All()
			for j := 1; j < len(items); j++ {
				if items[j].CID != items[j-1].CID+1 {
					return false // order broken or non-contiguous eviction
				}
			}
		}
		st := s.Stats()
		return st.TotalCount == 300 && st.RetainedCount+st.EvictedCount == 300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
