package logstore

import (
	"fmt"
	"testing"
)

// TestAppendBatchEquivalence: a batch append must leave the store in
// exactly the state the same sequence of single appends would — items,
// stats, assigned seqs, and eviction decisions.
func TestAppendBatchEquivalence(t *testing.T) {
	mk := func(i int) (Item, []byte) {
		data := make([]byte, 10+i)
		return Item{TID: i % 2, CID: uint32(i), Timestamp: uint64(i), Bytes: int64(len(data))}, data
	}
	single := New(64)
	batch := New(64)
	var entries []AppendEntry
	for i := 0; i < 8; i++ {
		it, data := mk(i)
		if err := single.Append(it, data); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, AppendEntry{Item: it, Data: data})
	}
	n, err := batch.AppendBatch(entries)
	if err != nil || n != len(entries) {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	if single.Stats() != batch.Stats() {
		t.Fatalf("stats diverge:\nsingle %+v\nbatch  %+v", single.Stats(), batch.Stats())
	}
	si, bi := single.All(), batch.All()
	if len(si) != len(bi) {
		t.Fatalf("items: %d vs %d", len(si), len(bi))
	}
	for i := range si {
		if si[i] != bi[i] {
			t.Fatalf("item %d: %+v vs %+v", i, si[i], bi[i])
		}
	}
	// Assigned seqs are written back, consecutive, and loadable.
	for i, e := range entries {
		if e.Item.Seq != uint64(i)+entries[0].Item.Seq {
			t.Fatalf("entry %d seq = %d", i, e.Item.Seq)
		}
		if _, err := batch.Load(e.Item.Seq); (err == nil) != (i >= len(entries)-batch.Stats().RetainedCount) {
			t.Fatalf("entry %d load error state wrong: %v", i, err)
		}
	}
}

// TestAppendBatchEvictsOnce: the budget is enforced after the whole
// batch, and the newest item always survives even when a single entry
// exceeds the budget.
func TestAppendBatchEvictsOnce(t *testing.T) {
	s := New(100)
	var entries []AppendEntry
	for i := 0; i < 5; i++ {
		entries = append(entries, AppendEntry{
			Item: Item{CID: uint32(i), Timestamp: uint64(i), Bytes: 60},
			Data: make([]byte, 60),
		})
	}
	if _, err := s.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.RetainedCount != 1 || st.EvictedCount != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if got := s.All()[0].CID; got != 4 {
		t.Fatalf("survivor CID = %d, want the newest", got)
	}
}

// TestOldestLiveSeq tracks the eviction frontier.
func TestOldestLiveSeq(t *testing.T) {
	s := New(0)
	if got := s.OldestLiveSeq(); got != 0 {
		t.Fatalf("empty store OldestLiveSeq = %d", got)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(Item{Timestamp: uint64(i), Bytes: 10}, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.OldestLiveSeq(); got != 0 {
		t.Fatalf("OldestLiveSeq = %d, want 0", got)
	}
	// Shrink via a budgeted store: re-open pattern is overkill here, so
	// drive eviction with a fourth append into a tight store.
	tight := New(25)
	for i := 0; i < 4; i++ {
		if err := tight.Append(Item{Timestamp: uint64(i), Bytes: 10}, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := tight.OldestLiveSeq(), uint64(2); got != want {
		t.Fatalf("OldestLiveSeq = %d, want %d (stats %+v)", got, want, tight.Stats())
	}
}

// failAfter is a backend that fails appends after a threshold, for
// partial-batch semantics.
type failAfter struct {
	Memory
	ok int
}

func (f *failAfter) Append(it Item, data []byte) error {
	if f.ok <= 0 {
		return fmt.Errorf("backend full")
	}
	f.ok--
	return f.Memory.Append(it, data)
}

// TestAppendBatchPartialFailure: a mid-batch backend failure retains the
// prefix, reports how many landed, and the failure is sticky.
func TestAppendBatchPartialFailure(t *testing.T) {
	b := &failAfter{ok: 2}
	s, err := Open(0, b)
	if err != nil {
		t.Fatal(err)
	}
	var entries []AppendEntry
	for i := 0; i < 4; i++ {
		entries = append(entries, AppendEntry{Item: Item{Timestamp: uint64(i), Bytes: 5}, Data: make([]byte, 5)})
	}
	n, err := s.AppendBatch(entries)
	if n != 2 || err == nil {
		t.Fatalf("AppendBatch = %d, %v; want 2 appended and an error", n, err)
	}
	if s.Err() == nil {
		t.Fatal("failure not sticky")
	}
	if got := s.Stats().RetainedCount; got != 2 {
		t.Fatalf("retained = %d", got)
	}
}
