package logstore

import (
	"errors"
	"testing"

	"bugnet/internal/faultinject"
)

// TestDiskAppendInjectedEIO checks an injected write error surfaces
// from Append and that appends resume after the fault heals.
func TestDiskAppendInjectedEIO(t *testing.T) {
	dir := t.TempDir()
	plane := faultinject.NewPlane(11)
	b, err := OpenDisk(dir, DiskOptions{SegmentBytes: 1 << 20, FS: plane.FS("log")})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(0, b)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Append(Item{CID: 1, Bytes: 10}, payload(1)); err != nil {
		t.Fatal(err)
	}
	plane.SetDiskFault("log", &faultinject.DiskFault{Err: faultinject.ErrInjectedIO})
	if err := s.Append(Item{CID: 2, Bytes: 10}, payload(2)); !errors.Is(err, faultinject.ErrInjectedIO) {
		t.Fatalf("faulted Append err = %v, want injected EIO", err)
	}
	plane.SetDiskFault("log", nil)
	if err := s.Append(Item{CID: 3, Bytes: 10}, payload(3)); err != nil {
		t.Fatalf("healed Append err = %v", err)
	}
	if got, err := s.Load(s.All()[len(s.All())-1].Seq); err != nil || string(got) != string(payload(3)) {
		t.Fatalf("post-heal Load = %q, %v", got, err)
	}
}

// TestDiskTornWriteRecovered checks a torn append — a short prefix of
// the frame landing before the injected crash — is truncated away on
// reopen, keeping every earlier record.
func TestDiskTornWriteRecovered(t *testing.T) {
	dir := t.TempDir()
	plane := faultinject.NewPlane(23)
	open := func() *Store {
		b, err := OpenDisk(dir, DiskOptions{SegmentBytes: 1 << 20, FS: plane.FS("log")})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(0, b)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := open()
	for i := uint32(0); i < 10; i++ {
		if err := s.Append(Item{CID: i, Bytes: 10}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	plane.SetDiskFault("log", &faultinject.DiskFault{Err: faultinject.ErrInjectedIO, Torn: true, Ops: []faultinject.Op{faultinject.OpWrite}})
	if err := s.Append(Item{CID: 99, Bytes: 10}, payload(99)); err == nil {
		t.Fatal("torn Append succeeded, want error")
	}
	plane.SetDiskFault("log", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	defer s2.Close()
	items := s2.All()
	if len(items) != 10 {
		t.Fatalf("recovered %d items after torn append, want 10", len(items))
	}
	for _, it := range items {
		if data, err := s2.Load(it.Seq); err != nil || string(data) != string(payload(it.CID)) {
			t.Fatalf("seq %d: Load = %q, %v", it.Seq, data, err)
		}
	}
	// And the region still accepts appends.
	if err := s2.Append(Item{CID: 100, Bytes: 10}, payload(100)); err != nil {
		t.Fatal(err)
	}
}
