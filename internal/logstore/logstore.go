// Package logstore models BugNet's memory-backed log storage (paper §4.7).
//
// The on-chip Checkpoint Buffer (CB) and Memory Race Buffer (MRB) are small
// FIFOs whose contents are lazily drained into a main-memory region managed
// by the operating system. The memory region holds the logs of multiple
// consecutive checkpoints for every thread; when it fills, the logs of the
// oldest checkpoint are discarded. The set of retained logs determines the
// replay window — the number of instructions that can be replayed per
// thread (paper §4.1, §7.2).
//
// A Store manages one such region (one for FLLs, one for MRLs). Items are
// opaque: the store cares only about their identity, size and coverage.
package logstore

// Item is one retained log with its retention metadata.
type Item struct {
	TID          int
	CID          uint32
	Timestamp    uint64 // creation time (machine steps); eviction order key
	Bytes        int64
	Instructions uint64 // committed instructions covered (FLLs; 0 for MRLs)
	Payload      any    // *fll.Log or *mrl.Log
}

// Stats describes a store's occupancy and lifetime churn.
type Stats struct {
	RetainedBytes int64
	RetainedCount int
	EvictedBytes  int64
	EvictedCount  int
	TotalBytes    int64 // everything ever appended
	TotalCount    int
}

// Store is a budgeted FIFO of logs.
type Store struct {
	budget int64 // <= 0 means unlimited
	items  []Item
	stats  Stats
}

// New creates a store with the given main-memory budget in bytes.
// A non-positive budget retains everything (useful for experiments that
// measure how large logs would grow).
func New(budget int64) *Store {
	return &Store{budget: budget}
}

// Append retains an item, evicting the oldest items if the budget is
// exceeded. Items must be appended in nondecreasing Timestamp order, which
// is how the hardware produces them.
func (s *Store) Append(it Item) {
	s.items = append(s.items, it)
	s.stats.RetainedBytes += it.Bytes
	s.stats.RetainedCount++
	s.stats.TotalBytes += it.Bytes
	s.stats.TotalCount++
	if s.budget <= 0 {
		return
	}
	drop := 0
	for s.stats.RetainedBytes > s.budget && drop < len(s.items)-1 {
		s.stats.RetainedBytes -= s.items[drop].Bytes
		s.stats.RetainedCount--
		s.stats.EvictedBytes += s.items[drop].Bytes
		s.stats.EvictedCount++
		drop++
	}
	if drop > 0 {
		s.items = append(s.items[:0], s.items[drop:]...)
	}
}

// Stats returns occupancy counters.
func (s *Store) Stats() Stats { return s.stats }

// All returns the retained items oldest-first. The slice is shared; do not
// modify it.
func (s *Store) All() []Item { return s.items }

// Thread returns the retained items of one thread, oldest-first.
func (s *Store) Thread(tid int) []Item {
	var out []Item
	for _, it := range s.items {
		if it.TID == tid {
			out = append(out, it)
		}
	}
	return out
}

// ReplayWindow returns the number of instructions the retained items cover
// for the given thread — the quantity the paper calls the replay window.
func (s *Store) ReplayWindow(tid int) uint64 {
	var n uint64
	for _, it := range s.items {
		if it.TID == tid {
			n += it.Instructions
		}
	}
	return n
}

// Threads returns the set of thread ids with retained items, ascending.
func (s *Store) Threads() []int {
	seen := make(map[int]bool)
	for _, it := range s.items {
		seen[it.TID] = true
	}
	var out []int
	for tid := range seen {
		out = append(out, tid)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tiny n
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
