// Package logstore models BugNet's log-region storage (paper §4.7).
//
// The on-chip Checkpoint Buffer (CB) and Memory Race Buffer (MRB) are small
// FIFOs whose contents are lazily drained into a log region managed by the
// operating system. The region holds the logs of multiple consecutive
// checkpoints for every thread; when it fills, the logs of the oldest
// checkpoint are discarded. The set of retained logs determines the replay
// window — the number of instructions that can be replayed per thread
// (paper §4.1, §7.2).
//
// A Store manages one such region (one for FLLs, one for MRLs). Items are
// opaque *encoded* logs: the store cares only about their identity, size
// and coverage, never about their decoded form — consumers re-materialize
// a log on demand through its bytes. Where the bytes live is a Backend
// decision: the in-memory FIFO models the paper's OS-managed RAM region,
// while the disk-segment backend (disk.go) spills the region to
// append-only segment files so the replay window is bounded by disk, not
// by process memory.
package logstore

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Item is one retained log's retention metadata. The encoded bytes travel
// separately (Append takes them, Load returns them) so metadata listings
// never touch the backend's data path.
type Item struct {
	// Seq is the store-assigned append sequence number, the key for Load.
	// Sequences are monotonic and survive a disk backend's reopen.
	Seq uint64
	// TID and CID attribute the log to a thread's checkpoint interval.
	TID int
	CID uint32
	// Timestamp is the creation time (machine steps); eviction order key.
	Timestamp uint64
	// Bytes is the accounting size charged against the region budget: the
	// hardware storage footprint (fll/mrl SizeBytes), the quantity behind
	// the paper's log-size figures.
	Bytes int64
	// EncodedBytes is the size of the serialized form the backend holds
	// (Bytes plus wire framing and checksums).
	EncodedBytes int64
	// Instructions is the committed instructions covered (FLLs; 0 for MRLs).
	Instructions uint64
}

// Stats describes a store's occupancy and lifetime churn.
type Stats struct {
	RetainedBytes int64 `json:"retained_bytes"`
	RetainedCount int   `json:"retained_count"`
	EvictedBytes  int64 `json:"evicted_bytes"`
	EvictedCount  int   `json:"evicted_count"`
	TotalBytes    int64 `json:"total_bytes"` // everything ever appended
	TotalCount    int   `json:"total_count"`
	// RetainedEncodedBytes is the serialized footprint the backend holds
	// for the retained items (wire framing included).
	RetainedEncodedBytes int64 `json:"retained_encoded_bytes"`
}

// ErrEvicted reports a Load of an item that aged out of the region.
var ErrEvicted = errors.New("logstore: item evicted")

// Backend is a storage engine for encoded log bytes. The Store drives it
// under its own lock and guarantees Append sequences are monotonic and
// Evict always names the oldest live item; backends need no locking of
// their own when used through a Store.
type Backend interface {
	// Append persists data as the newest item under it.Seq.
	Append(it Item, data []byte) error
	// Load returns the encoded bytes of a retained item. The returned
	// slice must not be modified by the caller.
	Load(seq uint64) ([]byte, error)
	// Evict releases the oldest live item (always called in append order).
	// Physical reclamation may lag: the disk backend frees whole segments
	// once every item in them is evicted.
	Evict(it Item) error
	// Recover returns the items retained by a previous run, oldest first
	// (nil for volatile backends). The Store calls it exactly once, before
	// any Append.
	Recover() ([]Item, error)
	// Close releases backend resources. The Store is unusable afterwards.
	Close() error
}

// Store is a budgeted FIFO of encoded logs over a Backend.
type Store struct {
	mu      sync.Mutex
	budget  int64 // <= 0 means unlimited
	backend Backend
	items   []Item // retained metadata, oldest first
	nextSeq uint64
	stats   Stats
	err     error         // first backend failure; the store keeps best-effort serving
	metrics *storeMetrics // nil until Instrument; all hooks nil-safe
}

// New creates a store over the in-memory FIFO backend with the given
// region budget in bytes. A non-positive budget retains everything
// (useful for experiments that measure how large logs would grow).
func New(budget int64) *Store {
	s, err := Open(budget, NewMemory())
	if err != nil { // the memory backend cannot fail to recover
		panic(err)
	}
	return s
}

// Open creates a store over an explicit backend, recovering any items a
// previous run retained (disk backends) and re-applying the budget to
// them — a region reopened under a smaller budget, or one whose physical
// reclamation lagged a crash, trims back to shape immediately.
func Open(budget int64, b Backend) (*Store, error) {
	recovered, err := b.Recover()
	if err != nil {
		return nil, err
	}
	s := &Store{budget: budget, backend: b}
	for _, it := range recovered {
		s.items = append(s.items, it)
		s.stats.RetainedBytes += it.Bytes
		s.stats.RetainedEncodedBytes += it.EncodedBytes
		s.stats.RetainedCount++
		s.stats.TotalBytes += it.Bytes
		s.stats.TotalCount++
		if it.Seq >= s.nextSeq {
			s.nextSeq = it.Seq + 1
		}
	}
	s.mu.Lock()
	err = s.evictLocked()
	s.mu.Unlock()
	return s, err
}

// Append retains one encoded log, evicting the oldest items if the budget
// is exceeded. Items must be appended in nondecreasing Timestamp order,
// which is how the hardware produces them. The item's Seq and
// EncodedBytes are assigned by the store. The returned error reports this
// call's failures only (the item not persisting, or this call's
// reclamation failing); earlier swallowed failures stay behind Err.
func (s *Store) Append(it Item, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(it, data); err != nil {
		return err
	}
	return s.evictLocked()
}

// AppendEntry is one append request in a batch. The store takes ownership
// of Data and assigns Item.Seq on success.
type AppendEntry struct {
	Item Item
	Data []byte
}

// AppendBatch retains several encoded logs under a single lock
// acquisition and a single eviction pass — the recorder's wire path uses
// it so finalizing every thread's interval (a flush, a crash collection)
// does not pay per-interval store overhead. Entries are appended in
// order; sequence numbers are consecutive and written back into each
// entry's Item.Seq. On a backend failure the remaining entries are
// abandoned (the failure is sticky — see Err) and n reports how many
// entries were appended.
func (s *Store) AppendBatch(entries []AppendEntry) (n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range entries {
		if err = s.appendLocked(entries[i].Item, entries[i].Data); err != nil {
			break
		}
		entries[i].Item.Seq = s.nextSeq - 1
		n++
	}
	if everr := s.evictLocked(); err == nil {
		err = everr
	}
	return n, err
}

// appendLocked persists one item and accounts for it; the caller holds
// the lock and runs the eviction pass.
func (s *Store) appendLocked(it Item, data []byte) error {
	it.Seq = s.nextSeq
	it.EncodedBytes = int64(len(data))
	start := time.Now()
	if err := s.backend.Append(it, data); err != nil {
		s.fail(err)
		return err
	}
	s.metrics.observeAppend(start, len(data))
	s.nextSeq++
	s.items = append(s.items, it)
	s.stats.RetainedBytes += it.Bytes
	s.stats.RetainedEncodedBytes += it.EncodedBytes
	s.stats.RetainedCount++
	s.stats.TotalBytes += it.Bytes
	s.stats.TotalCount++
	s.metrics.setRetained(uint64(s.stats.RetainedEncodedBytes))
	return nil
}

// OldestLiveSeq returns the lowest sequence number still retained; when
// the store is empty it returns the next sequence to be assigned. Every
// sequence below the result has been evicted, so recorder-side metadata
// caches keyed by Seq prune against it.
func (s *Store) OldestLiveSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return s.nextSeq
	}
	return s.items[0].Seq
}

// evictLocked enforces the budget: oldest first, and the newest item is
// always retained, so a single over-budget log is still recordable. It
// returns the first reclamation failure of this pass (also recorded
// sticky); logical eviction proceeds regardless so the budget holds.
func (s *Store) evictLocked() error {
	if s.budget <= 0 {
		return nil
	}
	var firstErr error
	drop := 0
	var droppedEnc uint64
	for s.stats.RetainedBytes > s.budget && drop < len(s.items)-1 {
		it := s.items[drop]
		if err := s.backend.Evict(it); err != nil {
			s.fail(err)
			if firstErr == nil {
				firstErr = err
			}
		}
		s.stats.RetainedBytes -= it.Bytes
		s.stats.RetainedEncodedBytes -= it.EncodedBytes
		s.stats.RetainedCount--
		s.stats.EvictedBytes += it.Bytes
		s.stats.EvictedCount++
		droppedEnc += uint64(it.EncodedBytes)
		drop++
	}
	if drop > 0 {
		s.items = append(s.items[:0], s.items[drop:]...)
		s.metrics.observeEvict(drop, droppedEnc)
		s.metrics.setRetained(uint64(s.stats.RetainedEncodedBytes))
	}
	return firstErr
}

// fail records the first backend failure; later successes don't clear it.
func (s *Store) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Err returns the first backend failure the store swallowed while keeping
// the recording path alive (a disk-spill write error, a reclamation
// failure). Recording tools surface it at exit.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Load returns the encoded bytes of a retained item by sequence number.
func (s *Store) Load(seq uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	data, err := s.backend.Load(seq)
	if err == nil {
		s.metrics.observeLoad(start)
	}
	return data, err
}

// Loader returns a function that re-reads one item's encoded bytes — the
// hook a lazy log view (fll.OpenLazy / mrl.OpenLazy) plugs into.
func (s *Store) Loader(seq uint64) func() ([]byte, error) {
	return func() ([]byte, error) { return s.Load(seq) }
}

// Close releases the backend.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backend.Close()
}

// Stats returns occupancy counters. On a reopened disk region the lifetime
// counters (Total*, Evicted*) restart from the recovered contents; the
// retained counters are always exact.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// All returns the retained items' metadata oldest-first. The slice is a
// copy; the encoded bytes are fetched per item via Load.
func (s *Store) All() []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Item(nil), s.items...)
}

// Thread returns the retained items of one thread, oldest-first.
func (s *Store) Thread(tid int) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Item
	for _, it := range s.items {
		if it.TID == tid {
			out = append(out, it)
		}
	}
	return out
}

// ReplayWindow returns the number of instructions the retained items cover
// for the given thread — the quantity the paper calls the replay window.
func (s *Store) ReplayWindow(tid int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, it := range s.items {
		if it.TID == tid {
			n += it.Instructions
		}
	}
	return n
}

// Threads returns the set of thread ids with retained items, ascending.
func (s *Store) Threads() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[int]bool)
	for _, it := range s.items {
		seen[it.TID] = true
	}
	var out []int
	for tid := range seen {
		out = append(out, tid)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tiny n
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Memory is the volatile Backend modeling the paper's OS-managed main
// memory log region: encoded bytes in a FIFO, gone with the process.
type Memory struct {
	base uint64 // Seq of data[0]
	data [][]byte
}

// NewMemory creates an empty in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// Append implements Backend.
func (m *Memory) Append(it Item, data []byte) error {
	if len(m.data) == 0 {
		m.base = it.Seq
	}
	m.data = append(m.data, data)
	return nil
}

// Load implements Backend.
func (m *Memory) Load(seq uint64) ([]byte, error) {
	if seq < m.base || seq >= m.base+uint64(len(m.data)) || m.data[seq-m.base] == nil {
		return nil, fmt.Errorf("%w: seq %d", ErrEvicted, seq)
	}
	return m.data[seq-m.base], nil
}

// Evict implements Backend. Space is reclaimed immediately.
func (m *Memory) Evict(it Item) error {
	if it.Seq != m.base || len(m.data) == 0 {
		return fmt.Errorf("logstore: memory eviction out of order (seq %d, oldest %d)", it.Seq, m.base)
	}
	m.data[0] = nil
	m.data = m.data[1:]
	m.base++
	if len(m.data) == 0 {
		m.data = nil
	}
	return nil
}

// Recover implements Backend: volatile storage recovers nothing.
func (m *Memory) Recover() ([]Item, error) { return nil, nil }

// Close implements Backend.
func (m *Memory) Close() error {
	m.data = nil
	return nil
}
