package logstore

import (
	"time"

	"bugnet/internal/obs"
)

// Package-level families, with the two wire regions preallocated so the
// series exist at 0 in every binary that links the logstore — a serve
// instance that has taken no uploads still exposes the full inventory.
var (
	mAppendSeconds = obs.Default.HistogramVec("bugnet_logstore_append_seconds",
		"Backend append latency per interval batch.", nil, "region")
	mLoadSeconds = obs.Default.HistogramVec("bugnet_logstore_load_seconds",
		"Backend load latency per interval.", nil, "region")
	mAppendBytes = obs.Default.CounterVec("bugnet_logstore_appended_bytes_total",
		"Encoded log bytes appended.", "region")
	mEvictions = obs.Default.CounterVec("bugnet_logstore_evictions_total",
		"Intervals evicted to stay inside the budget.", "region")
	mEvictedBytes = obs.Default.CounterVec("bugnet_logstore_evicted_bytes_total",
		"Encoded log bytes reclaimed by eviction.", "region")
	mRetained = obs.Default.GaugeVec("bugnet_logstore_retained_bytes",
		"Encoded log bytes currently retained.", "region")
)

// storeMetrics is one region's preallocated handles; nil on stores that
// never called Instrument (tests, scratch stores), so the hot paths pay
// one predictable branch.
type storeMetrics struct {
	appendSeconds *obs.Histogram
	loadSeconds   *obs.Histogram
	appendBytes   *obs.Counter
	evictions     *obs.Counter
	evictedBytes  *obs.Counter
	retained      *obs.Gauge
}

var regionMetrics = map[string]*storeMetrics{
	"fll": newStoreMetrics("fll"),
	"mrl": newStoreMetrics("mrl"),
}

func newStoreMetrics(region string) *storeMetrics {
	return &storeMetrics{
		appendSeconds: mAppendSeconds.With(region),
		loadSeconds:   mLoadSeconds.With(region),
		appendBytes:   mAppendBytes.With(region),
		evictions:     mEvictions.With(region),
		evictedBytes:  mEvictedBytes.With(region),
		retained:      mRetained.With(region),
	}
}

// Instrument attaches the store to the named metric region ("fll" or
// "mrl"; other names get their own series). Call once, before traffic.
func (s *Store) Instrument(region string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := regionMetrics[region]
	if m == nil {
		m = newStoreMetrics(region)
	}
	s.metrics = m
	s.metrics.retained.Set(int64(s.stats.RetainedBytes))
}

func (m *storeMetrics) observeAppend(start time.Time, bytes int) {
	if m == nil {
		return
	}
	m.appendSeconds.Since(start)
	m.appendBytes.Add(uint64(bytes))
}

func (m *storeMetrics) observeEvict(n int, bytes uint64) {
	if m == nil {
		return
	}
	m.evictions.Add(uint64(n))
	m.evictedBytes.Add(bytes)
}

func (m *storeMetrics) setRetained(bytes uint64) {
	if m == nil {
		return
	}
	m.retained.Set(int64(bytes))
}

func (m *storeMetrics) observeLoad(start time.Time) {
	if m == nil {
		return
	}
	m.loadSeconds.Since(start)
}
