package workload

// The seven SPEC 2000 analogues (paper §6.1: art, bzip2, crafty, gzip,
// mcf, parser, vpr). Every kernel initializes its working set, then loops
// forever; experiments cut windows out of the steady state with the
// machine step budget. All randomness is a guest-side xorshift32, so runs
// are bit-deterministic.

// xorshift is the inline PRNG update on s1, clobbering t0.
const xorshift = `
        slli t0, s1, 13
        xor  s1, s1, t0
        srli t0, s1, 17
        xor  s1, s1, t0
        slli t0, s1, 5
        xor  s1, s1, t0
`

// artSource: streaming neural-net evaluation — two large weight arrays
// scanned with multiply-accumulate, like art's F1 layer scans.
const artSource = `
        .data
        .align 4
w1:     .space 131072
w2:     .space 131072
        .text
main:   li   s1, 0x2545F491
        la   s2, w1
        li   s3, 65536          # words across both arrays (contiguous)
        li   s8, 300            # quantized weight alphabet (like fixed-point nets)
init:   ` + xorshift + `
        remu t1, s1, s8
        sw   t1, (s2)
        addi s2, s2, 4
        addi s3, s3, -1
        bnez s3, init

loop:   la   s2, w1
        la   s4, w2
        li   s3, 32768
        li   s5, 0
scan:   lw   t1, (s2)
        lw   t2, (s4)
        mul  t3, t1, t2
        add  s5, s5, t3
        addi s2, s2, 4
        addi s4, s4, 4
        addi s3, s3, -1
        bnez s3, scan
        j    loop
`

// bzip2Source: block transform — histogram a 64 KB symbol buffer, then
// scatter it into a second buffer by bucket, like the Burrows-Wheeler
// bucket sorts.
const bzip2Source = `
        .data
        .align 4
blk:    .space 65536
out:    .space 65536
cnt:    .space 1024             # 256 word counters
        .text
main:   li   s1, 0x1B0CADE5
        la   s2, blk
        li   s3, 65536
init:   ` + xorshift + `
        andi t1, s1, 255
        sb   t1, (s2)
        addi s2, s2, 1
        addi s3, s3, -1
        bnez s3, init

loop:   # zero counters
        la   s2, cnt
        li   s3, 256
zc:     sw   zero, (s2)
        addi s2, s2, 4
        addi s3, s3, -1
        bnez s3, zc
        # histogram
        la   s2, blk
        li   s3, 65536
        la   s4, cnt
hist:   lbu  t1, (s2)
        slli t1, t1, 2
        add  t1, s4, t1
        lw   t2, (t1)
        addi t2, t2, 1
        sw   t2, (t1)
        addi s2, s2, 1
        addi s3, s3, -1
        bnez s3, hist
        # prefix sums
        la   s2, cnt
        li   s3, 256
        li   t3, 0
pfx:    lw   t2, (s2)
        sw   t3, (s2)
        add  t3, t3, t2
        addi s2, s2, 4
        addi s3, s3, -1
        bnez s3, pfx
        # scatter by bucket
        la   s2, blk
        li   s3, 65536
        la   s4, cnt
        la   s5, out
scat:   lbu  t1, (s2)
        slli t2, t1, 2
        add  t2, s4, t2
        lw   t4, (t2)           # out position
        addi t5, t4, 1
        sw   t5, (t2)
        add  t4, s5, t4
        sb   t1, (t4)
        addi s2, s2, 1
        addi s3, s3, -1
        bnez s3, scat
        j    loop
`

// craftySource: bit-board search — random table probes mixed with bit
// twiddling and an incremental Zobrist-style hash, like crafty's
// move-generation table lookups.
const craftySource = `
        .data
        .align 4
tbl:    .space 65536            # 16K words
        .text
main:   li   s1, 0x9E3779B9
        la   s2, tbl
        li   s3, 16384
        li   s8, 1000           # score-table alphabet (bounded evaluations)
init:   ` + xorshift + `
        remu t1, s1, s8
        sw   t1, (s2)
        addi s2, s2, 4
        addi s3, s3, -1
        bnez s3, init
        li   s6, 0x01000193     # FNV-ish multiplier (odd)

loop:   la   s2, tbl
        li   s3, 16384
        li   s4, 0x12345678     # running hash
probe:  srli t1, s4, 8
        andi t1, t1, 16383
        slli t1, t1, 2
        add  t1, s2, t1
        lw   t2, (t1)           # table probe
        xor  s4, s4, t2
        mul  s4, s4, s6
        # popcount-ish: fold low bits
        andi t3, t2, 255
        add  s5, s5, t3
        addi s3, s3, -1
        bnez s3, probe
        j    loop
`

// gzipSource: windowed compression — a hash-head table over a sliding
// 32 KB window, with match probing and literal emission, like deflate's
// longest-match search.
const gzipSource = `
        .data
        .align 4
win:    .space 32768
heads:  .space 16384            # 4K word hash heads
outb:   .space 32768
        .text
main:   li   s1, 0x8BADF00D
        la   s2, win
        li   s3, 32768
init:   ` + xorshift + `
        andi t1, s1, 63         # skewed byte alphabet
        addi t1, t1, 32
        sb   t1, (s2)
        addi s2, s2, 1
        addi s3, s3, -1
        bnez s3, init

loop:   la   s2, win
        la   s4, heads
        la   s5, outb
        li   s3, 32760          # positions
        li   s7, 0              # pos
deflt:  add  t1, s2, s7
        lbu  t2, (t1)
        lbu  t3, 1(t1)
        lbu  t4, 2(t1)
        slli t3, t3, 6
        slli t4, t4, 12
        xor  t2, t2, t3
        xor  t2, t2, t4
        andi t2, t2, 4095       # hash
        slli t2, t2, 2
        add  t2, s4, t2
        lw   t5, (t2)           # candidate pos
        sw   s7, (t2)           # update head
        # compare candidate word with current word (aligned probes)
        add  s8, s2, t5
        andi s8, s8, -4
        lw   s8, (s8)
        add  s9, s2, s7
        andi s10, s9, -4
        lw   s10, (s10)
        bne  s8, s10, lit
        # "match": emit marker
        andi t4, s7, 32760
        srli t4, t4, 3
        add  t4, s5, t4
        sb   t5, (t4)
        j    nextp
lit:    andi t4, s7, 32760
        srli t4, t4, 3
        add  t4, s5, t4
        lbu  t6, (s9)
        sb   t6, (t4)
nextp:  addi s7, s7, 1
        addi s3, s3, -1
        bnez s3, deflt
        j    loop
`

// mcfSource: network-simplex pointer chasing — a 1 MB node pool threaded
// into a pseudo-random permutation, traversed with dependent loads and
// occasional flow updates, like mcf's arc walking.
const mcfSource = `
        .equ NODES, 65536       # 16-byte nodes -> 1 MB
        .data
        .align 4
pool:   .space 1048576
        .text
main:   # next[i] = (i*40503+77) mod NODES, an odd-multiplier permutation
        la   s2, pool
        li   s3, 0              # i
        li   s4, NODES
        li   s5, 40503
perm:   mul  t1, s3, s5
        addi t1, t1, 77
        li   t4, 65535
        and  t1, t1, t4         # mod NODES
        slli t2, t1, 4          # *16
        slli t3, s3, 4
        add  t3, s2, t3
        sw   t2, (t3)           # node.next = offset of successor
        sw   s3, 4(t3)          # node.cost = i
        sw   zero, 8(t3)        # node.flow = 0
        addi s3, s3, 1
        blt  s3, s4, perm

loop:   li   s6, 0              # current offset
        li   s3, NODES
        li   s7, 0              # accumulated cost
chase:  add  t1, s2, s6
        lw   s6, (t1)           # dependent load: next offset
        lw   t2, 4(t1)          # cost
        add  s7, s7, t2
        andi t3, s3, 63
        bnez t3, nofl
        lw   t4, 8(t1)          # occasional flow update
        addi t4, t4, 1
        sw   t4, 8(t1)
nofl:   addi s3, s3, -1
        bnez s3, chase
        j    loop
`

// parserSource: dictionary parsing — tokenize a synthetic text and look
// every word up in a chained hash table, inserting unknown words into a
// bump-allocated node pool, like parser's dictionary machinery.
const parserSource = `
        .data
        .align 4
text:   .space 65536
htab:   .space 32768            # 8K word chain heads
nodes:  .space 262144           # node pool: hash,count,next (12B) bumped
        .text
main:   li   s1, 0xFEEDC0DE
        la   s2, text
        li   s3, 65536
init:   ` + xorshift + `
        andi t1, s1, 31
        addi t2, t1, 97         # letter a..z-ish
        li   t3, 26
        blt  t1, t3, emit
        li   t2, 32             # space
emit:   sb   t2, (s2)
        addi s2, s2, 1
        addi s3, s3, -1
        bnez s3, init

loop:   la   s2, text
        la   s4, htab
        la   s5, nodes
        li   s6, 0              # bump offset
        li   s3, 65536
tok:    li   s7, 0              # word hash
word:   lbu  t1, (s2)
        addi s2, s2, 1
        addi s3, s3, -1
        beqz s3, loop           # wrapped: restart stream
        li   t2, 32
        beq  t1, t2, fin
        slli t3, s7, 5
        add  s7, s7, t3
        add  s7, s7, t1         # h = h*33 + c
        j    word
fin:    li   t4, 8191
        and  t4, s7, t4
        slli t4, t4, 2
        add  t4, s4, t4         # head slot
        lw   t5, (t4)           # chain offset (0 = empty)
probe:  beqz t5, insert
        add  t6, s5, t5
        lw   t3, (t6)           # node.hash
        beq  t3, s7, found
        lw   t5, 8(t6)          # node.next
        j    probe
found:  add  t6, s5, t5
        lw   t3, 4(t6)
        addi t3, t3, 1
        sw   t3, 4(t6)          # count++
        j    tok
insert: addi s6, s6, 12
        li   t3, 262100
        bge  s6, t3, tok        # pool full: drop
        add  t6, s5, s6
        sw   s7, (t6)
        li   t3, 1
        sw   t3, 4(t6)
        lw   t3, (t4)
        sw   t3, 8(t6)          # chain old head
        sw   s6, (t4)
        j    tok
`

// vprSource: simulated-annealing placement — random cell swaps on a grid
// with neighbourhood cost evaluation, like vpr's placer moves.
const vprSource = `
        .equ GRID, 16384        # 128x128 words
        .data
        .align 4
grid:   .space 65536
        .text
main:   li   s1, 0x0DDBA11
        la   s2, grid
        li   s3, GRID
init:   ` + xorshift + `
        andi t1, s1, 1023
        sw   t1, (s2)
        addi s2, s2, 4
        addi s3, s3, -1
        bnez s3, init
        la   s2, grid

loop:   ` + xorshift + `
        li   t6, 16383
        and  t1, s1, t6         # cell a index
        srli t2, s1, 16
        and  t2, t2, t6         # cell b index
        slli t1, t1, 2
        slli t2, t2, 2
        add  t1, s2, t1
        add  t2, s2, t2
        lw   t3, (t1)           # a
        lw   t4, (t2)           # b
        # neighbourhood cost: read successors (wrapping via mask)
        addi t5, t1, 4
        la   t0, grid+65532
        bgt  t5, t0, skipn
        lw   t6, (t5)
        add  s5, s5, t6
skipn:  sub  t6, t3, t4
        bltz t6, swap           # "improves": swap cells
        j    loop
swap:   sw   t4, (t1)
        sw   t3, (t2)
        j    loop
`

// SPEC returns the seven kernels.
func SPEC() []*Workload {
	mk := func(name, desc string, warmup uint64, src string) *Workload {
		return &Workload{
			Name:        name,
			Description: desc,
			Image:       mustBuild(name, src),
			Warmup:      warmup,
		}
	}
	return []*Workload{
		mk("art", "streaming multiply-accumulate over large weight arrays", 800_000, artSource),
		mk("bzip2", "histogram + bucket scatter block transform", 600_000, bzip2Source),
		mk("crafty", "bit-board table probes with incremental hashing", 200_000, craftySource),
		mk("gzip", "sliding-window hash-chain compression", 350_000, gzipSource),
		mk("mcf", "dependent-load pointer chasing over a 1 MB node pool", 900_000, mcfSource),
		mk("parser", "tokenizer with chained hash-table dictionary", 600_000, parserSource),
		mk("vpr", "random cell swaps with neighbourhood cost evaluation", 250_000, vprSource),
	}
}

// ByName returns the named SPEC kernel, or nil.
func ByName(name string) *Workload {
	for _, w := range SPEC() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
