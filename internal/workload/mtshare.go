package workload

import "bugnet/internal/kernel"

// mtShareSource: a steady-state multithreaded workload for the Memory Race
// Log experiments. Two threads update a shared array under a spinlock and
// also stream over private regions, producing a realistic mix of
// coherence traffic (lock handoffs, shared-line invalidations) and
// thread-local accesses.
const mtShareSource = `
        .data
lck:    .word 0
shared: .space 4096
priv0:  .space 8192
priv1:  .space 8192
        .text
main:   la   a0, work
        li   a7, 8              # second worker on core 1
        syscall
        j    work

work:   li   a7, 11             # thread id selects the private region
        syscall
        la   s3, priv0
        beqz a0, mine
        la   s3, priv1
mine:   li   s4, 0              # private cursor
        li   s5, 0              # shared cursor

wloop:  # update 8 private words
        li   t2, 8
pl:     andi t3, s4, 2047
        slli t3, t3, 2
        add  t3, s3, t3
        lw   t4, (t3)
        addi t4, t4, 1
        sw   t4, (t3)
        addi s4, s4, 1
        addi t2, t2, -1
        bnez t2, pl
        # one locked shared update
        la   t0, lck
        li   t1, 1
acq:    amoswap t5, t1, (t0)
        bnez t5, acq
        la   t6, shared
        andi t3, s5, 1023
        slli t3, t3, 2
        add  t3, t6, t3
        lw   t4, (t3)
        addi t4, t4, 1
        sw   t4, (t3)
        addi s5, s5, 1
        sw   zero, (t0)         # release
        j    wloop
`

// MTShare returns the shared-memory multithreaded workload (2 cores).
func MTShare() *Workload {
	return &Workload{
		Name:        "mtshare",
		Description: "two threads mixing locked shared updates with private streaming",
		Image:       mustBuild("mtshare", mtShareSource),
		Kernel:      kernel.Config{Cores: 2},
		Warmup:      2_000,
	}
}
