package workload

import (
	"testing"

	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/kernel"
)

func TestSPECKernelsAssembleAndRun(t *testing.T) {
	for _, w := range SPEC() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := w.Machine(400_000, nil)
			res := m.Run()
			if res.Crash != nil {
				t.Fatalf("%s crashed: %v", w.Name, res.Crash)
			}
			if res.Steps < 400_000 {
				t.Fatalf("%s stopped early at %d steps (must loop forever)", w.Name, res.Steps)
			}
		})
	}
}

func TestSPECKernelsHaveMemoryTraffic(t *testing.T) {
	for _, w := range SPEC() {
		// Warm up without recording, then record a steady-state window —
		// the experiment harness's measurement pattern.
		m := w.Machine(w.Warmup, nil)
		m.Run()
		rec := core.NewRecorder(m, core.Config{IntervalLength: 50_000})
		m.SetMaxSteps(w.Warmup + 200_000)
		m.Run()
		rec.Flush()
		_, total := rec.LoggedOps()
		// Every kernel must execute a healthy fraction of memory ops.
		if total < 10_000 {
			t.Errorf("%s: only %d loggable ops in 200k steady-state steps", w.Name, total)
		}
		if rec.FLLStore().Stats().TotalBytes == 0 {
			t.Errorf("%s: no FLL bytes", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("mcf") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
	if BugByName("bc", 100) == nil || BugByName("zzz", 100) != nil {
		t.Error("BugByName lookup broken")
	}
}

func TestAllBugsCrashAtExpectedWindows(t *testing.T) {
	const scale = 100
	for _, b := range Bugs(scale) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			target := scaledWindow(b.PaperWindow, scale)
			window, crashed := b.MeasureWindow(target*4 + 2_000_000)
			if !crashed {
				t.Fatalf("%s did not crash", b.Name)
			}
			// Windows are engineered, not exact: accept a factor-2 band
			// plus slack for fixed prologues on the small ones.
			lo, hi := target/2, target*2+300
			if window < lo || window > hi {
				t.Errorf("%s: window = %d; want ≈%d (band %d..%d)", b.Name, window, target, lo, hi)
			}
		})
	}
}

func TestBugTableMatchesPaperRows(t *testing.T) {
	bugs := Bugs(1)
	if len(bugs) != 18 {
		t.Fatalf("bug count = %d; want 18 (Table 1 rows)", len(bugs))
	}
	mt := 0
	for _, b := range bugs {
		if b.Multithreaded {
			mt++
		}
		if b.PaperWindow == 0 || b.PaperLocation == "" {
			t.Errorf("%s: missing paper metadata", b.Name)
		}
		if _, ok := b.Image.Symbol("root"); !ok {
			t.Errorf("%s: no root label", b.Name)
		}
		if _, ok := b.Image.Symbol("crash"); !ok {
			t.Errorf("%s: no crash label", b.Name)
		}
	}
	// The paper's last four PROGRAMS are multithreaded; python contributes
	// two bug rows, so five rows carry the flag.
	if mt != 5 {
		t.Errorf("multithreaded bug rows = %d; want 5 (4 programs, python twice)", mt)
	}
}

func TestBugRecordsAndReplays(t *testing.T) {
	// Every bug must be replayable from its BugNet logs to the faulting
	// instruction — the end-to-end claim of the whole system.
	const scale = 100
	for _, b := range Bugs(scale) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			kcfg := b.Kernel
			kcfg.MaxSteps = 10_000_000
			res, rep, _ := core.Record(b.Image, kcfg, core.Config{
				IntervalLength: 100_000,
			})
			if res.Crash == nil {
				t.Fatalf("%s did not crash under recording", b.Name)
			}
			logs := rep.FLLs[res.Crash.TID]
			if len(logs) == 0 {
				t.Fatalf("%s: no logs for crashing thread", b.Name)
			}
			r := core.NewReplayer(b.Image, logs)
			rr, err := r.Run()
			if err != nil {
				t.Fatalf("%s: replay: %v", b.Name, err)
			}
			if rr.Fault == nil {
				t.Fatalf("%s: replay lost the fault", b.Name)
			}
			if rr.Fault.PC != res.Crash.Fault.PC {
				t.Errorf("%s: replayed fault pc %#x != recorded %#x", b.Name, rr.Fault.PC, res.Crash.Fault.PC)
			}
			if rr.Fault.Cause != uint8(res.Crash.Fault.Cause) {
				t.Errorf("%s: fault cause mismatch", b.Name)
			}
		})
	}
}

func TestRootWindowsCoverPaperSpread(t *testing.T) {
	// The paper's point: most bugs need < 10M instructions of replay. At
	// scale 1 our engineered windows must reproduce that distribution:
	// exactly one bug (ghostscript) above 10M.
	over := 0
	for _, b := range Bugs(1) {
		if b.PaperWindow > 10_000_000 {
			over++
		}
	}
	if over != 1 {
		t.Errorf("bugs over 10M window = %d; want 1", over)
	}
}

func TestCrashCausesAreDiverse(t *testing.T) {
	// The suite must cover several architectural fault kinds, like the
	// paper's mix of segfaults and wild jumps.
	const scale = 100
	causes := map[cpu.FaultCause]int{}
	for _, b := range Bugs(scale) {
		m := b.Machine(20_000_000, nil)
		res := m.Run()
		if res.Crash == nil {
			t.Fatalf("%s did not crash", b.Name)
		}
		causes[res.Crash.Fault.Cause]++
	}
	if len(causes) < 3 {
		t.Errorf("fault causes = %v; want at least reads, fetches and misaligned", causes)
	}
	_ = kernel.Config{}
}

func TestMTShareWorkload(t *testing.T) {
	w := MTShare()
	m := w.Machine(100_000, nil)
	res := m.Run()
	if res.Crash != nil {
		t.Fatalf("mtshare crashed: %v", res.Crash)
	}
	if res.Steps < 100_000 {
		t.Fatalf("mtshare stopped early at %d steps", res.Steps)
	}
	// Both threads must have run.
	if m.Threads[0].CPU.IC == 0 || m.Threads[1].CPU == nil || m.Threads[1].CPU.IC == 0 {
		t.Error("both threads should execute")
	}
}

func TestMTShareRecordsRaces(t *testing.T) {
	w := MTShare()
	m := w.Machine(0, nil)
	rec := core.NewRecorder(m, core.Config{IntervalLength: 5_000})
	m.SetMaxSteps(80_000)
	m.Run()
	rec.Flush()
	if rec.MRLStore().Stats().TotalCount == 0 {
		t.Fatal("no MRLs recorded for the sharing workload")
	}
	entries := 0
	for _, logs := range rec.Report().MRLs {
		for _, l := range logs {
			entries += int(l.NumEntries)
		}
	}
	if entries == 0 {
		t.Fatal("no MRL entries despite lock traffic")
	}
}
