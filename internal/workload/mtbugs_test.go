package workload

import (
	"testing"

	"bugnet/internal/core"
)

// TestMTBugsMultiReplay records each multithreaded Table 1 analogue and
// reconstructs the full multithreaded execution from the logs: every
// thread replays completely, the crashing thread reproduces its fault,
// and the MRL constraints order the interleaving without deadlock.
func TestMTBugsMultiReplay(t *testing.T) {
	const scale = 100
	for _, b := range Bugs(scale) {
		if !b.Multithreaded {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			kcfg := b.Kernel
			kcfg.MaxSteps = 10_000_000
			res, rep, _ := core.Record(b.Image, kcfg, core.Config{IntervalLength: 50_000})
			if res.Crash == nil {
				t.Fatalf("%s did not crash", b.Name)
			}
			mr := core.NewMultiReplayer(b.Image, rep)
			out, err := mr.Run()
			if err != nil {
				t.Fatalf("multi replay: %v", err)
			}
			crash := out.Threads[res.Crash.TID]
			if crash == nil {
				t.Fatal("no replay result for the crashing thread")
			}
			if crash.Fault == nil || crash.Fault.PC != res.Crash.Fault.PC {
				t.Errorf("replayed fault = %+v; recorded pc %#x", crash.Fault, res.Crash.Fault.PC)
			}
			var total uint64
			for _, tr := range out.Threads {
				total += tr.Instructions
			}
			if total == 0 {
				t.Fatal("nothing replayed")
			}
		})
	}
}
