package workload

import (
	"bytes"

	"bugnet/internal/kernel"
)

// The Table 1 analogues. Every source marks its root-cause instruction
// with the label "root"; the window between the last dynamic instance of
// that instruction and the crash is engineered to the paper's reported
// window via a standard 6-instructions-per-iteration delay loop that
// streams over a 4 KB scratch region — live memory traffic, so the
// First-Load Log of the window grows with the window like the real
// programs' logs do (Figure 2).

// delayLoop emits the standard delay for the given iteration count.
const delayLoop = `
        la   s10, pad
        li   s11, %d
dly:    andi t0, s11, 1023
        slli t0, t0, 2
        add  t0, s10, t0
        lw   t0, (t0)
        addi s11, s11, -1
        bnez s11, dly
`

// bcSource: bc-1.06, storage.c:176 — a loop bound taken from the wrong
// variable writes one element past a heap array, corrupting the pointer
// field of the adjacent heap object.
const bcSource = `
        .data
pad:    .space 4096
        .text
main:   li   a0, 80
        li   a7, 6              # sbrk: arr[16 words] + adjacent object
        syscall
        mv   s0, a0
        addi s1, s0, 64         # heap object right after the array
        la   t0, pad
        sw   t0, (s1)           # obj.ptr = valid pointer
        li   s2, 0
        li   s3, 17             # BUG: bounds variable misused (v_count, not 16)
fill:   slli t1, s2, 2
        add  t1, s0, t1
root:   sw   zero, (t1)         # i == 16 overwrites obj.ptr
        addi s2, s2, 1
        blt  s2, s3, fill
` + delayLoop + `
        lw   t2, (s1)           # load the corrupted (null) pointer
crash:  lw   a0, (t2)
`

// gzipBugSource: gzip-1.2.4, gzip.c:1009 — strcpy of a 1024-byte-plus
// filename into the global ifname buffer overruns into the adjacent
// global output-name pointer.
const gzipBugSource = `
        .data
stage:  .space 2048
ifname: .space 1024
ofptr:  .word pad               # adjacent global clobbered by the overflow
pad:    .space 4096
        .text
main:   li   a0, 0
        la   a1, stage
        li   a2, 1040           # the 1024-byte-long attacker filename
        li   a7, 3
        syscall
        la   s0, stage
        la   s1, ifname
copy:   lbu  t1, (s0)
root:   sb   t1, (s1)           # BUG: unbounded strcpy
        addi s0, s0, 1
        addi s1, s1, 1
        bnez t1, copy
` + delayLoop + `
        la   t2, ofptr
        lw   t3, (t2)           # 0x41414141 now
crash:  lw   a0, (t3)
`

// stackSmashSource is the shared shape of ncompress-4.2.4
// (compress42.c:886), polymorph-0.4.0 (polymorph.c:193,200), gnuplot-3.7.1
// (plot.c:622) and xv-3.10a (xvbmp.c:168): a copy loop with a wrong or
// missing bound overruns a stack buffer and corrupts the saved return
// address; the function does more work, then returns into garbage.
// Parameters: input length, delay iterations.
const stackSmashSource = `
        .data
stage:  .space 4096
pad:    .space 4096
        .text
main:   li   a0, 0
        la   a1, stage
        li   a2, %d             # over-long input
        li   a7, 3
        syscall
        call comp
        li   a7, 1
        syscall                 # never reached
comp:   addi sp, sp, -4096      # frame holds locals + the name buffer
        sw   ra, 76(sp)         # saved return address above the buffer
        mv   t2, sp             # 64-byte name buffer lives at sp
        la   t3, stage
ccopy:  lbu  t4, (t3)
root:   sb   t4, (t2)           # BUG: no bound check; smashes 76(sp)
        addi t3, t3, 1
        addi t2, t2, 1
        bnez t4, ccopy
` + delayLoop + `
        lw   ra, 76(sp)         # corrupted: 0x41414141
        addi sp, sp, 4096
crash:  ret                     # crash: fetch from garbage
`

// tarSource: tar-1.13.25, prepargs.c:92 — a loop bound is computed
// incorrectly, overflowing a heap array into the adjacent argument
// descriptor whose corrupted pointer is then walked.
const tarSource = `
        .data
pad:    .space 4096
        .text
main:   li   a0, 256
        li   a7, 6              # arr[32 words] + descriptor {count, base}
        syscall
        mv   s0, a0
        addi s1, s0, 128
        li   t0, 8
        sw   t0, (s1)           # desc.count = 8
        sw   s0, 4(s1)          # desc.base = arr
        li   s2, 0
        li   s3, 40             # BUG: incorrect loop bound (should be 32)
tfill:  slli t1, s2, 2
        add  t1, s0, t1
root:   sw   s2, (t1)           # i==33 turns desc.base into the integer 33
        addi s2, s2, 1
        blt  s2, s3, tfill
` + delayLoop + `
        lw   t2, 4(s1)          # corrupted base pointer
crash:  lw   a0, (t2)           # misaligned/unmapped walk
`

// ghostscriptSource: ghostscript-8.12, ttinterp.c:5108 / ttobjs.c:279 — a
// dangling pointer to a freed-and-reused object corrupts the new tenant;
// the damage surfaces 18 million instructions later.
const ghostscriptSource = `
        .data
pad:    .space 4096
        .text
main:   li   a0, 64
        li   a7, 6
        syscall
        mv   s0, a0             # object A
        mv   s2, s0             # stale copy of the pointer
        la   t0, pad
        sw   t0, (s0)
        # A is freed; the allocator reuses the storage for object B
        la   t1, pad
        sw   t1, (s0)           # B.ptr (valid)
root:   sw   zero, (s2)         # BUG: write through dangling pointer to A
` + delayLoop + `
        lw   t2, (s0)           # B.ptr is now null
crash:  lw   a0, (t2)
`

// gnuplotNullSource: gnuplot-3.7.1, pslatex.trm:189 — an output file name
// is only set on one input path; the other path leaves it null and the
// driver dereferences it.
const gnuplotNullSource = `
        .data
stage:  .space 8
fname:  .word 0                 # never set on this path
pad:    .space 4096
        .text
main:   li   a0, 0
        la   a1, stage
        li   a2, 4
        li   a7, 3
        syscall
        la   t0, stage
        lbu  t1, (t0)
        li   t2, 115            # 's': the only path that sets fname
root:   bne  t1, t2, skip      # BUG: no default file name
        la   t3, fname
        la   t4, pad
        sw   t4, (t3)
skip:
` + delayLoop + `
        la   t3, fname
        lw   t5, (t3)           # null
crash:  sw   a0, (t5)
`

// tidyNullSource: tidy r34132, istack.c:31 — popping an empty inline
// stack yields a null node pointer that is dereferenced much later.
const tidyNullSource = `
        .data
stk:    .word 0                 # empty stack head
pad:    .space 4096
        .text
main:   la   t0, stk
root:   lw   s0, (t0)           # BUG: pop without emptiness check
` + delayLoop + `
crash:  lw   a0, 4(s0)          # node->field with node == null
`

// tidyCorruptSource: tidy parser.c:3505 and the second parser.c defect —
// a store through a wrong pointer clobbers a live global pointer; the
// crash follows almost immediately (windows 13 and 59). Parameter: nop
// padding count.
const tidyCorruptSource = `
        .data
q:      .word pad
pad:    .space 4096
        .text
main:   la   s0, q
        li   t1, 1
root:   sw   t1, (s0)           # BUG: wrong destination pointer
%s
        lw   t2, (s0)           # q == 1 now
crash:  lw   a0, (t2)           # dereference the clobbered pointer
`

// xvNameSource: xv-3.10a, xvbrowse.c:956 / xvdir.c:1200 — a long file
// name overflows a global name buffer, corrupting a pointer used during
// directory redisplay 7.5 million instructions later.
const xvNameSource = `
        .data
stage:  .space 2048
nameb:  .space 512
entptr: .word pad
pad:    .space 4096
        .text
main:   li   a0, 0
        la   a1, stage
        li   a2, 540
        li   a7, 3
        syscall
        la   s0, stage
        la   s1, nameb
ncopy:  lbu  t1, (s0)
root:   sb   t1, (s1)           # BUG: no length check on file name
        addi s0, s0, 1
        addi s1, s1, 1
        bnez t1, ncopy
` + delayLoop + `
        la   t2, entptr
        lw   t3, (t2)
crash:  lw   a0, (t3)
`

// gaimSource (multithreaded): gaim-0.82.1, gtkdialogs.c:759..901 — one
// thread removes every buddy from the shared list while the UI thread
// still walks it; the walk dereferences the removed head.
const gaimSource = `
        .data
n1:     .word n2, 1
n2:     .word n3, 2
n3:     .word 0, 3
head:   .word n1
done:   .word 0
pad:    .space 4096
        .text
main:   la   a0, worker
        li   a7, 8              # spawn the remove operation
        syscall
        la   t0, done
gwait:  lw   t1, (t0)
        beqz t1, gwait
` + delayLoop + `
        la   t0, head
        lw   t2, (t0)           # list head is null now
crash:  lw   a0, 4(t2)

worker: la   t0, head
root:   sw   zero, (t0)         # BUG: remove leaves concurrent walkers dangling
        la   t1, done
        li   t2, 1
        sw   t2, (t1)
        li   a0, 0
        li   a7, 1
        syscall
`

// napsterSource (multithreaded): napster-1.5.2, nap.c:1391 — a terminal
// resize in one thread reallocates the screen buffer; the main thread
// writes through its stale pointer, corrupting the new buffer's control
// block.
const napsterSource = `
        .data
bufptr: .word oldb
oldb:   .word pad, 0            # {ctl, data}
newb:   .word pad, 0
done:   .word 0
pad:    .space 4096
        .text
main:   la   a0, resize
        li   a7, 8
        syscall
        la   t0, done
nwait:  lw   t1, (t0)
        beqz t1, nwait
        # main still holds the old pointer it cached before the resize
        la   t2, oldb
root:   sw   zero, (t2)         # BUG: write through stale buffer pointer
        # ... except the resize made bufptr alias oldb's storage tenant
` + delayLoop + `
        la   t3, bufptr
        lw   t4, (t3)
        lw   t5, (t4)           # ctl pointer was zeroed by the stale write
crash:  lw   a0, (t5)

resize: la   t0, bufptr
        la   t1, oldb           # reallocation reuses the old storage
        sw   t1, (t0)
        la   t2, done
        li   t3, 1
        sw   t3, (t2)
        li   a0, 0
        li   a7, 1
        syscall
`

// pythonOverflowSource (multithreaded): python-2.1.1, audioop.c:939,966 —
// a size computation overflows 32 bits, defeating the bounds check; the
// store lands on the adjacent object pointer.
const pythonOverflowSource = `
        .data
pad:    .space 4096
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        li   a0, 8
        li   a7, 6              # obj: {data, ptr}
        syscall
        mv   s0, a0
        la   t0, pad
        sw   t0, 4(s0)          # obj.ptr valid
        li   t0, 0x40000001     # attacker-controlled count
        slli t1, t0, 2          # *4 overflows to 4
        li   t2, 8
        bge  t1, t2, safe       # BUG: check passes because of the overflow
        add  t3, s0, t1
root:   sw   zero, (t3)         # lands on obj.ptr
safe:
%s
        lw   t4, 4(s0)
crash:  lw   a0, (t4)

worker: li   a0, 0
        li   a7, 1
        syscall
`

// pythonNullSource (multithreaded): python-2.1.1, sysmodule.c:76 — a
// module-table slot that was never initialized is dereferenced.
const pythonNullSource = `
        .data
modtab: .word pad, pad, 0, pad  # slot 2 never initialized
pad:    .space 4096
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        la   t0, modtab
root:   lw   s0, 8(t0)          # BUG: fetches the null slot unchecked
` + delayLoop + `
crash:  lw   a0, (s0)

worker: li   a0, 0
        li   a7, 1
        syscall
`

// w3mSource (multithreaded): w3m-0.3.2.2, istream.c:445 — an obsolete
// stream-handler slot holds a null function pointer that is eventually
// called.
const w3mSource = `
        .data
handlers: .word h0, h1, 0, h3   # slot 2: obsolete handler, now null
pad:    .space 4096
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        la   t0, handlers
root:   lw   s0, 8(t0)          # BUG: selects the obsolete handler
` + delayLoop + `
crash:  jalr ra, s0, 0          # call through null function pointer

h0:     ret
h1:     ret
h3:     ret
worker: li   a0, 0
        li   a7, 1
        syscall
`

// nops returns n "nop\n" lines for the short-window corruption bugs.
func nops(n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		b.WriteString("        nop\n")
	}
	return b.String()
}

// longName returns an input blob of n 'A' bytes plus a terminator.
func longName(n int) []byte {
	b := bytes.Repeat([]byte{'A'}, n)
	return append(b, 0)
}

// Bugs builds the eighteen Table 1 analogues with windows scaled by the
// given factor (scale 1 targets the paper's absolute window sizes).
func Bugs(scale int) []*BugApp {
	mk := func(name, desc, loc string, paperWindow uint64, mt bool, src string, kcfg kernel.Config, args ...any) *BugApp {
		img := mustBuildf(name, src, args...)
		if mt && kcfg.Cores < 2 {
			kcfg.Cores = 2
		}
		return &BugApp{
			Workload: Workload{
				Name:        name,
				Description: desc,
				Image:       img,
				Kernel:      kcfg,
			},
			PaperLocation: loc,
			PaperWindow:   paperWindow,
			RootLabel:     "root",
			Multithreaded: mt,
		}
	}
	d := func(paper uint64) uint64 { return delayIters(scaledWindow(paper, scale)) }
	// Multithreaded delays halve: two runnable threads double the global
	// step distance covered per delay iteration only while both run; the
	// workers here exit immediately, so no correction is needed.
	return []*BugApp{
		mk("bc", "Misuse of bounds variable corrupts heap objects",
			"storage.c line 176", 591, false, bcSource, kernel.Config{}, d(591)),
		mk("gzip", "1024 byte long input filename overflows global variable",
			"gzip.c line 1009", 32209, false, gzipBugSource,
			kernel.Config{Inputs: map[string][]byte{"stdin": longName(1039)}}, d(32209)),
		mk("ncompress", "1024 byte long input filename corrupts stack return address",
			"compress42.c line 886", 17966, false, stackSmashSource,
			kernel.Config{Inputs: map[string][]byte{"stdin": longName(1099)}}, 1100, d(17966)),
		mk("polymorph", "2048 byte long input filename corrupts stack return address",
			"polymorph.c lines 193, 200", 6208, false, stackSmashSource,
			kernel.Config{Inputs: map[string][]byte{"stdin": longName(2047)}}, 2048, d(6208)),
		mk("tar", "Incorrect loop bounds leads to heap object overflow",
			"prepargs.c line 92", 6634, false, tarSource, kernel.Config{}, d(6634)),
		mk("ghostscript", "A dangling pointer results in a memory corruption",
			"ttinterp.c line 5108, ttobjs.c line 279", 18030519, false,
			ghostscriptSource, kernel.Config{}, d(18030519)),
		mk("gnuplot-1", "Null pointer dereference due to not setting a file name",
			"pslatex.trm line 189", 782, false, gnuplotNullSource,
			kernel.Config{Inputs: map[string][]byte{"stdin": []byte("q\n\x00\x00")}}, d(782)),
		mk("gnuplot-2", "A buffer overflow corrupts the stack return address",
			"plot.c line 622", 131751, false, stackSmashSource,
			kernel.Config{Inputs: map[string][]byte{"stdin": longName(199)}}, 200, d(131751)),
		mk("tidy-1", "Null pointer dereference",
			"istack.c at line 31", 2537326, false, tidyNullSource, kernel.Config{}, d(2537326)),
		mk("tidy-2", "Memory corruption",
			"parser.c at line 3505", 13, false, tidyCorruptSource, kernel.Config{}, nops(10)),
		mk("tidy-3", "Memory corruption",
			"parser.c", 59, false, tidyCorruptSource, kernel.Config{}, nops(56)),
		mk("xv-1", "Incorrect bound checking leads to stack buffer overflow",
			"xvbmp.c line 168", 44557, false, stackSmashSource,
			kernel.Config{Inputs: map[string][]byte{"stdin": longName(299)}}, 300, d(44557)),
		mk("xv-2", "A long file name results in a buffer overflow",
			"xvbrowse.c line 956, xvdir.c line 1200", 7543600, false, xvNameSource,
			kernel.Config{Inputs: map[string][]byte{"stdin": longName(539)}}, d(7543600)),
		mk("gaim", "Buddy list remove operations causes null pointer dereference",
			"gtkdialogs.c line 759, 820, 862, 901", 74590, true, gaimSource,
			kernel.Config{}, d(74590)),
		mk("napster", "Dangling pointer corrupts memory when resizing terminal",
			"nap.c line 1391", 189391, true, napsterSource, kernel.Config{}, d(189391)),
		mk("python-1", "Arithmetic computation results in buffer overflow",
			"audioop.c line 939, line 966", 92, true, pythonOverflowSource,
			kernel.Config{}, nops(85)),
		mk("python-2", "A null pointer dereference leads to a crash",
			"sysmodule.c line 76", 941, true, pythonNullSource, kernel.Config{}, d(941)),
		mk("w3m", "Null (obsolete) function pointer dereference causes a crash",
			"istream.c line 445", 79309, true, w3mSource, kernel.Config{}, d(79309)),
	}
}

// BugByName returns the named bug analogue at the given scale, or nil.
func BugByName(name string, scale int) *BugApp {
	for _, b := range Bugs(scale) {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// MeasureWindow runs the bug to its crash and returns the dynamic distance
// in machine steps between the last execution of the root-cause
// instruction and the crash — the paper's Table 1 "window size".
func (b *BugApp) MeasureWindow(maxSteps uint64) (window uint64, crashed bool) {
	watch := &rootWatch{root: b.RootPC()}
	m := b.Machine(maxSteps, watch)
	watch.m = m
	res := m.Run()
	if res.Crash == nil {
		return 0, false
	}
	return res.Steps - watch.lastStep, true
}

// rootWatch records the machine step of the most recent execution of the
// root PC on any thread.
type rootWatch struct {
	kernel.NopHooks
	m        *kernel.Machine
	root     uint32
	lastStep uint64
}

func (w *rootWatch) OnThreadStart(tid int) {
	c := w.m.Threads[tid].CPU
	c.OnFetch = func(pc uint32) {
		if pc == w.root {
			w.lastStep = w.m.Now()
		}
	}
}
