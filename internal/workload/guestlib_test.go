package workload

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
)

// runLib assembles a test harness that uses GuestLib and returns the exit
// code.
func runLib(t *testing.T, body string) int32 {
	t.Helper()
	img, err := asm.Assemble("lib.s", body+GuestLib)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := kernel.New(img, kernel.Config{MaxSteps: 1_000_000}, nil)
	res := m.Run()
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	return res.ExitCode
}

func TestGuestStrlen(t *testing.T) {
	if got := runLib(t, `
        .data
s:      .asciiz "hello, guest"
        .text
main:   la   a0, s
        call strlen
        li   a7, 1
        syscall
`); got != 12 {
		t.Errorf("strlen = %d; want 12", got)
	}
}

func TestGuestStrcpyAndCmp(t *testing.T) {
	if got := runLib(t, `
        .data
src:    .asciiz "replay"
dst:    .space 16
        .text
main:   la   a0, dst
        la   a1, src
        call strcpy
        la   a0, dst
        la   a1, src
        call strcmp          # equal -> 0
        li   a7, 1
        syscall
`); got != 0 {
		t.Errorf("strcmp after strcpy = %d; want 0", got)
	}
}

func TestGuestStrncpyBounds(t *testing.T) {
	// strncpy with n=3 copies exactly 3 bytes, no terminator beyond.
	if got := runLib(t, `
        .data
src:    .asciiz "abcdef"
dst:    .space 8
        .text
main:   la   a0, dst
        la   a1, src
        li   a2, 3
        call strncpy
        la   t0, dst
        lbu  t1, 2(t0)       # 'c'
        lbu  t2, 3(t0)       # untouched: 0
        slli t2, t2, 8
        or   a0, t1, t2
        li   a7, 1
        syscall
`); got != 'c' {
		t.Errorf("strncpy result = %#x; want 'c'", got)
	}
}

func TestGuestMemcpyMemset(t *testing.T) {
	if got := runLib(t, `
        .data
a:      .word 0x01020304, 0x05060708
b:      .space 8
        .text
main:   la   a0, b
        la   a1, a
        li   a2, 8
        call memcpy
        la   a0, b
        li   a1, 0xAB
        li   a2, 2           # overwrite first 2 bytes
        call memset
        la   t0, b
        lw   a0, (t0)        # 0x0102ABAB
        srli a0, a0, 16      # 0x0102
        li   a7, 1
        syscall
`); got != 0x0102 {
		t.Errorf("memcpy+memset = %#x; want 0x0102", got)
	}
}

func TestGuestMallocFreeReuse(t *testing.T) {
	// malloc, free, malloc again: the freed block must be reused (the
	// dangling-pointer bug class depends on exactly this).
	if got := runLib(t, `
main:   li   a0, 24
        call malloc
        mv   s0, a0          # first block
        beqz s0, fail
        mv   a0, s0
        call free
        li   a0, 24
        call malloc          # must reuse the freed block
        beq  a0, s0, same
fail:   li   a0, 1
        li   a7, 1
        syscall
same:   li   a0, 0
        li   a7, 1
        syscall
`); got != 0 {
		t.Errorf("allocator reuse failed: exit %d", got)
	}
}

func TestGuestMallocDistinctBlocks(t *testing.T) {
	if got := runLib(t, `
main:   li   a0, 16
        call malloc
        mv   s0, a0
        li   a0, 16
        call malloc
        beq  a0, s0, bad     # two live blocks must differ
        sw   s0, (a0)        # and both must be writable
        sw   a0, (s0)
        li   a0, 0
        li   a7, 1
        syscall
bad:    li   a0, 1
        li   a7, 1
        syscall
`); got != 0 {
		t.Errorf("distinct allocation failed: exit %d", got)
	}
}

// TestGuestLibRecordsAndReplays runs a library-heavy program under the
// recorder and replays it — shared-library code is exactly what the paper
// promises to replay.
func TestGuestLibRecordsAndReplays(t *testing.T) {
	img, err := asm.Assemble("librr.s", `
        .data
text:   .asciiz "the quick brown fox jumps over the lazy dog"
        .text
main:   li   s2, 10
loop:   la   a0, text
        call strlen
        mv   s0, a0          # 44
        addi a0, s0, 1
        call malloc
        mv   s1, a0
        mv   a0, s1
        la   a1, text
        call strcpy
        mv   a0, s1
        call strlen
        bne  a0, s0, bad
        mv   a0, s1
        call free
        addi s2, s2, -1
        bnez s2, loop
        li   a0, 0
        li   a7, 1
        syscall
bad:    break
`+GuestLib)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, rec := core.Record(img, kernel.Config{MaxSteps: 1_000_000},
		core.Config{IntervalLength: 500, TraceDepth: 1 << 18})
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	if err := core.VerifyReplay(img, rec); err != nil {
		t.Fatalf("verify: %v", err)
	}
	rr, err := core.NewReplayer(img, rep.FLLs[0]).Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Final.Regs[isa.RegA0] != 0 {
		t.Errorf("replayed exit state a0 = %d", rr.Final.Regs[isa.RegA0])
	}
}
