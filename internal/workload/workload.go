// Package workload provides the programs the experiments run: synthetic
// analogues of the paper's SPEC 2000 kernels (§6.1) and of the eighteen
// known-buggy open-source applications of Table 1.
//
// The SPEC analogues reproduce the qualitative memory behaviour of their
// namesakes — streaming array scans, block sorting, table-lookup search,
// windowed compression, pointer chasing, dictionary parsing, and
// simulated-annealing placement — because First-Load Log size is driven by
// working-set reuse distance and load-value locality, not by instruction
// semantics. Each kernel runs forever; experiments bound execution with
// the machine's step budget to capture windows of exactly the wanted
// length.
//
// The bug analogues implement the same bug classes as Table 1 (heap
// corruption through a wrong bound, global/stack buffer overflows from
// over-long inputs, dangling pointers, null pointer and null function
// pointer dereferences, arithmetic overflow, four of them multithreaded),
// each with a marked root-cause instruction and a crash whose dynamic
// distance from the root cause is engineered to the paper's reported
// window size (divided by the experiment scale).
package workload

import (
	"fmt"

	"bugnet/internal/asm"
	"bugnet/internal/kernel"
)

// Workload is a runnable guest program plus its input configuration.
type Workload struct {
	Name        string
	Description string
	Image       *asm.Image
	Kernel      kernel.Config
	// Warmup is the number of steps covering the kernel's initialization
	// phase; window experiments skip it to measure steady-state logging.
	Warmup uint64
}

// Machine builds a fresh machine for the workload with the given step
// budget (0 = run to completion) and optional extra cores.
func (w *Workload) Machine(maxSteps uint64, hooks kernel.Hooks) *kernel.Machine {
	cfg := w.Kernel
	cfg.MaxSteps = maxSteps
	return kernel.New(w.Image, cfg, hooks)
}

// BugApp is one Table 1 analogue.
type BugApp struct {
	Workload
	// PaperLocation and PaperWindow reproduce the paper's Table 1 "Bug
	// Location" and "Window size" columns for the original program.
	PaperLocation string
	PaperWindow   uint64
	// RootLabel is the assembly label of the root-cause instruction (the
	// last dynamic instance of the fix location, per §6.2).
	RootLabel string
	// Multithreaded marks the four analogues that need multiple cores.
	Multithreaded bool
}

// RootPC resolves the root-cause instruction address.
func (b *BugApp) RootPC() uint32 { return b.Image.MustSymbol(b.RootLabel) }

// delayIters converts a wanted dynamic instruction distance into
// iterations of the standard 6-instruction delay loop used by the bug
// sources (andi+slli+add+lw+addi+bnez per iteration, plus a short
// prologue and crash epilogue).
func delayIters(window uint64) uint64 {
	const perIter = 6
	if window < 3*perIter {
		return 1
	}
	return (window - 8) / perIter
}

// scaledWindow divides a paper window by the scale, with a floor that
// keeps even heavily scaled bugs observable.
func scaledWindow(paper uint64, scale int) uint64 {
	if scale < 1 {
		scale = 1
	}
	w := paper / uint64(scale)
	if w < 16 {
		w = 16
	}
	return w
}

// mustBuild assembles a bug source, panicking on error: workload sources
// are compiled into the binary and must always assemble.
func mustBuild(name, src string) *asm.Image {
	return asm.MustAssemble(name+".s", src)
}

// mustBuildf is mustBuild over a format-string source template.
func mustBuildf(name, format string, args ...any) *asm.Image {
	return asm.MustAssemble(name+".s", fmt.Sprintf(format, args...))
}
