package workload

// GuestLib is a small runtime library in guest assembly — the shared
// library code the paper's replay scope explicitly includes ("BugNet
// focuses on deterministically replaying the instructions executed in
// user code and shared libraries"). Programs append it to their source
// and call the routines with the standard convention (args a0..a2,
// result a0, ra-based return; t-registers clobbered).
//
// Routines:
//
//	strlen(a0 s) -> a0
//	strcpy(a0 dst, a1 src) -> a0 dst        (unbounded, like the real one)
//	strncpy(a0 dst, a1 src, a2 n) -> a0
//	memcpy(a0 dst, a1 src, a2 n) -> a0
//	memset(a0 dst, a1 byte, a2 n) -> a0
//	strcmp(a0 a, a1 b) -> a0 (<0, 0, >0)
//	malloc(a0 n) -> a0 ptr or 0             (first-fit free list over sbrk)
//	free(a0 ptr)
//
// The allocator keeps a singly linked free list of {size, next} headers —
// small, deterministic, and enough to host the heap bug classes of
// Table 1 realistically.
const GuestLib = `
# ---- guest runtime library ----
        .data
        .align 2
__freelist: .word 0            # head of the free list

        .text
strlen: mv   t0, a0
__sl1:  lbu  t1, (t0)
        beqz t1, __sl2
        addi t0, t0, 1
        j    __sl1
__sl2:  sub  a0, t0, a0
        ret

strcpy: mv   t0, a0
__sc1:  lbu  t1, (a1)
        sb   t1, (t0)
        addi a1, a1, 1
        addi t0, t0, 1
        bnez t1, __sc1
        ret

strncpy:
        mv   t0, a0
__sn1:  beqz a2, __sn3
        lbu  t1, (a1)
        sb   t1, (t0)
        addi t0, t0, 1
        addi a2, a2, -1
        beqz t1, __sn3
        addi a1, a1, 1
        j    __sn1
__sn3:  ret

memcpy: mv   t0, a0
__mc1:  beqz a2, __mc2
        lbu  t1, (a1)
        sb   t1, (t0)
        addi t0, t0, 1
        addi a1, a1, 1
        addi a2, a2, -1
        j    __mc1
__mc2:  ret

memset: mv   t0, a0
__ms1:  beqz a2, __ms2
        sb   a1, (t0)
        addi t0, t0, 1
        addi a2, a2, -1
        j    __ms1
__ms2:  ret

strcmp:
__cm1:  lbu  t0, (a0)
        lbu  t1, (a1)
        bne  t0, t1, __cm2
        beqz t0, __cm3
        addi a0, a0, 1
        addi a1, a1, 1
        j    __cm1
__cm2:  sub  a0, t0, t1
        ret
__cm3:  li   a0, 0
        ret

# malloc: first-fit over the free list, else sbrk. Blocks carry an 8-byte
# header {size, next}; the returned pointer skips the header.
malloc: addi a0, a0, 11        # round up to 8 and add header
        andi a0, a0, -8
        mv   t0, a0            # want = aligned(n) + 8
        la   t1, __freelist
__ml1:  lw   t2, (t1)          # candidate block
        beqz t2, __ml3
        lw   t3, (t2)          # candidate size
        bge  t3, t0, __ml2     # fits: unlink and return
        addi t1, t2, 4         # advance through ->next
        j    __ml1
__ml2:  lw   t4, 4(t2)         # next
        sw   t4, (t1)          # unlink
        addi a0, t2, 8
        ret
__ml3:  mv   t5, t0            # sbrk path
        mv   a0, t5
        li   a7, 6
        syscall
        beqz a0, __ml4
        sw   t5, (a0)          # header.size = want
        sw   zero, 4(a0)
        addi a0, a0, 8
        ret
__ml4:  li   a0, 0
        ret

free:   beqz a0, __fr1
        addi a0, a0, -8        # back to the header
        la   t1, __freelist
        lw   t2, (t1)
        sw   t2, 4(a0)         # block.next = old head
        sw   a0, (t1)          # head = block
__fr1:  ret
# ---- end guest runtime library ----
`
