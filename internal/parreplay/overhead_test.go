package parreplay

import (
	"testing"

	"bugnet/internal/core"
	"bugnet/internal/workload"
)

// BenchmarkUnitOverhead quantifies the fan-out tax: the same recorded
// window replayed as one sequential pass vs as per-interval units on a
// single-worker pool. The delta is pure executor overhead (per-unit
// replayer construction, image re-mapping, merge), the term that bounds
// the parallel speedup.
func BenchmarkUnitOverhead(b *testing.B) {
	w := workload.ByName("gzip")
	const window = 320_000
	m := w.Machine(w.Warmup, nil)
	m.Run()
	rec := core.NewRecorder(m, core.Config{IntervalLength: 20_000})
	m.SetMaxSteps(w.Warmup + window)
	m.Run()
	rec.Flush()
	if err := rec.Err(); err != nil {
		b.Fatal(err)
	}
	logs := rec.Report().FLLs[0]
	b.Logf("%d intervals", len(logs))

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewReplayer(w.Image, logs).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("units-1worker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReplayThread(w.Image, logs, Options{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
