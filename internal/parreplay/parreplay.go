// Package parreplay is the parallel interval-replay executor: BugNet's
// record-once/replay-many economics made concrete.
//
// The paper's core property (§4.2) is that every checkpoint interval is
// independently replayable from its own First-Load Log: the header
// snapshots the full architectural state at the interval start, and the
// recorder clears all first-load bits when it creates a checkpoint, so
// every value the interval observes that its own execution did not produce
// is in the interval's log. Sequential replay exploits none of that — it
// walks the intervals one at a time on one goroutine. This package seeds
// one replay per interval and fans the intervals across a bounded worker
// pool, then merges the per-interval results in interval order so the
// outcome is byte-identical to the sequential path:
//
//   - Instructions and Injected are sums over intervals;
//   - Final registers, TID and the fault record come from the last
//     interval (each interval restores its header state, so the final
//     state never depends on earlier intervals);
//   - the backtrace ring is reassembled from the trailing intervals'
//     rings (each ring holds at least min(TraceDepth, interval length)
//     entries, so walking intervals backward until TraceDepth entries
//     accumulate reconstructs the sequential ring exactly);
//   - the first failure in (thread, interval) order wins, which is the
//     order the sequential batched schedule encounters failures in, and
//     later intervals' divergences are discarded exactly as the
//     sequential path never reaches them.
//
// Reports that need race detection are replayed sequentially: the
// vector-clock detector consumes the reconstructed global interleaving,
// and its verdict depends on that order, so only the sequential schedule
// reproduces it. ReplayReport routes such reports (any report carrying
// MRLs) to core.MultiReplayer unchanged. The fleet-scale common case — a
// single-threaded crash uploaded by thousands of machines — takes the
// parallel path.
//
// One semantic note: the replay page budget (Options.MaxPages) applies
// per interval on the parallel path, where the sequential path applies it
// cumulatively over the whole window. A report whose distinct-page
// footprint exceeds the budget only cumulatively replays clean in
// parallel and diverges sequentially; both verdicts are valid statements
// about an over-budget report, and the budget's purpose — bounding one
// worker's memory — holds either way (peak memory is MaxPages times the
// pool width).
package parreplay

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/dict"
	"bugnet/internal/fll"
)

// Options tunes a parallel replay.
type Options struct {
	// Workers bounds the replay worker pool. <= 0 picks GOMAXPROCS; 1
	// still runs the fan-out machinery on one worker (useful for parity
	// tests), while callers wanting the literal sequential code path use
	// core.Replayer / core.MultiReplayer directly.
	Workers int
	// TraceDepth is the backtrace ring length (0 = no trace).
	TraceDepth int
	// MaxPages caps each interval replay's memory in 4 KB pages (see
	// core.Replayer.MaxPages; per interval on this path).
	MaxPages int
	// LogCodeLoads and DictOptions must match the recording
	// configuration. ReplayReport overrides them from the report.
	LogCodeLoads bool
	DictOptions  dict.Options
}

func (o *Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// unit is one (thread, interval) replay work item.
type unit struct {
	tid    int
	idx    int // interval index within the thread's window
	ref    *fll.Ref
	baseIC uint64 // instructions in the thread's earlier intervals
	last   bool   // true for the thread's final interval
	traced bool   // carry a trace ring (the crashing thread)
}

// unitResult is one finished work item.
type unitResult struct {
	unit
	res      *core.ReplayResult
	err      error
	panicked bool
	panicVal any
}

// replayUnit replays one interval in isolation. A panic is captured, not
// propagated: workers run on pool goroutines, and an uncaught panic there
// would kill the process instead of reaching the caller's recover (triage
// demotes replay panics to failed verdicts).
func replayUnit(img *asm.Image, u unit, o Options) (r unitResult) {
	r.unit = u
	defer func() {
		if v := recover(); v != nil {
			r.panicked, r.panicVal = true, v
		}
	}()
	rep := core.NewReplayer(img, []*fll.Ref{u.ref})
	rep.LogCodeLoads = o.LogCodeLoads
	rep.DictOptions = o.DictOptions
	rep.MaxPages = o.MaxPages
	rep.InteriorWindow = !u.last
	rep.BaseIC = u.baseIC
	if u.traced {
		rep.TraceDepth = o.TraceDepth
	}
	r.res, r.err = rep.Run()
	return r
}

// run fans units across the pool and returns every result, sorted by
// (thread, interval).
func run(img *asm.Image, units []unit, o Options) []unitResult {
	workers := o.workers()
	if workers > len(units) {
		workers = len(units)
	}
	in := make(chan unit)
	out := make(chan unitResult, len(units))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range in {
				mWorkersBusy.Inc()
				r := replayUnit(img, u, o)
				mWorkersBusy.Dec()
				mIntervals.Inc()
				out <- r
			}
		}()
	}
	for _, u := range units {
		in <- u
	}
	close(in)
	wg.Wait()
	close(out)
	results := make([]unitResult, 0, len(units))
	for r := range out {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].tid != results[j].tid {
			return results[i].tid < results[j].tid
		}
		return results[i].idx < results[j].idx
	})
	return results
}

// firstFailure scans (thread, interval)-ordered results for the first
// divergence or panic — the one the sequential schedule would have hit —
// and surfaces it: panics re-panic on the caller's goroutine so the
// caller's recover sees the identical value.
func firstFailure(results []unitResult) error {
	for _, r := range results {
		if r.panicked {
			panic(r.panicVal)
		}
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// mergeThread folds one thread's interval results (already in interval
// order, all error-free) into the result sequential replay of the full
// window produces.
func mergeThread(results []unitResult, traceDepth int) *core.ReplayResult {
	last := results[len(results)-1].res
	merged := &core.ReplayResult{
		TID:       last.TID,
		Final:     last.Final,
		Intervals: len(results),
		Fault:     last.Fault,
	}
	for _, r := range results {
		merged.Instructions += r.res.Instructions
		merged.Injected += r.res.Injected
	}
	if traceDepth > 0 {
		// Reassemble the last-TraceDepth ring: walk intervals backward,
		// prepending each interval's ring until enough entries accumulate.
		var trace []core.TraceEntry
		for i := len(results) - 1; i >= 0 && len(trace) < traceDepth; i-- {
			trace = append(append([]core.TraceEntry(nil), results[i].res.Trace...), trace...)
		}
		if len(trace) > traceDepth {
			trace = trace[len(trace)-traceDepth:]
		}
		merged.Trace = trace
	}
	return merged
}

// ReplayThread replays one thread's interval refs across the worker pool
// and merges the outcome. The result (and any error) is byte-identical to
// core.NewReplayer(img, logs).Run() with the same options.
func ReplayThread(img *asm.Image, logs []*fll.Ref, o Options) (*core.ReplayResult, error) {
	if len(logs) == 0 {
		r := core.NewReplayer(img, logs)
		r.LogCodeLoads = o.LogCodeLoads
		r.DictOptions = o.DictOptions
		r.MaxPages = o.MaxPages
		r.TraceDepth = o.TraceDepth
		return r.Run()
	}
	units := make([]unit, len(logs))
	var cum uint64
	for i, ref := range logs {
		units[i] = unit{idx: i, ref: ref, baseIC: cum,
			last: i == len(logs)-1, traced: o.TraceDepth > 0}
		cum += ref.Length
	}
	results := run(img, units, o)
	if err := firstFailure(results); err != nil {
		return nil, err
	}
	return mergeThread(results, o.TraceDepth), nil
}

// ReportOptions tunes ReplayReport.
type ReportOptions struct {
	Options
	// DetectRaces requests the race analysis; it forces the sequential
	// schedule (the vector-clock detector is interleaving-sensitive).
	DetectRaces bool
}

// sequentialFallbacks counts report replays routed to the sequential
// MultiReplayer (races requested, MRL-carrying report, or a one-worker
// pool); exported for tests.
var sequentialFallbacks atomic.Uint64

// SequentialFallbacks returns how many ReplayReport calls took the
// sequential path.
func SequentialFallbacks() uint64 { return sequentialFallbacks.Load() }

// ReplayReport replays every thread of a crash report, adopting the
// recording options the report carries, with the per-thread interval
// replays fanned across the pool. Reports that need the reconstructed
// global interleaving — race detection requested, or any MRLs present
// (their constraint accounting is part of the sequential result) — are
// replayed by core.MultiReplayer unchanged, so the verdict is always
// byte-identical to the sequential path.
func ReplayReport(img *asm.Image, rep *core.CrashReport, o ReportOptions) (*core.MultiReplayResult, error) {
	if o.DetectRaces || len(rep.MRLs) > 0 || o.workers() == 1 {
		sequentialFallbacks.Add(1)
		mSequential.Inc()
		mr := core.NewMultiReplayer(img, rep)
		mr.DetectRaces = o.DetectRaces
		mr.MaxPages = o.MaxPages
		mr.TraceDepth = o.TraceDepth
		res, err := mr.Run()
		return res, err
	}
	if rep.Binary.TextLen != 0 {
		if err := rep.Binary.Matches(img); err != nil {
			return nil, err
		}
	}
	tids := make([]int, 0, len(rep.FLLs))
	for tid := range rep.FLLs {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	if len(tids) == 0 {
		return &core.MultiReplayResult{Threads: map[int]*core.ReplayResult{}}, nil
	}

	opts := o.Options
	opts.LogCodeLoads = rep.LogCodeLoads
	opts.DictOptions = rep.DictOptions

	var units []unit
	for _, tid := range tids {
		logs := rep.FLLs[tid]
		traced := opts.TraceDepth > 0 && rep.Crash != nil && tid == rep.Crash.TID
		var cum uint64
		for i, ref := range logs {
			units = append(units, unit{tid: tid, idx: i, ref: ref, baseIC: cum,
				last: i == len(logs)-1, traced: traced})
			cum += ref.Length
		}
	}
	results := run(img, units, opts)
	if err := firstFailure(results); err != nil {
		// MultiReplayer wraps each thread's failure; match it, using the
		// failing unit's thread (firstFailure returns the first error in
		// (thread, interval) order, so re-scan for its owner).
		for _, r := range results {
			if r.err != nil {
				return nil, &threadError{tid: r.tid, err: r.err}
			}
		}
	}

	res := &core.MultiReplayResult{Threads: make(map[int]*core.ReplayResult, len(tids))}
	at := 0
	for _, tid := range tids {
		n := len(rep.FLLs[tid])
		if n == 0 {
			// The sequential path still builds a (trivially done) machine
			// for a thread with no retained logs and records its zero-work
			// result; an empty sequential run reproduces it.
			r := core.NewReplayer(img, nil)
			r.LogCodeLoads = opts.LogCodeLoads
			r.DictOptions = opts.DictOptions
			r.MaxPages = opts.MaxPages
			if opts.TraceDepth > 0 && rep.Crash != nil && tid == rep.Crash.TID {
				r.TraceDepth = opts.TraceDepth
			}
			rr, err := r.Run()
			if err != nil {
				return nil, &threadError{tid: tid, err: err}
			}
			res.Threads[tid] = rr
			continue
		}
		depth := 0
		if results[at].traced {
			depth = opts.TraceDepth
		}
		res.Threads[tid] = mergeThread(results[at:at+n], depth)
		at += n
	}
	return res, nil
}

// threadError mirrors core.MultiReplayer's per-thread error wrapping
// ("thread %d: <cause>") with the cause unwrappable.
type threadError struct {
	tid int
	err error
}

func (e *threadError) Error() string { return "thread " + itoa(e.tid) + ": " + e.err.Error() }
func (e *threadError) Unwrap() error { return e.err }

// itoa avoids pulling fmt onto the error path for a non-negative int.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
