package parreplay

import "bugnet/internal/obs"

// Parallel-replay pool metrics. Handles are preallocated so the per-unit
// accounting in the worker loop is two atomic adds.
var (
	mWorkersBusy = obs.Default.Gauge("bugnet_parreplay_workers_busy",
		"Replay pool workers currently executing an interval.")
	mIntervals = obs.Default.Counter("bugnet_parreplay_intervals_total",
		"Checkpoint intervals replayed by the parallel executor.")
	mSequential = obs.Default.Counter("bugnet_parreplay_sequential_total",
		"Report replays routed to the sequential path (race detection or MRL constraints).")
)
