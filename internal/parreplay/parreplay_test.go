package parreplay

import (
	"errors"
	"reflect"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/cache"
	"bugnet/internal/core"
	"bugnet/internal/fll"
	"bugnet/internal/kernel"
)

func tinyCache() cache.Config {
	return cache.Config{
		L1: cache.LevelConfig{SizeBytes: 1 << 10, BlockBytes: 32, Assoc: 2},
		L2: cache.LevelConfig{SizeBytes: 8 << 10, BlockBytes: 32, Assoc: 4},
	}
}

const sumProgram = `
        .data
arr:    .space 256
        .text
main:   la   t0, arr
        li   t1, 0
        li   t2, 64
init:   slli t3, t1, 2
        add  t3, t0, t3
        sw   t1, (t3)
        addi t1, t1, 1
        blt  t1, t2, init
        li   t1, 0
        li   a0, 0
sum:    slli t3, t1, 2
        add  t3, t0, t3
        lw   t4, (t3)
        add  a0, a0, t4
        addi t1, t1, 1
        blt  t1, t2, sum
        li   a7, 1
        syscall
`

const crashProgram = `
        .data
p:      .word 0
        .text
main:   li t0, 200
work:   addi t0, t0, -1
        bnez t0, work
        la t1, p
        lw t2, (t1)
deref:  lw a0, (t2)       # null deref
`

// racyProgram shares an unsynchronized counter between two threads, so
// its report carries MRLs and supports race detection.
const racyProgram = `
        .data
shared: .word 0
done:   .word 0
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        li   s2, 50
ml:     la   t0, shared
        lw   t1, (t0)
        addi t1, t1, 1
        sw   t1, (t0)
        addi s2, s2, -1
        bnez s2, ml
        la   t0, done
dwait:  amoadd t1, zero, (t0)
        beqz t1, dwait
        la   t0, shared
        lw   a0, (t0)
        li   a7, 1
        syscall

worker: li   s2, 50
wl2:    la   t0, shared
        lw   t1, (t0)
        addi t1, t1, 1
        sw   t1, (t0)
        addi s2, s2, -1
        bnez s2, wl2
        la   t0, done
        li   t1, 1
        amoswap t2, t1, (t0)
        li   a0, 0
        li   a7, 1
        syscall
`

func recordST(t *testing.T, src string, rcfg core.Config) (*core.CrashReport, *asm.Image) {
	t.Helper()
	img, err := asm.Assemble("pp.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	_, rep, _ := core.Record(img, kernel.Config{}, rcfg)
	return rep, img
}

// seqThread is the reference: the plain sequential Replayer.
func seqThread(img *asm.Image, logs []*fll.Ref, o Options) (*core.ReplayResult, error) {
	r := core.NewReplayer(img, logs)
	r.LogCodeLoads = o.LogCodeLoads
	r.DictOptions = o.DictOptions
	r.MaxPages = o.MaxPages
	r.TraceDepth = o.TraceDepth
	return r.Run()
}

// TestThreadParityManyIntervals is the core determinism property: a
// parallel replay of a many-interval window is byte-identical — final
// registers, counts, fault, and the reassembled backtrace ring — to the
// sequential replay, at several pool widths.
func TestThreadParityManyIntervals(t *testing.T) {
	rep, img := recordST(t, sumProgram,
		core.Config{IntervalLength: 100, DictSize: 64, Cache: tinyCache()})
	logs := rep.FLLs[0]
	if len(logs) < 4 {
		t.Fatalf("want several intervals, got %d", len(logs))
	}
	o := Options{TraceDepth: 64}
	want, err := seqThread(img, logs, o)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if len(want.Trace) != 64 {
		t.Fatalf("reference trace length %d; want a full ring", len(want.Trace))
	}
	for _, workers := range []int{1, 2, 8} {
		o.Workers = workers
		got, err := ReplayThread(img, logs, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel result differs from sequential\n got: %+v\nwant: %+v",
				workers, got, want)
		}
	}
}

// TestThreadParityCrash checks the fault-carrying final interval: the
// fault record, final registers (the bad pointer), and trace must match.
func TestThreadParityCrash(t *testing.T) {
	rep, img := recordST(t, crashProgram,
		core.Config{IntervalLength: 50, DictSize: 64, Cache: tinyCache()})
	logs := rep.FLLs[0]
	if rep.Crash == nil {
		t.Fatal("program did not crash")
	}
	o := Options{Workers: 8, TraceDepth: 32}
	want, err := seqThread(img, logs, o)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	got, err := ReplayThread(img, logs, o)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if got.Fault == nil || want.Fault == nil {
		t.Fatalf("fault lost: got %v want %v", got.Fault, want.Fault)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("crash replay differs\n got: %+v\nwant: %+v", got, want)
	}
}

// TestThreadParityDivergenceError tampers with an interior interval and
// checks both paths report the same divergence (first failure in interval
// order wins, later intervals' outcomes are discarded).
func TestThreadParityDivergenceError(t *testing.T) {
	rep, img := recordST(t, sumProgram,
		core.Config{IntervalLength: 100, DictSize: 64, Cache: tinyCache()})
	logs := append([]*fll.Ref(nil), rep.FLLs[0]...)
	if len(logs) < 3 {
		t.Fatalf("want ≥3 intervals, got %d", len(logs))
	}
	l1, err := logs[1].Open()
	if err != nil {
		t.Fatal(err)
	}
	tampered := *l1
	tampered.State.PC = 0 // fetch from unmapped zero faults instantly
	logs[1] = fll.NewRef(&tampered)

	_, seqErr := seqThread(img, logs, Options{})
	if seqErr == nil {
		t.Fatal("sequential replay of tampered log succeeded")
	}
	_, parErr := ReplayThread(img, logs, Options{Workers: 8})
	if parErr == nil {
		t.Fatal("parallel replay of tampered log succeeded")
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("divergence errors differ:\n seq: %v\n par: %v", seqErr, parErr)
	}
	if !errors.Is(parErr, core.ErrDiverged) {
		t.Errorf("parallel error does not wrap ErrDiverged: %v", parErr)
	}
}

// TestReportParitySingleThread drives the report-level entry point on a
// single-threaded crash report — the fleet-scale common case that takes
// the parallel path.
func TestReportParitySingleThread(t *testing.T) {
	rep, img := recordST(t, crashProgram,
		core.Config{IntervalLength: 50, DictSize: 64, Cache: tinyCache()})
	mr := core.NewMultiReplayer(img, rep)
	mr.TraceDepth = 32
	want, err := mr.Run()
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	before := mIntervals.Value()
	got, err := ReplayReport(img, rep, ReportOptions{Options: Options{Workers: 8, TraceDepth: 32}})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report replay differs\n got: %+v\nwant: %+v", got, want)
	}
	if mIntervals.Value() == before {
		t.Error("parallel path replayed no intervals (fell back to sequential?)")
	}
}

// TestReportParityMultiThread covers the multithreaded report: it carries
// MRLs, so ReplayReport must route it to the sequential MultiReplayer and
// the results are identical by construction — the test pins the routing.
func TestReportParityMultiThread(t *testing.T) {
	img, err := asm.Assemble("mt.s", racyProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	_, rep, _ := core.Record(img, kernel.Config{Cores: 2},
		core.Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	if len(rep.MRLs) == 0 {
		t.Fatal("expected MRLs from the racy program")
	}
	mr := core.NewMultiReplayer(img, rep)
	mr.DetectRaces = true
	want, err := mr.Run()
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	before := SequentialFallbacks()
	got, err := ReplayReport(img, rep, ReportOptions{
		Options:     Options{Workers: 8},
		DetectRaces: true,
	})
	if err != nil {
		t.Fatalf("parallel entry: %v", err)
	}
	if SequentialFallbacks() == before {
		t.Error("MRL-carrying report with race detection was not routed sequentially")
	}
	if !reflect.DeepEqual(got.Races, want.Races) {
		t.Errorf("races differ: got %+v want %+v", got.Races, want.Races)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MT report replay differs\n got: %+v\nwant: %+v", got, want)
	}
}

// TestInteriorWindowRejectsFaultExemption pins the InteriorWindow
// semantics the executor depends on: under LogCodeLoads a
// fault-terminated interval may stop one logged fetch short only when it
// really is the recording's final interval. An interior worker replaying
// the same interval as a one-interval window must not grant the
// exemption.
func TestInteriorWindowRejectsFaultExemption(t *testing.T) {
	img, err := asm.Assemble("c.s", crashProgram)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, _ := core.Record(img, kernel.Config{},
		core.Config{IntervalLength: 1 << 20, Cache: tinyCache(), LogCodeLoads: true})
	logs := rep.FLLs[0]
	last := logs[len(logs)-1:]

	r := core.NewReplayer(img, last)
	r.LogCodeLoads = true
	if _, err := r.Run(); err != nil {
		t.Fatalf("final-interval replay should claim the exemption: %v", err)
	}
	r = core.NewReplayer(img, last)
	r.LogCodeLoads = true
	r.InteriorWindow = true
	if _, err := r.Run(); !errors.Is(err, core.ErrDiverged) {
		t.Errorf("interior window claimed the final-interval fetch exemption: err=%v", err)
	}
}

// TestEmptyLogs pins the degenerate inputs.
func TestEmptyLogs(t *testing.T) {
	img, err := asm.Assemble("e.s", sumProgram)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seqThread(img, nil, Options{})
	if err != nil {
		t.Fatalf("sequential empty: %v", err)
	}
	got, err := ReplayThread(img, nil, Options{Workers: 8})
	if err != nil {
		t.Fatalf("parallel empty: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("empty replay differs: got %+v want %+v", got, want)
	}
}
