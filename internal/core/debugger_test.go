package core

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
)

// debugProgram: a crash with an identifiable history — i counts up, each
// value is stored to a slot, the crash dereferences a corrupted pointer.
const debugProgram = `
        .data
slots:  .space 64
ptr:    .word 0
        .text
main:   li   s0, 0
        la   s1, slots
fill:   slli t0, s0, 2
        add  t0, s1, t0
mark:   sw   s0, (t0)
        addi s0, s0, 1
        li   t1, 16
        blt  s0, t1, fill
        la   t2, ptr
        lw   t3, (t2)
boom:   lw   a0, (t3)
`

func newTestDebugger(t *testing.T) (*Debugger, *asm.Image) {
	t.Helper()
	img := asm.MustAssemble("dbg.s", debugProgram)
	res, rep, _ := Record(img, kernel.Config{}, Config{Cache: tinyCache()})
	if res.Crash == nil {
		t.Fatal("program did not crash")
	}
	d, err := NewDebugger(img, rep.FLLs[0])
	if err != nil {
		t.Fatal(err)
	}
	return d, img
}

func TestDebuggerStepAndInspect(t *testing.T) {
	d, img := newTestDebugger(t)
	if d.Pos() != 0 || d.Done() {
		t.Fatal("fresh debugger not at window start")
	}
	if d.PC() != img.Entry {
		t.Fatalf("initial pc = %#x", d.PC())
	}
	reason, err := d.Step(5)
	if err != nil || reason != StopStep {
		t.Fatalf("step: %v, %v", reason, err)
	}
	if d.Pos() != 5 {
		t.Errorf("pos = %d", d.Pos())
	}
}

func TestDebuggerBreakpoint(t *testing.T) {
	d, img := newTestDebugger(t)
	mark := img.MustSymbol("mark")
	d.AddBreak(mark)
	reason, err := d.Continue()
	if err != nil || reason != StopBreak {
		t.Fatalf("continue: %v, %v", reason, err)
	}
	if d.PC() != mark {
		t.Fatalf("stopped at %#x; want %#x", d.PC(), mark)
	}
	// s0 at the first store is 0.
	if got := d.Registers().Regs[isa.RegS0]; got != 0 {
		t.Errorf("s0 at first hit = %d", got)
	}
	// Continue again: second iteration, s0 == 1.
	if _, err := d.Continue(); err != nil {
		t.Fatal(err)
	}
	if got := d.Registers().Regs[isa.RegS0]; got != 1 {
		t.Errorf("s0 at second hit = %d", got)
	}
	if len(d.Breakpoints()) != 1 {
		t.Error("breakpoint list wrong")
	}
	d.ClearBreak(mark)
	if reason, _ := d.Continue(); reason != StopEnd {
		t.Errorf("after clearing: %v", reason)
	}
}

func TestDebuggerRunsToCrash(t *testing.T) {
	d, img := newTestDebugger(t)
	reason, err := d.Continue()
	if err != nil || reason != StopEnd {
		t.Fatalf("continue to end: %v, %v", reason, err)
	}
	if d.Fault() == nil || d.Fault().PC != img.MustSymbol("boom") {
		t.Fatalf("fault = %+v", d.Fault())
	}
	// The corrupt pointer is in t3, visible in the final state.
	if d.Registers().Regs[28] != 0 { // t3
		t.Errorf("t3 = %#x; want 0", d.Registers().Regs[28])
	}
}

func TestDebuggerMemoryKnownness(t *testing.T) {
	d, img := newTestDebugger(t)
	if _, err := d.Continue(); err != nil {
		t.Fatal(err)
	}
	slots := img.MustSymbol("slots")
	// Stored slots are known with the stored values.
	for i := uint32(0); i < 16; i++ {
		v, known := d.ReadWord(slots + i*4)
		if !known || v != i {
			t.Fatalf("slot %d = %d (known %v); want %d", i, v, known, i)
		}
	}
	// An address the window never touched is unknown (paper §7.1).
	if _, known := d.ReadWord(0x30000000); known {
		t.Error("untouched memory reported known")
	}
	// Text is always known (the developer has the binary).
	if _, known := d.ReadWord(img.Entry); !known {
		t.Error("text reported unknown")
	}
}

func TestDebuggerTimeTravel(t *testing.T) {
	d, img := newTestDebugger(t)
	if _, err := d.Continue(); err != nil {
		t.Fatal(err)
	}
	end := d.Pos()
	// Travel back to instruction 10 and confirm the state is reproduced.
	if err := d.Goto(10); err != nil {
		t.Fatal(err)
	}
	if d.Pos() != 10 {
		t.Fatalf("pos = %d; want 10", d.Pos())
	}
	pcAt10 := d.PC()
	regsAt10 := d.Registers()
	// Forward again, then back once more: identical state.
	if err := d.Goto(end); err != nil {
		t.Fatal(err)
	}
	if err := d.Goto(10); err != nil {
		t.Fatal(err)
	}
	if d.PC() != pcAt10 || d.Registers() != regsAt10 {
		t.Error("time travel did not reproduce the state")
	}
	_ = img
}

func TestDebuggerRunTo(t *testing.T) {
	d, img := newTestDebugger(t)
	boom := img.MustSymbol("boom")
	reason, err := d.RunTo(boom)
	if err != nil || reason != StopBreak {
		t.Fatalf("RunTo: %v, %v", reason, err)
	}
	if d.PC() != boom {
		t.Fatalf("pc = %#x", d.PC())
	}
	if len(d.Breakpoints()) != 0 {
		t.Error("temporary breakpoint leaked")
	}
}

func TestDebuggerSymbolsAndDisasm(t *testing.T) {
	d, img := newTestDebugger(t)
	if got := d.SymbolAt(img.MustSymbol("mark")); got != "mark" {
		t.Errorf("SymbolAt(mark) = %q", got)
	}
	if got := d.SymbolAt(img.MustSymbol("mark") + 4); got != "mark+0x4" {
		t.Errorf("SymbolAt(mark+4) = %q", got)
	}
	if got := d.Disasm(img.MustSymbol("boom")); got != "lw a0, 0(t3)" {
		t.Errorf("Disasm(boom) = %q", got)
	}
	if d.Disasm(4) != "<outside text>" {
		t.Error("out-of-text disasm")
	}
	if d.Window() == 0 {
		t.Error("window length zero")
	}
}

// TestDebuggerResetSemantics pins the documented Reset contract: replay
// state (position and the §7.1 known-memory map) is re-derived from
// scratch, while breakpoints — user configuration — survive.
func TestDebuggerResetSemantics(t *testing.T) {
	d, img := newTestDebugger(t)
	mark := img.MustSymbol("mark")
	slots := img.MustSymbol("slots")
	d.AddBreak(mark)

	// Execute past the first stores so slots[0] is known.
	if _, err := d.Continue(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Step(1); err != nil {
		t.Fatal(err)
	}
	if _, known := d.ReadWord(slots); !known {
		t.Fatal("slots[0] should be known after the first store")
	}

	d.Reset()
	if d.Pos() != 0 || d.Done() {
		t.Fatalf("after Reset: pos=%d done=%v", d.Pos(), d.Done())
	}
	// The known map was cleared: the location is unknown again until
	// re-execution touches it.
	if _, known := d.ReadWord(slots); known {
		t.Fatal("Reset must clear the known-memory map")
	}
	// Breakpoints survive: the next Continue stops at mark again, and the
	// re-derived state is identical to the first visit.
	reason, err := d.Continue()
	if err != nil || reason != StopBreak {
		t.Fatalf("continue after Reset: %v, %v", reason, err)
	}
	if d.PC() != mark {
		t.Fatalf("stopped at %#x; want %#x", d.PC(), mark)
	}
	if got := d.Registers().Regs[isa.RegS0]; got != 0 {
		t.Errorf("s0 at first hit after Reset = %d; want 0", got)
	}
	if got := d.Breakpoints(); len(got) != 1 || got[0] != mark {
		t.Errorf("breakpoints after Reset = %v", got)
	}
}
