package core

import (
	"fmt"

	"bugnet/internal/asm"
	"bugnet/internal/kernel"
)

// VerifyReplay replays every thread in the recorder's report and checks,
// instruction by instruction, that the replay reproduces the recorded
// execution: same PCs, same register-file contents. This is the lock-step
// debugging tool DESIGN.md §6 describes; it requires the recorder to have
// run with Config.TraceDepth > 0.
//
// The comparison is tail-aligned: the recorder's trace ring covers the last
// TraceDepth instructions of the whole run, while replay covers only the
// retained window, so the common suffix is what both sides observed.
func VerifyReplay(img *asm.Image, rec *Recorder) error {
	if rec.cfg.TraceDepth <= 0 {
		return fmt.Errorf("core: VerifyReplay needs Config.TraceDepth > 0")
	}
	rep := rec.Report()
	for tid, logs := range rep.FLLs {
		if len(logs) == 0 {
			continue
		}
		r := NewReplayer(img, logs)
		r.TraceDepth = rec.cfg.TraceDepth
		r.LogCodeLoads = rec.cfg.LogCodeLoads
		r.DictOptions = rec.cfg.DictOptions
		res, err := r.Run()
		if err != nil {
			return fmt.Errorf("thread %d: %w", tid, err)
		}
		recTrace := rec.Trace(tid)
		repTrace := res.Trace

		// The recorder's fetch hook fires for the faulting instruction,
		// which never commits and is not replayed; drop it before
		// aligning. A thread that exited by returning to the exit
		// sentinel likewise recorded one fetch at the sentinel address.
		if f := logs[len(logs)-1].Fault; f != nil && len(recTrace) > 0 &&
			recTrace[len(recTrace)-1].PC == f.PC {
			recTrace = recTrace[:len(recTrace)-1]
		}
		if len(recTrace) > 0 && recTrace[len(recTrace)-1].PC == kernel.ExitSentinel {
			recTrace = recTrace[:len(recTrace)-1]
		}

		n := len(recTrace)
		if len(repTrace) < n {
			n = len(repTrace)
		}
		if n == 0 && len(recTrace) != len(repTrace) {
			return fmt.Errorf("thread %d: %w: empty common trace (rec %d, replay %d)",
				tid, ErrDiverged, len(recTrace), len(repTrace))
		}
		for i := 1; i <= n; i++ {
			a := recTrace[len(recTrace)-i]
			b := repTrace[len(repTrace)-i]
			if a != b {
				return fmt.Errorf("thread %d: %w: %d instructions before the end: recorded pc=%#x hash=%#x, replayed pc=%#x hash=%#x",
					tid, ErrDiverged, i, a.PC, a.RegHash, b.PC, b.RegHash)
			}
		}
	}
	return nil
}
