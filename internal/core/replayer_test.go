package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bugnet/internal/asm"
	"bugnet/internal/fll"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
)

// recordAndReplay runs src under the recorder and then replays thread 0,
// failing the test on any divergence.
func recordAndReplay(t *testing.T, src string, kcfg kernel.Config, rcfg Config) (*kernel.Result, *ReplayResult) {
	t.Helper()
	if rcfg.TraceDepth == 0 {
		rcfg.TraceDepth = 1 << 20
	}
	img, err := asm.Assemble("rr.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, rep, rec := Record(img, kcfg, rcfg)
	if err := VerifyReplay(img, rec); err != nil {
		t.Fatalf("verify: %v", err)
	}
	r := NewReplayer(img, rep.FLLs[0])
	r.LogCodeLoads = rcfg.LogCodeLoads
	rr, err := r.Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return res, rr
}

func TestReplaySimpleComputation(t *testing.T) {
	res, rr := recordAndReplay(t, sumProgram, kernel.Config{},
		Config{IntervalLength: 500, Cache: tinyCache()})
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	// The final replayed state holds the sum in a0 at the exit syscall.
	if rr.Final.Regs[isa.RegA0] != 2016 {
		t.Errorf("replayed a0 = %d; want 2016", rr.Final.Regs[isa.RegA0])
	}
	if rr.Instructions != res.Instructions {
		t.Errorf("replayed %d instructions; recorded %d", rr.Instructions, res.Instructions)
	}
}

func TestReplayAcrossSyscalls(t *testing.T) {
	// The program reads input twice and combines it; replay never executes
	// the kernel, yet must reproduce the values via FLL headers and first
	// loads (paper's central claim).
	_, rr := recordAndReplay(t, `
        .data
buf:    .space 8
        .text
main:   li a0, 0
        la a1, buf
        li a2, 4
        li a7, 3          # read "ABCD"
        syscall
        la t0, buf
        lw s0, (t0)       # first load captures kernel-written data
        li a0, 0
        la a1, buf
        li a2, 4
        li a7, 3          # read "EFGH"
        syscall
        lw s1, (t0)
        add a0, s0, s1
        li a7, 1
        syscall
`, kernel.Config{Inputs: map[string][]byte{"stdin": []byte("ABCDEFGH")}},
		Config{Cache: tinyCache()})
	wantS0 := uint32(0x44434241) // "ABCD" little-endian
	wantS1 := uint32(0x48474645) // "EFGH"
	if rr.Final.Regs[isa.RegS0] != wantS0 || rr.Final.Regs[isa.RegS1] != wantS1 {
		t.Errorf("replayed s0=%#x s1=%#x; want %#x %#x",
			rr.Final.Regs[isa.RegS0], rr.Final.Regs[isa.RegS1], wantS0, wantS1)
	}
}

func TestReplayAcrossTimerInterrupts(t *testing.T) {
	res, rr := recordAndReplay(t, sumProgram,
		kernel.Config{TimerInterval: 97},
		Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	if rr.Instructions != res.Instructions {
		t.Errorf("replayed %d != recorded %d", rr.Instructions, res.Instructions)
	}
	if rr.Final.Regs[isa.RegA0] != 2016 {
		t.Errorf("a0 = %d", rr.Final.Regs[isa.RegA0])
	}
	if rr.Intervals < 5 {
		t.Errorf("intervals = %d; timer should have split the run", rr.Intervals)
	}
}

func TestReplayAcrossDMA(t *testing.T) {
	// DMA lands mid-interval; the invalidation path must force re-logging
	// so replay sees the DMA'd data.
	_, rr := recordAndReplay(t, `
        .data
buf:    .space 16
        .text
main:   la  t0, buf
        lw  s0, (t0)      # pre-DMA: 0 (logged)
        li  a0, 0
        la  a1, buf
        li  a2, 16
        li  a7, 10        # dma_read
        syscall
        li  t1, 3000
spin:   addi t1, t1, -1
        bnez t1, spin
        la  t0, buf
        lw  s1, (t0)      # post-DMA: 'WXYZ' (must be re-logged)
        li  a7, 1
        mv  a0, s1
        syscall
`, kernel.Config{
		Inputs:     map[string][]byte{"stdin": []byte("WXYZ0123456789ab")},
		DMALatency: 100,
	}, Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	if rr.Final.Regs[isa.RegS0] != 0 {
		t.Errorf("pre-DMA load = %#x; want 0", rr.Final.Regs[isa.RegS0])
	}
	if want := uint32(0x5A595857); rr.Final.Regs[isa.RegS1] != want { // "WXYZ"
		t.Errorf("post-DMA load = %#x; want %#x", rr.Final.Regs[isa.RegS1], want)
	}
}

func TestReplayToCrash(t *testing.T) {
	img := asm.MustAssemble("c.s", `
        .data
p:      .word 0           # null pointer
        .text
main:   li t0, 50
work:   addi t0, t0, -1
        bnez t0, work
        la t1, p
        lw t2, (t1)       # loads null
deref:  lw a0, (t2)       # crash: null deref
`)
	res, rep, rec := Record(img, kernel.Config{}, Config{Cache: tinyCache(), TraceDepth: 1 << 16})
	if res.Crash == nil {
		t.Fatal("program did not crash")
	}
	if err := VerifyReplay(img, rec); err != nil {
		t.Fatalf("verify: %v", err)
	}
	r := NewReplayer(img, rep.FLLs[0])
	rr, err := r.Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Fault == nil {
		t.Fatal("replay lost the fault record")
	}
	if rr.Fault.PC != img.MustSymbol("deref") {
		t.Errorf("fault PC = %#x; want deref at %#x", rr.Fault.PC, img.MustSymbol("deref"))
	}
	// The replayed final state is the state just before the crash: t2
	// holds the null pointer the developer is looking for.
	if rr.Final.Regs[isa.RegT2] != 0 {
		t.Errorf("replayed t2 = %#x; want 0 (the bad pointer)", rr.Final.Regs[isa.RegT2])
	}
	if rr.Final.PC != rr.Fault.PC {
		t.Errorf("replay stopped at %#x; want fault pc %#x", rr.Final.PC, rr.Fault.PC)
	}
}

func TestReplayPartialWindow(t *testing.T) {
	// With a tight FLL budget the oldest checkpoints are evicted; replay
	// starts at the first retained one and still reaches the same final
	// state.
	img := asm.MustAssemble("w.s", sumProgram)
	res, rep, _ := Record(img, kernel.Config{},
		Config{IntervalLength: 64, Cache: tinyCache(), FLLBudget: 3000})
	logs := rep.FLLs[0]
	if logs[0].CID == 0 {
		t.Skip("budget retained everything; test needs eviction")
	}
	r := NewReplayer(img, logs)
	rr, err := r.Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Final.Regs[isa.RegA0] != 2016 {
		t.Errorf("a0 = %d; want 2016", rr.Final.Regs[isa.RegA0])
	}
	if rr.Instructions >= res.Instructions {
		t.Error("partial window replayed the whole run")
	}
}

func TestReplayPreserveFLBits(t *testing.T) {
	// The paper's future-work extension: FL bits survive interval
	// boundaries. Replay must still be exact.
	res, rr := recordAndReplay(t, `
        .data
buf:    .space 64
        .text
main:   li a0, 0
        la a1, buf
        li a2, 64
        li a7, 3          # read fills buf
        syscall
        la t0, buf
        li t1, 16
        li s0, 0
l1:     lw t2, (t0)
        add s0, s0, t2
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, l1
        li a7, 7          # time syscall: interval boundary
        syscall
        la t0, buf        # re-read same data after the boundary
        li t1, 16
l2:     lw t2, (t0)
        add s0, s0, t2
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, l2
        mv a0, s0
        li a7, 1
        syscall
`, kernel.Config{Inputs: map[string][]byte{"stdin": []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")}},
		Config{Cache: tinyCache(), PreserveFLBits: true})
	if res.Crash != nil {
		t.Fatal("crash")
	}
	if rr.Final.Regs[isa.RegA0] == 0 {
		t.Error("sum came out zero")
	}
}

func TestPreserveFLBitsReducesLogging(t *testing.T) {
	src := `
        .data
buf:    .space 256
        .text
main:   li a0, 0
        la a1, buf
        li a2, 256
        li a7, 3
        syscall
        li s1, 20         # 20 passes, each ending with a time syscall
pass:   la t0, buf
        li t1, 64
lp:     lw t2, (t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, lp
        li a7, 7
        syscall           # interval boundary every pass
        addi s1, s1, -1
        bnez s1, pass
        li a7, 1
        syscall
`
	input := map[string][]byte{"stdin": make([]byte, 256)}
	img := asm.MustAssemble("p.s", src)
	_, _, recBase := Record(img, kernel.Config{Inputs: input}, Config{Cache: tinyCache()})
	_, _, recPres := Record(img, kernel.Config{Inputs: input}, Config{Cache: tinyCache(), PreserveFLBits: true})
	lBase, _ := recBase.LoggedOps()
	lPres, _ := recPres.LoggedOps()
	if lPres*2 > lBase {
		t.Errorf("PreserveFLBits logged %d vs baseline %d; expected large reduction", lPres, lBase)
	}
	// And it must still replay exactly.
	rep := recPres.Report()
	r := NewReplayer(img, rep.FLLs[0])
	if _, err := r.Run(); err != nil {
		t.Fatalf("preserve-FL replay: %v", err)
	}
}

func TestReplaySelfModifyingCodeWithExtension(t *testing.T) {
	// The program overwrites an addi with its encoded replacement, turning
	// a +1 into +2. Base BugNet cannot replay this; the LogCodeLoads
	// extension can (paper §5.3).
	src := `
        .text
main:   la   t0, patch
        lw   t1, (t0)     # read replacement instruction word
        la   t2, target
        sw   t1, (t2)     # self-modify
target: addi a0, a0, 1    # becomes addi a0, a0, 2
        li   a7, 1
        syscall
        .data
patch:  .word 0x494a0002  # addi a0, a0, 2
`
	img := asm.MustAssemble("smc.s", src)
	// Verify the patch constant matches the real encoding (guards against
	// encoding drift).
	want := isa.MustEncode(isa.Instruction{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 2})
	if got := uint32(0x494a0002); got != want {
		t.Fatalf("patch constant %#x stale; encoding is %#x — update the source", got, want)
	}

	res, rep, _ := Record(img, kernel.Config{}, Config{Cache: tinyCache(), LogCodeLoads: true})
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if res.ExitCode != 2 {
		t.Fatalf("exit = %d; want 2 (the patched increment)", res.ExitCode)
	}
	r := NewReplayer(img, rep.FLLs[0])
	r.LogCodeLoads = true
	rr, err := r.Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Final.Regs[isa.RegA0] != 2 {
		t.Errorf("replayed a0 = %d; want 2", rr.Final.Regs[isa.RegA0])
	}
}

func TestReplayDetectsTamperedLog(t *testing.T) {
	img := asm.MustAssemble("t.s", sumProgram)
	_, rep, _ := Record(img, kernel.Config{}, Config{Cache: tinyCache()})
	logs := rep.FLLs[0]
	// Corrupt the instruction count of the first log (tamper the decoded
	// object and re-wrap it, so the mutation actually reaches replay — a
	// lazy view's metadata is display-only).
	l0, err := logs[0].Open()
	if err != nil {
		t.Fatal(err)
	}
	tampered := *l0
	tampered.Length += 3
	logs[0] = fll.NewRef(&tampered)
	r := NewReplayer(img, logs)
	if _, err := r.Run(); err == nil {
		t.Error("replay of tampered log succeeded; want divergence error")
	}
}

// TestPropertyRandomProgramsReplayExactly generates random (but safe)
// straight-line programs over a scratch buffer and checks record/replay
// equivalence of final architectural state.
func TestPropertyRandomProgramsReplayExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng)
		img, err := asm.Assemble("rand.s", src)
		if err != nil {
			t.Logf("assemble: %v\n%s", err, src)
			return false
		}
		kcfg := kernel.Config{
			TimerInterval: uint64(50 + rng.Intn(400)),
			Inputs:        map[string][]byte{"stdin": randomBytes(rng, 128)},
		}
		rcfg := Config{
			IntervalLength: uint64(100 + rng.Intn(2000)),
			DictSize:       []int{8, 64, 256}[rng.Intn(3)],
			Cache:          tinyCache(),
			TraceDepth:     1 << 18,
			PreserveFLBits: rng.Intn(2) == 0,
		}
		res, rep, rec := Record(img, kcfg, rcfg)
		if res.Crash != nil {
			t.Logf("unexpected crash: %v\n%s", res.Crash, src)
			return false
		}
		if err := VerifyReplay(img, rec); err != nil {
			t.Logf("verify: %v (seed %d)", err, seed)
			return false
		}
		r := NewReplayer(img, rep.FLLs[0])
		rr, err := r.Run()
		if err != nil {
			t.Logf("replay: %v", err)
			return false
		}
		return rr.Instructions == res.Instructions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// randomProgram emits a loop that performs random arithmetic and scratch
// loads/stores plus occasional syscalls, always terminating cleanly.
func randomProgram(rng *rand.Rand) string {
	var b []byte
	add := func(s string) { b = append(b, s...); b = append(b, '\n') }
	add("        .data")
	add("scratch: .space 512")
	add("        .text")
	add("main:   la s0, scratch")
	add("        li s1, " + itoa(20+rng.Intn(60))) // outer iterations
	add("outer:")
	n := 3 + rng.Intn(12)
	for i := 0; i < n; i++ {
		off := rng.Intn(127) * 4
		switch rng.Intn(7) {
		case 0:
			add("        lw t0, " + itoa(off) + "(s0)")
		case 1:
			add("        sw t1, " + itoa(off) + "(s0)")
		case 2:
			add("        lb t2, " + itoa(rng.Intn(508)) + "(s0)")
		case 3:
			add("        sb t0, " + itoa(rng.Intn(508)) + "(s0)")
		case 4:
			add("        add t1, t1, t0")
			add("        xori t1, t1, " + itoa(rng.Intn(4096)))
		case 5:
			add("        sh t1, " + itoa(rng.Intn(250)*2) + "(s0)")
		case 6:
			add("        li a7, 7") // time syscall: interval churn
			add("        syscall")
			add("        add t0, t0, a0")
		}
	}
	add("        addi s1, s1, -1")
	add("        bnez s1, outer")
	add("        li a7, 1")
	add("        mv a0, t1")
	add("        syscall")
	return string(b)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func randomBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestReplayReportsInjectionCount(t *testing.T) {
	_, rr := recordAndReplay(t, `
        .data
tbl:    .word 5, 6, 7, 8
        .text
main:   la t0, tbl
        lw a0, (t0)
        lw a1, 4(t0)
        lw a2, 8(t0)
        lw a3, 12(t0)
        lw a4, (t0)       # second load: not injected
        li a7, 1
        syscall
`, kernel.Config{}, Config{Cache: tinyCache()})
	if rr.Injected != 4 {
		t.Errorf("injected = %d; want 4 first loads", rr.Injected)
	}
	if rr.Final.Regs[isa.RegA4] != 5 {
		t.Errorf("regenerated load = %d; want 5", rr.Final.Regs[isa.RegA4])
	}
}

var _ = fll.EndExit // used in sibling test files
