package core

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/cache"
	"bugnet/internal/fll"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
)

// tinyCache keeps tests fast and eviction paths hot.
func tinyCache() cache.Config {
	return cache.Config{
		L1: cache.LevelConfig{SizeBytes: 1 << 10, BlockBytes: 32, Assoc: 2},
		L2: cache.LevelConfig{SizeBytes: 8 << 10, BlockBytes: 32, Assoc: 4},
	}
}

func record(t *testing.T, src string, kcfg kernel.Config, rcfg Config) (*kernel.Result, *CrashReport, *Recorder, *asm.Image) {
	t.Helper()
	img, err := asm.Assemble("rec.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, rep, rec := Record(img, kcfg, rcfg)
	return res, rep, rec, img
}

const sumProgram = `
        .data
arr:    .space 256
        .text
main:   la   t0, arr
        li   t1, 0          # i
        li   t2, 64
init:   slli t3, t1, 2
        add  t3, t0, t3
        sw   t1, (t3)
        addi t1, t1, 1
        blt  t1, t2, init
        li   t1, 0
        li   a0, 0
sum:    slli t3, t1, 2
        add  t3, t0, t3
        lw   t4, (t3)
        add  a0, a0, t4
        addi t1, t1, 1
        blt  t1, t2, sum
        li   a7, 1          # exit(sum)
        syscall
`

func TestRecordBasicCounts(t *testing.T) {
	res, rep, rec, _ := record(t, sumProgram, kernel.Config{},
		Config{IntervalLength: 1000, DictSize: 64, Cache: tinyCache()})
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if res.ExitCode != 2016 { // sum 0..63
		t.Fatalf("exit = %d", res.ExitCode)
	}
	logs := rep.FLLs[0]
	if len(logs) == 0 {
		t.Fatal("no FLLs recorded")
	}
	// All stores first (first-load bits set by stores), so the sum loop's
	// loads must NOT be logged: first access to every array word was the
	// sw, within one interval. With interval 1000 the whole run fits one
	// or two intervals.
	var totalLen uint64
	for _, l := range logs {
		totalLen += l.Length
	}
	if totalLen != res.Instructions {
		t.Errorf("FLL lengths sum %d != %d instructions", totalLen, res.Instructions)
	}
	logged, total := rec.LoggedOps()
	if total == 0 {
		t.Fatal("no loggable ops observed")
	}
	if logged*2 > total {
		t.Errorf("first-load filter logged %d of %d ops; expected < half for store-then-load", logged, total)
	}
	// Final log ends at the exit syscall.
	last := logs[len(logs)-1]
	if last.End != fll.EndSyscall {
		t.Errorf("last interval end = %v", last.End)
	}
}

func TestIntervalRotation(t *testing.T) {
	_, rep, _, _ := record(t, sumProgram, kernel.Config{},
		Config{IntervalLength: 100, DictSize: 64, Cache: tinyCache()})
	logs := rep.FLLs[0]
	if len(logs) < 4 {
		t.Fatalf("expected several intervals at length 100; got %d", len(logs))
	}
	var full int
	for i, l := range logs {
		if l.CID != uint32(i) {
			t.Errorf("log %d has CID %d; want sequential", i, l.CID)
		}
		if l.End == fll.EndIntervalFull {
			full++
			if l.Length < 100 {
				t.Errorf("full interval length %d < limit", l.Length)
			}
		}
	}
	if full == 0 {
		t.Error("no interval terminated by the length limit")
	}
	// Headers must chain: each interval's state PC is a real text address.
	for _, l := range logs {
		if l.State.PC < 0x400000 {
			t.Errorf("header PC %#x outside text", l.State.PC)
		}
	}
}

func TestSyscallTerminatesInterval(t *testing.T) {
	_, rep, _, _ := record(t, `
main:   li a7, 7          # SysTime
        syscall
        li a7, 7
        syscall
        li a0, 0
        li a7, 1
        syscall
`, kernel.Config{}, Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	logs := rep.FLLs[0]
	if len(logs) != 3 {
		t.Fatalf("intervals = %d; want 3 (one per syscall)", len(logs))
	}
	if logs[0].End != fll.EndSyscall || logs[1].End != fll.EndSyscall {
		t.Errorf("ends = %v, %v", logs[0].End, logs[1].End)
	}
}

func TestTimerTerminatesInterval(t *testing.T) {
	_, rep, _, _ := record(t, `
main:   li t0, 2000
loop:   addi t0, t0, -1
        bnez t0, loop
        li a7, 1
        syscall
`, kernel.Config{TimerInterval: 500}, Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	logs := rep.FLLs[0]
	timer := 0
	for _, l := range logs {
		if l.End == fll.EndTimer {
			timer++
		}
	}
	if timer < 5 {
		t.Errorf("timer-terminated intervals = %d; want ≥5", timer)
	}
}

func TestCrashProducesFaultFooter(t *testing.T) {
	res, rep, _, _ := record(t, `
main:   li t0, 10
loop:   addi t0, t0, -1
        bnez t0, loop
        lw a0, (zero)     # crash
`, kernel.Config{}, Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	if res.Crash == nil {
		t.Fatal("no crash")
	}
	logs := rep.FLLs[0]
	last := logs[len(logs)-1]
	if last.End != fll.EndFault || last.Fault == nil {
		t.Fatalf("last log end=%v fault=%+v", last.End, last.Fault)
	}
	if last.Fault.PC != res.Crash.Fault.PC {
		t.Errorf("fault PC %#x != crash PC %#x", last.Fault.PC, res.Crash.Fault.PC)
	}
	if last.Fault.IC != last.Length {
		t.Errorf("fault IC %d != interval length %d", last.Fault.IC, last.Length)
	}
}

func TestFirstLoadFilterLogsExternalInput(t *testing.T) {
	// Data arriving via read() is captured by first loads in the interval
	// after the syscall, not by logging the syscall itself.
	_, rep, rec, _ := record(t, `
        .data
buf:    .space 64
        .text
main:   li a0, 0
        la a1, buf
        li a2, 64
        li a7, 3          # read
        syscall
        la t0, buf
        li t1, 0
        li t2, 16
rd:     lw t3, (t0)
        add t1, t1, t3
        addi t0, t0, 4
        addi t2, t2, -1
        bnez t2, rd
        li a7, 1
        mv a0, t1
        syscall
`, kernel.Config{Inputs: map[string][]byte{"stdin": make([]byte, 64)}},
		Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	logged, _ := rec.LoggedOps()
	if logged < 16 {
		t.Errorf("logged ops = %d; the 16 post-read loads must all be first loads", logged)
	}
	if len(rep.FLLs[0]) < 2 {
		t.Error("read syscall should have split the run into ≥2 intervals")
	}
}

func TestReportShapes(t *testing.T) {
	_, rep, _, _ := record(t, sumProgram, kernel.Config{}, Config{Cache: tinyCache()})
	if len(rep.FLLs) != 1 {
		t.Errorf("threads with FLLs = %d", len(rep.FLLs))
	}
	if len(rep.MRLs) != 0 {
		t.Errorf("uniprocessor run produced MRLs: %d", len(rep.MRLs))
	}
	if rep.Crash != nil {
		t.Error("unexpected crash")
	}
}

func TestWindowEvictionUnderBudget(t *testing.T) {
	_, rep, rec, _ := record(t, sumProgram, kernel.Config{},
		Config{IntervalLength: 50, Cache: tinyCache(), FLLBudget: 2000})
	st := rec.FLLStore().Stats()
	if st.EvictedCount == 0 {
		t.Fatal("budget produced no evictions")
	}
	if st.RetainedBytes > 2000 && st.RetainedCount > 1 {
		t.Errorf("retained %d bytes over budget", st.RetainedBytes)
	}
	// The replay window shrank accordingly: the retained logs are a
	// contiguous suffix of the CID sequence.
	logs := rep.FLLs[0]
	for i := 1; i < len(logs); i++ {
		if logs[i].CID != logs[i-1].CID+1 {
			t.Error("retained window is not contiguous")
		}
	}
	if logs[0].CID == 0 {
		t.Error("oldest checkpoint should have been evicted")
	}
}

func TestMaxThreadsDefaultsToCores(t *testing.T) {
	img := asm.MustAssemble("t.s", "main: li a7, 1\nsyscall\n")
	m := kernel.New(img, kernel.Config{Cores: 3}, nil)
	rec := NewRecorder(m, Config{Cache: tinyCache()})
	if rec.Config().MaxThreads != 3 {
		t.Errorf("MaxThreads = %d", rec.Config().MaxThreads)
	}
	m.Run()
}

func TestDictStatsExposed(t *testing.T) {
	// Loads of never-stored data are first loads, so they reach the
	// dictionary lookup on the logging path.
	_, _, rec, _ := record(t, `
        .data
tbl:    .word 1, 1, 1, 2, 2, 1, 1, 3
        .text
main:   la t0, tbl
        li t1, 8
        li a0, 0
loop:   lw t2, (t0)
        add a0, a0, t2
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, loop
        li a7, 1
        syscall
`, kernel.Config{}, Config{Cache: tinyCache()})
	ds := rec.DictStats(0)
	if ds.Lookups < 8 {
		t.Errorf("dictionary lookups = %d; want ≥8 (one per logged load)", ds.Lookups)
	}
	if ds.Hits == 0 {
		t.Error("repeated value 1 never hit the dictionary")
	}
	cs := rec.CacheStats(0)
	if cs.L1Hits+cs.L1Misses == 0 {
		t.Error("cache saw no accesses")
	}
	if isa.NumRegs != 32 {
		t.Error("sanity")
	}
}
