package core

import (
	"fmt"
	"hash/crc32"

	"bugnet/internal/asm"
	"bugnet/internal/cache"
	"bugnet/internal/coherence"
	"bugnet/internal/cpu"
	"bugnet/internal/dict"
	"bugnet/internal/fll"
	"bugnet/internal/kernel"
	"bugnet/internal/logstore"
	"bugnet/internal/mrl"
)

// Recorder is the BugNet hardware model. It implements kernel.Hooks and
// installs per-CPU hooks on every thread the machine starts; everything it
// produces lands in the two memory-backed log stores.
type Recorder struct {
	cfg Config
	m   *kernel.Machine

	threads []*threadRec
	dir     *coherence.Directory // nil on uniprocessors
	red     *mrl.Reducer

	flls *logstore.Store
	mrls *logstore.Store

	// loggedOps / totalOps give the first-load filter rate for the
	// experiment harness. exportedLogged/exportedTotal are the watermarks
	// already published to the process metrics (see exportCounters).
	loggedOps      uint64
	totalOps       uint64
	exportedLogged uint64
	exportedTotal  uint64

	// fllMeta/mrlMeta cache the finalized metadata of the *retained*
	// intervals, keyed by store sequence number, so Report can hand out
	// lazy views without re-reading the whole window from the backend.
	// Seq keys cannot collide — unlike the (TID, CID) pairs of a store
	// that recovered an earlier run's items — so the cache is always
	// maintained; recovered items simply miss it and re-parse from their
	// bytes. After every commit the caches are pruned against the stores'
	// eviction frontier (OldestLiveSeq), so recorder memory stays bounded
	// by the region budget even under continuous recording.
	fllMeta   map[uint64]fll.Meta
	mrlMeta   map[uint64]mrl.Meta
	fllPruned uint64 // seqs below this are already pruned
	mrlPruned uint64

	// Staged appends: finalized intervals accumulate here and commit in
	// one AppendBatch per store, so multi-thread flushes and crash
	// collections pay one lock acquisition and one eviction pass.
	fllPend     []logstore.AppendEntry
	mrlPend     []logstore.AppendEntry
	fllPendMeta []fll.Meta
	mrlPendMeta []mrl.Meta

	// err is the first report-assembly failure (an interval that no longer
	// loads back from its store); see Err.
	err error
}

// threadRec is the per-processor recording state: the structures of the
// paper's Figure 1 that exist once per core.
type threadRec struct {
	tid     int
	c       *cpu.CPU
	cache   *cache.Hierarchy
	dict    *dict.Table
	cid     uint32
	nextCID uint32
	startIC uint64
	w       *fll.Writer
	mw      *mrl.Writer
	// wPool/mwPool recycle the writers (and their grown encode buffers)
	// across intervals, so the steady-state wire path stops re-allocating
	// entry buffers once per interval.
	wPool   *fll.Writer
	mwPool  *mrl.Writer
	trace   *traceRing
	started bool

	// bus-model sampling state
	prevBits   uint64
	prevMisses uint64
}

// NewRecorder attaches a BugNet recorder to the machine. It must be called
// before machine.Run.
func NewRecorder(m *kernel.Machine, cfg Config) *Recorder {
	cfg.fillDefaults()
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = len(m.Threads)
	}
	r := &Recorder{
		cfg:     cfg,
		m:       m,
		threads: make([]*threadRec, len(m.Threads)),
		flls:    cfg.FLLStore,
		mrls:    cfg.MRLStore,
	}
	if r.flls == nil {
		r.flls = logstore.New(cfg.FLLBudget)
	}
	if r.mrls == nil {
		r.mrls = logstore.New(cfg.MRLBudget)
	}
	r.flls.Instrument("fll")
	r.mrls.Instrument("mrl")
	r.fllMeta = make(map[uint64]fll.Meta)
	r.mrlMeta = make(map[uint64]mrl.Meta)
	r.fllPruned = r.flls.OldestLiveSeq()
	r.mrlPruned = r.mrls.OldestLiveSeq()
	if len(m.Threads) > 1 {
		r.dir = coherence.New(len(m.Threads), cfg.Cache.L1.BlockBytes)
		r.red = mrl.NewReducer(len(m.Threads))
	}
	m.SetHooks(r)
	// Attaching to a running machine (recording starts mid-execution, as
	// continuous recording does after a warm-up): treat every live thread
	// as newly started.
	if m.Started() {
		for _, th := range m.Threads {
			if th.State == kernel.ThreadRunnable {
				r.OnThreadStart(th.ID)
			}
		}
	}
	return r
}

// Flush finalizes all open checkpoint intervals. Call it when recording
// ends without a fault or exit (for example when an experiment's step
// budget expires) so the final partial intervals land in the log stores.
//
// Flush is idempotent: finalizing closes each thread's writer, and
// staging refuses threads with no open writer, so a second Flush (or a
// Flush after a fault already collected the logs) appends nothing — no
// empty duplicate intervals reach the stores.
func (r *Recorder) Flush() {
	for _, t := range r.threads {
		r.stageInterval(t, fll.EndExit, nil)
	}
	r.commit()
}

// Err returns the first log-store failure recording swallowed (a disk
// spill that could not be written or reclaimed). The hardware hooks have
// no error path, so recording keeps going — tools must check Err before
// trusting the retained window.
func (r *Recorder) Err() error {
	if err := r.err; err != nil {
		return err
	}
	if err := r.flls.Err(); err != nil {
		return err
	}
	return r.mrls.Err()
}

// Config returns the recorder's effective configuration.
func (r *Recorder) Config() Config { return r.cfg }

// FLLStore returns the First-Load Log store (the CB's memory region).
func (r *Recorder) FLLStore() *logstore.Store { return r.flls }

// MRLStore returns the Memory Race Log store (the MRB's memory region).
func (r *Recorder) MRLStore() *logstore.Store { return r.mrls }

// LoggedOps returns (logged, total) loggable-operation counts: the
// effectiveness of the first-load filter (paper §4.3).
func (r *Recorder) LoggedOps() (logged, total uint64) { return r.loggedOps, r.totalOps }

// CacheStats returns the cache event counters of one thread's hierarchy.
func (r *Recorder) CacheStats(tid int) cache.Stats {
	if t := r.threads[tid]; t != nil {
		return t.cache.Stats()
	}
	return cache.Stats{}
}

// DictStats returns the dictionary hit statistics of one thread.
func (r *Recorder) DictStats(tid int) dict.Stats {
	if t := r.threads[tid]; t != nil {
		return t.dict.Stats()
	}
	return dict.Stats{}
}

// Trace returns the verification trace of a thread (oldest first), empty
// unless Config.TraceDepth was set.
func (r *Recorder) Trace(tid int) []TraceEntry {
	if t := r.threads[tid]; t != nil && t.trace != nil {
		return t.trace.entries()
	}
	return nil
}

// --- kernel.Hooks implementation ---

// OnThreadStart builds the per-core recording state and begins the first
// checkpoint interval.
func (r *Recorder) OnThreadStart(tid int) {
	t := &threadRec{
		tid:   tid,
		c:     r.m.Threads[tid].CPU,
		cache: cache.New(r.cfg.Cache),
		dict:  dict.NewWithOptions(r.cfg.DictSize, r.cfg.DictOptions),
	}
	r.threads[tid] = t
	t.c.OnLoggable = func(wordAddr uint32, isWrite bool) { r.loggable(t, wordAddr, isWrite) }
	t.c.OnWordStore = func(wordAddr uint32) { r.wordStore(t, wordAddr) }
	if r.cfg.TraceDepth > 0 {
		t.trace = newTraceRing(r.cfg.TraceDepth)
	}
	if t.trace != nil || r.cfg.LogCodeLoads || r.cfg.Bus != nil {
		t.c.OnFetch = func(pc uint32) { r.fetch(t, pc) }
	}
	t.started = true
	r.startInterval(t)
}

// OnInterrupt terminates the thread's checkpoint interval before the
// kernel runs (paper §4.4: "prematurely terminating the current checkpoint
// interval on encountering an interrupt").
func (r *Recorder) OnInterrupt(tid int, kind kernel.InterruptKind) {
	end := fll.EndTimer
	if kind == kernel.IntSyscall {
		end = fll.EndSyscall
	}
	r.endInterval(r.threads[tid], end, nil)
}

// OnInterruptReturn starts a fresh interval when control returns to user
// code, capturing the post-interrupt architectural state in the header.
func (r *Recorder) OnInterruptReturn(tid int) {
	r.startInterval(r.threads[tid])
}

// OnKernelWrite invalidates cached copies (and their first-load bits) of
// memory the kernel wrote, so the new values are logged on next load
// (paper §4.5).
func (r *Recorder) OnKernelWrite(tid int, addr uint32, n uint32) {
	r.externalWrite(addr, n)
}

// OnDMAWrite handles asynchronous DMA completions the same way: the
// directory-based protocol invalidates cached blocks, resetting FL bits
// (paper §4.5).
func (r *Recorder) OnDMAWrite(addr uint32, n uint32) {
	r.externalWrite(addr, n)
}

// OnKernelPreWrite and OnDMAPreWrite are pre-image hooks for undo-logging
// recorders; BugNet needs nothing before the write happens.
func (r *Recorder) OnKernelPreWrite(tid int, addr uint32, n uint32) {}

// OnDMAPreWrite implements kernel.Hooks.
func (r *Recorder) OnDMAPreWrite(addr uint32, n uint32) {}

func (r *Recorder) externalWrite(addr, n uint32) {
	for _, t := range r.threads {
		if t != nil {
			t.cache.InvalidateRange(addr, n)
		}
	}
	if r.dir != nil {
		r.dir.ExternalWriteRange(addr, n)
	}
}

// OnThreadExit finalizes the thread's last interval.
func (r *Recorder) OnThreadExit(tid int) {
	r.endInterval(r.threads[tid], fll.EndExit, nil)
}

// OnFault is the crash path (paper §4.8): the OS records the interval
// instruction count and faulting PC in the current FLL, then collects all
// logs. Other threads' intervals are finalized so the whole window stays
// replayable.
func (r *Recorder) OnFault(tid int, f *cpu.FaultInfo) {
	t := r.threads[tid]
	rec := &fll.FaultRecord{
		IC:    t.c.IC - t.startIC,
		PC:    f.PC,
		Cause: uint8(f.Cause),
	}
	r.stageInterval(t, fll.EndFault, rec)
	for _, o := range r.threads {
		if o != nil && o != t {
			r.stageInterval(o, fll.EndExit, nil)
		}
	}
	mRecordFaults.Inc()
	r.commit()
}

// --- per-CPU hooks ---

// loggable implements the first-load logging decision for one loggable
// memory operation (paper §4.3).
func (r *Recorder) loggable(t *threadRec, wordAddr uint32, isWrite bool) {
	r.maybeRotate(t)
	if r.dir != nil {
		if isWrite {
			r.replies(t, wordAddr, r.dir.Store(t.tid, wordAddr), true)
		} else {
			r.replies(t, wordAddr, r.dir.Load(t.tid, wordAddr), false)
		}
	}
	wasSet := t.cache.LoadTestAndSetFL(wordAddr)
	val, err := r.m.Mem.LoadWord(wordAddr)
	if err != nil {
		// The CPU validated the access before the hook; this is a bug.
		panic(fmt.Sprintf("core: recorder read of validated word %#x failed: %v", wordAddr, err))
	}
	t.w.Op(val, !wasSet)
	r.totalOps++
	if !wasSet {
		r.loggedOps++
	}
	r.feedBus(t)
}

// wordStore implements the store rule: set the first-load bit, log nothing
// (paper §4.3: "the stores will be generated by the execution of
// instructions during replay").
func (r *Recorder) wordStore(t *threadRec, wordAddr uint32) {
	r.maybeRotate(t)
	if r.dir != nil {
		r.replies(t, wordAddr, r.dir.Store(t.tid, wordAddr), true)
	}
	t.cache.StoreSetFL(wordAddr)
	r.feedBus(t)
}

// feedBus forwards newly produced log bits and demand misses to the bus
// overhead model.
func (r *Recorder) feedBus(t *threadRec) {
	if r.cfg.Bus == nil {
		return
	}
	if t.w != nil {
		if bits := t.w.Bits(); bits > t.prevBits {
			r.cfg.Bus.LogBits(bits - t.prevBits)
			t.prevBits = bits
		}
	}
	if misses := t.cache.Stats().L2Misses; misses > t.prevMisses {
		for i := t.prevMisses; i < misses; i++ {
			r.cfg.Bus.Miss()
		}
		t.prevMisses = misses
	}
}

// fetch handles the OnFetch hook: verification tracing and, under the
// LogCodeLoads extension, first-load logging of instruction words.
func (r *Recorder) fetch(t *threadRec, pc uint32) {
	if r.cfg.Bus != nil {
		r.cfg.Bus.Instruction()
	}
	if t.trace != nil {
		t.trace.push(TraceEntry{PC: pc, RegHash: hashRegs(&t.c.Regs)})
	}
	if r.cfg.LogCodeLoads {
		wordAddr := pc &^ 3
		if !r.m.Mem.Mapped(wordAddr) {
			return // the fetch is about to fault; nothing to log
		}
		r.maybeRotate(t)
		wasSet := t.cache.LoadTestAndSetFL(wordAddr)
		val, _ := r.m.Mem.LoadWord(wordAddr)
		t.w.Op(val, !wasSet)
		r.totalOps++
		if !wasSet {
			r.loggedOps++
		}
	}
}

// replies processes coherence replies for an operation: writes invalidate
// the remote copies (clearing their FL bits, §4.6), and every reply
// carries remote state recorded as an MRL entry unless Netzer reduction
// proves it redundant (§4.6.3).
func (r *Recorder) replies(t *threadRec, addr uint32, remotes []int, isWrite bool) {
	for _, rt := range remotes {
		o := r.threads[rt]
		if o == nil {
			continue
		}
		if isWrite {
			o.cache.InvalidateBlock(addr)
		}
		if !r.cfg.DisableNetzer && !r.red.Observe(t.tid, t.c.IC, rt, o.c.IC) {
			continue
		}
		t.mw.Add(mrl.Entry{
			LocalIC:   t.c.IC - t.startIC,
			RemoteTID: uint32(rt),
			RemoteCID: o.cid,
			RemoteIC:  o.c.IC - o.startIC,
		})
	}
}

// --- interval lifecycle ---

// maybeRotate ends the interval at the configured length. The check sits
// on the loggable-operation path, so an interval may exceed the limit by
// the length of an operation-free instruction stretch; the recorded Length
// is always exact, so replay is unaffected.
func (r *Recorder) maybeRotate(t *threadRec) {
	if t.c.IC-t.startIC >= r.cfg.IntervalLength {
		r.endInterval(t, fll.EndIntervalFull, nil)
		r.startInterval(t)
	}
}

// startInterval creates a new checkpoint: assign a C-ID, snapshot the
// architectural state into a fresh FLL header, clear FL bits (unless the
// PreserveFLBits extension is on), empty the dictionary, and open the
// paired MRL (paper §4.2, §4.6.3).
func (r *Recorder) startInterval(t *threadRec) {
	t.cid = t.nextCID
	t.nextCID++
	t.startIC = t.c.IC
	t.dict.Reset()
	if !r.cfg.PreserveFLBits {
		t.cache.ClearAllFL()
	}
	hdr := fll.Header{
		PID:           r.cfg.PID,
		TID:           uint32(t.tid),
		CID:           t.cid,
		Timestamp:     r.m.Now(),
		IntervalLimit: r.cfg.IntervalLength,
		DictSize:      uint32(r.cfg.DictSize),
		State:         t.c.State(),
	}
	if t.wPool != nil {
		t.w, t.wPool = t.wPool, nil
		t.w.Reset(hdr, t.dict)
	} else {
		t.w = fll.NewWriter(hdr, t.dict)
	}
	t.prevBits = 0
	if r.cfg.Bus != nil {
		r.cfg.Bus.LogBits(fll.HeaderBytes * 8)
	}
	if r.dir != nil {
		mh := mrl.Header{
			PID: r.cfg.PID, TID: uint32(t.tid), CID: t.cid, Timestamp: hdr.Timestamp,
		}
		if t.mwPool != nil {
			t.mw, t.mwPool = t.mwPool, nil
			t.mw.Reset(mh, r.cfg.IntervalLength, uint32(r.cfg.MaxThreads))
		} else {
			t.mw = mrl.NewWriter(mh, r.cfg.IntervalLength, uint32(r.cfg.MaxThreads))
		}
	}
}

// endInterval finalizes the thread's current FLL (and MRL) straight to
// their wire encodings and retains the bytes in the log stores. Nothing
// decoded outlives the interval: replay re-materializes a log on demand
// through the lazy views Report hands out.
func (r *Recorder) endInterval(t *threadRec, end fll.EndKind, fault *fll.FaultRecord) {
	r.stageInterval(t, end, fault)
	r.commit()
}

// stageInterval closes the thread's writers and stages the encoded
// interval for the next commit. Multi-thread paths (Flush, the crash
// collection) stage every thread first and commit once, batching the
// store appends.
func (r *Recorder) stageInterval(t *threadRec, end fll.EndKind, fault *fll.FaultRecord) {
	if t == nil || t.w == nil {
		return
	}
	length := t.c.IC - t.startIC
	meta, data := t.w.CloseEncoded(length, end, fault)
	t.wPool, t.w = t.w, nil
	r.fllPend = append(r.fllPend, logstore.AppendEntry{
		Item: logstore.Item{
			TID:          t.tid,
			CID:          t.cid,
			Timestamp:    meta.Timestamp,
			Bytes:        meta.SizeBytes(),
			Instructions: length,
		},
		Data: data,
	})
	r.fllPendMeta = append(r.fllPendMeta, meta)
	if t.mw != nil {
		mm, mdata := t.mw.CloseEncoded()
		t.mwPool, t.mw = t.mw, nil
		r.mrlPend = append(r.mrlPend, logstore.AppendEntry{
			Item: logstore.Item{
				TID:       t.tid,
				CID:       t.cid,
				Timestamp: mm.Timestamp,
				Bytes:     mm.SizeBytes(),
			},
			Data: mdata,
		})
		r.mrlPendMeta = append(r.mrlPendMeta, mm)
	}
}

// commit appends all staged intervals, one batch per store, records their
// metadata under the assigned sequence numbers, and prunes cache entries
// for everything the stores have evicted. Store failures are sticky and
// surface through Err, exactly as on the unbatched path.
func (r *Recorder) commit() {
	r.exportCounters()
	if len(r.fllPend) > 0 {
		n, _ := r.flls.AppendBatch(r.fllPend)
		for i := 0; i < n; i++ {
			r.fllMeta[r.fllPend[i].Item.Seq] = r.fllPendMeta[i]
		}
		r.fllPend = r.fllPend[:0]
		r.fllPendMeta = r.fllPendMeta[:0]
		for oldest := r.flls.OldestLiveSeq(); r.fllPruned < oldest; r.fllPruned++ {
			delete(r.fllMeta, r.fllPruned)
		}
	}
	if len(r.mrlPend) > 0 {
		n, _ := r.mrls.AppendBatch(r.mrlPend)
		for i := 0; i < n; i++ {
			r.mrlMeta[r.mrlPend[i].Item.Seq] = r.mrlPendMeta[i]
		}
		r.mrlPend = r.mrlPend[:0]
		r.mrlPendMeta = r.mrlPendMeta[:0]
		for oldest := r.mrls.OldestLiveSeq(); r.mrlPruned < oldest; r.mrlPruned++ {
			delete(r.mrlMeta, r.mrlPruned)
		}
	}
}

// --- results ---

// BinaryID identifies the exact program a report was recorded from.
// Replay requires the same binaries loaded at the same addresses (paper
// §5.1, §5.3: the "binary starting address log"); checking the id catches
// version skew before a confusing divergence error does.
type BinaryID struct {
	Name     string
	TextBase uint32
	Entry    uint32
	TextLen  uint32
	TextCRC  uint32
}

// IdentifyBinary computes the id of an image.
func IdentifyBinary(img *asm.Image) BinaryID {
	return BinaryID{
		Name:     img.Name,
		TextBase: img.TextBase,
		Entry:    img.Entry,
		TextLen:  uint32(len(img.Text)),
		TextCRC:  crc32.ChecksumIEEE(img.Text),
	}
}

// Matches reports whether img is the binary this id was recorded from.
func (b BinaryID) Matches(img *asm.Image) error {
	got := IdentifyBinary(img)
	got.Name = b.Name // names may differ (paths); identity is content
	if got != b {
		return fmt.Errorf("core: binary mismatch: report recorded from %q (text %d bytes, crc %#x at %#x), given image has text %d bytes, crc %#x at %#x",
			b.Name, b.TextLen, b.TextCRC, b.TextBase, got.TextLen, got.TextCRC, got.TextBase)
	}
	return nil
}

// CrashReport is what BugNet ships back to the developer: the retained
// logs of every thread plus the crash identity. The developer combines it
// with the exact same binaries to replay (paper §5.1). Logs travel as
// lazy views — metadata decoded, entry streams materialized on demand —
// so a report over a disk-spilled or file-backed window never needs the
// whole window in memory.
type CrashReport struct {
	PID    uint32
	Binary BinaryID
	// LogCodeLoads and DictOptions echo the recording configuration that
	// replay must match; they travel with the report so the receiving
	// side can configure its replayers without out-of-band knowledge.
	LogCodeLoads bool
	DictOptions  dict.Options
	Crash        *kernel.CrashInfo // nil if the program did not crash
	FLLs         map[int][]*fll.Ref
	MRLs         map[int][]*mrl.Ref
	// FLLStats and MRLStats snapshot the recording log regions' occupancy
	// and eviction churn at collection time: how much of the execution the
	// window covers and how much the budget discarded (paper §7.2).
	FLLStats logstore.Stats
	MRLStats logstore.Stats
}

// Report collects the retained logs as lazy views over the log stores.
// Call after machine.Run returns, and keep the recorder's stores open for
// as long as the report is replayed or packed. An interval that no longer
// loads back (spill corruption) is dropped from the report and surfaces
// through Err.
func (r *Recorder) Report() *CrashReport {
	rep := &CrashReport{
		PID:          r.cfg.PID,
		Binary:       IdentifyBinary(r.m.Img),
		LogCodeLoads: r.cfg.LogCodeLoads,
		DictOptions:  r.cfg.DictOptions,
		Crash:        r.m.Crash(),
		FLLs:         make(map[int][]*fll.Ref),
		MRLs:         make(map[int][]*mrl.Ref),
		FLLStats:     r.flls.Stats(),
		MRLStats:     r.mrls.Stats(),
	}
	for _, it := range r.flls.All() {
		// The cached metadata makes report assembly pure bookkeeping — no
		// re-read of the window. Items the cache has no entry for
		// (recovered from an earlier run) re-parse from their bytes.
		if m, ok := r.fllMeta[it.Seq]; ok {
			rep.FLLs[it.TID] = append(rep.FLLs[it.TID],
				fll.NewLazyRef(m, it.EncodedBytes, r.flls.Loader(it.Seq)))
			continue
		}
		ref, err := fll.OpenLazy(r.flls.Loader(it.Seq))
		if err != nil {
			r.fail(fmt.Errorf("core: FLL T%d C%d unreadable: %w", it.TID, it.CID, err))
			continue
		}
		rep.FLLs[it.TID] = append(rep.FLLs[it.TID], ref)
	}
	for _, it := range r.mrls.All() {
		if m, ok := r.mrlMeta[it.Seq]; ok {
			rep.MRLs[it.TID] = append(rep.MRLs[it.TID],
				mrl.NewLazyRef(m, it.EncodedBytes, r.mrls.Loader(it.Seq)))
			continue
		}
		ref, err := mrl.OpenLazy(r.mrls.Loader(it.Seq))
		if err != nil {
			r.fail(fmt.Errorf("core: MRL T%d C%d unreadable: %w", it.TID, it.CID, err))
			continue
		}
		rep.MRLs[it.TID] = append(rep.MRLs[it.TID], ref)
	}
	return rep
}

// fail records the first report-assembly failure.
func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Record is the one-call convenience path: build a machine for img, attach
// a recorder, run to completion, and return the machine result, the crash
// report, and the recorder for statistics.
func Record(img *asm.Image, kcfg kernel.Config, rcfg Config) (*kernel.Result, *CrashReport, *Recorder) {
	m := kernel.New(img, kcfg, nil)
	rec := NewRecorder(m, rcfg)
	res := m.Run()
	return res, rec.Report(), rec
}
