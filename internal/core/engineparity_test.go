package core

// engineparity_test.go pins the block-engine rollout at the system level:
// batched multithreaded replay must produce the same per-thread results
// as the per-instruction schedule, and batched kernel execution must
// record byte-identical logs regardless of how execution is chunked.

import (
	"bytes"
	"testing"

	"bugnet/internal/kernel"
	"bugnet/internal/workload"
)

// TestMTBatchedMatchesStepped replays the same multithreaded report twice:
// once on the batched triage hot path (default) and once with
// CollectOrder forcing the historical one-instruction-per-turn schedule.
// Every per-thread result must be identical — each thread's replay is
// independently deterministic, and batching may only change the
// interleaving, never a thread's own execution.
func TestMTBatchedMatchesStepped(t *testing.T) {
	res, rep, _, img := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 4096, Cache: tinyCache()})
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}

	batched, err := NewMultiReplayer(img, rep).Run()
	if err != nil {
		t.Fatalf("batched replay: %v", err)
	}
	stepped := NewMultiReplayer(img, rep)
	stepped.CollectOrder = true // forces the per-instruction schedule
	steppedRes, err := stepped.Run()
	if err != nil {
		t.Fatalf("stepped replay: %v", err)
	}

	if len(batched.Threads) != len(steppedRes.Threads) {
		t.Fatalf("thread counts: batched %d, stepped %d", len(batched.Threads), len(steppedRes.Threads))
	}
	for tid, b := range batched.Threads {
		s := steppedRes.Threads[tid]
		if s == nil {
			t.Fatalf("thread %d missing from stepped result", tid)
		}
		if b.Final != s.Final {
			t.Errorf("thread %d final state diverged:\nbatched %+v\nstepped %+v", tid, b.Final, s.Final)
		}
		if b.Instructions != s.Instructions || b.Intervals != s.Intervals || b.Injected != s.Injected {
			t.Errorf("thread %d counters diverged: batched (%d,%d,%d), stepped (%d,%d,%d)",
				tid, b.Instructions, b.Intervals, b.Injected, s.Instructions, s.Intervals, s.Injected)
		}
	}
	if batched.Constraints != steppedRes.Constraints {
		t.Errorf("constraints: batched %d, stepped %d", batched.Constraints, steppedRes.Constraints)
	}
	if got := uint64(len(steppedRes.Order)); got != batched.Threads[0].Instructions+batched.Threads[1].Instructions {
		t.Errorf("stepped order length %d does not cover both windows", got)
	}
}

// TestQuantumInvariantRecording records the same single-thread window
// under different scheduler quanta. The quantum only chunks the batched
// cpu.Run calls — timer interrupts are IC-based and DMA completions
// step-based — so the packed logs must be byte-identical: the batching
// bounds in kernel.runQuantum may not move any event across an
// instruction boundary.
func TestQuantumInvariantRecording(t *testing.T) {
	w := workload.ByName("gzip")
	encode := func(quantum int) []byte {
		m := kernel.New(w.Image, kernel.Config{
			Quantum:       quantum,
			TimerInterval: 777, // deliberately misaligned with the quantum
			MaxSteps:      60_000,
			Inputs:        w.Kernel.Inputs,
		}, nil)
		rec := NewRecorder(m, Config{IntervalLength: 1000, Cache: tinyCache()})
		m.Run()
		rec.Flush()
		if err := rec.Err(); err != nil {
			t.Fatalf("quantum %d: %v", quantum, err)
		}
		var buf bytes.Buffer
		for _, it := range rec.FLLStore().All() {
			data, err := rec.FLLStore().Load(it.Seq)
			if err != nil {
				t.Fatalf("quantum %d: load seq %d: %v", quantum, it.Seq, err)
			}
			buf.Write(data)
		}
		return buf.Bytes()
	}
	base := encode(32)
	if len(base) == 0 {
		t.Fatal("recording produced no log bytes")
	}
	for _, q := range []int{1, 7, 1024} {
		if got := encode(q); !bytes.Equal(got, base) {
			t.Errorf("quantum %d produced different log bytes (%d vs %d)", q, len(got), len(base))
		}
	}
}
