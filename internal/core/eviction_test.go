package core

import (
	"testing"

	"bugnet/internal/kernel"
	"bugnet/internal/workload"
)

// TestMTReplayWithEvictedWindow records the sharing workload under a tight
// FLL budget so old checkpoints fall out of the window, then runs the
// multithreaded replayer: constraints referencing evicted intervals must
// be dropped as vacuously satisfied (paper §7.2: the replay window is
// whatever memory retains) and the replay must still complete without
// deadlock.
func TestMTReplayWithEvictedWindow(t *testing.T) {
	w := workload.MTShare()
	kcfg := w.Kernel
	kcfg.MaxSteps = 400_000
	m := kernel.New(w.Image, kcfg, nil)
	rec := NewRecorder(m, Config{
		IntervalLength: 2_000,
		Cache:          tinyCache(),
		FLLBudget:      60_000,
		MRLBudget:      20_000,
	})
	m.Run()
	rec.Flush()

	if rec.FLLStore().Stats().EvictedCount == 0 {
		t.Fatal("budget produced no FLL eviction; test needs a shrunken window")
	}
	rep := rec.Report()
	for tid := range rep.FLLs {
		if rep.FLLs[tid][0].CID == 0 {
			t.Fatalf("thread %d window still starts at C0", tid)
		}
	}

	mr := NewMultiReplayer(w.Image, rep)
	out, err := mr.Run()
	if err != nil {
		t.Fatalf("multi replay over evicted window: %v", err)
	}
	var total uint64
	for tid, tr := range out.Threads {
		if tr.Instructions == 0 {
			t.Errorf("thread %d replayed nothing", tid)
		}
		total += tr.Instructions
	}
	// The window shrank: we replayed less than was executed.
	if total == 0 {
		t.Fatal("nothing replayed")
	}
	t.Logf("replayed %d instructions, %d constraints applied, %d dropped",
		total, out.Constraints, out.DroppedConstraints)
	if out.Constraints == 0 {
		t.Error("no ordering constraints survived at all")
	}
}

// TestReplayWindowAccounting cross-checks the store's window arithmetic
// against the logs themselves.
func TestReplayWindowAccounting(t *testing.T) {
	w := workload.MTShare()
	kcfg := w.Kernel
	kcfg.MaxSteps = 100_000
	m := kernel.New(w.Image, kcfg, nil)
	rec := NewRecorder(m, Config{IntervalLength: 1_000, Cache: tinyCache()})
	m.Run()
	rec.Flush()

	rep := rec.Report()
	for tid, logs := range rep.FLLs {
		var sum uint64
		for _, l := range logs {
			sum += l.Length
		}
		if got := rec.FLLStore().ReplayWindow(tid); got != sum {
			t.Errorf("thread %d: ReplayWindow = %d; logs sum to %d", tid, got, sum)
		}
	}
}
