package core

import (
	"errors"
	"fmt"

	"bugnet/internal/asm"
	"bugnet/internal/cpu"
	"bugnet/internal/dict"
	"bugnet/internal/fll"
	"bugnet/internal/mem"
)

// ErrDiverged reports that replay did not reproduce the recorded execution
// — an invariant violation in the recorder/replayer pair.
var ErrDiverged = errors.New("core: replay diverged from recording")

// ReplayResult summarizes a single-thread replay.
type ReplayResult struct {
	// TID is the replayed thread.
	TID int
	// Final is the architectural state after the last replayed
	// instruction — the state the developer inspects at the crash.
	Final cpu.Snapshot
	// Instructions is the number of replayed instructions (the replay
	// window actually covered).
	Instructions uint64
	// Intervals is the number of FLLs consumed.
	Intervals int
	// Injected is the number of first-load values taken from the logs.
	Injected uint64
	// Fault carries the crash record from the final FLL, if any: the
	// faulting PC is where the developer's investigation starts.
	Fault *fll.FaultRecord
	// Trace is the verification trace (only with TraceDepth > 0).
	Trace []TraceEntry
}

// Replayer deterministically re-executes one thread from its First-Load
// Logs, as in paper §5.1: load the same binary at the same addresses,
// clear data memory, restore the header's architectural state, then run —
// taking first-load values from the log and everything else from replayed
// computation. Synchronous interrupts become NOPs; execution continues
// into the next FLL.
//
// Logs arrive as lazy views: only the interval currently being replayed
// is held decoded, so the replayable window is bounded by where the
// encoded bytes live (a disk-backed log store, a report archive on disk),
// not by process memory.
type Replayer struct {
	img  *asm.Image
	logs []*fll.Ref

	// TraceDepth mirrors the recorder option for divergence checking.
	TraceDepth int
	// MaxPages, when positive, caps the pages replay memory may map.
	// Untrusted logs control the replayed register state, so without a
	// cap a crafted report could drive unbounded allocation through
	// AutoMap; exceeding the cap surfaces as a memory fault.
	MaxPages int
	// LogCodeLoads must match the recording configuration.
	LogCodeLoads bool
	// InteriorWindow marks these logs as a mid-window slice of a larger
	// recording (parallel interval replay hands each worker a one-interval
	// window). The final interval of a recording is allowed to stop one
	// logged code fetch short under LogCodeLoads (the faulting fetch never
	// commits); an interior slice must never claim that exemption, or a
	// hostile log marked EndFault mid-window would replay clean in
	// parallel while the sequential path reports divergence.
	InteriorWindow bool
	// BaseIC seeds the core's committed-instruction counter, so fault
	// diagnostics from an interior window report window-global instruction
	// counts — a parallel interval replay must produce the same error
	// strings the sequential full-window replay would.
	BaseIC uint64
	// DictOptions must match the recording configuration (relevant only
	// for design-space ablations; the zero value is the paper design).
	DictOptions dict.Options

	// OnAccess, if set, is called for every loggable operation and word
	// store with the observed word value; the multithreaded replayer uses
	// it for race inference.
	OnAccess func(pc uint32, wordAddr uint32, isWrite bool)
}

// NewReplayer builds a replayer for one thread's logs, which must be in
// recording order (as CrashReport delivers them).
func NewReplayer(img *asm.Image, logs []*fll.Ref) *Replayer {
	return &Replayer{img: img, logs: logs}
}

// NewReplayerLogs wraps already-decoded logs, for callers that built them
// in memory (tests, synthetic windows).
func NewReplayerLogs(img *asm.Image, logs []*fll.Log) *Replayer {
	return &Replayer{img: img, logs: WrapFLLs(logs)}
}

// WrapFLLs views decoded logs as refs, in order.
func WrapFLLs(logs []*fll.Log) []*fll.Ref {
	refs := make([]*fll.Ref, len(logs))
	for i, l := range logs {
		refs[i] = fll.NewRef(l)
	}
	return refs
}

// Run replays all logs to completion. Each interval executes as one batch
// through the predecoded block engine (cpu.Run); the per-instruction hooks
// fire exactly as they do under single-stepping.
func (r *Replayer) Run() (*ReplayResult, error) {
	st := r.newState()
	for st.next() {
		for !st.intervalDone() {
			if _, err := st.runBatch(st.cur.Length - st.executed); err != nil {
				return nil, err
			}
		}
		if err := st.finishInterval(); err != nil {
			return nil, err
		}
	}
	if st.err != nil {
		return nil, st.err
	}
	return st.result(), nil
}

// state is the incremental replay machine, also driven step-by-step by the
// multithreaded replayer.
type state struct {
	r   *Replayer
	mem *mem.Memory
	c   *cpu.CPU

	logs     []*fll.Ref
	idx      int      // current log index (idx-1 after next())
	cur      *fll.Log // the one interval held decoded
	reader   *fll.Reader
	d        *dict.Table
	executed uint64 // instructions executed within the current interval

	total    uint64
	injected uint64
	trace    *traceRing
	err      error
}

func (r *Replayer) newState() *state {
	m := mem.New()
	if len(r.img.Text) > 0 {
		m.Map(r.img.TextBase, uint32(len(r.img.Text)))
		if err := m.StoreBytes(r.img.TextBase, r.img.Text); err != nil {
			panic(err)
		}
	}
	c := cpu.New(m)
	c.AutoMap = true
	c.IC = r.BaseIC
	if r.MaxPages > 0 {
		// The budget is for replay-touched data pages; the program text
		// mapped above is a property of the binary, not the logs.
		m.MapLimit = r.MaxPages + m.MappedPages()
	}
	st := &state{r: r, mem: m, c: c, logs: r.logs}
	if r.TraceDepth > 0 {
		st.trace = newTraceRing(r.TraceDepth)
	}
	c.OnLoggable = st.onLoggable
	if r.OnAccess != nil {
		c.OnWordStore = func(wordAddr uint32) { r.OnAccess(c.PC, wordAddr, true) }
	}
	if st.trace != nil || r.LogCodeLoads {
		c.OnFetch = st.onFetch
	}
	return st
}

// next advances to the next FLL, materializing it from its view (the
// previously decoded interval is dropped); false when all are consumed or
// a log failed to load, which parks the error in st.err.
func (st *state) next() bool {
	if st.err != nil || st.idx >= len(st.logs) {
		return false
	}
	l, err := st.logs[st.idx].Open()
	if err != nil {
		st.err = fmt.Errorf("core: materializing interval C%d: %w", st.logs[st.idx].CID, err)
		return false
	}
	st.cur = l
	st.idx++
	st.executed = 0
	st.d = dict.NewWithOptions(int(st.cur.DictSize), st.r.DictOptions)
	st.reader = fll.NewReader(st.cur, st.d)
	st.c.Restore(st.cur.State)
	st.c.Halted = false
	st.c.Fault = nil
	return true
}

func (st *state) intervalDone() bool { return st.executed >= st.cur.Length }

// runBatch executes up to n instructions of the current interval through
// the block engine and returns how many committed. Syscalls are NOPs
// during replay (paper §5.1): the kernel's effects are reconstructed from
// the next FLL header and the logged first-loads, so a committed SYSCALL
// just counts and the batch resumes. A hook failure requests a stop, so
// the batch ends on the exact instruction whose log entry diverged — the
// same instruction the historical single-step loop stopped on.
func (st *state) runBatch(n uint64) (uint64, error) {
	if st.err != nil {
		return 0, st.err
	}
	var done uint64
	for done < n {
		executed, ev := st.c.Run(n - done)
		done += executed
		st.executed += executed
		st.total += executed
		switch ev {
		case cpu.EventStep, cpu.EventSyscall:
		case cpu.EventFault:
			if st.err == nil { // a hook (e.g. the page-budget refusal) may have set the cause already
				st.err = fmt.Errorf("%w: unexpected %v at replay instruction %d of interval C%d",
					ErrDiverged, st.c.Fault, st.executed, st.cur.CID)
			}
			return done, st.err
		case cpu.EventHalted:
			st.err = fmt.Errorf("%w: core halted mid-interval C%d", ErrDiverged, st.cur.CID)
			return done, st.err
		}
		if st.err != nil { // a hook failed the batch and requested the stop
			return done, st.err
		}
	}
	return done, nil
}

// finishInterval validates that the log was fully consumed.
func (st *state) finishInterval() error {
	if st.err != nil {
		return st.err
	}
	if err := st.reader.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrDiverged, err)
	}
	if !st.reader.Exhausted() {
		// Under LogCodeLoads the recorder logs the *fetch* of the faulting
		// instruction, but the instruction never commits, so replay of the
		// thread's final, fault-terminated interval legitimately stops
		// exactly one logged fetch short of the log. Anything else —
		// interior intervals a hostile log marks EndFault, or more than
		// one leftover entry — is divergence.
		last := st.idx == len(st.logs) && !st.r.InteriorWindow
		if !(st.r.LogCodeLoads && st.cur.End == fll.EndFault && last && st.reader.PendingOne()) {
			return fmt.Errorf("%w: interval C%d ended with unconsumed log entries", ErrDiverged, st.cur.CID)
		}
	}
	return nil
}

// fail records the first hook failure and asks the in-flight batch to
// stop after the current instruction.
func (st *state) fail(err error) {
	if st.err == nil {
		st.err = err
	}
	st.c.Stop()
}

// onLoggable injects logged first-load values before each loggable
// operation.
func (st *state) onLoggable(wordAddr uint32, isWrite bool) {
	cur, err := st.mem.LoadWord(wordAddr)
	if err != nil {
		st.fail(fmt.Errorf("%w: replay memory read %#x: %v", ErrDiverged, wordAddr, err))
		return
	}
	v, injected, err := st.reader.Op(cur)
	if err != nil {
		st.fail(fmt.Errorf("%w: %v", ErrDiverged, err))
		return
	}
	if injected {
		st.injected++
		if err := st.mem.StoreWord(wordAddr, v); err != nil {
			st.fail(fmt.Errorf("%w: inject at %#x: %v", ErrDiverged, wordAddr, err))
			return
		}
	}
	if st.r.OnAccess != nil {
		st.r.OnAccess(st.c.PC, wordAddr, isWrite)
	}
}

// onFetch mirrors the recorder's fetch hook: verification tracing and
// code-load injection under the self-modifying-code extension.
func (st *state) onFetch(pc uint32) {
	if st.trace != nil {
		st.trace.push(TraceEntry{PC: pc, RegHash: hashRegs(&st.c.Regs)})
	}
	if st.r.LogCodeLoads {
		wordAddr := pc &^ 3
		if !st.mem.TryMap(wordAddr, 4) {
			// The MaxPages cap guards untrusted logs; a fetch stride that
			// exhausts it is a divergence, not an allocation.
			st.fail(fmt.Errorf("%w: code load at %#x exceeds the replay page budget", ErrDiverged, pc))
			return
		}
		cur, _ := st.mem.LoadWord(wordAddr)
		v, injected, err := st.reader.Op(cur)
		if err != nil {
			st.fail(fmt.Errorf("%w: code load: %v", ErrDiverged, err))
			return
		}
		if injected {
			st.injected++
			st.mem.StoreWord(wordAddr, v)
			st.c.InvalidateFetchCache()
		}
	}
}

// result builds the final summary.
func (st *state) result() *ReplayResult {
	res := &ReplayResult{
		Final:        st.c.State(),
		Instructions: st.total,
		Intervals:    st.idx,
		Injected:     st.injected,
	}
	if len(st.logs) > 0 {
		last := st.logs[len(st.logs)-1]
		res.TID = int(last.TID)
		res.Fault = last.Fault
	}
	if st.trace != nil {
		res.Trace = st.trace.entries()
	}
	return res
}
