package core

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/kernel"
)

// machineOver records debugProgram and returns a tracking machine over the
// crashing thread's logs.
func machineOver(t *testing.T, traceDepth int) (*ReplayMachine, *asm.Image) {
	t.Helper()
	img := asm.MustAssemble("rm.s", debugProgram)
	res, rep, _ := Record(img, kernel.Config{}, Config{Cache: tinyCache()})
	if res.Crash == nil {
		t.Fatal("program did not crash")
	}
	r := NewReplayer(img, rep.FLLs[0])
	r.TraceDepth = traceDepth
	return r.Machine(MachineOptions{TrackKnown: true}), img
}

func stepTo(t *testing.T, m *ReplayMachine, pos uint64) {
	t.Helper()
	for m.Pos() < pos && !m.Done() {
		if err := m.StepOne(); err != nil {
			t.Fatalf("step at %d: %v", m.Pos(), err)
		}
	}
}

// sameState fatals unless a and b are at identical replay states:
// position, registers, and the full known-memory image.
func sameState(t *testing.T, a, b *ReplayMachine) {
	t.Helper()
	if a.Pos() != b.Pos() {
		t.Fatalf("pos %d != %d", a.Pos(), b.Pos())
	}
	if a.Registers() != b.Registers() {
		t.Fatalf("registers differ at pos %d:\n%+v\n%+v", a.Pos(), a.Registers(), b.Registers())
	}
	ka, kb := a.KnownWords(), b.KnownWords()
	if len(ka) != len(kb) {
		t.Fatalf("known sets differ: %d vs %d words", len(ka), len(kb))
	}
	for i, addr := range ka {
		if kb[i] != addr {
			t.Fatalf("known set differs at index %d: %#x vs %#x", i, addr, kb[i])
		}
		va, oka := a.ReadWord(addr)
		vb, okb := b.ReadWord(addr)
		if va != vb || oka != okb {
			t.Fatalf("word %#x: %#x/%v vs %#x/%v", addr, va, oka, vb, okb)
		}
	}
}

func TestReplayMachineSnapshotRestore(t *testing.T) {
	m, img := machineOver(t, 8)
	ref, _ := machineOver(t, 8)

	stepTo(t, m, 10)
	snap := m.Snapshot()
	if snap.Pos() != 10 {
		t.Fatalf("snapshot pos = %d", snap.Pos())
	}
	if snap.SizeBytes() <= 0 {
		t.Fatal("snapshot size must be positive")
	}

	// Run ahead, restore, and the machine must be back at the snapshot.
	stepTo(t, m, m.Window())
	if !m.Done() {
		t.Fatal("window not exhausted")
	}
	m.Restore(snap)
	stepTo(t, ref, 10)
	sameState(t, m, ref)

	// Re-execution from the restored state reaches the same end state as
	// an uninterrupted forward replay — including the trace ring.
	stepTo(t, m, m.Window())
	stepTo(t, ref, ref.Window())
	sameState(t, m, ref)
	ta, tb := m.Trace(), ref.Trace()
	if len(ta) != len(tb) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("trace entry %d differs: %+v vs %+v", i, ta[i], tb[i])
		}
	}

	// Snapshots are immutable: restoring the same snapshot twice lands on
	// the same state again.
	m.Restore(snap)
	if m.Pos() != 10 || m.PC() == 0 {
		t.Fatalf("second restore: pos=%d pc=%#x", m.Pos(), m.PC())
	}
	_ = img
}

func TestReplayMachineRestoreMidIntervalCursor(t *testing.T) {
	// Small intervals force snapshots to land mid-interval with live
	// dictionary and reader cursors; a restore that mishandled them would
	// diverge on the very next injected load.
	img := asm.MustAssemble("rm2.s", debugProgram)
	res, rep, _ := Record(img, kernel.Config{}, Config{IntervalLength: 7, Cache: tinyCache()})
	if res.Crash == nil {
		t.Fatal("no crash")
	}
	build := func() *ReplayMachine {
		return NewReplayer(img, rep.FLLs[0]).Machine(MachineOptions{TrackKnown: true})
	}
	m, ref := build(), build()
	for p := uint64(3); p < m.Window(); p += 5 {
		snap := func() *ReplaySnapshot {
			stepTo(t, m, p)
			return m.Snapshot()
		}()
		stepTo(t, m, m.Window())
		m.Restore(snap)
		stepTo(t, m, m.Window()) // must replay cleanly to the end
		if ref.Pos() > p {
			ref = build()
		}
		stepTo(t, ref, ref.Window())
		sameState(t, m, ref)
		m.Restore(snap)
	}
}
