package core

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/dict"
	"bugnet/internal/kernel"
)

// TestDictOptionsMismatchDiverges: recording with a non-default dictionary
// geometry and replaying with the default must fail loudly (the two table
// simulations disagree), while replaying with the matching options
// succeeds. This guards the "replay must mirror the choice" contract of
// the ablation.
func TestDictOptionsMismatchDiverges(t *testing.T) {
	// A value-diverse program so dictionary replacement decisions differ
	// between geometries (uniform small alphabets would mask the
	// mismatch).
	img := asm.MustAssemble("do.s", `
        .data
tbl:    .space 4096
        .text
main:   li   s1, 0x1234567
        la   s2, tbl
        li   s3, 1024
init:   slli t0, s1, 13
        xor  s1, s1, t0
        srli t0, s1, 17
        xor  s1, s1, t0
        slli t0, s1, 5
        xor  s1, s1, t0
        andi t1, s1, 255
        sw   t1, (s2)
        addi s2, s2, 4
        addi s3, s3, -1
        bnez s3, init
        # read everything back: logged first loads with dictionary churn
        la   s2, tbl
        li   s3, 1024
        li   a7, 7
        syscall              # interval boundary: clears FL bits
        li   s5, 0
rd:     lw   t2, (s2)
        add  s5, s5, t2      # the sum depends on every injected value
        addi s2, s2, 4
        addi s3, s3, -1
        bnez s3, rd
        mv   a0, s5
        li   a7, 1
        syscall
`)
	opts := dict.Options{CounterBits: 1, InsertAtTop: true}
	res, rep, _ := Record(img, kernel.Config{}, Config{
		IntervalLength: 100_000,
		DictSize:       8, // small: heavy replacement traffic
		DictOptions:    opts,
		Cache:          tinyCache(),
	})

	// Matching options: replay reproduces the recorded sum exactly.
	r := NewReplayer(img, rep.FLLs[0])
	r.DictOptions = opts
	rr, err := r.Run()
	if err != nil {
		t.Fatalf("matching options: %v", err)
	}
	wantSum := uint32(res.ExitCode)
	if rr.Final.Regs[10] != wantSum {
		t.Fatalf("matching replay sum = %d; recorded %d", rr.Final.Regs[10], wantSum)
	}

	// Default options: the dictionary simulations disagree, so the replay
	// must either fail loudly or decode different values — it must NOT
	// silently reproduce the recording.
	r2 := NewReplayer(img, rep.FLLs[0])
	rr2, err := r2.Run()
	if err == nil && rr2.Final.Regs[10] == wantSum {
		t.Fatal("mismatched dictionary options silently reproduced the recording")
	}
}
