package core

import (
	"math/rand"
	"sort"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/kernel"
	"bugnet/internal/mem"
)

// knownParityProgram walks a buffer that spans a page boundary with
// word, halfword and byte accesses (partial words exercise the
// read-modify-write loggable path), so the known-memory set collects
// page-interior, page-crossing and partial-word addresses.
const knownParityProgram = `
        .data
buf:    .space 8192
        .text
main:   la   s0, buf
        li   s1, 60          # iterations (60 × 128 B stays inside buf)
        li   s2, 0
loop:   slli t0, s2, 7       # stride 128 bytes across the buffer
        add  t1, s0, t0
        lw   t2, (t1)        # word load
        addi t2, t2, 3
        sw   t2, (t1)        # word store
        lh   t3, 4(t1)       # half load
        sh   t3, 6(t1)       # half store (partial-word RMW)
        lb   t4, 9(t1)       # byte load
        sb   t4, 11(t1)      # byte store (partial-word RMW)
        addi s2, s2, 1
        blt  s2, s1, loop
        li   a0, 0
        li   a7, 1
        syscall
`

// refKnown maintains the §7.1 semantics the pre-refactor map implemented
// directly: every loggable operation and word store marks its word.
type refKnown map[uint32]bool

func (r refKnown) sorted() []uint32 {
	out := make([]uint32, 0, len(r))
	for a := range r {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mustEqualKnown compares a machine's bitmap-backed view against the
// reference map: the word list, point probes, and ReadWord agreement.
func mustEqualKnown(t *testing.T, m *ReplayMachine, ref refKnown, label string) {
	t.Helper()
	want := ref.sorted()
	got := m.KnownWords()
	if len(got) != len(want) {
		t.Fatalf("%s: %d known words, reference map has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: known word %d = %#x, reference %#x", label, i, got[i], want[i])
		}
	}
	for _, a := range want {
		if !m.Known(a) || !m.Known(a+3) {
			t.Fatalf("%s: Known(%#x) lost a word the map has", label, a)
		}
		if _, known := m.ReadWord(a); !known {
			t.Fatalf("%s: ReadWord(%#x) unknown for a touched word", label, a)
		}
	}
	// Probe around the set: neighbors of known words must not leak in.
	for _, a := range want {
		for _, probe := range []uint32{a - 4, a + 4} {
			if m.Known(probe) != ref[probe&^3] {
				t.Fatalf("%s: Known(%#x) = %v, reference %v", label, probe, m.Known(probe), ref[probe&^3])
			}
		}
	}
}

// TestKnownTrackingParityST replays a page-crossing, partial-word
// workload while a reference map shadows the access hook, checking
// bitmap-vs-map parity continuously, across Reset, and across random
// Snapshot/Restore round trips.
func TestKnownTrackingParityST(t *testing.T) {
	img := asm.MustAssemble("kp.s", knownParityProgram)
	res, rep, _ := Record(img, kernel.Config{}, Config{IntervalLength: 64, Cache: tinyCache()})
	if res.Crash != nil {
		t.Fatalf("unexpected crash: %v", res.Crash)
	}
	logs := rep.FLLs[0]
	if len(logs) < 3 {
		t.Fatalf("want several intervals, got %d", len(logs))
	}

	ref := refKnown{}
	r := NewReplayer(img, logs)
	r.OnAccess = func(_ uint32, wordAddr uint32, _ bool) { ref[wordAddr] = true }
	// The machine chains the user hook after its own insert, so ref and
	// the bitmap advance in lockstep.
	m := r.Machine(MachineOptions{TrackKnown: true})

	rng := rand.New(rand.NewSource(7))
	type snap struct {
		s   *ReplaySnapshot
		ref refKnown
	}
	var snaps []snap
	for !m.Done() {
		if err := m.StepOne(); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(40) == 0 {
			mustEqualKnown(t, m, ref, "mid-replay")
			cp := refKnown{}
			for a := range ref {
				cp[a] = true
			}
			snaps = append(snaps, snap{s: m.Snapshot(), ref: cp})
		}
	}
	mustEqualKnown(t, m, ref, "end of window")
	if len(snaps) == 0 {
		t.Fatal("no snapshots taken; widen the sampling")
	}

	// Restoring each snapshot must reproduce exactly the set captured at
	// snapshot time — not the end-of-window superset.
	for _, sn := range snaps {
		m.Restore(sn.s)
		ref = refKnown{}
		for a := range sn.ref {
			ref[a] = true
		}
		mustEqualKnown(t, m, ref, "restored snapshot")
	}

	// Replay forward from the last restore point, shadowing again: the
	// bitmap must stay in lockstep after a restore as well.
	last := snaps[len(snaps)-1]
	m.Restore(last.s)
	ref = refKnown{}
	for a := range last.ref {
		ref[a] = true
	}
	for !m.Done() {
		if err := m.StepOne(); err != nil {
			t.Fatal(err)
		}
	}
	mustEqualKnown(t, m, ref, "re-run after restore")

	// Reset clears everything and re-derives from scratch.
	m.Reset()
	if len(m.KnownWords()) != 0 {
		t.Fatal("Reset left known words")
	}
	ref = refKnown{}
	for !m.Done() {
		if err := m.StepOne(); err != nil {
			t.Fatal(err)
		}
	}
	mustEqualKnown(t, m, ref, "after Reset")
}

// TestKnownTrackingParityMT: under the multithreaded replayer, each
// thread's known set must equal the set an independent single-thread
// replay of the same logs produces (FLLs are self-contained, §4.6), and
// the MT result must carry them when TrackKnown is set.
func TestKnownTrackingParityMT(t *testing.T) {
	_, rep, _, img := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 2_000, Cache: tinyCache()})

	mr := NewMultiReplayer(img, rep)
	mr.TrackKnown = true
	out, err := mr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Known == nil {
		t.Fatal("TrackKnown set but result carries no known sets")
	}
	for tid, logs := range rep.FLLs {
		st := NewReplayer(img, logs).Machine(MachineOptions{TrackKnown: true})
		for !st.Done() {
			if err := st.StepOne(); err != nil {
				t.Fatalf("thread %d ST replay: %v", tid, err)
			}
		}
		want := st.KnownWords()
		got := out.Known[tid]
		if len(got) != len(want) {
			t.Fatalf("thread %d: MT known %d words, ST known %d", tid, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("thread %d: known word %d = %#x, ST has %#x", tid, i, got[i], want[i])
			}
		}
		if len(want) == 0 {
			t.Fatalf("thread %d: empty known set (test exercises nothing)", tid)
		}
	}

	// Without the option the hot path stays clean: no known sets.
	mr2 := NewMultiReplayer(img, rep)
	out2, err := mr2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out2.Known != nil {
		t.Fatal("known sets populated without TrackKnown")
	}
}

// TestKnownSnapshotCodecOverReplay: the canonical codec round-trips a
// real replay's known set (the snapshot spill format stays in sync with
// live bitmaps, not just synthetic ones).
func TestKnownSnapshotCodecOverReplay(t *testing.T) {
	img := asm.MustAssemble("kp2.s", knownParityProgram)
	_, rep, _ := Record(img, kernel.Config{}, Config{Cache: tinyCache()})
	m := NewReplayer(img, rep.FLLs[0]).Machine(MachineOptions{TrackKnown: true})
	for !m.Done() {
		if err := m.StepOne(); err != nil {
			t.Fatal(err)
		}
	}
	words := m.KnownWords()
	k := mem.NewKnownSet()
	for _, a := range words {
		k.Add(a)
	}
	back, err := mem.UnmarshalKnown(mem.MarshalKnown(k))
	if err != nil {
		t.Fatal(err)
	}
	got := back.Words()
	if len(got) != len(words) {
		t.Fatalf("codec changed cardinality: %d vs %d", len(got), len(words))
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("codec changed word %d", i)
		}
	}
}
