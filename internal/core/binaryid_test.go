package core

import (
	"errors"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/kernel"
)

func TestBinaryIDDetectsVersionSkew(t *testing.T) {
	imgA := asm.MustAssemble("v1.s", "main: li a0, 1\nli a7, 1\nsyscall\n")
	imgB := asm.MustAssemble("v2.s", "main: li a0, 2\nli a7, 1\nsyscall\n")

	_, rep, _ := Record(imgA, kernel.Config{}, Config{Cache: tinyCache()})
	if rep.Binary.TextLen == 0 || rep.Binary.TextCRC == 0 {
		t.Fatalf("report has no binary identity: %+v", rep.Binary)
	}
	if err := rep.Binary.Matches(imgA); err != nil {
		t.Fatalf("identity rejects the recording binary: %v", err)
	}
	if err := rep.Binary.Matches(imgB); err == nil {
		t.Fatal("identity accepted a different binary")
	}

	// The multithreaded replayer refuses a mismatched binary up front.
	mr := NewMultiReplayer(imgB, rep)
	if _, err := mr.Run(); err == nil {
		t.Fatal("MultiReplayer ran against the wrong binary")
	}
}

func TestBinaryIDNameIrrelevant(t *testing.T) {
	// The same program assembled under two file names is the same binary.
	src := "main: li a0, 3\nli a7, 1\nsyscall\n"
	a := asm.MustAssemble("one.s", src)
	b := asm.MustAssemble("two.s", src)
	if err := IdentifyBinary(a).Matches(b); err != nil {
		t.Fatalf("content-identical binaries rejected: %v", err)
	}
	if errors.Is(ErrDiverged, IdentifyBinary(a).Matches(b)) {
		t.Fatal("sanity")
	}
}
