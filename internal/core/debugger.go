package core

import (
	"fmt"

	"bugnet/internal/asm"
	"bugnet/internal/cpu"
	"bugnet/internal/dict"
	"bugnet/internal/fll"
)

// Debugger is the developer-side tool the paper motivates: deterministic
// replay debugging over the recorded window (§1, §5). It is a thin adapter
// over ReplayMachine — breakpoints, single-stepping, register and memory
// inspection, and travel back in time by re-executing from the window
// start (replay is deterministic, so going back is just running forward
// again — the Ronsse/De Bosschere style the paper cites).
//
// For O(K) reverse execution backed by periodic replay-state checkpoints,
// plus watchpoints and remote sessions, see internal/timetravel, which
// builds on the same ReplayMachine.
//
// Memory inspection follows the paper's §7.1 semantics: BugNet logs carry
// no core dump, so only locations the replayed window actually touched
// (injected first loads or replayed stores) have known values; reading
// anything else reports unknown. "We expect that the memory addresses
// untouched by the program's execution prior to the crash were not
// responsible for the faulty behavior."
type Debugger struct {
	img  *asm.Image
	logs []*fll.Ref

	// LogCodeLoads and DictOptions must match the recording configuration
	// (CrashReport carries them). Set them before stepping, then call
	// Reset so the replay state picks them up.
	LogCodeLoads bool
	DictOptions  dict.Options

	m      *ReplayMachine
	breaks map[uint32]bool
}

// StopReason tells why the debugger returned control.
type StopReason uint8

// Stop reasons.
const (
	StopStep  StopReason = iota // requested step count exhausted
	StopBreak                   // hit a breakpoint
	StopEnd                     // reached the end of the recorded window
)

func (s StopReason) String() string {
	switch s {
	case StopStep:
		return "step"
	case StopBreak:
		return "breakpoint"
	case StopEnd:
		return "end-of-window"
	}
	return "unknown"
}

// NewDebugger opens one thread's logs for interactive replay.
func NewDebugger(img *asm.Image, logs []*fll.Ref) (*Debugger, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("core: debugger needs at least one log")
	}
	d := &Debugger{
		img:    img,
		logs:   logs,
		breaks: make(map[uint32]bool),
	}
	d.reset()
	return d, nil
}

// reset rebuilds the replay machine at the start of the window, picking up
// the current LogCodeLoads/DictOptions.
func (d *Debugger) reset() {
	r := NewReplayer(d.img, d.logs)
	r.LogCodeLoads = d.LogCodeLoads
	r.DictOptions = d.DictOptions
	d.m = r.Machine(MachineOptions{TrackKnown: true})
}

// Reset travels back to the beginning of the recorded window.
//
// Reset discards all replay-derived state: position, registers, replayed
// memory and the §7.1 known-memory map are re-derived from the logs, so a
// ReadWord that was known before Reset reports unknown again until
// re-execution touches the location. Breakpoints are user configuration,
// not replay state, and survive Reset — matching a conventional debugger's
// restart semantics.
func (d *Debugger) Reset() { d.reset() }

// Window returns the total instructions the retained logs cover.
func (d *Debugger) Window() uint64 { return d.m.Window() }

// Pos returns the number of instructions executed so far.
func (d *Debugger) Pos() uint64 { return d.m.Pos() }

// Done reports whether the window is exhausted.
func (d *Debugger) Done() bool { return d.m.Done() }

// PC returns the current program counter.
func (d *Debugger) PC() uint32 { return d.m.PC() }

// Registers returns the current architectural state.
func (d *Debugger) Registers() cpu.Snapshot { return d.m.Registers() }

// Fault returns the crash record of the final log, if any.
func (d *Debugger) Fault() *fll.FaultRecord { return d.m.Fault() }

// AddBreak sets a breakpoint at pc.
func (d *Debugger) AddBreak(pc uint32) { d.breaks[pc] = true }

// ClearBreak removes a breakpoint.
func (d *Debugger) ClearBreak(pc uint32) { delete(d.breaks, pc) }

// Breakpoints returns the current breakpoint set.
func (d *Debugger) Breakpoints() []uint32 {
	out := make([]uint32, 0, len(d.breaks))
	for pc := range d.breaks {
		out = append(out, pc)
	}
	return out
}

// Step executes up to n instructions, stopping early at a breakpoint or
// the end of the window.
func (d *Debugger) Step(n uint64) (StopReason, error) {
	for i := uint64(0); i < n; i++ {
		if d.m.Done() {
			return StopEnd, nil
		}
		if err := d.m.StepOne(); err != nil {
			return StopEnd, err
		}
		// The breakpoint check precedes the end check: the window's final
		// PC is the faulting instruction, and a breakpoint there must
		// report as hit.
		if d.breaks[d.m.PC()] {
			return StopBreak, nil
		}
		if d.m.Done() {
			return StopEnd, nil
		}
	}
	return StopStep, nil
}

// Continue runs until a breakpoint or the end of the window (where the
// faulting instruction, if any, is next).
func (d *Debugger) Continue() (StopReason, error) {
	for {
		if d.m.Done() {
			return StopEnd, nil
		}
		if err := d.m.StepOne(); err != nil {
			return StopEnd, err
		}
		if d.breaks[d.m.PC()] {
			return StopBreak, nil
		}
		if d.m.Done() {
			return StopEnd, nil
		}
	}
}

// RunTo places a temporary breakpoint at pc and continues.
func (d *Debugger) RunTo(pc uint32) (StopReason, error) {
	had := d.breaks[pc]
	d.breaks[pc] = true
	reason, err := d.Continue()
	if !had {
		delete(d.breaks, pc)
	}
	return reason, err
}

// Goto travels to an absolute instruction position in the window,
// re-executing from the start if the target lies in the past. This is the
// O(window) baseline; timetravel.Engine.SeekTo is the checkpointed O(K)
// path.
func (d *Debugger) Goto(pos uint64) error {
	if pos < d.m.Pos() {
		d.reset()
	}
	for d.m.Pos() < pos && !d.m.Done() {
		if err := d.m.StepOne(); err != nil {
			return err
		}
	}
	return nil
}

// ReadWord inspects replayed memory. known is false for locations the
// recorded window never touched — their values were not logged and cannot
// be examined (paper §7.1).
func (d *Debugger) ReadWord(addr uint32) (value uint32, known bool) {
	return d.m.ReadWord(addr)
}

// Disasm renders the instruction at pc.
func (d *Debugger) Disasm(pc uint32) string {
	return d.img.DisassembleAt(pc)
}

// SymbolAt returns the closest preceding symbol and offset for an address,
// for human-readable locations.
func (d *Debugger) SymbolAt(pc uint32) string {
	return SymbolAt(d.img, pc)
}

// SymbolAt renders pc as the closest preceding symbol plus offset, falling
// back to the bare address. Shared by the debugger adapters.
func SymbolAt(img *asm.Image, pc uint32) string {
	bestName := ""
	bestAddr := uint32(0)
	for name, addr := range img.Symbols {
		if addr <= pc && (bestName == "" || addr > bestAddr ||
			(addr == bestAddr && name < bestName)) {
			bestName, bestAddr = name, addr
		}
	}
	if bestName == "" {
		return fmt.Sprintf("%#x", pc)
	}
	if bestAddr == pc {
		return bestName
	}
	return fmt.Sprintf("%s+%#x", bestName, pc-bestAddr)
}
