package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bugnet/internal/asm"
	"bugnet/internal/fll"
	"bugnet/internal/kernel"
)

// randomMTProgram generates a 2-thread program mixing private streaming,
// locked shared updates, unsynchronized shared traffic (benign for
// determinism — first-load logging must absorb it), and syscalls. It
// always terminates: both threads run a bounded number of rounds.
func randomMTProgram(rng *rand.Rand) string {
	var b strings.Builder
	w := func(s string) { b.WriteString(s); b.WriteByte('\n') }
	rounds := 10 + rng.Intn(40)
	w("        .data")
	w("lck:    .word 0")
	w("shared: .space 512")
	w("priv0:  .space 1024")
	w("priv1:  .space 1024")
	w("fin:    .word 0")
	w("        .text")
	w("main:   la   a0, work")
	w("        li   a7, 8")
	w("        syscall             # spawn the second thread")
	w("        call work")
	// Wait for the worker to finish before exiting (atomic flag).
	w("mwait:  la   t0, fin")
	w("        amoadd t1, zero, (t0)")
	w("        beqz t1, mwait")
	w("        li   a7, 1")
	w("        syscall")
	w("work:   mv   s6, ra")
	w("        li   a7, 11")
	w("        syscall             # thread id")
	w("        la   s3, priv0")
	w("        beqz a0, pick")
	w("        la   s3, priv1")
	w("pick:   li   s4, " + itoa(rounds))
	w("wl:")
	n := 2 + rng.Intn(8)
	for i := 0; i < n; i++ {
		off := rng.Intn(255) * 4
		switch rng.Intn(6) {
		case 0:
			w("        lw   t1, " + itoa(off) + "(s3)")
		case 1:
			w("        sw   t1, " + itoa(off) + "(s3)")
		case 2: // unsynchronized shared access: racy but replayable
			w("        la   t2, shared")
			w("        lw   t3, " + itoa(rng.Intn(127)*4) + "(t2)")
			w("        add  t1, t1, t3")
		case 3: // locked shared update
			w("        la   t2, lck")
			w("        li   t3, 1")
			w("a" + itoa(i) + "_" + itoa(off) + ":")
			w("        amoswap t4, t3, (t2)")
			w("        bnez t4, a" + itoa(i) + "_" + itoa(off))
			w("        la   t5, shared")
			w("        lw   t6, " + itoa(rng.Intn(127)*4) + "(t5)")
			w("        addi t6, t6, 1")
			w("        sw   t6, " + itoa(rng.Intn(127)*4) + "(t5)")
			w("        amoswap t4, zero, (t2)")
		case 4:
			w("        li   a7, 7")
			w("        syscall             # time: interval boundary")
			w("        add  t1, t1, a0")
		case 5:
			w("        sb   t1, " + itoa(rng.Intn(1020)) + "(s3)")
		}
	}
	w("        addi s4, s4, -1")
	w("        bnez s4, wl")
	w("        la   t0, fin")
	w("        li   t1, 1")
	w("        amoadd t2, t1, (t0)")
	w("        mv   ra, s6")
	w("        ret                 # thread 0 returns to main; thread 1 to the exit sentinel")
	return b.String()
}

// TestPropertyRandomMTProgramsReplayExactly is the multithreaded
// counterpart of the single-thread property test: every thread of a
// random 2-core program with shared-memory traffic must replay
// instruction-exactly from its own logs, and the multithreaded replayer
// must reconstruct a complete interleaving.
func TestPropertyRandomMTProgramsReplayExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomMTProgram(rng)
		img, err := asm.Assemble("mtrand.s", src)
		if err != nil {
			t.Logf("assemble: %v", err)
			return false
		}
		kcfg := kernel.Config{
			Cores:         2,
			Quantum:       1 + rng.Intn(40),
			TimerInterval: uint64(100 + rng.Intn(1000)),
			MaxSteps:      3_000_000,
		}
		rcfg := Config{
			IntervalLength: uint64(200 + rng.Intn(3000)),
			Cache:          tinyCache(),
			TraceDepth:     1 << 18,
			// Exercise the future-work extension's invalidation paths
			// (coherence + kernel writes) on half the runs.
			PreserveFLBits: rng.Intn(2) == 0,
			DisableNetzer:  rng.Intn(4) == 0,
		}
		res, rep, rec := Record(img, kcfg, rcfg)
		if res.Crash != nil {
			t.Logf("seed %d: unexpected crash: %v\n%s", seed, res.Crash, src)
			return false
		}
		if res.Steps >= kcfg.MaxSteps {
			t.Logf("seed %d: did not terminate", seed)
			return false
		}
		// Per-thread instruction-exact verification.
		if err := VerifyReplay(img, rec); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Full multithreaded reconstruction.
		mr := NewMultiReplayer(img, rep)
		out, err := mr.Run()
		if err != nil {
			t.Logf("seed %d: multi replay: %v", seed, err)
			return false
		}
		var total uint64
		for _, tr := range out.Threads {
			total += tr.Instructions
		}
		if total != res.Instructions {
			t.Logf("seed %d: replayed %d of %d instructions", seed, total, res.Instructions)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCorruptedLogsNeverSilentlyDiverge flips random bits in
// serialized FLLs; replay must either succeed identically (the flip hit
// padding) or fail loudly — never panic, hang, or quietly produce a
// different execution without consuming the log stream consistently.
func TestPropertyCorruptedLogsNeverSilentlyDiverge(t *testing.T) {
	img := asm.MustAssemble("fi.s", sumProgram)
	_, rep, _ := Record(img, kernel.Config{}, Config{IntervalLength: 200, Cache: tinyCache()})
	logs := rep.FLLs[0]
	baseline, err := NewReplayer(img, logs).Run()
	if err != nil {
		t.Fatal(err)
	}

	// Pre-serialize the pristine logs.
	blobs := make([][]byte, len(logs))
	for i, l := range logs {
		var err error
		if blobs[i], err = l.Encoded(); err != nil {
			t.Fatal(err)
		}
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Corrupt one random bit of one random log.
		victim := rng.Intn(len(blobs))
		blob := append([]byte(nil), blobs[victim]...)
		bit := rng.Intn(len(blob) * 8)
		blob[bit/8] ^= 1 << uint(bit%8)

		corrupted, err := fll.OpenEncoded(blob)
		if err != nil {
			return true // rejected at decode: loud failure, fine
		}
		mutated := append([]*fll.Ref(nil), logs...)
		mutated[victim] = corrupted

		defer func() {
			if r := recover(); r != nil {
				t.Errorf("seed %d: replay panicked: %v", seed, r)
			}
		}()
		rr, err := NewReplayer(img, mutated).Run()
		if err != nil {
			return true // loud divergence error, fine
		}
		// Replay "succeeded": it must have produced the exact baseline
		// (the flipped bit was dead padding or an unused header field).
		return rr.Instructions == baseline.Instructions &&
			rr.Final == baseline.Final
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
