// Package core implements the BugNet architecture itself: the recorder
// that continuously captures First-Load Logs and Memory Race Logs during
// execution (paper §4), and the replayers that deterministically re-execute
// the recorded window (paper §5).
//
// The recorder plays the role of BugNet's hardware additions in Figure 1 —
// the Checkpoint Buffer, Memory Race Buffer, dictionary compressor, and the
// first-load bits in the caches — observing the machine through the hook
// interfaces of internal/cpu and internal/kernel. The replayers play the
// role of the authors' Simics-based replay prototype.
package core

import (
	"bugnet/internal/bus"
	"bugnet/internal/cache"
	"bugnet/internal/dict"
	"bugnet/internal/logstore"
)

// Config parameterizes the recorder.
type Config struct {
	// PID identifies the recorded process in log headers.
	PID uint32

	// IntervalLength is the checkpoint interval length in committed
	// instructions (paper default for the main results: 10 million).
	// Intervals may also terminate early on interrupts, system calls and
	// faults (paper §4.4). Default 10_000_000.
	IntervalLength uint64

	// DictSize is the dictionary compressor geometry (paper: 64-entry
	// fully associative). Must be a power of two. Default 64.
	DictSize int

	// DictOptions tunes dictionary details beyond the paper's fixed
	// design (counter width, insertion policy) for the design-space
	// ablation. Replayers must be configured identically.
	DictOptions dict.Options

	// Cache configures the per-processor hierarchy carrying the
	// first-load bits. Default cache.DefaultConfig.
	Cache cache.Config

	// FLLBudget and MRLBudget bound the log regions backing the Checkpoint
	// Buffer and Memory Race Buffer (paper §4.7). Oldest checkpoints are
	// discarded when a region fills. Non-positive budgets retain
	// everything (used by experiments measuring log growth).
	FLLBudget int64
	MRLBudget int64

	// FLLStore and MRLStore, when non-nil, are the pre-opened log regions
	// the recorder appends into — the hook for spill-to-disk recording
	// (build them with logstore.Open over a logstore.Disk backend). Nil
	// selects fresh in-memory regions bounded by FLLBudget/MRLBudget,
	// whose budgets are then ignored in favor of the stores' own.
	FLLStore *logstore.Store
	MRLStore *logstore.Store

	// MaxThreads sizes MRL entry fields; defaults to the machine's cores.
	MaxThreads int

	// PreserveFLBits enables the paper's future-work scheme (§4.4):
	// first-load bits survive interval boundaries instead of being
	// cleared, relying on kernel/DMA/coherence invalidations for
	// correctness. Reduces re-logging after interrupts.
	PreserveFLBits bool

	// LogCodeLoads enables first-load logging of instruction fetches so
	// self-modifying code can be replayed (paper §5.3's proposed option).
	LogCodeLoads bool

	// DisableNetzer turns off the transitive-reduction filter on Memory
	// Race Log entries (paper §4.6.3), for the ablation benchmark.
	DisableNetzer bool

	// TraceDepth, when positive, keeps a ring of the last TraceDepth
	// committed (pc, register-hash) pairs per thread. Replayers capture
	// the same trace, enabling instruction-exact divergence checks.
	TraceDepth int

	// Bus, when non-nil, receives instruction/miss/log-production events
	// for the recording-overhead experiment (paper §6.3). Shared across
	// cores, like the physical bus.
	Bus *bus.Model
}

func (c *Config) fillDefaults() {
	if c.IntervalLength == 0 {
		c.IntervalLength = 10_000_000
	}
	if c.DictSize == 0 {
		c.DictSize = dict.DefaultSize
	}
	if c.Cache.L1.SizeBytes == 0 {
		c.Cache = cache.DefaultConfig()
	}
}

// TraceEntry is one committed instruction's identity in a verification
// trace: its PC and a hash of the full register file afterwards.
type TraceEntry struct {
	PC      uint32
	RegHash uint32
}

// traceRing is a bounded trace recorder.
type traceRing struct {
	buf  []TraceEntry
	next int
	full bool
}

func newTraceRing(n int) *traceRing { return &traceRing{buf: make([]TraceEntry, n)} }

func (t *traceRing) push(e TraceEntry) {
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
}

// clone returns a deep copy of the ring, for replay checkpointing.
func (t *traceRing) clone() *traceRing {
	if t == nil {
		return nil
	}
	return &traceRing{buf: append([]TraceEntry(nil), t.buf...), next: t.next, full: t.full}
}

// entries returns the retained trace oldest-first.
func (t *traceRing) entries() []TraceEntry {
	if !t.full {
		return append([]TraceEntry(nil), t.buf[:t.next]...)
	}
	out := make([]TraceEntry, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// hashRegs mixes the register file into a 32-bit fingerprint (FNV-1a over
// the register words).
func hashRegs(regs *[32]uint32) uint32 {
	h := uint32(2166136261)
	for _, r := range regs {
		h ^= r
		h *= 16777619
	}
	return h
}
