package core

import (
	"fmt"
	"sort"

	"bugnet/internal/asm"
	"bugnet/internal/isa"
)

// Race is one inferred data race: two accesses to the same word from
// different threads, at least one a write, not both atomic, with no
// happens-before path of synchronization operations between them.
//
// Paper §5.2 explains that the replayed sequential order plus the MRLs let
// the developer infer data races; this detector automates the analysis in
// the style of RecPlay (cited by the paper). Coherence replies order
// *every* conflicting access — including the races themselves — so
// happens-before cannot come from the MRL edges; it comes from the
// program's synchronization operations instead:
//
//   - atomic accesses (AMOSWAP/AMOADD) are synchronization: each one
//     acquires the vector clock last published at its word and releases
//     the thread's own clock there, building the lock/flag happens-before
//     order; atomic-vs-atomic conflicts are never races;
//   - plain accesses are data: a plain access that conflicts with any
//     other thread's earlier plain OR atomic access without an
//     intervening synchronization path is reported.
//
// This matches the C11-style discipline: spinlocks must release with an
// atomic store and flags must be read atomically, or the detector calls
// out the plain access — which is exactly the class of bug it exists to
// find.
type Race struct {
	Addr uint32 // conflicting word
	// First access (earlier in the replayed order).
	TID1     int
	PC1      uint32
	IsWrite1 bool
	// Second access.
	TID2     int
	PC2      uint32
	IsWrite2 bool
}

func (r Race) String() string {
	k := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	return fmt.Sprintf("race on %#08x: T%d %s at %#x vs T%d %s at %#x",
		r.Addr, r.TID1, k(r.IsWrite1), r.PC1, r.TID2, k(r.IsWrite2), r.PC2)
}

// accessInfo is the last access of one kind to a word by one thread.
type accessInfo struct {
	idx uint64 // 1-based thread-local instruction index; 0 = none
	pc  uint32
}

// wordState tracks per-word access history, split by discipline.
type wordState struct {
	clock  []uint64     // vector clock last published by an atomic access
	plainW []accessInfo // per-thread last plain write
	plainR []accessInfo // per-thread last plain read
	atomW  []accessInfo // per-thread last atomic access (RMW = write)
}

// raceDetector runs vector-clock conflict detection over the access stream
// of a multithreaded replay, which arrives in a valid sequential order.
type raceDetector struct {
	img    *asm.Image
	n      int
	vc     [][]uint64 // per-thread synchronization clocks
	words  map[uint32]*wordState
	found  map[[2]uint32]Race
	decode map[uint32]bool // pc -> is atomic (memoized)
}

func newRaceDetector(img *asm.Image, nThreads int) *raceDetector {
	d := &raceDetector{
		img:    img,
		n:      nThreads,
		vc:     make([][]uint64, nThreads),
		words:  make(map[uint32]*wordState),
		found:  make(map[[2]uint32]Race),
		decode: make(map[uint32]bool),
	}
	for i := range d.vc {
		d.vc[i] = make([]uint64, nThreads)
	}
	return d
}

// isAtomic reports whether the instruction at pc is an AMO, decoding from
// the program image (code is immutable during replay analysis).
func (d *raceDetector) isAtomic(pc uint32) bool {
	if v, ok := d.decode[pc]; ok {
		return v
	}
	atomic := false
	off := pc - d.img.TextBase
	if pc >= d.img.TextBase && int(off)+4 <= len(d.img.Text) {
		w := uint32(d.img.Text[off]) | uint32(d.img.Text[off+1])<<8 |
			uint32(d.img.Text[off+2])<<16 | uint32(d.img.Text[off+3])<<24
		atomic = isa.Decode(w).Op.IsAMO()
	}
	d.decode[pc] = atomic
	return atomic
}

// access processes one replayed memory access. progress is the thread's
// committed-instruction count before this access; accesses arrive in the
// reconstructed sequential order.
func (d *raceDetector) access(tid int, progress uint64, pc uint32, wordAddr uint32, isWrite bool) {
	ws := d.words[wordAddr]
	if ws == nil {
		ws = &wordState{
			plainW: make([]accessInfo, d.n),
			plainR: make([]accessInfo, d.n),
			atomW:  make([]accessInfo, d.n),
		}
		d.words[wordAddr] = ws
	}
	myIdx := progress + 1
	vc := d.vc[tid]
	vc[tid] = myIdx

	if d.isAtomic(pc) {
		// Synchronization: acquire the word's published clock, then
		// publish our own (lock handoff). Atomic accesses still conflict
		// with unordered *plain* accesses by other threads.
		if ws.clock == nil {
			ws.clock = make([]uint64, d.n)
		}
		for u := 0; u < d.n; u++ {
			if ws.clock[u] > vc[u] {
				vc[u] = ws.clock[u]
			}
		}
		for u := 0; u < d.n; u++ {
			if u == tid {
				continue
			}
			if w := ws.plainW[u]; w.idx != 0 && vc[u] < w.idx {
				d.report(wordAddr, u, w, true, tid, pc, true)
			}
			if r := ws.plainR[u]; r.idx != 0 && vc[u] < r.idx {
				d.report(wordAddr, u, r, false, tid, pc, true)
			}
		}
		for u := 0; u < d.n; u++ {
			if vc[u] > ws.clock[u] {
				ws.clock[u] = vc[u]
			}
		}
		ws.atomW[tid] = accessInfo{idx: myIdx, pc: pc}
		return
	}

	// Plain access: conflicts with every unordered other-thread write
	// (plain or atomic); a plain write also conflicts with unordered
	// reads.
	for u := 0; u < d.n; u++ {
		if u == tid {
			continue
		}
		if w := ws.plainW[u]; w.idx != 0 && vc[u] < w.idx {
			d.report(wordAddr, u, w, true, tid, pc, isWrite)
		}
		if w := ws.atomW[u]; w.idx != 0 && vc[u] < w.idx {
			d.report(wordAddr, u, w, true, tid, pc, isWrite)
		}
		if isWrite {
			if r := ws.plainR[u]; r.idx != 0 && vc[u] < r.idx {
				d.report(wordAddr, u, r, false, tid, pc, true)
			}
		}
	}
	if isWrite {
		ws.plainW[tid] = accessInfo{idx: myIdx, pc: pc}
	} else {
		ws.plainR[tid] = accessInfo{idx: myIdx, pc: pc}
	}
}

func (d *raceDetector) report(addr uint32, tid1 int, a1 accessInfo, w1 bool,
	tid2 int, pc2 uint32, w2 bool) {
	if !w1 && !w2 {
		return // read-read never races
	}
	key := [2]uint32{a1.pc, pc2}
	if _, dup := d.found[key]; dup {
		return
	}
	d.found[key] = Race{
		Addr: addr,
		TID1: tid1, PC1: a1.pc, IsWrite1: w1,
		TID2: tid2, PC2: pc2, IsWrite2: w2,
	}
}

// races returns the deduplicated findings in a stable order.
func (d *raceDetector) races() []Race {
	out := make([]Race, 0, len(d.found))
	for _, r := range d.found {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PC1 != out[j].PC1 {
			return out[i].PC1 < out[j].PC1
		}
		if out[i].PC2 != out[j].PC2 {
			return out[i].PC2 < out[j].PC2
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}
