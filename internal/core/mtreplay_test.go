package core

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
)

// lockedCounterProgram: two threads increment a shared counter under a
// spinlock; properly synchronized, so no data race on the counter.
const lockedCounterProgram = `
        .data
lck:    .word 0
ctr:    .word 0
done:   .word 0
        .text
main:   la   a0, worker
        li   a7, 8          # spawn
        syscall
        call work           # main does its share too
        # wait for the worker (atomic flag read: proper discipline)
        la   t0, done
mwait:  amoadd t1, zero, (t0)
        li   t2, 1
        blt  t1, t2, mwait
        la   t0, ctr
        lw   a0, (t0)
        li   a7, 1
        syscall

worker: call work
        la   t0, done
        li   t1, 1
        amoadd t2, t1, (t0)
        li   a0, 0
        li   a7, 1
        syscall

# work: add 100 to ctr under the lock, 1 at a time
work:   li   s2, 100
wl:     la   t0, lck
        li   t1, 1
acq:    amoswap t2, t1, (t0)
        bnez t2, acq
        la   t3, ctr
        lw   t4, (t3)
        addi t4, t4, 1
        sw   t4, (t3)
        amoswap t5, zero, (t0)  # atomic release
        addi s2, s2, -1
        bnez s2, wl
        ret
`

// racyProgram: both threads do read-modify-write on a shared word with no
// synchronization — a textbook data race.
const racyProgram = `
        .data
shared: .word 0
done:   .word 0
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        li   s2, 50
ml:     la   t0, shared
racy1:  lw   t1, (t0)       # racy read
        addi t1, t1, 1
racyw1: sw   t1, (t0)       # racy write
        addi s2, s2, -1
        bnez s2, ml
        la   t0, done
dwait:  amoadd t1, zero, (t0)
        beqz t1, dwait
        la   t0, shared
        lw   a0, (t0)
        li   a7, 1
        syscall

worker: li   s2, 50
wl2:    la   t0, shared
racy2:  lw   t1, (t0)
        addi t1, t1, 1
racyw2: sw   t1, (t0)
        addi s2, s2, -1
        bnez s2, wl2
        la   t0, done
        li   t1, 1
        amoswap t2, t1, (t0)
        li   a0, 0
        li   a7, 1
        syscall
`

func recordMT(t *testing.T, src string, cores int, rcfg Config) (*kernel.Result, *CrashReport, *Recorder, *asm.Image) {
	t.Helper()
	img, err := asm.Assemble("mt.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, rep, rec := Record(img, kernel.Config{Cores: cores}, rcfg)
	return res, rep, rec, img
}

func TestMTRecordProducesMRLs(t *testing.T) {
	res, rep, _, _ := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	if res.ExitCode != 200 {
		t.Fatalf("exit = %d; want 200 (locking broken?)", res.ExitCode)
	}
	if len(rep.FLLs) != 2 {
		t.Fatalf("threads with FLLs = %d", len(rep.FLLs))
	}
	entries := 0
	for _, logs := range rep.MRLs {
		for _, l := range logs {
			entries += int(l.NumEntries)
		}
	}
	if entries == 0 {
		t.Fatal("no MRL entries despite heavy sharing")
	}
}

func TestMTEachThreadReplaysIndependently(t *testing.T) {
	// Paper §4.6: "Any thread can be replayed independent of the other
	// threads". Replay each thread alone and check it completes.
	res, rep, _, img := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	for tid, logs := range rep.FLLs {
		r := NewReplayer(img, logs)
		rr, err := r.Run()
		if err != nil {
			t.Fatalf("thread %d replay: %v", tid, err)
		}
		if rr.Instructions == 0 {
			t.Errorf("thread %d replayed nothing", tid)
		}
	}
}

func TestMTVerifyReplayLockstep(t *testing.T) {
	_, _, rec, img := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 4096, Cache: tinyCache(), TraceDepth: 1 << 20})
	if err := VerifyReplay(img, rec); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestMTOrderReconstruction(t *testing.T) {
	res, rep, _, img := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	mr := NewMultiReplayer(img, rep)
	mr.CollectOrder = true
	out, err := mr.Run()
	if err != nil {
		t.Fatalf("multi replay: %v", err)
	}
	if out.Constraints == 0 {
		t.Fatal("no ordering constraints derived")
	}
	var total uint64
	for _, tr := range out.Threads {
		total += tr.Instructions
	}
	if uint64(len(out.Order)) != total {
		t.Errorf("order length %d != total instructions %d", len(out.Order), total)
	}
	if total != res.Instructions {
		t.Errorf("replayed %d instructions; recorded %d", total, res.Instructions)
	}
	// The final counter value must be reconstructible from thread 0's
	// replayed exit state.
	if out.Threads[0].Final.Regs[isa.RegA0] != 200 {
		t.Errorf("replayed final counter = %d; want 200", out.Threads[0].Final.Regs[isa.RegA0])
	}
}

func TestMTRaceDetectionFindsRace(t *testing.T) {
	res, rep, _, img := recordMT(t, racyProgram, 2,
		Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	mr := NewMultiReplayer(img, rep)
	mr.DetectRaces = true
	out, err := mr.Run()
	if err != nil {
		t.Fatalf("multi replay: %v", err)
	}
	if len(out.Races) == 0 {
		t.Fatal("no races found in racy program")
	}
	// At least one race must involve the racy PCs on the shared word.
	racyPCs := map[uint32]bool{
		img.MustSymbol("racy1"): true, img.MustSymbol("racyw1"): true,
		img.MustSymbol("racy2"): true, img.MustSymbol("racyw2"): true,
	}
	foundShared := false
	for _, r := range out.Races {
		if racyPCs[r.PC1] && racyPCs[r.PC2] {
			foundShared = true
		}
		if r.TID1 == r.TID2 {
			t.Errorf("same-thread race reported: %v", r)
		}
	}
	if !foundShared {
		t.Errorf("races found %v do not include the seeded racy accesses", out.Races)
	}
}

func TestMTNoFalseRacesUnderLocking(t *testing.T) {
	// The locked counter is properly synchronized through the AMO lock;
	// the critical-section accesses to ctr must NOT be reported as races.
	_, rep, _, img := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	mr := NewMultiReplayer(img, rep)
	mr.DetectRaces = true
	out, err := mr.Run()
	if err != nil {
		t.Fatalf("multi replay: %v", err)
	}
	// The program follows proper atomic discipline (atomic acquire AND
	// release on lck, atomic reads/writes of the done flag), so the
	// critical-section accesses to ctr are fully lock-ordered and no
	// access should be reported.
	for _, r := range out.Races {
		t.Errorf("unexpected race: %v", r)
	}
	_ = out
}

func TestMTNetzerAblation(t *testing.T) {
	// Disabling the reduction must increase (or equal) MRL entries while
	// leaving replayability intact.
	_, repOn, _, img := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 1 << 20, Cache: tinyCache()})
	_, repOff, _, _ := recordMT(t, lockedCounterProgram, 2,
		Config{IntervalLength: 1 << 20, Cache: tinyCache(), DisableNetzer: true})
	count := func(rep *CrashReport) int {
		n := 0
		for _, logs := range rep.MRLs {
			for _, l := range logs {
				n += int(l.NumEntries)
			}
		}
		return n
	}
	on, off := count(repOn), count(repOff)
	if on >= off {
		t.Errorf("Netzer reduction ineffective: %d entries with, %d without", on, off)
	}
	mr := NewMultiReplayer(img, repOff)
	if _, err := mr.Run(); err != nil {
		t.Fatalf("replay without reduction: %v", err)
	}
}

func TestMTCrashInWorkerThread(t *testing.T) {
	src := `
        .data
shared: .word 0
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
mspin:  j    mspin          # main spins forever; worker crashes
worker: li   t0, 100
wloop:  addi t0, t0, -1
        bnez t0, wloop
boom:   lw   a0, (zero)
`
	res, rep, _, img := recordMT(t, src, 2, Config{Cache: tinyCache()})
	if res.Crash == nil || res.Crash.TID != 1 {
		t.Fatalf("crash = %+v; want in thread 1", res.Crash)
	}
	logs := rep.FLLs[1]
	last := logs[len(logs)-1]
	if last.Fault == nil || last.Fault.PC != img.MustSymbol("boom") {
		t.Fatalf("fault footer = %+v", last.Fault)
	}
	// Replay the crashed worker alone.
	r := NewReplayer(img, logs)
	rr, err := r.Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Fault == nil || rr.Fault.PC != img.MustSymbol("boom") {
		t.Errorf("replayed fault = %+v", rr.Fault)
	}
}
