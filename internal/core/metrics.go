package core

import "bugnet/internal/obs"

// Recorder wire-path counters. All of them are unlabeled, preallocated
// handles updated in batches: the per-instruction hooks (loggable, fetch)
// touch only the recorder's plain uint64 tallies, and commit() exports
// the deltas once per interval batch. Nothing here runs per instruction,
// which is what keeps the RecordPerInstr bench gate honest.
var (
	mRecordIntervals = obs.Default.Counter("bugnet_record_intervals_total",
		"Checkpoint intervals committed to the log stores.")
	mRecordOps = obs.Default.Counter("bugnet_record_ops_total",
		"Loggable memory operations seen by the first-load filter.")
	mRecordLoggedOps = obs.Default.Counter("bugnet_record_logged_ops_total",
		"Memory operations actually logged (first-load misses).")
	mRecordFaults = obs.Default.Counter("bugnet_record_faults_total",
		"Faults that triggered crash-path log collection.")
)

// exportCounters publishes the recorder's tallies accumulated since the
// last commit. Called with the staged intervals still pending so their
// count is visible.
func (r *Recorder) exportCounters() {
	mRecordIntervals.Add(uint64(len(r.fllPend)))
	mRecordOps.Add(r.totalOps - r.exportedTotal)
	mRecordLoggedOps.Add(r.loggedOps - r.exportedLogged)
	r.exportedTotal = r.totalOps
	r.exportedLogged = r.loggedOps
}
