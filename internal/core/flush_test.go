package core

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/kernel"
)

// TestFlushIdempotent: Flush finalizes the open partial intervals exactly
// once; further Flush calls (or a Flush after the fault path already
// collected the logs) must not append empty duplicate intervals to the
// stores.
func TestFlushIdempotent(t *testing.T) {
	img := asm.MustAssemble("spin.s", `
        .data
w:      .word 7
        .text
main:   la   t0, w
loop:   lw   t1, (t0)
        addi t1, t1, 1
        sw   t1, (t0)
        j    loop
`)
	m := kernel.New(img, kernel.Config{MaxSteps: 5_000}, nil)
	rec := NewRecorder(m, Config{IntervalLength: 1_000, Cache: tinyCache()})
	m.Run() // step budget expires mid-interval

	rec.Flush()
	first := rec.FLLStore().Stats()
	if first.TotalCount == 0 {
		t.Fatal("flush finalized nothing")
	}
	for _, it := range rec.FLLStore().All() {
		if it.Instructions == 0 {
			t.Fatalf("flush appended an empty interval: %+v", it)
		}
	}

	rec.Flush()
	rec.Flush()
	if got := rec.FLLStore().Stats(); got != first {
		t.Fatalf("repeated Flush changed the store: first %+v, after %+v", first, got)
	}
	if got := rec.MRLStore().Stats().TotalCount; got != 0 {
		t.Fatalf("uniprocessor flush produced %d MRLs", got)
	}

	// The report built after double-Flush replays cleanly.
	rep := rec.Report()
	rr, err := NewReplayer(img, rep.FLLs[0]).Run()
	if err != nil {
		t.Fatalf("replay after double flush: %v", err)
	}
	if rr.Intervals != first.TotalCount {
		t.Errorf("replayed %d intervals, stores hold %d", rr.Intervals, first.TotalCount)
	}
}

// TestReportMetaCacheBounded: the recorder's metadata cache must track
// the retained window, not the whole run — continuous recording under a
// budget would otherwise regrow the RAM ceiling the disk backend removes.
func TestReportMetaCacheBounded(t *testing.T) {
	img := asm.MustAssemble("spin.s", `
        .data
w:      .word 7
        .text
main:   la   t0, w
loop:   lw   t1, (t0)
        addi t1, t1, 1
        sw   t1, (t0)
        j    loop
`)
	m := kernel.New(img, kernel.Config{MaxSteps: 60_000}, nil)
	rec := NewRecorder(m, Config{IntervalLength: 500, FLLBudget: 2_000, Cache: tinyCache()})
	m.Run()
	rec.Flush()
	st := rec.FLLStore().Stats()
	if st.EvictedCount == 0 {
		t.Fatal("budget never evicted; shrink it")
	}
	if len(rec.fllMeta) != st.RetainedCount {
		t.Fatalf("meta cache holds %d entries for %d retained intervals",
			len(rec.fllMeta), st.RetainedCount)
	}
	// The cached path still produces a coherent, replayable report.
	rep := rec.Report()
	rr, err := NewReplayer(img, rep.FLLs[0]).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Instructions != rec.FLLStore().ReplayWindow(0) {
		t.Fatalf("replayed %d, window %d", rr.Instructions, rec.FLLStore().ReplayWindow(0))
	}
}

// TestFlushAfterFaultAppendsNothing: the crash path already finalizes
// every thread's interval; a defensive Flush afterwards must be a no-op.
func TestFlushAfterFaultAppendsNothing(t *testing.T) {
	img := asm.MustAssemble("crash.s", `
main:   li   t0, 0
boom:   lw   a0, (t0)
`)
	m := kernel.New(img, kernel.Config{}, nil)
	rec := NewRecorder(m, Config{Cache: tinyCache()})
	res := m.Run()
	if res.Crash == nil {
		t.Fatal("no crash")
	}
	before := rec.FLLStore().Stats()
	rec.Flush()
	if got := rec.FLLStore().Stats(); got != before {
		t.Fatalf("flush after fault changed the store: %+v vs %+v", got, before)
	}
}
