package core

import (
	"fmt"
	"sort"

	"bugnet/internal/asm"
	"bugnet/internal/dict"
)

// constraint is one cross-thread ordering requirement derived from an MRL
// entry, with instruction counts rebased to replay-local indices (counted
// from the start of each thread's retained window).
type constraint struct {
	local  uint64 // local instructions committed before the synchronizing op
	remote int    // remote thread id
	rIC    uint64 // required remote progress (replay-local)
}

// MultiReplayResult summarizes a multithreaded replay (paper §5.2).
type MultiReplayResult struct {
	// Threads holds each thread's single-thread replay result.
	Threads map[int]*ReplayResult
	// Order is the reconstructed valid sequential interleaving, as
	// (thread id) per executed instruction, retained only when
	// CollectOrder was set (it is O(total instructions)).
	Order []int
	// Constraints is the number of ordering constraints applied.
	Constraints int
	// DroppedConstraints counts constraints referencing checkpoints that
	// fell out of the retained window (treated as already satisfied).
	DroppedConstraints int
	// Races holds the data races inferred during replay.
	Races []Race
	// Known holds each thread's §7.1 known-memory words (ascending),
	// populated only when the replayer ran with TrackKnown.
	Known map[int][]uint32
}

// MultiReplayer replays every thread of a crash report and reconstructs a
// valid sequential order of the memory operations across threads from the
// Memory Race Logs, as described in paper §5.2. Each thread replays
// independently (its FLLs are self-contained); the MRLs only constrain the
// interleaving.
type MultiReplayer struct {
	img    *asm.Image
	report *CrashReport

	// CollectOrder retains the full interleaving in the result.
	CollectOrder bool
	// DetectRaces runs the synchronization-aware race analysis during
	// replay (see racedetect.go).
	DetectRaces bool
	// LogCodeLoads must match the recording configuration. It is seeded
	// from the report by NewMultiReplayer.
	LogCodeLoads bool
	// DictOptions must match the recording configuration; seeded from
	// the report by NewMultiReplayer.
	DictOptions dict.Options
	// TraceDepth, when positive, keeps a trace ring of the crashing
	// thread's last TraceDepth instructions (report.Crash must be set),
	// delivered in that thread's ReplayResult.Trace.
	TraceDepth int
	// MaxPages caps each thread's replay memory (see Replayer.MaxPages).
	MaxPages int
	// TrackKnown maintains each thread's §7.1 known-memory bitmap during
	// replay and delivers the touched words in the result. Debug tooling
	// over multithreaded reports (and the map-vs-bitmap parity tests) use
	// it; the triage hot path leaves it off.
	TrackKnown bool
}

// NewMultiReplayer builds a replayer over all threads in the report,
// adopting the recording options the report carries.
func NewMultiReplayer(img *asm.Image, report *CrashReport) *MultiReplayer {
	return &MultiReplayer{
		img:          img,
		report:       report,
		LogCodeLoads: report.LogCodeLoads,
		DictOptions:  report.DictOptions,
	}
}

// threadCtx is one thread's replay machine plus its constraint queue. The
// machine's Pos is the thread's replay-local progress; its snapshot/restore
// capability is what a future parallel interval replay would checkpoint.
type threadCtx struct {
	tid         int
	m           *ReplayMachine
	constraints []constraint
	nextCon     int
}

// Run replays all threads under the MRL ordering constraints.
func (m *MultiReplayer) Run() (*MultiReplayResult, error) {
	if m.report.Binary.TextLen != 0 {
		if err := m.report.Binary.Matches(m.img); err != nil {
			return nil, err
		}
	}
	tids := make([]int, 0, len(m.report.FLLs))
	for tid := range m.report.FLLs {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	if len(tids) == 0 {
		return &MultiReplayResult{Threads: map[int]*ReplayResult{}}, nil
	}
	maxTID := tids[len(tids)-1]

	res := &MultiReplayResult{Threads: make(map[int]*ReplayResult)}
	ctxs := make([]*threadCtx, maxTID+1)
	var det *raceDetector
	if m.DetectRaces {
		det = newRaceDetector(m.img, maxTID+1)
	}

	// Replay-local base index of each (tid, cid) interval.
	base := make(map[int]map[uint32]uint64)
	for _, tid := range tids {
		base[tid] = make(map[uint32]uint64)
		var cum uint64
		for _, l := range m.report.FLLs[tid] {
			base[tid][l.CID] = cum
			cum += l.Length
		}
	}

	// Build per-thread constraint lists from the MRLs. Each MRL is
	// materialized once here (the constraints are compact) and dropped; a
	// log whose paired FLL fell out of the window is never decoded at all.
	for _, tid := range tids {
		tc := &threadCtx{tid: tid}
		ctxs[tid] = tc
		for _, mref := range m.report.MRLs[tid] {
			localBase, ok := base[tid][mref.CID]
			if !ok {
				res.DroppedConstraints += int(mref.NumEntries)
				continue // the paired FLL fell out of the window
			}
			ml, err := mref.Open()
			if err != nil {
				return nil, fmt.Errorf("core: materializing MRL T%d C%d: %w", tid, mref.CID, err)
			}
			for _, e := range ml.Entries {
				rt := int(e.RemoteTID)
				var remoteBase uint64
				haveRemote := false
				if rt <= maxTID && base[rt] != nil {
					remoteBase, haveRemote = base[rt][e.RemoteCID]
				}
				if !haveRemote {
					// The remote interval precedes the retained window:
					// everything in it happened before replay starts, so
					// the constraint is vacuously satisfied.
					res.DroppedConstraints++
					continue
				}
				tc.constraints = append(tc.constraints, constraint{
					local:  localBase + e.LocalIC,
					remote: rt,
					rIC:    remoteBase + e.RemoteIC,
				})
			}
		}
		sort.Slice(tc.constraints, func(i, j int) bool {
			return tc.constraints[i].local < tc.constraints[j].local
		})
		res.Constraints += len(tc.constraints)
	}

	// Build the replay states.
	for _, tid := range tids {
		tc := ctxs[tid]
		r := NewReplayer(m.img, m.report.FLLs[tid])
		r.LogCodeLoads = m.LogCodeLoads
		r.DictOptions = m.DictOptions
		r.MaxPages = m.MaxPages
		if m.TraceDepth > 0 && m.report.Crash != nil && tid == m.report.Crash.TID {
			r.TraceDepth = m.TraceDepth
		}
		if det != nil {
			tcc := tc
			r.OnAccess = func(pc uint32, wordAddr uint32, isWrite bool) {
				det.access(tcc.tid, tcc.m.Pos(), pc, wordAddr, isWrite)
			}
		}
		tc.m = r.Machine(MachineOptions{TrackKnown: m.TrackKnown})
	}

	// Interleave, honoring constraints.
	//
	// On the triage hot path (no order collection, no race detection) each
	// scheduling turn batches a thread through the block engine up to its
	// next constraint gate or the end of its window: every thread's replay
	// is independently deterministic (its FLLs are self-contained), and
	// batching only ever runs a thread *further* before others resume, so
	// any interleaving the batched schedule produces is one the MRL
	// constraints admit. Order collection and race detection observe every
	// access in a single global interleaving, so they keep the historical
	// one-instruction-per-turn schedule.
	batched := !m.CollectOrder && det == nil
	active := 0
	for _, tid := range tids {
		if !ctxs[tid].m.Done() {
			active++
		}
	}
	for active > 0 {
		progressed := false
		for _, tid := range tids {
			tc := ctxs[tid]
			if tc.m.Done() || !m.satisfied(tc, ctxs) {
				continue
			}
			var executed uint64
			var err error
			if batched {
				limit := tc.m.Window() - tc.m.Pos()
				if tc.nextCon < len(tc.constraints) {
					// satisfied consumed every constraint at the current
					// position, so the next gate is strictly ahead.
					if d := tc.constraints[tc.nextCon].local - tc.m.Pos(); d < limit {
						limit = d
					}
				}
				executed, err = tc.m.StepN(limit)
			} else {
				executed, err = m.stepThread(tc)
			}
			if err != nil {
				return nil, fmt.Errorf("thread %d: %w", tid, err)
			}
			if executed > 0 {
				progressed = true
				if m.CollectOrder {
					for i := uint64(0); i < executed; i++ {
						res.Order = append(res.Order, tid)
					}
				}
			}
			if tc.m.Done() {
				active--
				progressed = true
			}
		}
		if !progressed && active > 0 {
			return nil, fmt.Errorf("core: multithreaded replay deadlocked (inconsistent or truncated MRLs)")
		}
	}

	for _, tid := range tids {
		res.Threads[tid] = ctxs[tid].m.Result()
	}
	if m.TrackKnown {
		res.Known = make(map[int][]uint32, len(tids))
		for _, tid := range tids {
			res.Known[tid] = ctxs[tid].m.KnownWords()
		}
	}
	if det != nil {
		res.Races = det.races()
	}
	return res, nil
}

// satisfied reports whether tc may execute its next instruction: every
// constraint gating the instruction at the current progress index must see
// the remote thread far enough along.
func (m *MultiReplayer) satisfied(tc *threadCtx, ctxs []*threadCtx) bool {
	for tc.nextCon < len(tc.constraints) && tc.constraints[tc.nextCon].local == tc.m.Pos() {
		c := tc.constraints[tc.nextCon]
		rc := ctxs[c.remote]
		if rc == nil {
			tc.nextCon++ // remote thread left no logs at all: vacuous
			continue
		}
		if rc.m.Pos() < c.rIC {
			return false // must wait for the remote thread
		}
		tc.nextCon++
	}
	return true
}

// stepThread advances one thread by at most one instruction (the machine
// handles interval transitions). It reports how many instructions
// executed — crossing into end-of-window executes nothing.
func (m *MultiReplayer) stepThread(tc *threadCtx) (uint64, error) {
	before := tc.m.Pos()
	err := tc.m.StepOne()
	return tc.m.Pos() - before, err
}
