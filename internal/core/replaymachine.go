package core

import (
	"bugnet/internal/cpu"
	"bugnet/internal/fll"
	"bugnet/internal/mem"
)

// MachineOptions tunes a ReplayMachine.
type MachineOptions struct {
	// TrackKnown maintains the §7.1 known-memory set: the word addresses
	// the replayed window has touched (injected first loads or replayed
	// stores), held as a page-granular bitmap (mem.KnownSet). Debuggers
	// need it for ReadWord's unknown-memory semantics; the multithreaded
	// triage replay disables it to keep even that branch-and-bitmap write
	// off the per-access hot path.
	TrackKnown bool
}

// ReplayMachine is the incremental single-thread replay engine: the replay
// state machine of Replayer, advanced one instruction at a time with
// interval transitions handled internally, plus full-state snapshot and
// restore. It is the shared substrate of the local debugger
// (core.Debugger), the time-travel subsystem (internal/timetravel), the
// multithreaded replayer, and — via snapshots — any future parallel
// interval replay.
//
// The machine takes ownership of the Replayer it is built from: Machine
// installs an access hook wrapper (chaining any hook already set, as the
// multithreaded replayer's race detector relies on), and the Replayer must
// not be mutated or reused afterwards.
type ReplayMachine struct {
	r     *Replayer
	st    *state
	pos   uint64
	total uint64
	done  bool
	known *mem.KnownSet // nil unless TrackKnown
}

// Machine wraps the replayer in an incremental stepping engine positioned
// at the start of the window.
func (r *Replayer) Machine(opts MachineOptions) *ReplayMachine {
	m := &ReplayMachine{r: r}
	for _, l := range r.logs {
		m.total += l.Length
	}
	if opts.TrackKnown {
		m.known = mem.NewKnownSet()
		user := r.OnAccess
		r.OnAccess = func(pc uint32, wordAddr uint32, isWrite bool) {
			m.known.Add(wordAddr)
			if user != nil {
				user(pc, wordAddr, isWrite)
			}
		}
	}
	m.st = r.newState()
	m.done = !m.st.next()
	return m
}

// Reset rewinds the machine to the start of the window, re-deriving all
// replay state (including the known-memory set) from the logs.
func (m *ReplayMachine) Reset() {
	if m.known != nil {
		m.known.Reset()
	}
	m.st = m.r.newState()
	m.pos = 0
	m.done = !m.st.next()
}

// Window returns the total instructions the retained logs cover.
func (m *ReplayMachine) Window() uint64 { return m.total }

// Pos returns the number of instructions executed so far.
func (m *ReplayMachine) Pos() uint64 { return m.pos }

// Done reports whether the window is exhausted.
func (m *ReplayMachine) Done() bool { return m.done }

// PC returns the current program counter.
func (m *ReplayMachine) PC() uint32 { return m.st.c.PC }

// Registers returns the current architectural state.
func (m *ReplayMachine) Registers() cpu.Snapshot { return m.st.c.State() }

// Fault returns the crash record of the final log, if any.
func (m *ReplayMachine) Fault() *fll.FaultRecord {
	if len(m.r.logs) == 0 {
		return nil
	}
	return m.r.logs[len(m.r.logs)-1].Fault
}

// Trace returns the verification/backtrace ring (oldest first), empty
// unless the Replayer was built with TraceDepth > 0.
func (m *ReplayMachine) Trace() []TraceEntry {
	if m.st.trace == nil {
		return nil
	}
	return m.st.trace.entries()
}

// Result builds the replay summary at the current position (the
// multithreaded replayer calls it once each thread's window is exhausted).
func (m *ReplayMachine) Result() *ReplayResult { return m.st.result() }

// StepOne advances exactly one instruction, handling interval transitions
// on both sides. At the end of the window it sets Done and returns nil.
func (m *ReplayMachine) StepOne() error {
	_, err := m.StepN(1)
	return err
}

// StepN advances up to n instructions through the predecoded block engine,
// handling interval transitions, and returns how many executed. It stops
// early at the end of the window (setting Done) or on error. Breakpoint
// and watchpoint policing is the caller's job: consumers batch only across
// stretches where no per-instruction checks are required (the time-travel
// engine bounds batches by its checkpoint grid and stop conditions).
func (m *ReplayMachine) StepN(n uint64) (uint64, error) {
	if m.done {
		// Includes the window that never opened: a first interval whose
		// encoded bytes failed to load parks its error in the state.
		return 0, m.st.err
	}
	var done uint64
	for {
		for m.st.intervalDone() {
			if err := m.st.finishInterval(); err != nil {
				return done, err
			}
			if !m.st.next() {
				m.done = true
				return done, m.st.err
			}
		}
		if done == n {
			return done, nil
		}
		batch := m.st.cur.Length - m.st.executed
		if left := n - done; left < batch {
			batch = left
		}
		executed, err := m.st.runBatch(batch)
		done += executed
		m.pos += executed
		if err != nil {
			return done, err
		}
	}
}

// Known reports whether the recorded window has touched addr's word so
// far. Always false when the machine was built without TrackKnown.
func (m *ReplayMachine) Known(addr uint32) bool {
	return m.known != nil && m.known.Has(addr)
}

// KnownWords returns the touched word addresses in ascending order.
func (m *ReplayMachine) KnownWords() []uint32 {
	if m.known == nil {
		return []uint32{}
	}
	return m.known.Words()
}

// ReadWord inspects replayed memory under the paper's §7.1 semantics:
// known is false for locations the recorded window has not touched —
// their values were never logged and cannot be examined. Program text is
// always known (the developer has the binary). Requires TrackKnown.
func (m *ReplayMachine) ReadWord(addr uint32) (value uint32, known bool) {
	wordAddr := addr &^ 3
	if m.known == nil || !m.known.Has(wordAddr) {
		img := m.r.img
		if wordAddr >= img.TextBase && int(wordAddr-img.TextBase)+4 <= len(img.Text) {
			if v, err := m.st.mem.LoadWord(wordAddr); err == nil {
				return v, true
			}
		}
		return 0, false
	}
	v, err := m.st.mem.LoadWord(wordAddr)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ReplaySnapshot is a frozen logical copy of an in-flight replay: memory
// image, architectural state, log cursors (interval index, bit position,
// prefetched entry), dictionary contents, trace ring and known-memory
// bitmap. The memory image and known set are captured copy-on-write
// (O(directory), not O(pages)), so taking a checkpoint no longer
// deep-copies page arrays or word maps; pages are copied lazily as the
// live machine dirties them. Restoring one reproduces the replay exactly
// as it was at Pos — the checkpoint primitive behind O(K) reverse
// execution. A snapshot is immutable and may be restored any number of
// times.
type ReplaySnapshot struct {
	pos  uint64
	done bool

	mem    *mem.Memory
	regs   cpu.Snapshot
	ic     uint64
	halted bool
	fault  *cpu.FaultInfo

	idx      int
	executed uint64
	total    uint64
	injected uint64
	reader   *fll.Reader // refers to its own frozen dictionary clone
	trace    *traceRing
	err      error

	known *mem.KnownSet
	bytes int64
}

// Pos returns the instruction position the snapshot was taken at.
func (s *ReplaySnapshot) Pos() uint64 { return s.pos }

// SizeBytes estimates the snapshot's worst-case memory footprint, for
// checkpoint byte budgets: the dominant terms are the memory pages and
// the known-memory bitmap. Copy-on-write sharing usually makes the real
// marginal cost of a snapshot far smaller; budgets deliberately charge
// the conservative unshared figure, since every shared page may end up
// privately copied once the machine runs on.
func (s *ReplaySnapshot) SizeBytes() int64 { return s.bytes }

// Snapshot captures the machine's complete replay state.
func (m *ReplayMachine) Snapshot() *ReplaySnapshot {
	st := m.st
	s := &ReplaySnapshot{
		pos:      m.pos,
		done:     m.done,
		mem:      st.mem.Snapshot(),
		regs:     st.c.State(),
		ic:       st.c.IC,
		halted:   st.c.Halted,
		idx:      st.idx,
		executed: st.executed,
		total:    st.total,
		injected: st.injected,
		trace:    st.trace.clone(),
		err:      st.err,
	}
	if st.c.Fault != nil {
		f := *st.c.Fault
		s.fault = &f
	}
	if st.reader != nil {
		d := st.d.Clone()
		s.reader = st.reader.Clone(d)
	}
	s.known = m.known.Clone()
	s.bytes = s.mem.Footprint() + s.known.SizeBytes() + 512
	if st.d != nil {
		s.bytes += int64(st.d.Size()) * 8
	}
	if s.trace != nil {
		s.bytes += int64(len(s.trace.buf)) * 12
	}
	return s
}

// Restore installs a snapshot, copying out of it (copy-on-write for the
// memory image and known set) so the snapshot stays reusable. The machine
// must have been built from the same logs the snapshot was taken over.
func (m *ReplayMachine) Restore(s *ReplaySnapshot) {
	st := m.st
	st.mem = s.mem.Snapshot()
	st.c.Mem = st.mem
	st.c.InvalidateFetchCache()
	st.c.Restore(s.regs)
	st.c.IC = s.ic
	st.c.Halted = s.halted
	st.c.Fault = nil
	if s.fault != nil {
		f := *s.fault
		st.c.Fault = &f
	}
	st.idx = s.idx
	// The current decoded interval rides inside the snapshot's reader; a
	// lazy window is never re-materialized on restore.
	st.cur = nil
	if s.reader != nil {
		st.cur = s.reader.Log()
	}
	st.executed = s.executed
	st.total = s.total
	st.injected = s.injected
	st.trace = s.trace.clone()
	st.err = s.err
	st.d = nil
	st.reader = nil
	if s.reader != nil {
		// The snapshot's reader refers to the snapshot's frozen dictionary;
		// clone the pair so the restored cursor updates a private table.
		d := s.reader.Dict().Clone()
		st.d = d
		st.reader = s.reader.Clone(d)
	}
	m.pos = s.pos
	m.done = s.done
	if m.known != nil {
		m.known = s.known.Clone()
		if m.known == nil { // snapshot of a machine without tracking
			m.known = mem.NewKnownSet()
		}
	}
}
