// Package chaos is the soak harness that proves the cluster's durability
// contract under faults: it spawns an in-process cluster, drives a
// seeded storm of kills, restarts, partitions, and disk faults against
// it while a paced sender uploads the loadgen corpus, then heals
// everything and asserts the invariant — every acked report is durably
// readable and replayable from the surviving cluster, and replication
// debt converges to zero. The fault schedule is a pure function of the
// seed (schedule.go), so a failing storm reproduces from its printed
// seed.
package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"bugnet/internal/cluster"
	"bugnet/internal/faultinject"
	"bugnet/internal/loadgen"
	"bugnet/internal/triage"
)

// Options configures one storm.
type Options struct {
	// Seed drives both the fault schedule and every probabilistic draw
	// inside the fault plane.
	Seed int64
	// Nodes is the cluster size (default 3).
	Nodes int
	// Duration is the storm length (default 60s).
	Duration time.Duration
	// RPS paces the sender (default 25).
	RPS int
	// Corpus is how many distinct reports the sender cycles through
	// (default 32).
	Corpus int
	// Tick is the schedule granularity (default 500ms).
	Tick time.Duration
	// BaseDir is where the nodes' stores live (required).
	BaseDir string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Report is the storm's outcome — the JSON artifact the CI gate reads.
type Report struct {
	Seed   int64   `json:"seed"`
	Nodes  int     `json:"nodes"`
	Ticks  int     `json:"ticks"`
	Events []Event `json:"events"`

	Sent   int `json:"sent"`
	Acked  int `json:"acked"`
	Shed   int `json:"shed"`   // 429/503 answers: refused, not lost
	Errors int `json:"errors"` // transport failures and 5xx answers

	// LostReports lists acked ids that were NOT durably readable from
	// the healed cluster — any entry is an invariant violation.
	LostReports []string `json:"lost_reports,omitempty"`
	// FailedVerdicts lists acked ids whose replay did not complete.
	FailedVerdicts []string `json:"failed_verdicts,omitempty"`
	// RepairDebt is the summed residual replication debt after the
	// convergence window (must be zero).
	RepairDebt int `json:"repair_debt"`
	// MissingMetrics lists expected metric families absent from /metrics.
	MissingMetrics []string `json:"missing_metrics,omitempty"`
	// LeakedGoroutines is how many goroutines outlived the cluster
	// beyond the settle window.
	LeakedGoroutines int `json:"leaked_goroutines"`

	OK bool `json:"ok"`
}

// metricFamilies are the observability series a storm must leave behind
// in a /metrics scrape — proof the retry, breaker, and fault planes all
// actually engaged.
var metricFamilies = []string{
	"bugnet_retry_total",
	"bugnet_breaker_state",
	"bugnet_faults_injected_total",
	"bugnet_cluster_repairs_total",
}

// Run executes one storm and returns its report. The error return is for
// harness failures (could not spawn, could not build the corpus);
// invariant violations are reported in Report fields with OK=false.
func Run(opt Options) (*Report, error) {
	if opt.Nodes <= 0 {
		opt.Nodes = 3
	}
	if opt.Duration <= 0 {
		opt.Duration = 60 * time.Second
	}
	if opt.RPS <= 0 {
		opt.RPS = 25
	}
	if opt.Corpus <= 0 {
		opt.Corpus = 32
	}
	if opt.Tick <= 0 {
		opt.Tick = 500 * time.Millisecond
	}
	if opt.BaseDir == "" {
		return nil, fmt.Errorf("chaos: Options.BaseDir is required")
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	goroutinesBefore := runtime.NumGoroutine()

	reg := triage.NewImageRegistry()
	corpus, err := loadgen.Corpus(opt.Corpus, reg)
	if err != nil {
		return nil, err
	}
	plane := faultinject.NewPlane(opt.Seed)
	lc, err := cluster.SpawnLocal(opt.Nodes, cluster.SpawnOptions{
		BaseDir:       opt.BaseDir,
		Resolver:      reg.Resolve,
		Replication:   3,
		WriteQuorum:   2,
		RetryInterval: 200 * time.Millisecond,
		Workers:       1,
		PeerTimeout:   3 * time.Second,
		// A short cooldown so circuits re-probe quickly after heals.
		BreakerCooldown: time.Second,
		FaultPlane:      plane,
	})
	if err != nil {
		return nil, err
	}
	urls := lc.URLs()

	ticks := int(opt.Duration / opt.Tick)
	if ticks < 1 {
		ticks = 1
	}
	rep := &Report{Seed: opt.Seed, Nodes: opt.Nodes, Ticks: ticks}
	rep.Events = Schedule(opt.Seed, opt.Nodes, ticks)
	byTick := make(map[int][]Event)
	for _, ev := range rep.Events {
		byTick[ev.Tick] = append(byTick[ev.Tick], ev)
	}
	logf("storm: seed %d, %d nodes, %d ticks of %s, %d events, %d rps",
		opt.Seed, opt.Nodes, ticks, opt.Tick, len(rep.Events), opt.RPS)

	// The sender: paced uploads of corpus blobs to random nodes, with an
	// ack ledger. 201 and 200 (duplicate) are both acks — the server
	// claimed durability either way. Sheds and errors are legitimate
	// under a storm; only an acked-then-lost report is a violation.
	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: http.DefaultTransport.(*http.Transport).Clone(),
	}
	var mu sync.Mutex
	acked := make(map[string]bool)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eedfeed))
		tk := time.NewTicker(time.Second / time.Duration(opt.RPS))
		defer tk.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tk.C:
			}
			blob := corpus[rng.Intn(len(corpus))]
			target := urls[rng.Intn(len(urls))]
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Post(target+"/api/v1/reports",
					"application/octet-stream", bytes.NewReader(blob))
				mu.Lock()
				defer mu.Unlock()
				rep.Sent++
				if err != nil {
					rep.Errors++
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusCreated, http.StatusOK:
					acked[blobSum(blob)] = true
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					rep.Shed++
				default:
					rep.Errors++
				}
			}()
		}
	}()

	// The storm loop: apply each tick's events, then let traffic run.
	for tick := 0; tick < ticks; tick++ {
		for _, ev := range byTick[tick] {
			applyEvent(lc, plane, urls, ev)
			logf("tick %d: %s node %d (peer %d)", tick, ev.Kind, ev.Node, ev.Peer)
		}
		time.Sleep(opt.Tick)
	}
	close(stop)
	wg.Wait()

	// Heal everything the schedule left dangling (it should not have, but
	// the invariant check must run against a fully healed cluster).
	plane.HealAll()
	for _, ln := range lc.Nodes {
		if err := restartWithRetry(ln); err != nil {
			lc.Close()
			return nil, fmt.Errorf("chaos: restarting node after storm: %w", err)
		}
	}
	mu.Lock()
	rep.Acked = len(acked)
	ids := make([]string, 0, len(acked))
	for id := range acked {
		ids = append(ids, id)
	}
	mu.Unlock()
	sort.Strings(ids)
	logf("storm over: %d sent, %d acked, %d shed, %d errors; verifying",
		rep.Sent, rep.Acked, rep.Shed, rep.Errors)

	// Settle: replay queues drain so every verdict is final.
	for _, ln := range lc.Nodes {
		ln.Service.WaitIdle()
	}

	// Invariant 1: every acked report is durably readable — correct bytes
	// from EVERY node (local or proxied; reads also trigger read-repair,
	// which accelerates convergence below).
	for _, id := range ids {
		for _, u := range urls {
			if !readableFrom(client, u, id) {
				rep.LostReports = append(rep.LostReports, id+" via "+u)
				break
			}
		}
	}
	// ...and replayable: its replay verdict completed.
	for _, id := range ids {
		if !verdictDone(client, urls[0], id) {
			rep.FailedVerdicts = append(rep.FailedVerdicts, id)
		}
	}
	for _, ln := range lc.Nodes {
		ln.Service.WaitIdle() // read-repair may have queued fresh replays
	}

	// Invariant 2: replication debt converges to zero.
	debtDeadline := time.Now().Add(60 * time.Second)
	for {
		debt := 0
		for _, ln := range lc.Nodes {
			debt += ln.Node.RepairDebt()
		}
		rep.RepairDebt = debt
		if debt == 0 || time.Now().After(debtDeadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Invariant 3: the retry/breaker/fault instrumentation all left
	// series behind.
	rep.MissingMetrics = missingFamilies(client, urls[0])

	// Invariant 4: nothing outlives the cluster.
	lc.Close()
	client.CloseIdleConnections()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	settle := time.Now().Add(10 * time.Second)
	for {
		leaked := runtime.NumGoroutine() - goroutinesBefore - 2 // runtime slack
		if leaked < 0 {
			leaked = 0
		}
		rep.LeakedGoroutines = leaked
		if leaked == 0 || time.Now().After(settle) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	rep.OK = len(rep.LostReports) == 0 &&
		len(rep.FailedVerdicts) == 0 &&
		rep.RepairDebt == 0 &&
		len(rep.MissingMetrics) == 0 &&
		rep.LeakedGoroutines == 0
	return rep, nil
}

func applyEvent(lc *cluster.LocalCluster, plane *faultinject.Plane, urls []string, ev Event) {
	switch ev.Kind {
	case EventKill:
		lc.Nodes[ev.Node].Stop()
	case EventRestart:
		// Best effort mid-storm; the post-storm heal retries harder.
		lc.Nodes[ev.Node].Restart()
	case EventPartition:
		plane.Partition(urls[ev.Node], urls[ev.Peer])
	case EventHealPartition:
		plane.HealPartition(urls[ev.Node], urls[ev.Peer])
	case EventDiskFault:
		plane.SetDiskFault(fmt.Sprintf("node%d", ev.Node), &faultinject.DiskFault{
			Err:  faultinject.ErrInjectedIO,
			Prob: 0.5,
			Torn: true,
		})
	case EventDiskHeal:
		plane.SetDiskFault(fmt.Sprintf("node%d", ev.Node), nil)
	}
}

// restartWithRetry rebinds a node's address, tolerating the OS briefly
// holding the port after the storm's churn.
func restartWithRetry(ln *cluster.LocalNode) error {
	var err error
	for i := 0; i < 50; i++ {
		if err = ln.Restart(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}

// readableFrom fetches one report's raw bytes via a node and verifies
// they hash back to the id — durability means the content, not a 200.
func readableFrom(client *http.Client, base, id string) bool {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/api/v1/reports/" + id + "?raw=1")
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK && blobSum(data) == id {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// verdictDone reports whether a report's replay verdict reached "done".
func verdictDone(client *http.Client, base, id string) bool {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/api/v1/reports/" + id)
		if err == nil {
			var m triage.ReportMeta
			derr := json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if derr == nil && resp.StatusCode == http.StatusOK &&
				m.Verdict != nil && m.Verdict.State == triage.VerdictDone {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func missingFamilies(client *http.Client, base string) []string {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return append([]string{}, metricFamilies...)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return append([]string{}, metricFamilies...)
	}
	var missing []string
	for _, fam := range metricFamilies {
		if !strings.Contains(string(data), fam) {
			missing = append(missing, fam)
		}
	}
	return missing
}

func blobSum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
