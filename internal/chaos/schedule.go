package chaos

import (
	"math/rand"
	"sort"
)

// EventKind names one storm action.
type EventKind string

const (
	// EventKill takes a node off the network (listener closed).
	EventKill EventKind = "kill"
	// EventRestart rebinds a killed node's address.
	EventRestart EventKind = "restart"
	// EventPartition severs traffic both ways between Node and Peer.
	EventPartition EventKind = "partition"
	// EventHealPartition restores traffic between Node and Peer.
	EventHealPartition EventKind = "heal_partition"
	// EventDiskFault makes Node's disk fail half its writes with EIO,
	// torn, until healed.
	EventDiskFault EventKind = "disk_fault"
	// EventDiskHeal clears Node's disk fault.
	EventDiskHeal EventKind = "disk_heal"
)

// Event is one scheduled storm action.
type Event struct {
	Tick int       `json:"tick"`
	Kind EventKind `json:"kind"`
	Node int       `json:"node"`
	Peer int       `json:"peer,omitempty"` // partition partner
}

// Schedule derives a storm from (seed, nodes, ticks) as a pure function:
// the same inputs always produce the same event list, which is what makes
// a chaos run reproducible from its printed seed. Two invariants are
// maintained by construction: at least one node stays on the network at
// every tick, and the final tenth of the storm only heals, so the
// schedule ends with every node up, every partition healed, and every
// disk fault cleared.
func Schedule(seed int64, nodes, ticks int) []Event {
	rng := rand.New(rand.NewSource(seed))
	down := make(map[int]bool)
	parts := make(map[[2]int]bool)
	disk := make(map[int]bool)

	healFrom := ticks - ticks/10 - 1
	if healFrom < 0 {
		healFrom = 0
	}

	var events []Event
	emit := func(tick int, kind EventKind, node, peer int) {
		events = append(events, Event{Tick: tick, Kind: kind, Node: node, Peer: peer})
		switch kind {
		case EventKill:
			down[node] = true
		case EventRestart:
			delete(down, node)
		case EventPartition:
			parts[pairOf(node, peer)] = true
		case EventHealPartition:
			delete(parts, pairOf(node, peer))
		case EventDiskFault:
			disk[node] = true
		case EventDiskHeal:
			delete(disk, node)
		}
	}

	for tick := 0; tick < ticks && tick < healFrom; tick++ {
		for i := rng.Intn(3); i > 0; i-- {
			var cands []Event
			if len(down) < nodes-1 {
				for n := 0; n < nodes; n++ {
					if !down[n] {
						cands = append(cands, Event{Kind: EventKill, Node: n})
					}
				}
			}
			for _, n := range sortedKeys(down) {
				cands = append(cands, Event{Kind: EventRestart, Node: n})
			}
			for a := 0; a < nodes; a++ {
				for b := a + 1; b < nodes; b++ {
					if parts[pairOf(a, b)] {
						cands = append(cands, Event{Kind: EventHealPartition, Node: a, Peer: b})
					} else {
						cands = append(cands, Event{Kind: EventPartition, Node: a, Peer: b})
					}
				}
			}
			for n := 0; n < nodes; n++ {
				if disk[n] {
					cands = append(cands, Event{Kind: EventDiskHeal, Node: n})
				} else {
					cands = append(cands, Event{Kind: EventDiskFault, Node: n})
				}
			}
			if len(cands) == 0 {
				break
			}
			pick := cands[rng.Intn(len(cands))]
			emit(tick, pick.Kind, pick.Node, pick.Peer)
		}
	}

	// The heal tail: everything still broken is restored, spread over the
	// remaining ticks so recovery happens under load.
	tick := healFrom
	if tick >= ticks {
		tick = ticks - 1
	}
	for _, n := range sortedKeys(down) {
		emit(tick, EventRestart, n, 0)
		tick = nextHealTick(tick, ticks)
	}
	for _, p := range sortedPairs(parts) {
		emit(tick, EventHealPartition, p[0], p[1])
		tick = nextHealTick(tick, ticks)
	}
	for _, n := range sortedKeys(disk) {
		emit(tick, EventDiskHeal, n, 0)
		tick = nextHealTick(tick, ticks)
	}
	return events
}

func nextHealTick(tick, ticks int) int {
	if tick+1 < ticks {
		return tick + 1
	}
	return ticks - 1
}

func pairOf(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// sortedKeys / sortedPairs give the heal tail a deterministic order —
// map iteration would break schedule reproducibility.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedPairs(m map[[2]int]bool) [][2]int {
	out := make([][2]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
