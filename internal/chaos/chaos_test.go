package chaos

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestScheduleDeterministic: the schedule is a pure function of
// (seed, nodes, ticks) — rerunning a printed seed replays the exact
// storm.
func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, 5, 200)
	b := Schedule(42, 5, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Schedule(43, 5, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule for a 200-tick storm")
	}
}

// TestScheduleInvariants: at every prefix at least one node is on the
// network, and the completed schedule leaves everything healed.
func TestScheduleInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 99, 12345} {
		nodes := 3 + int(seed%3)
		evs := Schedule(seed, nodes, 120)
		down := map[int]bool{}
		parts := map[[2]int]bool{}
		disk := map[int]bool{}
		lastTick := -1
		for i, ev := range evs {
			if ev.Tick < lastTick {
				t.Fatalf("seed %d: event %d out of tick order", seed, i)
			}
			lastTick = ev.Tick
			if ev.Node < 0 || ev.Node >= nodes {
				t.Fatalf("seed %d: event %d targets node %d of %d", seed, i, ev.Node, nodes)
			}
			switch ev.Kind {
			case EventKill:
				down[ev.Node] = true
			case EventRestart:
				delete(down, ev.Node)
			case EventPartition:
				parts[pairOf(ev.Node, ev.Peer)] = true
			case EventHealPartition:
				delete(parts, pairOf(ev.Node, ev.Peer))
			case EventDiskFault:
				disk[ev.Node] = true
			case EventDiskHeal:
				delete(disk, ev.Node)
			default:
				t.Fatalf("seed %d: unknown event kind %q", seed, ev.Kind)
			}
			if len(down) >= nodes {
				t.Fatalf("seed %d: all %d nodes down after event %d", seed, nodes, i)
			}
		}
		if len(down) != 0 || len(parts) != 0 || len(disk) != 0 {
			t.Fatalf("seed %d: schedule ends unhealed: down=%v parts=%v disk=%v",
				seed, down, parts, disk)
		}
	}
}

// TestScheduleEventsRoundTripJSON: the storm report embeds the schedule;
// its encoding must survive a round trip for the artifact to be replayable.
func TestScheduleEventsRoundTripJSON(t *testing.T) {
	evs := Schedule(7, 3, 50)
	data, err := json.Marshal(evs)
	if err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, back) {
		t.Fatal("schedule changed across a JSON round trip")
	}
}

// TestChaosShortStorm is the e2e drill: a real (small) storm against a
// real in-process cluster, gated on the full invariant set. The CI
// chaos-smoke job runs the 60-second version via cmd/bugnet-chaos.
func TestChaosShortStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm in -short mode")
	}
	rep, err := Run(Options{
		Seed:     11,
		Nodes:    3,
		Duration: 2 * time.Second,
		Tick:     100 * time.Millisecond,
		RPS:      20,
		Corpus:   8,
		BaseDir:  t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acked == 0 {
		t.Fatalf("storm acked nothing (%d sent, %d shed, %d errors) — no durability was exercised",
			rep.Sent, rep.Shed, rep.Errors)
	}
	if !rep.OK {
		out, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("storm violated the durability contract:\n%s", out)
	}
}
