// Package mrl implements BugNet's Memory Race Log (paper §4.6).
//
// On a directory-based shared-memory multiprocessor, every coherence reply
// (write-invalidation acknowledgment, or data reply from a modified remote
// copy) carries the remote thread's execution state. The local thread logs
//
//	(local.IC, remote.TID, remote.CID, remote.IC)
//
// meaning: the local thread's operation at local.IC (counted within its
// current checkpoint interval) happened after the remote thread committed
// remote.IC instructions into its interval remote.CID. Checkpoints are
// asynchronous across threads (paper §4.6.2), which is why every entry
// carries the remote checkpoint id.
//
// The Reducer implements the vector-clock formulation of Netzer's
// transitive-reduction optimization (paper §4.6.3 adopts it from FDR): an
// ordering edge already implied by previously logged edges is not logged.
package mrl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Header identifies the thread and checkpoint interval an MRL belongs to,
// mirroring the FLL header fields used for pairing (paper §4.6.3).
type Header struct {
	PID       uint32
	TID       uint32
	CID       uint32
	Timestamp uint64
}

// Entry is one logged ordering constraint.
type Entry struct {
	LocalIC   uint64 // instructions committed in the local interval
	RemoteTID uint32
	RemoteCID uint32
	RemoteIC  uint64 // instructions committed in the remote interval
}

// Meta is everything a Memory Race Log records except the entries
// themselves; a Ref holds it decoded so ordering-constraint consumers can
// size and pair logs without materializing their entry lists.
type Meta struct {
	Header

	// IntervalLimit and MaxThreads fix the bit widths used for size
	// accounting, matching the paper's field sizing discussion.
	IntervalLimit uint64
	MaxThreads    uint32

	// NumEntries is the number of logged ordering constraints.
	NumEntries uint64
}

// Log is a finalized Memory Race Log for one checkpoint interval.
type Log struct {
	Meta
	Entries []Entry
}

// headerBytes is the serialized header cost.
const headerBytes = 3*4 + 8

// bitsFor returns the width needed to represent values in [0, n].
func bitsFor(n uint64) uint {
	w := uint(1)
	for 1<<w <= n {
		w++
	}
	return w
}

// EntryBits returns the bit width of one packed entry given the log's
// geometry: local.IC and remote.IC need log2(interval length) bits,
// remote.TID log2(max live threads), remote.CID a fixed 16 bits (bounded
// by how many checkpoints fit in memory, paper §4.2).
func (m *Meta) EntryBits() uint {
	icBits := bitsFor(m.IntervalLimit)
	tidBits := bitsFor(uint64(m.MaxThreads))
	return 2*icBits + tidBits + 16
}

// SizeBytes returns the storage footprint of the log.
func (m *Meta) SizeBytes() int64 {
	bits := m.NumEntries * uint64(m.EntryBits())
	return headerBytes + int64((bits+7)/8) + 8 // +8: entry count
}

// Writer accumulates MRL entries for one checkpoint interval.
type Writer struct {
	hdr           Header
	intervalLimit uint64
	maxThreads    uint32
	entries       []Entry
}

// NewWriter starts an MRL.
func NewWriter(hdr Header, intervalLimit uint64, maxThreads uint32) *Writer {
	if intervalLimit == 0 || maxThreads == 0 {
		panic("mrl: interval limit and max threads must be positive")
	}
	return &Writer{hdr: hdr, intervalLimit: intervalLimit, maxThreads: maxThreads}
}

// Reset re-opens the writer for a new interval, reusing the entry buffer
// so continuous recording stops re-growing one per interval. It
// invalidates any Log previously returned by Close (which aliases the
// buffer); recorders that finalize with CloseEncoded are unaffected.
func (w *Writer) Reset(hdr Header, intervalLimit uint64, maxThreads uint32) {
	if intervalLimit == 0 || maxThreads == 0 {
		panic("mrl: interval limit and max threads must be positive")
	}
	w.hdr = hdr
	w.intervalLimit = intervalLimit
	w.maxThreads = maxThreads
	w.entries = w.entries[:0]
}

// Add appends an ordering constraint.
func (w *Writer) Add(e Entry) { w.entries = append(w.entries, e) }

// Len returns the number of entries so far.
func (w *Writer) Len() int { return len(w.entries) }

// meta assembles the finalized metadata.
func (w *Writer) meta() Meta {
	return Meta{
		Header:        w.hdr,
		IntervalLimit: w.intervalLimit,
		MaxThreads:    w.maxThreads,
		NumEntries:    uint64(len(w.entries)),
	}
}

// Close finalizes the log as a decoded object.
func (w *Writer) Close() *Log {
	return &Log{Meta: w.meta(), Entries: w.entries}
}

// CloseEncoded finalizes the log straight to its wire encoding plus the
// metadata the retention layer needs, mirroring fll.Writer.CloseEncoded.
func (w *Writer) CloseEncoded() (Meta, []byte) {
	m := w.meta()
	return m, appendMarshal(&m, w.entries)
}

// Reducer decides which coherence-reply edges need logging. It maintains a
// vector clock per thread over *global* per-thread instruction counts
// (the recorder translates to interval-relative counts when logging).
//
// An edge "remote thread R had committed ric instructions when local
// thread L synchronized with it" is redundant if L's clock already knows
// R has reached ric — i.e. some chain of previously logged edges implies
// the ordering (Netzer's transitive reduction).
type Reducer struct {
	vc [][]uint64 // vc[t][u]: latest IC of u known to happen-before t's present
}

// NewReducer creates a reducer for up to n threads.
func NewReducer(n int) *Reducer {
	r := &Reducer{vc: make([][]uint64, n)}
	for i := range r.vc {
		r.vc[i] = make([]uint64, n)
	}
	return r
}

// Observe records that local thread l at (global) instruction count lic
// received a coherence reply from remote thread r at (global) count ric.
// It returns true if the edge must be logged, false if it is transitively
// implied by earlier edges.
func (d *Reducer) Observe(l int, lic uint64, r int, ric uint64) bool {
	d.vc[l][l] = lic
	if d.vc[r][r] < ric {
		d.vc[r][r] = ric
	}
	if d.vc[l][r] >= ric {
		return false // already ordered
	}
	// Log the edge and absorb the remote's knowledge: everything that
	// happened before the remote's current point now happens before us.
	for u := range d.vc[l] {
		if d.vc[r][u] > d.vc[l][u] {
			d.vc[l][u] = d.vc[r][u]
		}
	}
	if d.vc[l][r] < ric {
		d.vc[l][r] = ric
	}
	return true
}

// Clock returns a copy of thread t's current vector clock (for tests).
func (d *Reducer) Clock(t int) []uint64 {
	return append([]uint64(nil), d.vc[t]...)
}

// --- serialization ---

var magic = [4]byte{'B', 'M', 'R', 'L'}

const version = 1

// ErrBadFormat reports a malformed serialized log.
var ErrBadFormat = errors.New("mrl: bad serialized log")

// appendMarshal is the single serializer behind Log.Marshal and
// Writer.CloseEncoded.
func appendMarshal(m *Meta, entries []Entry) []byte {
	le := binary.LittleEndian
	out := make([]byte, 0, 64+len(entries)*24)
	out = append(out, magic[:]...)
	out = append(out, version)
	var tmp [8]byte
	put32 := func(v uint32) {
		le.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	put64 := func(v uint64) {
		le.PutUint64(tmp[:8], v)
		out = append(out, tmp[:8]...)
	}
	put32(m.PID)
	put32(m.TID)
	put32(m.CID)
	put64(m.Timestamp)
	put64(m.IntervalLimit)
	put32(m.MaxThreads)
	put64(uint64(len(entries)))
	for _, e := range entries {
		put64(e.LocalIC)
		put32(e.RemoteTID)
		put32(e.RemoteCID)
		put64(e.RemoteIC)
	}
	le.PutUint32(tmp[:4], crc32.ChecksumIEEE(out))
	out = append(out, tmp[:4]...)
	return out
}

// Marshal encodes the log for storage.
func (l *Log) Marshal() []byte {
	return appendMarshal(&l.Meta, l.Entries)
}

// parse validates a serialized log and decodes its metadata. If withEntries
// is true the entry list is decoded too, else it is skipped (the lazy-view
// path, which needs only the counters).
func parse(data []byte, withEntries bool) (Meta, []Entry, error) {
	le := binary.LittleEndian
	var m Meta
	if len(data) < 4 {
		return m, nil, ErrBadFormat
	}
	body, sum := data[:len(data)-4], le.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return m, nil, fmt.Errorf("%w: checksum mismatch", ErrBadFormat)
	}
	data = body
	if len(data) < 5+headerBytes+12+8 || [4]byte(data[:4]) != magic || data[4] != version {
		return m, nil, ErrBadFormat
	}
	pos := 5
	get32 := func() uint32 {
		v := le.Uint32(data[pos:])
		pos += 4
		return v
	}
	get64 := func() uint64 {
		v := le.Uint64(data[pos:])
		pos += 8
		return v
	}
	m.PID = get32()
	m.TID = get32()
	m.CID = get32()
	m.Timestamp = get64()
	m.IntervalLimit = get64()
	m.MaxThreads = get32()
	n := get64()
	if n > uint64(len(data)-pos)/24 {
		return m, nil, fmt.Errorf("%w: entry count %d exceeds payload", ErrBadFormat, n)
	}
	m.NumEntries = n
	if !withEntries {
		return m, nil, nil
	}
	entries := make([]Entry, n)
	for i := range entries {
		entries[i].LocalIC = get64()
		entries[i].RemoteTID = get32()
		entries[i].RemoteCID = get32()
		entries[i].RemoteIC = get64()
	}
	return m, entries, nil
}

// Unmarshal decodes a serialized log.
func Unmarshal(data []byte) (*Log, error) {
	m, entries, err := parse(data, true)
	if err != nil {
		return nil, err
	}
	return &Log{Meta: m, Entries: entries}, nil
}

// Ref is a lazily-decoded Memory Race Log: metadata decoded, entries
// materialized only on Open. See fll.Ref for the retention rationale.
type Ref struct {
	Meta
	load   func() ([]byte, error) // nil when log is set
	log    *Log                   // memory-backed fast path
	encLen int64                  // wire size when known; 0 = derive on demand
}

// NewRef wraps an already-decoded log as a view.
func NewRef(l *Log) *Ref { return &Ref{Meta: l.Meta, log: l} }

// OpenEncoded validates one serialized log and returns a view retaining
// the encoded bytes; entries decode on Open.
func OpenEncoded(data []byte) (*Ref, error) {
	m, _, err := parse(data, false)
	if err != nil {
		return nil, err
	}
	return &Ref{Meta: m, load: func() ([]byte, error) { return data, nil },
		encLen: int64(len(data))}, nil
}

// OpenLazy builds a view over encoded bytes behind load, validating and
// decoding the metadata now and re-loading on every Open.
func OpenLazy(load func() ([]byte, error)) (*Ref, error) {
	data, err := load()
	if err != nil {
		return nil, err
	}
	m, _, err := parse(data, false)
	if err != nil {
		return nil, err
	}
	return &Ref{Meta: m, load: load, encLen: int64(len(data))}, nil
}

// ParseMeta validates one serialized log and returns its metadata without
// decoding the entry list.
func ParseMeta(data []byte) (Meta, error) {
	m, _, err := parse(data, false)
	return m, err
}

// NewLazyRef builds a view from caller-validated metadata and a loader;
// see fll.NewLazyRef.
func NewLazyRef(m Meta, encodedLen int64, load func() ([]byte, error)) *Ref {
	return &Ref{Meta: m, load: load, encLen: encodedLen}
}

// Open materializes the full log.
func (r *Ref) Open() (*Log, error) {
	if r.log != nil {
		return r.log, nil
	}
	data, err := r.load()
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Encoded returns the log's wire encoding without decoding entries.
func (r *Ref) Encoded() ([]byte, error) {
	if r.load != nil {
		return r.load()
	}
	return r.log.Marshal(), nil
}

// EncodedLen returns the wire size without loading; see fll.EncodedLen.
func (r *Ref) EncodedLen() int64 {
	if r.encLen == 0 && r.log != nil {
		r.encLen = int64(len(r.log.Marshal()))
	}
	return r.encLen
}
