// Package mrl implements BugNet's Memory Race Log (paper §4.6).
//
// On a directory-based shared-memory multiprocessor, every coherence reply
// (write-invalidation acknowledgment, or data reply from a modified remote
// copy) carries the remote thread's execution state. The local thread logs
//
//	(local.IC, remote.TID, remote.CID, remote.IC)
//
// meaning: the local thread's operation at local.IC (counted within its
// current checkpoint interval) happened after the remote thread committed
// remote.IC instructions into its interval remote.CID. Checkpoints are
// asynchronous across threads (paper §4.6.2), which is why every entry
// carries the remote checkpoint id.
//
// The Reducer implements the vector-clock formulation of Netzer's
// transitive-reduction optimization (paper §4.6.3 adopts it from FDR): an
// ordering edge already implied by previously logged edges is not logged.
package mrl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Header identifies the thread and checkpoint interval an MRL belongs to,
// mirroring the FLL header fields used for pairing (paper §4.6.3).
type Header struct {
	PID       uint32
	TID       uint32
	CID       uint32
	Timestamp uint64
}

// Entry is one logged ordering constraint.
type Entry struct {
	LocalIC   uint64 // instructions committed in the local interval
	RemoteTID uint32
	RemoteCID uint32
	RemoteIC  uint64 // instructions committed in the remote interval
}

// Log is a finalized Memory Race Log for one checkpoint interval.
type Log struct {
	Header
	Entries []Entry

	// IntervalLimit and MaxThreads fix the bit widths used for size
	// accounting, matching the paper's field sizing discussion.
	IntervalLimit uint64
	MaxThreads    uint32
}

// headerBytes is the serialized header cost.
const headerBytes = 3*4 + 8

// bitsFor returns the width needed to represent values in [0, n].
func bitsFor(n uint64) uint {
	w := uint(1)
	for 1<<w <= n {
		w++
	}
	return w
}

// EntryBits returns the bit width of one packed entry given the log's
// geometry: local.IC and remote.IC need log2(interval length) bits,
// remote.TID log2(max live threads), remote.CID a fixed 16 bits (bounded
// by how many checkpoints fit in memory, paper §4.2).
func (l *Log) EntryBits() uint {
	icBits := bitsFor(l.IntervalLimit)
	tidBits := bitsFor(uint64(l.MaxThreads))
	return 2*icBits + tidBits + 16
}

// SizeBytes returns the storage footprint of the log.
func (l *Log) SizeBytes() int64 {
	bits := uint64(len(l.Entries)) * uint64(l.EntryBits())
	return headerBytes + int64((bits+7)/8) + 8 // +8: entry count
}

// Writer accumulates MRL entries for one checkpoint interval.
type Writer struct {
	hdr           Header
	intervalLimit uint64
	maxThreads    uint32
	entries       []Entry
}

// NewWriter starts an MRL.
func NewWriter(hdr Header, intervalLimit uint64, maxThreads uint32) *Writer {
	if intervalLimit == 0 || maxThreads == 0 {
		panic("mrl: interval limit and max threads must be positive")
	}
	return &Writer{hdr: hdr, intervalLimit: intervalLimit, maxThreads: maxThreads}
}

// Add appends an ordering constraint.
func (w *Writer) Add(e Entry) { w.entries = append(w.entries, e) }

// Len returns the number of entries so far.
func (w *Writer) Len() int { return len(w.entries) }

// Close finalizes the log.
func (w *Writer) Close() *Log {
	return &Log{
		Header:        w.hdr,
		Entries:       w.entries,
		IntervalLimit: w.intervalLimit,
		MaxThreads:    w.maxThreads,
	}
}

// Reducer decides which coherence-reply edges need logging. It maintains a
// vector clock per thread over *global* per-thread instruction counts
// (the recorder translates to interval-relative counts when logging).
//
// An edge "remote thread R had committed ric instructions when local
// thread L synchronized with it" is redundant if L's clock already knows
// R has reached ric — i.e. some chain of previously logged edges implies
// the ordering (Netzer's transitive reduction).
type Reducer struct {
	vc [][]uint64 // vc[t][u]: latest IC of u known to happen-before t's present
}

// NewReducer creates a reducer for up to n threads.
func NewReducer(n int) *Reducer {
	r := &Reducer{vc: make([][]uint64, n)}
	for i := range r.vc {
		r.vc[i] = make([]uint64, n)
	}
	return r
}

// Observe records that local thread l at (global) instruction count lic
// received a coherence reply from remote thread r at (global) count ric.
// It returns true if the edge must be logged, false if it is transitively
// implied by earlier edges.
func (d *Reducer) Observe(l int, lic uint64, r int, ric uint64) bool {
	d.vc[l][l] = lic
	if d.vc[r][r] < ric {
		d.vc[r][r] = ric
	}
	if d.vc[l][r] >= ric {
		return false // already ordered
	}
	// Log the edge and absorb the remote's knowledge: everything that
	// happened before the remote's current point now happens before us.
	for u := range d.vc[l] {
		if d.vc[r][u] > d.vc[l][u] {
			d.vc[l][u] = d.vc[r][u]
		}
	}
	if d.vc[l][r] < ric {
		d.vc[l][r] = ric
	}
	return true
}

// Clock returns a copy of thread t's current vector clock (for tests).
func (d *Reducer) Clock(t int) []uint64 {
	return append([]uint64(nil), d.vc[t]...)
}

// --- serialization ---

var magic = [4]byte{'B', 'M', 'R', 'L'}

const version = 1

// ErrBadFormat reports a malformed serialized log.
var ErrBadFormat = errors.New("mrl: bad serialized log")

// Marshal encodes the log for storage.
func (l *Log) Marshal() []byte {
	le := binary.LittleEndian
	out := make([]byte, 0, 64+len(l.Entries)*24)
	out = append(out, magic[:]...)
	out = append(out, version)
	var tmp [8]byte
	put32 := func(v uint32) {
		le.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	put64 := func(v uint64) {
		le.PutUint64(tmp[:8], v)
		out = append(out, tmp[:8]...)
	}
	put32(l.PID)
	put32(l.TID)
	put32(l.CID)
	put64(l.Timestamp)
	put64(l.IntervalLimit)
	put32(l.MaxThreads)
	put64(uint64(len(l.Entries)))
	for _, e := range l.Entries {
		put64(e.LocalIC)
		put32(e.RemoteTID)
		put32(e.RemoteCID)
		put64(e.RemoteIC)
	}
	le.PutUint32(tmp[:4], crc32.ChecksumIEEE(out))
	out = append(out, tmp[:4]...)
	return out
}

// Unmarshal decodes a serialized log.
func Unmarshal(data []byte) (*Log, error) {
	le := binary.LittleEndian
	if len(data) < 4 {
		return nil, ErrBadFormat
	}
	body, sum := data[:len(data)-4], le.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadFormat)
	}
	data = body
	if len(data) < 5+headerBytes+12+8 || [4]byte(data[:4]) != magic || data[4] != version {
		return nil, ErrBadFormat
	}
	pos := 5
	get32 := func() uint32 {
		v := le.Uint32(data[pos:])
		pos += 4
		return v
	}
	get64 := func() uint64 {
		v := le.Uint64(data[pos:])
		pos += 8
		return v
	}
	var l Log
	l.PID = get32()
	l.TID = get32()
	l.CID = get32()
	l.Timestamp = get64()
	l.IntervalLimit = get64()
	l.MaxThreads = get32()
	n := get64()
	if n > uint64(len(data)-pos)/24 {
		return nil, fmt.Errorf("%w: entry count %d exceeds payload", ErrBadFormat, n)
	}
	l.Entries = make([]Entry, n)
	for i := range l.Entries {
		l.Entries[i].LocalIC = get64()
		l.Entries[i].RemoteTID = get32()
		l.Entries[i].RemoteCID = get32()
		l.Entries[i].RemoteIC = get64()
	}
	return &l, nil
}
