package mrl

import (
	"bytes"
	"testing"
)

// TestWriterResetEncodesIdentically mirrors the FLL pooling guarantee:
// recycled MRL writers encode byte-identically to fresh ones.
func TestWriterResetEncodesIdentically(t *testing.T) {
	hdr := func(cid uint32) Header {
		return Header{PID: 3, TID: 0, CID: cid, Timestamp: uint64(cid)}
	}
	feed := func(w *Writer, n int) {
		for i := 0; i < n; i++ {
			w.Add(Entry{LocalIC: uint64(i), RemoteTID: 1, RemoteCID: 2, RemoteIC: uint64(i * 3)})
		}
	}
	var fresh [][]byte
	for cid := uint32(0); cid < 3; cid++ {
		w := NewWriter(hdr(cid), 1000, 4)
		feed(w, int(cid)*5+2)
		_, data := w.CloseEncoded()
		fresh = append(fresh, data)
	}
	w := NewWriter(hdr(0), 1000, 4)
	for cid := uint32(0); cid < 3; cid++ {
		if cid > 0 {
			w.Reset(hdr(cid), 1000, 4)
		}
		feed(w, int(cid)*5+2)
		_, data := w.CloseEncoded()
		if !bytes.Equal(data, fresh[cid]) {
			t.Fatalf("interval %d: pooled encoding differs", cid)
		}
		if w.Len() == 0 {
			t.Fatalf("interval %d: writer lost its entries", cid)
		}
	}
	// Reset validates its geometry like NewWriter.
	defer func() {
		if recover() == nil {
			t.Error("zero interval limit accepted")
		}
	}()
	w.Reset(hdr(9), 0, 4)
}
