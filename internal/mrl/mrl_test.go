package mrl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterAndSizes(t *testing.T) {
	w := NewWriter(Header{PID: 1, TID: 2, CID: 3, Timestamp: 99}, 10_000_000, 16)
	w.Add(Entry{LocalIC: 100, RemoteTID: 1, RemoteCID: 3, RemoteIC: 55})
	w.Add(Entry{LocalIC: 200, RemoteTID: 3, RemoteCID: 4, RemoteIC: 77})
	log := w.Close()
	if len(log.Entries) != 2 || w.Len() != 2 {
		t.Fatalf("entries = %d", len(log.Entries))
	}
	// interval 10M -> 24-bit ICs; 16 threads -> 5 bits; +16 CID = 69 bits.
	if got := log.EntryBits(); got != 2*24+5+16 {
		t.Errorf("EntryBits = %d; want 69", got)
	}
	if log.SizeBytes() <= headerBytes {
		t.Error("size accounting ignores entries")
	}
}

func TestReducerDirectDuplicate(t *testing.T) {
	r := NewReducer(4)
	if !r.Observe(0, 10, 1, 5) {
		t.Fatal("first edge must be logged")
	}
	if r.Observe(0, 12, 1, 5) {
		t.Error("identical dependency re-logged")
	}
	if r.Observe(0, 13, 1, 3) {
		t.Error("older dependency re-logged")
	}
	if !r.Observe(0, 14, 1, 9) {
		t.Error("newer dependency suppressed")
	}
}

func TestReducerTransitiveChain(t *testing.T) {
	r := NewReducer(3)
	// A@5 -> B (B at 10 observed A at 5)
	if !r.Observe(1, 10, 0, 5) {
		t.Fatal("edge A->B must log")
	}
	// B@10 -> C (C at 20 observed B at 10)
	if !r.Observe(2, 20, 1, 10) {
		t.Fatal("edge B->C must log")
	}
	// A@5 -> C is implied transitively: must NOT log.
	if r.Observe(2, 21, 0, 5) {
		t.Error("transitively implied edge was logged")
	}
	// A@6 -> C is NOT implied: must log.
	if !r.Observe(2, 22, 0, 6) {
		t.Error("non-implied edge suppressed")
	}
}

func TestReducerSelfKnowledge(t *testing.T) {
	r := NewReducer(2)
	r.Observe(0, 100, 1, 50)
	c := r.Clock(0)
	if c[0] != 100 || c[1] != 50 {
		t.Errorf("clock(0) = %v", c)
	}
}

// TestPropertyReductionPreservesOrdering: feed a random edge stream through
// the reducer; the happens-before relation reconstructed from ONLY the
// logged edges must imply every edge in the full stream. This is the
// correctness condition of Netzer's optimization: reduction may drop an
// edge only if the remaining edges imply it.
func TestPropertyReductionPreservesOrdering(t *testing.T) {
	type edge struct {
		l   int
		lic uint64
		r   int
		ric uint64
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nThreads := 2 + rng.Intn(4)
		ics := make([]uint64, nThreads) // per-thread progressing counters

		red := NewReducer(nThreads)
		var all, kept []edge

		for i := 0; i < 300; i++ {
			l := rng.Intn(nThreads)
			r := rng.Intn(nThreads)
			if l == r {
				continue
			}
			// Local commits a few instructions, then synchronizes with the
			// remote at its current count.
			ics[l] += uint64(1 + rng.Intn(5))
			e := edge{l: l, lic: ics[l], r: r, ric: ics[r]}
			all = append(all, e)
			if red.Observe(e.l, e.lic, e.r, e.ric) {
				kept = append(kept, e)
			}
		}

		// Replay the kept edges through an independent vector-clock
		// machine, processing them in stream order, and verify each edge
		// in `all` is implied at the time it occurred.
		vc := make([][]uint64, nThreads)
		for i := range vc {
			vc[i] = make([]uint64, nThreads)
		}
		ki := 0
		for _, e := range all {
			// Apply any kept edges up to and including this position.
			for ki < len(kept) && kept[ki] == e {
				k := kept[ki]
				vc[k.l][k.l] = k.lic
				if vc[k.r][k.r] < k.ric {
					vc[k.r][k.r] = k.ric
				}
				for u := 0; u < nThreads; u++ {
					if vc[k.r][u] > vc[k.l][u] {
						vc[k.l][u] = vc[k.r][u]
					}
				}
				if vc[k.l][k.r] < k.ric {
					vc[k.l][k.r] = k.ric
				}
				ki++
				goto next
			}
			// Edge was dropped: it must already be implied.
			if vc[e.l][e.r] < e.ric {
				t.Logf("edge %+v not implied: clock %v", e, vc[e.l])
				return false
			}
		next:
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	w := NewWriter(Header{PID: 9, TID: 1, CID: 77, Timestamp: 1234}, 1<<20, 8)
	for i := 0; i < 100; i++ {
		w.Add(Entry{LocalIC: uint64(i), RemoteTID: uint32(i % 8), RemoteCID: uint32(i / 8), RemoteIC: uint64(i * 3)})
	}
	log := w.Close()
	got, err := Unmarshal(log.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Header != log.Header || got.IntervalLimit != log.IntervalLimit || got.MaxThreads != log.MaxThreads {
		t.Error("header mismatch")
	}
	if len(got.Entries) != len(log.Entries) {
		t.Fatalf("entry count = %d", len(got.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i] != log.Entries[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Unmarshal([]byte("BMRLxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")); err == nil {
		t.Error("short garbage accepted")
	}
	w := NewWriter(Header{}, 100, 2)
	w.Add(Entry{LocalIC: 1})
	data := w.Close().Marshal()
	if _, err := Unmarshal(data[:len(data)-4]); err == nil {
		t.Error("truncated entries accepted")
	}
}
