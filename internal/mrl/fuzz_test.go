package mrl

import "testing"

// FuzzUnmarshal hardens the MRL wire format: no panics on arbitrary bytes,
// and valid logs round-trip.
func FuzzUnmarshal(f *testing.F) {
	w := NewWriter(Header{PID: 1, TID: 2, CID: 3, Timestamp: 4}, 1<<20, 8)
	for i := 0; i < 20; i++ {
		w.Add(Entry{LocalIC: uint64(i), RemoteTID: uint32(i % 8), RemoteIC: uint64(i * 2)})
	}
	f.Add(w.Close().Marshal())
	f.Add([]byte("BMRL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := Unmarshal(l.Marshal())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Header != l.Header || len(re.Entries) != len(l.Entries) {
			t.Fatal("round trip differs")
		}
	})
}
