package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny returns a deliberately small hierarchy so eviction paths are easy to
// exercise: L1 = 2 sets x 2 ways x 16B, L2 = 4 sets x 2 ways x 16B.
func tiny() *Hierarchy {
	return New(Config{
		L1: LevelConfig{SizeBytes: 64, BlockBytes: 16, Assoc: 2},
		L2: LevelConfig{SizeBytes: 128, BlockBytes: 16, Assoc: 2},
	})
}

func TestFirstLoadBasics(t *testing.T) {
	h := tiny()
	if h.LoadTestAndSetFL(0x100) {
		t.Fatal("first access reported FL set")
	}
	if !h.LoadTestAndSetFL(0x100) {
		t.Fatal("second access reported FL clear")
	}
	// A different word in the same block is still a first load.
	if h.LoadTestAndSetFL(0x104) {
		t.Fatal("adjacent word reported FL set")
	}
}

func TestStoreSetsFLWithoutLog(t *testing.T) {
	h := tiny()
	h.StoreSetFL(0x200)
	if !h.LoadTestAndSetFL(0x200) {
		t.Fatal("load after store should see FL set (no logging needed)")
	}
}

func TestClearAllFL(t *testing.T) {
	h := tiny()
	h.LoadTestAndSetFL(0x100)
	h.ClearAllFL()
	if h.FLSet(0x100) {
		t.Fatal("FL bit survived ClearAllFL")
	}
	if !h.Present(0x100) {
		t.Fatal("block evicted by ClearAllFL; should stay cached")
	}
	if h.LoadTestAndSetFL(0x100) {
		t.Fatal("after interval reset, load must be first-load again")
	}
}

func TestInvalidateBlock(t *testing.T) {
	h := tiny()
	h.LoadTestAndSetFL(0x300)
	if !h.InvalidateBlock(0x300) {
		t.Fatal("invalidation missed a present block")
	}
	if h.Present(0x300) {
		t.Fatal("block present after invalidation")
	}
	if h.LoadTestAndSetFL(0x300) {
		t.Fatal("load after invalidation must be a first load")
	}
	if h.InvalidateBlock(0x9990) {
		t.Fatal("invalidation of absent block reported present")
	}
}

func TestInvalidateRange(t *testing.T) {
	h := tiny()
	for a := uint32(0x400); a < 0x440; a += 4 {
		h.LoadTestAndSetFL(a)
	}
	h.InvalidateRange(0x404, 0x30) // spans three 16-byte blocks
	for _, a := range []uint32{0x400, 0x410, 0x420, 0x430} {
		if h.FLSet(a) {
			t.Errorf("FL bit at %#x survived range invalidation", a)
		}
	}
}

func TestL1EvictionWritesFLBackToL2(t *testing.T) {
	h := tiny()
	// L1 set index = block/16 mod 2. Fill set 0 beyond its 2 ways using
	// blocks 0x000, 0x020, 0x040 (all even 16-blocks -> set 0 in L1).
	h.LoadTestAndSetFL(0x000)
	h.LoadTestAndSetFL(0x020)
	h.LoadTestAndSetFL(0x040) // evicts 0x000 from L1; FL bits land in L2
	if !h.LoadTestAndSetFL(0x000) {
		t.Fatal("FL bit lost on L1 eviction; should persist via L2")
	}
}

func TestL2EvictionLosesFLBits(t *testing.T) {
	h := tiny()
	// L2: 4 sets, 2 ways. Set index = block/16 mod 4. Blocks mapping to L2
	// set 0: 0x000, 0x040, 0x080, 0x0C0, ...
	h.LoadTestAndSetFL(0x000)
	h.LoadTestAndSetFL(0x040)
	h.LoadTestAndSetFL(0x080) // evicts 0x000 from L2 entirely
	if h.Present(0x000) {
		t.Fatal("inclusion violated: block in L1 after L2 eviction")
	}
	if !h.LoadTestAndSetFL(0x040) {
		t.Fatal("0x040 should still have FL set")
	}
	if h.LoadTestAndSetFL(0x000) {
		t.Fatal("re-access after L2 eviction must re-log (FL clear)")
	}
}

func TestStatsCounting(t *testing.T) {
	h := tiny()
	h.LoadTestAndSetFL(0x100) // L1 miss, L2 miss
	h.LoadTestAndSetFL(0x100) // L1 hit
	h.LoadTestAndSetFL(0x104) // L1 hit (same block)
	s := h.Stats()
	if s.L1Misses != 1 || s.L1Hits != 2 || s.L2Misses != 1 || s.L2Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
	h.InvalidateBlock(0x100)
	if h.Stats().Invalidations != 1 {
		t.Errorf("invalidation count = %d", h.Stats().Invalidations)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{L1: LevelConfig{SizeBytes: 64, BlockBytes: 10, Assoc: 2},
			L2: LevelConfig{SizeBytes: 128, BlockBytes: 16, Assoc: 2}},
		{L1: LevelConfig{SizeBytes: 64, BlockBytes: 16, Assoc: 0},
			L2: LevelConfig{SizeBytes: 128, BlockBytes: 16, Assoc: 2}},
		{L1: LevelConfig{SizeBytes: 48, BlockBytes: 16, Assoc: 1},
			L2: LevelConfig{SizeBytes: 128, BlockBytes: 16, Assoc: 2}},
		{L1: LevelConfig{SizeBytes: 64, BlockBytes: 16, Assoc: 2},
			L2: LevelConfig{SizeBytes: 128, BlockBytes: 32, Assoc: 2}}, // mismatched blocks
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted; want panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultConfig(t *testing.T) {
	h := New(DefaultConfig())
	if h.BlockBytes() != 64 {
		t.Errorf("block bytes = %d", h.BlockBytes())
	}
	// FL storage: (32K + 1M)/4 words, 1 bit each = 33 KB + change.
	want := (32<<10 + 1<<20) / 32
	if got := h.FLBitsStorageBytes(); got != want {
		t.Errorf("FL storage = %d; want %d", got, want)
	}
}

// TestPropertyFLNeverSetWithoutAccess: FL bits appear only for words that
// were accessed, and a word reported "set" stays set until an eviction,
// invalidation or interval reset affecting its block.
func TestPropertyFLConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := tiny()
		// Model of which words must currently be set: pessimistic subset.
		// After any eviction we cannot cheaply know which bits died, so
		// track only "known clear" words and validate first-load answers
		// for fresh words.
		accessed := map[uint32]bool{}
		for i := 0; i < 2000; i++ {
			addr := uint32(rng.Intn(64)) * 4 // small space: heavy conflict
			switch rng.Intn(4) {
			case 0:
				h.StoreSetFL(addr)
				accessed[addr] = true
			case 1:
				was := h.LoadTestAndSetFL(addr)
				if was && !accessed[addr] {
					return false // set without ever being accessed
				}
				accessed[addr] = true
			case 2:
				h.InvalidateBlock(addr)
				for w := addr &^ 15; w < (addr&^15)+16; w += 4 {
					delete(accessed, w)
				}
			case 3:
				// Immediate double access must always report set.
				h.LoadTestAndSetFL(addr)
				if !h.LoadTestAndSetFL(addr) {
					return false
				}
				accessed[addr] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInclusion: any block in L1 is also in L2.
func TestPropertyInclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := tiny()
		for i := 0; i < 3000; i++ {
			addr := uint32(rng.Intn(1024)) * 4
			if rng.Intn(2) == 0 {
				h.LoadTestAndSetFL(addr)
			} else {
				h.StoreSetFL(addr)
			}
		}
		// Verify inclusion for every valid L1 line.
		for s := range h.l1.sets {
			for w := range h.l1.sets[s] {
				ln := h.l1.sets[s][w]
				if !ln.valid {
					continue
				}
				if _, w2 := h.l2.find(ln.tag); w2 < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLoadTestAndSetFL(b *testing.B) {
	h := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = uint32(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.LoadTestAndSetFL(addrs[i&4095])
	}
}
