// Package cache models the two-level cache hierarchy that holds BugNet's
// first-load (FL) bits (paper §4.3).
//
// BugNet associates one FL bit with every word in the L1 and L2 caches. A
// load whose word has the bit clear is a "first load" and must be logged;
// the bit is then set. Stores set the bit without logging. The bits follow
// blocks around the hierarchy:
//
//   - filling an L1 block from L2 copies the L2 block's FL bits into L1;
//   - evicting an L1 block stores its FL bits back into the L2 copy;
//   - evicting a block from L2 loses its FL bits (cleared), so re-accessed
//     words get re-logged — this is what makes log size sensitive to cache
//     geometry and working-set size;
//   - an external invalidation (coherence or DMA write) removes the block
//     and its FL bits, forcing the externally written values to be logged
//     on the next load.
//
// The model is functional, not timed: it tracks presence, recency and FL
// bits, plus the hit/miss/traffic counters the bus-overhead model consumes.
// Data values live in the authoritative mem.Memory.
package cache

import "fmt"

// maxWordsPerBlock bounds block size so FL bits fit a uint64 per line.
const maxWordsPerBlock = 64

// LevelConfig describes one cache level.
type LevelConfig struct {
	SizeBytes  int // total capacity
	BlockBytes int // line size; power of two, 4..256
	Assoc      int // ways per set
}

// Sets returns the number of sets implied by the geometry.
func (c LevelConfig) Sets() int { return c.SizeBytes / (c.BlockBytes * c.Assoc) }

func (c LevelConfig) validate(name string) error {
	if c.BlockBytes < 4 || c.BlockBytes > 4*maxWordsPerBlock || c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: %s block size %d invalid", name, c.BlockBytes)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("cache: %s associativity %d invalid", name, c.Assoc)
	}
	s := c.Sets()
	if s < 1 || s&(s-1) != 0 || s*c.BlockBytes*c.Assoc != c.SizeBytes {
		return fmt.Errorf("cache: %s geometry %d/%d/%d does not divide into power-of-two sets",
			name, c.SizeBytes, c.BlockBytes, c.Assoc)
	}
	return nil
}

// Config describes the two-level private hierarchy of one processor.
type Config struct {
	L1 LevelConfig
	L2 LevelConfig
}

// DefaultConfig mirrors a typical 2005-era core: 32 KB 4-way L1 and 1 MB
// 8-way L2, both with 64-byte blocks (the geometry FDR assumes as well).
func DefaultConfig() Config {
	return Config{
		L1: LevelConfig{SizeBytes: 32 << 10, BlockBytes: 64, Assoc: 4},
		L2: LevelConfig{SizeBytes: 1 << 20, BlockBytes: 64, Assoc: 8},
	}
}

// Stats counts cache events for the experiment harness and bus model.
type Stats struct {
	L1Hits        uint64
	L1Misses      uint64
	L2Hits        uint64
	L2Misses      uint64 // memory fetches
	L1Evictions   uint64
	L2Evictions   uint64
	Invalidations uint64 // external (coherence/DMA) block invalidations that hit
}

type line struct {
	tag   uint32
	valid bool
	fl    uint64 // first-load bits, one per word in the block
	tick  uint64 // LRU timestamp
}

type level struct {
	cfg       LevelConfig
	sets      [][]line
	setMask   uint32
	blockMask uint32
	wordBits  uint // log2(words per block)
}

func newLevel(cfg LevelConfig) *level {
	l := &level{cfg: cfg}
	n := cfg.Sets()
	l.sets = make([][]line, n)
	for i := range l.sets {
		l.sets[i] = make([]line, cfg.Assoc)
	}
	l.setMask = uint32(n - 1)
	l.blockMask = ^uint32(cfg.BlockBytes - 1)
	for w := cfg.BlockBytes / 4; w > 1; w >>= 1 {
		l.wordBits++
	}
	return l
}

func (l *level) index(addr uint32) (set uint32, tag uint32) {
	block := addr & l.blockMask
	set = (block / uint32(l.cfg.BlockBytes)) & l.setMask
	return set, block
}

// find returns the way holding addr's block, or -1.
func (l *level) find(addr uint32) (uint32, int) {
	set, tag := l.index(addr)
	for w := range l.sets[set] {
		if l.sets[set][w].valid && l.sets[set][w].tag == tag {
			return set, w
		}
	}
	return set, -1
}

// victim returns the LRU way of the set.
func (l *level) victim(set uint32) int {
	ways := l.sets[set]
	v := 0
	for w := 1; w < len(ways); w++ {
		if !ways[w].valid {
			return w
		}
		if ways[w].tick < ways[v].tick {
			v = w
		}
	}
	return v
}

// wordBit returns the FL bit mask of addr's word within its block.
func (l *level) wordBit(addr uint32) uint64 {
	word := (addr &^ l.blockMask) >> 2
	return 1 << word
}

func (l *level) clearAllFL() {
	for s := range l.sets {
		for w := range l.sets[s] {
			l.sets[s][w].fl = 0
		}
	}
}

// Hierarchy is one processor's private L1+L2 with FL-bit tracking.
type Hierarchy struct {
	l1, l2 *level
	tick   uint64
	stats  Stats
}

// New builds a hierarchy. It panics on invalid geometry (configuration is a
// programming decision, not runtime input). L1 and L2 must share a block
// size so FL bits transfer 1:1 between levels, as the paper assumes.
func New(cfg Config) *Hierarchy {
	if err := cfg.L1.validate("L1"); err != nil {
		panic(err)
	}
	if err := cfg.L2.validate("L2"); err != nil {
		panic(err)
	}
	if cfg.L1.BlockBytes != cfg.L2.BlockBytes {
		panic("cache: L1 and L2 block sizes must match for FL-bit transfer")
	}
	return &Hierarchy{l1: newLevel(cfg.L1), l2: newLevel(cfg.L2)}
}

// BlockBytes returns the block size shared by both levels.
func (h *Hierarchy) BlockBytes() int { return h.l1.cfg.BlockBytes }

// Stats returns the event counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// touch brings addr's block into L1 (and L2, by inclusion), returning the
// set and way of the L1 line. This is the access path shared by loads and
// stores.
func (h *Hierarchy) touch(addr uint32) (set uint32, way int) {
	h.tick++
	set, way = h.l1.find(addr)
	if way >= 0 {
		h.stats.L1Hits++
		h.l1.sets[set][way].tick = h.tick
		return set, way
	}
	h.stats.L1Misses++

	// L2 lookup.
	s2, w2 := h.l2.find(addr)
	if w2 >= 0 {
		h.stats.L2Hits++
		h.l2.sets[s2][w2].tick = h.tick
	} else {
		h.stats.L2Misses++
		w2 = h.l2.victim(s2)
		if h.l2.sets[s2][w2].valid {
			h.evictL2(s2, w2)
		}
		_, tag := h.l2.index(addr)
		h.l2.sets[s2][w2] = line{tag: tag, valid: true, tick: h.tick}
	}

	// Fill L1, copying the L2 block's FL bits.
	way = h.l1.victim(set)
	if h.l1.sets[set][way].valid {
		h.evictL1(set, way)
	}
	_, tag := h.l1.index(addr)
	h.l1.sets[set][way] = line{tag: tag, valid: true, fl: h.l2.sets[s2][w2].fl, tick: h.tick}
	return set, way
}

// evictL1 writes the line's FL bits back to its L2 copy and drops it.
func (h *Hierarchy) evictL1(set uint32, way int) {
	h.stats.L1Evictions++
	ln := &h.l1.sets[set][way]
	if s2, w2 := h.l2.find(ln.tag); w2 >= 0 {
		h.l2.sets[s2][w2].fl = ln.fl
	}
	ln.valid = false
}

// evictL2 drops an L2 line, losing its FL bits, and invalidates the L1 copy
// to preserve inclusion.
func (h *Hierarchy) evictL2(set uint32, way int) {
	h.stats.L2Evictions++
	ln := &h.l2.sets[set][way]
	if s1, w1 := h.l1.find(ln.tag); w1 >= 0 {
		h.l1.sets[s1][w1].valid = false
	}
	ln.valid = false
}

// LoadTestAndSetFL performs the first-load check for a loggable operation
// on the word containing addr: it brings the block in, returns whether the
// word's FL bit was already set, and sets it. A false result means "this is
// a first load — log the word's value".
func (h *Hierarchy) LoadTestAndSetFL(addr uint32) (wasSet bool) {
	set, way := h.touch(addr)
	ln := &h.l1.sets[set][way]
	bit := h.l1.wordBit(addr)
	wasSet = ln.fl&bit != 0
	ln.fl |= bit
	return wasSet
}

// StoreSetFL performs the store-side rule for a full-word store: bring the
// block in and set the word's FL bit without logging (the stored value is
// regenerated by replay).
func (h *Hierarchy) StoreSetFL(addr uint32) {
	set, way := h.touch(addr)
	h.l1.sets[set][way].fl |= h.l1.wordBit(addr)
}

// InvalidateBlock removes the block containing addr from both levels,
// discarding its FL bits. Coherence invalidations and DMA writes use this
// so externally modified words are re-logged on next access (paper §4.5,
// §4.6). It reports whether any copy was present.
func (h *Hierarchy) InvalidateBlock(addr uint32) bool {
	present := false
	if s, w := h.l1.find(addr); w >= 0 {
		h.l1.sets[s][w].valid = false
		present = true
	}
	if s, w := h.l2.find(addr); w >= 0 {
		h.l2.sets[s][w].valid = false
		present = true
	}
	if present {
		h.stats.Invalidations++
	}
	return present
}

// InvalidateRange invalidates every block overlapping [addr, addr+size).
func (h *Hierarchy) InvalidateRange(addr, size uint32) {
	if size == 0 {
		return
	}
	bs := uint32(h.BlockBytes())
	first := addr &^ (bs - 1)
	last := (addr + size - 1) &^ (bs - 1)
	for b := first; ; b += bs {
		h.InvalidateBlock(b)
		if b == last {
			break
		}
	}
}

// ClearAllFL zeroes every FL bit in both levels without evicting blocks.
// The recorder calls this at each checkpoint-interval start (paper §4.3:
// "At the start of a checkpoint interval all these bits will be cleared").
func (h *Hierarchy) ClearAllFL() {
	h.l1.clearAllFL()
	h.l2.clearAllFL()
}

// FLSet reports whether the FL bit for addr's word is currently set,
// without touching LRU state. Intended for tests and debugging.
func (h *Hierarchy) FLSet(addr uint32) bool {
	if s, w := h.l1.find(addr); w >= 0 {
		return h.l1.sets[s][w].fl&h.l1.wordBit(addr) != 0
	}
	if s, w := h.l2.find(addr); w >= 0 {
		return h.l2.sets[s][w].fl&h.l2.wordBit(addr) != 0
	}
	return false
}

// Present reports whether addr's block is cached at either level. Intended
// for tests.
func (h *Hierarchy) Present(addr uint32) bool {
	if _, w := h.l1.find(addr); w >= 0 {
		return true
	}
	_, w := h.l2.find(addr)
	return w >= 0
}

// FLBitsStorageBytes returns the SRAM cost of the FL bits across both
// levels: one bit per cached word. Used in the Table 3 hardware-complexity
// accounting.
func (h *Hierarchy) FLBitsStorageBytes() int {
	return (h.l1.cfg.SizeBytes + h.l2.cfg.SizeBytes) / 4 / 8
}
