package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPickBug(t *testing.T) {
	img, kcfg, err := Pick(Selection{Bug: "gzip", Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	if img == nil || len(img.Text) == 0 {
		t.Fatal("no image")
	}
	if kcfg.Inputs == nil {
		t.Error("gzip bug needs its over-long input")
	}
}

func TestPickMTBugGetsCores(t *testing.T) {
	_, kcfg, err := Pick(Selection{Bug: "gaim", Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	if kcfg.Cores < 2 {
		t.Errorf("multithreaded bug picked with %d cores", kcfg.Cores)
	}
}

func TestPickSpec(t *testing.T) {
	img, _, err := Pick(Selection{Spec: "mcf"})
	if err != nil || img == nil {
		t.Fatalf("%v", err)
	}
}

func TestPickAsmFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.s")
	os.WriteFile(path, []byte("main: li a7, 1\nsyscall\n"), 0o644)
	img, _, err := Pick(Selection{Asm: path})
	if err != nil || img == nil {
		t.Fatalf("%v", err)
	}
}

func TestPickErrors(t *testing.T) {
	if _, _, err := Pick(Selection{}); err == nil {
		t.Error("empty selection accepted")
	}
	if _, _, err := Pick(Selection{Bug: "x", Spec: "y"}); err == nil {
		t.Error("double selection accepted")
	}
	if _, _, err := Pick(Selection{Bug: "nosuch"}); err == nil ||
		!strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown bug error unhelpful: %v", err)
	}
	if _, _, err := Pick(Selection{Spec: "nosuch"}); err == nil {
		t.Error("unknown spec accepted")
	}
	if _, _, err := Pick(Selection{Asm: "/does/not/exist.s"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.s")
	os.WriteFile(bad, []byte("bogus instruction\n"), 0o644)
	if _, _, err := Pick(Selection{Asm: bad}); err == nil {
		t.Error("unassemblable file accepted")
	}
}
