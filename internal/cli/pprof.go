package cli

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"os"
)

// StartPprof serves the net/http/pprof endpoints on addr from a
// background goroutine, so hot-loop regressions (the record/replay
// execution engine above all) can be profiled in production deployments:
//
//	go tool pprof http://<addr>/debug/pprof/profile?seconds=30
//
// An empty addr is a no-op. The listener uses the default mux, which the
// tools' service handlers never touch, so the profiling surface stays on
// its own port. Listen failures are reported to stderr rather than
// aborting the tool — profiling is diagnostics, not a dependency.
func StartPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
		}
	}()
}
