// Package cli holds the logic shared by the command-line tools: resolving
// the program a report was recorded from (a bug analogue, a SPEC analogue,
// or an assembly source file) — replay requires the exact binary (paper
// §5.1), so all replay-side tools resolve images the same way.
package cli

import (
	"fmt"
	"os"

	"bugnet/internal/asm"
	"bugnet/internal/kernel"
	"bugnet/internal/workload"
)

// Selection names a program source; exactly one field may be set.
type Selection struct {
	Bug   string // Table 1 analogue name
	Spec  string // SPEC analogue name
	Asm   string // path to an assembly source file
	Scale int    // bug-window scale for Bug selections
}

// Pick resolves the selection to an image and the machine configuration it
// should run under (inputs, cores).
func Pick(sel Selection) (*asm.Image, kernel.Config, error) {
	set := 0
	for _, s := range []string{sel.Bug, sel.Spec, sel.Asm} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, kernel.Config{}, fmt.Errorf("exactly one of -bug, -spec, -asm is required")
	}
	switch {
	case sel.Bug != "":
		b := workload.BugByName(sel.Bug, sel.Scale)
		if b == nil {
			return nil, kernel.Config{}, fmt.Errorf("unknown bug %q; known: %s", sel.Bug, names(bugNames()))
		}
		return b.Image, b.Kernel, nil
	case sel.Spec != "":
		w := workload.ByName(sel.Spec)
		if w == nil {
			return nil, kernel.Config{}, fmt.Errorf("unknown SPEC workload %q; known: %s", sel.Spec, names(specNames()))
		}
		return w.Image, w.Kernel, nil
	default:
		src, err := os.ReadFile(sel.Asm)
		if err != nil {
			return nil, kernel.Config{}, err
		}
		img, err := asm.Assemble(sel.Asm, string(src))
		if err != nil {
			return nil, kernel.Config{}, err
		}
		return img, kernel.Config{}, nil
	}
}

func bugNames() []string {
	var out []string
	for _, b := range workload.Bugs(1) {
		out = append(out, b.Name)
	}
	return out
}

func specNames() []string {
	var out []string
	for _, w := range workload.SPEC() {
		out = append(out, w.Name)
	}
	return out
}

func names(ns []string) string {
	s := ""
	for i, n := range ns {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
