package fdr

import (
	"errors"
	"fmt"

	"bugnet/internal/cpu"
	"bugnet/internal/isa"
)

// ErrUnsupported reports an FDR replay outside the implemented scope.
var ErrUnsupported = errors.New("fdr: replay supports uniprocessor recordings")

// ErrDiverged reports that FDR replay failed to reproduce the recording.
var ErrDiverged = errors.New("fdr: replay diverged from recording")

// ReplayResult summarizes an FDR full-system replay.
type ReplayResult struct {
	Instructions uint64 // instructions re-executed
	Final        cpu.Snapshot
	Faulted      bool
	FaultPC      uint32
}

// Replay reconstructs memory at the startIdx'th retained checkpoint from
// the core dump and the undo logs, restores the register checkpoint, and
// re-executes forward to the end of the recording, injecting logged
// syscall results, input bytes and DMA completions at their recorded
// steps. This is the FDR/SafetyNet replay procedure; it demonstrates that
// the recorded logs suffice for deterministic full-system replay on a
// uniprocessor (multiprocessor FDR replay additionally interleaves by the
// MRLs, which the BugNet side of this repository implements).
func Replay(rec *Recorder, startIdx int) (*ReplayResult, error) {
	if rec.coreEnd == nil {
		return nil, fmt.Errorf("fdr: no core dump; call Finalize or record a crash")
	}
	if rec.everMP {
		return nil, ErrUnsupported
	}
	items := rec.retained.All()
	if startIdx < 0 || startIdx >= len(items) {
		return nil, fmt.Errorf("fdr: checkpoint index %d out of range (%d retained)", startIdx, len(items))
	}
	cp, err := rec.checkpointAt(items[startIdx])
	if err != nil {
		return nil, fmt.Errorf("fdr: loading checkpoint %d: %w", startIdx, err)
	}

	// Uniprocessor scope: exactly one live thread at the checkpoint.
	var reg *regCheckpoint
	for i := range cp.regs {
		if cp.regs[i].live {
			if reg != nil {
				return nil, ErrUnsupported
			}
			reg = &cp.regs[i]
		}
	}
	if reg == nil || reg.tid != 0 {
		return nil, ErrUnsupported
	}

	// Rebuild memory at the checkpoint boundary: start from the core dump
	// and apply undo logs newest-first down to (and including) cp. Each
	// checkpoint is materialized from its encoded form for its walk step
	// and dropped again — the retained window never sits decoded at once.
	m := rec.coreEnd.Snapshot()
	for i := len(items) - 1; i >= startIdx; i-- {
		ci := cp
		if i != startIdx {
			if ci, err = rec.checkpointAt(items[i]); err != nil {
				return nil, fmt.Errorf("fdr: loading checkpoint %d: %w", i, err)
			}
		}
		for _, u := range ci.undo {
			if err := m.StoreBytes(u.addr, u.old); err != nil {
				return nil, fmt.Errorf("fdr: undo restore at %#x: %v", u.addr, err)
			}
		}
	}

	c := cpu.New(m)
	c.Restore(reg.state)
	c.IC = reg.ic

	// Tapes from the checkpoint on.
	inputs := rec.inputs
	for len(inputs) > 0 && inputs[0].step < cp.startStep {
		inputs = inputs[1:]
	}
	dmas := rec.dmas
	for len(dmas) > 0 && dmas[0].step < cp.startStep {
		dmas = dmas[1:]
	}

	res := &ReplayResult{}
	step := cp.startStep
	for {
		// Apply DMA completions due at this step (the machine ticked DMA
		// after every instruction).
		for len(dmas) > 0 && dmas[0].step <= step {
			d := dmas[0]
			dmas = dmas[1:]
			if err := m.StoreBytes(d.addr, d.data); err != nil {
				return nil, fmt.Errorf("fdr: DMA replay at %#x: %v", d.addr, err)
			}
		}
		if rec.finalSteps != 0 && step >= rec.finalSteps {
			break // end of recording (clean exit)
		}
		ev := c.Step()
		step++
		switch ev {
		case cpu.EventStep:
			res.Instructions++
		case cpu.EventSyscall:
			res.Instructions++
			// Re-apply the logged kernel effects for this step: memory
			// copy-ins first, then the register result.
			for len(inputs) > 0 && inputs[0].step <= step {
				in := inputs[0]
				inputs = inputs[1:]
				if len(in.data) > 0 {
					if err := m.StoreBytes(in.addr, in.data); err != nil {
						return nil, fmt.Errorf("fdr: input replay at %#x: %v", in.addr, err)
					}
				}
				if in.valid {
					c.Regs[isa.RegA0] = in.a0
				}
			}
			// An exit syscall has no logged return; the recording ends
			// at finalSteps, which the loop head checks.
		case cpu.EventFault:
			res.Faulted = true
			res.FaultPC = c.Fault.PC
			res.Final = c.State()
			return res, nil
		case cpu.EventHalted:
			return nil, fmt.Errorf("%w: core halted unexpectedly", ErrDiverged)
		}
	}
	res.Final = c.State()
	return res, nil
}
