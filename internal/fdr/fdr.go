// Package fdr implements the Flight Data Recorder baseline (Xu, Bodik,
// Hill, ISCA 2003) that BugNet is compared against in the paper's Tables 2
// and 3.
//
// FDR targets full-system replay. Its recording differs from BugNet's in
// exactly the ways the comparison highlights:
//
//   - SafetyNet-style checkpointing: for every checkpoint interval, the
//     FIRST store to each cache block logs the block's pre-store content
//     (an undo log). Walking the undo logs backwards from a final core
//     dump reconstructs memory at a checkpoint boundary.
//   - Register checkpoints at interval boundaries.
//   - An interrupt log, a program-input log (every byte the kernel copies
//     into user memory plus every syscall's register result), and a DMA
//     log — FDR must record external inputs explicitly because it replays
//     through them rather than around them.
//   - A final core dump of the entire memory image, shipped to the
//     developer (BugNet needs none).
//   - Memory race logs identical to BugNet's.
//
// The recorder here is functional and drives the paper's log-size
// comparison; the replayer in replay.go demonstrates the scheme end to end
// on uniprocessor runs.
package fdr

import (
	"fmt"

	"bugnet/internal/coherence"
	"bugnet/internal/cpu"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
	"bugnet/internal/logstore"
	"bugnet/internal/mem"
	"bugnet/internal/mrl"
)

// Config parameterizes the FDR recorder.
type Config struct {
	// IntervalSteps is the checkpoint interval in global machine steps
	// (FDR checkpoints every ~1/3 s; at 1 IPC that is steps). Default
	// 10_000_000.
	IntervalSteps uint64
	// BlockBytes is the undo-log granularity (SafetyNet logs cache
	// blocks). Must be a power of two of at least one word (the
	// first-store filter tracks blocks by base address at word
	// granularity); NewRecorder panics otherwise. Default 64.
	BlockBytes int
	// Budget bounds the retained checkpoint bytes; oldest evicted first.
	// Non-positive retains everything.
	Budget int64
	// PID tags the logs.
	PID uint32
}

func (c *Config) fillDefaults() {
	if c.IntervalSteps == 0 {
		c.IntervalSteps = 10_000_000
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64
	}
	// Sub-word or non-power-of-two blocks would alias distinct block
	// bases onto one word bit in the first-store filter, silently
	// dropping undo pre-images. Configuration is a programming decision,
	// not runtime input, so fail loudly like the cache geometry checks.
	if c.BlockBytes < 4 || c.BlockBytes&(c.BlockBytes-1) != 0 {
		panic(fmt.Sprintf("fdr: BlockBytes %d must be a power of two >= 4", c.BlockBytes))
	}
}

// undoEntry is one SafetyNet undo record: the content a block had at the
// checkpoint start, captured at the first store touching it.
type undoEntry struct {
	addr uint32
	old  []byte
}

// inputRecord is one external-input event: a syscall return value and/or
// bytes the kernel wrote into user memory (paper: "program I/O").
type inputRecord struct {
	step  uint64
	tid   int
	a0    uint32
	valid bool // a0 is meaningful (syscall return)
	addr  uint32
	data  []byte
}

// dmaRecord is one logged DMA completion.
type dmaRecord struct {
	step uint64
	addr uint32
	data []byte
}

// interruptRecord is one logged interrupt delivery.
type interruptRecord struct {
	step uint64
	tid  int
	kind kernel.InterruptKind
}

// regCheckpoint snapshots one thread's architectural state at a checkpoint
// boundary.
type regCheckpoint struct {
	tid   int
	ic    uint64
	state cpu.Snapshot
	live  bool
}

// checkpoint is everything FDR retains for one interval.
type checkpoint struct {
	id        uint32
	startStep uint64
	regs      []regCheckpoint
	undo      []undoEntry
	// instructions committed during the interval (for replay-window
	// accounting), filled at interval end.
	instructions uint64

	startIC []uint64 // per-thread IC at interval start
}

// undoBytes is the serialized cost of the undo log: address + block
// content per entry.
func (c *checkpoint) undoBytes(blockBytes int) int64 {
	return int64(len(c.undo)) * int64(4+blockBytes)
}

// regBytes is the serialized cost of the register checkpoints.
func (c *checkpoint) regBytes() int64 {
	return int64(len(c.regs)) * (4 + 8 + 4 + isa.NumRegs*4)
}

// SizeReport aggregates FDR log sizes for the Table 2 comparison.
type SizeReport struct {
	CacheCheckpointBytes int64 // undo entries captured while blocks were cache-resident
	MemCheckpointBytes   int64 // register checkpoints + bookkeeping
	InterruptBytes       int64
	InputBytes           int64
	DMABytes             int64
	MRLBytes             int64
	CoreDumpBytes        int64
	Checkpoints          int
	Instructions         uint64 // covered by retained checkpoints
}

// Total returns the bytes FDR must ship to the developer.
func (s SizeReport) Total() int64 {
	return s.CacheCheckpointBytes + s.MemCheckpointBytes + s.InterruptBytes +
		s.InputBytes + s.DMABytes + s.MRLBytes + s.CoreDumpBytes
}

// Recorder implements kernel.Hooks plus per-CPU hooks for FDR recording.
type Recorder struct {
	kernel.NopHooks

	cfg Config
	m   *kernel.Machine

	blockMask uint32
	cur       *checkpoint
	nextID    uint32
	retained  *logstore.Store // checkpoints

	// firstStore tracks blocks already undo-logged this interval (by block
	// base address, as a page-granular bitmap: the undo-log filter sits on
	// every store, so membership must be branch-and-bitmap cheap, exactly
	// like BugNet's first-load bits).
	firstStore *mem.KnownSet

	interrupts []interruptRecord
	inputs     []inputRecord
	dmas       []dmaRecord

	// lastKind remembers the interrupt kind per thread so the return hook
	// knows whether a syscall result must be logged.
	lastKind map[int]kernel.InterruptKind

	dir  *coherence.Directory
	red  *mrl.Reducer
	mrls *logstore.Store

	// per-thread interval-relative state for MRL entries
	cids    map[int]uint32
	mws     map[int]*mrl.Writer
	coreEnd *mem.Memory // final core dump snapshot

	// finalSteps is the machine step count when recording ended; replay
	// runs to this point.
	finalSteps uint64

	// everMP records that more than one thread ever ran; the replayer's
	// uniprocessor step accounting does not apply then.
	everMP bool
}

// NewRecorder attaches an FDR recorder to the machine; call before Run.
func NewRecorder(m *kernel.Machine, cfg Config) *Recorder {
	cfg.fillDefaults()
	r := &Recorder{
		cfg:        cfg,
		m:          m,
		blockMask:  ^uint32(cfg.BlockBytes - 1),
		retained:   logstore.New(cfg.Budget),
		mrls:       logstore.New(cfg.Budget),
		firstStore: mem.NewKnownSet(),
		lastKind:   make(map[int]kernel.InterruptKind),
		cids:       make(map[int]uint32),
		mws:        make(map[int]*mrl.Writer),
	}
	if len(m.Threads) > 1 {
		r.dir = coherence.New(len(m.Threads), cfg.BlockBytes)
		r.red = mrl.NewReducer(len(m.Threads))
	}
	m.SetHooks(r)
	// Support attaching mid-execution (after an unrecorded warm-up), as
	// the experiment harness does: live threads count as newly started.
	if m.Started() {
		for _, th := range m.Threads {
			if th.State == kernel.ThreadRunnable {
				r.OnThreadStart(th.ID)
			}
		}
	}
	return r
}

// --- checkpoint lifecycle ---

func (r *Recorder) ensureCheckpoint() {
	if r.cur == nil {
		r.openCheckpoint()
		return
	}
	if r.m.Now()-r.cur.startStep >= r.cfg.IntervalSteps {
		r.closeCheckpoint()
		r.openCheckpoint()
	}
}

func (r *Recorder) openCheckpoint() {
	c := &checkpoint{
		id:        r.nextID,
		startStep: r.m.Now(),
		startIC:   make([]uint64, len(r.m.Threads)),
	}
	r.nextID++
	for _, th := range r.m.Threads {
		if th.CPU == nil {
			continue
		}
		c.regs = append(c.regs, regCheckpoint{
			tid:   th.ID,
			ic:    th.CPU.IC,
			state: th.CPU.State(),
			live:  th.State == kernel.ThreadRunnable,
		})
		c.startIC[th.ID] = th.CPU.IC
	}
	r.cur = c
	// SafetyNet resets first-store tracking each interval.
	r.firstStore.Reset()
	// New MRLs per interval, as in BugNet.
	for tid, th := range r.m.Threads {
		if th.CPU != nil && th.State == kernel.ThreadRunnable {
			r.openMRL(tid, c.id)
		}
	}
}

func (r *Recorder) openMRL(tid int, cid uint32) {
	if r.dir == nil {
		return
	}
	r.cids[tid] = cid
	r.mws[tid] = mrl.NewWriter(mrl.Header{
		PID: r.cfg.PID, TID: uint32(tid), CID: cid, Timestamp: r.m.Now(),
	}, r.cfg.IntervalSteps, uint32(len(r.m.Threads)))
}

func (r *Recorder) closeCheckpoint() {
	if r.cur == nil {
		return
	}
	c := r.cur
	r.cur = nil
	for _, th := range r.m.Threads {
		if th.CPU != nil {
			c.instructions += th.CPU.IC - c.startIC[th.ID]
		}
	}
	r.retained.Append(logstore.Item{
		CID:          c.id,
		Timestamp:    c.startStep,
		Bytes:        c.undoBytes(r.cfg.BlockBytes) + c.regBytes(),
		Instructions: c.instructions,
	}, c.marshal())
	for tid, w := range r.mws {
		if w == nil {
			continue
		}
		mm, mdata := w.CloseEncoded()
		r.mrls.Append(logstore.Item{
			TID: tid, CID: mm.CID, Timestamp: mm.Timestamp,
			Bytes: mm.SizeBytes(),
		}, mdata)
		delete(r.mws, tid)
	}
}

// --- undo logging ---

// captureUndo logs the pre-image of every block in [addr, addr+n) not yet
// stored to this interval. Must run before the write mutates memory.
func (r *Recorder) captureUndo(addr, n uint32) {
	if n == 0 {
		return
	}
	r.ensureCheckpoint()
	bs := uint32(r.cfg.BlockBytes)
	first := addr & r.blockMask
	last := (addr + n - 1) & r.blockMask
	for b := first; ; b += bs {
		if !r.firstStore.Has(b) {
			r.firstStore.Add(b)
			old := make([]byte, bs)
			if err := r.m.Mem.LoadBytes(b, old); err == nil {
				r.cur.undo = append(r.cur.undo, undoEntry{addr: b, old: old})
			}
		}
		if b == last {
			break
		}
	}
}

// --- kernel.Hooks ---

// OnThreadStart installs the store hooks; FDR taps stores only (loads need
// no logging — memory state is reconstructed, not re-derived).
func (r *Recorder) OnThreadStart(tid int) {
	if tid > 0 {
		r.everMP = true
	}
	c := r.m.Threads[tid].CPU
	c.OnWordStore = func(wordAddr uint32) { r.store(tid, wordAddr, 4) }
	c.OnLoggable = func(wordAddr uint32, isWrite bool) {
		if isWrite {
			r.store(tid, wordAddr, 4)
		} else if r.dir != nil {
			r.ensureCheckpoint()
			r.race(tid, r.dir.Load(tid, wordAddr))
		}
	}
	r.ensureCheckpoint()
	if r.dir != nil && r.mws[tid] == nil {
		r.openMRL(tid, r.cur.id)
	}
}

func (r *Recorder) store(tid int, wordAddr uint32, n uint32) {
	r.captureUndo(wordAddr, n)
	if r.dir != nil {
		r.race(tid, r.dir.Store(tid, wordAddr))
	}
}

// race logs MRL entries for coherence replies, as in BugNet.
func (r *Recorder) race(tid int, remotes []int) {
	for _, rt := range remotes {
		rc := r.m.Threads[rt].CPU
		lc := r.m.Threads[tid].CPU
		if rc == nil || r.mws[tid] == nil {
			continue
		}
		if r.red != nil && !r.red.Observe(tid, lc.IC, rt, rc.IC) {
			continue
		}
		r.mws[tid].Add(mrl.Entry{
			LocalIC:   lc.IC - r.cur.startIC[tid],
			RemoteTID: uint32(rt),
			RemoteCID: r.cids[rt],
			RemoteIC:  rc.IC - r.cur.startIC[rt],
		})
	}
}

// OnInterrupt logs the delivery; FDR replays through interrupts so every
// one must be recorded.
func (r *Recorder) OnInterrupt(tid int, kind kernel.InterruptKind) {
	r.ensureCheckpoint()
	r.interrupts = append(r.interrupts, interruptRecord{step: r.m.Now(), tid: tid, kind: kind})
	r.lastKind[tid] = kind
}

// OnInterruptReturn logs the syscall's register result into the input log.
func (r *Recorder) OnInterruptReturn(tid int) {
	if r.lastKind[tid] != kernel.IntSyscall {
		return
	}
	c := r.m.Threads[tid].CPU
	r.inputs = append(r.inputs, inputRecord{
		step: r.m.Now(), tid: tid, a0: c.Regs[isa.RegA0], valid: true,
	})
}

// OnKernelPreWrite captures pre-images before kernel copy-ins mutate
// memory.
func (r *Recorder) OnKernelPreWrite(tid int, addr uint32, n uint32) {
	r.captureUndo(addr, n)
}

// OnKernelWrite logs the written bytes into the input log.
func (r *Recorder) OnKernelWrite(tid int, addr uint32, n uint32) {
	data := make([]byte, n)
	if err := r.m.Mem.LoadBytes(addr, data); err != nil {
		return
	}
	r.inputs = append(r.inputs, inputRecord{step: r.m.Now(), tid: tid, addr: addr, data: data})
	if r.dir != nil {
		r.dir.ExternalWriteRange(addr, n)
	}
}

// OnDMAPreWrite captures pre-images before DMA mutates memory.
func (r *Recorder) OnDMAPreWrite(addr uint32, n uint32) {
	r.captureUndo(addr, n)
}

// OnDMAWrite logs the DMA payload.
func (r *Recorder) OnDMAWrite(addr uint32, n uint32) {
	data := make([]byte, n)
	if err := r.m.Mem.LoadBytes(addr, data); err != nil {
		return
	}
	r.dmas = append(r.dmas, dmaRecord{step: r.m.Now(), addr: addr, data: data})
	if r.dir != nil {
		r.dir.ExternalWriteRange(addr, n)
	}
}

// OnFault finalizes the current checkpoint and takes the core dump.
func (r *Recorder) OnFault(tid int, f *cpu.FaultInfo) {
	r.closeCheckpoint()
	r.coreEnd = r.m.Mem.Snapshot()
	r.finalSteps = r.m.Now()
}

// OnThreadExit keeps recording; full-system recording does not stop when
// one thread exits.
func (r *Recorder) OnThreadExit(tid int) {}

// Finalize must be called after machine.Run if no fault occurred, closing
// the last checkpoint and capturing the core image.
func (r *Recorder) Finalize() {
	if r.cur != nil {
		r.closeCheckpoint()
	}
	if r.coreEnd == nil {
		r.coreEnd = r.m.Mem.Snapshot()
	}
	if r.finalSteps == 0 {
		r.finalSteps = r.m.Now()
	}
}

// Sizes aggregates the log sizes for the Table 2 comparison. Per-category
// checkpoint splits decode each retained checkpoint on demand; the
// aggregate Bytes/Instructions come from store metadata alone.
func (r *Recorder) Sizes() SizeReport {
	var s SizeReport
	for _, it := range r.retained.All() {
		c, err := r.checkpointAt(it)
		if err != nil {
			continue // unreadable spill: excluded from the report
		}
		s.CacheCheckpointBytes += c.undoBytes(r.cfg.BlockBytes)
		s.MemCheckpointBytes += c.regBytes()
		s.Checkpoints++
		s.Instructions += c.instructions
	}
	s.InterruptBytes = int64(len(r.interrupts)) * 13 // step + tid + kind
	for _, in := range r.inputs {
		s.InputBytes += 17 + int64(len(in.data)) // step + tid + a0/addr + len
	}
	for _, d := range r.dmas {
		s.DMABytes += 16 + int64(len(d.data))
	}
	for _, it := range r.mrls.All() {
		s.MRLBytes += it.Bytes
	}
	if r.coreEnd != nil {
		s.CoreDumpBytes = r.coreEnd.Footprint()
	}
	return s
}

// checkpointAt re-materializes one retained checkpoint from its encoded
// bytes.
func (r *Recorder) checkpointAt(it logstore.Item) (*checkpoint, error) {
	data, err := r.retained.Load(it.Seq)
	if err != nil {
		return nil, err
	}
	return unmarshalCheckpoint(data)
}

// Checkpoints returns the retained checkpoints oldest-first, decoded (the
// test surface). Replay walks them one at a time via checkpointAt instead
// so the undo-log scan never holds the whole retained window decoded.
func (r *Recorder) Checkpoints() []*checkpoint {
	items := r.retained.All()
	out := make([]*checkpoint, 0, len(items))
	for _, it := range items {
		c, err := r.checkpointAt(it)
		if err != nil {
			continue
		}
		out = append(out, c)
	}
	return out
}

// CoreDump returns the final memory image (nil before Finalize/fault).
func (r *Recorder) CoreDump() *mem.Memory { return r.coreEnd }
