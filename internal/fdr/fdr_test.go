package fdr

import (
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
)

func recordFDR(t *testing.T, src string, kcfg kernel.Config, cfg Config) (*kernel.Result, *Recorder, *asm.Image) {
	t.Helper()
	img, err := asm.Assemble("fdr.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := kernel.New(img, kcfg, nil)
	rec := NewRecorder(m, cfg)
	res := m.Run()
	rec.Finalize()
	return res, rec, img
}

const storeLoop = `
        .data
arr:    .space 1024
        .text
main:   la   t0, arr
        li   t1, 0
        li   t2, 256
loop:   slli t3, t1, 2
        add  t3, t0, t3
        sw   t1, (t3)
        addi t1, t1, 1
        blt  t1, t2, loop
        la   t0, arr
        lw   a0, 100(t0)
        li   a7, 1
        syscall
`

func TestUndoLogCapturesFirstStores(t *testing.T) {
	res, rec, _ := recordFDR(t, storeLoop, kernel.Config{}, Config{IntervalSteps: 1 << 30, BlockBytes: 64})
	if res.Crash != nil {
		t.Fatalf("crash: %v", res.Crash)
	}
	cps := rec.Checkpoints()
	if len(cps) != 1 {
		t.Fatalf("checkpoints = %d", len(cps))
	}
	// 1024 bytes of array = 16 blocks of 64B, plus stack blocks if any
	// (none here: no stack traffic).
	if n := len(cps[0].undo); n < 16 || n > 20 {
		t.Errorf("undo entries = %d; want ≈16 (one per stored block)", n)
	}
	sizes := rec.Sizes()
	if sizes.CoreDumpBytes == 0 {
		t.Error("no core dump recorded")
	}
	if sizes.CacheCheckpointBytes != int64(len(cps[0].undo))*(4+64) {
		t.Errorf("undo bytes accounting wrong: %d", sizes.CacheCheckpointBytes)
	}
}

func TestCheckpointRotation(t *testing.T) {
	_, rec, _ := recordFDR(t, storeLoop, kernel.Config{}, Config{IntervalSteps: 200})
	cps := rec.Checkpoints()
	if len(cps) < 4 {
		t.Fatalf("checkpoints = %d; want several at interval 200", len(cps))
	}
	for i := 1; i < len(cps); i++ {
		if cps[i].startStep <= cps[i-1].startStep {
			t.Error("checkpoints not monotonically ordered")
		}
	}
}

func TestReplayFromEachCheckpoint(t *testing.T) {
	res, rec, _ := recordFDR(t, storeLoop, kernel.Config{}, Config{IntervalSteps: 300})
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	for i := range rec.Checkpoints() {
		rr, err := Replay(rec, i)
		if err != nil {
			t.Fatalf("replay from checkpoint %d: %v", i, err)
		}
		// arr[25] == 25: the final load result must be reproduced.
		if rr.Final.Regs[isa.RegA0] != 25 {
			t.Errorf("checkpoint %d: replayed a0 = %d; want 25", i, rr.Final.Regs[isa.RegA0])
		}
		if rr.Faulted {
			t.Errorf("checkpoint %d: unexpected fault", i)
		}
	}
}

func TestReplayWithSyscallInputs(t *testing.T) {
	src := `
        .data
buf:    .space 16
        .text
main:   li a0, 0
        la a1, buf
        li a2, 16
        li a7, 3          # read
        syscall
        mv s0, a0         # bytes read (from input log during replay)
        la t0, buf
        lw s1, (t0)
        li a7, 1
        mv a0, s1
        syscall
`
	res, rec, _ := recordFDR(t, src,
		kernel.Config{Inputs: map[string][]byte{"stdin": []byte("MNOP....")}},
		Config{IntervalSteps: 1 << 30})
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	rr, err := Replay(rec, 0)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Final.Regs[isa.RegS0] != 8 {
		t.Errorf("replayed read result = %d; want 8", rr.Final.Regs[isa.RegS0])
	}
	if want := uint32(0x504F4E4D); rr.Final.Regs[isa.RegS1] != want { // "MNOP"
		t.Errorf("replayed buf word = %#x; want %#x", rr.Final.Regs[isa.RegS1], want)
	}
	sizes := rec.Sizes()
	if sizes.InputBytes == 0 {
		t.Error("input log empty despite read syscall")
	}
}

func TestReplayWithDMA(t *testing.T) {
	src := `
        .data
buf:    .space 8
        .text
main:   li a0, 0
        la a1, buf
        li a2, 8
        li a7, 10         # dma_read
        syscall
        li t1, 1000
spin:   addi t1, t1, -1
        bnez t1, spin
        la t0, buf
        lw a0, (t0)
        li a7, 1
        syscall
`
	res, rec, _ := recordFDR(t, src,
		kernel.Config{Inputs: map[string][]byte{"stdin": []byte("QRSTUVWX")}, DMALatency: 50},
		Config{IntervalSteps: 1 << 30})
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	if rec.Sizes().DMABytes == 0 {
		t.Fatal("DMA log empty")
	}
	rr, err := Replay(rec, 0)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if want := uint32(0x54535251); rr.Final.Regs[isa.RegA0] != want { // "QRST"
		t.Errorf("post-DMA word = %#x; want %#x", rr.Final.Regs[isa.RegA0], want)
	}
}

func TestReplayReproducesCrash(t *testing.T) {
	src := `
main:   li t0, 500
w:      addi t0, t0, -1
        bnez t0, w
boom:   lw a0, (zero)
`
	res, rec, img := recordFDR(t, src, kernel.Config{}, Config{IntervalSteps: 150})
	if res.Crash == nil {
		t.Fatal("no crash")
	}
	cps := rec.Checkpoints()
	rr, err := Replay(rec, len(cps)-1) // replay just the last interval
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rr.Faulted || rr.FaultPC != img.MustSymbol("boom") {
		t.Errorf("replayed fault = %v at %#x; want at %#x", rr.Faulted, rr.FaultPC, img.MustSymbol("boom"))
	}
	// Replaying from the oldest checkpoint must reproduce the same crash.
	rr0, err := Replay(rec, 0)
	if err != nil {
		t.Fatalf("replay from 0: %v", err)
	}
	if !rr0.Faulted || rr0.FaultPC != rr.FaultPC {
		t.Error("crash not reproduced from older checkpoint")
	}
}

func TestInterruptLogGrows(t *testing.T) {
	_, rec, _ := recordFDR(t, `
main:   li t0, 3000
l:      addi t0, t0, -1
        bnez t0, l
        li a7, 1
        syscall
`, kernel.Config{TimerInterval: 250}, Config{})
	if rec.Sizes().InterruptBytes == 0 {
		t.Error("timer interrupts not logged")
	}
}

func TestBudgetEvictsOldCheckpoints(t *testing.T) {
	_, rec, _ := recordFDR(t, storeLoop, kernel.Config{}, Config{IntervalSteps: 100, Budget: 1000})
	cps := rec.Checkpoints()
	if len(cps) == 0 {
		t.Fatal("nothing retained")
	}
	if cps[0].id == 0 {
		t.Error("oldest checkpoint should have been evicted under budget")
	}
	// Replay from the oldest retained checkpoint must still work.
	if _, err := Replay(rec, 0); err != nil {
		t.Fatalf("replay after eviction: %v", err)
	}
}

func TestMultiprocessorSizesButNoReplay(t *testing.T) {
	src := `
        .data
flag:   .word 0
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        la   t0, flag
mw:     lw   t1, (t0)
        beqz t1, mw
        li   a7, 1
        li   a0, 0
        syscall
worker: la   t0, flag
        li   t1, 1
        sw   t1, (t0)
        li   a7, 1
        syscall
`
	img := asm.MustAssemble("mp.s", src)
	m := kernel.New(img, kernel.Config{Cores: 2}, nil)
	rec := NewRecorder(m, Config{IntervalSteps: 1 << 30})
	res := m.Run()
	rec.Finalize()
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	if rec.Sizes().MRLBytes == 0 {
		t.Error("no MRL bytes recorded for sharing threads")
	}
	if _, err := Replay(rec, 0); err != ErrUnsupported {
		t.Errorf("MP replay error = %v; want ErrUnsupported", err)
	}
}

func TestSizeReportTotal(t *testing.T) {
	_, rec, _ := recordFDR(t, storeLoop, kernel.Config{}, Config{})
	s := rec.Sizes()
	sum := s.CacheCheckpointBytes + s.MemCheckpointBytes + s.InterruptBytes +
		s.InputBytes + s.DMABytes + s.MRLBytes + s.CoreDumpBytes
	if s.Total() != sum {
		t.Errorf("Total() = %d; want %d", s.Total(), sum)
	}
	if s.CoreDumpBytes < 4096 {
		t.Errorf("core dump = %d; want at least a page", s.CoreDumpBytes)
	}
}

// TestConfigRejectsSubWordBlocks: the first-store filter tracks blocks
// by base address at word granularity, so sub-word or non-power-of-two
// block sizes (which would alias distinct blocks) must fail loudly.
func TestConfigRejectsSubWordBlocks(t *testing.T) {
	for _, bad := range []int{1, 2, 3, 6, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BlockBytes=%d accepted", bad)
				}
			}()
			cfg := Config{BlockBytes: bad}
			cfg.fillDefaults()
		}()
	}
	good := Config{BlockBytes: 4}
	good.fillDefaults() // must not panic
}
