package fdr

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bugnet/internal/isa"
)

// The checkpoint codec serializes a SafetyNet checkpoint for the encoded
// log stores: like the BugNet logs, FDR's retained state lives as bytes
// behind a logstore.Backend and is re-materialized on demand, so the
// baseline's retention can spill to disk through the same machinery.

var ckptMagic = [4]byte{'F', 'D', 'R', 'C'}

const ckptVersion = 1

// ErrBadCheckpoint reports a malformed serialized checkpoint.
var ErrBadCheckpoint = errors.New("fdr: bad serialized checkpoint")

// marshal encodes the checkpoint.
func (c *checkpoint) marshal() []byte {
	le := binary.LittleEndian
	size := 5 + 4 + 8 + 8 + 4 + len(c.startIC)*8 + 4 + len(c.regs)*(4+8+1+4+isa.NumRegs*4) + 4
	for _, u := range c.undo {
		size += 8 + len(u.old)
	}
	out := make([]byte, 0, size)
	var tmp [8]byte
	put32 := func(v uint32) {
		le.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	put64 := func(v uint64) {
		le.PutUint64(tmp[:8], v)
		out = append(out, tmp[:8]...)
	}
	out = append(out, ckptMagic[:]...)
	out = append(out, ckptVersion)
	put32(c.id)
	put64(c.startStep)
	put64(c.instructions)
	put32(uint32(len(c.startIC)))
	for _, ic := range c.startIC {
		put64(ic)
	}
	put32(uint32(len(c.regs)))
	for i := range c.regs {
		rc := &c.regs[i]
		put32(uint32(int32(rc.tid)))
		put64(rc.ic)
		if rc.live {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		put32(rc.state.PC)
		for _, r := range rc.state.Regs {
			put32(r)
		}
	}
	put32(uint32(len(c.undo)))
	for _, u := range c.undo {
		put32(u.addr)
		put32(uint32(len(u.old)))
		out = append(out, u.old...)
	}
	return out
}

// unmarshalCheckpoint decodes a serialized checkpoint.
func unmarshalCheckpoint(data []byte) (*checkpoint, error) {
	le := binary.LittleEndian
	pos := 0
	need := func(n int) error {
		if len(data)-pos < n {
			return fmt.Errorf("%w: truncated at offset %d", ErrBadCheckpoint, pos)
		}
		return nil
	}
	if err := need(5); err != nil {
		return nil, err
	}
	if [4]byte(data[:4]) != ckptMagic || data[4] != ckptVersion {
		return nil, ErrBadCheckpoint
	}
	pos = 5
	get32 := func() uint32 {
		v := le.Uint32(data[pos:])
		pos += 4
		return v
	}
	get64 := func() uint64 {
		v := le.Uint64(data[pos:])
		pos += 8
		return v
	}
	c := &checkpoint{}
	if err := need(4 + 8 + 8 + 4); err != nil {
		return nil, err
	}
	c.id = get32()
	c.startStep = get64()
	c.instructions = get64()
	nIC := int(get32())
	if err := need(nIC * 8); err != nil {
		return nil, err
	}
	c.startIC = make([]uint64, nIC)
	for i := range c.startIC {
		c.startIC[i] = get64()
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nRegs := int(get32())
	if err := need(nRegs * (4 + 8 + 1 + 4 + isa.NumRegs*4)); err != nil {
		return nil, err
	}
	c.regs = make([]regCheckpoint, nRegs)
	for i := range c.regs {
		rc := &c.regs[i]
		rc.tid = int(int32(get32()))
		rc.ic = get64()
		rc.live = data[pos] == 1
		pos++
		rc.state.PC = get32()
		for j := range rc.state.Regs {
			rc.state.Regs[j] = get32()
		}
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nUndo := int(get32())
	// Bound the count by the remaining payload (each entry costs at least
	// its 8-byte header) before allocating: a tampered count must fail
	// loudly, not drive a huge allocation.
	if nUndo > (len(data)-pos)/8 {
		return nil, fmt.Errorf("%w: undo count %d exceeds payload", ErrBadCheckpoint, nUndo)
	}
	c.undo = make([]undoEntry, 0, nUndo)
	for i := 0; i < nUndo; i++ {
		if err := need(8); err != nil {
			return nil, err
		}
		addr := get32()
		n := int(get32())
		if err := need(n); err != nil {
			return nil, err
		}
		c.undo = append(c.undo, undoEntry{addr: addr, old: append([]byte(nil), data[pos:pos+n]...)})
		pos += n
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(data)-pos)
	}
	return c, nil
}
