package cluster

import (
	"testing"
	"time"
)

func TestAdmissionByteBudget(t *testing.T) {
	a := NewAdmission(100, -1, 2*time.Second)
	rel1, ok := a.Acquire(60)
	if !ok {
		t.Fatal("first upload within budget was shed")
	}
	// 60 reserved; 50 more would overshoot 100.
	if _, ok := a.Acquire(50); ok {
		t.Fatal("upload beyond byte budget was admitted")
	}
	// Drain, then the same upload is admitted.
	rel1(-1)
	rel2, ok := a.Acquire(50)
	if !ok {
		t.Fatal("upload after drain was shed")
	}
	rel2(-1)
	if bytes, inflight := a.Occupancy(); bytes != 0 || inflight != 0 {
		t.Fatalf("occupancy after full drain = %d bytes, %d inflight", bytes, inflight)
	}
	if a.RetryAfter() != 2*time.Second {
		t.Fatalf("RetryAfter = %v", a.RetryAfter())
	}
}

func TestAdmissionInflightCap(t *testing.T) {
	a := NewAdmission(-1, 2, time.Second)
	r1, ok1 := a.Acquire(1)
	r2, ok2 := a.Acquire(1)
	if !ok1 || !ok2 {
		t.Fatal("uploads within inflight cap were shed")
	}
	if _, ok := a.Acquire(1); ok {
		t.Fatal("upload beyond inflight cap was admitted")
	}
	r1(-1)
	r3, ok := a.Acquire(1)
	if !ok {
		t.Fatal("upload after inflight drain was shed")
	}
	r3(-1)
	r2(-1)
}

func TestAdmissionChunkedReservation(t *testing.T) {
	// An upload with no declared length is charged DefaultReservation.
	a := NewAdmission(DefaultReservation+10, -1, time.Second)
	rel, ok := a.Acquire(-1)
	if !ok {
		t.Fatal("chunked upload within budget was shed")
	}
	if _, ok := a.Acquire(-1); ok {
		t.Fatal("second chunked upload should exceed the budget")
	}
	rel(-1)
}

func TestAdmissionUnlimited(t *testing.T) {
	a := NewAdmission(-1, -1, time.Second)
	for i := 0; i < 1000; i++ {
		if _, ok := a.Acquire(1 << 40); !ok {
			t.Fatal("unlimited admission shed an upload")
		}
	}
}
