package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 64)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a"}, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("report-%d", i)
		oa := a.Owners(key, 2)
		ob := b.Owners(key, 2)
		if len(oa) != 2 || len(ob) != 2 || oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("key %q: owners differ across peer order: %v vs %v", key, oa, ob)
		}
	}
}

func TestRingOwnersDistinctAndClamped(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 32)
	owners := r.Owners("some-key", 5)
	if len(owners) != 3 {
		t.Fatalf("owners clamped to membership: got %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %q in %v", o, owners)
		}
		seen[o] = true
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(k, 0) = %v, want nil", got)
	}
	if !r.IsOwner("some-key", owners[0], 3) {
		t.Fatal("IsOwner disagrees with Owners")
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := NewRing(nodes, DefaultVirtualNodes)
	counts := map[string]int{}
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("%064x", i), 1)[0]]++
	}
	// 128 virtual nodes keeps the primary load within a loose band; a
	// node below 20% (fair share 33%) means the circle clumped.
	for _, n := range nodes {
		if frac := float64(counts[n]) / keys; frac < 0.20 || frac > 0.50 {
			t.Fatalf("node %s owns %.1f%% of keys: %v", n, frac*100, counts)
		}
	}
}

func TestRingSingleNode(t *testing.T) {
	r := NewRing([]string{"only"}, 8)
	for i := 0; i < 10; i++ {
		owners := r.Owners(fmt.Sprintf("k%d", i), 3)
		if len(owners) != 1 || owners[0] != "only" {
			t.Fatalf("single-node owners = %v", owners)
		}
	}
}
