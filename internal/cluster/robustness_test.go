package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"bugnet/internal/faultinject"
	"bugnet/internal/httpjson"
	"bugnet/internal/loadgen"
	"bugnet/internal/triage"
)

// checkGoroutineLeaks snapshots the goroutine count and, after the
// test's own cleanups (register it BEFORE spawning the cluster), fails
// if the count has not settled back. Idle HTTP connections are reclaimed
// first — their reader goroutines are pooling, not leaking.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after cleanup\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(50 * time.Millisecond)
		}
	})
}

// TestClusterDegradedStoreSheds: a node whose store disk goes sticky-bad
// refuses writes with 503 + reason instead of acking reports it would
// lose, surfaces the reason in /readyz and /api/v1/cluster, and resumes
// ingest by itself once the disk heals.
func TestClusterDegradedStoreSheds(t *testing.T) {
	reg := triage.NewImageRegistry()
	corpus, err := loadgen.Corpus(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Separate fault tags so only the triage store is faulted, never the
	// coordinator spool — the degradation must come from the store itself.
	plane := faultinject.NewPlane(7)
	dir := t.TempDir()
	svc, err := triage.New(triage.Config{
		Dir:      filepath.Join(dir, "store"),
		Workers:  1,
		Resolver: reg.Resolve,
		FS:       plane.FS("store"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	self := "http://degraded-node"
	node, err := New(Config{
		Self:              self,
		Peers:             []string{self},
		ReplicationFactor: 1,
		WriteQuorum:       1,
		Service:           svc,
		Inner:             triage.NewHandler(svc),
		SpoolDir:          filepath.Join(dir, "cluster"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(srv.Close)

	resp := post(t, srv.URL, corpus[0])
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("healthy ingest: %s", resp.Status)
	}

	// Disk goes bad: the in-flight write fails (marking the store
	// degraded), and every write after that is shed before spooling.
	plane.SetDiskFault("store", &faultinject.DiskFault{Err: faultinject.ErrNoSpace})
	resp = post(t, srv.URL, corpus[1])
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write onto bad disk: %s, want 503", resp.Status)
	}

	resp = post(t, srv.URL, corpus[1])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write while degraded: %s, want 503", resp.Status)
	}
	e := decodeEnvelope(t, resp)
	if e.Code != httpjson.CodeUnavailable || !strings.Contains(e.Message, "store degraded") {
		t.Fatalf("degraded shed envelope = %+v", e)
	}
	if n := scrapeCounter(t, srv.URL, "bugnet_cluster_degraded_sheds_total"); n < 1 {
		t.Fatalf("bugnet_cluster_degraded_sheds_total = %d, want >= 1", n)
	}

	// The reason is visible in readiness and the cluster view.
	rresp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready triage.Readiness
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("degraded readyz: %s ready=%v", rresp.Status, ready.Ready)
	}
	if !strings.Contains(strings.Join(ready.Reasons, ";"), "store degraded") {
		t.Fatalf("readyz reasons = %v, want a store-degraded reason", ready.Reasons)
	}
	iresp, err := http.Get(srv.URL + "/api/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var info ClusterInfo
	if err := json.NewDecoder(iresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if info.Degraded == "" {
		t.Fatal("ClusterInfo.Degraded is empty while the store is degraded")
	}

	// Heal the disk: the rate-limited health probe clears the sticky
	// error and ingest resumes without a restart.
	plane.SetDiskFault("store", nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp = post(t, srv.URL, corpus[1])
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest did not recover after heal: %s", resp.Status)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestReadyzBreakerReasons: when open circuits leave fewer reachable
// members than the write quorum needs, /readyz flips to 503 and names
// the shed peers.
func TestReadyzBreakerReasons(t *testing.T) {
	lc, corpus := spawn(t, 3, func(o *SpawnOptions) {
		o.BreakerThreshold = 1
		o.BreakerCooldown = time.Hour
	})
	a := lc.Nodes[0]
	lc.Nodes[1].Stop()
	lc.Nodes[2].Stop()

	// One failed fan-out trips both peers' breakers at threshold 1.
	resp := post(t, a.URL, corpus[0])
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write with both peers down: %s", resp.Status)
	}

	rresp, err := http.Get(a.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready triage.Readiness
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("readyz with quorum unreachable: %s ready=%v reasons=%v",
			rresp.Status, ready.Ready, ready.Reasons)
	}
	if !strings.Contains(strings.Join(ready.Reasons, ";"), "write quorum") {
		t.Fatalf("readyz reasons = %v, want a quorum reason", ready.Reasons)
	}
}

// TestAntiEntropyGiveUpSurfacesInDrops: a debt whose owner never returns
// is abandoned at the attempt cap — the queue drains instead of spinning
// forever, and the abandonment shows in the drops counter.
func TestAntiEntropyGiveUpSurfacesInDrops(t *testing.T) {
	lc, corpus := spawn(t, 3, func(o *SpawnOptions) {
		o.RetryInterval = 20 * time.Millisecond
		o.MaxRepairAttempts = 3
	})
	a, b := lc.Nodes[0], lc.Nodes[1]
	before := scrapeCounter(t, a.URL, "bugnet_cluster_antientropy_drops_total")

	b.Stop()
	resp := post(t, a.URL, corpus[0])
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("quorum write: %s", resp.Status)
	}
	if a.Node.RepairDebt() == 0 {
		t.Fatal("no replication debt recorded for the down owner")
	}

	// B never returns: three sweeps exhaust the cap and the debt drains.
	deadline := time.Now().Add(10 * time.Second)
	for a.Node.RepairDebt() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair queue still holds %d tasks after the attempt cap", a.Node.RepairDebt())
		}
		time.Sleep(20 * time.Millisecond)
	}
	after := scrapeCounter(t, a.URL, "bugnet_cluster_antientropy_drops_total")
	if after <= before {
		t.Fatalf("bugnet_cluster_antientropy_drops_total did not advance (%d -> %d)", before, after)
	}
}

// TestHintQuarantine: hint files that cannot be trusted — foreign names,
// or content that no longer hashes to the name — are moved aside with a
// counter, while a valid hint re-files its replication debt.
func TestHintQuarantine(t *testing.T) {
	lc, corpus := spawn(t, 2, func(o *SpawnOptions) {
		o.Replication = 2
		o.WriteQuorum = 1
		o.RetryInterval = time.Hour // keep the planted debt observable
	})
	a := lc.Nodes[0]
	hintDir := a.Node.hintDir

	valid := corpus[0]
	validID := blobID(valid)
	corruptID := blobID(corpus[1])
	if err := os.WriteFile(filepath.Join(hintDir, "not-a-hash"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(hintDir, corruptID), corpus[1][:len(corpus[1])/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(hintDir, validID), valid, 0o644); err != nil {
		t.Fatal(err)
	}

	a.Node.recoverHints()

	qdir := filepath.Join(hintDir, "quarantine")
	for _, name := range []string{"not-a-hash", corruptID} {
		if _, err := os.Stat(filepath.Join(qdir, name)); err != nil {
			t.Fatalf("untrusted hint %q was not quarantined: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(hintDir, name)); err == nil {
			t.Fatalf("untrusted hint %q still in the hint dir", name)
		}
	}
	if _, err := os.Stat(filepath.Join(hintDir, validID)); err != nil {
		t.Fatalf("valid hint was disturbed: %v", err)
	}
	if a.Node.RepairDebt() == 0 {
		t.Fatal("valid hint did not re-file its replication debt")
	}
}
