package cluster

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/faultinject"
	"bugnet/internal/triage"
)

// SpawnOptions configures an in-process cluster (SpawnLocal).
type SpawnOptions struct {
	// BaseDir is where each node's store lives (BaseDir/node<i>). Required.
	BaseDir string
	// Resolver maps BinaryID -> image for every node's replay. Required.
	Resolver func(core.BinaryID) (*asm.Image, error)
	// Replication / WriteQuorum / admission budgets mirror Config.
	Replication   int
	WriteQuorum   int
	MaxSpoolBytes int64
	MaxInflight   int
	RetryAfter    time.Duration
	// RetryInterval paces anti-entropy (default 1s; tests use tens of ms).
	RetryInterval time.Duration
	// Workers is each node's replay pool size (default 2).
	Workers int

	// PeerTimeout / MaxRepairAttempts / breaker tuning mirror Config.
	PeerTimeout       time.Duration
	MaxRepairAttempts int
	BreakerThreshold  int
	BreakerCooldown   time.Duration
	// FaultPlane, when set, threads each node's disk I/O (tagged
	// "node<i>") and peer traffic through the fault-injection plane — the
	// chaos harness's hook into an otherwise production-shaped cluster.
	FaultPlane *faultinject.Plane
}

// LocalNode is one member of an in-process cluster: a real triage
// service and cluster node behind a real TCP listener, so peers talk
// over loopback HTTP exactly as a deployed fleet would.
type LocalNode struct {
	URL     string
	Node    *Node
	Service *triage.Service

	addr string
	mu   sync.Mutex
	srv  *http.Server
	lis  net.Listener
}

// LocalCluster is a set of in-process nodes sharing one static ring.
// Used by the e2e tests, the ClusterIngest benchmark, and
// bugnet-loadgen's self-hosted mode.
type LocalCluster struct {
	Nodes []*LocalNode
}

// SpawnLocal starts n nodes on loopback listeners. Addresses are bound
// first so every node can be configured with the full peer list, then
// services and handlers come up behind them.
func SpawnLocal(n int, opt SpawnOptions) (*LocalCluster, error) {
	if n <= 0 {
		return nil, errors.New("cluster: SpawnLocal needs n > 0")
	}
	if opt.BaseDir == "" || opt.Resolver == nil {
		return nil, errors.New("cluster: SpawnOptions.BaseDir and Resolver are required")
	}
	lc := &LocalCluster{}
	ok := false
	defer func() {
		if !ok {
			lc.Close()
		}
	}()

	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = lis
		peers[i] = "http://" + lis.Addr().String()
	}

	for i := 0; i < n; i++ {
		// Each node gets its own fault-plane view: disk faults land on its
		// tag, partitions on its base URL, and its transport stays private
		// so closing one node reclaims only its connections.
		fs := opt.FaultPlane.FS(fmt.Sprintf("node%d", i))
		var transport http.RoundTripper
		if opt.FaultPlane != nil {
			transport = opt.FaultPlane.Transport(peers[i], http.DefaultTransport.(*http.Transport).Clone())
		}
		svc, err := triage.New(triage.Config{
			Dir:      filepath.Join(opt.BaseDir, fmt.Sprintf("node%d", i)),
			Workers:  opt.Workers,
			Resolver: opt.Resolver,
			FS:       fs,
		})
		if err != nil {
			for _, l := range listeners[i:] {
				l.Close()
			}
			return nil, err
		}
		node, err := New(Config{
			Self:              peers[i],
			Peers:             peers,
			ReplicationFactor: opt.Replication,
			WriteQuorum:       opt.WriteQuorum,
			Service:           svc,
			Inner:             triage.NewHandler(svc),
			SpoolDir:          filepath.Join(opt.BaseDir, fmt.Sprintf("node%d", i), "cluster"),
			MaxSpoolBytes:     opt.MaxSpoolBytes,
			MaxInflight:       opt.MaxInflight,
			RetryAfter:        opt.RetryAfter,
			RetryInterval:     opt.RetryInterval,
			PeerTimeout:       opt.PeerTimeout,
			MaxRepairAttempts: opt.MaxRepairAttempts,
			BreakerThreshold:  opt.BreakerThreshold,
			BreakerCooldown:   opt.BreakerCooldown,
			Transport:         transport,
			FS:                fs,
		})
		if err != nil {
			svc.Close()
			for _, l := range listeners[i:] {
				l.Close()
			}
			return nil, err
		}
		ln := &LocalNode{
			URL:     peers[i],
			Node:    node,
			Service: svc,
			addr:    listeners[i].Addr().String(),
		}
		ln.start(listeners[i])
		lc.Nodes = append(lc.Nodes, ln)
	}
	ok = true
	return lc, nil
}

func (ln *LocalNode) start(lis net.Listener) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.lis = lis
	ln.srv = &http.Server{Handler: ln.Node.Handler()}
	go ln.srv.Serve(lis)
}

// Stop takes the node off the network (listener closed, in-flight
// connections dropped) while its service, store, and dirs stay intact —
// the "node down" half of a failure drill.
func (ln *LocalNode) Stop() {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.srv != nil {
		ln.srv.Close()
		ln.srv = nil
		ln.lis = nil
	}
}

// Restart rebinds the node's original address — the "node back" half.
// Fails if the OS already gave the port away (rare on loopback).
func (ln *LocalNode) Restart() error {
	ln.mu.Lock()
	running := ln.srv != nil
	ln.mu.Unlock()
	if running {
		return nil
	}
	lis, err := net.Listen("tcp", ln.addr)
	if err != nil {
		return err
	}
	ln.start(lis)
	return nil
}

// Close tears one node down completely.
func (ln *LocalNode) Close() {
	ln.Stop()
	if ln.Node != nil {
		ln.Node.Close()
	}
	if ln.Service != nil {
		ln.Service.Close()
	}
}

// URLs returns every member's base URL.
func (lc *LocalCluster) URLs() []string {
	out := make([]string, len(lc.Nodes))
	for i, n := range lc.Nodes {
		out[i] = n.URL
	}
	return out
}

// Close tears the whole cluster down.
func (lc *LocalCluster) Close() {
	for _, n := range lc.Nodes {
		n.Close()
	}
}
