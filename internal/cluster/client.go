package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"bugnet/internal/httpjson"
)

// peerClient is the thin HTTP client behind replica forwarding, proxy
// reads, and health probes. The internal endpoints are strictly local on
// the receiving node (they never forward), which is what makes the
// coordinator's fan-out loop-free.
type peerClient struct {
	hc *http.Client
}

func newPeerClient(timeout time.Duration) *peerClient {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &peerClient{hc: &http.Client{Timeout: timeout}}
}

// peerError carries the upstream status so callers can distinguish a
// replica miss (404) from a replica failure.
type peerError struct {
	status int
	code   string
	msg    string
}

func (e *peerError) Error() string {
	return fmt.Sprintf("peer: %d %s: %s", e.status, e.code, e.msg)
}

func (c *peerClient) decodeFailure(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	body, _ := httpjson.DecodeError(data)
	if body.Code == "" {
		body.Code = httpjson.CodeForStatus(resp.StatusCode)
	}
	return &peerError{status: resp.StatusCode, code: body.Code, msg: body.Message}
}

func joinURL(base, path string) string {
	return strings.TrimRight(base, "/") + path
}

// putReplica streams one blob to a peer's local-only replica endpoint.
// The peer verifies the content hash against id and ingests locally; the
// returned body is the peer's IngestResult JSON.
func (c *peerClient) putReplica(ctx context.Context, node, id string, body io.Reader, size int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		joinURL(node, "/internal/v1/replicas/"+id), body)
	if err != nil {
		return nil, err
	}
	req.ContentLength = size
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return nil, c.decodeFailure(resp)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// getReplica opens a streaming read of a peer's locally held blob. The
// caller must close the returned body.
func (c *peerClient) getReplica(ctx context.Context, node, id string) (io.ReadCloser, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		joinURL(node, "/internal/v1/replicas/"+id), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		err := c.decodeFailure(resp)
		resp.Body.Close()
		return nil, 0, err
	}
	return resp.Body, resp.ContentLength, nil
}

// hasReplica asks a peer whether it locally holds id, without the bytes.
func (c *peerClient) hasReplica(ctx context.Context, node, id string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead,
		joinURL(node, "/internal/v1/replicas/"+id), nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	}
	return false, &peerError{status: resp.StatusCode, code: httpjson.CodeForStatus(resp.StatusCode)}
}

// getMeta proxies one report-metadata read from a peer's local state.
func (c *peerClient) getMeta(ctx context.Context, node, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		joinURL(node, "/internal/v1/reports/"+id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.decodeFailure(resp)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// health probes a peer's liveness endpoint.
func (c *peerClient) health(ctx context.Context, node string) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, joinURL(node, "/healthz"), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer: healthz %s", resp.Status)
	}
	return nil
}
