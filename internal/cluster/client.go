package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"bugnet/internal/httpjson"
	"bugnet/internal/retry"
)

// peerClient is the thin HTTP client behind replica forwarding, proxy
// reads, anti-entropy pushes, and health probes. The internal endpoints
// are strictly local on the receiving node (they never forward), which
// is what makes the coordinator's fan-out loop-free.
//
// Every request carries a context deadline end-to-end — including the
// streaming body of a replica read — so a peer that dies mid-response
// can never hang a coordinator goroutine. A per-peer circuit breaker
// front-runs each call: a peer that keeps failing is shed locally
// (retry.ErrOpen, wrapped Permanent so retry loops fail fast) until a
// half-open probe proves it back.
type peerClient struct {
	hc       *http.Client
	timeout  time.Duration
	breakers *retry.BreakerSet
}

func newPeerClient(timeout time.Duration, transport http.RoundTripper, breakers *retry.BreakerSet) *peerClient {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &peerClient{
		hc:       &http.Client{Transport: transport},
		timeout:  timeout,
		breakers: breakers,
	}
}

// closeIdle drops the transport's idle connections so a stopped node
// does not leak per-connection reader goroutines.
func (c *peerClient) closeIdle() {
	type idleCloser interface{ CloseIdleConnections() }
	if t, ok := c.hc.Transport.(idleCloser); ok {
		t.CloseIdleConnections()
	}
}

// openBreakers lists the peers currently shed by an open circuit.
func (c *peerClient) openBreakers() []string {
	if c.breakers == nil {
		return nil
	}
	return c.breakers.Open()
}

// start guards one peer call: consult the breaker, then bound the call
// (headers and body both) with the client deadline.
func (c *peerClient) start(ctx context.Context, node string) (context.Context, context.CancelFunc, error) {
	if c.breakers != nil && !c.breakers.For(node).Allow() {
		return nil, nil, retry.Permanent(fmt.Errorf("%w: %s", retry.ErrOpen, node))
	}
	cctx, cancel := context.WithTimeout(ctx, c.timeout)
	return cctx, cancel, nil
}

// observe reports one call's outcome to the peer's breaker. A peer that
// answered — any status, even a 4xx or an admission 429 — is alive;
// only transport failures and 5xx responses count against the circuit.
func (c *peerClient) observe(node string, err error) {
	if c.breakers == nil {
		return
	}
	if isBreakerFailure(err) {
		c.breakers.For(node).Failure()
	} else {
		c.breakers.For(node).Success()
	}
}

func isBreakerFailure(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, retry.ErrOpen) {
		return false // shed locally; nothing new learned about the peer
	}
	var pe *peerError
	if errors.As(err, &pe) {
		return pe.status >= 500
	}
	return true // transport-level failure: reset, timeout, refused
}

// peerError carries the upstream status so callers can distinguish a
// replica miss (404) from a replica failure.
type peerError struct {
	status int
	code   string
	msg    string
}

func (e *peerError) Error() string {
	return fmt.Sprintf("peer: %d %s: %s", e.status, e.code, e.msg)
}

// decodeFailure turns a non-2xx response into an error classified for
// the retry layer: 429/503 are retryable and carry the server's
// Retry-After hint; other 4xx are permanent (retrying cannot fix a bad
// request); 5xx are retryable.
func (c *peerClient) decodeFailure(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	body, _ := httpjson.DecodeError(data)
	if body.Code == "" {
		body.Code = httpjson.CodeForStatus(resp.StatusCode)
	}
	err := error(&peerError{status: resp.StatusCode, code: body.Code, msg: body.Message})
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		if d, ok := retry.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
			err = retry.After(err, d)
		}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		err = retry.Permanent(err)
	}
	return err
}

func joinURL(base, path string) string {
	return strings.TrimRight(base, "/") + path
}

// putReplica streams one blob to a peer's local-only replica endpoint.
// The peer verifies the content hash against id and ingests locally; the
// returned body is the peer's IngestResult JSON.
func (c *peerClient) putReplica(ctx context.Context, node, id string, body io.Reader, size int64) ([]byte, error) {
	cctx, cancel, err := c.start(ctx, node)
	if err != nil {
		return nil, err
	}
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPut,
		joinURL(node, "/internal/v1/replicas/"+id), body)
	if err != nil {
		return nil, err
	}
	req.ContentLength = size
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.observe(node, err)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		ferr := c.decodeFailure(resp)
		c.observe(node, ferr)
		return nil, ferr
	}
	c.observe(node, nil)
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// cancelBody keeps a streamed response's context deadline alive until
// the caller closes the body, then releases it.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// getReplica opens a streaming read of a peer's locally held blob. The
// caller must close the returned body; the client deadline covers the
// whole stream, so a peer dying mid-body unblocks the reader.
func (c *peerClient) getReplica(ctx context.Context, node, id string) (io.ReadCloser, int64, error) {
	cctx, cancel, err := c.start(ctx, node)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(cctx, http.MethodGet,
		joinURL(node, "/internal/v1/replicas/"+id), nil)
	if err != nil {
		cancel()
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.observe(node, err)
		cancel()
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		ferr := c.decodeFailure(resp)
		c.observe(node, ferr)
		resp.Body.Close()
		cancel()
		return nil, 0, ferr
	}
	c.observe(node, nil)
	return &cancelBody{ReadCloser: resp.Body, cancel: cancel}, resp.ContentLength, nil
}

// hasReplica asks a peer whether it locally holds id, without the bytes.
func (c *peerClient) hasReplica(ctx context.Context, node, id string) (bool, error) {
	cctx, cancel, err := c.start(ctx, node)
	if err != nil {
		return false, err
	}
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodHead,
		joinURL(node, "/internal/v1/replicas/"+id), nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.observe(node, err)
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	c.observe(node, nil)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	}
	perr := &peerError{status: resp.StatusCode, code: httpjson.CodeForStatus(resp.StatusCode)}
	if perr.status >= 500 {
		c.observe(node, perr)
	}
	return false, perr
}

// getMeta proxies one report-metadata read from a peer's local state.
func (c *peerClient) getMeta(ctx context.Context, node, id string) ([]byte, error) {
	cctx, cancel, err := c.start(ctx, node)
	if err != nil {
		return nil, err
	}
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet,
		joinURL(node, "/internal/v1/reports/"+id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.observe(node, err)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ferr := c.decodeFailure(resp)
		c.observe(node, ferr)
		return nil, ferr
	}
	c.observe(node, nil)
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// health probes a peer's liveness endpoint. It bypasses the breaker —
// the probe IS how an operator learns a shed peer's state — but still
// carries its own short deadline.
func (c *peerClient) health(ctx context.Context, node string) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, joinURL(node, "/healthz"), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer: healthz %s", resp.Status)
	}
	return nil
}
