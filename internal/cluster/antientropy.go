package cluster

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// antiEntropy is the background half of the write path: every owner that
// missed a quorum-successful write is owed the blob, and this worker
// retries until the debt is paid. Sources, in order: the local store (when
// this node is an owner), the hint file the coordinator parked (when it is
// not), and finally any other owner that holds the blob. The queue is
// bounded — at the bound new tasks are dropped with a counter rather than
// growing without limit, because a down node's debt is rediscoverable
// later via read-repair.
type antiEntropy struct {
	n           *Node
	interval    time.Duration
	maxAttempts int

	mu      sync.Mutex
	pending map[repairTask]int // task -> attempts so far
	wake    chan struct{}
	done    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

type repairTask struct {
	id   string
	node string
}

const (
	// maxQueuedRepairs bounds the debt ledger; ~64 bytes a task.
	maxQueuedRepairs = 4096
	// defaultMaxRepairAttempts is the give-up limit per task. With the
	// default 1s interval that is ~5 minutes of outage covered; longer
	// outages heal via read-repair when the node returns.
	defaultMaxRepairAttempts = 300
)

func newAntiEntropy(n *Node, interval time.Duration, maxAttempts int) *antiEntropy {
	if interval <= 0 {
		interval = time.Second
	}
	if maxAttempts <= 0 {
		maxAttempts = defaultMaxRepairAttempts
	}
	ae := &antiEntropy{
		n:           n,
		interval:    interval,
		maxAttempts: maxAttempts,
		pending:     make(map[repairTask]int),
		wake:        make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	ae.wg.Add(1)
	go ae.run()
	return ae
}

func (ae *antiEntropy) close() {
	ae.mu.Lock()
	if !ae.stopped {
		ae.stopped = true
		close(ae.done)
	}
	ae.mu.Unlock()
	ae.wg.Wait()
}

// enqueue records that node is owed id. Duplicate debts collapse.
func (ae *antiEntropy) enqueue(id, node string) {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	if ae.stopped {
		return
	}
	t := repairTask{id: id, node: node}
	if _, ok := ae.pending[t]; ok {
		return
	}
	if len(ae.pending) >= maxQueuedRepairs {
		mAEDropQueueFull.Inc()
		return
	}
	ae.pending[t] = 0
	mAntiEntropyQueue.Set(int64(len(ae.pending)))
	select {
	case ae.wake <- struct{}{}:
	default:
	}
}

func (ae *antiEntropy) depth() int {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	return len(ae.pending)
}

func (ae *antiEntropy) run() {
	defer ae.wg.Done()
	timer := time.NewTimer(ae.interval)
	defer timer.Stop()
	for {
		select {
		case <-ae.done:
			return
		case <-ae.wake:
		case <-timer.C:
		}
		ae.sweep()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(ae.interval)
	}
}

// sweep attempts every pending task once.
func (ae *antiEntropy) sweep() {
	ae.mu.Lock()
	tasks := make([]repairTask, 0, len(ae.pending))
	for t := range ae.pending {
		tasks = append(tasks, t)
	}
	ae.mu.Unlock()

	for _, t := range tasks {
		select {
		case <-ae.done:
			return
		default:
		}
		ok := ae.repair(t)
		ae.mu.Lock()
		if ok {
			delete(ae.pending, t)
		} else {
			ae.pending[t]++
			if ae.pending[t] >= ae.maxAttempts {
				// Exhausted: surface the abandonment in the drop counter —
				// the debt is rediscoverable via read-repair — and stop
				// burning sweeps on it.
				delete(ae.pending, t)
				mAEDropGaveUp.Inc()
			}
		}
		remaining := ae.hasDebtLocked(t.id)
		mAntiEntropyQueue.Set(int64(len(ae.pending)))
		ae.mu.Unlock()
		if ok && !remaining {
			// Every owner has the blob now; the hint (if any) is dead weight.
			os.Remove(filepath.Join(ae.n.hintDir, t.id))
		}
	}
}

func (ae *antiEntropy) hasDebtLocked(id string) bool {
	for t := range ae.pending {
		if t.id == id {
			return true
		}
	}
	return false
}

// repair pays one debt: push id to node from the best available source.
func (ae *antiEntropy) repair(t repairTask) bool {
	n := ae.n
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Skip the push if the owner already caught up (read-repair beat us —
	// and already counted the restore).
	if has, err := n.client.hasReplica(ctx, t.node, t.id); err == nil && has {
		return true
	}

	src, cleanup, ok := ae.source(ctx, t.id)
	if !ok {
		mRepairErr.Inc()
		return false
	}
	defer cleanup()
	fi, err := os.Stat(src)
	if err != nil {
		mRepairErr.Inc()
		return false
	}
	if _, err := n.putReplicaFile(ctx, t.node, t.id, src, fi.Size()); err != nil {
		mRepairErr.Inc()
		return false
	}
	mRepairsTotal.Inc()
	return true
}

// source finds a local file holding id's bytes: the pinned store blob,
// the coordinator's hint file, or a copy fetched from another owner. A
// hint is only trusted after its content re-hashes to its name — a
// corrupt or truncated hint is quarantined, not pushed and not retried.
func (ae *antiEntropy) source(ctx context.Context, id string) (path string, cleanup func(), ok bool) {
	n := ae.n
	store := n.cfg.Service.Store()
	if store.Pin(id) {
		if p, found := store.Path(id); found {
			return p, func() { store.Unpin(id) }, true
		}
		store.Unpin(id)
	}
	hint := filepath.Join(n.hintDir, id)
	if _, err := os.Stat(hint); err == nil {
		if got, err := hashFile(hint); err == nil && got == id {
			return hint, func() {}, true
		}
		n.quarantineHint(hint)
	}
	for _, o := range n.owners(id) {
		if o == n.self {
			continue
		}
		rc, _, err := n.client.getReplica(ctx, o, id)
		if err != nil {
			continue
		}
		tmpPath, gotID, _, err := func() (string, string, int64, error) {
			defer rc.Close()
			return n.spoolBody(rc)
		}()
		if err != nil {
			continue
		}
		if gotID != id {
			os.Remove(tmpPath)
			continue
		}
		return tmpPath, func() { os.Remove(tmpPath) }, true
	}
	return "", nil, false
}
