package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bugnet/internal/triage"
)

// Config parameterizes one cluster node.
type Config struct {
	// Self is this node's base URL exactly as it appears in Peers.
	Self string
	// Peers is the static membership: every node's base URL, including
	// Self. Empty means a single-node cluster of {Self}.
	Peers []string
	// ReplicationFactor N is how many owners store each report (default
	// 3, clamped to the membership size).
	ReplicationFactor int
	// WriteQuorum W is how many owner acks an ingest needs to succeed
	// (default majority of the effective replication factor).
	WriteQuorum int
	// VirtualNodes per member on the placement ring (default 128).
	VirtualNodes int
	// Service is the local triage service (required).
	Service *triage.Service
	// Inner serves every route the cluster layer does not intercept —
	// listings, buckets, debug sessions, health, metrics (required).
	Inner http.Handler
	// SpoolDir holds the coordinator's in-flight upload spool and the
	// hinted-handoff files (required; point it at the store's filesystem
	// to keep local adoption a pure rename).
	SpoolDir string

	// Admission budgets: MaxSpoolBytes / MaxInflight bound admitted
	// uploads (0 = defaults, negative = unlimited); RetryAfter is the
	// shed response's drain estimate.
	MaxSpoolBytes int64
	MaxInflight   int
	RetryAfter    time.Duration

	// PeerTimeout bounds one replica write or proxy read (default 30s).
	PeerTimeout time.Duration
	// RetryInterval paces anti-entropy rounds (default 1s).
	RetryInterval time.Duration
}

// Node is the cluster layer wrapped around one triage service: ring
// placement, coordinator forwarding, replica serving, read-repair, and
// admission control. A single-node Config degenerates to "admission
// control in front of the local service" — one code path from laptop to
// fleet.
type Node struct {
	cfg       Config
	ring      *Ring
	self      string
	replicas  int // effective replication (clamped)
	quorum    int // effective write quorum
	admission *Admission
	client    *peerClient
	hintDir   string
	ae        *antiEntropy
}

// New builds the node and starts its anti-entropy worker.
func New(cfg Config) (*Node, error) {
	if cfg.Service == nil || cfg.Inner == nil {
		return nil, errors.New("cluster: Config.Service and Config.Inner are required")
	}
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	if cfg.SpoolDir == "" {
		return nil, errors.New("cluster: Config.SpoolDir is required")
	}
	peers := cfg.Peers
	if len(peers) == 0 {
		peers = []string{cfg.Self}
	}
	found := false
	for _, p := range peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: Self %q is not in Peers %v", cfg.Self, peers)
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, err
	}
	hintDir := filepath.Join(cfg.SpoolDir, "hints")
	if err := os.MkdirAll(hintDir, 0o755); err != nil {
		return nil, err
	}
	// A crash mid-spool leaves coordinator temp files; reclaim them.
	// Hint files are NOT reclaimed — they are the only copy of a blob
	// whose owner write is still owed.
	if stale, err := filepath.Glob(filepath.Join(cfg.SpoolDir, "ingest-*.tmp")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	ring := NewRing(peers, cfg.VirtualNodes)
	replicas := cfg.ReplicationFactor
	if replicas <= 0 {
		replicas = 3
	}
	if replicas > ring.Len() {
		replicas = ring.Len()
	}
	quorum := cfg.WriteQuorum
	if quorum <= 0 {
		quorum = replicas/2 + 1
	}
	if quorum > replicas {
		return nil, fmt.Errorf("cluster: write quorum %d exceeds replication factor %d", quorum, replicas)
	}
	n := &Node{
		cfg:       cfg,
		ring:      ring,
		self:      cfg.Self,
		replicas:  replicas,
		quorum:    quorum,
		admission: NewAdmission(cfg.MaxSpoolBytes, cfg.MaxInflight, cfg.RetryAfter),
		client:    newPeerClient(cfg.PeerTimeout),
		hintDir:   hintDir,
	}
	mRingNodes.Set(int64(ring.Len()))
	n.ae = newAntiEntropy(n, cfg.RetryInterval)
	return n, nil
}

// Close stops the anti-entropy worker. Pending repair tasks are dropped
// from memory; their hint files survive for the next start.
func (n *Node) Close() { n.ae.close() }

// Ring exposes the placement ring (read-only use).
func (n *Node) Ring() *Ring { return n.ring }

// ReplicationFactor returns the effective (clamped) replication factor.
func (n *Node) ReplicationFactor() int { return n.replicas }

// WriteQuorum returns the effective write quorum.
func (n *Node) WriteQuorum() int { return n.quorum }

// owners returns the owner set of one report id.
func (n *Node) owners(id string) []string { return n.ring.Owners(id, n.replicas) }

// spoolBody streams body to a coordinator temp file while hashing,
// returning the file path, the content address, and the byte count. The
// caller removes the file (adoption renames it away first).
func (n *Node) spoolBody(body io.Reader) (path, id string, size int64, err error) {
	tmp, err := os.CreateTemp(n.cfg.SpoolDir, "ingest-*.tmp")
	if err != nil {
		return "", "", 0, err
	}
	path = tmp.Name()
	h := sha256.New()
	size, err = io.Copy(io.MultiWriter(tmp, h), body)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", "", 0, err
	}
	return path, hex.EncodeToString(h.Sum(nil)), size, nil
}

// forwardResult is one owner's replica-write outcome.
type forwardResult struct {
	node string
	body []byte // IngestResult JSON from a remote owner
	err  error
}

// ingest is the coordinator path behind POST /api/v1/reports: spool +
// hash the upload, place it on the ring, write to every owner (local
// adoption for self, streaming PUT for remotes), succeed at quorum, and
// hand the stragglers to anti-entropy.
func (n *Node) ingest(ctx context.Context, body io.Reader) (*triage.IngestResult, *ingestError) {
	path, id, size, err := n.spoolBody(body)
	if err != nil {
		return nil, ingestFailed(err)
	}
	defer os.Remove(path) // no-op once adopted or parked as a hint

	owners := n.owners(id)
	selfOwner := false
	var remotes []string
	for _, o := range owners {
		if o == n.self {
			selfOwner = true
		} else {
			remotes = append(remotes, o)
		}
	}

	// Remote replicas first — they stream from the spool file, which the
	// local adoption below consumes.
	results := make([]forwardResult, len(remotes))
	var wg sync.WaitGroup
	for i, node := range remotes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			f, err := os.Open(path)
			if err != nil {
				results[i] = forwardResult{node: node, err: err}
				return
			}
			defer f.Close()
			respBody, err := n.client.putReplica(ctx, node, id, f, size)
			results[i] = forwardResult{node: node, body: respBody, err: err}
			if err != nil {
				mForwardErr.Inc()
			} else {
				mForwardOK.Inc()
			}
		}(i, node)
	}
	wg.Wait()

	acks := 0
	var res *triage.IngestResult
	var failed []string
	for _, fr := range results {
		if fr.err != nil {
			failed = append(failed, fr.node)
			continue
		}
		acks++
		if res == nil {
			if parsed := parseIngestResult(fr.body); parsed != nil {
				res = parsed
			}
		}
	}
	if selfOwner {
		local, err := n.cfg.Service.IngestFile(id, path, size)
		if err != nil {
			failed = append(failed, n.self)
		} else {
			acks++
			mForwardSelf.Inc()
			res = local // the local result wins: it names this node's bucket state
		}
	}

	if acks < n.quorum {
		mQuorumFail.Inc()
		return nil, quorumFailed(fmt.Sprintf(
			"wrote %d of %d replicas (need %d): %v unreachable", acks, len(owners), n.quorum, failed))
	}
	if len(failed) > 0 {
		// Quorum met with stragglers: owe them the blob. When this node
		// is not an owner the spool file is the only local copy — park it
		// as a hint for the anti-entropy worker.
		if !selfOwner {
			hint := filepath.Join(n.hintDir, id)
			if err := os.Rename(path, hint); err != nil && !os.IsNotExist(err) {
				// Fall back to leaving repair to a holder-fetch.
				mRepairErr.Inc()
			}
		}
		for _, node := range failed {
			n.ae.enqueue(id, node)
		}
	}
	if res == nil {
		// Quorum met purely by remote acks whose bodies did not parse
		// (version skew): the write stands, synthesize the result.
		res = &triage.IngestResult{ID: id, Duplicate: false}
	}
	return res, nil
}

// parseIngestResult decodes a replica endpoint's IngestResult body,
// tolerating junk (nil).
func parseIngestResult(data []byte) *triage.IngestResult {
	if len(data) == 0 {
		return nil
	}
	var res triage.IngestResult
	if err := json.Unmarshal(data, &res); err != nil || res.ID == "" {
		return nil
	}
	return &res
}

// readRepairLocal fetches id from another owner and adopts it locally —
// the read-repair path for an owner serving a read it should hold but
// does not (a write it missed while down). Returns whether the blob is
// now local.
func (n *Node) readRepairLocal(ctx context.Context, id string) bool {
	for _, o := range n.owners(id) {
		if o == n.self {
			continue
		}
		rc, size, err := n.client.getReplica(ctx, o, id)
		if err != nil {
			continue
		}
		path, gotID, gotSize, err := func() (string, string, int64, error) {
			defer rc.Close()
			return n.spoolBody(rc)
		}()
		if err != nil {
			mRepairErr.Inc()
			continue
		}
		if gotID != id || (size >= 0 && size != gotSize) {
			// A peer served bytes that do not hash to the requested id:
			// corruption or tampering — refuse to launder it into the store.
			os.Remove(path)
			mRepairErr.Inc()
			continue
		}
		if _, err := n.cfg.Service.IngestFile(id, path, gotSize); err != nil {
			os.Remove(path)
			mRepairErr.Inc()
			continue
		}
		mRepairsTotal.Inc()
		return true
	}
	return false
}
