package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"bugnet/internal/faultinject"
	"bugnet/internal/retry"
	"bugnet/internal/triage"
)

// Config parameterizes one cluster node.
type Config struct {
	// Self is this node's base URL exactly as it appears in Peers.
	Self string
	// Peers is the static membership: every node's base URL, including
	// Self. Empty means a single-node cluster of {Self}.
	Peers []string
	// ReplicationFactor N is how many owners store each report (default
	// 3, clamped to the membership size).
	ReplicationFactor int
	// WriteQuorum W is how many owner acks an ingest needs to succeed
	// (default majority of the effective replication factor).
	WriteQuorum int
	// VirtualNodes per member on the placement ring (default 128).
	VirtualNodes int
	// Service is the local triage service (required).
	Service *triage.Service
	// Inner serves every route the cluster layer does not intercept —
	// listings, buckets, debug sessions, health, metrics (required).
	Inner http.Handler
	// SpoolDir holds the coordinator's in-flight upload spool and the
	// hinted-handoff files (required; point it at the store's filesystem
	// to keep local adoption a pure rename).
	SpoolDir string

	// Admission budgets: MaxSpoolBytes / MaxInflight bound admitted
	// uploads (0 = defaults, negative = unlimited); RetryAfter is the
	// shed response's drain estimate.
	MaxSpoolBytes int64
	MaxInflight   int
	RetryAfter    time.Duration

	// PeerTimeout bounds one replica write or proxy read (default 30s).
	PeerTimeout time.Duration
	// RetryInterval paces anti-entropy rounds (default 1s).
	RetryInterval time.Duration
	// MaxRepairAttempts is the anti-entropy give-up limit per debt
	// (default 300; with the default interval ~5 minutes of outage).
	MaxRepairAttempts int

	// BreakerThreshold / BreakerCooldown tune the per-peer circuit
	// breaker (defaults 5 consecutive failures / 5s open). A peer behind
	// an open circuit is skipped without a connection attempt until a
	// half-open probe proves it back.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Transport, when set, replaces http.DefaultTransport for all peer
	// traffic — the chaos harness injects partitions and resets here.
	Transport http.RoundTripper
	// FS, when set, routes the spool and hint file I/O through a fault
	// plane. nil costs one nil-check per operation.
	FS *faultinject.FS
	// ExtraReady, when set, replaces Service.ReadyReasons as the base
	// readiness input for GET /readyz — bugnet-serve uses it to fold in
	// debug-session saturation. Peer-level reasons are appended either way.
	ExtraReady func() []string
}

// Node is the cluster layer wrapped around one triage service: ring
// placement, coordinator forwarding, replica serving, read-repair, and
// admission control. A single-node Config degenerates to "admission
// control in front of the local service" — one code path from laptop to
// fleet.
type Node struct {
	cfg       Config
	ring      *Ring
	self      string
	replicas  int // effective replication (clamped)
	quorum    int // effective write quorum
	admission *Admission
	client    *peerClient
	fsys      *faultinject.FS
	hintDir   string
	ae        *antiEntropy

	// fanout retries one replica write inside the coordinator's quorum
	// window; fetch retries one read-repair pull. Both are short — the
	// anti-entropy sweep is the long-haul retry.
	fanout retry.Policy
	fetch  retry.Policy
}

// hintIDName matches a well-formed hint filename: the sha256 content
// address of the blob it holds. Anything else in the hint dir is foreign.
var hintIDName = regexp.MustCompile(`^[0-9a-f]{64}$`)

// New builds the node and starts its anti-entropy worker.
func New(cfg Config) (*Node, error) {
	if cfg.Service == nil || cfg.Inner == nil {
		return nil, errors.New("cluster: Config.Service and Config.Inner are required")
	}
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	if cfg.SpoolDir == "" {
		return nil, errors.New("cluster: Config.SpoolDir is required")
	}
	peers := cfg.Peers
	if len(peers) == 0 {
		peers = []string{cfg.Self}
	}
	found := false
	for _, p := range peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: Self %q is not in Peers %v", cfg.Self, peers)
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, err
	}
	hintDir := filepath.Join(cfg.SpoolDir, "hints")
	if err := os.MkdirAll(hintDir, 0o755); err != nil {
		return nil, err
	}
	// A crash mid-spool leaves coordinator temp files; reclaim them.
	// Hint files are NOT reclaimed — they are the only copy of a blob
	// whose owner write is still owed.
	if stale, err := filepath.Glob(filepath.Join(cfg.SpoolDir, "ingest-*.tmp")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	ring := NewRing(peers, cfg.VirtualNodes)
	replicas := cfg.ReplicationFactor
	if replicas <= 0 {
		replicas = 3
	}
	if replicas > ring.Len() {
		replicas = ring.Len()
	}
	quorum := cfg.WriteQuorum
	if quorum <= 0 {
		quorum = replicas/2 + 1
	}
	if quorum > replicas {
		return nil, fmt.Errorf("cluster: write quorum %d exceeds replication factor %d", quorum, replicas)
	}
	breakers := retry.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown)
	n := &Node{
		cfg:       cfg,
		ring:      ring,
		self:      cfg.Self,
		replicas:  replicas,
		quorum:    quorum,
		admission: NewAdmission(cfg.MaxSpoolBytes, cfg.MaxInflight, cfg.RetryAfter),
		client:    newPeerClient(cfg.PeerTimeout, cfg.Transport, breakers),
		fsys:      cfg.FS,
		hintDir:   hintDir,
		fanout: retry.Policy{
			MaxAttempts: 3,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    time.Second,
		},
		fetch: retry.Policy{
			MaxAttempts: 2,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    time.Second,
		},
	}
	mRingNodes.Set(int64(ring.Len()))
	n.ae = newAntiEntropy(n, cfg.RetryInterval, cfg.MaxRepairAttempts)
	n.recoverHints()
	return n, nil
}

// Close stops the anti-entropy worker and drops the peer transport's
// idle connections (their reader goroutines would otherwise outlive the
// node). Pending repair tasks are dropped from memory; their hint files
// survive for the next start.
func (n *Node) Close() {
	n.ae.close()
	n.client.closeIdle()
}

// Ring exposes the placement ring (read-only use).
func (n *Node) Ring() *Ring { return n.ring }

// ReplicationFactor returns the effective (clamped) replication factor.
func (n *Node) ReplicationFactor() int { return n.replicas }

// WriteQuorum returns the effective write quorum.
func (n *Node) WriteQuorum() int { return n.quorum }

// RepairDebt returns the number of replica writes still owed — the
// chaos harness polls it to zero to prove convergence after a storm.
func (n *Node) RepairDebt() int { return n.ae.depth() }

// owners returns the owner set of one report id.
func (n *Node) owners(id string) []string { return n.ring.Owners(id, n.replicas) }

// recoverHints re-files the replication debt recorded by hint files from
// a previous run. A hint is trusted only after its content re-hashes to
// its name; foreign or corrupt files are quarantined (moved aside with a
// counter), never deleted and never retried forever.
func (n *Node) recoverHints() {
	entries, err := os.ReadDir(n.hintDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // the quarantine subdir
		}
		name := e.Name()
		path := filepath.Join(n.hintDir, name)
		if !hintIDName.MatchString(name) {
			n.quarantineHint(path)
			continue
		}
		got, err := hashFile(path)
		if err != nil || got != name {
			n.quarantineHint(path)
			continue
		}
		for _, o := range n.owners(name) {
			if o != n.self {
				// Owners that already hold the blob are skipped by the
				// repair worker's hasReplica check; the hint file itself is
				// reclaimed once no debt for its id remains.
				n.ae.enqueue(name, o)
			}
		}
	}
}

// quarantineHint moves a hint file the node refuses to act on into the
// quarantine subdir for operator inspection.
func (n *Node) quarantineHint(path string) {
	qdir := filepath.Join(n.hintDir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err == nil {
		mHintsQuarantined.Inc()
	}
}

// hashFile returns the hex sha256 of a file's content.
func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// spoolBody streams body to a coordinator temp file while hashing,
// returning the file path, the content address, and the byte count. The
// caller removes the file (adoption renames it away first).
func (n *Node) spoolBody(body io.Reader) (path, id string, size int64, err error) {
	tmp, err := n.fsys.CreateTemp(n.cfg.SpoolDir, "ingest-*.tmp")
	if err != nil {
		return "", "", 0, err
	}
	path = tmp.Name()
	h := sha256.New()
	size, err = io.Copy(io.MultiWriter(tmp, h), body)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", "", 0, err
	}
	return path, hex.EncodeToString(h.Sum(nil)), size, nil
}

// forwardResult is one owner's replica-write outcome.
type forwardResult struct {
	node string
	body []byte // IngestResult JSON from a remote owner
	err  error
}

// putReplicaFile pushes one spooled blob to a peer under the fan-out
// retry policy, re-opening the file per attempt so a half-sent body is
// never resumed mid-stream.
func (n *Node) putReplicaFile(ctx context.Context, node, id, path string, size int64) ([]byte, error) {
	var respBody []byte
	err := n.fanout.Do(ctx, func(ctx context.Context) error {
		f, err := os.Open(path)
		if err != nil {
			return retry.Permanent(err) // local spool gone; retrying cannot help
		}
		defer f.Close()
		body, err := n.client.putReplica(ctx, node, id, f, size)
		if err == nil {
			respBody = body
		}
		return err
	})
	return respBody, err
}

// ingest is the coordinator path behind POST /api/v1/reports: spool +
// hash the upload, place it on the ring, write to every owner (local
// adoption for self, streaming PUT for remotes), succeed at quorum, and
// hand the stragglers to anti-entropy.
func (n *Node) ingest(ctx context.Context, body io.Reader) (*triage.IngestResult, *ingestError) {
	path, id, size, err := n.spoolBody(body)
	if err != nil {
		return nil, ingestFailed(err)
	}
	defer os.Remove(path) // no-op once adopted or parked as a hint

	owners := n.owners(id)
	selfOwner := false
	var remotes []string
	for _, o := range owners {
		if o == n.self {
			selfOwner = true
		} else {
			remotes = append(remotes, o)
		}
	}

	// Remote replicas first — they stream from the spool file, which the
	// local adoption below consumes.
	results := make([]forwardResult, len(remotes))
	var wg sync.WaitGroup
	for i, node := range remotes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			respBody, err := n.putReplicaFile(ctx, node, id, path, size)
			results[i] = forwardResult{node: node, body: respBody, err: err}
			if err != nil {
				mForwardErr.Inc()
			} else {
				mForwardOK.Inc()
			}
		}(i, node)
	}
	wg.Wait()

	acks := 0
	var res *triage.IngestResult
	var failed []string
	for _, fr := range results {
		if fr.err != nil {
			failed = append(failed, fr.node)
			continue
		}
		acks++
		if res == nil {
			if parsed := parseIngestResult(fr.body); parsed != nil {
				res = parsed
			}
		}
	}
	if selfOwner {
		local, err := n.cfg.Service.IngestFile(id, path, size)
		if err != nil {
			failed = append(failed, n.self)
		} else {
			acks++
			mForwardSelf.Inc()
			res = local // the local result wins: it names this node's bucket state
		}
	}

	if acks < n.quorum {
		mQuorumFail.Inc()
		return nil, quorumFailed(fmt.Sprintf(
			"wrote %d of %d replicas (need %d): %v unreachable", acks, len(owners), n.quorum, failed))
	}
	if len(failed) > 0 {
		// Quorum met with stragglers: owe them the blob. When this node
		// is not an owner the spool file is the only local copy — park it
		// as a hint for the anti-entropy worker.
		if !selfOwner {
			hint := filepath.Join(n.hintDir, id)
			if err := n.fsys.Rename(path, hint); err != nil && !os.IsNotExist(err) {
				// Fall back to leaving repair to a holder-fetch.
				mRepairErr.Inc()
			}
		}
		for _, node := range failed {
			n.ae.enqueue(id, node)
		}
	}
	if res == nil {
		// Quorum met purely by remote acks whose bodies did not parse
		// (version skew): the write stands, synthesize the result.
		res = &triage.IngestResult{ID: id, Duplicate: false}
	}
	return res, nil
}

// parseIngestResult decodes a replica endpoint's IngestResult body,
// tolerating junk (nil).
func parseIngestResult(data []byte) *triage.IngestResult {
	if len(data) == 0 {
		return nil
	}
	var res triage.IngestResult
	if err := json.Unmarshal(data, &res); err != nil || res.ID == "" {
		return nil
	}
	return &res
}

// readRepairLocal fetches id from another owner and adopts it locally —
// the read-repair path for an owner serving a read it should hold but
// does not (a write it missed while down). Returns whether the blob is
// now local.
func (n *Node) readRepairLocal(ctx context.Context, id string) bool {
	for _, o := range n.owners(id) {
		if o == n.self {
			continue
		}
		repaired := false
		n.fetch.Do(ctx, func(ctx context.Context) error {
			rc, size, err := n.client.getReplica(ctx, o, id)
			if err != nil {
				return err
			}
			path, gotID, gotSize, err := func() (string, string, int64, error) {
				defer rc.Close()
				return n.spoolBody(rc)
			}()
			if err != nil {
				mRepairErr.Inc()
				return err
			}
			if gotID != id || (size >= 0 && size != gotSize) {
				// A peer served bytes that do not hash to the requested id:
				// corruption or tampering — refuse to launder it into the store.
				os.Remove(path)
				mRepairErr.Inc()
				return retry.Permanent(fmt.Errorf("cluster: replica %s from %s hashed to %s", id, o, gotID))
			}
			if _, err := n.cfg.Service.IngestFile(id, path, gotSize); err != nil {
				os.Remove(path)
				mRepairErr.Inc()
				return err
			}
			repaired = true
			return nil
		})
		if repaired {
			mRepairsTotal.Inc()
			return true
		}
	}
	return false
}
