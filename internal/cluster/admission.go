package cluster

import (
	"sync"
	"time"
)

// Admission is the ingest load-shedder: a bounded budget of spooled
// upload bytes and in-flight ingest requests. When either budget is
// exhausted the node answers 429 with a Retry-After instead of letting
// the spool disk fill or the forwarding fan-out pile up unboundedly —
// shedding early is what keeps a flooded collector serving reads.
//
// Byte accounting is reservation-based: an upload reserves its declared
// Content-Length on admission (or DefaultReservation when the client
// streams chunked), and the reservation is trued up to the actual spooled
// size once known. That bounds the worst case — a burst of admitted
// uploads can never overshoot the budget by more than the in-flight
// count times the error in their declarations, and oversized declarations
// are rejected at the door.
type Admission struct {
	maxBytes    int64
	maxInflight int
	retryAfter  time.Duration

	mu       sync.Mutex
	bytes    int64
	inflight int
}

// Admission defaults: sized for one node absorbing a fleet burst while
// replay drains — roughly MaxUploadBytes' worth of headroom times the
// inflight bound.
const (
	DefaultMaxSpoolBytes = 1 << 30 // 1 GiB of in-flight spooled uploads
	DefaultMaxInflight   = 256
	DefaultRetryAfter    = time.Second
	// DefaultReservation is charged for chunked uploads that declare no
	// Content-Length; recorded windows are budgeted to megabytes (paper
	// §7.2), so 8 MB over-admits modest streams without letting a flood
	// of undeclared uploads around the byte budget.
	DefaultReservation = 8 << 20
)

// NewAdmission builds an admission controller; zero values select the
// defaults, negative maxBytes/maxInflight mean unlimited.
func NewAdmission(maxBytes int64, maxInflight int, retryAfter time.Duration) *Admission {
	if maxBytes == 0 {
		maxBytes = DefaultMaxSpoolBytes
	}
	if maxInflight == 0 {
		maxInflight = DefaultMaxInflight
	}
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	return &Admission{maxBytes: maxBytes, maxInflight: maxInflight, retryAfter: retryAfter}
}

// RetryAfter is the drain estimate handed to shed clients.
func (a *Admission) RetryAfter() time.Duration { return a.retryAfter }

// Acquire admits one upload of the declared size (contentLength < 0:
// undeclared, charged DefaultReservation). On admission it returns a
// release callback taking the actual spooled size (or -1 if never
// measured) and true; when a budget is exhausted it returns (nil, false)
// and the caller sheds with 429. release is idempotent-unsafe — call it
// exactly once.
func (a *Admission) Acquire(contentLength int64) (release func(actual int64), ok bool) {
	reserve := contentLength
	if reserve < 0 {
		reserve = DefaultReservation
	}
	a.mu.Lock()
	if (a.maxInflight > 0 && a.inflight >= a.maxInflight) ||
		(a.maxBytes > 0 && a.bytes+reserve > a.maxBytes) {
		a.mu.Unlock()
		mShedTotal.Inc()
		return nil, false
	}
	a.inflight++
	a.bytes += reserve
	mAdmInflight.Set(int64(a.inflight))
	mAdmBytes.Set(a.bytes)
	a.mu.Unlock()
	return func(actual int64) {
		// actual is accepted for symmetry with future smoothing; the
		// reservation model releases exactly what it charged, so the
		// budget can never leak from mismatched declarations.
		_ = actual
		a.mu.Lock()
		a.inflight--
		a.bytes -= reserve
		mAdmInflight.Set(int64(a.inflight))
		mAdmBytes.Set(a.bytes)
		a.mu.Unlock()
	}, true
}

// Occupancy reports the current reservations, for /api/v1/cluster.
func (a *Admission) Occupancy() (bytes int64, inflight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bytes, a.inflight
}
