package cluster

import "bugnet/internal/obs"

// Cluster metrics. Label sets are fixed in code; hot handles are
// preallocated so the forward/repair paths never take a registry lock.
var (
	mRingNodes = obs.Default.Gauge("bugnet_cluster_ring_nodes",
		"Distinct nodes on the placement ring.")

	forwardResults = obs.Default.CounterVec("bugnet_cluster_forwards_total",
		"Replica writes initiated by this coordinator, by outcome.", "result")
	mForwardOK   = forwardResults.With("ok")
	mForwardErr  = forwardResults.With("error")
	mForwardSelf = forwardResults.With("local")

	mQuorumFail = obs.Default.Counter("bugnet_cluster_quorum_failures_total",
		"Ingests rejected because fewer than write-quorum owners acked.")

	mRepairsTotal = obs.Default.Counter("bugnet_cluster_repairs_total",
		"Replicas restored to missing owners by read-repair or anti-entropy.")
	mRepairErr = obs.Default.Counter("bugnet_cluster_repair_errors_total",
		"Failed repair attempts (retried by anti-entropy).")
	mAntiEntropyQueue = obs.Default.Gauge("bugnet_cluster_antientropy_queue",
		"Replication tasks waiting in the anti-entropy queue.")
	aeDrops = obs.Default.CounterVec("bugnet_cluster_antientropy_drops_total",
		"Replication tasks dropped, by reason (queue bound hit, or per-task attempt cap exhausted).", "reason")
	mAEDropQueueFull = aeDrops.With("queue_full")
	mAEDropGaveUp    = aeDrops.With("gave_up")

	mHintsQuarantined = obs.Default.Counter("bugnet_cluster_hints_quarantined_total",
		"Hint files moved aside because their name or content could not be trusted.")

	proxyResults = obs.Default.CounterVec("bugnet_cluster_proxy_reads_total",
		"Reads served by proxying to a replica owner, by outcome.", "result")
	mProxyOK   = proxyResults.With("ok")
	mProxyMiss = proxyResults.With("miss")
	mProxyErr  = proxyResults.With("error")

	mShedTotal = obs.Default.Counter("bugnet_cluster_shed_total",
		"Uploads shed by admission control (429).")
	mDegradedSheds = obs.Default.Counter("bugnet_cluster_degraded_sheds_total",
		"Writes refused with 503 because the local store is degraded.")
	mAdmBytes = obs.Default.Gauge("bugnet_cluster_admission_bytes",
		"Spool bytes currently reserved by admitted uploads.")
	mAdmInflight = obs.Default.Gauge("bugnet_cluster_admission_inflight",
		"Uploads currently admitted and in flight.")
)
