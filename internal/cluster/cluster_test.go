package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"bugnet/internal/httpjson"
	"bugnet/internal/loadgen"
	"bugnet/internal/triage"
)

// spawn brings up an in-process cluster and a corpus its nodes can replay.
func spawn(t *testing.T, n int, mutate func(*SpawnOptions)) (*LocalCluster, [][]byte) {
	t.Helper()
	reg := triage.NewImageRegistry()
	corpus, err := loadgen.Corpus(8, reg)
	if err != nil {
		t.Fatal(err)
	}
	opt := SpawnOptions{
		BaseDir:       t.TempDir(),
		Resolver:      reg.Resolve,
		Replication:   3,
		WriteQuorum:   2,
		RetryInterval: time.Hour, // isolate read-repair unless a test opts in
		Workers:       1,
	}
	if mutate != nil {
		mutate(&opt)
	}
	lc, err := SpawnLocal(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc, corpus
}

func blobID(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

func post(t *testing.T, url string, blob []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/api/v1/reports", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeEnvelope(t *testing.T, resp *http.Response) httpjson.ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	var env httpjson.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not the envelope: %v", err)
	}
	return env.Error
}

func scrapeCounter(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var total int64
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err == nil {
			total += int64(v)
		}
	}
	return total
}

// TestClusterQuorumWriteAndReadRepair is the flagship drill: ingest with
// one owner down succeeds at quorum, any node serves the read, and the
// returned owner heals itself on first read (observable via
// bugnet_cluster_repairs_total).
func TestClusterQuorumWriteAndReadRepair(t *testing.T) {
	checkGoroutineLeaks(t) // registered first: verified after the cluster closes
	lc, corpus := spawn(t, 3, nil)
	a, b, c := lc.Nodes[0], lc.Nodes[1], lc.Nodes[2]
	blob := corpus[0]
	id := blobID(blob)

	// Kill B, ingest to A: replication 3 over 3 nodes means every node
	// owns every report, so quorum 2 = A local + C forwarded.
	b.Stop()
	resp := post(t, a.URL, blob)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("quorum write with one node down: %s: %s", resp.Status, body)
	}
	var ing triage.IngestResult
	if err := json.Unmarshal(body, &ing); err != nil || ing.ID != id {
		t.Fatalf("ingest result %s (err %v), want id %s", body, err, id)
	}
	if !a.Service.Store().Has(id) || !c.Service.Store().Has(id) {
		t.Fatal("live owners do not both hold the blob")
	}
	if b.Service.Store().Has(id) {
		t.Fatal("stopped node somehow received the blob")
	}

	// Any node serves the read; C proxies nothing (it holds a replica).
	getResp, err := http.Get(c.URL + "/api/v1/reports/" + id + "?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK || !bytes.Equal(raw, blob) {
		t.Fatalf("read via C: %s, %d bytes", getResp.Status, len(raw))
	}

	// B returns and serves a read of the report it missed: read-repair
	// pulls the blob from a live owner before answering.
	if err := b.Restart(); err != nil {
		t.Fatal(err)
	}
	before := scrapeCounter(t, a.URL, "bugnet_cluster_repairs_total")
	getResp, err = http.Get(b.URL + "/api/v1/reports/" + id + "?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK || !bytes.Equal(raw, blob) {
		t.Fatalf("read via restarted B: %s, %d bytes", getResp.Status, len(raw))
	}
	if !b.Service.Store().Has(id) {
		t.Fatal("read-repair did not restore B's replica")
	}
	after := scrapeCounter(t, a.URL, "bugnet_cluster_repairs_total")
	if after <= before {
		t.Fatalf("bugnet_cluster_repairs_total did not advance (%d -> %d)", before, after)
	}
}

// TestClusterQuorumFailure: with two of three owners down, the write
// must be refused with the stable replica_unavailable code — a quorum
// failure is the client's signal to retry, not a silent single-copy ack.
func TestClusterQuorumFailure(t *testing.T) {
	lc, corpus := spawn(t, 3, nil)
	lc.Nodes[1].Stop()
	lc.Nodes[2].Stop()
	resp := post(t, lc.Nodes[0].URL, corpus[1])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write without quorum: %s", resp.Status)
	}
	e := decodeEnvelope(t, resp)
	if e.Code != httpjson.CodeReplicaUnavailable {
		t.Fatalf("error code = %q, want %q", e.Code, httpjson.CodeReplicaUnavailable)
	}
	// The refused write must not leave a phantom single copy visible.
	if lc.Nodes[0].Service.Store().Has(blobID(corpus[1])) {
		// A local copy may exist (the coordinator ingested before counting
		// acks) — but then the ack count would have met quorum; with W=2
		// and both peers down, acks=1, so the blob should not be adopted...
		// unless this node was an owner and local adoption succeeded. With
		// replication 3 on 3 nodes, it is — the copy is allowed, the 503
		// is the contract. Nothing to assert beyond the status.
		t.Log("coordinator kept its local replica after quorum failure (allowed)")
	}
}

// TestClusterAntiEntropy: an owner that was down during a quorum write
// receives its replica in the background once it returns, without any
// read touching it.
func TestClusterAntiEntropy(t *testing.T) {
	lc, corpus := spawn(t, 3, func(o *SpawnOptions) {
		o.RetryInterval = 50 * time.Millisecond
	})
	a, b := lc.Nodes[0], lc.Nodes[1]
	blob := corpus[2]
	id := blobID(blob)

	b.Stop()
	resp := post(t, a.URL, blob)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("quorum write: %s", resp.Status)
	}
	if err := b.Restart(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !b.Service.Store().Has(id) {
		if time.Now().After(deadline) {
			t.Fatal("anti-entropy did not restore B's replica within 10s")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterHintedHandoff: when the coordinator is not an owner and an
// owner is down, the spooled blob is parked as a hint and delivered when
// the owner returns.
func TestClusterHintedHandoff(t *testing.T) {
	lc, corpus := spawn(t, 4, func(o *SpawnOptions) {
		o.Replication = 2
		o.WriteQuorum = 1
		o.RetryInterval = 50 * time.Millisecond
	})
	coordinator := lc.Nodes[0]
	ring := coordinator.Node.Ring()

	// Find a corpus blob the coordinator does not own.
	var blob []byte
	var id string
	var owners []string
	for _, b := range corpus {
		cand := blobID(b)
		own := ring.Owners(cand, 2)
		if own[0] != coordinator.URL && own[1] != coordinator.URL {
			blob, id, owners = b, cand, own
			break
		}
	}
	if blob == nil {
		t.Skip("corpus has no blob foreign to the coordinator (unlikely)")
	}
	byURL := map[string]*LocalNode{}
	for _, n := range lc.Nodes {
		byURL[n.URL] = n
	}
	down := byURL[owners[1]]
	down.Stop()

	resp := post(t, coordinator.URL, blob)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("W=1 write with one owner down: %s", resp.Status)
	}
	if !byURL[owners[0]].Service.Store().Has(id) {
		t.Fatal("live owner did not receive the blob")
	}
	if coordinator.Service.Store().Has(id) {
		t.Fatal("non-owner coordinator adopted the blob locally")
	}

	if err := down.Restart(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !down.Service.Store().Has(id) {
		if time.Now().After(deadline) {
			t.Fatal("hinted handoff did not reach the returned owner within 10s")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterAdmissionHTTP drives admission control over the wire: at
// the byte budget the node sheds with 429 + Retry-After, and accepts
// again once the inflight upload drains.
func TestClusterAdmissionHTTP(t *testing.T) {
	lc, corpus := spawn(t, 1, func(o *SpawnOptions) {
		o.Replication = 1
		o.WriteQuorum = 1
		o.MaxSpoolBytes = DefaultReservation + DefaultReservation/2 // room for one chunked upload
		o.RetryAfter = 3 * time.Second
	})
	node := lc.Nodes[0]
	blob := corpus[3]

	// Hold one chunked upload open: it reserves DefaultReservation.
	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, node.URL+"/api/v1/reports", pr)
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()
	if _, err := pw.Write(blob[:len(blob)/2]); err != nil {
		t.Fatal(err)
	}

	// A second chunked upload would reserve another DefaultReservation —
	// over budget, shed.
	req, _ := http.NewRequest(http.MethodPost, node.URL+"/api/v1/reports", io.NopCloser(bytes.NewReader(corpus[4])))
	req.ContentLength = -1 // force chunked
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("upload at byte budget: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	e := decodeEnvelope(t, resp)
	if e.Code != httpjson.CodeOverloaded {
		t.Fatalf("shed error code = %q, want %q", e.Code, httpjson.CodeOverloaded)
	}

	// Finish the held upload; the budget drains.
	if _, err := pw.Write(blob[len(blob)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	r := <-done
	if r.err != nil || r.status != http.StatusCreated {
		t.Fatalf("held upload finished with %d, %v", r.status, r.err)
	}

	// The previously shed upload is now admitted.
	resp = post(t, node.URL, corpus[4])
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload after drain: %s, want 201", resp.Status)
	}
}

// TestClusterReplicaHashVerification: a replica PUT whose bytes do not
// hash to the claimed id is refused — peers cannot launder corrupt blobs
// into each other's stores.
func TestClusterReplicaHashVerification(t *testing.T) {
	lc, corpus := spawn(t, 1, func(o *SpawnOptions) {
		o.Replication = 1
		o.WriteQuorum = 1
	})
	node := lc.Nodes[0]
	wrongID := blobID([]byte("something else"))
	req, _ := http.NewRequest(http.MethodPut,
		node.URL+"/internal/v1/replicas/"+wrongID, bytes.NewReader(corpus[5]))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hash-mismatched replica PUT: %s, want 400", resp.Status)
	}
	e := decodeEnvelope(t, resp)
	if e.Code != httpjson.CodeBadRequest {
		t.Fatalf("error code = %q, want %q", e.Code, httpjson.CodeBadRequest)
	}
	if node.Service.Store().Has(wrongID) {
		t.Fatal("mismatched blob was stored")
	}
}

// TestClusterInfoEndpoint: /api/v1/cluster reports membership with
// per-node health, on both the versioned path and the legacy alias.
func TestClusterInfoEndpoint(t *testing.T) {
	lc, _ := spawn(t, 3, nil)
	lc.Nodes[2].Stop()

	for _, path := range []string{"/api/v1/cluster", "/cluster"} {
		resp, err := http.Get(lc.Nodes[0].URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var info ClusterInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.Self != lc.Nodes[0].URL || info.ReplicationFactor != 3 || info.WriteQuorum != 2 {
			t.Fatalf("%s: info = %+v", path, info)
		}
		if len(info.Nodes) != 3 {
			t.Fatalf("%s: %d nodes in view", path, len(info.Nodes))
		}
		healthy := 0
		for _, nh := range info.Nodes {
			if nh.Healthy {
				healthy++
			} else if nh.Error == "" {
				t.Fatalf("%s: unhealthy node %s has no error", path, nh.Node)
			}
		}
		if healthy != 2 {
			t.Fatalf("%s: %d healthy nodes, want 2 (one stopped)", path, healthy)
		}
	}
}

// TestClusterNotFoundDoesNotLoop: a read of an id nobody holds answers a
// clean 404 envelope from any node — the proxy fans out one hop only.
func TestClusterNotFoundDoesNotLoop(t *testing.T) {
	lc, _ := spawn(t, 3, nil)
	ghost := fmt.Sprintf("%064x", 0xdead)
	for _, n := range lc.Nodes {
		resp, err := http.Get(n.URL + "/api/v1/reports/" + ghost)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("ghost read via %s: %s", n.URL, resp.Status)
		}
		e := decodeEnvelope(t, resp)
		if e.Code != httpjson.CodeNotFound {
			t.Fatalf("error code = %q", e.Code)
		}
	}
}

// TestClusterEveryNodeCoordinates: the same blob posted to each node
// lands once (one 201, the rest 200 duplicate) wherever it enters.
func TestClusterEveryNodeCoordinates(t *testing.T) {
	lc, corpus := spawn(t, 3, nil)
	blob := corpus[6]
	created := 0
	for _, n := range lc.Nodes {
		resp := post(t, n.URL, blob)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
			created++
		case http.StatusOK:
		default:
			t.Fatalf("POST via %s: %s", n.URL, resp.Status)
		}
	}
	if created != 1 {
		t.Fatalf("%d nodes created the same blob, want exactly 1", created)
	}
	id := blobID(blob)
	for _, n := range lc.Nodes {
		if !n.Service.Store().Has(id) {
			t.Fatalf("node %s missing its replica", n.URL)
		}
	}
}
