// Package cluster turns a set of bugnet-serve processes into one triage
// fleet: a consistent-hash ring places every content-addressed report ID
// on N owner nodes, any node accepts an upload and streams it to the
// owners (succeeding at a write quorum), reads proxy to the first healthy
// replica with read-repair for missing owners, and admission control
// sheds ingest load with 429 + Retry-After before the spool collapses.
//
// Placement leans entirely on BugNet's content addressing (paper §5): a
// report's ID is the SHA-256 of its archive bytes, so the ID is uniform,
// collision-free, and identical on every node — no coordination service
// is needed to agree where a blob lives, and byte-identical duplicate
// crashes (the common case at fleet scale) land on the same owners and
// dedupe there.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVirtualNodes is the ring points each node projects. 128 keeps
// the max/mean load ratio within a few percent for small static fleets
// while the ring stays tiny (a few KB per node).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a static peer set.
// Nodes are identified by their base URL; the ring hashes each node to
// VirtualNodes points on a uint64 circle and a key's owners are the
// first N distinct nodes clockwise from the key's own point. Immutable
// rings swap atomically on membership change, so lookups never lock.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct, sorted; membership order for reporting
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node names with the given number
// of virtual nodes per node (<= 0 selects DefaultVirtualNodes).
// Duplicate names collapse; order does not matter — two nodes given the
// same peer set always derive the identical ring.
func NewRing(nodes []string, virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	distinct := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		distinct[n] = true
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(distinct)*virtualNodes),
		nodes:  make([]string, 0, len(distinct)),
	}
	for n := range distinct {
		r.nodes = append(r.nodes, n)
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, v), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node name so equal hashes (astronomically rare but
		// possible) still sort identically on every peer.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// pointHash places one virtual node on the circle. SHA-256 rather than a
// fast hash: ring construction is rare, and the cryptographic mix keeps
// adversarially chosen node names from clumping the circle.
func pointHash(node string, v int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h := sha256.New()
	h.Write([]byte(node))
	h.Write(buf[:])
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// keyHash places a report ID on the circle. IDs are already hex SHA-256,
// uniformly distributed, but hashing again costs nothing measurable and
// keeps non-ID keys (tests, future key kinds) safe too.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:])
}

// Nodes returns the ring's distinct members, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the number of distinct nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owners returns the n distinct nodes owning key, in preference order
// (the primary first). n is clamped to the membership size, so a
// 3-replica placement over a 2-node ring returns both nodes.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := keyHash(key)
	// First point clockwise from (>=) the key's hash, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(owners) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

// IsOwner reports whether node is among the n owners of key.
func (r *Ring) IsOwner(key, node string, n int) bool {
	for _, o := range r.Owners(key, n) {
		if o == node {
			return true
		}
	}
	return false
}
