package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"bugnet/internal/httpjson"
	"bugnet/internal/triage"
)

// ingestError is a coordinator failure already mapped to wire terms.
type ingestError struct {
	status int
	code   string
	msg    string
}

func ingestFailed(err error) *ingestError {
	return &ingestError{status: http.StatusInternalServerError, code: httpjson.CodeInternal, msg: err.Error()}
}

func quorumFailed(msg string) *ingestError {
	return &ingestError{status: http.StatusServiceUnavailable, code: httpjson.CodeReplicaUnavailable, msg: msg}
}

// Handler returns the node's full HTTP surface: the cluster layer
// intercepts ingest, per-report reads, and the membership endpoint, adds
// the strictly-local /internal/v1 replica API, and falls through to the
// wrapped triage handler for everything else (listings, buckets, debug
// sessions, health, metrics).
//
//	POST /api/v1/reports              — coordinate: place, fan out, quorum (any node)
//	GET  /api/v1/reports/{id}         — local, else proxy to an owner + read-repair
//	GET  /api/v1/cluster              — membership, ring, per-node health, admission occupancy
//	PUT  /internal/v1/replicas/{id}   — owner-local write (hash-verified), never forwards
//	GET  /internal/v1/replicas/{id}   — owner-local blob read, never forwards
//	GET  /internal/v1/reports/{id}    — owner-local metadata read, never forwards
//
// The /internal/v1 routes being strictly local is the loop-freedom
// invariant: a public request forwards at most one hop.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()

	httpjson.Handle(mux, "POST /reports", n.handleIngest)
	httpjson.Handle(mux, "GET /reports/{id}", n.handleGetReport)
	httpjson.Handle(mux, "GET /cluster", n.handleClusterInfo)

	// The cluster layer owns readiness: the service-level reasons plus
	// peer-level ones (a write quorum no open circuits can reach).
	mux.HandleFunc("GET /readyz", n.handleReadyz)

	mux.HandleFunc("PUT /internal/v1/replicas/{id}", n.handleReplicaPut)
	mux.HandleFunc("GET /internal/v1/replicas/{id}", n.handleReplicaGet)
	mux.HandleFunc("GET /internal/v1/reports/{id}", n.handleLocalMeta)

	mux.Handle("/", n.cfg.Inner)
	return mux
}

// shed answers an upload the admission controller refused.
func (n *Node) shed(w http.ResponseWriter, r *http.Request) {
	httpjson.Overloaded(w, r, n.admission.RetryAfter(),
		"ingest budget exhausted; retry after the spool drains")
}

// shedDegraded refuses a write when the local store cannot durably hold
// it — a 503 with the reason beats an ack the disk would lose. Healthy
// re-probes the disk, so a healed fault restores ingest by itself.
func (n *Node) shedDegraded(w http.ResponseWriter, r *http.Request) bool {
	err := n.cfg.Service.Healthy()
	if err == nil {
		return false
	}
	mDegradedSheds.Inc()
	httpjson.Fail(w, r, http.StatusServiceUnavailable, httpjson.CodeUnavailable,
		"store degraded: "+err.Error())
	return true
}

// handleReadyz is GET /readyz: the triage-level reasons (store, spool,
// debug capacity via Config.ExtraReady) plus the cluster-level one — a
// write quorum that open circuits make unattainable. A single shed peer
// leaves the node ready as long as quorum-many owners remain reachable.
func (n *Node) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if n.cfg.ExtraReady != nil {
		reasons = n.cfg.ExtraReady()
	} else {
		reasons = n.cfg.Service.ReadyReasons()
	}
	if open := n.client.openBreakers(); len(open) > 0 && n.ring.Len()-len(open) < n.quorum {
		reasons = append(reasons, fmt.Sprintf(
			"write quorum %d unattainable: circuit open to %v", n.quorum, open))
	}
	triage.WriteReadiness(w, reasons)
}

// handleIngest is POST /api/v1/reports: degradation check, admission,
// then coordinate.
func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	if n.shedDegraded(w, r) {
		return
	}
	release, ok := n.admission.Acquire(r.ContentLength)
	if !ok {
		n.shed(w, r)
		return
	}
	defer release(-1)
	if r.ContentLength > triage.MaxUploadBytes {
		httpjson.Fail(w, r, http.StatusRequestEntityTooLarge, httpjson.CodeTooLarge,
			"report exceeds upload limit")
		return
	}
	res, ierr := n.ingest(r.Context(), http.MaxBytesReader(w, r.Body, triage.MaxUploadBytes))
	if ierr != nil {
		httpjson.Fail(w, r, ierr.status, ierr.code, ierr.msg)
		return
	}
	code := http.StatusCreated
	if res.Duplicate {
		code = http.StatusOK
	}
	httpjson.Write(w, code, res)
}

// handleGetReport is GET /api/v1/reports/{id}: serve locally when the
// report is here; otherwise proxy from an owner, read-repairing this
// node first if the placement says the blob belongs here.
func (n *Node) handleGetReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw := r.URL.Query().Get("raw") == "1"

	if !n.locallyReadable(id, raw) && n.ring.IsOwner(id, n.self, n.replicas) {
		// An owner asked for a report it does not hold: it missed the
		// write (down, or shedding). Pull the blob back before serving —
		// the read heals the replication factor.
		n.readRepairLocal(r.Context(), id)
	}
	if n.locallyReadable(id, raw) {
		n.serveLocalReport(w, r, id, raw)
		return
	}
	n.proxyGetReport(w, r, id, raw)
}

func (n *Node) locallyReadable(id string, raw bool) bool {
	if raw {
		return n.cfg.Service.Store().Has(id)
	}
	_, ok := n.cfg.Service.Report(id)
	return ok
}

func (n *Node) serveLocalReport(w http.ResponseWriter, r *http.Request, id string, raw bool) {
	if raw {
		triage.ServeRaw(n.cfg.Service, w, r, id)
		return
	}
	m, ok := n.cfg.Service.Report(id)
	if !ok {
		httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no such report")
		return
	}
	httpjson.Write(w, http.StatusOK, m)
}

// proxyGetReport serves id from the first owner that has it. A miss on
// every reachable owner is a clean 404; owners that errored while none
// had it means the truth is unknowable right now — 503 replica_unavailable.
func (n *Node) proxyGetReport(w http.ResponseWriter, r *http.Request, id string, raw bool) {
	sawError := false
	for _, o := range n.owners(id) {
		if o == n.self {
			continue
		}
		if raw {
			rc, _, err := n.client.getReplica(r.Context(), o, id)
			if err != nil {
				if pe, ok := err.(*peerError); !ok || pe.status != http.StatusNotFound {
					sawError = true
					mProxyErr.Inc()
				}
				continue
			}
			mProxyOK.Inc()
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			io.Copy(w, rc)
			rc.Close()
			return
		}
		body, err := n.client.getMeta(r.Context(), o, id)
		if err != nil {
			var pe *peerError
			if !errors.As(err, &pe) || pe.status != http.StatusNotFound {
				sawError = true
				mProxyErr.Inc()
			}
			continue
		}
		mProxyOK.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	if sawError {
		httpjson.Fail(w, r, http.StatusServiceUnavailable, httpjson.CodeReplicaUnavailable,
			"no replica owner reachable for "+id)
		return
	}
	mProxyMiss.Inc()
	httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no such report")
}

// handleReplicaPut is the owner-side half of a coordinated write:
// admission-bounded spool, content-hash verification against {id}, local
// adoption. Never forwards.
func (n *Node) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	if n.shedDegraded(w, r) {
		return
	}
	id := r.PathValue("id")
	release, ok := n.admission.Acquire(r.ContentLength)
	if !ok {
		n.shed(w, r)
		return
	}
	defer release(-1)
	path, gotID, size, err := n.spoolBody(http.MaxBytesReader(w, r.Body, triage.MaxUploadBytes))
	if !triage.WriteIngestError(w, r, err) {
		return
	}
	defer os.Remove(path)
	if gotID != id {
		// The bytes do not hash to the claimed address — a corrupt or
		// confused coordinator. Refusing here keeps the content-addressed
		// invariant: a stored id always names exactly its own bytes.
		httpjson.Fail(w, r, http.StatusBadRequest, httpjson.CodeBadRequest,
			"content hash mismatch: body is "+gotID)
		return
	}
	res, err := n.cfg.Service.IngestFile(id, path, size)
	if !triage.WriteIngestError(w, r, err) {
		return
	}
	code := http.StatusCreated
	if res.Duplicate {
		code = http.StatusOK
	}
	httpjson.Write(w, code, res)
}

// handleReplicaGet streams a locally held blob. Never forwards — a miss
// is a 404 even when a peer has it, which is what makes proxy reads
// loop-free.
func (n *Node) handleReplicaGet(w http.ResponseWriter, r *http.Request) {
	triage.ServeRaw(n.cfg.Service, w, r, r.PathValue("id"))
}

// handleLocalMeta serves locally known report metadata. Never forwards.
func (n *Node) handleLocalMeta(w http.ResponseWriter, r *http.Request) {
	m, ok := n.cfg.Service.Report(r.PathValue("id"))
	if !ok {
		httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no such report")
		return
	}
	httpjson.Write(w, http.StatusOK, m)
}

// NodeHealth is one member's probed state in the /api/v1/cluster view.
type NodeHealth struct {
	Node    string `json:"node"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// ClusterInfo is the GET /api/v1/cluster response.
type ClusterInfo struct {
	Self              string       `json:"self"`
	ReplicationFactor int          `json:"replication_factor"`
	WriteQuorum       int          `json:"write_quorum"`
	VirtualNodes      int          `json:"virtual_nodes"`
	Nodes             []NodeHealth `json:"nodes"`
	AdmissionBytes    int64        `json:"admission_bytes"`
	AdmissionInflight int          `json:"admission_inflight"`
	RepairQueue       int          `json:"repair_queue"`
	// Degraded is this node's store-degradation reason (empty = healthy):
	// why it is shedding writes with 503.
	Degraded string `json:"degraded,omitempty"`
	// OpenBreakers lists peers this node currently refuses to call
	// because their circuit is open.
	OpenBreakers []string `json:"open_breakers,omitempty"`
}

// handleClusterInfo is GET /api/v1/cluster: static ring facts plus a
// live health probe of every member (self answers without a round trip).
func (n *Node) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	members := n.ring.Nodes()
	health := make([]NodeHealth, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if m == n.self {
			health[i] = NodeHealth{Node: m, Healthy: true}
			continue
		}
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			defer cancel()
			if err := n.client.health(ctx, m); err != nil {
				health[i] = NodeHealth{Node: m, Healthy: false, Error: err.Error()}
				return
			}
			health[i] = NodeHealth{Node: m, Healthy: true}
		}(i, m)
	}
	wg.Wait()
	bytes, inflight := n.admission.Occupancy()
	vnodes := n.cfg.VirtualNodes
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	info := ClusterInfo{
		Self:              n.self,
		ReplicationFactor: n.replicas,
		WriteQuorum:       n.quorum,
		VirtualNodes:      vnodes,
		Nodes:             health,
		AdmissionBytes:    bytes,
		AdmissionInflight: inflight,
		RepairQueue:       n.ae.depth(),
		OpenBreakers:      n.client.openBreakers(),
	}
	if err := n.cfg.Service.Healthy(); err != nil {
		info.Degraded = err.Error()
	}
	httpjson.Write(w, http.StatusOK, info)
}
