package triage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bugnet/internal/report"
)

// spoolEntries lists the leftover files in a service's upload spool.
func spoolEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "spool"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}

func TestIngestReaderStoresAndTriages(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	res, err := s.IngestReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != report.ID(blob) {
		t.Fatalf("streamed id %s != content address %s", res.ID, report.ID(blob))
	}
	if res.Duplicate {
		t.Fatal("first streamed upload marked duplicate")
	}
	s.WaitIdle()
	m, ok := s.Report(res.ID)
	if !ok || m.Verdict == nil || m.Verdict.State != VerdictDone {
		t.Fatalf("verdict = %+v", m.Verdict)
	}
	if !m.Verdict.Reproduced {
		t.Fatal("streamed report did not reproduce")
	}

	// The spool must not accumulate: adoption renames the file away.
	if left := spoolEntries(t, dir); len(left) != 0 {
		t.Fatalf("spool leftovers: %v", left)
	}

	// Second stream of the same content: deduped, no spool residue.
	res2, err := s.IngestReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Duplicate || res2.ID != res.ID {
		t.Fatalf("dedup failed: %+v", res2)
	}
	if left := spoolEntries(t, dir); len(left) != 0 {
		t.Fatalf("spool leftovers after dedup: %v", left)
	}
}

func TestIngestReaderRejectsGarbage(t *testing.T) {
	img, _, _ := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	if _, err := s.IngestReader(bytes.NewReader([]byte("not an archive"))); !errors.Is(err, report.ErrBadArchive) {
		t.Fatalf("err = %v; want ErrBadArchive", err)
	}
	if left := spoolEntries(t, dir); len(left) != 0 {
		t.Fatalf("rejected upload left spool files: %v", left)
	}
	if st := s.Store().Stats(); st.RetainedCount != 0 {
		t.Fatalf("garbage reached the store: %+v", st)
	}
}

func TestStaleSpoolReclaimedAtStartup(t *testing.T) {
	img, _, _ := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	dir := t.TempDir()
	spool := filepath.Join(dir, "spool")
	if err := os.MkdirAll(spool, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(spool, "upload-12345.tmp")
	if err := os.WriteFile(stale, []byte("half an upload"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale spool file survived startup")
	}
}
