package triage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/httpjson"
	"bugnet/internal/kernel"
	"bugnet/internal/report"
)

func TestHTTPEndpoints(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Upload via the versioned path.
	resp, err := http.Post(srv.URL+"/api/v1/reports", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /api/v1/reports: %s", resp.Status)
	}
	var ing IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Duplicate upload answers 200 — on the legacy alias, which must
	// behave identically to the versioned path.
	resp, err = http.Post(srv.URL+"/reports", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate POST on legacy alias: %s", resp.Status)
	}

	// Garbage answers 400 with the standard envelope and a stable code.
	resp, err = http.Post(srv.URL+"/api/v1/reports", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage POST: %s", resp.Status)
	}
	assertEnvelope(t, resp, httpjson.CodeBadRequest)

	s.WaitIdle()

	// Report metadata.
	var meta ReportMeta
	getJSON(t, srv.URL+"/api/v1/reports/"+ing.ID, &meta)
	if meta.ID != ing.ID || meta.Verdict == nil || meta.Verdict.State != VerdictDone {
		t.Fatalf("report meta = %+v", meta)
	}

	// Raw blob round-trips byte-exact.
	resp, err = http.Get(srv.URL + "/api/v1/reports/" + ing.ID + "?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(raw.Bytes(), blob) {
		t.Fatal("raw download differs from upload")
	}

	// Buckets (unified listing envelope; one page, so no cursor).
	var buckets Listing[Bucket]
	getJSON(t, srv.URL+"/api/v1/buckets", &buckets)
	if len(buckets.Items) != 1 || buckets.NextCursor != "" ||
		buckets.Items[0].Count != 2 || buckets.Items[0].Key != ing.BucketKey {
		t.Fatalf("buckets = %+v", buckets)
	}

	// Report listing, same envelope on the legacy alias.
	var reports Listing[ReportMeta]
	getJSON(t, srv.URL+"/reports", &reports)
	if len(reports.Items) != 1 || reports.NextCursor != "" || reports.Items[0].ID != ing.ID {
		t.Fatalf("reports = %+v", reports)
	}
	var b Bucket
	getJSON(t, srv.URL+"/api/v1/buckets/"+ing.BucketKey, &b)
	if b.Verdict == nil || !b.Verdict.Reproduced {
		t.Fatalf("bucket verdict = %+v", b.Verdict)
	}

	// Health.
	var health map[string]any
	getJSON(t, srv.URL+"/healthz", &health)
	if health["status"] != "ok" || health["reports"].(float64) != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// Unknowns answer 404 with the envelope, on both surfaces.
	for _, path := range []string{
		"/reports/deadbeef", "/buckets/nope",
		"/api/v1/reports/deadbeef", "/api/v1/buckets/nope",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			resp.Body.Close()
			t.Errorf("GET %s: %s", path, resp.Status)
			continue
		}
		assertEnvelope(t, resp, httpjson.CodeNotFound)
	}

	// A corrupt cursor fails loudly instead of silently restarting.
	resp, err = http.Get(srv.URL + "/api/v1/reports?cursor=%21%21not-base64")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: %s", resp.Status)
	}
	assertEnvelope(t, resp, httpjson.CodeBadRequest)
}

// TestHTTPCursorPagination walks both listings page by page via the
// opaque cursors and checks the union is exact and duplicate-free.
func TestHTTPCursorPagination(t *testing.T) {
	img, _, _ := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Seven distinct recordings (varying data tables -> distinct logs ->
	// distinct content addresses) make three pages of three.
	want := make(map[string]bool)
	for i := 0; i < 7; i++ {
		res, err := s.Ingest(variantBlob(t, i))
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		want[res.ID] = true
	}
	s.WaitIdle()

	got := make(map[string]bool)
	cursor := ""
	pages := 0
	for {
		url := srv.URL + "/api/v1/reports?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page Listing[ReportMeta]
		getJSON(t, url, &page)
		if len(page.Items) > 3 {
			t.Fatalf("limit ignored: %d items", len(page.Items))
		}
		for _, m := range page.Items {
			if got[m.ID] {
				t.Fatalf("id %s served twice", m.ID)
			}
			got[m.ID] = true
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(got) != len(want) {
		t.Fatalf("pagination returned %d ids, want %d", len(got), len(want))
	}
	if pages < 3 {
		t.Fatalf("expected >= 3 pages of 3 for 7 reports, got %d", pages)
	}

	// Bucket pagination uses the same envelope.
	var bpage Listing[Bucket]
	getJSON(t, srv.URL+"/api/v1/buckets?limit=2", &bpage)
	if len(bpage.Items) > 2 {
		t.Fatalf("bucket limit ignored: %d items", len(bpage.Items))
	}
}

// variantBlob records the crash demo with a mutated data table, yielding
// a valid archive with a distinct content address per i.
func variantBlob(t *testing.T, i int) []byte {
	t.Helper()
	src := fmt.Sprintf(`
        .data
tbl:    .word %d, %d, 7, 0
        .text
main:   la   t0, tbl
        li   s0, 0
sum:    lw   t1, (t0)
        beqz t1, done
        add  s0, s0, t1
        addi t0, t0, 4
        j    sum
done:   la   t2, tbl
        lw   t3, 12(t2)
boom:   lw   a0, (t3)
`, 3*i+1, 3*i+2)
	img, err := asm.Assemble(fmt.Sprintf("variant%d.s", i), src)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, _ := core.Record(img, kernel.Config{}, core.Config{IntervalLength: 16})
	if res.Crash == nil {
		t.Fatalf("variant %d did not crash", i)
	}
	blob, err := report.Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// assertEnvelope checks a failure response carries the standardized
// error envelope with the expected stable code. Closes the body.
func assertEnvelope(t *testing.T, resp *http.Response, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	var env httpjson.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not the envelope: %v", err)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("error code = %q, want %q (message %q)", env.Error.Code, wantCode, env.Error.Message)
	}
	if env.Error.Message == "" {
		t.Fatal("error envelope has empty message")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
