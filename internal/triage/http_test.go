package triage

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPEndpoints(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Upload.
	resp, err := http.Post(srv.URL+"/reports", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /reports: %s", resp.Status)
	}
	var ing IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Duplicate upload answers 200.
	resp, err = http.Post(srv.URL+"/reports", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate POST: %s", resp.Status)
	}

	// Garbage answers 400.
	resp, err = http.Post(srv.URL+"/reports", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage POST: %s", resp.Status)
	}

	s.WaitIdle()

	// Report metadata.
	var meta ReportMeta
	getJSON(t, srv.URL+"/reports/"+ing.ID, &meta)
	if meta.ID != ing.ID || meta.Verdict == nil || meta.Verdict.State != VerdictDone {
		t.Fatalf("report meta = %+v", meta)
	}

	// Raw blob round-trips byte-exact.
	resp, err = http.Get(srv.URL + "/reports/" + ing.ID + "?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(raw.Bytes(), blob) {
		t.Fatal("raw download differs from upload")
	}

	// Buckets (paginated envelope).
	var buckets Page[Bucket]
	getJSON(t, srv.URL+"/buckets", &buckets)
	if buckets.Total != 1 || len(buckets.Items) != 1 ||
		buckets.Items[0].Count != 2 || buckets.Items[0].Key != ing.BucketKey {
		t.Fatalf("buckets = %+v", buckets)
	}

	// Report listing (paginated envelope).
	var reports Page[ReportMeta]
	getJSON(t, srv.URL+"/reports", &reports)
	if reports.Total != 1 || len(reports.Items) != 1 || reports.Items[0].ID != ing.ID {
		t.Fatalf("reports = %+v", reports)
	}
	var b Bucket
	getJSON(t, srv.URL+"/buckets/"+ing.BucketKey, &b)
	if b.Verdict == nil || !b.Verdict.Reproduced {
		t.Fatalf("bucket verdict = %+v", b.Verdict)
	}

	// Health.
	var health map[string]any
	getJSON(t, srv.URL+"/healthz", &health)
	if health["status"] != "ok" || health["reports"].(float64) != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// Unknowns answer 404.
	for _, path := range []string{"/reports/deadbeef", "/buckets/nope"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
