package triage

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/faultinject"
	"bugnet/internal/parreplay"
	"bugnet/internal/report"
	"bugnet/internal/timetravel"
)

// Config parameterizes a triage service.
type Config struct {
	// Dir is the root of the on-disk report store.
	Dir string
	// Budget is the store's retained-bytes budget (<= 0: unlimited).
	Budget int64
	// Workers is the size of the replay worker pool (default 2).
	Workers int
	// Resolver maps a report's BinaryID to a replayable image; typically
	// (*ImageRegistry).Resolve. Required.
	Resolver func(core.BinaryID) (*asm.Image, error)
	// BacktraceDepth is how many trailing instructions of the crashing
	// thread the verdict captures (default 16).
	BacktraceDepth int
	// MaxQueue bounds the triage backlog; Ingest applies backpressure by
	// blocking when the queue is full (default 1024).
	MaxQueue int
	// MaxReplayWindow bounds the total instructions one report's replay
	// may claim (sum of FLL interval lengths over all threads). Lengths
	// are attacker-controlled u64s and replay executes exactly what they
	// claim, so an unbounded window would let one upload pin a worker
	// forever (default 100M, roughly the paper's largest bug window).
	MaxReplayWindow uint64
	// MaxReplayPages bounds one report's total replay memory in 4 KB
	// pages, split evenly across its threads. Untrusted logs control
	// replayed register state, and replay memory auto-maps on first
	// touch, so without a cap a crafted report could stride-allocate the
	// server to death (default 16384 = 64 MB/report; exceeding the
	// per-thread share surfaces as a memory fault in the verdict).
	MaxReplayPages int
	// MaxBuckets bounds the bucket table. Every other resource here is
	// budgeted; without this one, uploads with fabricated crash PCs could
	// grow bucket memory forever. At the cap, the lowest-count bucket is
	// evicted to admit the newcomer (default 65536).
	MaxBuckets int
	// SpoolDir is where streaming uploads are spilled while they are
	// hashed and validated, before being renamed into the store. Default
	// Dir/spool; point it at the store's filesystem to keep adoption a
	// pure rename.
	SpoolDir string
	// ReplayParallelism is the per-report interval-replay fan-out: > 1
	// replays a report's checkpoint intervals concurrently on that many
	// workers (internal/parreplay), <= 1 keeps the sequential path.
	// Reports needing race detection always replay sequentially; the
	// verdict is byte-identical either way.
	ReplayParallelism int
	// VerdictCache bounds the content-addressed verdict cache in entries
	// (verdict + backtrace keyed by report ID, persisted under
	// Dir/verdicts so restarts skip re-replaying known content). 0 uses
	// the default (4096); negative disables the cache.
	VerdictCache int
	// FS routes the store's and spool's write-side I/O through a
	// fault-injection plane; nil (the production default) calls the os
	// package directly.
	FS *faultinject.FS
}

// DefaultVerdictCache is the default verdict-cache bound in entries. A
// verdict JSON is small (a backtrace and a few counters), so the default
// costs a few MB of disk against a replay saved per duplicate crash.
const DefaultVerdictCache = 4096

// DefaultMaxReplayWindow is the default per-report replay budget in
// instructions, roughly the paper's largest bug window. The interactive
// debug-session layer uses the same default so sessions accept exactly
// the reports automatic triage would replay.
const DefaultMaxReplayWindow = 100_000_000

// DefaultMaxReplayPages is the default per-report replay memory budget in
// 4 KB pages (64 MB). Shared with the debug-session layer for the same
// reason as DefaultMaxReplayWindow.
const DefaultMaxReplayPages = 16384

// Verdict states.
const (
	VerdictPending = "pending" // queued or replaying
	VerdictDone    = "done"    // replay completed
	VerdictFailed  = "failed"  // replay errored (divergence, bad logs, unknown binary)
)

// Frame is one instruction of the crash backtrace.
type Frame struct {
	PC     uint32 `json:"pc"`
	Disasm string `json:"disasm"`
}

// Verdict is the machine-readable outcome of automatically replaying a
// report: did the recorded window actually reproduce the crash the
// recorder claimed, what does the tail of execution look like, and what
// races did the replay expose.
type Verdict struct {
	State string `json:"state"`
	// Reproduced is true when the deterministically replayed window of
	// the crashing thread actually arrives at the fault record's PC —
	// the replay-verifiable part of "the crash reproduces".
	Reproduced bool `json:"reproduced"`
	// Cause and PC describe the replayed fault.
	Cause string `json:"cause,omitempty"`
	PC    uint32 `json:"pc,omitempty"`
	// MatchesReported is true when the replayed fault agrees with the
	// crash record the recorder uploaded (same cause and PC) — the check
	// that catches corrupted or mislabeled field reports.
	MatchesReported bool `json:"matches_reported"`
	// Races are the data races inferred during the multithreaded replay.
	Races []string `json:"races,omitempty"`
	// Backtrace is the last-K-instruction trail of the crashing thread,
	// oldest first, ending at the faulting instruction.
	Backtrace []Frame `json:"backtrace,omitempty"`
	// Instructions is the total replayed instruction count (all threads).
	Instructions uint64 `json:"instructions"`
	// Error holds the failure description when State == "failed".
	Error string `json:"error,omitempty"`
}

// Bucket aggregates every upload of one field crash.
type Bucket struct {
	Key       string    `json:"key"`
	Signature Signature `json:"signature"`
	// Count is the number of uploads that hashed into this bucket,
	// including byte-identical duplicates of stored reports.
	Count int `json:"count"`
	// ReportIDs are the distinct stored archives observed (exemplars;
	// capped, and blobs may age out of the store independently).
	ReportIDs []string `json:"report_ids"`
	// Verdict is the triage outcome of the bucket's first report.
	Verdict *Verdict `json:"verdict,omitempty"`
}

// maxExemplars caps the report IDs kept per bucket; the bucket count keeps
// growing past it.
const maxExemplars = 16

// ReportMeta is the per-stored-archive record.
type ReportMeta struct {
	ID        string   `json:"id"`
	Bytes     int64    `json:"bytes"`
	BucketKey string   `json:"bucket"`
	Verdict   *Verdict `json:"verdict,omitempty"`
}

// IngestResult is what an upload returns.
type IngestResult struct {
	ID        string `json:"id"`
	BucketKey string `json:"bucket"`
	// Duplicate is true when the archive was already stored; duplicates
	// raise the bucket count without storing or replaying anything.
	Duplicate bool `json:"duplicate"`
}

// job is one queued replay. It carries only the content address and the
// bucket key: holding decoded reports in the queue would multiply peak
// memory by the backlog depth, so the worker re-reads and re-decodes from
// the store. The bucket key rides along so a verdict can still reach its
// bucket when the report's metadata was evicted while the job waited.
type job struct {
	id        string
	bucketKey string
}

// Service is the ingestion and triage pipeline: content-addressed storage,
// crash bucketing, and a replay worker pool.
type Service struct {
	cfg      Config
	store    *Store
	spoolDir string
	fsys     *faultinject.FS // nil outside chaos runs

	mu      sync.Mutex
	cond    *sync.Cond
	buckets map[string]*Bucket
	reports map[string]*ReportMeta
	// evictedEarly holds blob ids evicted between their store.Put and
	// their metadata creation (see onEvict in New).
	evictedEarly map[string]bool
	pending      int
	closed       bool

	jobs      chan job
	wg        sync.WaitGroup
	ingesting sync.WaitGroup // in-flight Ingest calls; Close waits before closing jobs

	// vcache is the content-addressed verdict cache (nil when disabled).
	vcache *verdictCache

	// recoveryDone closes when startup re-triage of on-disk blobs ends;
	// WaitIdle waits on it so "idle" includes recovered work.
	recoveryDone chan struct{}
}

// ErrClosed reports an Ingest after Close.
var ErrClosed = errors.New("triage: service closed")

// errEvictedBeforeTriage marks a verdict whose report aged out of the
// store before its replay ran; a re-upload of the same content re-queues
// such reports.
const errEvictedBeforeTriage = "report evicted before triage"

// New builds a service and starts its worker pool.
func New(cfg Config) (*Service, error) {
	if cfg.Resolver == nil {
		return nil, errors.New("triage: Config.Resolver is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.BacktraceDepth <= 0 {
		cfg.BacktraceDepth = 16
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.MaxReplayWindow == 0 {
		cfg.MaxReplayWindow = DefaultMaxReplayWindow
	}
	if cfg.MaxReplayPages <= 0 {
		cfg.MaxReplayPages = DefaultMaxReplayPages
	}
	if cfg.MaxBuckets <= 0 {
		cfg.MaxBuckets = 65536
	}
	if cfg.VerdictCache == 0 {
		cfg.VerdictCache = DefaultVerdictCache
	}
	st, err := openStore(cfg.Dir, cfg.Budget, cfg.FS)
	if err != nil {
		return nil, err
	}
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = filepath.Join(cfg.Dir, "spool")
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, err
	}
	// Uploads that died mid-stream before a previous shutdown were never
	// indexed; reclaim their spool files rather than leak disk forever.
	if stale, err := filepath.Glob(filepath.Join(cfg.SpoolDir, "upload-*.tmp")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	s := &Service{
		cfg:          cfg,
		store:        st,
		spoolDir:     cfg.SpoolDir,
		fsys:         cfg.FS,
		buckets:      make(map[string]*Bucket),
		reports:      make(map[string]*ReportMeta),
		evictedEarly: make(map[string]bool),
		jobs:         make(chan job, cfg.MaxQueue),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.VerdictCache > 0 {
		vc, err := newVerdictCache(cfg.VerdictCache, filepath.Join(cfg.Dir, "verdicts"))
		if err != nil {
			return nil, err
		}
		// Rehydrate before the workers start: the startup re-index queues a
		// replay per stored blob, and each of those should find its
		// persisted verdict already in the cache.
		vc.rehydrate()
		s.vcache = vc
		mCacheEntries.Set(int64(vc.len()))
	}
	// When the store ages a blob out, drop its per-report metadata too, so
	// a long-running daemon's memory tracks the store budget rather than
	// growing with every distinct upload ever seen. Buckets stay: the
	// aggregate counts and verdicts are the point of triage. A blob can be
	// evicted in the window between its Put and its metadata creation (a
	// concurrent ingest pushed the store over budget); such ids are parked
	// in evictedEarly so the late metadata is suppressed instead of
	// leaking forever.
	st.onEvict = func(id string) {
		s.mu.Lock()
		// evictedEarly entries are consumed by the racing ingest; one that
		// never gets consumed (the uploader never retried) would sit
		// forever, so bound the map. Clearing can at worst let a racing
		// ingest record metadata for an already-evicted blob, whose replay
		// then fails with the evicted-before-triage verdict — benign.
		if len(s.evictedEarly) > 1024 {
			s.evictedEarly = make(map[string]bool)
		}
		if m, ok := s.reports[id]; ok {
			delete(s.reports, id)
			// Drop the exemplar too, so a later re-upload of the same
			// content re-appends without duplicating the id.
			if b := s.buckets[m.BucketKey]; b != nil {
				for i, rid := range b.ReportIDs {
					if rid == id {
						b.ReportIDs = append(b.ReportIDs[:i], b.ReportIDs[i+1:]...)
						break
					}
				}
			}
		} else {
			s.evictedEarly[id] = true
		}
		s.mu.Unlock()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Re-triage archives left over from a previous run so a restarted
	// server rebuilds its buckets and verdicts from disk. This runs in the
	// background: a store holding more reports than the queue bound must
	// not keep New (and therefore the HTTP listener) hostage until the
	// backlog replays. A blob that no longer decodes (damaged after write,
	// or a foreign file wearing a valid name) would otherwise sit in the
	// budget forever, invisible to every listing — reclaim it instead.
	s.recoveryDone = make(chan struct{})
	leftover := st.IDs() // snapshot now: blobs ingested after New are not "recovered"
	go func() {
		defer close(s.recoveryDone)
		for _, id := range leftover {
			data, err := st.Get(id)
			if err != nil {
				// Only reclaim when the bytes are really gone; a transient
				// read error (EIO, fd exhaustion) must not destroy
				// evidence — the blob gets another chance next start.
				if os.IsNotExist(err) || !st.Has(id) {
					st.Delete(id)
				}
				continue
			}
			res, err := s.ingestBytes(data, true)
			if err == nil {
				// A blob filed under a name that is not its content hash
				// (tampering, botched restore) was just re-stored under
				// its real address by the ingest; reclaim the misnamed
				// copy so it cannot squat in the budget.
				if res.ID != id {
					st.Delete(id)
				}
				continue
			}
			if errors.Is(err, ErrClosed) {
				return // shutting down; don't misread closure as corruption
			}
			st.Delete(id) // the content itself is undecodable
		}
		// Blobs found at non-canonical shard paths at open time: re-ingest
		// the readable ones under their true address, then remove the
		// stray copies. Evidence is preserved; junk is reclaimed.
		for _, p := range st.Strays() {
			data, err := os.ReadFile(p)
			if err != nil {
				continue // transient: leave the stray for the next start
			}
			switch _, err := s.ingestBytes(data, true); {
			case errors.Is(err, ErrClosed):
				return
			case err == nil, errors.Is(err, report.ErrBadArchive):
				// Safely re-homed, or junk content: either way the stray
				// copy has nothing left to offer.
				os.Remove(p)
			default:
				// Transient store failure (disk full, EIO): this may be
				// the only copy — keep it for the next start.
			}
		}
	}()
	return s, nil
}

// Close stops the worker pool after draining queued jobs.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ingesting.Wait()
	close(s.jobs)
	s.wg.Wait()
}

// Store exposes the underlying blob store (read-only use).
func (s *Service) Store() *Store { return s.store }

// Err returns the most recent disk failure the archive store has seen; a
// non-nil result means uploads or reclamation are losing evidence and the
// health endpoint reports degraded.
func (s *Service) Err() error { return s.store.Err() }

// Healthy reports whether the archive store can accept writes. A
// degraded store re-probes the disk (rate limited), so a healed disk
// restores service without a restart. Ingest handlers shed with 503
// while this returns non-nil.
func (s *Service) Healthy() error { return s.store.Healthy() }

// SpoolHealthy probes whether the upload spool directory is writable —
// the readiness condition for the streaming ingest path. The probe
// creates and removes one temp file; failures are returned, not sticky.
func (s *Service) SpoolHealthy() error {
	f, err := s.fsys.CreateTemp(s.spoolDir, "probe-*.tmp")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// ReadyReasons collects the service-level reasons this node should not
// take traffic: a degraded archive store and an unwritable spool. The
// HTTP layer appends its own (debug-session saturation) and the cluster
// layer its peers' (open breakers, unreachable quorum).
func (s *Service) ReadyReasons() []string {
	var reasons []string
	if err := s.Healthy(); err != nil {
		reasons = append(reasons, "store degraded: "+err.Error())
	}
	if err := s.SpoolHealthy(); err != nil {
		reasons = append(reasons, "spool unwritable: "+err.Error())
	}
	return reasons
}

// Ingest accepts one uploaded archive held in memory: validate, store,
// bucket, and queue a replay if the content is new. For uploads that
// should never transit memory whole, see IngestReader.
func (s *Service) Ingest(data []byte) (*IngestResult, error) {
	return s.ingestBytes(data, false)
}

// begin guards an ingest against shutdown; the caller must call
// s.ingesting.Done() when it returns nil.
func (s *Service) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.ingesting.Add(1)
	return nil
}

// IngestReader streams one uploaded archive: the body is spooled to disk
// while it is hashed, validated section-by-section in place, and renamed
// into the store — the spill-to-disk ingest path, O(1) memory per upload
// regardless of archive size.
func (s *Service) IngestReader(r io.Reader) (res *IngestResult, err error) {
	start := time.Now()
	var size int64
	defer func() { observeIngest(start, size, res, err, false) }()
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.ingesting.Done()

	tmp, err := s.fsys.CreateTemp(s.spoolDir, "upload-*.tmp")
	if err != nil {
		return nil, err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op once the store adopts the file
	h := sha256.New()
	size, err = io.Copy(io.MultiWriter(tmp, h), r)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("triage: spooling upload: %w", err)
	}
	id := hex.EncodeToString(h.Sum(nil))

	put := func() (bool, error) { return s.store.AdoptFile(id, tmpPath) }
	sig := func() (Signature, error) {
		a, err := report.OpenFile(tmpPath)
		if err != nil {
			return Signature{}, err
		}
		defer a.Close()
		return SignatureOf(a.Report()), nil
	}
	return s.ingestCore(id, size, put, sig, false)
}

// IngestFile adopts an already-spooled upload whose content address the
// caller computed while writing path (id must be the hex SHA-256 of the
// file's bytes, like Store.PutWithID's contract). The cluster layer uses
// it to ingest the coordinator's spool file without a second disk copy:
// the file is consumed on success (renamed into the store, or deleted
// when the content already existed).
func (s *Service) IngestFile(id, path string, size int64) (res *IngestResult, err error) {
	start := time.Now()
	defer func() { observeIngest(start, size, res, err, false) }()
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.ingesting.Done()

	put := func() (bool, error) { return s.store.AdoptFile(id, path) }
	sig := func() (Signature, error) {
		a, err := report.OpenFile(path)
		if err != nil {
			return Signature{}, err
		}
		defer a.Close()
		return SignatureOf(a.Report()), nil
	}
	return s.ingestCore(id, size, put, sig, false)
}

func (s *Service) ingestBytes(data []byte, recovered bool) (res *IngestResult, err error) {
	start := time.Now()
	defer func() { observeIngest(start, int64(len(data)), res, err, recovered) }()
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.ingesting.Done()

	id := report.ID(data)
	put := func() (bool, error) {
		_, existed, err := s.store.PutWithID(id, data)
		return existed, err
	}
	sig := func() (Signature, error) {
		// Scanning validates every frame and checksum but decodes only
		// metadata — ingest never materializes an entry stream.
		a, err := report.OpenBytes(data)
		if err != nil {
			return Signature{}, err
		}
		return SignatureOf(a.Report()), nil
	}
	return s.ingestCore(id, int64(len(data)), put, sig, recovered)
}

// ingestCore is the shared accounting behind both ingest paths. put
// stores the blob under id (reporting whether the content already
// existed); sig validates the archive and derives its bucket signature.
func (s *Service) ingestCore(id string, size int64, put func() (bool, error), getSig func() (Signature, error), recovered bool) (*IngestResult, error) {
	// Fast path for the flood case the subsystem exists for: a
	// byte-identical re-upload of known content needs one hash and a
	// bucket increment, not a full archive decode. Known content was
	// fully validated when first ingested.
	s.mu.Lock()
	known := false
	var key string
	if meta, ok := s.reports[id]; ok && s.buckets[meta.BucketKey] != nil {
		// Known content with a live bucket. If the bucket was evicted at
		// the MaxBuckets cap, fall through to the slow path instead: only
		// a decode can recover the signature needed to rebuild it.
		known, key = true, meta.BucketKey
	}
	s.mu.Unlock()
	if known {
		// Re-store in case the blob is evicted concurrently; for the
		// common case this is just a map lookup. Accounting happens after
		// the write succeeds so a failed store never bumps the count.
		if _, err := put(); err != nil {
			return nil, err
		}
		enqueue := false
		s.mu.Lock()
		if b := s.buckets[key]; b != nil {
			b.Count++
		}
		switch m, ok := s.reports[id]; {
		case s.evictedEarly[id]:
			// Our re-stored blob was itself evicted already; the upload is
			// counted but there is nothing left to describe or replay.
			delete(s.evictedEarly, id)
		case ok && m.Verdict != nil && m.Verdict.State == VerdictFailed &&
			m.Verdict.Error == errEvictedBeforeTriage:
			// The earlier copy aged out before its replay ran; the bytes
			// are back now, so give triage its shot.
			m.Verdict = &Verdict{State: VerdictPending}
			s.pending++
			mQueueDepth.Set(int64(s.pending))
			enqueue = true
		case !ok:
			// The blob (and its metadata) was evicted between the check
			// and the re-store; the re-stored bytes need their metadata
			// and replay back.
			s.reports[id] = &ReportMeta{ID: id, Bytes: size,
				BucketKey: key, Verdict: &Verdict{State: VerdictPending}}
			if b := s.buckets[key]; b != nil && len(b.ReportIDs) < maxExemplars {
				b.ReportIDs = append(b.ReportIDs, id)
			}
			s.pending++
			mQueueDepth.Set(int64(s.pending))
			enqueue = true
		}
		s.mu.Unlock()
		if enqueue {
			s.jobs <- job{id: id, bucketKey: key}
		}
		return &IngestResult{ID: id, BucketKey: key, Duplicate: !recovered}, nil
	}

	sig, err := getSig()
	if err != nil {
		return nil, err
	}
	key = sig.Key()

	existed, err := put()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.evictedEarly[id] {
		// Evicted again already (concurrent ingest churn): count the
		// upload, but leave no metadata for a blob that no longer exists.
		delete(s.evictedEarly, id)
		s.bucketLocked(key, sig).Count++
		s.mu.Unlock()
		return &IngestResult{ID: id, BucketKey: key, Duplicate: existed && !recovered}, nil
	}
	b := s.bucketLocked(key, sig)
	b.Count++
	if b.Verdict == nil {
		if m := s.reports[id]; m != nil && m.Verdict != nil && m.Verdict.State == VerdictDone {
			// The bucket was evicted at the cap and is being rebuilt for
			// content that already carries a verdict; restore it.
			v := *m.Verdict
			b.Verdict = &v
		}
	}
	// onEvict deletes metadata whenever its blob ages out, so meta here is
	// non-nil only when a concurrent identical upload created it moments
	// ago — then the blob is indexed and its replay already queued.
	meta := s.reports[id]
	known = meta != nil
	enqueue := false
	if meta == nil {
		meta = &ReportMeta{ID: id, Bytes: size, BucketKey: key,
			Verdict: &Verdict{State: VerdictPending}}
		s.reports[id] = meta
		if len(b.ReportIDs) < maxExemplars {
			b.ReportIDs = append(b.ReportIDs, id)
		}
		enqueue = true
		s.pending++
		mQueueDepth.Set(int64(s.pending))
	}
	s.mu.Unlock()

	if enqueue {
		s.jobs <- job{id: id, bucketKey: key}
	}
	return &IngestResult{ID: id, BucketKey: key, Duplicate: (existed || known) && !recovered}, nil
}

// bucketLocked finds or creates the bucket for key, evicting the
// lowest-count bucket when the table is at MaxBuckets — high-volume
// buckets (the real field crashes) always survive a flood of fabricated
// signatures. Caller holds s.mu.
func (s *Service) bucketLocked(key string, sig Signature) *Bucket {
	if b := s.buckets[key]; b != nil {
		return b
	}
	if len(s.buckets) >= s.cfg.MaxBuckets {
		// Evict the lowest-count bucket of a random sample rather than a
		// full O(MaxBuckets) scan: at the cap the table is under a flood
		// of fabricated signatures, and every admission holds s.mu. Go's
		// randomized map iteration makes the sample cheap and unbiased;
		// real field crashes (high counts) survive with high probability.
		const sample = 8
		worstKey, worst, scanned := "", -1, 0
		for k, cand := range s.buckets {
			if worst == -1 || cand.Count < worst {
				worstKey, worst = k, cand.Count
			}
			if scanned++; scanned >= sample {
				break
			}
		}
		delete(s.buckets, worstKey)
	}
	b := &Bucket{Key: key, Signature: sig}
	s.buckets[key] = b
	mBuckets.Set(int64(len(s.buckets)))
	return b
}

// worker drains the replay queue, replaying each report straight from
// its store file (it can have aged out between ingest and replay; that is
// a failed verdict, not a crash).
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		v, cached := s.cachedVerdict(j.id)
		if !cached {
			start := time.Now()
			v = s.triageOne(j.id)
			mReplaySeconds.Since(start)
			mReplayInstr.Add(v.Instructions)
			// Only completed verdicts are cached: failures (unknown binary,
			// evicted blob, disk trouble) can be transient, and a re-upload
			// deserves a fresh replay.
			if s.vcache != nil && v.State == VerdictDone {
				s.vcache.put(j.id, v)
				mCacheEntries.Set(int64(s.vcache.len()))
			}
		}
		if v.State == VerdictDone {
			mVerdictDone.Inc()
		} else {
			mVerdictFailed.Inc()
		}
		s.mu.Lock()
		if m := s.reports[j.id]; m != nil {
			m.Verdict = v
		}
		// Attach to the bucket via the job's own key: the metadata may
		// have been evicted while the job waited, and the replay effort
		// (and its outcome) should still reach the aggregate.
		if b := s.buckets[j.bucketKey]; b != nil && (b.Verdict == nil || b.Verdict.State != VerdictDone) {
			b.Verdict = v
		}
		s.pending--
		mQueueDepth.Set(int64(s.pending))
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// cachedVerdict consults the content-addressed cache. The id is the
// archive's SHA-256, and the verdict is a pure function of those bytes
// and the content-addressed binary they name, so a hit is exactly the
// verdict a replay would produce — duplicate crashes never replay twice.
func (s *Service) cachedVerdict(id string) (*Verdict, bool) {
	if s.vcache == nil {
		return nil, false
	}
	v, ok := s.vcache.get(id)
	if ok {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
	}
	return v, ok
}

// triageOne opens one stored report for streaming replay: the blob stays
// a file, pinned against eviction for the duration, and only the interval
// being replayed is ever decoded.
func (s *Service) triageOne(id string) *Verdict {
	if !s.store.Pin(id) {
		return &Verdict{State: VerdictFailed, Error: errEvictedBeforeTriage}
	}
	defer s.store.Unpin(id)
	path, ok := s.store.Path(id)
	if !ok {
		return &Verdict{State: VerdictFailed, Error: errEvictedBeforeTriage}
	}
	a, err := report.OpenFile(path)
	if err != nil {
		if errors.Is(err, report.ErrBadArchive) {
			return &Verdict{State: VerdictFailed, Error: err.Error()}
		}
		// Still indexed (we hold a pin): the disk failed us, not the
		// budget. Don't tell the operator the report aged out.
		return &Verdict{State: VerdictFailed, Error: "reading report: " + err.Error()}
	}
	defer a.Close()
	return s.replay(a.Report())
}

// replay runs the automatic-triage replay of one report and produces its
// verdict. Reports come from untrusted uploaders, so a panicking replayer
// is demoted to a failed verdict rather than taking the server down.
func (s *Service) replay(rep *core.CrashReport) (v *Verdict) {
	v = &Verdict{State: VerdictDone}
	defer func() {
		if r := recover(); r != nil {
			v = &Verdict{State: VerdictFailed, Error: fmt.Sprintf("replay panicked: %v", r)}
		}
	}()

	img, err := s.cfg.Resolver(rep.Binary)
	if err != nil {
		return &Verdict{State: VerdictFailed, Error: err.Error()}
	}

	// Replay executes exactly as many instructions as the logs claim, so
	// bounding the claimed window bounds the worker's time. Lengths are
	// attacker-controlled u64s; the incremental check keeps the sum from
	// wrapping past the budget.
	var window uint64
	for _, logs := range rep.FLLs {
		for _, l := range logs {
			if l.Length > s.cfg.MaxReplayWindow-window {
				return &Verdict{State: VerdictFailed,
					Error: fmt.Sprintf("claimed replay window exceeds the %d-instruction budget", s.cfg.MaxReplayWindow)}
			}
			window += l.Length
		}
	}

	detectRaces := len(rep.MRLs) > 0
	// The page budget is per report: split it across threads so a
	// max-thread archive cannot multiply it.
	maxPages := s.cfg.MaxReplayPages
	if threads := len(rep.FLLs); threads > 1 {
		maxPages /= threads
	}
	if maxPages < 1 {
		maxPages = 1
	}
	var res *core.MultiReplayResult
	if s.cfg.ReplayParallelism > 1 {
		// Fan the report's checkpoint intervals across the replay pool.
		// parreplay routes race-detection (MRL-carrying) reports back to
		// the sequential schedule itself, so the verdict is byte-identical
		// to the sequential path either way.
		res, err = parreplay.ReplayReport(img, rep, parreplay.ReportOptions{
			Options: parreplay.Options{
				Workers:    s.cfg.ReplayParallelism,
				TraceDepth: s.cfg.BacktraceDepth,
				MaxPages:   maxPages,
			},
			DetectRaces: detectRaces,
		})
	} else {
		mr := core.NewMultiReplayer(img, rep)
		mr.DetectRaces = detectRaces
		mr.MaxPages = maxPages
		mr.TraceDepth = s.cfg.BacktraceDepth
		res, err = mr.Run()
	}
	if err != nil {
		return &Verdict{State: VerdictFailed, Error: err.Error()}
	}
	for _, tr := range res.Threads {
		v.Instructions += tr.Instructions
	}
	for _, r := range res.Races {
		v.Races = append(v.Races, r.String())
	}

	if rep.Crash == nil || rep.Crash.Fault == nil {
		return v // clean-stop upload: nothing to reproduce
	}
	crash := res.Threads[rep.Crash.TID]
	if crash != nil && crash.Fault != nil {
		// The fault record travels in the log, so it alone proves nothing.
		// The replay-verified fact is arrival: the deterministically
		// re-executed window must actually end with the PC at the claimed
		// faulting instruction (replay covers the window up to the crash;
		// the faulting instruction never commits, §5.1). Reproduced
		// requires it; MatchesReported additionally requires agreement
		// with the upload's own crash metadata.
		v.Reproduced = crash.Final.PC == crash.Fault.PC
		v.Cause = cpu.FaultCause(crash.Fault.Cause).String()
		v.PC = crash.Fault.PC
		v.MatchesReported = v.Reproduced &&
			crash.Fault.PC == rep.Crash.Fault.PC &&
			crash.Fault.Cause == uint8(rep.Crash.Fault.Cause)
	}

	// The crashing thread's trace ring from the replay holds the
	// last-K-instruction backtrace.
	if crash != nil {
		for _, te := range crash.Trace {
			v.Backtrace = append(v.Backtrace, Frame{PC: te.PC, Disasm: img.DisassembleAt(te.PC)})
		}
		// The faulting instruction never commits, so the trace ring ends
		// one instruction short of it; close the backtrace with the fault
		// record's PC.
		if crash.Fault != nil {
			v.Backtrace = append(v.Backtrace, Frame{PC: crash.Fault.PC, Disasm: img.DisassembleAt(crash.Fault.PC)})
			if len(v.Backtrace) > s.cfg.BacktraceDepth {
				v.Backtrace = v.Backtrace[len(v.Backtrace)-s.cfg.BacktraceDepth:]
			}
		}
	}
	return v
}

// OpenReport pins and opens one stored report and resolves its binary —
// the timetravel.ReportSource contract behind remote debug sessions. The
// pin excludes the blob from budget eviction until release runs
// (idempotent), so an open session keeps its evidence alive however hard
// ingest churns the store. The report streams from the store file: the
// session holds lazy views, and release closes the underlying handle.
func (s *Service) OpenReport(id string) (*core.CrashReport, *asm.Image, func(), error) {
	if !s.store.Pin(id) {
		return nil, nil, nil, fmt.Errorf("%w: no stored report %q", timetravel.ErrUnknownReport, id)
	}
	unpin := func() { s.store.Unpin(id) }
	path, ok := s.store.Path(id)
	if !ok {
		unpin()
		return nil, nil, nil, fmt.Errorf("%w: no stored report %q", timetravel.ErrUnknownReport, id)
	}
	a, err := report.OpenFile(path)
	if err != nil {
		unpin()
		return nil, nil, nil, fmt.Errorf("reading report %s: %w", id, err)
	}
	var once sync.Once
	release := func() {
		once.Do(func() {
			a.Close()
			unpin()
		})
	}
	rep := a.Report()
	img, err := s.cfg.Resolver(rep.Binary)
	if err != nil {
		release()
		return nil, nil, nil, err
	}
	return rep, img, release, nil
}

// WaitIdle blocks until startup recovery has finished and every queued
// replay has completed. Tests and graceful drains use it; steady-state
// serving never needs to.
func (s *Service) WaitIdle() {
	<-s.recoveryDone
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending > 0 {
		s.cond.Wait()
	}
}

// Buckets returns all buckets, most-populated first (ties by key).
func (s *Service) Buckets() []Bucket {
	b, _ := s.BucketsPage(0, 0)
	return b
}

// BucketsPage returns one page of the bucket listing (most-populated
// first, ties by key) plus the total bucket count. limit <= 0 means "the
// rest"; a large store's HTTP listing always pages.
func (s *Service) BucketsPage(offset, limit int) ([]Bucket, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := make([]*Bucket, 0, len(s.buckets))
	for _, b := range s.buckets {
		all = append(all, b)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	total := len(all)
	all = page(all, offset, limit)
	out := make([]Bucket, 0, len(all))
	for _, b := range all {
		cp := *b
		cp.ReportIDs = append([]string(nil), b.ReportIDs...)
		if b.Verdict != nil {
			v := *b.Verdict
			cp.Verdict = &v
		}
		out = append(out, cp)
	}
	return out, total
}

// ReportsPage returns one page of stored-report metadata (ordered by id,
// which is stable under concurrent ingest) plus the total count.
func (s *Service) ReportsPage(offset, limit int) ([]ReportMeta, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.reports))
	for id := range s.reports {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	total := len(ids)
	ids = page(ids, offset, limit)
	out := make([]ReportMeta, 0, len(ids))
	for _, id := range ids {
		m := s.reports[id]
		cp := *m
		if m.Verdict != nil {
			v := *m.Verdict
			cp.Verdict = &v
		}
		out = append(out, cp)
	}
	return out, total
}

// ReportsCursor returns up to limit stored-report metas with id strictly
// greater than after (lexicographic — ids are fixed-width hex, so this is
// also hash order), plus whether more remain. It backs the keyset
// pagination of GET /api/v1/reports: the service iterates in id order
// today, but clients only ever see opaque cursors, so the order is free
// to change.
func (s *Service) ReportsCursor(after string, limit int) (items []ReportMeta, more bool) {
	if limit <= 0 {
		limit = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.reports))
	for id := range s.reports {
		if id > after {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	more = len(ids) > limit
	if more {
		ids = ids[:limit]
	}
	items = make([]ReportMeta, 0, len(ids))
	for _, id := range ids {
		m := s.reports[id]
		cp := *m
		if m.Verdict != nil {
			v := *m.Verdict
			cp.Verdict = &v
		}
		items = append(items, cp)
	}
	return items, more
}

// BucketsCursor returns up to limit buckets strictly after the position
// (afterCount, afterKey) in the listing order — most-populated first,
// ties by key ascending — plus whether more remain. haveAfter false
// starts from the top. Counts move between pages under concurrent
// ingest; keyset pagination skips or repeats a moved bucket rather than
// shearing the whole page the way offsets would.
func (s *Service) BucketsCursor(afterCount int, afterKey string, haveAfter bool, limit int) (items []Bucket, more bool) {
	if limit <= 0 {
		limit = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	all := make([]*Bucket, 0, len(s.buckets))
	for _, b := range s.buckets {
		if haveAfter && !(b.Count < afterCount || (b.Count == afterCount && b.Key > afterKey)) {
			continue
		}
		all = append(all, b)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	more = len(all) > limit
	if more {
		all = all[:limit]
	}
	items = make([]Bucket, 0, len(all))
	for _, b := range all {
		cp := *b
		cp.ReportIDs = append([]string(nil), b.ReportIDs...)
		if b.Verdict != nil {
			v := *b.Verdict
			cp.Verdict = &v
		}
		items = append(items, cp)
	}
	return items, more
}

// page slices a window out of a listing.
func page[T any](all []T, offset, limit int) []T {
	if offset < 0 {
		offset = 0
	}
	if offset > len(all) {
		offset = len(all)
	}
	all = all[offset:]
	if limit > 0 && limit < len(all) {
		all = all[:limit]
	}
	return all
}

// Bucket returns one bucket by key.
func (s *Service) Bucket(key string) (Bucket, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[key]
	if !ok {
		return Bucket{}, false
	}
	cp := *b
	cp.ReportIDs = append([]string(nil), b.ReportIDs...)
	if b.Verdict != nil {
		v := *b.Verdict
		cp.Verdict = &v
	}
	return cp, true
}

// Report returns the metadata of one stored archive.
func (s *Service) Report(id string) (ReportMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.reports[id]
	if !ok {
		return ReportMeta{}, false
	}
	cp := *m
	if m.Verdict != nil {
		v := *m.Verdict
		cp.Verdict = &v
	}
	return cp, true
}

// BucketCount returns the number of buckets without copying them.
func (s *Service) BucketCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buckets)
}

// Pending returns the current replay backlog.
func (s *Service) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}
