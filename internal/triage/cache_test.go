package triage

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/kernel"
	"bugnet/internal/report"
)

// recordBlobAt records the crash demo with a given interval length, so
// tests can mint distinct archive contents for the same binary.
func recordBlobAt(t testing.TB, interval uint64) (*asm.Image, []byte) {
	t.Helper()
	img, err := asm.Assemble("crash.s", crashSource)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, _ := core.Record(img, kernel.Config{}, core.Config{IntervalLength: interval})
	if res.Crash == nil {
		t.Fatal("program did not crash")
	}
	blob, err := report.Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	return img, blob
}

// TestVerdictCacheRestartSkipsReplay is the rehydration property: after a
// restart, the recovery re-index must satisfy known reports from the
// persisted verdict cache without replaying — proven by giving the second
// service a resolver that cannot replay anything.
func TestVerdictCacheRestartSkipsReplay(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	dir := t.TempDir()

	s1, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s1.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s1.WaitIdle()
	m, _ := s1.Report(res.ID)
	want := m.Verdict
	if want == nil || want.State != VerdictDone {
		t.Fatalf("first verdict = %+v", want)
	}
	s1.Close()

	if _, err := os.Stat(filepath.Join(dir, "verdicts", res.ID+".json")); err != nil {
		t.Fatalf("verdict not persisted: %v", err)
	}

	// The poisoned resolver turns any replay into a failed verdict, so a
	// done verdict after restart can only have come from the cache.
	poisoned := func(core.BinaryID) (*asm.Image, error) {
		return nil, errors.New("resolver must not run: verdict should be cached")
	}
	s2, err := New(Config{Dir: dir, Workers: 1, Resolver: poisoned})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.WaitIdle()
	m2, ok := s2.Report(res.ID)
	if !ok {
		t.Fatal("restarted service lost the report")
	}
	if !reflect.DeepEqual(m2.Verdict, want) {
		t.Errorf("rehydrated verdict differs:\n got %+v\nwant %+v", m2.Verdict, want)
	}
}

// TestVerdictCacheEviction bounds the cache: at capacity 1, a second
// distinct report must evict the first — from memory and from disk — and
// the evicted report must replay again on restart.
func TestVerdictCacheEviction(t *testing.T) {
	img, blobA := recordBlobAt(t, 16)
	_, blobB := recordBlobAt(t, 32)
	reg := NewImageRegistry()
	reg.Register(img)
	dir := t.TempDir()

	before := mCacheEvictions.Value()
	s1, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve, VerdictCache: 1})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := s1.Ingest(blobA)
	if err != nil {
		t.Fatal(err)
	}
	s1.WaitIdle()
	resB, err := s1.Ingest(blobB)
	if err != nil {
		t.Fatal(err)
	}
	if resB.ID == resA.ID {
		t.Fatal("test needs two distinct archives")
	}
	s1.WaitIdle()
	if n := s1.vcache.len(); n != 1 {
		t.Errorf("cache holds %d entries at capacity 1", n)
	}
	if mCacheEvictions.Value() == before {
		t.Error("eviction not counted")
	}
	if _, err := os.Stat(filepath.Join(dir, "verdicts", resA.ID+".json")); !os.IsNotExist(err) {
		t.Error("evicted verdict file survived")
	}
	if _, err := os.Stat(filepath.Join(dir, "verdicts", resB.ID+".json")); err != nil {
		t.Errorf("retained verdict file missing: %v", err)
	}
	s1.Close()

	// Restart: B's verdict rehydrates; A must replay again (and can,
	// with a working resolver).
	s2, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve, VerdictCache: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.WaitIdle()
	for _, id := range []string{resA.ID, resB.ID} {
		m, ok := s2.Report(id)
		if !ok || m.Verdict == nil || m.Verdict.State != VerdictDone {
			t.Errorf("report %s after restart: %+v", id[:8], m.Verdict)
		}
	}
}

// TestVerdictCacheDisabled pins the opt-out: with a negative bound no
// cache exists and nothing is persisted.
func TestVerdictCacheDisabled(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve, VerdictCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.vcache != nil {
		t.Fatal("cache built despite negative bound")
	}
	res, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	if _, err := os.Stat(filepath.Join(dir, "verdicts", res.ID+".json")); !os.IsNotExist(err) {
		t.Error("verdict persisted with the cache disabled")
	}
}

// TestVerdictCacheIgnoresJunkFiles starts over a verdict directory
// holding junk: an unparsable entry and a foreign filename must not poison
// the cache (the junk entry is reclaimed, the foreign file left alone).
func TestVerdictCacheIgnoresJunkFiles(t *testing.T) {
	dir := t.TempDir()
	vdir := filepath.Join(dir, "verdicts")
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		t.Fatal(err)
	}
	junkID := "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
	os.WriteFile(filepath.Join(vdir, junkID+".json"), []byte("not json"), 0o644)
	os.WriteFile(filepath.Join(vdir, "notes.json"), []byte("keep me"), 0o644)

	s, err := New(Config{Dir: dir, Workers: 1, Resolver: NewImageRegistry().Resolve})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n := s.vcache.len(); n != 0 {
		t.Errorf("junk rehydrated into %d entries", n)
	}
	if _, err := os.Stat(filepath.Join(vdir, junkID+".json")); !os.IsNotExist(err) {
		t.Error("unparsable cache entry not reclaimed")
	}
	if _, err := os.Stat(filepath.Join(vdir, "notes.json")); err != nil {
		t.Error("foreign file removed from the verdict directory")
	}
}

// TestParallelReplayVerdictParity is the service-level determinism
// property: the verdict a parallel-replay service produces — state,
// reproduction, races, backtrace, instruction counts — is byte-identical
// to the sequential service's, for a single-threaded crash and for a
// multithreaded racy report.
func TestParallelReplayVerdictParity(t *testing.T) {
	img, _, stBlob := recordBlob(t)

	mtImg, err := asm.Assemble("mt.s", racySource)
	if err != nil {
		t.Fatal(err)
	}
	mtRes, mtRep, _ := core.Record(mtImg, kernel.Config{Cores: 2}, core.Config{IntervalLength: 64})
	if mtRes.Crash != nil {
		t.Fatalf("mt program crashed: %v", mtRes.Crash)
	}
	if len(mtRep.MRLs) == 0 {
		t.Fatal("racy program produced no MRLs")
	}
	mtBlob, err := report.Pack(mtRep)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewImageRegistry()
	reg.Register(img)
	reg.Register(mtImg)

	verdicts := func(parallelism int) map[string]*Verdict {
		s, err := New(Config{Dir: t.TempDir(), Workers: 2, Resolver: reg.Resolve,
			ReplayParallelism: parallelism, VerdictCache: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		out := make(map[string]*Verdict)
		for _, blob := range [][]byte{stBlob, mtBlob} {
			res, err := s.Ingest(blob)
			if err != nil {
				t.Fatal(err)
			}
			s.WaitIdle()
			m, _ := s.Report(res.ID)
			out[res.ID] = m.Verdict
		}
		return out
	}

	seq := verdicts(1)
	par := verdicts(8)
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("parallel verdicts differ from sequential:\n par: %+v\n seq: %+v", par, seq)
	}
	for id, v := range seq {
		if v == nil || v.State != VerdictDone {
			t.Errorf("report %s sequential verdict = %+v", id[:8], v)
		}
	}
}

// racySource shares an unsynchronized counter across two threads so the
// packed report carries MRLs and the triage replay runs race detection.
const racySource = `
        .data
shared: .word 0
done:   .word 0
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        li   s2, 30
ml:     la   t0, shared
        lw   t1, (t0)
        addi t1, t1, 1
        sw   t1, (t0)
        addi s2, s2, -1
        bnez s2, ml
        la   t0, done
dwait:  amoadd t1, zero, (t0)
        beqz t1, dwait
        la   t0, shared
        lw   a0, (t0)
        li   a7, 1
        syscall

worker: li   s2, 30
wl2:    la   t0, shared
        lw   t1, (t0)
        addi t1, t1, 1
        sw   t1, (t0)
        addi s2, s2, -1
        bnez s2, wl2
        la   t0, done
        li   t1, 1
        amoswap t2, t1, (t0)
        li   a0, 0
        li   a7, 1
        syscall
`
