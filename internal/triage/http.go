package triage

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"bugnet/internal/report"
)

// MaxUploadBytes bounds one archive upload. Field reports are the retained
// log window, which the recorder budgets to megabytes (paper §7.2); this
// is headroom, not a target.
const MaxUploadBytes = 64 << 20

// NewHandler exposes a Service over HTTP:
//
//	POST /reports        — upload one packed archive; responds with the
//	                       ingest result (201 new, 200 duplicate)
//	GET  /reports/{id}   — report metadata and verdict (?raw=1: the blob)
//	GET  /buckets        — all crash buckets, most-populated first
//	GET  /buckets/{key}  — one bucket
//	GET  /healthz        — liveness plus occupancy counters
//
// The handler is transport only; every decision lives in the Service, so
// tests drive it in-process with httptest and bugnet-serve just wraps it
// in http.ListenAndServe.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /reports", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxUploadBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge, "report exceeds upload limit")
			} else {
				// Transport hiccup mid-body: a 5xx tells the recorder the
				// report is still worth retrying.
				httpError(w, http.StatusInternalServerError, "body read failed: "+err.Error())
			}
			return
		}
		res, err := s.Ingest(data)
		switch {
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		case errors.Is(err, report.ErrBadArchive):
			// Unpack rejected it: the client sent garbage, not us.
			httpError(w, http.StatusBadRequest, err.Error())
			return
		case err != nil:
			// Store I/O failure (disk full, permissions): our fault, and a
			// 4xx would make a well-behaved recorder discard the report
			// instead of retrying.
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		code := http.StatusCreated
		if res.Duplicate {
			code = http.StatusOK
		}
		writeJSON(w, code, res)
	})

	mux.HandleFunc("GET /reports/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if r.URL.Query().Get("raw") == "1" {
			data, err := s.Store().Get(id)
			if err != nil {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
			return
		}
		m, ok := s.Report(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no such report")
			return
		}
		writeJSON(w, http.StatusOK, m)
	})

	mux.HandleFunc("GET /buckets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Buckets())
	})

	mux.HandleFunc("GET /buckets/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Bucket(r.PathValue("key"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such bucket")
			return
		}
		writeJSON(w, http.StatusOK, b)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Store().Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"reports":        st.RetainedCount,
			"retained_bytes": st.RetainedBytes,
			"evicted":        st.EvictedCount,
			"buckets":        s.BucketCount(),
			"pending":        s.Pending(),
		})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
