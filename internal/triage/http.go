package triage

import (
	"errors"
	"net/http"
	"os"
	"strconv"
	"time"

	"bugnet/internal/httpjson"
	"bugnet/internal/obs"
	"bugnet/internal/report"
	"bugnet/internal/timetravel"
)

// MaxUploadBytes bounds one archive upload. Field reports are the retained
// log window, which the recorder budgets to megabytes (paper §7.2); this
// is headroom, not a target.
const MaxUploadBytes = 64 << 20

// Pagination bounds for the listing endpoints: the server-side clamp
// keeps one request from serializing an unbounded store.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// Page is the envelope of a paginated listing.
type Page[T any] struct {
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
	Items  []T `json:"items"`
}

// pageParams parses ?offset=&limit= with server-side clamping.
func pageParams(r *http.Request) (offset, limit int) {
	q := r.URL.Query()
	offset, _ = strconv.Atoi(q.Get("offset"))
	if offset < 0 {
		offset = 0
	}
	limit, _ = strconv.Atoi(q.Get("limit"))
	if limit <= 0 {
		limit = defaultPageLimit
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	return offset, limit
}

// NewHandler exposes a Service over HTTP:
//
//	POST /reports        — upload one packed archive; responds with the
//	                       ingest result (201 new, 200 duplicate)
//	GET  /reports        — paginated report listing (?offset=&limit=)
//	GET  /reports/{id}   — report metadata and verdict (?raw=1: the blob)
//	GET  /buckets        — paginated crash buckets, most-populated first
//	GET  /buckets/{key}  — one bucket
//	GET  /healthz        — liveness plus occupancy counters
//
// The handler is transport only; every decision lives in the Service, so
// tests drive it in-process with httptest and bugnet-serve just wraps it
// in http.ListenAndServe.
func NewHandler(s *Service) http.Handler {
	return newHandler(s, nil)
}

// NewHandlerWithDebug additionally mounts the remote-debug API
// (/debug/sessions...) on the same handler — the wiring that turns stored
// field reports into interactive time-travel sessions.
func NewHandlerWithDebug(s *Service, debug *timetravel.Manager) http.Handler {
	return newHandler(s, debug)
}

func newHandler(s *Service, debug *timetravel.Manager) http.Handler {
	mux := http.NewServeMux()
	if debug != nil {
		timetravel.RegisterRoutes(mux, debug)
	}

	mux.HandleFunc("POST /reports", func(w http.ResponseWriter, r *http.Request) {
		// The body streams straight to the service's disk spool while it
		// is hashed — an upload's memory cost is a copy buffer, not the
		// archive, however large the recorded window was.
		res, err := s.IngestReader(http.MaxBytesReader(w, r.Body, MaxUploadBytes))
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			httpjson.Error(w, http.StatusRequestEntityTooLarge, "report exceeds upload limit")
			return
		case errors.Is(err, ErrClosed):
			httpjson.Error(w, http.StatusServiceUnavailable, err.Error())
			return
		case errors.Is(err, report.ErrBadArchive):
			// Unpack rejected it: the client sent garbage, not us.
			httpjson.Error(w, http.StatusBadRequest, err.Error())
			return
		case err != nil:
			// Store I/O failure (disk full, permissions): our fault, and a
			// 4xx would make a well-behaved recorder discard the report
			// instead of retrying.
			httpjson.Error(w, http.StatusInternalServerError, err.Error())
			return
		}
		code := http.StatusCreated
		if res.Duplicate {
			code = http.StatusOK
		}
		httpjson.Write(w, code, res)
	})

	mux.HandleFunc("GET /reports/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if r.URL.Query().Get("raw") == "1" {
			// Stream the blob straight from the store file, pinned so
			// eviction cannot delete it mid-download — a download's
			// memory cost is a copy buffer, not the archive.
			if !s.Store().Pin(id) {
				httpjson.Error(w, http.StatusNotFound, "no stored report "+id)
				return
			}
			defer s.Store().Unpin(id)
			path, ok := s.Store().Path(id)
			if !ok {
				httpjson.Error(w, http.StatusNotFound, "no stored report "+id)
				return
			}
			f, err := os.Open(path)
			if err != nil {
				httpjson.Error(w, http.StatusInternalServerError, err.Error())
				return
			}
			defer f.Close()
			w.Header().Set("Content-Type", "application/octet-stream")
			http.ServeContent(w, r, id+".bnar", time.Time{}, f)
			return
		}
		m, ok := s.Report(id)
		if !ok {
			httpjson.Error(w, http.StatusNotFound, "no such report")
			return
		}
		httpjson.Write(w, http.StatusOK, m)
	})

	mux.HandleFunc("GET /reports", func(w http.ResponseWriter, r *http.Request) {
		offset, limit := pageParams(r)
		items, total := s.ReportsPage(offset, limit)
		httpjson.Write(w, http.StatusOK, Page[ReportMeta]{Total: total, Offset: offset, Limit: limit, Items: items})
	})

	mux.HandleFunc("GET /buckets", func(w http.ResponseWriter, r *http.Request) {
		offset, limit := pageParams(r)
		items, total := s.BucketsPage(offset, limit)
		httpjson.Write(w, http.StatusOK, Page[Bucket]{Total: total, Offset: offset, Limit: limit, Items: items})
	})

	mux.HandleFunc("GET /buckets/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Bucket(r.PathValue("key"))
		if !ok {
			httpjson.Error(w, http.StatusNotFound, "no such bucket")
			return
		}
		httpjson.Write(w, http.StatusOK, b)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Store().Stats()
		status, code := "ok", http.StatusOK
		body := map[string]any{
			"reports":        st.RetainedCount,
			"retained_bytes": st.RetainedBytes,
			"evicted":        st.EvictedCount,
			"buckets":        s.BucketCount(),
			"pending":        s.Pending(),
		}
		if err := s.Err(); err != nil {
			// The store has swallowed a disk failure: the process is up but
			// evidence is being lost — degraded, so orchestrators restart it.
			status, code = "degraded", http.StatusServiceUnavailable
			body["error"] = err.Error()
		}
		body["status"] = status
		httpjson.Write(w, code, body)
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness is stricter than liveness: can this instance take an
		// upload (spool writable, store healthy) and open a debug session
		// (capacity left) right now?
		checks := map[string]string{"store": "ok", "spool": "ok"}
		ready := true
		if err := s.Err(); err != nil {
			checks["store"] = err.Error()
			ready = false
		}
		if err := s.SpoolHealthy(); err != nil {
			checks["spool"] = err.Error()
			ready = false
		}
		if debug != nil {
			open, max := debug.Capacity()
			checks["debug_sessions"] = "ok"
			if open >= max {
				checks["debug_sessions"] = "at capacity"
				ready = false
			}
		}
		code := http.StatusOK
		if !ready {
			code = http.StatusServiceUnavailable
		}
		httpjson.Write(w, code, map[string]any{"ready": ready, "checks": checks})
	})

	mux.Handle("GET /metrics", obs.Handler())

	return mux
}
