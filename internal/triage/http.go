package triage

import (
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"bugnet/internal/httpjson"
	"bugnet/internal/obs"
	"bugnet/internal/report"
	"bugnet/internal/timetravel"
)

// MaxUploadBytes bounds one archive upload. Field reports are the retained
// log window, which the recorder budgets to megabytes (paper §7.2); this
// is headroom, not a target.
const MaxUploadBytes = 64 << 20

// Pagination bounds for the listing endpoints: the server-side clamp
// keeps one request from serializing an unbounded store.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// Listing is the unified envelope of every paginated collection: a page
// of items plus an opaque cursor naming the next page ("" on the last).
// Clients must treat the cursor as a black box — the token encodes the
// store's current iteration order, which is free to change between
// releases without breaking pagination.
type Listing[T any] struct {
	Items      []T    `json:"items"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// Cursor tokens are versioned ("r1:"/"b1:") base64 so a format change
// invalidates old cursors loudly (400 bad_request) instead of silently
// mis-seeking.
func encodeCursor(token string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(token))
}

func decodeCursor(c string) (string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(c)
	if err != nil {
		return "", fmt.Errorf("malformed cursor")
	}
	return string(raw), nil
}

// limitParam parses ?limit= with the server-side clamp.
func limitParam(r *http.Request) int {
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	if limit <= 0 {
		limit = defaultPageLimit
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	return limit
}

// NewHandler exposes a Service over HTTP. The full surface (all paths
// also reachable without the /api/v1 prefix as deprecated aliases):
//
//	POST /api/v1/reports        — upload one packed archive (201 new, 200 duplicate)
//	GET  /api/v1/reports        — report listing (?cursor=&limit=, id order)
//	GET  /api/v1/reports/{id}   — report metadata and verdict (?raw=1: the blob)
//	GET  /api/v1/buckets        — crash buckets (?cursor=&limit=, most-populated first)
//	GET  /api/v1/buckets/{key}  — one bucket
//	GET  /healthz               — liveness plus occupancy counters
//	GET  /readyz                — readiness (spool writable, capacity left)
//	GET  /metrics               — Prometheus exposition
//
// Failures all use the httpjson error envelope with stable codes. The
// handler is transport only; every decision lives in the Service, so
// tests drive it in-process with httptest and bugnet-serve just wraps it
// in http.ListenAndServe.
func NewHandler(s *Service) http.Handler {
	return newHandler(s, nil)
}

// NewHandlerWithDebug additionally mounts the remote-debug API
// (/api/v1/debug/sessions...) on the same handler — the wiring that turns
// stored field reports into interactive time-travel sessions.
func NewHandlerWithDebug(s *Service, debug *timetravel.Manager) http.Handler {
	return newHandler(s, debug)
}

func newHandler(s *Service, debug *timetravel.Manager) http.Handler {
	mux := http.NewServeMux()
	if debug != nil {
		timetravel.RegisterRoutes(mux, debug)
	}

	httpjson.Handle(mux, "POST /reports", func(w http.ResponseWriter, r *http.Request) {
		// A degraded store sheds instead of acking writes it would lose;
		// Healthy re-probes the disk so a healed fault restores service.
		if err := s.Healthy(); err != nil {
			httpjson.Fail(w, r, http.StatusServiceUnavailable, httpjson.CodeUnavailable,
				"store degraded: "+err.Error())
			return
		}
		// The body streams straight to the service's disk spool while it
		// is hashed — an upload's memory cost is a copy buffer, not the
		// archive, however large the recorded window was.
		res, err := s.IngestReader(http.MaxBytesReader(w, r.Body, MaxUploadBytes))
		if !WriteIngestError(w, r, err) {
			return
		}
		code := http.StatusCreated
		if res.Duplicate {
			code = http.StatusOK
		}
		httpjson.Write(w, code, res)
	})

	httpjson.Handle(mux, "GET /reports/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if r.URL.Query().Get("raw") == "1" {
			ServeRaw(s, w, r, id)
			return
		}
		m, ok := s.Report(id)
		if !ok {
			httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no such report")
			return
		}
		httpjson.Write(w, http.StatusOK, m)
	})

	httpjson.Handle(mux, "GET /reports", func(w http.ResponseWriter, r *http.Request) {
		after := ""
		if c := r.URL.Query().Get("cursor"); c != "" {
			token, err := decodeCursor(c)
			if err != nil || !strings.HasPrefix(token, "r1:") {
				httpjson.Fail(w, r, http.StatusBadRequest, httpjson.CodeBadRequest, "invalid cursor")
				return
			}
			after = token[len("r1:"):]
		}
		limit := limitParam(r)
		items, more := s.ReportsCursor(after, limit)
		out := Listing[ReportMeta]{Items: items}
		if more {
			out.NextCursor = encodeCursor("r1:" + items[len(items)-1].ID)
		}
		httpjson.Write(w, http.StatusOK, out)
	})

	httpjson.Handle(mux, "GET /buckets", func(w http.ResponseWriter, r *http.Request) {
		var afterCount int
		var afterKey string
		haveAfter := false
		if c := r.URL.Query().Get("cursor"); c != "" {
			token, err := decodeCursor(c)
			if err != nil || !strings.HasPrefix(token, "b1:") {
				httpjson.Fail(w, r, http.StatusBadRequest, httpjson.CodeBadRequest, "invalid cursor")
				return
			}
			countStr, key, ok := strings.Cut(token[len("b1:"):], ":")
			n, convErr := strconv.Atoi(countStr)
			if !ok || convErr != nil {
				httpjson.Fail(w, r, http.StatusBadRequest, httpjson.CodeBadRequest, "invalid cursor")
				return
			}
			afterCount, afterKey, haveAfter = n, key, true
		}
		limit := limitParam(r)
		items, more := s.BucketsCursor(afterCount, afterKey, haveAfter, limit)
		out := Listing[Bucket]{Items: items}
		if more {
			last := items[len(items)-1]
			out.NextCursor = encodeCursor(fmt.Sprintf("b1:%d:%s", last.Count, last.Key))
		}
		httpjson.Write(w, http.StatusOK, out)
	})

	httpjson.Handle(mux, "GET /buckets/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Bucket(r.PathValue("key"))
		if !ok {
			httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no such bucket")
			return
		}
		httpjson.Write(w, http.StatusOK, b)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Store().Stats()
		status, code := "ok", http.StatusOK
		body := map[string]any{
			"reports":        st.RetainedCount,
			"retained_bytes": st.RetainedBytes,
			"evicted":        st.EvictedCount,
			"buckets":        s.BucketCount(),
			"pending":        s.Pending(),
		}
		if err := s.Healthy(); err != nil {
			// The store has seen a disk failure the re-probe could not
			// clear: the process is up but evidence is being lost —
			// degraded, so orchestrators restart (or drain) it.
			status, code = "degraded", http.StatusServiceUnavailable
			body["error"] = err.Error()
		}
		body["status"] = status
		httpjson.Write(w, code, body)
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness is stricter than liveness: can this instance take an
		// upload (spool writable, store healthy) and open a debug session
		// (capacity left) right now? Each failing condition contributes a
		// structured reason so operators see why traffic is being shed.
		WriteReadiness(w, ReadyReasons(s, debug))
	})

	mux.Handle("GET /metrics", obs.Handler())

	return mux
}

// Readiness is the structured document GET /readyz serves: ready, or
// not with the reasons traffic is being shed.
type Readiness struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// ReadyReasons collects every reason this instance should not take
// traffic — the service-level conditions plus debug-session saturation.
// The cluster layer reuses it (appending peer-level reasons) so a
// node's /readyz means the same thing with or without a ring.
func ReadyReasons(s *Service, debug *timetravel.Manager) []string {
	reasons := s.ReadyReasons()
	if debug != nil {
		if open, max := debug.Capacity(); open >= max {
			reasons = append(reasons, fmt.Sprintf("debug sessions at capacity (%d/%d)", open, max))
		}
	}
	return reasons
}

// WriteReadiness serves a readiness document: 200 when no reasons
// remain, 503 listing them otherwise.
func WriteReadiness(w http.ResponseWriter, reasons []string) {
	code := http.StatusOK
	if len(reasons) > 0 {
		code = http.StatusServiceUnavailable
	}
	httpjson.Write(w, code, Readiness{Ready: len(reasons) == 0, Reasons: reasons})
}

// WriteIngestError maps an ingest failure onto the error envelope,
// reporting whether the caller may proceed (err was nil). Shared with the
// cluster layer so the coordinator's local writes and a single node's
// direct ingest fail identically on the wire.
func WriteIngestError(w http.ResponseWriter, r *http.Request, err error) bool {
	var tooBig *http.MaxBytesError
	switch {
	case err == nil:
		return true
	case errors.As(err, &tooBig):
		httpjson.Fail(w, r, http.StatusRequestEntityTooLarge, httpjson.CodeTooLarge, "report exceeds upload limit")
	case errors.Is(err, ErrClosed):
		httpjson.Fail(w, r, http.StatusServiceUnavailable, httpjson.CodeUnavailable, err.Error())
	case errors.Is(err, report.ErrBadArchive):
		// Unpack rejected it: the client sent garbage, not us.
		httpjson.Fail(w, r, http.StatusBadRequest, httpjson.CodeBadRequest, err.Error())
	default:
		// Store I/O failure (disk full, permissions): our fault, and a
		// 4xx would make a well-behaved recorder discard the report
		// instead of retrying.
		httpjson.Fail(w, r, http.StatusInternalServerError, httpjson.CodeInternal, err.Error())
	}
	return false
}

// ServeRaw streams one stored blob from the store file, pinned so
// eviction cannot delete it mid-download — a download's memory cost is a
// copy buffer, not the archive. The cluster layer calls it for locally
// held replicas.
func ServeRaw(s *Service, w http.ResponseWriter, r *http.Request, id string) {
	if !s.Store().Pin(id) {
		httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no stored report "+id)
		return
	}
	defer s.Store().Unpin(id)
	path, ok := s.Store().Path(id)
	if !ok {
		httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no stored report "+id)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		httpjson.Fail(w, r, http.StatusInternalServerError, httpjson.CodeInternal, err.Error())
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, id+".bnar", time.Time{}, f)
}
