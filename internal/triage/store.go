package triage

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"bugnet/internal/faultinject"
	"bugnet/internal/report"
)

// Store is a sharded, content-addressed, byte-budgeted archive store.
//
// Blobs are keyed by their archive ID (hex SHA-256 of the packed bytes)
// and fanned out over two levels of hash-prefix directories
// (root/ab/cd/abcd….bnar) so no single directory accumulates millions of
// entries under fleet-scale ingest. Identical uploads collapse onto one
// file.
//
// Retention follows the logstore discipline (paper §4.7): the store is a
// budgeted FIFO, and when retained bytes exceed the budget the oldest
// blobs are deleted — crash evidence, like the replay window itself, is a
// sliding resource. The newest blob is never evicted, so a single
// over-budget report is still ingestible.
type Store struct {
	mu     sync.Mutex
	root   string
	budget int64           // <= 0: unlimited
	fsys   *faultinject.FS // nil outside chaos runs: direct os calls

	index map[string]*blobInfo
	order []string // insertion order, oldest first; eviction order key
	pins  map[string]int
	seq   uint64
	stats StoreStats

	// onEvict, if set, is called (with s.mu held) for every evicted blob;
	// the service uses it to drop per-report metadata in step.
	onEvict func(id string)

	// err is the most recent disk failure (a blob write, rename, or
	// reclaim). It clears when a later write succeeds or when Healthy's
	// probe finds the disk writable again, so a node degraded by a
	// transient fault recovers without a restart.
	err error

	// probeEvery rate-limits Healthy's disk probe on a degraded store;
	// lastProbe is the previous probe time. Tests set probeEvery to zero
	// to probe on every call.
	probeEvery time.Duration
	lastProbe  time.Time

	// strays are valid-looking blob files found at non-canonical paths
	// during OpenStore; recovery re-ingests then removes them.
	strays []string
}

// blobInfo is the in-memory index entry for one stored archive.
type blobInfo struct {
	id    string
	bytes int64
	seq   uint64
}

// StoreStats mirrors logstore.Stats for the disk store.
type StoreStats struct {
	RetainedBytes int64
	RetainedCount int
	EvictedBytes  int64
	EvictedCount  int
	TotalBytes    int64
	TotalCount    int
}

const blobExt = ".bnar"

var idPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// OpenStore opens (creating if needed) a store rooted at dir. Blobs
// already on disk from a previous run are re-indexed, oldest first by
// modification time, so a restarted server resumes with its evidence
// intact.
func OpenStore(dir string, budget int64) (*Store, error) {
	return openStore(dir, budget, nil)
}

// openStore is OpenStore with an optional fault-injection filesystem.
func openStore(dir string, budget int64, fsys *faultinject.FS) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{root: dir, budget: budget, fsys: fsys,
		index: make(map[string]*blobInfo), pins: make(map[string]int),
		probeEvery: time.Second}
	type existing struct {
		id    string
		bytes int64
		mtime int64
	}
	var found []existing
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if filepath.Ext(path) == ".tmp" {
			// A crash between write and rename leaves a half blob; it was
			// never indexed, so reclaim it rather than leak disk forever.
			os.Remove(path)
			return nil
		}
		if filepath.Ext(path) != blobExt {
			return nil
		}
		id := d.Name()[:len(d.Name())-len(blobExt)]
		if !idPattern.MatchString(id) {
			return nil // foreign file; leave it alone
		}
		if path != s.path(id) {
			// A blob not at its canonical shard location (botched restore)
			// can never be served by Get. Don't index it — but don't
			// destroy evidence either: park it for the service's recovery
			// pass to re-ingest under the correct address.
			s.strays = append(s.strays, path)
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		found = append(found, existing{id, info.Size(), info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, f := range found {
		if _, ok := s.index[f.id]; ok {
			continue // same id encountered twice; index and count it once
		}
		s.seq++
		s.index[f.id] = &blobInfo{id: f.id, bytes: f.bytes, seq: s.seq}
		s.order = append(s.order, f.id)
		s.stats.RetainedBytes += f.bytes
		s.stats.RetainedCount++
		s.stats.TotalBytes += f.bytes
		s.stats.TotalCount++
	}
	s.evictLocked()
	s.syncStoreGauges()
	return s, nil
}

// fail records a disk failure; the store keeps serving best-effort
// afterwards and sheds writes until the disk proves healthy again.
// failLocked is for callers holding s.mu.
func (s *Store) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

func (s *Store) failLocked(err error) {
	s.err = err
}

// clearErr records a successful write: whatever was wrong with the disk
// is no longer, so the degraded signal drops.
func (s *Store) clearErr() {
	s.mu.Lock()
	s.err = nil
	s.mu.Unlock()
}

// Err returns the most recent disk failure the store has seen — the
// degraded signal behind GET /healthz. A store that cannot write or
// reclaim blobs is still readable, but new evidence is being lost.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Healthy reports whether the store can accept writes, returning the
// degrading error otherwise. A degraded store re-probes the disk (rate
// limited to one probe per probeEvery) with a small create/write/remove
// cycle in the store root; a successful probe clears the error so a
// healed disk brings the node back without a restart. Shedding on
// Healthy rather than on Err alone matters under degradation: a node
// that sheds all writes would otherwise never see the success that
// clears the error.
func (s *Store) Healthy() error {
	s.mu.Lock()
	if s.err == nil {
		s.mu.Unlock()
		return nil
	}
	now := time.Now()
	if s.probeEvery > 0 && now.Sub(s.lastProbe) < s.probeEvery {
		err := s.err
		s.mu.Unlock()
		return err
	}
	s.lastProbe = now
	s.mu.Unlock()

	if perr := s.probe(); perr != nil {
		s.fail(perr)
		return perr
	}
	s.clearErr()
	return nil
}

// probe checks disk writability with a create/write/remove cycle.
func (s *Store) probe() error {
	f, err := s.fsys.CreateTemp(s.root, "probe-*.tmp")
	if err != nil {
		return err
	}
	name := f.Name()
	_, werr := f.Write([]byte("ok"))
	cerr := f.Close()
	rerr := s.fsys.Remove(name)
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	return rerr
}

// path returns the sharded location of a blob.
func (s *Store) path(id string) string {
	return filepath.Join(s.root, id[:2], id[2:4], id+blobExt)
}

// Put stores an archive blob under its content address. It returns the ID
// and whether the blob was already present (the dedup case). Eviction runs
// after a successful write.
//
// Disk I/O happens outside the store lock so one slow blob write cannot
// stall Has/Get/Stats (and the health endpoint) behind it. Two concurrent
// Puts of the same content race benignly: each writes its own temp file
// and renames onto the same content-addressed path with identical bytes;
// the second to reach the index reports existed.
func (s *Store) Put(data []byte) (id string, existed bool, err error) {
	return s.PutWithID(report.ID(data), data)
}

// PutWithID is Put for callers that already computed the content address,
// sparing a second SHA-256 over the blob on the ingest hot path. The id
// must be report.ID(data).
func (s *Store) PutWithID(id string, data []byte) (_ string, existed bool, err error) {
	s.mu.Lock()
	_, ok := s.index[id]
	s.mu.Unlock()
	if ok {
		return id, true, nil
	}
	p := s.path(id)
	if err := s.fsys.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		s.fail(err)
		return "", false, err
	}
	// Write-then-rename so a crashed server never leaves a half blob
	// under a valid content address.
	tmp, err := s.fsys.CreateTemp(filepath.Dir(p), id+".*.tmp")
	if err != nil {
		s.fail(err)
		return "", false, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.fail(err)
		return "", false, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.fail(err)
		return "", false, err
	}
	if err := s.fsys.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		s.fail(err)
		return "", false, err
	}
	s.clearErr()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[id]; ok {
		return id, true, nil // a concurrent identical upload indexed it first
	}
	s.seq++
	s.index[id] = &blobInfo{id: id, bytes: int64(len(data)), seq: s.seq}
	s.order = append(s.order, id)
	s.stats.RetainedBytes += int64(len(data))
	s.stats.RetainedCount++
	s.stats.TotalBytes += int64(len(data))
	s.stats.TotalCount++
	s.evictLocked()
	s.syncStoreGauges()
	return id, false, nil
}

// AdoptFile moves an already-written spool file into the store under its
// content address (the caller computed id while streaming the upload to
// src). The blob never transits memory: same-filesystem adoption is one
// rename. src is consumed — renamed away on success, deleted when the
// content already existed, and deleted after the fallback copy.
func (s *Store) AdoptFile(id string, src string) (existed bool, err error) {
	s.mu.Lock()
	_, ok := s.index[id]
	s.mu.Unlock()
	if ok {
		os.Remove(src)
		return true, nil
	}
	fi, err := os.Stat(src)
	if err != nil {
		return false, err
	}
	p := s.path(id)
	if err := s.fsys.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		s.fail(err)
		return false, err
	}
	if err := s.fsys.Rename(src, p); err != nil {
		// Cross-device spool (operator pointed -log-dir at another disk):
		// fall back to a copy through memory.
		data, rerr := os.ReadFile(src)
		if rerr != nil {
			return false, err
		}
		defer os.Remove(src)
		_, existed, perr := s.PutWithID(id, data)
		return existed, perr
	}
	s.clearErr()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[id]; ok {
		return true, nil // a concurrent identical upload indexed it first
	}
	s.seq++
	s.index[id] = &blobInfo{id: id, bytes: fi.Size(), seq: s.seq}
	s.order = append(s.order, id)
	s.stats.RetainedBytes += fi.Size()
	s.stats.RetainedCount++
	s.stats.TotalBytes += fi.Size()
	s.stats.TotalCount++
	s.evictLocked()
	s.syncStoreGauges()
	return false, nil
}

// Get reads a stored blob. Unknown (including malformed) ids are a
// not-found error; path() may only see indexed ids, which are well-formed.
func (s *Store) Get(id string) ([]byte, error) {
	s.mu.Lock()
	_, ok := s.index[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("triage: no stored report %q", id)
	}
	return os.ReadFile(s.path(id))
}

// Path returns the on-disk location of a retained blob, for streaming
// readers (report.OpenFile) that replay straight from the store file.
// Callers should Pin the id first so eviction cannot delete the file
// mid-read.
func (s *Store) Path(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[id]; !ok {
		return "", false
	}
	return s.path(id), true
}

// Pin excludes a blob from budget eviction until every matching Unpin
// runs; pins nest. Open debug sessions pin the report they replay so
// interactive debugging never races the budget. Pinning an unknown id
// reports false. Pinned bytes still count against the budget, so a flood
// of pins can hold the store over budget until the sessions close —
// bounded by the session layer's concurrency cap.
func (s *Store) Pin(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[id]; !ok {
		return false
	}
	s.pins[id]++
	mStorePinned.Set(int64(len(s.pins)))
	return true
}

// Unpin drops one pin and re-runs eviction, so blobs kept alive past the
// budget by a debug session age out as soon as it closes.
func (s *Store) Unpin(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.pins[id]; ok {
		if n <= 1 {
			delete(s.pins, id)
		} else {
			s.pins[id] = n - 1
		}
	}
	s.evictLocked()
	s.syncStoreGauges()
}

// Pinned reports whether a blob currently holds pins.
func (s *Store) Pinned(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pins[id] > 0
}

// Has reports whether a blob is retained.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// Stats returns occupancy counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Strays returns the non-canonical blob files found at open time.
func (s *Store) Strays() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.strays...)
}

// IDs returns the retained blob IDs, oldest first.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Delete removes one blob outright, counting it as evicted. The service
// uses it to reclaim blobs that no longer decode at recovery; undecodable
// bytes serve no session, so Delete ignores pins.
func (s *Store) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bi, ok := s.index[id]
	if !ok {
		return
	}
	delete(s.index, id)
	delete(s.pins, id)
	for i, x := range s.order {
		if x == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.stats.RetainedBytes -= bi.bytes
	s.stats.RetainedCount--
	s.stats.EvictedBytes += bi.bytes
	s.stats.EvictedCount++
	mStoreEvictions.Inc()
	if err := s.fsys.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		s.failLocked(err)
	}
	s.syncStoreGauges()
}

// evictLocked deletes oldest blobs until the budget is met, sparing the
// newest and skipping pinned blobs (open debug sessions hold them).
// Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.budget <= 0 {
		return
	}
	i := 0
	for s.stats.RetainedBytes > s.budget && i < len(s.order)-1 {
		id := s.order[i]
		if s.pins[id] > 0 {
			i++
			continue
		}
		s.order = append(s.order[:i], s.order[i+1:]...)
		bi := s.index[id]
		delete(s.index, id)
		s.stats.RetainedBytes -= bi.bytes
		s.stats.RetainedCount--
		s.stats.EvictedBytes += bi.bytes
		s.stats.EvictedCount++
		mStoreEvictions.Inc()
		if err := s.fsys.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
			s.failLocked(err)
		}
		if s.onEvict != nil {
			s.onEvict(id)
		}
	}
	s.syncStoreGauges()
}
