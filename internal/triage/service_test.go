package triage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/fll"
	"bugnet/internal/kernel"
	"bugnet/internal/report"
)

const crashSource = `
        .data
tbl:    .word 3, 5, 7, 0
        .text
main:   la   t0, tbl
        li   s0, 0
sum:    lw   t1, (t0)
        beqz t1, done
        add  s0, s0, t1
        addi t0, t0, 4
        j    sum
done:   la   t2, tbl
        lw   t3, 12(t2)
boom:   lw   a0, (t3)
`

// recordBlob records the crash demo and returns its image, report, and
// packed archive.
func recordBlob(t testing.TB) (*asm.Image, *core.CrashReport, []byte) {
	t.Helper()
	img, err := asm.Assemble("crash.s", crashSource)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	res, rep, _ := core.Record(img, kernel.Config{}, core.Config{IntervalLength: 16})
	if res.Crash == nil {
		t.Fatal("program did not crash")
	}
	blob, err := report.Pack(rep)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return img, rep, blob
}

func newService(t testing.TB, reg *ImageRegistry) *Service {
	t.Helper()
	s, err := New(Config{Dir: t.TempDir(), Workers: 2, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestIngestTriageVerdict(t *testing.T) {
	img, rep, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)

	res, err := s.Ingest(blob)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if res.Duplicate {
		t.Error("first ingest marked duplicate")
	}
	s.WaitIdle()

	m, ok := s.Report(res.ID)
	if !ok {
		t.Fatal("report meta missing")
	}
	v := m.Verdict
	if v == nil || v.State != VerdictDone {
		t.Fatalf("verdict = %+v", v)
	}
	if !v.Reproduced || !v.MatchesReported {
		t.Errorf("crash did not reproduce: %+v", v)
	}
	if v.PC != rep.Crash.Fault.PC {
		t.Errorf("verdict pc %#x, recorded %#x", v.PC, rep.Crash.Fault.PC)
	}
	if len(v.Backtrace) == 0 {
		t.Error("no backtrace")
	} else {
		last := v.Backtrace[len(v.Backtrace)-1]
		if last.PC != rep.Crash.Fault.PC {
			t.Errorf("backtrace ends at %#x, want faulting pc %#x", last.PC, rep.Crash.Fault.PC)
		}
		if !strings.HasPrefix(last.Disasm, "lw") {
			t.Errorf("faulting instruction disassembles to %q", last.Disasm)
		}
	}
}

func TestIngestDeduplicatesIntoBucket(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)

	r1, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Duplicate || r2.ID != r1.ID || r2.BucketKey != r1.BucketKey {
		t.Fatalf("duplicate ingest: %+v vs %+v", r2, r1)
	}
	s.WaitIdle()

	bs := s.Buckets()
	if len(bs) != 1 {
		t.Fatalf("%d buckets, want 1", len(bs))
	}
	if bs[0].Count != 2 {
		t.Errorf("bucket count %d, want 2", bs[0].Count)
	}
	if len(bs[0].ReportIDs) != 1 {
		t.Errorf("bucket stores %d payload IDs, want 1", len(bs[0].ReportIDs))
	}
	if st := s.Store().Stats(); st.RetainedCount != 1 {
		t.Errorf("store retained %d payloads, want 1", st.RetainedCount)
	}
}

func TestIngestUnknownBinaryFailsTriage(t *testing.T) {
	_, _, blob := recordBlob(t)
	s := newService(t, NewImageRegistry()) // empty: nothing resolvable

	res, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	m, _ := s.Report(res.ID)
	if m.Verdict == nil || m.Verdict.State != VerdictFailed {
		t.Fatalf("verdict = %+v, want failed", m.Verdict)
	}
	if !strings.Contains(m.Verdict.Error, "no registered binary") {
		t.Errorf("error = %q", m.Verdict.Error)
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	s := newService(t, NewImageRegistry())
	if _, err := s.Ingest([]byte("not an archive")); err == nil {
		t.Fatal("garbage accepted")
	}
	if st := s.Store().Stats(); st.TotalCount != 0 {
		t.Error("garbage reached the store")
	}
}

func TestServiceRestartRecoversFromDisk(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	dir := t.TempDir()

	s1, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s1.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s1.WaitIdle()
	s1.Close()

	s2, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.WaitIdle()
	m, ok := s2.Report(res.ID)
	if !ok {
		t.Fatal("restarted service lost the report")
	}
	if m.Verdict == nil || m.Verdict.State != VerdictDone || !m.Verdict.Reproduced {
		t.Fatalf("restarted verdict = %+v", m.Verdict)
	}
	if bs := s2.Buckets(); len(bs) != 1 || bs[0].Count != 1 {
		t.Fatalf("restarted buckets = %+v", bs)
	}
}

func TestRecoveryReclaimsUndecodableBlobs(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	dir := t.TempDir()

	s1, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s1.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s1.WaitIdle()
	s1.Close()

	// A garbage file wearing a valid content-address name.
	fake := strings.Repeat("ab", 32)
	p := filepath.Join(dir, fake[:2], fake[2:4], fake+".bnar")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("not an archive"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Dir: dir, Workers: 1, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.WaitIdle() // recovery runs in the background
	if s2.Store().Has(fake) {
		t.Error("undecodable blob survived recovery")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("undecodable blob file not reclaimed")
	}
	if !s2.Store().Has(good.ID) {
		t.Error("valid blob lost during recovery")
	}
}

func TestIngestAfterCloseFails(t *testing.T) {
	_, _, blob := recordBlob(t)
	s, err := New(Config{Dir: t.TempDir(), Workers: 1, Resolver: NewImageRegistry().Resolve})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Ingest(blob); err != ErrClosed {
		t.Fatalf("Ingest after Close: %v", err)
	}
}

func TestSignatureBucketsDistinguishCrashSites(t *testing.T) {
	img, rep, _ := recordBlob(t)
	sig := SignatureOf(rep)
	if sig.PC != rep.Crash.Fault.PC || sig.Binary != core.IdentifyBinary(img) {
		t.Errorf("signature %+v", sig)
	}
	other := sig
	other.PC++
	if sig.Key() == other.Key() {
		t.Error("different fault PCs share a bucket key")
	}
	// Key must be stable and URL-safe.
	if k := sig.Key(); strings.ContainsAny(k, " /?#%") {
		t.Errorf("bucket key %q is not URL-safe", k)
	}
}

func TestReplayWindowBudget(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s, err := New(Config{Dir: t.TempDir(), Workers: 1, Resolver: reg.Resolve,
		MaxReplayWindow: 10}) // far below the demo's ~60-instruction window
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	res, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	m, _ := s.Report(res.ID)
	if m.Verdict == nil || m.Verdict.State != VerdictFailed ||
		!strings.Contains(m.Verdict.Error, "exceeds the 10-instruction budget") {
		t.Fatalf("verdict = %+v, want budget failure", m.Verdict)
	}
}

func TestReplayWindowBudgetOverflowBypass(t *testing.T) {
	// Two FLLs each claiming Length 2^63 wrap a naive uint64 sum to 0;
	// the budget check must still reject the report.
	img, rep, _ := recordBlob(t)
	l0, err := rep.FLLs[0][0].Open()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		huge := *l0
		huge.Length = 1 << 63
		rep.FLLs[0] = append(rep.FLLs[0], fll.NewRef(&huge))
	}
	blob, err := report.Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)
	res, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	m, _ := s.Report(res.ID)
	if m.Verdict == nil || m.Verdict.State != VerdictFailed ||
		!strings.Contains(m.Verdict.Error, "budget") {
		t.Fatalf("verdict = %+v, want budget failure", m.Verdict)
	}
}

func TestEvictedThenReuploadedReportIsRetriaged(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s, err := New(Config{Dir: t.TempDir(), Workers: 1, Resolver: reg.Resolve,
		Budget: int64(len(blob))}) // exactly one report fits
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	first, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()

	// A different (clean-run) report pushes the first out of the store;
	// its metadata must go with it.
	cleanImg, err := asm.Assemble("clean.s", "main: li a0, 0\n  li a7, 1\n  syscall\n")
	if err != nil {
		t.Fatal(err)
	}
	_, cleanRep, _ := core.Record(cleanImg, kernel.Config{}, core.Config{IntervalLength: 16})
	cleanBlob, err := report.Pack(cleanRep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(cleanBlob); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	if s.Store().Has(first.ID) {
		t.Fatal("first blob survived eviction")
	}
	if _, ok := s.Report(first.ID); ok {
		t.Fatal("evicted blob's metadata survived")
	}

	// Re-uploading the evicted report stores and triages it afresh.
	again, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	if again.Duplicate {
		t.Error("re-upload after eviction marked duplicate")
	}
	s.WaitIdle()
	m, ok := s.Report(again.ID)
	if !ok || m.Verdict == nil || m.Verdict.State != VerdictDone || !m.Verdict.Reproduced {
		t.Fatalf("re-triage verdict = %+v", m.Verdict)
	}
	// The bucket kept aggregating across the eviction.
	b, ok := s.Bucket(again.BucketKey)
	if !ok || b.Count != 2 {
		t.Fatalf("bucket after re-upload = %+v", b)
	}
}

func TestForgedFaultRecordDoesNotMatchReported(t *testing.T) {
	// A hostile uploader records a clean run, then stamps a fabricated
	// fault record onto the final FLL with matching crash metadata. The
	// window replays fine, but execution never arrives at the claimed PC,
	// so the verdict must not certify the report as matching.
	img, err := asm.Assemble("clean.s", "main: li a0, 0\n  li a7, 1\n  syscall\n")
	if err != nil {
		t.Fatal(err)
	}
	_, rep, _ := core.Record(img, kernel.Config{}, core.Config{IntervalLength: 16})
	if rep.Crash != nil || len(rep.FLLs[0]) == 0 {
		t.Fatal("expected a clean recording")
	}
	last := rep.FLLs[0][len(rep.FLLs[0])-1]
	last.End = fll.EndFault
	last.Fault = &fll.FaultRecord{IC: last.Length, PC: 0xdead0000, Cause: uint8(cpu.FaultMemRead)}
	rep.Crash = &kernel.CrashInfo{TID: 0, Fault: &cpu.FaultInfo{Cause: cpu.FaultMemRead, PC: 0xdead0000}}
	blob, err := report.Pack(rep)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)
	res, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	m, _ := s.Report(res.ID)
	if m.Verdict == nil || m.Verdict.State != VerdictDone {
		t.Fatalf("verdict = %+v", m.Verdict)
	}
	if m.Verdict.MatchesReported {
		t.Fatal("forged fault record certified as matching the replay")
	}
	if m.Verdict.Reproduced {
		t.Fatal("forged fault record certified as reproduced")
	}
}

func TestBucketTableCapEvictsLowestCount(t *testing.T) {
	// Three distinct binaries (different text) → three distinct signatures.
	blobs := make([][]byte, 3)
	for i := range blobs {
		src := strings.Replace(crashSource, "li   s0, 0", "li   s0, "+string(rune('1'+i)), 1)
		img, err := asm.Assemble("v.s", src)
		if err != nil {
			t.Fatal(err)
		}
		res, rep, _ := core.Record(img, kernel.Config{}, core.Config{IntervalLength: 16})
		if res.Crash == nil {
			t.Fatal("no crash")
		}
		blobs[i], err = report.Pack(rep)
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{Dir: t.TempDir(), Workers: 1,
		Resolver: NewImageRegistry().Resolve, MaxBuckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Bucket 0 gets two uploads (count 2), bucket 1 gets one.
	for _, b := range [][]byte{blobs[0], blobs[0], blobs[1]} {
		if _, err := s.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Ingest(blobs[2]); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	bs := s.Buckets()
	if len(bs) != 2 {
		t.Fatalf("%d buckets, want cap of 2", len(bs))
	}
	// The count-2 bucket must have survived; the count-1 one was evicted
	// to admit the newcomer.
	if bs[0].Count != 2 {
		t.Errorf("highest-count bucket lost: %+v", bs)
	}
}

// BenchmarkIngest measures end-to-end ingest throughput: unpack, hash,
// store, bucket. Triage replay runs on the worker pool and is excluded by
// draining at the end.
func BenchmarkIngest(b *testing.B) {
	img, _, blob := recordBlob(b)
	reg := NewImageRegistry()
	reg.Register(img)
	s, err := New(Config{Dir: b.TempDir(), Workers: 2, Resolver: reg.Resolve})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(blob); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s.WaitIdle()
}
