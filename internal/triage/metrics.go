package triage

import (
	"time"

	"bugnet/internal/obs"
)

// Triage pipeline metrics. Result and state labels come from fixed
// in-code sets, and the hot handles are preallocated at init so the
// ingest path never takes a registry lock.
var (
	mIngestSeconds = obs.Default.Histogram("bugnet_triage_ingest_seconds",
		"Upload ingest latency: spool, hash, validate, store, bucket.")
	mIngestBytes = obs.Default.Counter("bugnet_triage_ingest_bytes_total",
		"Archive bytes accepted by ingest.")
	ingestResults = obs.Default.CounterVec("bugnet_triage_ingest_total",
		"Ingest outcomes: new content, duplicate upload, recovered blob, or error.", "result")
	mIngestNew       = ingestResults.With("new")
	mIngestDup       = ingestResults.With("duplicate")
	mIngestRecovered = ingestResults.With("recovered")
	mIngestErr       = ingestResults.With("error")

	mReplaySeconds = obs.Default.Histogram("bugnet_triage_replay_seconds",
		"Automatic replay latency per triaged report.")
	verdictResults = obs.Default.CounterVec("bugnet_triage_verdicts_total",
		"Replay verdicts by final state.", "state")
	mVerdictDone   = verdictResults.With(VerdictDone)
	mVerdictFailed = verdictResults.With(VerdictFailed)
	mReplayInstr   = obs.Default.Counter("bugnet_triage_replay_instructions_total",
		"Instructions executed by triage replays.")

	cacheLookups = obs.Default.CounterVec("bugnet_triage_verdict_cache_total",
		"Verdict-cache lookups by outcome.", "result")
	mCacheHits      = cacheLookups.With("hit")
	mCacheMisses    = cacheLookups.With("miss")
	mCacheEvictions = obs.Default.Counter("bugnet_triage_verdict_cache_evictions_total",
		"Verdicts evicted from the cache at its LRU bound.")
	mCacheEntries = obs.Default.Gauge("bugnet_triage_verdict_cache_entries",
		"Verdicts currently cached.")

	mQueueDepth = obs.Default.Gauge("bugnet_triage_queue_depth",
		"Replays queued or running in the worker pool.")
	mBuckets = obs.Default.Gauge("bugnet_triage_buckets",
		"Live crash buckets.")

	mStoreEvictions = obs.Default.Counter("bugnet_triage_store_evictions_total",
		"Report blobs evicted from the archive store.")
	mStoreRetained = obs.Default.Gauge("bugnet_triage_store_retained_bytes",
		"Archive bytes currently retained.")
	mStoreReports = obs.Default.Gauge("bugnet_triage_store_reports",
		"Report blobs currently retained.")
	mStorePinned = obs.Default.Gauge("bugnet_triage_store_pinned",
		"Report blobs pinned by open debug sessions.")
)

// observeIngest records one ingest attempt's latency, outcome, and size.
func observeIngest(start time.Time, size int64, res *IngestResult, err error, recovered bool) {
	mIngestSeconds.Since(start)
	switch {
	case err != nil:
		mIngestErr.Inc()
		return
	case recovered:
		mIngestRecovered.Inc()
	case res.Duplicate:
		mIngestDup.Inc()
	default:
		mIngestNew.Inc()
	}
	mIngestBytes.Add(uint64(size))
}

// syncStoreGauges republishes the store occupancy gauges; caller holds
// the store lock.
func (s *Store) syncStoreGauges() {
	mStoreRetained.Set(s.stats.RetainedBytes)
	mStoreReports.Set(int64(s.stats.RetainedCount))
	mStorePinned.Set(int64(len(s.pins)))
}
