package triage

import (
	"container/list"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// verdictCache is the content-addressed replay-verdict cache. Report IDs
// are SHA-256 content hashes and a verdict is a pure function of the
// archive bytes and the (itself content-addressed) binary they resolve,
// so an entry can never go stale — the cache needs no invalidation, only
// a size bound. At fleet scale most uploads are repeats of known crashes;
// a hit returns the stored verdict (backtrace included) without decoding
// or replaying anything.
//
// Entries are written through to dir/<id>.json, removed on eviction, and
// rehydrated on startup, so a restarted server's recovery re-index turns
// into cache hits instead of a full re-replay of the store.
//
// Only completed verdicts are cached: a failure can be transient (the
// binary registry may learn the image later, the disk may recover), and
// caching it would pin the failure past its cause.
type verdictCache struct {
	mu  sync.Mutex
	cap int
	dir string // "" disables persistence
	lru *list.List
	ids map[string]*list.Element
}

type cacheEntry struct {
	id string
	v  *Verdict
}

// newVerdictCache builds a cache bounded to capacity entries, persisted
// under dir (created if needed; "" keeps the cache memory-only).
func newVerdictCache(capacity int, dir string) (*verdictCache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &verdictCache{
		cap: capacity,
		dir: dir,
		lru: list.New(),
		ids: make(map[string]*list.Element),
	}, nil
}

// get returns a copy of the cached verdict for id, refreshing its
// recency.
func (c *verdictCache) get(id string) (*Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.ids[id]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	v := *e.Value.(*cacheEntry).v
	return &v, true
}

// put caches a copy of v under id, evicting the least-recently-used entry
// (and its file) when the bound is exceeded.
func (c *verdictCache) put(id string, v *Verdict) {
	cp := *v
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.ids[id]; ok {
		e.Value.(*cacheEntry).v = &cp
		c.lru.MoveToFront(e)
		return
	}
	c.ids[id] = c.lru.PushFront(&cacheEntry{id: id, v: &cp})
	c.persist(id, &cp)
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		ent := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.ids, ent.id)
		c.unpersist(ent.id)
		mCacheEvictions.Inc()
	}
}

// len returns the live entry count.
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// persist writes one entry through to disk; failures are absorbed (the
// cache is an accelerator — losing an entry costs one replay, not
// evidence). Caller holds c.mu.
func (c *verdictCache) persist(id string, v *Verdict) {
	if c.dir == "" || !validCacheID(id) {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	tmp := filepath.Join(c.dir, id+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, id+".json")); err != nil {
		os.Remove(tmp)
	}
}

// unpersist removes an evicted entry's file. Caller holds c.mu.
func (c *verdictCache) unpersist(id string) {
	if c.dir == "" || !validCacheID(id) {
		return
	}
	os.Remove(filepath.Join(c.dir, id+".json"))
}

// rehydrate loads persisted entries back into the cache, newest files
// first so the LRU bound keeps the most recently written verdicts.
// Damaged or surplus files are removed; a file that does not parse as a
// completed verdict is junk, not evidence.
func (c *verdictCache) rehydrate() {
	if c.dir == "" {
		return
	}
	paths, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return
	}
	type file struct {
		path string
		id   string
		mod  int64
	}
	files := make([]file, 0, len(paths))
	for _, p := range paths {
		id := strings.TrimSuffix(filepath.Base(p), ".json")
		if !validCacheID(id) {
			continue // foreign file wearing the suffix; leave it alone
		}
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		files = append(files, file{path: p, id: id, mod: fi.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod > files[j].mod })
	loaded := 0
	for _, f := range files {
		if loaded >= c.cap {
			os.Remove(f.path) // over the bound: reclaim instead of leaking
			continue
		}
		data, err := os.ReadFile(f.path)
		if err != nil {
			continue
		}
		var v Verdict
		if json.Unmarshal(data, &v) != nil || v.State != VerdictDone {
			os.Remove(f.path)
			continue
		}
		c.mu.Lock()
		if _, ok := c.ids[f.id]; !ok {
			c.ids[f.id] = c.lru.PushBack(&cacheEntry{id: f.id, v: &v})
			loaded++
		}
		c.mu.Unlock()
	}
}

// validCacheID accepts exactly the store's content addresses (64 hex
// chars), keeping crafted ids from escaping the cache directory.
func validCacheID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
