// Package triage is the developer-side receiving end of BugNet's crash
// pipeline (paper §4.8): a customer-site recorder packs its retained
// First-Load and Memory Race Logs into an archive and uploads it; this
// package stores the blob, deduplicates the flood of identical field
// crashes into buckets, and automatically replays each new report to
// verify the crash reproduces and to extract races and a backtrace.
package triage

import (
	"fmt"

	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/fll"
)

// Signature identifies a crash bucket: reports with equal signatures are
// the same field crash seen on different machines (or the same machine
// repeatedly) and triage only needs to replay one of them.
//
// The signature is deliberately coarser than the report's content address.
// Two executions of the same binary that fault at the same PC for the same
// cause within the same checkpoint interval of the crashing thread are one
// bug; their logged first-load values may still differ (timestamps, heap
// addresses), so their archives hash differently.
type Signature struct {
	// Binary pins the exact program text; crashes of different builds
	// never share a bucket, matching BinaryID's role in replay (§5.1).
	Binary core.BinaryID `json:"binary"`
	// Cause and PC identify the faulting instruction.
	Cause cpu.FaultCause `json:"cause"`
	PC    uint32         `json:"pc"`
	// CID is the crashing thread's checkpoint interval id at the fault:
	// how deep into execution the crash occurred, in interval units.
	CID uint32 `json:"cid"`
}

// Key renders the deterministic bucket key used for indexing and in the
// HTTP API.
func (s Signature) Key() string {
	return fmt.Sprintf("%s-crc%08x-pc%08x-cause%d-cid%d",
		sanitize(s.Binary.Name), s.Binary.TextCRC, s.PC, uint8(s.Cause), s.CID)
}

func (s Signature) String() string {
	return fmt.Sprintf("%s: %v at pc=%#08x (interval %d)", s.Binary.Name, s.Cause, s.PC, s.CID)
}

// sanitize keeps bucket keys shell- and URL-friendly regardless of what
// the recorder put in the binary name.
func sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name) && len(out) < 48; i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "unnamed"
	}
	return string(out)
}

// SignatureOf derives the bucket signature of a report. Reports without a
// crash record (clean-stop uploads) get a zero fault signature, bucketed
// by binary alone. The crashing-interval CID comes from the crashing
// thread's fault-terminated FLL, falling back to its newest retained
// interval when the fault record is absent.
func SignatureOf(rep *core.CrashReport) Signature {
	sig := Signature{Binary: rep.Binary}
	if rep.Crash == nil || rep.Crash.Fault == nil {
		return sig
	}
	sig.Cause = rep.Crash.Fault.Cause
	sig.PC = rep.Crash.Fault.PC
	logs := rep.FLLs[rep.Crash.TID]
	for i := len(logs) - 1; i >= 0; i-- {
		if logs[i].End == fll.EndFault {
			sig.CID = logs[i].CID
			return sig
		}
	}
	if len(logs) > 0 {
		sig.CID = logs[len(logs)-1].CID
	}
	return sig
}
