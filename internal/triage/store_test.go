package triage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bugnet/internal/report"
)

func blobOf(n int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, n)
}

func TestStorePutGetDedup(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	data := blobOf(100, 'a')
	id, existed, err := s.Put(data)
	if err != nil || existed {
		t.Fatalf("first Put: id=%q existed=%v err=%v", id, existed, err)
	}
	if id != report.ID(data) {
		t.Errorf("id %q is not the content address", id)
	}
	id2, existed, err := s.Put(data)
	if err != nil || !existed || id2 != id {
		t.Fatalf("second Put: id=%q existed=%v err=%v", id2, existed, err)
	}
	if st := s.Stats(); st.RetainedCount != 1 || st.TotalCount != 1 {
		t.Errorf("dedup stored twice: %+v", st)
	}
	got, err := s.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get: %v", err)
	}
	// Blob must land in the two-level hash-prefix fan-out.
	if _, err := os.Stat(filepath.Join(s.root, id[:2], id[2:4], id+blobExt)); err != nil {
		t.Errorf("blob not sharded: %v", err)
	}
}

func TestStoreEvictsOldestUnderBudget(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 250)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		id, _, err := s.Put(blobOf(100, byte('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	st := s.Stats()
	if st.RetainedCount != 2 || st.EvictedCount != 2 || st.RetainedBytes != 200 {
		t.Fatalf("eviction stats: %+v", st)
	}
	for _, id := range ids[:2] {
		if s.Has(id) {
			t.Errorf("oldest blob %s survived eviction", id[:8])
		}
		if _, err := s.Get(id); err == nil {
			t.Errorf("evicted blob %s still readable", id[:8])
		}
	}
	for _, id := range ids[2:] {
		if !s.Has(id) {
			t.Errorf("newest blob %s evicted", id[:8])
		}
	}
}

func TestStoreGetMalformedID(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Shorter than the shard-prefix width: must be a clean not-found, not
	// a slice-bounds panic (ids arrive from URL paths).
	for _, id := range []string{"", "a", "abc", "zz/../../etc"} {
		if _, err := s.Get(id); err == nil {
			t.Errorf("Get(%q) succeeded", id)
		}
	}
}

func TestStoreNeverEvictsNewest(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := s.Put(blobOf(100, 'z')) // 10x over budget
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(id) {
		t.Fatal("sole over-budget blob was evicted")
	}
}

func TestStoreReopenReindexes(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := blobOf(64, 'q')
	id, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// A crash between write and rename leaves a .tmp; reopen must reclaim
	// it without touching real blobs.
	orphan := filepath.Join(dir, id[:2], id[2:4], "deadbeef.bnar.tmp")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(id) {
		t.Fatal("reopened store lost the blob")
	}
	got, err := s2.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("reopened Get: %v", err)
	}
	if _, existed, _ := s2.Put(data); !existed {
		t.Error("reopened store re-stored a known blob")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned .tmp not reclaimed on reopen: %v", err)
	}
}

func TestStorePinBlocksEviction(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 250)
	if err != nil {
		t.Fatal(err)
	}
	pinned, _, err := s.Put(blobOf(100, 'a'))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Pin(pinned) {
		t.Fatal("pin of a stored blob failed")
	}
	if s.Pin("0000000000000000000000000000000000000000000000000000000000000000") {
		t.Fatal("pin of an unknown id must fail")
	}
	// Flood past the budget: the pinned blob must survive while newer
	// unpinned blobs around it age out.
	var rest []string
	for i := 1; i < 5; i++ {
		id, _, err := s.Put(blobOf(100, byte('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, id)
	}
	if !s.Has(pinned) {
		t.Fatal("pinned blob evicted")
	}
	if !s.Pinned(pinned) {
		t.Fatal("Pinned lost the pin")
	}
	if s.Has(rest[0]) || s.Has(rest[1]) {
		t.Fatal("unpinned older blobs must evict first")
	}
	// Pins nest: one Unpin of two leaves the blob protected.
	s.Pin(pinned)
	s.Unpin(pinned)
	if !s.Has(pinned) {
		t.Fatal("blob evicted while still pinned once")
	}
}

func TestStoreUnpinReRunsEviction(t *testing.T) {
	// A pin can hold the store over budget (pinned + newest > budget);
	// the final Unpin must immediately reclaim the space.
	s, err := OpenStore(t.TempDir(), 150)
	if err != nil {
		t.Fatal(err)
	}
	pinned, _, err := s.Put(blobOf(100, 'a'))
	if err != nil {
		t.Fatal(err)
	}
	s.Pin(pinned)
	if _, _, err := s.Put(blobOf(100, 'b')); err != nil {
		t.Fatal(err)
	}
	if !s.Has(pinned) {
		t.Fatal("pinned blob evicted")
	}
	if st := s.Stats(); st.RetainedBytes != 200 {
		t.Fatalf("expected the pin to hold the store over budget: %+v", st)
	}
	s.Unpin(pinned)
	if s.Has(pinned) {
		t.Fatal("unpinned over-budget blob must evict")
	}
	if st := s.Stats(); st.RetainedBytes != 100 {
		t.Fatalf("after unpin: %+v", st)
	}
}
