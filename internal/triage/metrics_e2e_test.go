package triage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"bugnet/internal/httpjson"
	"bugnet/internal/obs"

	// Linked for its packet/connection series: the e2e scrape asserts the
	// gdb inventory is present even before any RSP client connects,
	// exactly as in a bugnet-serve binary.
	_ "bugnet/internal/gdbstub"

	"bugnet/internal/timetravel"
)

// scrape fetches /metrics and parses every sample line into name{labels}
// → value.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndToEnd drives the full pipeline — upload, triage replay,
// debug session — through an instrumented HTTP server and asserts the
// scrape moves where it should.
func TestMetricsEndToEnd(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	// Parallel interval replay on, so the scrape covers the parreplay pool
	// series alongside the triage ones.
	s, err := New(Config{Dir: t.TempDir(), Workers: 2, Resolver: reg.Resolve,
		ReplayParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	mgr := timetravel.NewManager(s, timetravel.ManagerConfig{
		MaxSessions: 2,
		Engine:      timetravel.Config{CheckpointEvery: 64},
	})
	defer mgr.Close()
	srv := httptest.NewServer(httpjson.Instrument(NewHandlerWithDebug(s, mgr), nil))
	defer srv.Close()

	before := scrape(t, srv.URL)

	// Upload one report and let triage replay it.
	resp, err := http.Post(srv.URL+"/reports", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s.WaitIdle()

	// Open a debug session over the stored report.
	resp, err = http.Post(srv.URL+"/debug/sessions", "application/json",
		strings.NewReader(fmt.Sprintf(`{"report":%q}`, ing.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /debug/sessions: %s: %s", resp.Status, body)
	}
	resp.Body.Close()

	after := scrape(t, srv.URL)

	// The fleet contract: one scrape covers every subsystem. ≥25 distinct
	// series, with all four layers represented.
	if len(after) < 25 {
		t.Errorf("scrape has %d series, want >= 25", len(after))
	}
	for _, prefix := range []string{
		"bugnet_triage_", "bugnet_logstore_", "bugnet_debug_", "bugnet_gdb_", "bugnet_http_",
		"bugnet_parreplay_",
	} {
		found := false
		for name := range after {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no series with prefix %q in scrape", prefix)
		}
	}

	// The ingest latency histogram counted our upload.
	if moved := after[`bugnet_triage_ingest_seconds_bucket{le="+Inf"}`] -
		before[`bugnet_triage_ingest_seconds_bucket{le="+Inf"}`]; moved < 1 {
		t.Errorf("ingest histogram count moved by %v, want >= 1", moved)
	}
	if moved := after[`bugnet_triage_ingest_total{result="new"}`] -
		before[`bugnet_triage_ingest_total{result="new"}`]; moved != 1 {
		t.Errorf("new-ingest counter moved by %v, want 1", moved)
	}

	// The session gauge reflects the open debug session.
	if after["bugnet_debug_sessions_open"]-before["bugnet_debug_sessions_open"] != 1 {
		t.Errorf("sessions_open moved by %v, want 1",
			after["bugnet_debug_sessions_open"]-before["bugnet_debug_sessions_open"])
	}

	// Replay verdicts and the replayed-instruction counter moved too.
	if after[`bugnet_triage_verdicts_total{state="done"}`] <= before[`bugnet_triage_verdicts_total{state="done"}`] {
		t.Error("done-verdict counter did not move")
	}

	// The per-report replay latency histogram counted our triage replay.
	if moved := after[`bugnet_triage_replay_seconds_bucket{le="+Inf"}`] -
		before[`bugnet_triage_replay_seconds_bucket{le="+Inf"}`]; moved < 1 {
		t.Errorf("replay histogram count moved by %v, want >= 1", moved)
	}

	// The parallel executor replayed this report's intervals, leaving the
	// pool idle afterward.
	if after["bugnet_parreplay_intervals_total"] <= before["bugnet_parreplay_intervals_total"] {
		t.Error("parreplay interval counter did not move")
	}
	if busy, ok := after["bugnet_parreplay_workers_busy"]; !ok || busy != 0 {
		t.Errorf("workers-busy gauge = %v, %v; want 0 after drain", busy, ok)
	}

	// A fresh report is a verdict-cache miss; eviction and occupancy
	// series are exposed alongside.
	if after[`bugnet_triage_verdict_cache_total{result="miss"}`] <= before[`bugnet_triage_verdict_cache_total{result="miss"}`] {
		t.Error("verdict-cache miss counter did not move")
	}
	for _, series := range []string{
		`bugnet_triage_verdict_cache_total{result="hit"}`,
		"bugnet_triage_verdict_cache_evictions_total",
		"bugnet_triage_verdict_cache_entries",
	} {
		if _, ok := after[series]; !ok {
			t.Errorf("series %q missing from scrape", series)
		}
	}

	// Every metric name obeys the naming convention.
	name := regexp.MustCompile(`^bugnet_[a-z0-9_]+(\{|_bucket\{|$)`)
	for series := range after {
		if !name.MatchString(series) {
			t.Errorf("series %q violates the bugnet_ naming convention", series)
		}
	}
}

// TestHealthzDegradedAndReadyz covers the liveness/readiness split: a
// healthy service answers 200 on both; a sticky store failure flips
// healthz to 503 degraded; a debug manager at capacity flips readyz only.
func TestHealthzDegradedAndReadyz(t *testing.T) {
	img, _, blob := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)
	mgr := timetravel.NewManager(s, timetravel.ManagerConfig{
		MaxSessions: 1,
		Engine:      timetravel.Config{CheckpointEvery: 64},
	})
	defer mgr.Close()
	srv := httptest.NewServer(NewHandlerWithDebug(s, mgr))
	defer srv.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	if code, m := get("/healthz"); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("healthy healthz = %d %v", code, m)
	}
	if code, m := get("/readyz"); code != http.StatusOK || m["ready"] != true {
		t.Fatalf("healthy readyz = %d %v", code, m)
	}

	// Saturate the debug capacity: readyz flips, healthz does not.
	res, err := s.Ingest(blob)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	sess, err := mgr.Open(res.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	if code, m := get("/readyz"); code != http.StatusServiceUnavailable || m["ready"] != false {
		t.Fatalf("at-capacity readyz = %d %v", code, m)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("at-capacity healthz = %d, want 200", code)
	}
	mgr.CloseSession(sess.ID)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after session close = %d, want 200", code)
	}

	// A store failure degrades liveness. Healthy() re-probes the disk, so
	// a fabricated error on a healthy disk would clear itself; fail the
	// probe for real by removing the store root (probeEvery=0 probes on
	// every call).
	s.Store().mu.Lock()
	s.Store().probeEvery = 0
	root := s.Store().root
	s.Store().mu.Unlock()
	if err := os.RemoveAll(root); err != nil {
		t.Fatal(err)
	}
	s.Store().fail(fmt.Errorf("disk on fire"))
	code, m := get("/healthz")
	if code != http.StatusServiceUnavailable || m["status"] != "degraded" {
		t.Fatalf("degraded healthz = %d %v", code, m)
	}
	if code, m := get("/readyz"); code != http.StatusServiceUnavailable || m["ready"] != false {
		t.Fatalf("degraded readyz = %d %v, want 503 not-ready", code, m)
	} else if rs, ok := m["reasons"].([]any); !ok || len(rs) == 0 {
		t.Fatalf("degraded readyz reasons = %v, want a non-empty list", m["reasons"])
	}
	// A degraded POST sheds with 503 instead of acking a write the store
	// would lose.
	resp, err := http.Post(srv.URL+"/api/v1/reports", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded POST = %d, want 503", resp.StatusCode)
	}

	// Healing the disk brings the node back without a restart: the next
	// Healthy() probe succeeds and clears the degraded state. The spool
	// lives under the store root, so restore it too.
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(s.spoolDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if code, m := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healed healthz = %d %v, want 200", code, m)
	}
	if code, m := get("/readyz"); code != http.StatusOK || m["ready"] != true {
		t.Fatalf("healed readyz = %d %v, want 200 ready", code, m)
	}
}

// TestRequestIDMiddleware verifies the instrumentation boundary: ids are
// minted (or propagated) and the request counter moves.
func TestRequestIDMiddleware(t *testing.T) {
	img, _, _ := recordBlob(t)
	reg := NewImageRegistry()
	reg.Register(img)
	s := newService(t, reg)
	srv := httptest.NewServer(httpjson.Instrument(NewHandler(s), nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Fatalf("minted X-Request-ID = %q, want 16 hex chars", id)
	}

	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "upstream-id-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "upstream-id-7" {
		t.Fatalf("propagated X-Request-ID = %q", id)
	}
}

// TestRecorderCountersAllocFree proves the batched counter export the
// recorder wire path uses allocates nothing: the exact obs calls commit()
// makes, measured under AllocsPerRun.
func TestRecorderCountersAllocFree(t *testing.T) {
	c := obs.Default.Counter("bugnet_test_export_total", "test series")
	h := obs.Default.Histogram("bugnet_test_export_seconds", "test series")
	if avg := testing.AllocsPerRun(500, func() {
		c.Add(100)
		h.Observe(42 * time.Microsecond)
	}); avg != 0 {
		t.Fatalf("export-path metric ops allocate %.1f per run, want 0", avg)
	}
}
