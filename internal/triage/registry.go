package triage

import (
	"fmt"
	"sync"

	"bugnet/internal/asm"
	"bugnet/internal/core"
)

// ImageRegistry resolves a report's BinaryID to the image needed for
// replay. Replay requires the exact binary the report was recorded from
// (paper §5.1); a triage server is therefore provisioned with the builds
// its fleet runs, and an upload from an unknown build gets an
// "unresolvable binary" verdict rather than a bogus replay.
//
// Identity is content-based — text bytes, base, and entry — so the name
// the recorder used is irrelevant, matching BinaryID.Matches.
type ImageRegistry struct {
	mu   sync.RWMutex
	imgs map[imageKey]*asm.Image
}

// imageKey is BinaryID minus the free-form name.
type imageKey struct {
	textBase uint32
	entry    uint32
	textLen  uint32
	textCRC  uint32
}

func keyOf(id core.BinaryID) imageKey {
	return imageKey{textBase: id.TextBase, entry: id.Entry, textLen: id.TextLen, textCRC: id.TextCRC}
}

// NewImageRegistry returns an empty registry.
func NewImageRegistry() *ImageRegistry {
	return &ImageRegistry{imgs: make(map[imageKey]*asm.Image)}
}

// Register adds an image. Re-registering the same content is a no-op.
func (r *ImageRegistry) Register(img *asm.Image) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.imgs[keyOf(core.IdentifyBinary(img))] = img
}

// Len returns the number of distinct registered binaries.
func (r *ImageRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.imgs)
}

// Resolve finds the image a report was recorded from.
func (r *ImageRegistry) Resolve(id core.BinaryID) (*asm.Image, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if img, ok := r.imgs[keyOf(id)]; ok {
		return img, nil
	}
	return nil, fmt.Errorf("triage: no registered binary matches %q (text %d bytes, crc %#x at %#x)",
		id.Name, id.TextLen, id.TextCRC, id.TextBase)
}
