package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSimple(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBit(true)
	w.WriteBits(0, 4)
	w.WriteBits(0xDEADBEEF, 32)

	r := NewReaderBits(w.Bytes(), w.Len())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("read 3 bits = %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Errorf("read 8 bits = %x", v)
	}
	if b, _ := r.ReadBit(); !b {
		t.Error("read bit = false")
	}
	if v, _ := r.ReadBits(4); v != 0 {
		t.Errorf("read 4 bits = %x", v)
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Errorf("read 32 bits = %x", v)
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestMSBFirstLayout(t *testing.T) {
	var w Writer
	w.WriteBits(1, 1) // 1000_0000
	w.Align()
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0x80 {
		t.Errorf("bytes = %x; want 80", got)
	}
	if w.Len() != 8 {
		t.Errorf("len after align = %d", w.Len())
	}
}

func TestUnderflow(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(9); err != ErrUnderflow {
		t.Errorf("9-bit read from 8-bit stream: err = %v", err)
	}
	// The failed read must not consume anything.
	if v, err := r.ReadBits(8); err != nil || v != 0xAB {
		t.Errorf("after underflow: %x, %v", v, err)
	}
}

func TestNewReaderBitsClamp(t *testing.T) {
	r := NewReaderBits([]byte{0xFF}, 100)
	if r.Remaining() != 8 {
		t.Errorf("remaining = %d; want clamped 8", r.Remaining())
	}
}

func TestZeroWidthOps(t *testing.T) {
	var w Writer
	w.WriteBits(0xFFFF, 0)
	if w.Len() != 0 {
		t.Error("zero-width write changed length")
	}
	r := NewReader(nil)
	if v, err := r.ReadBits(0); err != nil || v != 0 {
		t.Errorf("zero-width read = %v, %v", v, err)
	}
}

func TestReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xAA, 8)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Error("reset did not clear writer")
	}
	w.WriteBits(0x5, 3)
	if w.Len() != 3 {
		t.Error("write after reset broken")
	}
}

func TestReaderAlign(t *testing.T) {
	var w Writer
	w.WriteBits(0x3, 2)
	w.Align()
	w.WriteBits(0xCD, 8)
	r := NewReaderBits(w.Bytes(), w.Len())
	if _, err := r.ReadBits(2); err != nil {
		t.Fatal(err)
	}
	r.Align()
	if v, _ := r.ReadBits(8); v != 0xCD {
		t.Errorf("after align read = %x", v)
	}
	r.Align() // align at end must not overflow
	if r.Remaining() != 0 {
		t.Errorf("remaining after final align = %d", r.Remaining())
	}
}

// TestPropertyRoundTrip writes a random sequence of variable-width fields
// and checks they read back identically.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		widths := make([]uint, n)
		values := make([]uint64, n)
		var w Writer
		for i := range widths {
			widths[i] = uint(1 + rng.Intn(64))
			values[i] = rng.Uint64()
			if widths[i] < 64 {
				values[i] &= 1<<widths[i] - 1
			}
			w.WriteBits(values[i], widths[i])
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for i := range widths {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != values[i] {
				t.Logf("field %d width %d: got %x err %v want %x", i, widths[i], v, err, values[i])
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLenMatchesBytes checks the byte buffer is always ceil(bits/8).
func TestPropertyLenMatchesBytes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var w Writer
		for i := 0; i < 50; i++ {
			w.WriteBits(rng.Uint64(), uint(rng.Intn(65)))
		}
		want := int((w.Len() + 7) / 8)
		return len(w.Bytes()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	var w Writer
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<23 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 13)
	}
}
