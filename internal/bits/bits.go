// Package bits provides bit-granular stream writers and readers.
//
// BugNet's First-Load Log entries are not byte aligned: an entry is
// (LC-Type:1 bit, L-Count:5 or 32 bits, LV-Type:1 bit, value:6 or 32 bits),
// so logs must be packed at bit granularity to reproduce the paper's log
// sizes. Bits are written MSB-first within each byte, which makes hex dumps
// of logs readable left-to-right.
package bits

import (
	"errors"
	"fmt"
)

// ErrUnderflow is returned when a read requests more bits than remain.
var ErrUnderflow = errors.New("bits: read past end of stream")

// Writer accumulates a bit stream into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit uint64 // total bits written
}

// WriteBits appends the low n bits of v to the stream, most significant of
// those n bits first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bits: WriteBits width %d > 64", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		bitPos := w.nbit & 7
		if bitPos == 0 {
			w.buf = append(w.buf, 0)
		}
		if v>>uint(i)&1 != 0 {
			w.buf[len(w.buf)-1] |= 0x80 >> bitPos
		}
		w.nbit++
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Align pads the stream with zero bits to the next byte boundary.
func (w *Writer) Align() {
	if r := w.nbit & 7; r != 0 {
		w.WriteBits(0, uint(8-r))
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() uint64 { return w.nbit }

// Bytes returns the packed stream. The final byte is zero-padded in its low
// bits if the stream is not byte aligned. The returned slice aliases the
// writer's buffer; it remains valid but may change if more bits are written.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset discards all written bits, retaining the allocation.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf  []byte
	pos  uint64 // bits consumed
	nbit uint64 // total readable bits
}

// NewReader returns a Reader over the given bytes, exposing len(buf)*8 bits.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf, nbit: uint64(len(buf)) * 8}
}

// NewReaderBits returns a Reader over buf that exposes exactly n bits.
func NewReaderBits(buf []byte, n uint64) *Reader {
	if max := uint64(len(buf)) * 8; n > max {
		n = max
	}
	return &Reader{buf: buf, nbit: n}
}

// ReadBits consumes n bits and returns them in the low bits of the result,
// in the order they were written. n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bits: ReadBits width %d > 64", n))
	}
	if r.pos+uint64(n) > r.nbit {
		return 0, ErrUnderflow
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		byteIdx := r.pos >> 3
		bitPos := r.pos & 7
		bit := r.buf[byteIdx] >> (7 - bitPos) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// ReadBit consumes a single bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v != 0, err
}

// Align skips to the next byte boundary.
func (r *Reader) Align() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
		if r.pos > r.nbit {
			r.pos = r.nbit
		}
	}
}

// Clone returns an independent reader at the same position. The underlying
// buffer is shared (readers never mutate it), so cloning is O(1); replay
// checkpointing uses it to freeze a log cursor.
func (r *Reader) Clone() *Reader {
	cp := *r
	return &cp
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() uint64 { return r.nbit - r.pos }

// Offset returns the number of bits consumed so far.
func (r *Reader) Offset() uint64 { return r.pos }
