package bus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoLoggingNoOverhead(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 10000; i++ {
		m.Instruction()
	}
	m.Miss()
	s := m.Stats()
	if s.Overhead() != 0 {
		t.Errorf("overhead = %v without logging", s.Overhead())
	}
	if s.Cycles != 10000+200 {
		t.Errorf("cycles = %d", s.Cycles)
	}
	if s.MissStall != 200 {
		t.Errorf("miss stall = %d", s.MissStall)
	}
}

func TestModestLoggingDrainsFree(t *testing.T) {
	// A few bits per instruction drain on idle cycles: zero overhead.
	m := New(Config{})
	for i := 0; i < 100000; i++ {
		m.Instruction()
		if i%10 == 0 {
			m.LogBits(39) // one incompressible FLL entry
		}
	}
	s := m.Stats()
	if s.Overhead() != 0 {
		t.Errorf("overhead = %v for modest logging", s.Overhead())
	}
	if s.PeakCBBytes > 64 {
		t.Errorf("peak CB = %d bytes; should stay tiny", s.PeakCBBytes)
	}
}

func TestBurstOverflowsCB(t *testing.T) {
	m := New(Config{CBBytes: 1024})
	// A burst far beyond CB capacity with no idle cycles to drain.
	m.LogBits(1024*8 + 64000)
	s := m.Stats()
	if s.LogStallCycles == 0 {
		t.Error("CB overflow caused no stall")
	}
	if s.PeakCBBytes < 1024 {
		t.Errorf("peak CB = %d", s.PeakCBBytes)
	}
}

func TestMissIdleCyclesDrain(t *testing.T) {
	// A miss stalls 200 cycles but only 8 carry the block; the rest drain
	// the CB.
	m := New(Config{CBBytes: 16 << 10})
	m.LogBits(10000 * 8)
	m.Miss()
	s := m.Stats()
	// Drained: (200-8) idle cycles * 8 B = 1536 bytes at least.
	if m.cbBits > (10000-1500)*8 {
		t.Errorf("cb after miss = %d bits; drain ineffective", m.cbBits)
	}
	if s.Overhead() != 0 {
		t.Error("miss drain should avoid log stalls here")
	}
}

// TestPropertyConservation: bits in = bits drained + bits resident.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{CBBytes: 512})
		for i := 0; i < 5000; i++ {
			switch rng.Intn(3) {
			case 0:
				m.Instruction()
			case 1:
				m.LogBits(uint64(rng.Intn(200)))
			case 2:
				m.Miss()
			}
			if m.drainedBits+m.cbBits != m.totalBits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOverheadFraction(t *testing.T) {
	s := Stats{Cycles: 1000, LogStallCycles: 1}
	if s.Overhead() != 0.001 {
		t.Errorf("overhead = %v", s.Overhead())
	}
	if (Stats{}).Overhead() != 0 {
		t.Error("zero-cycle overhead should be 0")
	}
}
