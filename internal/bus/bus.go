// Package bus models the memory-bus contention that determines BugNet's
// recording overhead (paper §4.7, §6.3).
//
// The paper's claim: compressed log entries are drained from the on-chip
// Checkpoint Buffer to main memory lazily, using bus cycles left idle by
// the demand miss traffic; the CPU stalls for logging only if the CB fills
// during a burst. Measured on SPEC with SimpleScalar-x86, the overhead was
// below 0.01%.
//
// The model is a cycle-accounting simulation over three event streams the
// recorder feeds it: committed instructions (1 cycle each at the assumed
// 1 IPC), L2 misses (the CPU stalls for the memory latency while the bus
// carries the block), and produced log bits (buffered in the CB, drained
// on idle bus cycles). The reported overhead is the fraction of cycles the
// CPU spent stalled *because of logging* — exactly what the paper reports.
package bus

// Config describes the memory system.
type Config struct {
	// BytesPerCycle is the bus bandwidth. Default 8 (64-bit DDR bus).
	BytesPerCycle int
	// MissLatency is the CPU stall per L2 miss, in cycles. Default 200.
	MissLatency int
	// CBBytes is the on-chip Checkpoint Buffer capacity (paper: 16 KB).
	CBBytes int
	// BlockBytes is the transfer size of a demand miss. Default 64.
	BlockBytes int
}

func (c *Config) fillDefaults() {
	if c.BytesPerCycle == 0 {
		c.BytesPerCycle = 8
	}
	if c.MissLatency == 0 {
		c.MissLatency = 200
	}
	if c.CBBytes == 0 {
		c.CBBytes = 16 << 10
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64
	}
}

// Model accumulates the overhead accounting.
type Model struct {
	cfg Config

	cycles      uint64 // total CPU cycles (including stalls)
	stallLog    uint64 // cycles stalled because the CB was full
	stallMiss   uint64 // cycles stalled on demand misses
	cbBits      uint64 // current CB occupancy
	peakCBBits  uint64
	drainedBits uint64
	totalBits   uint64
}

// New creates a model.
func New(cfg Config) *Model {
	cfg.fillDefaults()
	return &Model{cfg: cfg}
}

// drain moves up to n idle bus cycles' worth of log bits out of the CB.
func (m *Model) drain(idleCycles uint64) {
	can := idleCycles * uint64(m.cfg.BytesPerCycle) * 8
	if can > m.cbBits {
		can = m.cbBits
	}
	m.cbBits -= can
	m.drainedBits += can
}

// Instruction accounts one committed instruction: one cycle, whose bus
// slot is idle and available for draining.
func (m *Model) Instruction() {
	m.cycles++
	m.drain(1)
}

// Miss accounts one L2 demand miss: the CPU stalls for the miss latency;
// the bus is busy for the block transfer and idle for the remainder of the
// stall, which drains the CB.
func (m *Model) Miss() {
	transfer := uint64(m.cfg.BlockBytes / m.cfg.BytesPerCycle)
	stall := uint64(m.cfg.MissLatency)
	m.cycles += stall
	m.stallMiss += stall
	if stall > transfer {
		m.drain(stall - transfer)
	}
}

// LogBits accounts n bits of produced log data. If the CB overflows, the
// CPU stalls until the excess drains at full bus bandwidth — the only
// logging-induced overhead in the design.
func (m *Model) LogBits(n uint64) {
	m.totalBits += n
	m.cbBits += n
	if m.cbBits > m.peakCBBits {
		m.peakCBBits = m.cbBits
	}
	capacity := uint64(m.cfg.CBBytes) * 8
	if m.cbBits > capacity {
		excess := m.cbBits - capacity
		perCycle := uint64(m.cfg.BytesPerCycle) * 8
		stall := (excess + perCycle - 1) / perCycle
		m.cycles += stall
		m.stallLog += stall
		m.drainedBits += excess
		m.cbBits = capacity
	}
}

// Stats is the overhead summary.
type Stats struct {
	Cycles         uint64
	LogStallCycles uint64
	MissStall      uint64
	PeakCBBytes    int
	LogBytes       uint64
}

// Overhead returns the recording overhead as a fraction of total cycles —
// the paper's §6.3 metric.
func (s Stats) Overhead() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.LogStallCycles) / float64(s.Cycles)
}

// Stats returns the accumulated accounting.
func (m *Model) Stats() Stats {
	return Stats{
		Cycles:         m.cycles,
		LogStallCycles: m.stallLog,
		MissStall:      m.stallMiss,
		PeakCBBytes:    int((m.peakCBBits + 7) / 8),
		LogBytes:       (m.totalBits + 7) / 8,
	}
}
