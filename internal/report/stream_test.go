package report

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bugnet/internal/core"
)

// TestPackToMatchesPack: the streaming writer and the in-memory packer
// must produce identical bytes (Pack is a wrapper, but guard the
// equivalence explicitly — content addressing depends on it).
func TestPackToMatchesPack(t *testing.T) {
	_, rep := record(t)
	blob, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PackTo(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf.Bytes()) {
		t.Fatal("PackTo bytes differ from Pack")
	}
}

// TestOpenFileStreamingReplay: an archive on disk opens without loading
// whole, exposes its section index, and its lazy report replays to the
// recorded crash while the file stays the only copy of the log bytes.
func TestOpenFileStreamingReplay(t *testing.T) {
	img, rep := record(t)
	blob, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.bnar")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	secs := a.Sections()
	if len(secs) < 2 || secs[0].Kind != kindMeta {
		t.Fatalf("sections = %+v", secs)
	}
	var encoded int
	for _, s := range secs[1:] {
		if s.Kind != kindFLL && s.Kind != kindMRL {
			t.Fatalf("unexpected section kind %c", s.Kind)
		}
		if s.TID != 0 || s.Len <= 0 {
			t.Fatalf("section identity: %+v", s)
		}
		encoded += s.Len
	}
	if encoded == 0 {
		t.Fatal("no encoded log bytes indexed")
	}

	got := a.Report()
	if got.Crash == nil || got.Crash.Fault.PC != rep.Crash.Fault.PC {
		t.Fatalf("crash metadata lost: %+v", got.Crash)
	}
	rr, err := core.NewReplayer(img, got.FLLs[rep.Crash.TID]).Run()
	if err != nil {
		t.Fatalf("streaming replay: %v", err)
	}
	if rr.Fault == nil || rr.Fault.PC != rep.Crash.Fault.PC {
		t.Fatalf("replayed fault %+v", rr.Fault)
	}
}

// TestOpenFileReportOutlivesNothing: once the archive is closed, lazy
// views fail loudly instead of serving stale data.
func TestOpenFileClosedViewsFail(t *testing.T) {
	_, rep := record(t)
	blob, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.bnar")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := a.Report()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := got.FLLs[0][0].Open(); err == nil {
		t.Fatal("lazy view served data after the archive closed")
	}
}

// TestMetaCarriesLogStats: the recording regions' occupancy travels
// through the archive and back.
func TestMetaCarriesLogStats(t *testing.T) {
	_, rep := record(t)
	if rep.FLLStats.TotalCount == 0 {
		t.Fatal("recorder left no FLL stats")
	}
	blob, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.FLLStats != rep.FLLStats {
		t.Fatalf("FLL stats lost: %+v vs %+v", got.FLLStats, rep.FLLStats)
	}
}
