package report

import (
	"bytes"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/fll"
	"bugnet/internal/kernel"
	"bugnet/internal/mrl"
)

const crashSource = `
        .data
tbl:    .word 3, 5, 7, 0
        .text
main:   la   t0, tbl
        li   s0, 0
sum:    lw   t1, (t0)
        beqz t1, done
        add  s0, s0, t1
        addi t0, t0, 4
        j    sum
done:   la   t2, tbl
        lw   t3, 12(t2)
boom:   lw   a0, (t3)
`

// record produces a real crashed report to pack.
func record(t testing.TB) (*asm.Image, *core.CrashReport) {
	t.Helper()
	img, err := asm.Assemble("crash.s", crashSource)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	res, rep, _ := core.Record(img, kernel.Config{}, core.Config{IntervalLength: 16})
	if res.Crash == nil {
		t.Fatal("program did not crash")
	}
	return img, rep
}

func TestPackUnpackRoundTrip(t *testing.T) {
	img, rep := record(t)
	// Attach a synthetic MRL so the 'R' section path is exercised even on
	// this uniprocessor recording.
	rep.MRLs[0] = append(rep.MRLs[0], mrl.NewRef(&mrl.Log{
		Meta: mrl.Meta{
			Header:        mrl.Header{PID: rep.PID, TID: 0, CID: 0, Timestamp: 1},
			IntervalLimit: 16,
			MaxThreads:    2,
			NumEntries:    1,
		},
		Entries: []mrl.Entry{{LocalIC: 3, RemoteTID: 1, RemoteCID: 0, RemoteIC: 9}},
	}))

	blob, err := Pack(rep)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(blob)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.PID != rep.PID || got.Binary != rep.Binary {
		t.Errorf("identity lost: got pid=%d binary=%+v", got.PID, got.Binary)
	}
	if got.LogCodeLoads != rep.LogCodeLoads || got.DictOptions != rep.DictOptions {
		t.Errorf("recording options lost: %+v / %v", got.DictOptions, got.LogCodeLoads)
	}
	if got.Crash == nil || got.Crash.TID != rep.Crash.TID ||
		got.Crash.Fault.PC != rep.Crash.Fault.PC ||
		got.Crash.Fault.Cause != rep.Crash.Fault.Cause ||
		got.Crash.Fault.Addr != rep.Crash.Fault.Addr ||
		got.Crash.Fault.IC != rep.Crash.Fault.IC {
		t.Errorf("crash record lost: %+v vs %+v", got.Crash, rep.Crash)
	}
	if len(got.FLLs[0]) != len(rep.FLLs[0]) {
		t.Fatalf("FLL count: got %d want %d", len(got.FLLs[0]), len(rep.FLLs[0]))
	}
	for i, l := range got.FLLs[0] {
		ge, err := l.Encoded()
		if err != nil {
			t.Fatal(err)
		}
		we, err := rep.FLLs[0][i].Encoded()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ge, we) {
			t.Errorf("FLL %d differs after round trip", i)
		}
	}
	gotMRL, err := got.MRLs[0][0].Open()
	if err != nil {
		t.Fatal(err)
	}
	wantMRL, err := rep.MRLs[0][0].Open()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.MRLs[0]) != 1 || len(gotMRL.Entries) != 1 ||
		gotMRL.Entries[0] != wantMRL.Entries[0] {
		t.Errorf("MRL lost: %+v", gotMRL)
	}

	// The unpacked report must still replay to the recorded crash.
	rr, err := core.NewReplayer(img, got.FLLs[rep.Crash.TID]).Run()
	if err != nil {
		t.Fatalf("replay of unpacked report: %v", err)
	}
	if rr.Fault == nil || rr.Fault.PC != rep.Crash.Fault.PC {
		t.Errorf("replayed fault %+v, want pc %#x", rr.Fault, rep.Crash.Fault.PC)
	}
}

func TestPackCarriesRecordingOptions(t *testing.T) {
	// A LogCodeLoads recording replays only with LogCodeLoads on; the
	// options must survive the archive so the receiving side (which has
	// no out-of-band knowledge of the recorder's flags) replays to the
	// recorded crash.
	img, err := asm.Assemble("crash.s", crashSource)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, _ := core.Record(img, kernel.Config{},
		core.Config{IntervalLength: 16, LogCodeLoads: true})
	if res.Crash == nil {
		t.Fatal("no crash")
	}
	blob, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !got.LogCodeLoads {
		t.Fatal("LogCodeLoads lost in the archive")
	}
	out, err := core.NewMultiReplayer(img, got).Run()
	if err != nil {
		t.Fatalf("replay of unpacked LogCodeLoads report: %v", err)
	}
	crash := out.Threads[res.Crash.TID]
	if crash == nil || crash.Fault == nil || crash.Fault.PC != res.Crash.Fault.PC {
		t.Fatalf("replayed fault %+v, recorded pc %#x", crash, res.Crash.Fault.PC)
	}
}

func TestPackDeterministicID(t *testing.T) {
	_, rep := record(t)
	a, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Pack is not deterministic")
	}
	if ID(a) != ID(b) {
		t.Fatal("IDs differ for identical bytes")
	}
	if len(ID(a)) != 64 {
		t.Fatalf("ID length %d, want 64 hex chars", len(ID(a)))
	}
}

func TestUnpackRejectsCorruption(t *testing.T) {
	_, rep := record(t)
	blob, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), blob[4:]...),
		"bad version": append(append([]byte{}, blob[:4]...), append([]byte{99}, blob[5:]...)...),
		"truncated":   blob[:len(blob)/2],
		"trailing":    append(append([]byte{}, blob...), 0xde, 0xad),
	}
	for name, data := range cases {
		if _, err := Unpack(data); err == nil {
			t.Errorf("%s: Unpack accepted corrupt archive", name)
		}
	}

	// A flipped byte inside a section payload must fail the section CRC.
	flipped := append([]byte{}, blob...)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := Unpack(flipped); err == nil {
		t.Error("flipped payload byte: Unpack accepted corrupt archive")
	}
}

func TestUnpackRejectsImplausibleSectionCount(t *testing.T) {
	data := []byte{'B', 'N', 'A', 'R', 1, 0xff, 0xff, 0xff, 0xff}
	if _, err := Unpack(data); err == nil {
		t.Fatal("accepted 4G-section header")
	}
}

func TestUnpackRejectsImplausibleTID(t *testing.T) {
	// Downstream replay allocates per-thread state indexed by TID (the
	// race detector is O(threads²)), so a hostile log claiming a huge TID
	// must die at decode, not at allocation.
	_, rep := record(t)
	l0, err := rep.FLLs[0][0].Open()
	if err != nil {
		t.Fatal(err)
	}
	hostile := *l0
	hostile.TID = 1 << 31
	rep.FLLs[0][0] = fll.NewRef(&hostile)
	blob, err := Pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(blob); err == nil {
		t.Fatal("accepted FLL with TID 2^31")
	}
}

func BenchmarkPack(b *testing.B) {
	_, rep := record(b)
	blob, _ := Pack(rep)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(rep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	_, rep := record(b)
	blob, err := Pack(rep)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(blob); err != nil {
			b.Fatal(err)
		}
	}
}
