// Package report implements the packed single-file crash-report archive:
// the blob a production BugNet uploads from a customer site to the
// developer's triage service (paper §4.8).
//
// SaveReport's directory layout is convenient for local debugging but
// awkward to ship: a report is many small files plus a manifest, and an
// upload endpoint would have to accept a tarball or multipart form and
// trust the manifest's file references. The archive flattens one
// CrashReport into a single self-describing byte stream:
//
//	magic "BNAR" | version (1 byte) | section count (u32)
//	section*:  kind (1 byte) | length (u32) | payload | CRC32(kind‖length‖payload)
//
// Section kinds: 'M' (exactly one, first) holds the report metadata as
// JSON — PID, BinaryID, and the crash record; 'F' and 'R' sections carry
// one fll.Log / mrl.Log each in their existing Marshal wire formats, which
// embed their own TID/CID and a second, inner checksum. Every section is
// independently CRC-framed so truncation or corruption is localized at
// decode time, before any log is replayed.
//
// Pack is deterministic (threads ascending, logs in recording order), so
// the SHA-256 of the packed bytes is a stable content address: the same
// crash window recorded at the same customer site always produces the same
// ID, which is what lets the triage store deduplicate identical uploads.
package report

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/fll"
	"bugnet/internal/kernel"
	"bugnet/internal/mrl"
)

var magic = [4]byte{'B', 'N', 'A', 'R'}

const version = 1

// Section kinds.
const (
	kindMeta = 'M'
	kindFLL  = 'F'
	kindMRL  = 'R'
)

// MaxSections bounds the section count a decoder will accept, limiting
// allocation from a hostile header before any payload is validated.
const MaxSections = 1 << 20

// MaxTID bounds the thread ids a decoder will accept. Downstream replay
// allocates per-thread state indexed by TID and the race detector's
// vector clocks are O(threads²), so the bound must be small enough that
// even the quadratic cost is trivial: 64 threads is 8× the largest
// simulated machine while capping the detector at a few KB.
const MaxTID = 64

// ErrBadArchive reports a structurally invalid archive.
var ErrBadArchive = errors.New("report: bad archive")

// Meta is the flattened report metadata: identity, crash record, and the
// recording options replay must match (paper §5.1) — without those a
// receiver replaying a LogCodeLoads recording would misalign the log
// stream and mislabel every such report as diverged. It is shared by the
// packed archive's 'M' section and the directory manifest so the two
// serialized forms cannot drift apart.
type Meta struct {
	PID             uint32        `json:"pid"`
	Binary          core.BinaryID `json:"binary"`
	LogCodeLoads    bool          `json:"log_code_loads,omitempty"`
	DictCounterBits int           `json:"dict_counter_bits,omitempty"`
	DictInsertTop   bool          `json:"dict_insert_top,omitempty"`
	Crash           *MetaCrash    `json:"crash,omitempty"`
}

// MetaCrash flattens kernel.CrashInfo for stable JSON.
type MetaCrash struct {
	TID   int    `json:"tid"`
	Cause uint8  `json:"cause"`
	PC    uint32 `json:"pc"`
	Addr  uint32 `json:"addr"`
	IC    uint64 `json:"ic"`
}

// MetaOf flattens a report's metadata.
func MetaOf(rep *core.CrashReport) Meta {
	m := Meta{
		PID:             rep.PID,
		Binary:          rep.Binary,
		LogCodeLoads:    rep.LogCodeLoads,
		DictCounterBits: rep.DictOptions.CounterBits,
		DictInsertTop:   rep.DictOptions.InsertAtTop,
	}
	if rep.Crash != nil && rep.Crash.Fault != nil {
		m.Crash = &MetaCrash{
			TID:   rep.Crash.TID,
			Cause: uint8(rep.Crash.Fault.Cause),
			PC:    rep.Crash.Fault.PC,
			Addr:  rep.Crash.Fault.Addr,
			IC:    rep.Crash.Fault.IC,
		}
	}
	return m
}

// Apply restores the flattened metadata onto a report.
func (m Meta) Apply(rep *core.CrashReport) {
	rep.PID = m.PID
	rep.Binary = m.Binary
	rep.LogCodeLoads = m.LogCodeLoads
	rep.DictOptions.CounterBits = m.DictCounterBits
	rep.DictOptions.InsertAtTop = m.DictInsertTop
	if m.Crash != nil {
		rep.Crash = &kernel.CrashInfo{
			TID: m.Crash.TID,
			Fault: &cpu.FaultInfo{
				Cause: cpu.FaultCause(m.Crash.Cause),
				PC:    m.Crash.PC,
				Addr:  m.Crash.Addr,
				IC:    m.Crash.IC,
			},
		}
	}
}

// ThreadIDs returns the sorted union of threads with retained FLLs or
// MRLs. The union matters: the two log kinds are evicted from separately
// budgeted stores, so a thread can retain MRLs after its FLLs aged out,
// and those ordering constraints must survive serialization. Shared by
// Pack and the directory-manifest writer so the two forms agree.
func ThreadIDs(rep *core.CrashReport) []int {
	tids := make([]int, 0, len(rep.FLLs))
	seen := make(map[int]bool)
	for tid := range rep.FLLs {
		tids = append(tids, tid)
		seen[tid] = true
	}
	for tid := range rep.MRLs {
		if !seen[tid] {
			tids = append(tids, tid)
		}
	}
	sort.Ints(tids)
	return tids
}

// appendSection frames one section onto out.
func appendSection(out []byte, kind byte, payload []byte) []byte {
	start := len(out)
	out = append(out, kind)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(payload)))
	out = append(out, tmp[:]...)
	out = append(out, payload...)
	binary.LittleEndian.PutUint32(tmp[:], crc32.ChecksumIEEE(out[start:]))
	return append(out, tmp[:]...)
}

// Pack encodes a crash report as a single archive blob. The encoding is
// deterministic: packing the same report twice yields identical bytes.
func Pack(rep *core.CrashReport) ([]byte, error) {
	mj, err := json.Marshal(MetaOf(rep))
	if err != nil {
		return nil, err
	}

	tids := ThreadIDs(rep)

	sections := uint32(1)
	for _, tid := range tids {
		sections += uint32(len(rep.FLLs[tid]) + len(rep.MRLs[tid]))
	}

	out := make([]byte, 0, 64+len(mj))
	out = append(out, magic[:]...)
	out = append(out, version)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], sections)
	out = append(out, tmp[:]...)
	out = appendSection(out, kindMeta, mj)
	for _, tid := range tids {
		for _, l := range rep.FLLs[tid] {
			out = appendSection(out, kindFLL, l.Marshal())
		}
		for _, l := range rep.MRLs[tid] {
			out = appendSection(out, kindMRL, l.Marshal())
		}
	}
	return out, nil
}

// Unpack decodes an archive produced by Pack, validating the framing and
// every section checksum before decoding any log payload.
func Unpack(data []byte) (*core.CrashReport, error) {
	if len(data) < 9 || [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: missing magic", ErrBadArchive)
	}
	if data[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadArchive, data[4])
	}
	sections := binary.LittleEndian.Uint32(data[5:9])
	if sections == 0 || sections > MaxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrBadArchive, sections)
	}
	pos := 9

	rep := &core.CrashReport{
		FLLs: make(map[int][]*fll.Log),
		MRLs: make(map[int][]*mrl.Log),
	}
	haveMeta := false
	for i := uint32(0); i < sections; i++ {
		if len(data)-pos < 9 {
			return nil, fmt.Errorf("%w: truncated at section %d", ErrBadArchive, i)
		}
		kind := data[pos]
		n32 := binary.LittleEndian.Uint32(data[pos+1 : pos+5])
		// Compare widths carefully: on 32-bit platforms int(n32) could go
		// negative and sail past a signed bounds check into a slice panic.
		if uint64(n32) > uint64(len(data)-pos-9) {
			return nil, fmt.Errorf("%w: section %d length %d exceeds payload", ErrBadArchive, i, n32)
		}
		n := int(n32)
		frame := data[pos : pos+5+n]
		sum := binary.LittleEndian.Uint32(data[pos+5+n : pos+9+n])
		if crc32.ChecksumIEEE(frame) != sum {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrBadArchive, i)
		}
		payload := frame[5:]
		pos += 9 + n

		switch kind {
		case kindMeta:
			if haveMeta {
				return nil, fmt.Errorf("%w: duplicate metadata section", ErrBadArchive)
			}
			var m Meta
			if err := json.Unmarshal(payload, &m); err != nil {
				return nil, fmt.Errorf("%w: metadata: %v", ErrBadArchive, err)
			}
			m.Apply(rep)
			haveMeta = true
		case kindFLL:
			l, err := fll.Unmarshal(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: section %d: %v", ErrBadArchive, i, err)
			}
			if l.TID > MaxTID {
				return nil, fmt.Errorf("%w: section %d: implausible thread id %d", ErrBadArchive, i, l.TID)
			}
			rep.FLLs[int(l.TID)] = append(rep.FLLs[int(l.TID)], l)
		case kindMRL:
			l, err := mrl.Unmarshal(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: section %d: %v", ErrBadArchive, i, err)
			}
			if l.TID > MaxTID {
				return nil, fmt.Errorf("%w: section %d: implausible thread id %d", ErrBadArchive, i, l.TID)
			}
			rep.MRLs[int(l.TID)] = append(rep.MRLs[int(l.TID)], l)
		default:
			return nil, fmt.Errorf("%w: unknown section kind %#x", ErrBadArchive, kind)
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadArchive, len(data)-pos)
	}
	if !haveMeta {
		return nil, fmt.Errorf("%w: no metadata section", ErrBadArchive)
	}
	return rep, nil
}

// ID returns the content address of a packed archive: the hex SHA-256 of
// its bytes. Because Pack is deterministic, identical reports share an ID.
func ID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
