// Package report implements the packed single-file crash-report archive:
// the blob a production BugNet uploads from a customer site to the
// developer's triage service (paper §4.8).
//
// SaveReport's directory layout is convenient for local debugging but
// awkward to ship: a report is many small files plus a manifest, and an
// upload endpoint would have to accept a tarball or multipart form and
// trust the manifest's file references. The archive flattens one
// CrashReport into a single self-describing byte stream:
//
//	magic "BNAR" | version (1 byte) | section count (u32)
//	section*:  kind (1 byte) | length (u32) | payload | CRC32(kind‖length‖payload)
//
// Section kinds: 'M' (exactly one, first) holds the report metadata as
// JSON — PID, BinaryID, the crash record, and the recording log-region
// stats; 'F' and 'R' sections carry one fll.Log / mrl.Log each in their
// existing Marshal wire formats, which embed their own TID/CID and a
// second, inner checksum. Every section is independently CRC-framed so
// truncation or corruption is localized at decode time, before any log is
// replayed.
//
// I/O is streaming in both directions. PackTo copies each log's encoded
// section straight from its lazy view into the writer — nothing is
// re-encoded and at most one section is in memory at a time. An Archive
// (OpenReaderAt / OpenFile) scans and CRC-validates the sections once,
// then serves a CrashReport of lazy views that re-read their payloads
// from the underlying source on demand, so replaying a multi-gigabyte
// report from disk never loads the whole archive.
//
// Pack is deterministic (threads ascending, logs in recording order), so
// the SHA-256 of the packed bytes is a stable content address: the same
// crash window recorded at the same customer site always produces the same
// ID, which is what lets the triage store deduplicate identical uploads.
package report

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/fll"
	"bugnet/internal/kernel"
	"bugnet/internal/logstore"
	"bugnet/internal/mrl"
)

var magic = [4]byte{'B', 'N', 'A', 'R'}

const version = 1

// Section kinds.
const (
	kindMeta = 'M'
	kindFLL  = 'F'
	kindMRL  = 'R'
)

// MaxSections bounds the section count a decoder will accept, limiting
// allocation from a hostile header before any payload is validated.
const MaxSections = 1 << 20

// MaxTID bounds the thread ids a decoder will accept. Downstream replay
// allocates per-thread state indexed by TID and the race detector's
// vector clocks are O(threads²), so the bound must be small enough that
// even the quadratic cost is trivial: 64 threads is 8× the largest
// simulated machine while capping the detector at a few KB.
const MaxTID = 64

// ErrBadArchive reports a structurally invalid archive.
var ErrBadArchive = errors.New("report: bad archive")

// Meta is the flattened report metadata: identity, crash record, and the
// recording options replay must match (paper §5.1) — without those a
// receiver replaying a LogCodeLoads recording would misalign the log
// stream and mislabel every such report as diverged. It is shared by the
// packed archive's 'M' section and the directory manifest so the two
// serialized forms cannot drift apart.
type Meta struct {
	PID             uint32        `json:"pid"`
	Binary          core.BinaryID `json:"binary"`
	LogCodeLoads    bool          `json:"log_code_loads,omitempty"`
	DictCounterBits int           `json:"dict_counter_bits,omitempty"`
	DictInsertTop   bool          `json:"dict_insert_top,omitempty"`
	Crash           *MetaCrash    `json:"crash,omitempty"`
	// FLLStats and MRLStats carry the recording log regions' occupancy
	// and eviction counters: how much window the report covers and how
	// much the recorder's budget discarded before collection.
	FLLStats *logstore.Stats `json:"fll_stats,omitempty"`
	MRLStats *logstore.Stats `json:"mrl_stats,omitempty"`
}

// MetaCrash flattens kernel.CrashInfo for stable JSON.
type MetaCrash struct {
	TID   int    `json:"tid"`
	Cause uint8  `json:"cause"`
	PC    uint32 `json:"pc"`
	Addr  uint32 `json:"addr"`
	IC    uint64 `json:"ic"`
}

// MetaOf flattens a report's metadata.
func MetaOf(rep *core.CrashReport) Meta {
	m := Meta{
		PID:             rep.PID,
		Binary:          rep.Binary,
		LogCodeLoads:    rep.LogCodeLoads,
		DictCounterBits: rep.DictOptions.CounterBits,
		DictInsertTop:   rep.DictOptions.InsertAtTop,
	}
	if rep.Crash != nil && rep.Crash.Fault != nil {
		m.Crash = &MetaCrash{
			TID:   rep.Crash.TID,
			Cause: uint8(rep.Crash.Fault.Cause),
			PC:    rep.Crash.Fault.PC,
			Addr:  rep.Crash.Fault.Addr,
			IC:    rep.Crash.Fault.IC,
		}
	}
	if rep.FLLStats != (logstore.Stats{}) {
		st := rep.FLLStats
		m.FLLStats = &st
	}
	if rep.MRLStats != (logstore.Stats{}) {
		st := rep.MRLStats
		m.MRLStats = &st
	}
	return m
}

// Apply restores the flattened metadata onto a report.
func (m Meta) Apply(rep *core.CrashReport) {
	rep.PID = m.PID
	rep.Binary = m.Binary
	rep.LogCodeLoads = m.LogCodeLoads
	rep.DictOptions.CounterBits = m.DictCounterBits
	rep.DictOptions.InsertAtTop = m.DictInsertTop
	if m.Crash != nil {
		rep.Crash = &kernel.CrashInfo{
			TID: m.Crash.TID,
			Fault: &cpu.FaultInfo{
				Cause: cpu.FaultCause(m.Crash.Cause),
				PC:    m.Crash.PC,
				Addr:  m.Crash.Addr,
				IC:    m.Crash.IC,
			},
		}
	}
	if m.FLLStats != nil {
		rep.FLLStats = *m.FLLStats
	}
	if m.MRLStats != nil {
		rep.MRLStats = *m.MRLStats
	}
}

// ThreadIDs returns the sorted union of threads with retained FLLs or
// MRLs. The union matters: the two log kinds are evicted from separately
// budgeted stores, so a thread can retain MRLs after its FLLs aged out,
// and those ordering constraints must survive serialization. Shared by
// Pack and the directory-manifest writer so the two forms agree.
func ThreadIDs(rep *core.CrashReport) []int {
	tids := make([]int, 0, len(rep.FLLs))
	seen := make(map[int]bool)
	for tid := range rep.FLLs {
		tids = append(tids, tid)
		seen[tid] = true
	}
	for tid := range rep.MRLs {
		if !seen[tid] {
			tids = append(tids, tid)
		}
	}
	sort.Ints(tids)
	return tids
}

// writeSection streams one CRC-framed section.
func writeSection(w io.Writer, kind byte, payload []byte) error {
	var head [5]byte
	head[0] = kind
	binary.LittleEndian.PutUint32(head[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(head[:])
	crc.Write(payload)
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// PackTo streams a crash report into w as a single archive: the metadata
// section, then every log's encoded bytes copied straight from its view —
// at most one section is held in memory at a time, so a disk-spilled
// window packs in O(largest section) memory. The byte stream is
// deterministic: packing the same report twice yields identical bytes.
func PackTo(w io.Writer, rep *core.CrashReport) error {
	cw := &countingWriter{w: w}
	w = cw
	defer func() {
		mPacks.Inc()
		mPackBytes.Add(cw.n)
	}()
	mj, err := json.Marshal(MetaOf(rep))
	if err != nil {
		return err
	}

	tids := ThreadIDs(rep)

	sections := uint32(1)
	for _, tid := range tids {
		sections += uint32(len(rep.FLLs[tid]) + len(rep.MRLs[tid]))
	}

	var hdr [9]byte
	copy(hdr[:4], magic[:])
	hdr[4] = version
	binary.LittleEndian.PutUint32(hdr[5:], sections)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeSection(w, kindMeta, mj); err != nil {
		return err
	}
	for _, tid := range tids {
		for _, l := range rep.FLLs[tid] {
			data, err := l.Encoded()
			if err != nil {
				return fmt.Errorf("report: FLL T%d C%d: %w", tid, l.CID, err)
			}
			if err := writeSection(w, kindFLL, data); err != nil {
				return err
			}
		}
		for _, l := range rep.MRLs[tid] {
			data, err := l.Encoded()
			if err != nil {
				return fmt.Errorf("report: MRL T%d C%d: %w", tid, l.CID, err)
			}
			if err := writeSection(w, kindMRL, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Pack encodes a crash report as a single archive blob in memory; see
// PackTo for the streaming form.
func Pack(rep *core.CrashReport) ([]byte, error) {
	var buf bytes.Buffer
	if err := PackTo(&buf, rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Section describes one archive section for inspection tools: its kind,
// the log identity it carries, and its encoded payload size.
type Section struct {
	Kind byte
	// TID and CID identify the log ('F'/'R' sections; meta reports -1/0).
	TID int
	CID uint32
	// Offset and Len locate the payload within the archive.
	Offset int64
	Len    int
}

// section is the reader's internal index entry: Section plus the parsed
// log metadata the lazy views are built from.
type section struct {
	Section
	fmeta *fll.Meta
	rmeta *mrl.Meta
}

// Archive is an opened report archive: framing and checksums validated,
// section payloads left in place and served lazily. It stays readable for
// as long as the underlying source does; Close releases a source the
// archive owns (OpenFile).
type Archive struct {
	src    io.ReaderAt
	closer io.Closer
	meta   Meta
	secs   []section
}

// OpenBytes opens an archive held in memory.
func OpenBytes(data []byte) (*Archive, error) {
	return OpenReaderAt(bytes.NewReader(data), int64(len(data)))
}

// OpenFile opens an archive file; the returned Archive owns the handle
// and must be Closed.
func OpenFile(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	a, err := OpenReaderAt(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	a.closer = f
	return a, nil
}

// OpenReaderAt scans and validates an archive in src, reading each
// section once for its checksum and its metadata. Payloads are not
// retained; Report hands out lazy views that re-read them on demand.
func OpenReaderAt(src io.ReaderAt, size int64) (a *Archive, err error) {
	defer func() { countOpen(err) }()
	return openReaderAt(src, size)
}

func openReaderAt(src io.ReaderAt, size int64) (*Archive, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(io.NewSectionReader(src, 0, size), hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadArchive)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: missing magic", ErrBadArchive)
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadArchive, hdr[4])
	}
	sections := binary.LittleEndian.Uint32(hdr[5:9])
	if sections == 0 || sections > MaxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrBadArchive, sections)
	}

	a := &Archive{src: src}
	pos := int64(9)
	haveMeta := false
	for i := uint32(0); i < sections; i++ {
		var head [5]byte
		if size-pos < 9 {
			return nil, fmt.Errorf("%w: truncated at section %d", ErrBadArchive, i)
		}
		if _, err := src.ReadAt(head[:], pos); err != nil {
			return nil, fmt.Errorf("%w: truncated at section %d", ErrBadArchive, i)
		}
		kind := head[0]
		n32 := binary.LittleEndian.Uint32(head[1:5])
		// Compare widths carefully: on 32-bit platforms int(n32) could go
		// negative and sail past a signed bounds check into a slice panic.
		if uint64(n32) > uint64(size-pos-9) {
			return nil, fmt.Errorf("%w: section %d length %d exceeds payload", ErrBadArchive, i, n32)
		}
		n := int(n32)
		payload := make([]byte, n)
		if _, err := src.ReadAt(payload, pos+5); err != nil {
			return nil, fmt.Errorf("%w: section %d unreadable: %v", ErrBadArchive, i, err)
		}
		var sumBuf [4]byte
		if _, err := src.ReadAt(sumBuf[:], pos+5+int64(n)); err != nil {
			return nil, fmt.Errorf("%w: section %d unreadable: %v", ErrBadArchive, i, err)
		}
		crc := crc32.NewIEEE()
		crc.Write(head[:])
		crc.Write(payload)
		if crc.Sum32() != binary.LittleEndian.Uint32(sumBuf[:]) {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrBadArchive, i)
		}

		sec := section{Section: Section{Kind: kind, TID: -1, Offset: pos + 5, Len: n}}
		switch kind {
		case kindMeta:
			if haveMeta {
				return nil, fmt.Errorf("%w: duplicate metadata section", ErrBadArchive)
			}
			if err := json.Unmarshal(payload, &a.meta); err != nil {
				return nil, fmt.Errorf("%w: metadata: %v", ErrBadArchive, err)
			}
			haveMeta = true
		case kindFLL:
			m, err := fll.ParseMeta(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: section %d: %v", ErrBadArchive, i, err)
			}
			if m.TID > MaxTID {
				return nil, fmt.Errorf("%w: section %d: implausible thread id %d", ErrBadArchive, i, m.TID)
			}
			sec.TID, sec.CID, sec.fmeta = int(m.TID), m.CID, &m
		case kindMRL:
			m, err := mrl.ParseMeta(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: section %d: %v", ErrBadArchive, i, err)
			}
			if m.TID > MaxTID {
				return nil, fmt.Errorf("%w: section %d: implausible thread id %d", ErrBadArchive, i, m.TID)
			}
			sec.TID, sec.CID, sec.rmeta = int(m.TID), m.CID, &m
		default:
			return nil, fmt.Errorf("%w: unknown section kind %#x", ErrBadArchive, kind)
		}
		a.secs = append(a.secs, sec)
		pos += 9 + int64(n)
	}
	if pos != size {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadArchive, size-pos)
	}
	if !haveMeta {
		return nil, fmt.Errorf("%w: no metadata section", ErrBadArchive)
	}
	return a, nil
}

// Close releases an owned source (no-op for OpenBytes archives).
func (a *Archive) Close() error {
	if a.closer != nil {
		err := a.closer.Close()
		a.closer = nil
		return err
	}
	return nil
}

// Meta returns the report metadata.
func (a *Archive) Meta() Meta { return a.meta }

// Sections returns the validated section index in archive order.
func (a *Archive) Sections() []Section {
	out := make([]Section, len(a.secs))
	for i := range a.secs {
		out[i] = a.secs[i].Section
	}
	return out
}

// loadSection re-reads one section payload from the source.
func (a *Archive) loadSection(off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := a.src.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("report: re-reading archive section: %w", err)
	}
	return buf, nil
}

// Report assembles the crash report: metadata applied, every log a lazy
// view reading its section from the archive source on demand. The report
// is valid only while the archive's source remains readable.
func (a *Archive) Report() *core.CrashReport {
	rep := &core.CrashReport{
		FLLs: make(map[int][]*fll.Ref),
		MRLs: make(map[int][]*mrl.Ref),
	}
	a.meta.Apply(rep)
	for i := range a.secs {
		sec := a.secs[i]
		load := func() ([]byte, error) { return a.loadSection(sec.Offset, sec.Len) }
		switch {
		case sec.fmeta != nil:
			rep.FLLs[sec.TID] = append(rep.FLLs[sec.TID], fll.NewLazyRef(*sec.fmeta, int64(sec.Len), load))
		case sec.rmeta != nil:
			rep.MRLs[sec.TID] = append(rep.MRLs[sec.TID], mrl.NewLazyRef(*sec.rmeta, int64(sec.Len), load))
		}
	}
	return rep
}

// Unpack decodes an archive produced by Pack, validating the framing and
// every section checksum before any log payload is trusted. The returned
// report's views retain data.
func Unpack(data []byte) (*core.CrashReport, error) {
	a, err := OpenBytes(data)
	if err != nil {
		return nil, err
	}
	return a.Report(), nil
}

// ID returns the content address of a packed archive: the hex SHA-256 of
// its bytes. Because Pack is deterministic, identical reports share an ID.
func ID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
