package report

import (
	"io"

	"bugnet/internal/obs"
)

// Archive I/O counters: how many BNAR archives move through this
// process, and how many bytes they carry.
var (
	mPacks = obs.Default.Counter("bugnet_report_packs_total",
		"Crash-report archives packed.")
	mPackBytes = obs.Default.Counter("bugnet_report_packed_bytes_total",
		"Archive bytes produced by packing.")
	openResults = obs.Default.CounterVec("bugnet_report_opens_total",
		"Archive open attempts.", "result")
	mOpenOK  = openResults.With("ok")
	mOpenErr = openResults.With("error")
)

// countingWriter tallies bytes written through it for the pack counters.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

func countOpen(err error) {
	if err != nil {
		mOpenErr.Inc()
	} else {
		mOpenOK.Inc()
	}
}
