// Package dict implements BugNet's dictionary-based load-value compressor
// (paper §4.3.1).
//
// A small fully-associative table captures frequently occurring load values.
// When a value about to be logged hits in the table, the recorder emits a
// log2(size)-bit rank instead of the full 32-bit value. The table is emptied
// at the start of every checkpoint interval and updated on *every* executed
// load — including loads whose values are not logged — so the replayer can
// regenerate the identical table state by applying the same updates, and a
// rank recorded at any point decodes to the right value.
//
// Update rule (from the paper): each entry has a 3-bit saturating counter.
// On a hit the counter increments; if it becomes greater than or equal to
// the counter of the entry ranked immediately above, the two entries swap
// positions, percolating hot values toward rank 0. On a miss the value is
// inserted over the entry with the smallest counter, ties broken toward the
// lowest-ranked (bottom) position.
//
// The paper leaves two details unspecified; we fix them deterministically
// (both recorder and replayer share this code, so any consistent choice
// preserves correctness): a newly inserted value starts with counter 1, and
// while the table is not yet full new values fill the first free slot.
package dict

import "fmt"

// DefaultSize is the table size evaluated in the paper's main results.
const DefaultSize = 64

// defaultCounterBits is the paper's saturating-counter width.
const defaultCounterBits = 3

type entry struct {
	val   uint32
	count uint8
}

// Stats counts dictionary activity across interval boundaries. Figure 5 of
// the paper reports Hits/Lookups for various table sizes.
type Stats struct {
	Lookups uint64
	Hits    uint64
}

// HitRate returns the fraction of lookups that hit, in [0,1].
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Options tune the geometry details the paper fixes implicitly; the
// defaults reproduce §4.3.1 exactly. Changing them is only meaningful for
// the design-space ablations — both recorder and replayer must use the
// same options.
type Options struct {
	// CounterBits is the saturating-counter width (paper: 3).
	CounterBits int
	// InsertAtTop inserts missing values over the *highest*-ranked entry
	// among counter ties instead of the paper's lowest-position rule.
	InsertAtTop bool
}

// Table is the dictionary table. It is not safe for concurrent use; each
// simulated processor owns one.
type Table struct {
	entries    []entry
	used       int
	bits       uint
	counterMax uint8
	insertTop  bool
	stats      Stats
}

// New returns an empty table with the given size, which must be a power of
// two between 2 and 65536 so ranks have a fixed bit width.
func New(size int) *Table {
	return NewWithOptions(size, Options{})
}

// NewWithOptions returns a table with explicit geometry options.
func NewWithOptions(size int, opts Options) *Table {
	if size < 2 || size > 1<<16 || size&(size-1) != 0 {
		panic(fmt.Sprintf("dict: size %d must be a power of two in [2, 65536]", size))
	}
	if opts.CounterBits == 0 {
		opts.CounterBits = defaultCounterBits
	}
	if opts.CounterBits < 1 || opts.CounterBits > 8 {
		panic(fmt.Sprintf("dict: counter width %d out of range [1, 8]", opts.CounterBits))
	}
	bits := uint(0)
	for 1<<bits < size {
		bits++
	}
	return &Table{
		entries:    make([]entry, size),
		bits:       bits,
		counterMax: uint8(1<<opts.CounterBits - 1),
		insertTop:  opts.InsertAtTop,
	}
}

// Size returns the table capacity.
func (t *Table) Size() int { return len(t.entries) }

// IndexBits returns the width of an encoded rank: log2(Size).
func (t *Table) IndexBits() uint { return t.bits }

// Reset empties the table, as required at the start of each checkpoint
// interval. Statistics are preserved across resets.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.used = 0
}

// Lookup searches for v and returns its current rank. It counts toward
// statistics but does not modify the table; callers follow it with Update.
func (t *Table) Lookup(v uint32) (rank int, hit bool) {
	t.stats.Lookups++
	for i := 0; i < t.used; i++ {
		if t.entries[i].val == v {
			t.stats.Hits++
			return i, true
		}
	}
	return 0, false
}

// ValueAt returns the value currently holding the given rank. The replayer
// uses it to decode a logged rank; callers follow it with Update.
func (t *Table) ValueAt(rank int) (uint32, error) {
	if rank < 0 || rank >= t.used {
		return 0, fmt.Errorf("dict: rank %d out of range (used %d)", rank, t.used)
	}
	return t.entries[rank].val, nil
}

// Update applies the paper's table-update rule for an executed load of
// value v. It must be called exactly once per executed loggable operation,
// in both recording and replay, to keep the two table states identical.
func (t *Table) Update(v uint32) {
	for i := 0; i < t.used; i++ {
		if t.entries[i].val != v {
			continue
		}
		if t.entries[i].count < t.counterMax {
			t.entries[i].count++
		}
		if i > 0 && t.entries[i].count >= t.entries[i-1].count {
			t.entries[i], t.entries[i-1] = t.entries[i-1], t.entries[i]
		}
		return
	}
	// Miss: fill a free slot, else replace the smallest counter (ties
	// toward the bottom of the table).
	if t.used < len(t.entries) {
		t.entries[t.used] = entry{val: v, count: 1}
		t.used++
		return
	}
	victim := 0
	for i := 1; i < len(t.entries); i++ {
		if t.entries[i].count >= t.entries[victim].count {
			continue
		}
		victim = i
	}
	if !t.insertTop {
		// The paper's rule: the lowest-positioned entry among ties.
		for i := len(t.entries) - 1; i > victim; i-- {
			if t.entries[i].count == t.entries[victim].count {
				victim = i
				break
			}
		}
	}
	t.entries[victim] = entry{val: v, count: 1}
}

// Clone returns a deep copy of the table — contents, ordering, counters and
// statistics. Replay checkpointing clones the table so a restored replay
// decodes ranks against the exact mid-interval dictionary state.
func (t *Table) Clone() *Table {
	cp := *t
	cp.entries = append([]entry(nil), t.entries...)
	return &cp
}

// Stats returns cumulative lookup statistics.
func (t *Table) Stats() Stats { return t.stats }

// ResetStats zeroes the cumulative statistics.
func (t *Table) ResetStats() { t.stats = Stats{} }

// Snapshot returns the current (value, counter) contents in rank order, for
// tests and debugging tools.
func (t *Table) Snapshot() []uint32 {
	out := make([]uint32, t.used)
	for i := 0; i < t.used; i++ {
		out[i] = t.entries[i].val
	}
	return out
}

// Equal reports whether two tables hold identical contents and ordering —
// the invariant linking recorder and replayer.
func (t *Table) Equal(o *Table) bool {
	if len(t.entries) != len(o.entries) || t.used != o.used {
		return false
	}
	for i := 0; i < t.used; i++ {
		if t.entries[i] != o.entries[i] {
			return false
		}
	}
	return true
}
