package dict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidSizes(t *testing.T) {
	for _, n := range []int{2, 8, 64, 1024, 65536} {
		tb := New(n)
		if tb.Size() != n {
			t.Errorf("Size = %d; want %d", tb.Size(), n)
		}
	}
	wantBits := map[int]uint{8: 3, 16: 4, 32: 5, 64: 6, 128: 7, 256: 8, 1024: 10}
	for n, b := range wantBits {
		if got := New(n).IndexBits(); got != b {
			t.Errorf("IndexBits(%d) = %d; want %d", n, got, b)
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, 1, 3, 63, 1 << 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestLookupUpdateBasics(t *testing.T) {
	tb := New(8)
	if _, hit := tb.Lookup(42); hit {
		t.Fatal("hit in empty table")
	}
	tb.Update(42)
	rank, hit := tb.Lookup(42)
	if !hit || rank != 0 {
		t.Fatalf("after insert: rank=%d hit=%v", rank, hit)
	}
	v, err := tb.ValueAt(0)
	if err != nil || v != 42 {
		t.Fatalf("ValueAt(0) = %d, %v", v, err)
	}
	if _, err := tb.ValueAt(1); err == nil {
		t.Error("ValueAt past used succeeded")
	}
}

func TestPercolation(t *testing.T) {
	tb := New(8)
	tb.Update(1) // rank 0, count 1
	tb.Update(2) // rank 1, count 1
	// Hitting 2 increments its count to 2 >= count(1)=1, so they swap.
	tb.Update(2)
	if r, _ := tb.Lookup(2); r != 0 {
		t.Errorf("rank of 2 = %d; want 0 after percolation", r)
	}
	if r, _ := tb.Lookup(1); r != 1 {
		t.Errorf("rank of 1 = %d; want 1", r)
	}
}

func TestCounterSaturation(t *testing.T) {
	tb := New(2)
	for i := 0; i < 100; i++ {
		tb.Update(7)
	}
	// Nothing observable should break; 7 stays at rank 0.
	if r, hit := tb.Lookup(7); !hit || r != 0 {
		t.Errorf("after saturation: rank=%d hit=%v", r, hit)
	}
}

func TestReplacementPolicy(t *testing.T) {
	tb := New(2)
	tb.Update(10) // count 1
	tb.Update(10) // count 2
	tb.Update(20) // count 1
	tb.Update(30) // replaces the smallest counter: 20 (rank 1)
	if _, hit := tb.Lookup(10); !hit {
		t.Error("hot value 10 evicted")
	}
	if _, hit := tb.Lookup(20); hit {
		t.Error("cold value 20 survived")
	}
	if _, hit := tb.Lookup(30); !hit {
		t.Error("new value 30 not inserted")
	}
}

func TestReplacementTieBreaksLow(t *testing.T) {
	tb := New(4)
	tb.Update(1)
	tb.Update(2)
	tb.Update(3)
	tb.Update(4) // all count 1
	tb.Update(5) // tie on counter; lowest position (rank 3 = value 4) replaced
	if _, hit := tb.Lookup(4); hit {
		t.Error("tie-break should have evicted the bottom entry")
	}
	for _, v := range []uint32{1, 2, 3, 5} {
		if _, hit := tb.Lookup(v); !hit {
			t.Errorf("value %d missing", v)
		}
	}
}

func TestReset(t *testing.T) {
	tb := New(8)
	tb.Update(1)
	tb.Update(2)
	tb.Lookup(1)
	before := tb.Stats()
	tb.Reset()
	if _, hit := tb.Lookup(1); hit {
		t.Error("hit after Reset")
	}
	if tb.Stats().Lookups != before.Lookups+1 {
		t.Error("Reset cleared statistics; it must preserve them")
	}
	tb.ResetStats()
	if tb.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestStatsHitRate(t *testing.T) {
	tb := New(8)
	tb.Update(5)
	tb.Lookup(5) // hit
	tb.Lookup(6) // miss
	s := tb.Stats()
	if s.Lookups != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
}

// TestRecorderReplayerLockstep drives a "recorder" table with the paper's
// record flow (Lookup then Update) and a "replayer" table with the decode
// flow (ValueAt then Update), checking that every encoded rank decodes to
// the original value and the two tables remain identical.
func TestRecorderReplayerLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rec := New(16)
	rep := New(16)
	// A skewed value distribution, like real load values.
	pool := []uint32{0, 1, 0xFFFFFFFF, 4096, 7, 0, 0, 1, 8, 0}
	for i := 0; i < 5000; i++ {
		var v uint32
		if rng.Intn(4) == 0 {
			v = rng.Uint32()
		} else {
			v = pool[rng.Intn(len(pool))]
		}
		rank, hit := rec.Lookup(v)
		rec.Update(v)
		if hit {
			got, err := rep.ValueAt(rank)
			if err != nil || got != v {
				t.Fatalf("step %d: decode rank %d = %d, %v; want %d", i, rank, got, err, v)
			}
			rep.Update(got)
		} else {
			rep.Update(v)
		}
		if !rec.Equal(rep) {
			t.Fatalf("step %d: tables diverged\nrec=%v\nrep=%v", i, rec.Snapshot(), rep.Snapshot())
		}
	}
}

// TestPropertyDeterminism: identical update sequences yield identical
// tables regardless of interleaved lookups (lookups must not mutate).
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(8), New(8)
		for i := 0; i < 2000; i++ {
			v := uint32(rng.Intn(24)) // small domain to force collisions/evictions
			a.Lookup(uint32(rng.Intn(24)))
			a.Update(v)
			b.Update(v)
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyHotValueRises: a value updated far more often than any other
// ends at rank 0.
func TestPropertyHotValueRises(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(8)
		hot := uint32(777)
		for i := 0; i < 3000; i++ {
			if rng.Intn(3) != 0 {
				tb.Update(hot)
			} else {
				tb.Update(uint32(rng.Intn(1000)) + 1000)
			}
		}
		r, hit := tb.Lookup(hot)
		return hit && r == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpdate(b *testing.B) {
	tb := New(DefaultSize)
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint32, 1024)
	for i := range vals {
		vals[i] = uint32(rng.Intn(128))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Update(vals[i&1023])
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := New(DefaultSize)
	for i := 0; i < DefaultSize; i++ {
		tb.Update(uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(uint32(i & 127))
	}
}
