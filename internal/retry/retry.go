// Package retry is the one retry policy used everywhere a bugnet
// component talks to something that can transiently fail: cluster
// replica fan-out, read-repair fetches, anti-entropy offers, and
// bugnet-record's report upload. A Policy is jittered exponential
// backoff with per-attempt timeouts and a bounded overall budget;
// server-supplied Retry-After hints override the computed backoff, and
// errors wrapped with Permanent stop the loop immediately. The per-peer
// circuit breaker lives in breaker.go.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"bugnet/internal/obs"
)

// Outcome counters: one increment per Do call for its final outcome
// (ok/exhausted/aborted), plus one per individual retried attempt.
var (
	retryResults = obs.Default.CounterVec("bugnet_retry_total",
		"Retrying operations by outcome: ok (eventual success), retry (one backed-off re-attempt), exhausted (attempts used up), aborted (permanent error or context cancellation).",
		"outcome")
	mRetryOK        = retryResults.With("ok")
	mRetryRetried   = retryResults.With("retry")
	mRetryExhausted = retryResults.With("exhausted")
	mRetryAborted   = retryResults.With("aborted")
)

// Policy is one retry schedule. The zero value is usable: 3 attempts,
// 100ms base delay doubling to a 5s cap, 20% jitter, no per-attempt
// timeout, no overall budget.
type Policy struct {
	// MaxAttempts is the total number of attempts, first try included
	// (default 3; 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the wait after the first failure (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction so a fleet of
	// retriers never synchronizes (default 0.2; negative disables).
	Jitter float64
	// AttemptTimeout bounds each attempt's context (0 = none beyond the
	// caller's).
	AttemptTimeout time.Duration
	// Budget bounds the whole Do call — attempts plus waits — with a
	// context deadline (0 = none beyond the caller's).
	Budget time.Duration

	// Sleep replaces the backoff wait (tests). nil uses a context-aware
	// timer sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// permanentError marks a failure retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Policy.Do stops immediately and returns err
// unwrapped — 4xx responses, validation failures, open circuits.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// afterError carries a server-specified minimum wait (Retry-After).
type afterError struct {
	err   error
	after time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After wraps a retryable err with the server's Retry-After hint; Do
// waits at least d before the next attempt.
func After(err error, d time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, after: d}
}

// RetryAfter extracts a Retry-After hint attached with After.
func RetryAfter(err error) (time.Duration, bool) {
	var ae *afterError
	if errors.As(err, &ae) {
		return ae.after, true
	}
	return 0, false
}

// ParseRetryAfter parses an HTTP Retry-After header in its delta-seconds
// form (the form bugnet servers emit). Dates and junk report false.
func ParseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// unwrapFinal strips the retry-control wrappers so callers get the
// underlying failure back from Do.
func unwrapFinal(err error) error {
	var pe *permanentError
	if errors.As(err, &pe) {
		return pe.err
	}
	var ae *afterError
	if errors.As(err, &ae) {
		return ae.err
	}
	return err
}

// Do runs op under the policy until it succeeds, exhausts its attempts,
// hits a Permanent error, or the context dies. The returned error is the
// last attempt's, unwrapped from the retry-control markers.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := p.BaseDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	if p.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Budget)
		defer cancel()
	}

	var err error
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(nil)
		if p.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err = op(attemptCtx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			mRetryOK.Inc()
			return nil
		}
		if IsPermanent(err) {
			mRetryAborted.Inc()
			return unwrapFinal(err)
		}
		if ctx.Err() != nil {
			mRetryAborted.Inc()
			return unwrapFinal(err)
		}
		if attempt >= attempts {
			mRetryExhausted.Inc()
			return fmt.Errorf("retry: %d attempts: %w", attempts, unwrapFinal(err))
		}
		wait := jittered(delay, jitter)
		if ra, ok := RetryAfter(err); ok && ra > wait {
			wait = ra
		}
		mRetryRetried.Inc()
		if serr := sleep(ctx, wait); serr != nil {
			mRetryAborted.Inc()
			return unwrapFinal(err)
		}
		delay = time.Duration(float64(delay) * mult)
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// jittered spreads d by ±frac so synchronized retriers decorrelate.
func jittered(d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	if frac > 1 {
		frac = 1
	}
	spread := 1 + frac*(2*rand.Float64()-1)
	return time.Duration(float64(d) * spread)
}

// sleepCtx waits d or until the context dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
