package retry

import (
	"testing"
	"time"
)

// fakeClock drives a breaker's notion of now without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

// TestBreakerOpensAtThreshold checks the closed→open transition on a
// run of consecutive failures, with a success resetting the run.
func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success() // resets the run
	b.Failure()
	b.Failure()
	if b.CurrentState() != Closed {
		t.Fatalf("state = %v after reset run, want closed", b.CurrentState())
	}
	b.Failure()
	if b.CurrentState() != Open {
		t.Fatalf("state = %v after threshold failures, want open", b.CurrentState())
	}
	if b.Allow() {
		t.Fatal("Allow() = true inside cooldown, want false")
	}
}

// TestBreakerHalfOpenSingleProbe checks the cooldown admits exactly one
// probe, whose success closes the circuit.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.CurrentState() != Open {
		t.Fatal("want open after one failure at threshold 1")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("Allow() = false after cooldown, want one probe admitted")
	}
	if b.CurrentState() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.CurrentState())
	}
	if b.Allow() {
		t.Fatal("Allow() = true with a probe in flight, want false")
	}
	b.Success()
	if b.CurrentState() != Closed || !b.Allow() {
		t.Fatalf("state = %v after probe success, want closed and allowing", b.CurrentState())
	}
}

// TestBreakerProbeFailureReopens checks a failed probe re-opens the
// circuit for a fresh cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("want probe admitted")
	}
	b.Failure()
	if b.CurrentState() != Open {
		t.Fatalf("state = %v after probe failure, want open", b.CurrentState())
	}
	if b.Allow() {
		t.Fatal("Allow() = true right after re-open, want false")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("want a new probe after the second cooldown")
	}
}

// TestBreakerSet checks lazy creation and the open-targets listing.
func TestBreakerSet(t *testing.T) {
	s := NewBreakerSet(2, time.Minute)
	a := s.For("http://a")
	if a != s.For("http://a") {
		t.Fatal("For returned distinct breakers for one target")
	}
	s.For("http://b")
	a.Failure()
	a.Failure()
	open := s.Open()
	if len(open) != 1 || open[0] != "http://a" {
		t.Fatalf("Open() = %v, want [http://a]", open)
	}
}
