package retry

import (
	"errors"
	"sync"
	"time"

	"bugnet/internal/obs"
)

// ErrOpen reports a call refused because the target's circuit is open.
// Callers usually wrap it with Permanent so a Policy fails fast instead
// of spinning against a peer the breaker already condemned.
var ErrOpen = errors.New("retry: circuit open")

// breakerStates is the 0/1/2 encoding exported as bugnet_breaker_state:
// 0 closed (healthy), 1 half-open (probing), 2 open (shedding).
var breakerStates = obs.Default.GaugeVec("bugnet_breaker_state",
	"Per-peer circuit state: 0 closed, 1 half-open, 2 open.", "peer")

// State is one breaker's position.
type State int32

const (
	Closed State = iota
	HalfOpen
	Open
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is a per-target circuit breaker: consecutive failures past the
// threshold open it, opened it sheds calls for a cooldown, then admits a
// single half-open probe whose outcome closes or re-opens the circuit.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	gauge    *obs.Gauge
}

// NewBreaker builds a standalone breaker (threshold <= 0 defaults to 5
// consecutive failures, cooldown <= 0 to 5s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed. In the open state it refuses
// until the cooldown elapses, then admits exactly one probe (half-open);
// further calls are refused until that probe's Success or Failure lands.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(HalfOpen)
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed call: the circuit closes and the failure
// run resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.setState(Closed)
}

// Failure records a failed call: a failed half-open probe re-opens the
// circuit immediately; in the closed state the run of consecutive
// failures opens it at the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
		b.openedAt = b.now()
		b.setState(Open)
		return
	}
	b.failures++
	if b.state == Closed && b.failures >= b.threshold {
		b.openedAt = b.now()
		b.setState(Open)
	}
}

// CurrentState returns the breaker's position (cooldown expiry is only
// observed by Allow, so an idle open breaker reports Open).
func (b *Breaker) CurrentState() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) setState(s State) {
	b.state = s
	if b.gauge != nil {
		switch s {
		case Closed:
			b.gauge.Set(0)
		case HalfOpen:
			b.gauge.Set(1)
		default:
			b.gauge.Set(2)
		}
	}
}

// BreakerSet is a lazily grown family of per-target breakers sharing one
// configuration, each exported as a bugnet_breaker_state{peer=...} series.
type BreakerSet struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet builds the family (zero arguments take NewBreaker's
// defaults).
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	return &BreakerSet{threshold: threshold, cooldown: cooldown,
		m: make(map[string]*Breaker)}
}

// For returns (creating if needed) the breaker guarding one target.
func (s *BreakerSet) For(target string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[target]
	if !ok {
		b = NewBreaker(s.threshold, s.cooldown)
		b.gauge = breakerStates.With(target)
		b.gauge.Set(0)
		s.m[target] = b
	}
	return b
}

// Open returns the targets whose circuits are currently open — the
// degraded-peers readiness signal.
func (s *BreakerSet) Open() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for target, b := range s.m {
		if b.CurrentState() == Open {
			out = append(out, target)
		}
	}
	return out
}
