package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// collectSleeps returns a Sleep hook recording each wait.
func collectSleeps(waits *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return ctx.Err()
	}
}

// TestDoBackoffGrowth checks the exponential schedule: with jitter
// disabled the waits are base, base*mult, ... capped at MaxDelay.
func TestDoBackoffGrowth(t *testing.T) {
	var waits []time.Duration
	boom := errors.New("boom")
	p := Policy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1,
		Sleep:       collectSleeps(&waits),
	}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if calls != 5 {
		t.Fatalf("calls = %d, want 5", calls)
	}
	want := []time.Duration{100, 200, 400, 400}
	if len(waits) != len(want) {
		t.Fatalf("waits = %v, want 4 entries", waits)
	}
	for i, w := range want {
		if waits[i] != w*time.Millisecond {
			t.Errorf("wait[%d] = %v, want %v", i, waits[i], w*time.Millisecond)
		}
	}
}

// TestDoJitterBounds checks jittered delays stay within ±Jitter of the
// nominal value.
func TestDoJitterBounds(t *testing.T) {
	for i := 0; i < 100; i++ {
		d := jittered(time.Second, 0.2)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("jittered(1s, 0.2) = %v, outside [800ms, 1200ms]", d)
		}
	}
}

// TestDoEventualSuccess checks a transient failure run ends in nil.
func TestDoEventualSuccess(t *testing.T) {
	var waits []time.Duration
	calls := 0
	p := Policy{MaxAttempts: 4, Jitter: -1, Sleep: collectSleeps(&waits)}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v calls = %d, want nil after 3", err, calls)
	}
}

// TestDoPermanentStops checks a Permanent error ends the loop at once
// and comes back unwrapped.
func TestDoPermanentStops(t *testing.T) {
	fatal := errors.New("bad request")
	calls := 0
	p := Policy{MaxAttempts: 5, Sleep: collectSleeps(new([]time.Duration))}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(fatal)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if err != fatal {
		t.Fatalf("err = %v, want the unwrapped original", err)
	}
}

// TestDoRetryAfterOverridesBackoff checks a server hint larger than the
// computed backoff wins.
func TestDoRetryAfterOverridesBackoff(t *testing.T) {
	var waits []time.Duration
	shed := errors.New("shed")
	calls := 0
	p := Policy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond,
		Jitter: -1, Sleep: collectSleeps(&waits)}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return After(shed, 3*time.Second)
	})
	if !errors.Is(err, shed) {
		t.Fatalf("err = %v, want wrapped shed", err)
	}
	if len(waits) != 1 || waits[0] != 3*time.Second {
		t.Fatalf("waits = %v, want [3s]", waits)
	}
}

// TestDoContextCancellation checks a dead context aborts between
// attempts with the op's error, not a bare context error.
func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opErr := errors.New("peer down")
	calls := 0
	p := Policy{MaxAttempts: 10, Sleep: sleepCtx, BaseDelay: time.Millisecond}
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return opErr
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, opErr) {
		t.Fatalf("err = %v, want the op error", err)
	}
}

// TestDoAttemptTimeout checks each attempt gets its own deadline.
func TestDoAttemptTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, AttemptTimeout: 20 * time.Millisecond,
		BaseDelay: time.Millisecond, Jitter: -1}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		dl, ok := ctx.Deadline()
		if !ok || time.Until(dl) > 25*time.Millisecond {
			t.Fatalf("attempt %d deadline = %v ok=%v, want ~20ms", calls, dl, ok)
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if calls != 2 || err == nil {
		t.Fatalf("calls = %d err = %v, want 2 attempts then failure", calls, err)
	}
}

// TestDoBudget checks the overall budget bounds attempts plus waits.
func TestDoBudget(t *testing.T) {
	p := Policy{MaxAttempts: 100, BaseDelay: 20 * time.Millisecond,
		Jitter: -1, Budget: 60 * time.Millisecond}
	calls := 0
	start := time.Now()
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return errors.New("always")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if calls >= 100 {
		t.Fatalf("calls = %d, want budget to stop the loop early", calls)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("elapsed = %v, want well under the attempt limit's worth", elapsed)
	}
}

// TestParseRetryAfter covers the delta-seconds form and the junk cases.
func TestParseRetryAfter(t *testing.T) {
	if d, ok := ParseRetryAfter("7"); !ok || d != 7*time.Second {
		t.Fatalf("ParseRetryAfter(7) = %v %v", d, ok)
	}
	for _, bad := range []string{"", "-3", "soon", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		if _, ok := ParseRetryAfter(bad); ok {
			t.Errorf("ParseRetryAfter(%q) parsed, want false", bad)
		}
	}
}

// TestRetryAfterThroughWrapping checks the hint survives fmt wrapping.
func TestRetryAfterThroughWrapping(t *testing.T) {
	err := fmt.Errorf("context: %w", After(errors.New("x"), 2*time.Second))
	if d, ok := RetryAfter(err); !ok || d != 2*time.Second {
		t.Fatalf("RetryAfter = %v %v, want 2s true", d, ok)
	}
	if !IsPermanent(fmt.Errorf("context: %w", Permanent(errors.New("y")))) {
		t.Fatal("IsPermanent lost through wrapping")
	}
}
