// Package coherence models the directory-based cache-coherence protocol of
// the shared-memory multiprocessor BugNet assumes (paper §4.6.1).
//
// The model is an MSI directory at cache-block granularity. It is
// functional rather than timed: its job is to tell the recorder which
// remote threads send coherence replies for each memory operation, because
// those replies are what (a) invalidate remote first-load bits, forcing
// remotely written values to be re-logged, and (b) piggy-back the remote
// execution state captured in Memory Race Log entries.
//
// Reply rules (matching FDR's scheme, which BugNet adopts):
//
//   - a load that finds the block Modified in another processor receives a
//     data reply from that owner (the owner downgrades to Shared);
//   - a store invalidates every other sharer and receives one invalidation
//     acknowledgment from each; a Modified remote owner likewise replies;
//   - loads and stores to blocks in non-shared or exclusive state receive
//     no replies and generate no MRL entries (paper §4.6.3).
//
// The directory deliberately does not track cache evictions (real
// directories are similarly conservative); a stale sharer entry only causes
// a harmless extra invalidation message.
package coherence

// Directory tracks the global sharing state of every touched block.
type Directory struct {
	blockMask uint32
	nodes     int
	blocks    map[uint32]*blockState
	stats     Stats
}

type blockState struct {
	sharers  uint64 // bitmask of nodes holding the block
	owner    int    // meaningful when modified
	modified bool
}

// Stats counts protocol events.
type Stats struct {
	Loads         uint64
	Stores        uint64
	DataReplies   uint64 // owner-to-requester replies on loads
	Invalidations uint64 // invalidation acknowledgments on stores
}

// New creates a directory for up to nodes processors (max 64) and the
// given block size (power of two).
func New(nodes int, blockBytes int) *Directory {
	if nodes < 1 || nodes > 64 {
		panic("coherence: node count out of range")
	}
	if blockBytes < 4 || blockBytes&(blockBytes-1) != 0 {
		panic("coherence: block size must be a power of two >= 4")
	}
	return &Directory{
		blockMask: ^uint32(blockBytes - 1),
		nodes:     nodes,
		blocks:    make(map[uint32]*blockState),
	}
}

// Stats returns protocol event counters.
func (d *Directory) Stats() Stats { return d.stats }

// Load records node tid reading addr and returns the remote nodes that
// send coherence replies (at most one: the modified owner).
func (d *Directory) Load(tid int, addr uint32) []int {
	d.stats.Loads++
	b := d.block(addr)
	var replies []int
	if b.modified && b.owner != tid {
		replies = append(replies, b.owner)
		d.stats.DataReplies++
		b.modified = false
	}
	b.sharers |= 1 << uint(tid)
	return replies
}

// Store records node tid writing addr and returns the remote nodes that
// send invalidation acknowledgments (every other sharer). After a store
// the writer is the exclusive modified owner.
func (d *Directory) Store(tid int, addr uint32) []int {
	d.stats.Stores++
	b := d.block(addr)
	var replies []int
	others := b.sharers &^ (1 << uint(tid))
	for n := 0; others != 0; n++ {
		if others&(1<<uint(n)) != 0 {
			replies = append(replies, n)
			others &^= 1 << uint(n)
			d.stats.Invalidations++
		}
	}
	b.sharers = 1 << uint(tid)
	b.owner = tid
	b.modified = true
	return replies
}

// ExternalWrite records a non-processor write (kernel copy-in or DMA) to
// addr: all cached copies are invalidated and the directory forgets the
// block. It returns the nodes that held the block so the caller can
// invalidate their caches (no MRL entries result — the writer is not a
// thread).
func (d *Directory) ExternalWrite(addr uint32) []int {
	key := addr & d.blockMask
	b, ok := d.blocks[key]
	if !ok {
		return nil
	}
	var held []int
	for n := 0; n < d.nodes; n++ {
		if b.sharers&(1<<uint(n)) != 0 {
			held = append(held, n)
		}
	}
	delete(d.blocks, key)
	return held
}

// ExternalWriteRange applies ExternalWrite to every block overlapping
// [addr, addr+size) and returns the union of holders.
func (d *Directory) ExternalWriteRange(addr, size uint32) []int {
	if size == 0 {
		return nil
	}
	bs := ^d.blockMask + 1
	first := addr & d.blockMask
	last := (addr + size - 1) & d.blockMask
	seen := make(map[int]bool)
	for b := first; ; b += bs {
		for _, n := range d.ExternalWrite(b) {
			seen[n] = true
		}
		if b == last {
			break
		}
	}
	out := make([]int, 0, len(seen))
	for n := 0; n < d.nodes; n++ {
		if seen[n] {
			out = append(out, n)
		}
	}
	return out
}

func (d *Directory) block(addr uint32) *blockState {
	key := addr & d.blockMask
	b, ok := d.blocks[key]
	if !ok {
		b = &blockState{}
		d.blocks[key] = b
	}
	return b
}
