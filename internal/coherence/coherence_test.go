package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrivateBlockNoReplies(t *testing.T) {
	d := New(4, 64)
	if r := d.Load(0, 0x100); len(r) != 0 {
		t.Errorf("first load replies = %v", r)
	}
	if r := d.Store(0, 0x100); len(r) != 0 {
		t.Errorf("private store replies = %v", r)
	}
	if r := d.Load(0, 0x100); len(r) != 0 {
		t.Errorf("load of own modified block replies = %v", r)
	}
}

func TestLoadFromModifiedRemote(t *testing.T) {
	d := New(4, 64)
	d.Store(1, 0x200) // node 1 owns modified
	r := d.Load(0, 0x200)
	if len(r) != 1 || r[0] != 1 {
		t.Fatalf("replies = %v; want [1]", r)
	}
	// After the downgrade a second reader gets no reply.
	if r := d.Load(2, 0x200); len(r) != 0 {
		t.Errorf("post-downgrade load replies = %v", r)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	d := New(4, 64)
	d.Load(0, 0x300)
	d.Load(1, 0x300)
	d.Load(2, 0x300)
	r := d.Store(3, 0x300)
	if len(r) != 3 {
		t.Fatalf("invalidation acks = %v; want 3", r)
	}
	// Writer is now exclusive: its next store has no replies.
	if r := d.Store(3, 0x300); len(r) != 0 {
		t.Errorf("exclusive store replies = %v", r)
	}
	// A reader must now get a data reply from node 3.
	if r := d.Load(0, 0x300); len(r) != 1 || r[0] != 3 {
		t.Errorf("load after store replies = %v; want [3]", r)
	}
}

func TestBlockGranularity(t *testing.T) {
	d := New(2, 64)
	d.Store(0, 0x1000)
	// Same block, different word: still owned by 0.
	if r := d.Load(1, 0x103C); len(r) != 1 || r[0] != 0 {
		t.Errorf("same-block load replies = %v", r)
	}
	// Different block: no reply.
	if r := d.Load(1, 0x1040); len(r) != 0 {
		t.Errorf("different-block load replies = %v", r)
	}
}

func TestExternalWrite(t *testing.T) {
	d := New(4, 64)
	d.Load(0, 0x400)
	d.Load(1, 0x400)
	held := d.ExternalWrite(0x400)
	if len(held) != 2 {
		t.Fatalf("holders = %v", held)
	}
	// Forgotten block: next store sees no sharers.
	if r := d.Store(2, 0x400); len(r) != 0 {
		t.Errorf("store after external write replies = %v", r)
	}
}

func TestExternalWriteRange(t *testing.T) {
	d := New(2, 64)
	d.Load(0, 0x1000)
	d.Load(0, 0x1040)
	d.Load(1, 0x1080)
	held := d.ExternalWriteRange(0x1004, 0x100)
	if len(held) != 2 {
		t.Errorf("holders = %v; want both nodes", held)
	}
	if r := d.Store(1, 0x1000); len(r) != 0 {
		t.Errorf("range write did not clear block: %v", r)
	}
}

func TestStats(t *testing.T) {
	d := New(2, 64)
	d.Load(0, 0)
	d.Store(1, 0)
	d.Load(0, 0)
	s := d.Stats()
	if s.Loads != 2 || s.Stores != 1 || s.Invalidations != 1 || s.DataReplies != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestPropertySingleWriterInvariant: after any operation sequence, at most
// one node can be the modified owner of a block, and a store always
// invalidates every other current sharer (so no node retains a stale copy).
func TestPropertySingleWriterInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(6)
		d := New(nodes, 16)
		// model[block] = set of nodes that may hold a valid copy
		model := map[uint32]map[int]bool{}
		hold := func(b uint32) map[int]bool {
			if model[b] == nil {
				model[b] = map[int]bool{}
			}
			return model[b]
		}
		for i := 0; i < 2000; i++ {
			n := rng.Intn(nodes)
			addr := uint32(rng.Intn(8)) * 16
			if rng.Intn(2) == 0 {
				d.Load(n, addr)
				hold(addr)[n] = true
			} else {
				replies := d.Store(n, addr)
				// Every modeled holder other than n must be invalidated.
				for h := range hold(addr) {
					if h == n {
						continue
					}
					found := false
					for _, r := range replies {
						if r == h {
							found = true
						}
					}
					if !found {
						t.Logf("store by %d at %#x missed holder %d (replies %v)", n, addr, h, replies)
						return false
					}
				}
				model[addr] = map[int]bool{n: true}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
