package fll

import (
	"testing"

	"bugnet/internal/dict"
)

func TestDumpEntriesStructure(t *testing.T) {
	d := dict.New(64)
	w := NewWriter(testHeader(64), d)
	w.Op(0xAABBCCDD, true) // full value (miss)
	w.Op(0xAABBCCDD, false)
	w.Op(0xAABBCCDD, false)
	w.Op(0xAABBCCDD, true) // dict hit after 2 skips
	for i := 0; i < 40; i++ {
		w.Op(7, false)
	}
	w.Op(0x11112222, true) // long L-Count (40 > 31)
	log := w.Close(100, EndIntervalFull, nil)

	es, err := log.DumpEntries(0)
	if err != nil {
		t.Fatalf("DumpEntries: %v", err)
	}
	if len(es) != 3 {
		t.Fatalf("entries = %d; want 3", len(es))
	}
	if es[0].FromDict || es[0].Value != 0xAABBCCDD || es[0].Skip != 0 {
		t.Errorf("entry 0 = %v", es[0])
	}
	if !es[1].FromDict || es[1].Skip != 2 || es[1].LongLC {
		t.Errorf("entry 1 = %v", es[1])
	}
	if es[2].FromDict || !es[2].LongLC || es[2].Skip != 40 || es[2].Value != 0x11112222 {
		t.Errorf("entry 2 = %v", es[2])
	}

	// Truncation by max still validates framing.
	es2, err := log.DumpEntries(1)
	if err != nil || len(es2) != 1 {
		t.Errorf("max=1 dump: %d entries, %v", len(es2), err)
	}

	// String renderings.
	if es[0].String() == "" || es[1].String() == "" {
		t.Error("empty entry strings")
	}
}

func TestDumpEntriesDetectsTruncation(t *testing.T) {
	d := dict.New(64)
	w := NewWriter(testHeader(64), d)
	w.Op(1, true)
	w.Op(2, true)
	log := w.Close(2, EndIntervalFull, nil)
	log.EntryBits -= 10 // chop the stream
	if _, err := log.DumpEntries(0); err == nil {
		t.Error("truncated stream dumped without error")
	}
}
