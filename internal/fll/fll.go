// Package fll implements BugNet's First-Load Log (paper §4.2, §4.3).
//
// One FLL covers one checkpoint interval of one thread. Its header snapshots
// the architectural state at the interval start; its body is a bit-packed
// stream of first-load records, one per logged value:
//
//	(LC-Type:1, L-Count:5 or full, LV-Type:1, value:dictBits or 32)
//
// L-Count is the number of loggable operations skipped (not logged) since
// the previous logged one: 5 bits when the count is below 32 (LC-Type=0),
// otherwise the full width of ceil(log2(interval-limit+1)) bits (LC-Type=1).
// The value is a dictionary rank of log2(dictSize) bits when the value hit
// in the compressor (LV-Type=0), else the raw 32-bit word (LV-Type=1).
//
// Neither addresses nor PCs are logged — replay regenerates them (paper
// §4.3). The Writer and Reader both own the dictionary-update discipline
// ("update on every executed load") so the recorder and replayer cannot
// drift apart.
package fll

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"bugnet/internal/bits"
	"bugnet/internal/cpu"
	"bugnet/internal/dict"
	"bugnet/internal/isa"
)

// shortLCBits is the width of the short L-Count encoding.
const shortLCBits = 5

// shortLCMax is the largest L-Count representable in the short form.
const shortLCMax = 1<<shortLCBits - 1

// EndKind records why a checkpoint interval terminated.
type EndKind uint8

// Interval termination causes.
const (
	EndIntervalFull EndKind = iota // hit the configured interval length
	EndSyscall                     // synchronous trap (paper §4.4)
	EndTimer                       // asynchronous interrupt / context switch
	EndFault                       // the program crashed (paper §4.8)
	EndExit                        // the thread exited cleanly
)

func (e EndKind) String() string {
	switch e {
	case EndIntervalFull:
		return "interval-full"
	case EndSyscall:
		return "syscall"
	case EndTimer:
		return "timer-interrupt"
	case EndFault:
		return "fault"
	case EndExit:
		return "thread-exit"
	}
	return "unknown"
}

// Header is the information BugNet records when creating a checkpoint
// (paper §4.2): process and thread ids to attribute the log, C-ID to pair
// it with its MRL, a timestamp for ordering, and the full architectural
// state needed to start replay.
type Header struct {
	PID           uint32
	TID           uint32
	CID           uint32
	Timestamp     uint64
	IntervalLimit uint64 // configured max interval length, fixes full L-Count width
	DictSize      uint32 // dictionary geometry, fixes rank width
	State         cpu.Snapshot
}

// FaultRecord is appended by the OS when the program crashes: the
// instruction count within the interval and the PC of the faulting
// instruction (paper §4.8).
type FaultRecord struct {
	IC    uint64 // committed instructions into this interval at the fault
	PC    uint32 // faulting instruction address
	Cause uint8  // cpu.FaultCause
}

// Meta is everything a First-Load Log records except the entry stream
// itself: the header plus the trailer counters. It is cheap to hold for
// every retained interval, which is what lets a Ref describe a log (size,
// coverage, fault record, start state) without materializing the entries.
type Meta struct {
	Header
	// EntryBits is the exact bit length of the entry stream.
	EntryBits uint64
	// NumEntries is the number of logged first-load values.
	NumEntries uint64
	// Ops is the total number of loggable operations in the interval.
	Ops uint64
	// Length is the number of committed instructions in the interval.
	Length uint64
	// End tells why the interval terminated.
	End EndKind
	// Fault is non-nil when End == EndFault.
	Fault *FaultRecord

	// UncompressedBits is what the entry stream would have cost with no
	// dictionary (full 32-bit values, no LV-Type bit). The ratio
	// UncompressedBits/EntryBits reproduces the paper's Figure 6.
	UncompressedBits uint64
}

// Log is a finalized First-Load Log: its metadata plus the bit-packed
// first-load record stream.
type Log struct {
	Meta
	// Entries is the bit-packed first-load record stream.
	Entries []byte
}

// HeaderBytes is the serialized header cost: PID, TID, C-ID, DictSize
// (4×4), Timestamp + IntervalLimit (2×8), PC (4), registers (32×4) — what
// the hardware writes at interval start.
const HeaderBytes = 4*4 + 2*8 + 4 + isa.NumRegs*4

// SizeBytes returns the log's storage footprint: header plus packed
// entries plus the small trailer (length, counts, end cause). This is the
// quantity behind the paper's FLL-size figures.
func (m *Meta) SizeBytes() int64 {
	trailer := int64(8 + 8 + 1) // length, entry count, end kind
	if m.Fault != nil {
		trailer += 8 + 4 + 1
	}
	return HeaderBytes + int64((m.EntryBits+7)/8) + trailer
}

// bitsFor returns the width needed to represent values in [0, n].
func bitsFor(n uint64) uint {
	w := uint(1)
	for 1<<w <= n {
		w++
	}
	return w
}

// Writer builds one FLL during recording. The recorder reports every
// loggable operation through Op; the writer encodes entries for the ops
// the first-load filter selected and keeps the dictionary in sync.
type Writer struct {
	hdr        Header
	dict       *dict.Table
	w          bits.Writer
	fullLCBits uint
	skip       uint64 // loggable ops since last logged entry
	ops        uint64
	entries    uint64
	uncBits    uint64
}

// NewWriter starts an FLL for the interval described by hdr. The dictionary
// must be empty (interval start) and is owned by the writer until Close.
func NewWriter(hdr Header, d *dict.Table) *Writer {
	if hdr.IntervalLimit == 0 {
		panic("fll: IntervalLimit must be positive")
	}
	if d == nil || d.Size() != int(hdr.DictSize) {
		panic("fll: dictionary geometry does not match header")
	}
	return &Writer{hdr: hdr, dict: d, fullLCBits: bitsFor(hdr.IntervalLimit)}
}

// Reset re-opens the writer for a new interval described by hdr, reusing
// the entry-stream buffer so continuous recording stops re-growing one
// per interval. Like NewWriter, the dictionary must be empty and match
// the header's geometry. Reset must not be used after Close (whose
// returned log owns a copy of the bytes, so CloseEncoded callers are the
// intended users).
func (w *Writer) Reset(hdr Header, d *dict.Table) {
	if hdr.IntervalLimit == 0 {
		panic("fll: IntervalLimit must be positive")
	}
	if d == nil || d.Size() != int(hdr.DictSize) {
		panic("fll: dictionary geometry does not match header")
	}
	w.hdr = hdr
	w.dict = d
	w.w.Reset()
	w.fullLCBits = bitsFor(hdr.IntervalLimit)
	w.skip = 0
	w.ops = 0
	w.entries = 0
	w.uncBits = 0
}

// Op records one loggable operation whose containing word held value.
// logged tells whether the first-load filter selected it for logging.
func (w *Writer) Op(value uint32, logged bool) {
	w.ops++
	if !logged {
		w.skip++
		w.dict.Update(value)
		return
	}
	// L-Count field.
	if w.skip <= shortLCMax {
		w.w.WriteBit(false)
		w.w.WriteBits(w.skip, shortLCBits)
		w.uncBits += 1 + shortLCBits
	} else {
		w.w.WriteBit(true)
		w.w.WriteBits(w.skip, w.fullLCBits)
		w.uncBits += 1 + uint64(w.fullLCBits)
	}
	// Value field.
	if rank, hit := w.dict.Lookup(value); hit {
		w.w.WriteBit(false)
		w.w.WriteBits(uint64(rank), w.dict.IndexBits())
	} else {
		w.w.WriteBit(true)
		w.w.WriteBits(uint64(value), 32)
	}
	w.uncBits += 32
	w.dict.Update(value)
	w.skip = 0
	w.entries++
}

// Bits returns the number of entry-stream bits written so far. The bus
// model samples it to account log production.
func (w *Writer) Bits() uint64 { return w.w.Len() }

// meta assembles the finalized metadata.
func (w *Writer) meta(length uint64, end EndKind, fault *FaultRecord) Meta {
	return Meta{
		Header:           w.hdr,
		EntryBits:        w.w.Len(),
		NumEntries:       w.entries,
		Ops:              w.ops,
		Length:           length,
		End:              end,
		Fault:            fault,
		UncompressedBits: w.uncBits,
	}
}

// Close finalizes the log as a decoded object. length is the committed
// instruction count of the interval; fault may carry the crash record.
func (w *Writer) Close(length uint64, end EndKind, fault *FaultRecord) *Log {
	buf := make([]byte, len(w.w.Bytes()))
	copy(buf, w.w.Bytes())
	return &Log{Meta: w.meta(length, end, fault), Entries: buf}
}

// CloseEncoded finalizes the log straight to its wire encoding (the bytes
// Marshal would produce), plus the metadata the retention layer needs. The
// recorder uses it so a finalized interval is never held decoded: the
// bytes go directly into a log store, and replay re-materializes them on
// demand through a Ref.
func (w *Writer) CloseEncoded(length uint64, end EndKind, fault *FaultRecord) (Meta, []byte) {
	m := w.meta(length, end, fault)
	return m, appendMarshal(nil, &m, w.w.Bytes())
}

// Reader replays one FLL's entry stream. The replayer calls Op for every
// loggable operation it executes, passing the word value its simulated
// memory currently holds; the reader returns the value the operation must
// observe, injecting logged first-load values at the right positions.
type Reader struct {
	log        *Log
	dict       *dict.Table
	r          *bits.Reader
	fullLCBits uint

	pendingValid  bool
	pendingSkip   uint64
	pendingRaw    uint32 // full value, or dictionary rank if pendingIsRank
	pendingIsRank bool   // rank is resolved at injection time: the skipped
	// ops between decode and injection update the dictionary, and the
	// writer encoded the rank against the injection-time table state
	consumed uint64
	err      error
}

// NewReader opens log for replay. The dictionary must be empty and match
// the geometry recorded in the header.
func NewReader(log *Log, d *dict.Table) *Reader {
	if d == nil || d.Size() != int(log.DictSize) {
		panic("fll: dictionary geometry does not match log header")
	}
	r := &Reader{
		log:        log,
		dict:       d,
		r:          bits.NewReaderBits(log.Entries, log.EntryBits),
		fullLCBits: bitsFor(log.IntervalLimit),
	}
	r.loadEntry()
	return r
}

// loadEntry decodes the next entry into pending state.
func (r *Reader) loadEntry() {
	r.pendingValid = false
	if r.err != nil || r.consumed >= r.log.NumEntries {
		return
	}
	longLC, err := r.r.ReadBit()
	if err != nil {
		r.err = fmt.Errorf("fll: truncated entry %d: %w", r.consumed, err)
		return
	}
	width := uint(shortLCBits)
	if longLC {
		width = r.fullLCBits
	}
	skip, err := r.r.ReadBits(width)
	if err != nil {
		r.err = fmt.Errorf("fll: truncated L-Count in entry %d: %w", r.consumed, err)
		return
	}
	fullValue, err := r.r.ReadBit()
	if err != nil {
		r.err = fmt.Errorf("fll: truncated LV-Type in entry %d: %w", r.consumed, err)
		return
	}
	if fullValue {
		v, err := r.r.ReadBits(32)
		if err != nil {
			r.err = fmt.Errorf("fll: truncated value in entry %d: %w", r.consumed, err)
			return
		}
		r.pendingRaw = uint32(v)
		r.pendingIsRank = false
	} else {
		rank, err := r.r.ReadBits(r.dict.IndexBits())
		if err != nil {
			r.err = fmt.Errorf("fll: truncated rank in entry %d: %w", r.consumed, err)
			return
		}
		r.pendingRaw = uint32(rank)
		r.pendingIsRank = true
	}
	r.pendingValid = true
	r.pendingSkip = skip
	r.consumed++
}

// Op processes one loggable operation during replay. memValue is the word
// value the replayer's simulated memory currently holds; the return value
// is the word the operation must observe (and that the replayer must
// install in memory when injected is true).
func (r *Reader) Op(memValue uint32) (value uint32, injected bool, err error) {
	if r.err != nil {
		return 0, false, r.err
	}
	if r.pendingValid && r.pendingSkip == 0 {
		v := r.pendingRaw
		if r.pendingIsRank {
			dv, derr := r.dict.ValueAt(int(r.pendingRaw))
			if derr != nil {
				r.err = fmt.Errorf("fll: entry %d: %w", r.consumed-1, derr)
				return 0, false, r.err
			}
			v = dv
		}
		r.dict.Update(v)
		r.loadEntry()
		return v, true, nil
	}
	if r.pendingValid {
		r.pendingSkip--
	}
	r.dict.Update(memValue)
	return memValue, false, nil
}

// Clone returns an independent reader that continues from r's exact
// position — bit cursor, prefetched entry and consumed count. d must hold
// dictionary state identical to r's table (typically its Clone); the clone
// updates d as it consumes entries, leaving r's table untouched. Replay
// checkpointing uses Clone to freeze and later restore a log cursor
// mid-interval.
func (r *Reader) Clone(d *dict.Table) *Reader {
	if d == nil || d.Size() != r.dict.Size() {
		panic("fll: clone dictionary geometry does not match reader")
	}
	cp := *r
	cp.dict = d
	cp.r = r.r.Clone()
	return &cp
}

// Dict returns the dictionary table the reader decodes ranks against.
func (r *Reader) Dict() *dict.Table { return r.dict }

// Log returns the decoded log the reader was opened over. Snapshot
// restore uses it to re-derive the current-interval pointer without
// re-materializing the log from its encoded form.
func (r *Reader) Log() *Log { return r.log }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Exhausted reports whether every logged entry has been consumed.
func (r *Reader) Exhausted() bool { return !r.pendingValid && r.err == nil }

// PendingOne reports whether exactly one logged entry remains uninjected
// with no skipped operations outstanding — the residue a fault-terminated
// interval leaves under code-load logging, where the faulting
// instruction's fetch was logged but the instruction never commits.
func (r *Reader) PendingOne() bool {
	return r.err == nil && r.pendingValid && r.pendingSkip == 0 &&
		r.consumed >= r.log.NumEntries
}

// --- serialization ---

var magic = [4]byte{'B', 'F', 'L', 'L'}

const version = 1

// ErrBadFormat reports a malformed serialized log.
var ErrBadFormat = errors.New("fll: bad serialized log")

// appendMarshal appends the wire encoding of (m, entries) to out. It is
// the single serializer behind Log.Marshal and Writer.CloseEncoded, so the
// two paths cannot drift.
func appendMarshal(out []byte, m *Meta, entries []byte) []byte {
	le := binary.LittleEndian
	if out == nil {
		out = make([]byte, 0, 5+HeaderBytes+5*8+16+len(entries)+12)
	}
	out = append(out, magic[:]...)
	out = append(out, version)
	var tmp [8]byte

	put32 := func(v uint32) {
		le.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	put64 := func(v uint64) {
		le.PutUint64(tmp[:8], v)
		out = append(out, tmp[:8]...)
	}
	put32(m.PID)
	put32(m.TID)
	put32(m.CID)
	put64(m.Timestamp)
	put64(m.IntervalLimit)
	put32(m.DictSize)
	put32(m.State.PC)
	for _, r := range m.State.Regs {
		put32(r)
	}
	put64(m.EntryBits)
	put64(m.NumEntries)
	put64(m.Ops)
	put64(m.Length)
	put64(m.UncompressedBits)
	out = append(out, byte(m.End))
	if m.Fault != nil {
		out = append(out, 1)
		put64(m.Fault.IC)
		put32(m.Fault.PC)
		out = append(out, m.Fault.Cause)
	} else {
		out = append(out, 0)
	}
	put64(uint64(len(entries)))
	out = append(out, entries...)
	// Integrity checksum over everything above: logs travel from the
	// user's machine to the developer, and a corrupted log must fail
	// loudly at decode rather than replay a different execution.
	le.PutUint32(tmp[:4], crc32.ChecksumIEEE(out))
	out = append(out, tmp[:4]...)
	return out
}

// Marshal encodes the log for storage or transmission to the developer.
func (l *Log) Marshal() []byte {
	return appendMarshal(nil, &l.Meta, l.Entries)
}

// parse validates a serialized log (checksum and framing) and splits it
// into metadata and the entry-stream bytes, which alias data. It is the
// single decoder behind Unmarshal and OpenEncoded.
func parse(data []byte) (Meta, []byte, error) {
	le := binary.LittleEndian
	var m Meta
	if len(data) < 4 {
		return m, nil, ErrBadFormat
	}
	body, sum := data[:len(data)-4], le.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return m, nil, fmt.Errorf("%w: checksum mismatch", ErrBadFormat)
	}
	data = body
	pos := 0
	need := func(n int) bool { return len(data)-pos >= n }
	if !need(5) || [4]byte(data[:4]) != magic || data[4] != version {
		return m, nil, ErrBadFormat
	}
	pos = 5
	get32 := func() uint32 {
		v := le.Uint32(data[pos:])
		pos += 4
		return v
	}
	get64 := func() uint64 {
		v := le.Uint64(data[pos:])
		pos += 8
		return v
	}
	if !need(4*4 + 2*8 + 4 + isa.NumRegs*4 + 5*8 + 2) {
		return m, nil, ErrBadFormat
	}
	m.PID = get32()
	m.TID = get32()
	m.CID = get32()
	m.Timestamp = get64()
	m.IntervalLimit = get64()
	m.DictSize = get32()
	m.State.PC = get32()
	for i := range m.State.Regs {
		m.State.Regs[i] = get32()
	}
	m.EntryBits = get64()
	m.NumEntries = get64()
	m.Ops = get64()
	m.Length = get64()
	m.UncompressedBits = get64()
	m.End = EndKind(data[pos])
	pos++
	hasFault := data[pos] == 1
	pos++
	if hasFault {
		if !need(13) {
			return m, nil, ErrBadFormat
		}
		f := &FaultRecord{}
		f.IC = get64()
		f.PC = get32()
		f.Cause = data[pos]
		pos++
		m.Fault = f
	}
	if !need(8) {
		return m, nil, ErrBadFormat
	}
	n := get64()
	if uint64(len(data)-pos) < n {
		return m, nil, ErrBadFormat
	}
	entries := data[pos : pos+int(n)]
	if m.EntryBits > n*8 {
		return m, nil, ErrBadFormat
	}
	return m, entries, nil
}

// Unmarshal decodes a serialized log.
func Unmarshal(data []byte) (*Log, error) {
	m, entries, err := parse(data)
	if err != nil {
		return nil, err
	}
	return &Log{Meta: m, Entries: append([]byte(nil), entries...)}, nil
}

// Ref is a lazily-decoded First-Load Log: the full metadata (header,
// counters, fault record) held decoded, with the entry stream materialized
// only when Open is called. A window of Refs costs O(intervals) memory
// instead of O(log bytes), which is what lets replay walk a window far
// larger than RAM when the encoded bytes live in a disk-backed log store.
type Ref struct {
	Meta
	load   func() ([]byte, error) // nil when log is set
	log    *Log                   // memory-backed fast path
	encLen int64                  // wire size when known; 0 = derive on demand
}

// NewRef wraps an already-decoded log as a view. Open returns l itself.
func NewRef(l *Log) *Ref { return &Ref{Meta: l.Meta, log: l} }

// OpenEncoded validates one serialized log and returns a view over it.
// The metadata is decoded eagerly; the entry stream stays encoded (the
// view retains data) until Open.
func OpenEncoded(data []byte) (*Ref, error) {
	m, _, err := parse(data)
	if err != nil {
		return nil, err
	}
	return &Ref{Meta: m, load: func() ([]byte, error) { return data, nil },
		encLen: int64(len(data))}, nil
}

// OpenLazy builds a view over a log whose encoded bytes live behind load
// (a log-store item, a file). load is called once now to validate and
// decode the metadata, and again on every Open, so the view itself pins
// no log bytes in memory.
func OpenLazy(load func() ([]byte, error)) (*Ref, error) {
	data, err := load()
	if err != nil {
		return nil, err
	}
	m, _, err := parse(data)
	if err != nil {
		return nil, err
	}
	return &Ref{Meta: m, load: load, encLen: int64(len(data))}, nil
}

// ParseMeta validates one serialized log and returns its metadata without
// retaining or copying the entry stream.
func ParseMeta(data []byte) (Meta, error) {
	m, _, err := parse(data)
	return m, err
}

// NewLazyRef builds a view from metadata the caller already validated
// (via ParseMeta over the same encodedLen bytes load returns) and a
// loader. Archive readers use it to hand out views without re-reading
// every section.
func NewLazyRef(m Meta, encodedLen int64, load func() ([]byte, error)) *Ref {
	return &Ref{Meta: m, load: load, encLen: encodedLen}
}

// Open materializes the full log. Memory-backed views return the shared
// decoded log; lazy views re-load and decode, so the caller owns the
// result and should drop it when the interval is consumed.
func (r *Ref) Open() (*Log, error) {
	if r.log != nil {
		return r.log, nil
	}
	data, err := r.load()
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Encoded returns the log's wire encoding (the bytes Marshal produces)
// without decoding the entry stream: streaming report packers copy it
// section-to-section.
func (r *Ref) Encoded() ([]byte, error) {
	if r.load != nil {
		return r.load()
	}
	return r.log.Marshal(), nil
}

// EncodedLen returns the wire size of the log without loading it — every
// backing store knows it up front; memory-wrapped logs derive it once.
// Size listings over huge lazy windows must not cost I/O.
func (r *Ref) EncodedLen() int64 {
	if r.encLen == 0 && r.log != nil {
		r.encLen = int64(len(r.log.Marshal()))
	}
	return r.encLen
}
