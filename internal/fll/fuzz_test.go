package fll

import (
	"testing"

	"bugnet/internal/dict"
)

// FuzzUnmarshal hardens the wire format against arbitrary input: decoding
// must never panic, and anything that decodes must re-encode and decode to
// the same log.
func FuzzUnmarshal(f *testing.F) {
	d := dict.New(64)
	w := NewWriter(testHeader(64), d)
	for i := 0; i < 50; i++ {
		w.Op(uint32(i*7), i%3 == 0)
	}
	f.Add(w.Close(50, EndIntervalFull, nil).Marshal())
	f.Add(w.Close(50, EndFault, &FaultRecord{IC: 1, PC: 2, Cause: 3}).Marshal())
	f.Add([]byte("BFLL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := Unmarshal(l.Marshal())
		if err != nil {
			t.Fatalf("re-decode of valid log failed: %v", err)
		}
		if re.Header != l.Header || re.EntryBits != l.EntryBits || re.NumEntries != l.NumEntries {
			t.Fatal("re-encoded log differs")
		}
		// Structural dump of a decoded log must not panic either.
		_, _ = l.DumpEntries(16)
	})
}
