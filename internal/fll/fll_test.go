package fll

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bugnet/internal/cpu"
	"bugnet/internal/dict"
)

func testHeader(dictSize uint32) Header {
	return Header{
		PID: 7, TID: 1, CID: 3, Timestamp: 12345,
		IntervalLimit: 10_000_000, DictSize: dictSize,
		State: cpu.Snapshot{PC: 0x400000},
	}
}

func TestWriterReaderRoundTripSimple(t *testing.T) {
	hdr := testHeader(64)
	d := dict.New(64)
	w := NewWriter(hdr, d)

	// Sequence: logged 5, skipped(5), logged 9, logged 5 (dict hit now).
	w.Op(5, true)
	w.Op(5, false)
	w.Op(9, true)
	w.Op(5, true)
	log := w.Close(100, EndIntervalFull, nil)

	if log.NumEntries != 3 || log.Ops != 4 || log.Length != 100 {
		t.Fatalf("log = %+v", log)
	}

	rd := dict.New(64)
	r := NewReader(log, rd)

	v, inj, err := r.Op(0xBAD)
	if err != nil || !inj || v != 5 {
		t.Fatalf("op1 = %d,%v,%v", v, inj, err)
	}
	v, inj, err = r.Op(5) // the skipped op: memory already holds 5
	if err != nil || inj || v != 5 {
		t.Fatalf("op2 = %d,%v,%v", v, inj, err)
	}
	v, inj, err = r.Op(0xBAD)
	if err != nil || !inj || v != 9 {
		t.Fatalf("op3 = %d,%v,%v", v, inj, err)
	}
	v, inj, err = r.Op(0xBAD)
	if err != nil || !inj || v != 5 {
		t.Fatalf("op4 = %d,%v,%v", v, inj, err)
	}
	if !r.Exhausted() {
		t.Error("reader not exhausted")
	}
}

func TestLongLCount(t *testing.T) {
	hdr := testHeader(64)
	d := dict.New(64)
	w := NewWriter(hdr, d)
	w.Op(1, true)
	for i := 0; i < 100; i++ { // 100 skipped > shortLCMax
		w.Op(1, false)
	}
	w.Op(2, true)
	log := w.Close(200, EndIntervalFull, nil)

	rd := dict.New(64)
	r := NewReader(log, rd)
	v, inj, _ := r.Op(0)
	if !inj || v != 1 {
		t.Fatalf("first = %d,%v", v, inj)
	}
	for i := 0; i < 100; i++ {
		v, inj, err := r.Op(1)
		if err != nil || inj || v != 1 {
			t.Fatalf("skip %d = %d,%v,%v", i, v, inj, err)
		}
	}
	v, inj, _ = r.Op(0)
	if !inj || v != 2 {
		t.Fatalf("last = %d,%v", v, inj)
	}
}

func TestDictCompressionShrinksLog(t *testing.T) {
	// Logging the same value repeatedly must be much cheaper than logging
	// distinct values, thanks to rank encoding.
	mkLog := func(gen func(i int) uint32) *Log {
		d := dict.New(64)
		w := NewWriter(testHeader(64), d)
		for i := 0; i < 1000; i++ {
			w.Op(gen(i), true)
		}
		return w.Close(1000, EndIntervalFull, nil)
	}
	same := mkLog(func(int) uint32 { return 42 })
	distinct := mkLog(func(i int) uint32 { return uint32(i) * 2654435761 })
	if same.EntryBits*2 >= distinct.EntryBits {
		t.Errorf("compression ineffective: same=%d distinct=%d bits", same.EntryBits, distinct.EntryBits)
	}
	if same.UncompressedBits != distinct.UncompressedBits {
		t.Errorf("uncompressed accounting differs: %d vs %d", same.UncompressedBits, distinct.UncompressedBits)
	}
	if same.EntryBits >= same.UncompressedBits {
		t.Error("compressed not smaller than uncompressed for redundant stream")
	}
}

func TestFaultRecordSurvives(t *testing.T) {
	d := dict.New(64)
	w := NewWriter(testHeader(64), d)
	w.Op(1, true)
	f := &FaultRecord{IC: 55, PC: 0x400123, Cause: 2}
	log := w.Close(55, EndFault, f)
	if log.End != EndFault || log.Fault == nil || log.Fault.PC != 0x400123 {
		t.Fatalf("fault record lost: %+v", log)
	}
}

// TestPropertyRoundTrip drives random op sequences through writer and
// reader, asserting values observed in replay match recording exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dictSize := []uint32{8, 64, 256}[rng.Intn(3)]
		d := dict.New(int(dictSize))
		hdr := testHeader(dictSize)
		w := NewWriter(hdr, d)

		n := 1 + rng.Intn(3000)
		type op struct {
			val    uint32
			logged bool
		}
		ops := make([]op, n)
		// mem simulates the replayer's knowledge: the last value seen for
		// the (single) abstract location each op touches. To keep the test
		// honest we use per-location tracking over a few locations.
		locs := make([]uint32, 8)
		locOf := make([]int, n)
		for i := range ops {
			loc := rng.Intn(len(locs))
			locOf[i] = loc
			logged := rng.Intn(3) == 0
			var v uint32
			if logged {
				// A first load observes a fresh value from the pool.
				v = uint32(rng.Intn(64)) // small pool => dictionary hits
				locs[loc] = v
			} else {
				// A non-logged op re-observes the location's current value.
				v = locs[loc]
			}
			ops[i] = op{val: v, logged: logged}
			w.Op(v, logged)
		}
		log := w.Close(uint64(n), EndIntervalFull, nil)

		rd := dict.New(int(dictSize))
		r := NewReader(log, rd)
		replayLocs := make([]uint32, len(locs))
		for i, o := range ops {
			memVal := replayLocs[locOf[i]]
			v, injected, err := r.Op(memVal)
			if err != nil {
				t.Logf("op %d: %v", i, err)
				return false
			}
			if injected != o.logged {
				t.Logf("op %d: injected=%v want %v", i, injected, o.logged)
				return false
			}
			if v != o.val {
				t.Logf("op %d: value=%d want %d", i, v, o.val)
				return false
			}
			replayLocs[locOf[i]] = v
		}
		return r.Exhausted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	d := dict.New(64)
	hdr := testHeader(64)
	hdr.State.Regs[5] = 0xABCD
	w := NewWriter(hdr, d)
	for i := 0; i < 200; i++ {
		w.Op(uint32(i%7), i%3 == 0)
	}
	log := w.Close(500, EndSyscall, nil)

	data := log.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Header != log.Header {
		t.Errorf("header mismatch:\n%+v\n%+v", got.Header, log.Header)
	}
	if got.EntryBits != log.EntryBits || got.NumEntries != log.NumEntries ||
		got.Ops != log.Ops || got.Length != log.Length || got.End != log.End {
		t.Error("metadata mismatch")
	}
	if string(got.Entries) != string(log.Entries) {
		t.Error("entries mismatch")
	}

	// A marshaled log with a fault record round-trips too.
	logF := w.Close(500, EndFault, &FaultRecord{IC: 1, PC: 2, Cause: 3})
	gotF, err := Unmarshal(logF.Marshal())
	if err != nil || gotF.Fault == nil || *gotF.Fault != *logF.Fault {
		t.Errorf("fault round trip: %+v, %v", gotF.Fault, err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("XXXXYYYYZZZZ"),
		append([]byte("BFLL"), 99), // bad version
	}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("Unmarshal(%v) succeeded", c)
		}
	}
	// Truncated valid prefix.
	d := dict.New(64)
	w := NewWriter(testHeader(64), d)
	w.Op(1, true)
	data := w.Close(1, EndExit, nil).Marshal()
	for _, cut := range []int{6, 20, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestSizeBytesAccounting(t *testing.T) {
	d := dict.New(64)
	w := NewWriter(testHeader(64), d)
	empty := w.Close(0, EndExit, nil)
	if empty.SizeBytes() < HeaderBytes {
		t.Errorf("empty log size %d < header %d", empty.SizeBytes(), HeaderBytes)
	}

	d2 := dict.New(64)
	w2 := NewWriter(testHeader(64), d2)
	for i := 0; i < 1000; i++ {
		w2.Op(rand.Uint32(), true) // incompressible
	}
	big := w2.Close(1000, EndIntervalFull, nil)
	// ~39 bits per entry => ~4.9 KB
	if big.SizeBytes() < 4000 || big.SizeBytes() > 6000 {
		t.Errorf("1000 incompressible entries = %d bytes; want ≈5KB", big.SizeBytes())
	}
}

func TestReaderErrTruncatedStream(t *testing.T) {
	d := dict.New(64)
	w := NewWriter(testHeader(64), d)
	w.Op(0xDEADBEEF, true)
	w.Op(0xCAFEBABE, true)
	log := w.Close(2, EndIntervalFull, nil)
	log.Entries = log.Entries[:1] // corrupt: cut the stream
	log.EntryBits = 8

	rd := dict.New(64)
	r := NewReader(log, rd)
	// First op may succeed or fail depending on where the cut landed, but
	// an error must surface before both entries decode.
	var sawErr bool
	for i := 0; i < 2; i++ {
		if _, _, err := r.Op(0); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr && r.Err() == nil {
		t.Error("truncated stream produced no error")
	}
}

func BenchmarkWriterOp(b *testing.B) {
	d := dict.New(64)
	w := NewWriter(testHeader(64), d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Op(uint32(i&63), i&7 == 0)
	}
}
