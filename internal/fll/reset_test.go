package fll

import (
	"bytes"
	"testing"

	"bugnet/internal/cpu"
	"bugnet/internal/dict"
)

// TestWriterResetEncodesIdentically: a pooled writer (Reset between
// intervals, as the recorder recycles them) must produce byte-identical
// wire encodings to fresh writers — the refactor's observational
// equivalence at the log level.
func TestWriterResetEncodesIdentically(t *testing.T) {
	hdr := func(cid uint32) Header {
		return Header{
			PID: 9, TID: 1, CID: cid, Timestamp: uint64(cid) * 10,
			IntervalLimit: 1000, DictSize: 8,
			State: cpu.Snapshot{PC: 0x400000 + cid},
		}
	}
	feed := func(w *Writer, seed uint32) {
		for i := uint32(0); i < 300; i++ {
			v := seed + i%7*1000
			w.Op(v, i%3 == 0)
		}
	}

	// Reference: fresh writer + fresh dictionary per interval.
	var fresh [][]byte
	for cid := uint32(0); cid < 3; cid++ {
		d := dict.New(8)
		w := NewWriter(hdr(cid), d)
		feed(w, cid*17)
		_, data := w.CloseEncoded(300, EndIntervalFull, nil)
		fresh = append(fresh, data)
	}

	// Pooled: one writer and one dictionary recycled across intervals,
	// exactly as the recorder does (dict.Reset at interval start).
	d := dict.New(8)
	w := NewWriter(hdr(0), d)
	for cid := uint32(0); cid < 3; cid++ {
		if cid > 0 {
			d.Reset()
			w.Reset(hdr(cid), d)
		}
		feed(w, cid*17)
		_, data := w.CloseEncoded(300, EndIntervalFull, nil)
		if !bytes.Equal(data, fresh[cid]) {
			t.Fatalf("interval %d: pooled encoding differs from fresh writer", cid)
		}
	}
}

// TestWriterResetValidates: Reset enforces the same invariants as
// NewWriter.
func TestWriterResetValidates(t *testing.T) {
	d := dict.New(8)
	w := NewWriter(Header{IntervalLimit: 10, DictSize: 8}, d)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero interval", func() { w.Reset(Header{DictSize: 8}, d) })
	mustPanic("geometry mismatch", func() { w.Reset(Header{IntervalLimit: 10, DictSize: 16}, d) })
}
