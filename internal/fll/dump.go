package fll

import (
	"fmt"

	"bugnet/internal/bits"
)

// RawEntry is one structurally decoded First-Load Log record. Dictionary
// ranks are reported as ranks: resolving them to values requires replaying
// the interval (the dictionary state at each entry depends on every
// preceding loggable operation), which is the replayer's job, not the
// inspector's.
type RawEntry struct {
	Skip     uint64 // L-Count: loggable ops skipped since the last entry
	LongLC   bool   // encoded with the full-width L-Count form
	FromDict bool   // value is a dictionary rank
	Rank     uint32 // when FromDict
	Value    uint32 // when !FromDict
}

func (e RawEntry) String() string {
	if e.FromDict {
		return fmt.Sprintf("skip=%d dict[%d]", e.Skip, e.Rank)
	}
	return fmt.Sprintf("skip=%d value=%#08x", e.Skip, e.Value)
}

// DumpEntries structurally decodes up to max entries (max <= 0 means all).
// It validates the bit-level framing of the whole stream even when max
// truncates the returned slice.
func (l *Log) DumpEntries(max int) ([]RawEntry, error) {
	r := bits.NewReaderBits(l.Entries, l.EntryBits)
	fullLC := bitsFor(l.IntervalLimit)
	rankBits := bitsFor(uint64(l.DictSize) - 1)
	var out []RawEntry
	for i := uint64(0); i < l.NumEntries; i++ {
		var e RawEntry
		long, err := r.ReadBit()
		if err != nil {
			return out, fmt.Errorf("fll: entry %d: truncated LC-Type: %w", i, err)
		}
		e.LongLC = long
		width := uint(shortLCBits)
		if long {
			width = fullLC
		}
		skip, err := r.ReadBits(width)
		if err != nil {
			return out, fmt.Errorf("fll: entry %d: truncated L-Count: %w", i, err)
		}
		e.Skip = skip
		fromFull, err := r.ReadBit()
		if err != nil {
			return out, fmt.Errorf("fll: entry %d: truncated LV-Type: %w", i, err)
		}
		if fromFull {
			v, err := r.ReadBits(32)
			if err != nil {
				return out, fmt.Errorf("fll: entry %d: truncated value: %w", i, err)
			}
			e.Value = uint32(v)
		} else {
			e.FromDict = true
			v, err := r.ReadBits(rankBits)
			if err != nil {
				return out, fmt.Errorf("fll: entry %d: truncated rank: %w", i, err)
			}
			e.Rank = uint32(v)
		}
		if max <= 0 || len(out) < max {
			out = append(out, e)
		}
	}
	if rem := r.Remaining(); rem != 0 {
		return out, fmt.Errorf("fll: %d trailing bits after %d entries", rem, l.NumEntries)
	}
	return out, nil
}
