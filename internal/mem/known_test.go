package mem

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// TestKnownSetBasics: word granularity, byte-address normalization, and
// counts.
func TestKnownSetBasics(t *testing.T) {
	k := NewKnownSet()
	if k.Has(0x1000) || k.Len() != 0 {
		t.Fatal("fresh set not empty")
	}
	k.Add(0x1001) // any byte of the word marks the word
	if !k.Has(0x1000) || !k.Has(0x1003) {
		t.Error("word containing the added byte not known")
	}
	if k.Has(0x1004) {
		t.Error("neighboring word leaked in")
	}
	k.Add(0x1002) // same word: no growth
	if k.Len() != 1 {
		t.Errorf("Len = %d, want 1", k.Len())
	}
	k.Add(0xFFFF_FFFC) // top of the address space
	if !k.Has(0xFFFF_FFFF) || k.Len() != 2 {
		t.Error("top-of-space word mishandled")
	}
	words := k.Words()
	if len(words) != 2 || words[0] != 0x1000 || words[1] != 0xFFFF_FFFC {
		t.Errorf("Words = %#x", words)
	}
	k.Reset()
	if k.Len() != 0 || k.Has(0x1000) || k.Pages() != 0 {
		t.Error("Reset left residue")
	}
}

// TestKnownSetCloneIsolation: clones share nothing observable.
func TestKnownSetCloneIsolation(t *testing.T) {
	k := NewKnownSet()
	k.Add(0x4000)
	c := k.Clone()
	k.Add(0x4004)
	c.Add(0x8000)
	if c.Has(0x4004) {
		t.Error("clone saw parent insert")
	}
	if k.Has(0x8000) {
		t.Error("parent saw clone insert")
	}
	if k.Len() != 2 || c.Len() != 2 {
		t.Errorf("lens = %d, %d", k.Len(), c.Len())
	}
	var nilSet *KnownSet
	if nilSet.Clone() != nil {
		t.Error("nil clone must be nil")
	}
	if nilSet.SizeBytes() != 0 {
		t.Error("nil SizeBytes must be 0")
	}
}

// TestKnownSetVsMapParity drives the bitmap and the reference
// map[uint32]bool through an identical random schedule of inserts,
// membership probes, resets, and clone/mutate rounds — addresses chosen
// to cross page boundaries and hit partial words — and demands identical
// observable behavior throughout. This is the map-vs-bitmap parity
// property at the data-structure level; the replay-level parity lives in
// internal/core.
func TestKnownSetVsMapParity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKnownSet()
		ref := make(map[uint32]bool)
		// Clones with their reference copies, mutated independently.
		type pair struct {
			k   *KnownSet
			ref map[uint32]bool
		}
		var clones []pair
		randAddr := func() uint32 {
			// Mix page-interior, page-boundary and partial-word addresses
			// over a few discontiguous regions.
			base := []uint32{0, PageSize - 4, 17 * PageSize, 0x7FFF_F000}[rng.Intn(4)]
			return base + uint32(rng.Intn(3*PageSize))
		}
		for i := 0; i < 4000; i++ {
			switch rng.Intn(12) {
			case 0: // probe
				a := randAddr()
				if k.Has(a) != ref[a&^3] {
					t.Fatalf("seed %d: Has(%#x) = %v, map says %v", seed, a, k.Has(a), ref[a&^3])
				}
			case 1: // reset, rarely
				if rng.Intn(10) == 0 {
					k.Reset()
					ref = make(map[uint32]bool)
				}
			case 2: // clone
				cp := make(map[uint32]bool, len(ref))
				for a := range ref {
					cp[a] = true
				}
				clones = append(clones, pair{k: k.Clone(), ref: cp})
			case 3: // mutate a clone
				if len(clones) > 0 {
					c := clones[rng.Intn(len(clones))]
					a := randAddr()
					c.k.Add(a)
					c.ref[a&^3] = true
				}
			default: // insert
				a := randAddr()
				k.Add(a)
				ref[a&^3] = true
			}
		}
		check := func(name string, k *KnownSet, ref map[uint32]bool) {
			if k.Len() != len(ref) {
				t.Fatalf("seed %d %s: Len = %d, map has %d", seed, name, k.Len(), len(ref))
			}
			want := make([]uint32, 0, len(ref))
			for a := range ref {
				want = append(want, a)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := k.Words()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d %s: Words[%d] = %#x, want %#x", seed, name, i, got[i], want[i])
				}
			}
		}
		check("main", k, ref)
		for _, c := range clones {
			check("clone", c.k, c.ref)
		}
	}
}

// TestKnownCodecRoundTrip: Marshal → Unmarshal → Marshal is the identity
// on bytes and on set contents.
func TestKnownCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		k := NewKnownSet()
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			k.Add(uint32(rng.Intn(1<<30) * 4))
		}
		data := MarshalKnown(k)
		back, err := UnmarshalKnown(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Len() != k.Len() || back.Pages() != k.Pages() {
			t.Fatalf("trial %d: counts differ", trial)
		}
		w1, w2 := k.Words(), back.Words()
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("trial %d: word %d differs", trial, i)
			}
		}
		if !bytes.Equal(MarshalKnown(back), data) {
			t.Fatalf("trial %d: re-marshal not byte-identical", trial)
		}
	}
	// Empty set round-trips too.
	data := MarshalKnown(NewKnownSet())
	back, err := UnmarshalKnown(data)
	if err != nil || back.Len() != 0 {
		t.Fatalf("empty set: %v, len %d", err, back.Len())
	}
}

// TestKnownCodecRejectsCorruption: every single-byte corruption of a
// valid snapshot must fail decoding (the CRC guarantees it), and
// structural attacks fail with clear errors.
func TestKnownCodecRejectsCorruption(t *testing.T) {
	k := NewKnownSet()
	for _, a := range []uint32{0, 4, PageSize, 5 * PageSize} {
		k.Add(a)
	}
	data := MarshalKnown(k)
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := UnmarshalKnown(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	if _, err := UnmarshalKnown(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := UnmarshalKnown(data[:8]); err == nil {
		t.Fatal("truncated input accepted")
	}
}

// FuzzKnownCodecRoundTrip is the codec fuzzer the CI fuzz-smoke job runs:
// any input the decoder accepts must re-encode byte-identically and
// describe the same set; every other input must fail cleanly (no panics,
// no runaway allocation).
func FuzzKnownCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalKnown(NewKnownSet()))
	k := NewKnownSet()
	k.Add(0x1000)
	k.Add(PageSize * 3)
	f.Add(MarshalKnown(k))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := UnmarshalKnown(data)
		if err != nil {
			return
		}
		out := MarshalKnown(k)
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted input does not re-marshal identically:\n in: %x\nout: %x", data, out)
		}
		back, err := UnmarshalKnown(out)
		if err != nil {
			t.Fatalf("re-marshal of accepted input rejected: %v", err)
		}
		if back.Len() != k.Len() {
			t.Fatalf("round trip changed Len: %d vs %d", back.Len(), k.Len())
		}
	})
}
