package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapAndRW(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x2000)

	if err := m.StoreWord(0x1000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.LoadWord(0x1000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("LoadWord = %x, %v", v, err)
	}

	// Little-endian byte order.
	b, _ := m.LoadByte(0x1000)
	if b != 0xEF {
		t.Errorf("byte 0 = %x; want ef", b)
	}
	h, _ := m.LoadHalf(0x1002)
	if h != 0xDEAD {
		t.Errorf("half at +2 = %x; want dead", h)
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := New()
	if _, err := m.LoadWord(0x5000); err == nil {
		t.Fatal("read of unmapped memory succeeded")
	} else {
		var ae *AccessError
		if !errors.As(err, &ae) || ae.Addr != 0x5000 || ae.Kind != AccessRead {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if err := m.StoreByte(0x5000, 1); err == nil {
		t.Fatal("write of unmapped memory succeeded")
	}
}

func TestMisalignedFaults(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	if _, err := m.LoadWord(2); err == nil {
		t.Error("misaligned word read succeeded")
	}
	if _, err := m.LoadHalf(1); err == nil {
		t.Error("misaligned half read succeeded")
	}
	if err := m.StoreWord(6, 0); err == nil {
		t.Error("misaligned word write succeeded")
	}
	if err := m.StoreHalf(3, 0); err == nil {
		t.Error("misaligned half write succeeded")
	}
	var ae *AccessError
	_, err := m.LoadWord(2)
	if !errors.As(err, &ae) || !ae.Misaligned {
		t.Errorf("error not flagged misaligned: %v", err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	m.Map(PageSize-8, 16) // maps pages 0 and 1
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.StoreBytes(PageSize-4, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := m.LoadBytes(PageSize-4, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("cross-page read = %v", got)
		}
	}
}

func TestMapIdempotentPreservesData(t *testing.T) {
	m := New()
	m.Map(0x1000, 4)
	m.StoreWord(0x1000, 42)
	m.Map(0x1000, PageSize) // remap same page
	v, _ := m.LoadWord(0x1000)
	if v != 42 {
		t.Errorf("remap destroyed data: %d", v)
	}
}

func TestUnmap(t *testing.T) {
	m := New()
	m.Map(0, 2*PageSize)
	m.Unmap(0, PageSize)
	if m.Mapped(0) {
		t.Error("page still mapped after Unmap")
	}
	if !m.Mapped(PageSize) {
		t.Error("adjacent page wrongly unmapped")
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.Footprint() != 0 {
		t.Error("fresh memory has nonzero footprint")
	}
	m.Map(0, 1) // one byte still maps one page
	if m.Footprint() != PageSize {
		t.Errorf("footprint = %d; want %d", m.Footprint(), PageSize)
	}
	m.Map(PageSize-1, 2) // extends into page 1
	if m.Footprint() != 2*PageSize {
		t.Errorf("footprint = %d; want %d", m.Footprint(), 2*PageSize)
	}
}

func TestLoadCString(t *testing.T) {
	m := New()
	m.Map(0x100, 64)
	m.StoreBytes(0x100, []byte("hello\x00world"))
	s, err := m.LoadCString(0x100, 64)
	if err != nil || s != "hello" {
		t.Errorf("LoadCString = %q, %v", s, err)
	}
	// max truncation
	s, err = m.LoadCString(0x100, 3)
	if err != nil || s != "hel" {
		t.Errorf("truncated LoadCString = %q, %v", s, err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New()
	m.Map(0x2000, 4)
	m.StoreWord(0x2000, 1)
	s := m.Snapshot()
	m.StoreWord(0x2000, 2)
	v, _ := s.LoadWord(0x2000)
	if v != 1 {
		t.Errorf("snapshot saw mutation: %d", v)
	}
	if s.Footprint() != m.Footprint() {
		t.Error("snapshot footprint differs")
	}
}

// TestPropertyWordRoundTrip: random aligned word writes read back exactly,
// and byte-level views agree with little-endian layout.
func TestPropertyWordRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		m.Map(0, 1<<16)
		ref := make(map[uint32]uint32)
		for i := 0; i < 500; i++ {
			addr := uint32(rng.Intn(1<<14)) * 4
			val := rng.Uint32()
			if err := m.StoreWord(addr, val); err != nil {
				return false
			}
			ref[addr] = val
		}
		for addr, want := range ref {
			got, err := m.LoadWord(addr)
			if err != nil || got != want {
				return false
			}
			b0, _ := m.LoadByte(addr)
			if b0 != byte(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPageNumbers(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	m.Map(10*PageSize, PageSize)
	ns := m.PageNumbers()
	if len(ns) != 2 {
		t.Fatalf("PageNumbers len = %d", len(ns))
	}
	seen := map[uint32]bool{}
	for _, n := range ns {
		seen[n] = true
	}
	if !seen[0] || !seen[10] {
		t.Errorf("PageNumbers = %v", ns)
	}
}

func TestTryMapHonorsLimit(t *testing.T) {
	m := New()
	m.MapLimit = 2
	if !m.TryMap(0, PageSize*2) {
		t.Fatal("TryMap refused within the limit")
	}
	if m.MappedPages() != 2 {
		t.Fatalf("MappedPages = %d, want 2", m.MappedPages())
	}
	if m.TryMap(PageSize*4, 4) {
		t.Fatal("TryMap grew past MapLimit")
	}
	if m.MappedPages() != 2 {
		t.Fatalf("failed TryMap still mapped pages: %d", m.MappedPages())
	}
	// Already-mapped ranges need no new pages and always succeed.
	if !m.TryMap(0, 4) {
		t.Fatal("TryMap refused an already-mapped page")
	}
	// Map (the kernel loader path) ignores the limit.
	m.Map(PageSize*8, PageSize)
	if m.MappedPages() != 3 {
		t.Fatalf("Map should bypass the limit: %d pages", m.MappedPages())
	}
}
