package mem

// knowncodec.go is the wire codec for KnownSet snapshots: the canonical
// serialized form of a replay window's §7.1 known-memory bitmap, used by
// the parity tests and fuzzers and by any future checkpoint spill of
// replay snapshots. The encoding is deterministic (pages ascending, only
// touched pages present) and integrity-checked, so two equal sets always
// marshal to identical bytes and a corrupted snapshot fails loudly
// instead of replaying a different known-memory state.
//
// Layout (little-endian):
//
//	magic "BKWS", version byte
//	uint32 page count
//	per page, ascending: uint32 page number, 128-byte word bitmap (nonzero)
//	uint32 CRC-32 (IEEE) of everything above

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
)

var knownMagic = [4]byte{'B', 'K', 'W', 'S'}

const knownVersion = 1

// knownPageBytes is the serialized size of one page's bitmap.
const knownPageBytes = WordsPerPage / 8

// ErrBadKnownSet reports a malformed serialized known set.
var ErrBadKnownSet = errors.New("mem: bad serialized known set")

// MarshalKnown encodes the set in its canonical wire form.
func MarshalKnown(k *KnownSet) []byte {
	le := binary.LittleEndian
	out := make([]byte, 0, 4+1+4+k.tab.count*(4+knownPageBytes)+4)
	out = append(out, knownMagic[:]...)
	out = append(out, knownVersion)
	out = le.AppendUint32(out, uint32(k.tab.count))
	k.forEachPage(func(pageNum uint32, b *knownBits) {
		out = le.AppendUint32(out, pageNum)
		for _, w := range b {
			out = le.AppendUint64(out, w)
		}
	})
	return le.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// UnmarshalKnown decodes a serialized set, validating framing, checksum
// and canonical form (ascending unique pages, each with at least one bit,
// no trailing bytes). A valid input round-trips byte-identically through
// MarshalKnown.
func UnmarshalKnown(data []byte) (*KnownSet, error) {
	le := binary.LittleEndian
	if len(data) < 4+1+4+4 {
		return nil, ErrBadKnownSet
	}
	body, sum := data[:len(data)-4], le.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadKnownSet)
	}
	if [4]byte(body[:4]) != knownMagic || body[4] != knownVersion {
		return nil, ErrBadKnownSet
	}
	n := int(le.Uint32(body[5:]))
	body = body[9:]
	if len(body) != n*(4+knownPageBytes) {
		return nil, fmt.Errorf("%w: %d pages vs %d payload bytes", ErrBadKnownSet, n, len(body))
	}
	k := NewKnownSet()
	prev := int64(-1)
	for i := 0; i < n; i++ {
		pageNum := le.Uint32(body)
		body = body[4:]
		if int64(pageNum) <= prev {
			return nil, fmt.Errorf("%w: pages out of order at entry %d", ErrBadKnownSet, i)
		}
		if pageNum >= 1<<pageIndexBits {
			return nil, fmt.Errorf("%w: page %#x out of range", ErrBadKnownSet, pageNum)
		}
		prev = int64(pageNum)
		b := k.tab.ensure(pageNum)
		pop := 0
		for j := range b {
			b[j] = le.Uint64(body)
			body = body[8:]
			pop += bits.OnesCount64(b[j])
		}
		if pop == 0 {
			return nil, fmt.Errorf("%w: empty page entry %#x", ErrBadKnownSet, pageNum)
		}
		k.words += pop
	}
	return k, nil
}
